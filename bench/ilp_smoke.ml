(* CI smoke for the ILP solver path: one fig13 day slice that the seed
   solver could not close (it fell back to the contention-free bound) must
   now solve to proven optimality, with the objective matching the golden
   value computed by the pre-rewrite dense solver run to completion.

   The check is on [avg_delay_all], which is an affine function of the ILP
   objective (total delay = constant + objective), so equality here pins
   the optimal objective even when alternate optimal routings exist.

   Usage: dune exec bench/ilp_smoke.exe *)

module Params = Rapid_experiments.Params
module Optimal = Rapid_routing.Optimal

(* Quick-profile fig13 slice, load 2.0, day 1. The seed counted one
   x <= 1 row per variable, so this instance blew its 1500-row guard and
   fell back to the bound; with x <= 1 on the columns it fits the tableau
   easily, branches for real, and closes in well under a second. *)
let golden_avg_delay = 1217.808623065
let tolerance = 1e-6

let () =
  let params = Params.get Params.Quick in
  let trace = Rapid_experiments.Fig_optimal.day_slice ~params ~day:1 ~frac:0.15 in
  let workload =
    Rapid_experiments.Runners.trace_workload ~params ~trace ~load:2.0 ~day:1
  in
  let v = Optimal.evaluate ~trace ~workload () in
  let how_name =
    match v.Optimal.how with
    | Optimal.Ilp_exact -> "Ilp_exact"
    | Optimal.Ilp_incumbent -> "Ilp_incumbent"
    | Optimal.Bound -> "Bound"
  in
  Printf.printf "fig13 load 2.0 day 1: how=%s avg_delay_all=%.9f\n" how_name
    v.Optimal.avg_delay_all;
  if v.Optimal.how <> Optimal.Ilp_exact then begin
    Printf.eprintf "FAIL: expected Ilp_exact, got %s\n" how_name;
    exit 1
  end;
  let diff = Float.abs (v.Optimal.avg_delay_all -. golden_avg_delay) in
  if diff > tolerance then begin
    Printf.eprintf "FAIL: avg_delay_all off golden by %.3e (want <= %.0e)\n"
      diff tolerance;
    exit 1
  end;
  print_endline "ilp smoke ok"
