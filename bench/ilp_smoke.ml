(* CI smoke for the ILP solver path: the full fig13 grid (5 loads x 3 day
   slices, quick profile) must close every instance to proven optimality,
   and one pinned instance must reproduce its golden objective exactly.

   The golden check is on [avg_delay_all], which is an affine function of
   the ILP objective (total delay = constant + objective), so equality
   here pins the optimal objective even when alternate optimal routings
   exist. The pinned value predates the sparse revised-simplex rewrite
   (it was computed by the dense solver run to completion), so it also
   guards the rewrite against silent objective drift.

   The tally assertion is the rewrite's headline: under the seed's dense
   tableau the seven contended instances (load >= 2.0 past day 1) were
   pivot-starved into the contention-free bound; the sparse solver plus
   gcd-rounded bandwidth rows closes all fifteen at the root or after a
   short branch-and-bound dive.

   With RAPID_BENCH_STRICT=1 the run additionally requires the sparse
   solver's new instrumentation to be live: lp.refactorizations,
   lp.eta_updates, lp.presolve_rows_removed and lp.presolve_cols_removed
   must all be nonzero across the grid (branch-and-bound boxes plus
   singleton-row folds fix thousands of columns here).

   Usage: dune exec bench/ilp_smoke.exe *)

module Params = Rapid_experiments.Params
module Optimal = Rapid_routing.Optimal
module Counter = Rapid_obs.Counter

let golden_avg_delay = 1217.808623065
let tolerance = 1e-6
let errors = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr errors;
      Printf.eprintf "FAIL: %s\n" msg)
    fmt

let () =
  let params = Params.get Params.Quick in
  let exact = ref 0 and incumbent = ref 0 and bound = ref 0 in
  List.iter
    (fun load ->
      List.iter
        (fun day ->
          let trace =
            Rapid_experiments.Fig_optimal.day_slice ~params ~day ~frac:0.15
          in
          let workload =
            Rapid_experiments.Runners.trace_workload ~params ~trace ~load ~day
          in
          let v = Optimal.evaluate ~trace ~workload () in
          let how_name =
            match v.Optimal.how with
            | Optimal.Ilp_exact ->
                incr exact;
                "Ilp_exact"
            | Optimal.Ilp_incumbent ->
                incr incumbent;
                "Ilp_incumbent"
            | Optimal.Bound ->
                incr bound;
                "Bound"
          in
          Printf.printf "fig13 load %.1f day %d: how=%-13s avg_delay_all=%.9f\n"
            load day how_name v.Optimal.avg_delay_all;
          if load = 2.0 && day = 1 then begin
            if v.Optimal.how <> Optimal.Ilp_exact then
              fail "load 2.0 day 1: expected Ilp_exact, got %s" how_name;
            let diff =
              Float.abs (v.Optimal.avg_delay_all -. golden_avg_delay)
            in
            if diff > tolerance then
              fail "avg_delay_all off golden by %.3e (want <= %.0e)" diff
                tolerance
          end)
        [ 0; 1; 2 ])
    [ 0.5; 1.0; 2.0; 4.0; 6.0 ];
  Printf.printf "tally: exact=%d incumbent=%d bound=%d\n" !exact !incumbent
    !bound;
  if (!exact, !incumbent, !bound) <> (15, 0, 0) then
    fail "expected all 15 fig13 instances Ilp_exact, got %d/%d/%d" !exact
      !incumbent !bound;
  (match Sys.getenv_opt "RAPID_BENCH_STRICT" with
  | Some "1" ->
      let snap = Counter.snapshot () in
      let value name =
        match List.assoc_opt name snap with
        | Some v -> Some v
        | None -> None
      in
      List.iter
        (fun name ->
          match value name with
          | None -> fail "counter %s not registered" name
          | Some 0 -> fail "counter %s is zero across the fig13 grid" name
          | Some v -> Printf.printf "%s = %d\n" name v)
        [
          "lp.refactorizations"; "lp.eta_updates";
          "lp.presolve_rows_removed"; "lp.presolve_cols_removed";
        ]
  | Some _ | None -> ());
  if !errors > 0 then begin
    Printf.eprintf "ilp smoke: %d failure(s)\n" !errors;
    exit 1
  end;
  print_endline "ilp smoke ok"
