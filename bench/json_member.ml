(* Extract one top-level member of a JSON file and print it (compactly)
   to stdout. CI uses this to byte-compare the "artifact" member of two
   figure dumps whose surrounding document differs (live counters differ
   between a cold and a warm --cache-dir run by design).

   Usage: dune exec bench/json_member.exe -- FILE MEMBER
   Exits 1 on parse failure, 2 when the member is absent. *)

module Json = Rapid_obs.Json

let () =
  if Array.length Sys.argv <> 3 then begin
    prerr_endline "usage: json_member FILE MEMBER";
    exit 2
  end;
  let path = Sys.argv.(1) and name = Sys.argv.(2) in
  let doc =
    try Json.of_file path
    with
    | Json.Parse_error msg ->
        Printf.eprintf "%s does not parse: %s\n" path msg;
        exit 1
    | Sys_error msg ->
        prerr_endline msg;
        exit 1
  in
  match Json.member name doc with
  | Some j -> print_endline (Json.to_string j)
  | None ->
      Printf.eprintf "%s: no member %S\n" path name;
      exit 2
