(* CI smoke validator for BENCH.json (schema rapid-bench/1): hard-fails
   when the file does not parse or the schema/hot-path keys are missing.
   When a baseline file is given, artifact wall times are compared against
   it: a >25% regression on a shared artifact id prints WARN (or FAILs
   when RAPID_BENCH_STRICT=1); profiles must match for the comparison to
   apply. Microbench numbers are never gated — too noisy in CI.

   Usage: dune exec bench/check_bench.exe -- [path] [baseline]
   (defaults: BENCH.json, no baseline) *)

module Json = Rapid_obs.Json

let errors = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr errors;
      Printf.eprintf "FAIL: %s\n" msg)
    fmt

let strict () =
  match Sys.getenv_opt "RAPID_BENCH_STRICT" with
  | Some "1" -> true
  | Some _ | None -> false

let regress fmt =
  Printf.ksprintf
    (fun msg ->
      if strict () then begin
        incr errors;
        Printf.eprintf "FAIL: %s\n" msg
      end
      else Printf.eprintf "WARN: %s\n" msg)
    fmt

let artifact_walls doc =
  match Json.member "artifacts" doc with
  | Some (Json.List items) ->
      List.filter_map
        (fun item ->
          match (Json.member "id" item, Json.member "wall_s" item) with
          | Some (Json.String id), Some (Json.Float s) -> Some (id, s)
          | _ -> None)
        items
  | Some _ | None -> []

let profile_of doc =
  match Json.member "profile" doc with
  | Some (Json.String p) -> Some p
  | Some _ | None -> None

let timer_total doc name =
  match Json.member "timers" doc with
  | Some timers -> (
      match Json.member name timers with
      | Some t -> (
          match Json.member "total_s" t with
          | Some (Json.Float total) -> Some total
          | _ -> None)
      | None -> None)
  | None -> None

(* >25% slower than baseline on the same artifact id is a regression;
   sub-100ms artifacts are skipped (timer noise dominates). *)
let compare_baseline doc base_path =
  match
    try Some (Json.of_file base_path)
    with Json.Parse_error _ | Sys_error _ -> None
  with
  | None -> fail "cannot read baseline %s" base_path
  | Some base ->
      if profile_of base <> profile_of doc then
        Printf.printf
          "baseline %s: profile differs, skipping wall-time comparison\n"
          base_path
      else begin
        let walls = artifact_walls doc in
        List.iter
          (fun (id, base_s) ->
            match List.assoc_opt id walls with
            | Some s when base_s >= 0.1 && s > base_s *. 1.25 ->
                regress "artifact %s regressed: %.2fs vs baseline %.2fs (+%.0f%%)"
                  id s base_s
                  ((s /. base_s -. 1.0) *. 100.0)
            | Some s ->
                Printf.printf "artifact %-10s %.2fs vs baseline %.2fs ok\n" id s
                  base_s
            | None -> ())
          (artifact_walls base);
        (* The RAPID ranking hot path is gated on its own timer, not just
           artifact walls: rank time can regress badly while staying
           hidden inside an artifact's noise budget. Same contract as the
           walls — >25% over baseline WARNs, FAILs under strict. *)
        match (timer_total doc "rapid.rank", timer_total base "rapid.rank") with
        | Some s, Some base_s when base_s >= 0.1 && s > base_s *. 1.25 ->
            regress "rapid.rank regressed: %.2fs vs baseline %.2fs (+%.0f%%)" s
              base_s
              ((s /. base_s -. 1.0) *. 100.0)
        | Some s, Some base_s ->
            Printf.printf "timer rapid.rank %.2fs vs baseline %.2fs ok\n" s
              base_s
        | _ -> ()
      end

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH.json" in
  let baseline = if Array.length Sys.argv > 2 then Some Sys.argv.(2) else None in
  let doc =
    try Json.of_file path
    with
    | Json.Parse_error msg ->
        Printf.eprintf "FAIL: %s does not parse: %s\n" path msg;
        exit 1
    | Sys_error msg ->
        Printf.eprintf "FAIL: cannot read %s: %s\n" path msg;
        exit 1
  in
  (match Json.member "schema" doc with
  | Some (Json.String "rapid-bench/1") -> ()
  | Some j -> fail "schema is %s, want \"rapid-bench/1\"" (Json.to_string j)
  | None -> fail "missing \"schema\"");
  (match Json.member "artifacts" doc with
  | Some (Json.List (_ :: _ as items)) ->
      List.iter
        (fun item ->
          match (Json.member "id" item, Json.member "wall_s" item) with
          | Some (Json.String id), Some (Json.Float s) ->
              Printf.printf "artifact %-10s %.2fs\n" id s
          | _ -> fail "artifact entry %s lacks id/wall_s" (Json.to_string item))
        items
  | Some _ -> fail "\"artifacts\" empty or not a list"
  | None -> fail "missing \"artifacts\"");
  let counter name =
    match Json.member "counters" doc with
    | Some counters -> (
        match Json.member name counters with
        | Some (Json.Int v) -> Some v
        | Some _ | None -> None)
    | None -> None
  in
  (match counter "meeting_matrix.row_builds" with
  | Some v -> Printf.printf "meeting_matrix.row_builds = %d\n" v
  | None -> fail "missing counter \"meeting_matrix.row_builds\"");
  if counter "rapid.rank_calls" = None then
    fail "missing counter \"rapid.rank_calls\"";
  (* Indexed-buffer / send-queue instrumentation: snapshot rebuilds and
     per-contact planning register at module init, so the keys must be
     present in any run. *)
  List.iter
    (fun name ->
      match counter name with
      | Some v -> Printf.printf "%s = %d\n" name v
      | None -> fail "missing counter \"%s\"" name)
    [ "buffer.rebuilds"; "send_queue.plans"; "send_queue.replans" ];
  (* Solver instrumentation: the sparse revised simplex (and its LU /
     presolve layers) and the branch-and-bound layer each register their
     hot-path counters at module init, so they must be present (possibly
     zero) in any run. *)
  List.iter
    (fun name ->
      match counter name with
      | Some v -> Printf.printf "%s = %d\n" name v
      | None -> fail "missing counter \"%s\"" name)
    [
      "lp.pivots"; "lp.phase1_iters"; "lp.bound_flips"; "lp.iter_limits";
      "lp.cold_solves"; "lp.refactorizations"; "lp.eta_updates";
      "lp.presolve_cols_removed"; "lp.presolve_rows_removed";
      "ilp.nodes"; "ilp.warm_starts"; "ilp.unconverged";
    ];
  (* Fault-injection counters: the bench harness forces their registration
     at startup, so they must be present (zero when no faults are run). *)
  List.iter
    (fun name ->
      match counter name with
      | Some v -> Printf.printf "%s = %d\n" name v
      | None -> fail "missing counter \"%s\"" name)
    [
      "faults.reboots"; "faults.reboot_lost_packets";
      "faults.contacts_suppressed"; "faults.contacts_truncated";
      "faults.truncated_bytes_lost"; "faults.meta_drops";
    ];
  (* Point-store counters: likewise force-registered by the bench harness,
     so present (zero for uncached runs) in every BENCH.json. *)
  List.iter
    (fun name ->
      match counter name with
      | Some v -> Printf.printf "%s = %d\n" name v
      | None -> fail "missing counter \"%s\"" name)
    [ "store.hits"; "store.misses"; "store.writes"; "store.corrupt_cells" ];
  (* Believed-rate cache counters: registration is opt-in (the CLI leaves
     them off to keep its pinned report goldens byte-stable) but the
     bench harness always turns them on, so a BENCH.json without them
     means the cache instrumentation was dropped. *)
  List.iter
    (fun name ->
      match counter name with
      | Some v -> Printf.printf "%s = %d\n" name v
      | None -> fail "missing counter \"%s\"" name)
    [ "rapid.rate_cache_hits"; "rapid.rate_cache_misses" ];
  let timer name =
    match Json.member "timers" doc with
    | Some timers -> (
        match Json.member name timers with
        | Some t -> (
            match (Json.member "total_s" t, Json.member "count" t) with
            | Some (Json.Float total), Some (Json.Int n) -> Some (total, n)
            | _ -> None)
        | None -> None)
    | None -> None
  in
  List.iter
    (fun name ->
      match timer name with
      | Some (total, n) -> Printf.printf "timer %-26s %.3fs / %d\n" name total n
      | None -> fail "missing timer \"%s\" (total_s/count)" name)
    [ "meeting_matrix.row_build"; "rapid.rank"; "lp.solve" ];
  (* GC stats of the artifact reproductions: allocation-flattening work is
     validated through these when wall clocks are too noisy. *)
  (match Json.member "gc" doc with
  | Some gc ->
      List.iter
        (fun name ->
          match Json.member name gc with
          | Some (Json.Float v) -> Printf.printf "gc.%s = %.3e\n" name v
          | Some _ | None -> fail "gc block lacks \"%s\"" name)
        [
          "minor_words"; "promoted_words"; "major_words";
          "minor_collections"; "major_collections";
        ]
  | None -> fail "missing \"gc\" block");
  (* The believed-rate microbench must exist (its numbers are not gated —
     too noisy in CI — but its disappearance means the cache benchmark
     was dropped). *)
  (match Json.member "microbench" doc with
  | Some (Json.List items) ->
      let has_believed =
        List.exists
          (fun item ->
            match Json.member "name" item with
            | Some (Json.String name) ->
                name = "primitives/believed-rate (cached vs cold)"
            | _ -> false)
          items
      in
      if not has_believed then
        fail "missing microbench \"primitives/believed-rate (cached vs cold)\""
  | Some _ | None -> fail "missing \"microbench\" list");
  Option.iter (compare_baseline doc) baseline;
  if !errors > 0 then begin
    Printf.eprintf "%s: %d schema error(s)\n" path !errors;
    exit 1
  end;
  Printf.printf "%s: schema ok\n" path
