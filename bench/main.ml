(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (printing the same rows/series the paper plots), then runs
   Bechamel microbenchmarks of the core primitives. Besides the printed
   output it writes a machine-readable BENCH.json (per-artifact wall
   times, microbenchmark ns/run estimates and hot-path counters) so perf
   regressions can be diffed across commits.

   Usage:
     dune exec bench/main.exe                 # quick profile, everything
     dune exec bench/main.exe -- fig4 fig5    # a subset
     dune exec bench/main.exe -- --jobs 4 fig4     # parallel figure cells
     dune exec bench/main.exe -- --cache-dir .rapid-cache fig4  # point store
     RAPID_PROFILE=full dune exec bench/main.exe   # paper-scale (slow)
     RAPID_BENCH_OUT=out.json dune exec bench/main.exe  # JSON elsewhere *)

open Rapid_experiments
module Json = Rapid_obs.Json
module Counter = Rapid_obs.Counter
module Timer = Rapid_obs.Timer

let profile () =
  match Sys.getenv_opt "RAPID_PROFILE" with
  | Some "full" -> Params.Full
  | Some "quick" | None -> Params.Quick
  | Some other ->
      Printf.eprintf "unknown RAPID_PROFILE=%S, using quick\n" other;
      Params.Quick

let profile_name = function Params.Quick -> "quick" | Params.Full -> "full"

(* Split "--jobs N" (or -j N) and "--cache-dir DIR" out of argv; the rest
   are artifact ids. Counter/timer totals in BENCH.json are merge-exact,
   so they match the sequential run's for any job count. *)
let parse_args argv =
  let rec go jobs cache_dir ids = function
    | [] -> (jobs, cache_dir, List.rev ids)
    | ("--jobs" | "-j") :: n :: rest -> (
        match int_of_string_opt n with
        | Some j -> go j cache_dir ids rest
        | None ->
            Printf.eprintf "bad --jobs %S (want an integer)\n" n;
            exit 2)
    | [ ("--jobs" | "-j") ] ->
        prerr_endline "--jobs needs a value";
        exit 2
    | "--cache-dir" :: dir :: rest -> go jobs (Some dir) ids rest
    | [ "--cache-dir" ] ->
        prerr_endline "--cache-dir needs a value";
        exit 2
    | id :: rest -> go jobs cache_dir (id :: ids) rest
  in
  go 1 None [] (List.tl (Array.to_list argv))

(* ------------------------------------------------------------------ *)
(* Figure / table reproductions *)

let run_artifacts params ids =
  let items =
    match ids with
    | [] -> Catalog.all
    | ids ->
        List.filter_map
          (fun id ->
            match Catalog.find id with
            | Some item -> Some item
            | None ->
                Printf.eprintf "unknown artifact %S (skipped)\n" id;
                None)
          ids
  in
  print_endline (Catalog.params_header params);
  print_newline ();
  List.map
    (fun (item : Catalog.item) ->
      let timer = Timer.create ("artifact." ^ item.Catalog.id) in
      let out = Timer.time timer (fun () -> item.Catalog.render params) in
      print_string (Catalog.output_text out);
      let wall_s = Timer.total_s timer in
      Printf.printf "  (%s took %.1fs)\n\n%!" item.Catalog.id wall_s;
      (item.Catalog.id, wall_s))
    items

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the primitives underlying every figure *)

let microbenchmarks () =
  let open Bechamel in
  let open Rapid_prelude in
  let pqueue_test =
    Test.make ~name:"pqueue push+pop 1k"
      (Staged.stage (fun () ->
           let q = Pqueue.create () in
           for i = 0 to 999 do
             Pqueue.push q (float_of_int ((i * 7919) mod 1000)) i
           done;
           let rec drain () = match Pqueue.pop q with Some _ -> drain () | None -> () in
           drain ()))
  in
  let estimate_test =
    Test.make ~name:"estimate-delay Eq.9 (8 holders)"
      (Staged.stage (fun () ->
           let rate = ref 0.0 in
           for j = 1 to 8 do
             rate :=
               !rate
               +. Rapid_core.Estimate_delay.rate_of_holder
                    ~meeting_time:(float_of_int (60 * j))
                    ~n_meet:j
           done;
           ignore (Rapid_core.Estimate_delay.expected_delay ~rate:!rate)))
  in
  let matrix = Rapid_core.Meeting_matrix.create ~num_nodes:40 in
  let rng = Rng.create 5 in
  let () =
    for _ = 1 to 400 do
      let a = Rng.int rng 40 in
      let b = (a + 1 + Rng.int rng 39) mod 40 in
      if a <> b then
        Rapid_core.Meeting_matrix.observe matrix ~now:(Rng.float rng *. 1e4) ~a ~b
    done
  in
  let row_clock = ref 1e9 in
  let closure_test =
    Test.make ~name:"meeting-matrix 3-hop row build (40 nodes)"
      (Staged.stage (fun () ->
           (* Advance time so the observed gap is positive — a same-instant
              repeat meeting no longer invalidates — then query to force
              one lazy row build. *)
           row_clock := !row_clock +. 1.0;
           Rapid_core.Meeting_matrix.observe matrix ~now:!row_clock ~a:0 ~b:1;
           ignore (Rapid_core.Meeting_matrix.expected_meeting_time matrix 2 3)))
  in
  let simplex_test =
    Test.make ~name:"simplex 10x12 LP"
      (Staged.stage (fun () ->
           let open Rapid_lp in
           let p = Lp_problem.create ~num_vars:12 in
           Lp_problem.set_objective p (List.init 12 (fun i -> (i, -1.0 -. float_of_int (i mod 3))));
           for r = 0 to 9 do
             Lp_problem.add_constraint p
               (List.init 12 (fun i -> (i, float_of_int (((r * i) mod 5) + 1))))
               Lp_problem.Le 50.0
           done;
           ignore (Simplex.solve p)))
  in
  (* A deterministic binary program shaped like the fig13 instances: packing
     rows whose LP relaxation is fractional, so branch-and-bound must
     actually branch. The same logical instance across solver generations
     (upper bounds were dense rows before the bounded-variable rewrite). *)
  let ilp_test =
    let build () =
      let open Rapid_lp in
      let nv = 48 in
      let rng = Rng.create 11 in
      let p = Lp_problem.create ~num_vars:nv in
      Lp_problem.set_objective p
        (List.init nv (fun i -> (i, -1.0 -. Rng.float rng *. 4.0)));
      for _ = 0 to 11 do
        let coeffs =
          List.init nv (fun i -> (i, 1.0 +. Rng.float rng *. 3.0))
          |> List.filter (fun _ -> Rng.float rng < 0.6)
        in
        let width = float_of_int (List.length coeffs) in
        Lp_problem.add_constraint p coeffs Lp_problem.Le (0.35 *. 2.5 *. width)
      done;
      for v = 0 to nv - 1 do
        Lp_problem.set_upper p v 1.0;
        Lp_problem.mark_integer p v
      done;
      p
    in
    Test.make ~name:"ilp 48-var branch-and-bound"
      (Staged.stage (fun () ->
           let open Rapid_lp in
           match Ilp.solve ~max_nodes:400 (build ()) with
           | Ilp.Solved _ | Ilp.Infeasible | Ilp.Unbounded | Ilp.No_incumbent ->
               ()))
  in
  (* The sparse-solver cold path at primitive scale: a fig13-shaped LP —
     per-packet causality chains, receive-once packing rows, shared
     bandwidth rows and singleton rows for presolve to fold — solved from
     scratch every iteration, so each run pays one presolve, one LU
     factorization of the starting basis and a revised-simplex solve with
     eta updates. 240 columns x 274 rows, ~700 nonzeros. *)
  let sparse_lp_test =
    let open Rapid_lp in
    let np = 24 and na = 10 in
    let build () =
      let p = Lp_problem.create ~num_vars:(np * na) in
      let var pi ai = (pi * na) + ai in
      let rng = Rng.create 13 in
      Lp_problem.set_objective p
        (List.init (np * na) (fun i -> (i, -1.0 -. Rng.float rng *. 3.0)));
      (* Causality chains: each arc needs its predecessor, X_a <= X_{a-1}. *)
      for pi = 0 to np - 1 do
        for ai = 1 to na - 1 do
          Lp_problem.add_constraint p
            [ (var pi ai, 1.0); (var pi (ai - 1), -1.0) ]
            Lp_problem.Le 0.0
        done
      done;
      (* Bandwidth: arc slot ai is one shared contact across packets. *)
      for ai = 0 to na - 1 do
        Lp_problem.add_constraint p
          (List.init np (fun pi -> (var pi ai, 1.0)))
          Lp_problem.Le (float_of_int (2 + (ai mod 3)))
      done;
      (* Receive-once: the odd arc slots of a packet land on one node. *)
      for pi = 0 to np - 1 do
        Lp_problem.add_constraint p
          (List.init (na / 2) (fun k -> (var pi ((2 * k) + 1), 1.0)))
          Lp_problem.Le 1.0
      done;
      (* Singleton rows: presolve folds these into column bounds. *)
      for pi = 0 to np - 1 do
        Lp_problem.add_constraint p [ (var pi 0, 1.0) ] Lp_problem.Le 0.9
      done;
      for v = 0 to (np * na) - 1 do
        Lp_problem.set_upper p v 1.0
      done;
      p
    in
    Test.make ~name:"lp sparse presolve+LU solve (fig13-shaped)"
      (Staged.stage (fun () -> ignore (Simplex.solve (build ()))))
  in
  let convolve_test =
    Test.make ~name:"discrete-distribution convolution (400 cells)"
      (Staged.stage (fun () ->
           let d = Dist.Discrete.of_exponential ~dt:0.1 ~cells:400 ~mean:5.0 in
           ignore (Dist.Discrete.convolve d d)))
  in
  let believed_rate_test =
    (* The RAPID ranking hot path at primitive scale: one cold Eq. 9 fold
       (miss → store) followed by a burst of stamped lookups, mirroring a
       contact that scores the same packet against many candidates while
       neither the holder set nor the destination row moves. The cold
       fold re-runs every iteration because the store is overwritten with
       a poisoned stamp first. *)
    let open Rapid_core in
    let db = Replica_db.create () in
    let matrix = Meeting_matrix.create ~num_nodes:40 in
    let rng = Rng.create 7 in
    let clock = ref 0.0 in
    let () =
      for _ = 1 to 300 do
        let a = Rng.int rng 40 in
        let b = (a + 1 + Rng.int rng 39) mod 40 in
        clock := !clock +. (1.0 +. Rng.float rng *. 900.0);
        if a <> b then Meeting_matrix.observe matrix ~now:!clock ~a ~b
      done
    in
    let packet =
      { Rapid_sim.Packet.id = 0; src = 0; dst = 39; size = 1024;
        created = 0.0; deadline = None }
    in
    let () =
      for h = 1 to 8 do
        Replica_db.set_holder db ~packet ~holder_id:(h * 4) ~n_meet:h
          ~now:(float_of_int h)
      done
    in
    let rcache = Rate_cache.create ~num_nodes:40 in
    let fold_rate () =
      let row = Meeting_matrix.row ~h:3 matrix 39 in
      Replica_db.fold_holders db ~packet_id:0 ~init:0.0
        ~f:(fun acc holder_id (h : Replica_db.holder) ->
          let mt = if holder_id = 39 then 0.0 else row.(holder_id) in
          acc
          +. Estimate_delay.rate_of_holder ~meeting_time:mt
               ~n_meet:h.Replica_db.n_meet)
    in
    let pkt_ver = Replica_db.version db ~packet_id:0 in
    let row_ver = Meeting_matrix.row_version ~h:3 matrix 39 in
    Test.make ~name:"believed-rate (cached vs cold)"
      (Staged.stage (fun () ->
           (* Poison the stamp so the first lookup is a genuine miss. *)
           Rate_cache.store rcache ~observer:0 ~packet_id:0
             ~pkt_ver:(pkt_ver + 1) ~row_ver ~rate:nan;
           let cold =
             let c =
               Rate_cache.find rcache ~observer:0 ~packet_id:0 ~pkt_ver
                 ~row_ver
             in
             if Float.is_nan c then begin
               let r = fold_rate () in
               Rate_cache.store rcache ~observer:0 ~packet_id:0 ~pkt_ver
                 ~row_ver ~rate:r;
               r
             end
             else c
           in
           let acc = ref cold in
           for _ = 1 to 64 do
             acc :=
               !acc
               +. Rate_cache.find rcache ~observer:0 ~packet_id:0 ~pkt_ver
                    ~row_ver
           done;
           ignore !acc))
  in
  let send_queue_test =
    let open Rapid_sim in
    let env =
      Env.create ~num_nodes:2 ~duration:1e4 ~buffer_capacity:None ~seed:9
    in
    let () =
      for i = 0 to 63 do
        Buffer.add
          env.Env.buffers.(0)
          {
            Buffer.packet =
              {
                Packet.id = i;
                src = 0;
                dst = 1;
                size = 1024;
                created = float_of_int ((i * 37) mod 64);
                deadline = None;
              };
            received = 0.0;
            hops = 0;
          }
      done
    in
    let q = Send_queue.create () in
    let by_created (a : Buffer.entry) (b : Buffer.entry) =
      match
        Float.compare a.packet.Packet.created b.packet.Packet.created
      with
      | 0 -> Int.compare a.packet.Packet.id b.packet.Packet.id
      | n -> n
    in
    (* Exercises the per-contact hot loop end to end: rank the sender's
       buffer through the shared sort arena, then drain the cursor's
       removal-counter fast path with one [next] call per packet. *)
    Test.make ~name:"send-queue plan+serve (64-packet contact)"
      (Staged.stage (fun () ->
           Send_queue.begin_contact q;
           Send_queue.begin_plan q env ~sender:0 ~receiver:1;
           Send_queue.push_entries q ~cmp:by_created
             (Send_queue.candidates env ~sender:0 ~receiver:1);
           Send_queue.finish_plan q;
           let rec drain n =
             match
               Send_queue.next q env ~sender:0 ~receiver:1 ~budget:max_int
             with
             | Some _ -> drain (n + 1)
             | None -> n
           in
           ignore (drain 0)))
  in
  let engine_test =
    let trace =
      Rapid_mobility.Mobility.exponential (Rng.create 3) ~num_nodes:8
        ~mean_inter_meeting:60.0 ~duration:600.0 ~opportunity_bytes:10_240
    in
    let workload =
      Rapid_trace.Workload.generate (Rng.create 4) ~trace
        ~pkts_per_hour_per_dest:60.0 ~size:1024 ()
    in
    Test.make ~name:"engine: RAPID over 600s/8-node scenario"
      (Staged.stage (fun () ->
           ignore
             ((Rapid_sim.Engine.run
                 ~protocol:
                   (Rapid_core.Rapid.make_default Rapid_core.Metric.Average_delay)
                 ~trace ~workload ())
                .Rapid_sim.Engine.report)))
  in
  let tests =
    Test.make_grouped ~name:"primitives"
      [ pqueue_test; estimate_test; believed_rate_test; closure_test;
        simplex_test; sparse_lp_test; ilp_test; convolve_test;
        send_queue_test; engine_test ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let estimates =
    Hashtbl.fold
      (fun name result acc ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> (name, Some est) :: acc
        | Some _ | None -> (name, None) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  print_endline "== MICROBENCHMARKS (monotonic clock, ns/run) ==";
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Printf.printf "%-46s %12.0f ns/run\n" name est
      | None -> Printf.printf "%-46s (no estimate)\n" name)
    estimates;
  estimates

let () =
  let jobs, cache_dir, ids = parse_args Sys.argv in
  Rapid_par.Pool.set_jobs jobs;
  (* Fault and store counters register lazily (on first fault / first
     handle open); force them so BENCH.json carries the faults.* and
     store.* keys (at zero) even for clean, uncached runs. *)
  Rapid_faults.Faults.register_counters ();
  Rapid_store.Store.register_counters ();
  (* Rate-cache hit/miss counters are opt-in (the CLI leaves them off so
     its pinned report goldens stand); the bench always wants them. *)
  Rapid_core.Rate_cache.register_counters ();
  Rapid_experiments.Runners.set_cache_dir cache_dir;
  let profile = profile () in
  let params = Params.get profile in
  let artifacts = run_artifacts params ids in
  (* Snapshot before the microbenchmarks: their iteration counts are
     time-quota dependent, so counters taken afterwards would vary run to
     run. Taken here they cover exactly the artifact reproductions —
     deterministic, and identical for any --jobs width. *)
  let counters = Counter.to_json () in
  let timers = Timer.to_json () in
  (* GC pressure of the artifact reproductions, snapshotted alongside the
     counters (before the microbenchmarks muddy it): allocation-flattening
     work in the hot paths shows up here as fewer promoted/minor words
     even when wall times are too noisy to compare. *)
  let gc =
    let s = Gc.quick_stat () in
    Json.Obj
      [
        ("minor_words", Json.Float s.Gc.minor_words);
        ("promoted_words", Json.Float s.Gc.promoted_words);
        ("major_words", Json.Float s.Gc.major_words);
        ("minor_collections", Json.Float (float_of_int s.Gc.minor_collections));
        ("major_collections", Json.Float (float_of_int s.Gc.major_collections));
      ]
  in
  let micro = microbenchmarks () in
  let out =
    Option.value (Sys.getenv_opt "RAPID_BENCH_OUT") ~default:"BENCH.json"
  in
  Json.to_file out
    (Json.Obj
       [
         ("schema", Json.String "rapid-bench/1");
         ("profile", Json.String (profile_name profile));
         ( "artifacts",
           Json.List
             (List.map
                (fun (id, wall_s) ->
                  Json.Obj
                    [ ("id", Json.String id); ("wall_s", Json.Float wall_s) ])
                artifacts) );
         ( "microbench",
           Json.List
             (List.map
                (fun (name, est) ->
                  Json.Obj
                    [
                      ("name", Json.String name);
                      ( "ns_per_run",
                        match est with
                        | Some e -> Json.Float e
                        | None -> Json.Null );
                    ])
                micro) );
         ("counters", counters);
         ("timers", timers);
         ("gc", gc);
       ]);
  Printf.printf "wrote %s\n" out
