type event =
  | Contact of { time : float; a : int; b : int; bytes : int }
  | Metadata of { time : float; a : int; b : int; bytes : int; kind : string }
  | Transfer of {
      time : float;
      sender : int;
      receiver : int;
      packet : int;
      bytes : int;
      delivered : bool;
    }
  | Delivery of { time : float; packet : int; delay : float }
  | Drop of { time : float; node : int; packet : int }
  | Ack_purge of { time : float; node : int; packet : int }
  | Reboot of { time : float; node : int; lost : int }
  | Contact_suppressed of { time : float; a : int; b : int }
  | Contact_truncated of {
      time : float;
      a : int;
      b : int;
      bytes : int;
      effective : int;
    }
  | Metadata_dropped of { time : float; a : int; b : int }
  | Store_hit of { digest : string }
  | Store_miss of { digest : string }
  | Store_write of { digest : string; bytes : int }
  | Store_corrupt of { digest : string; reason : string }

type t = (event -> unit) option

let null = None
let make f = Some f
let enabled t = Option.is_some t
let emit t ev = match t with None -> () | Some f -> f ev

let event_label = function
  | Contact _ -> "contact"
  | Metadata _ -> "metadata"
  | Transfer _ -> "transfer"
  | Delivery _ -> "delivery"
  | Drop _ -> "drop"
  | Ack_purge _ -> "ack_purge"
  | Reboot _ -> "reboot"
  | Contact_suppressed _ -> "contact_suppressed"
  | Contact_truncated _ -> "contact_truncated"
  | Metadata_dropped _ -> "metadata_dropped"
  | Store_hit _ -> "store_hit"
  | Store_miss _ -> "store_miss"
  | Store_write _ -> "store_write"
  | Store_corrupt _ -> "store_corrupt"

let event_to_json ev =
  let fields =
    match ev with
    | Contact { time; a; b; bytes } ->
        [ ("time", Json.Float time); ("a", Json.Int a); ("b", Json.Int b);
          ("bytes", Json.Int bytes) ]
    | Metadata { time; a; b; bytes; kind } ->
        [ ("time", Json.Float time); ("a", Json.Int a); ("b", Json.Int b);
          ("bytes", Json.Int bytes); ("kind", Json.String kind) ]
    | Transfer { time; sender; receiver; packet; bytes; delivered } ->
        [ ("time", Json.Float time); ("sender", Json.Int sender);
          ("receiver", Json.Int receiver); ("packet", Json.Int packet);
          ("bytes", Json.Int bytes); ("delivered", Json.Bool delivered) ]
    | Delivery { time; packet; delay } ->
        [ ("time", Json.Float time); ("packet", Json.Int packet);
          ("delay", Json.Float delay) ]
    | Drop { time; node; packet } ->
        [ ("time", Json.Float time); ("node", Json.Int node);
          ("packet", Json.Int packet) ]
    | Ack_purge { time; node; packet } ->
        [ ("time", Json.Float time); ("node", Json.Int node);
          ("packet", Json.Int packet) ]
    | Reboot { time; node; lost } ->
        [ ("time", Json.Float time); ("node", Json.Int node);
          ("lost", Json.Int lost) ]
    | Contact_suppressed { time; a; b } ->
        [ ("time", Json.Float time); ("a", Json.Int a); ("b", Json.Int b) ]
    | Contact_truncated { time; a; b; bytes; effective } ->
        [ ("time", Json.Float time); ("a", Json.Int a); ("b", Json.Int b);
          ("bytes", Json.Int bytes); ("effective", Json.Int effective) ]
    | Metadata_dropped { time; a; b } ->
        [ ("time", Json.Float time); ("a", Json.Int a); ("b", Json.Int b) ]
    | Store_hit { digest } | Store_miss { digest } ->
        [ ("digest", Json.String digest) ]
    | Store_write { digest; bytes } ->
        [ ("digest", Json.String digest); ("bytes", Json.Int bytes) ]
    | Store_corrupt { digest; reason } ->
        [ ("digest", Json.String digest); ("reason", Json.String reason) ]
  in
  Json.Obj (("event", Json.String (event_label ev)) :: fields)

module Collector = struct
  type t = {
    counts : (string, int ref) Hashtbl.t;
    mutable events : event list;  (* newest first, bounded *)
    mutable kept : int;
    keep_events : int;
    mutable total : int;
  }

  let create ?(keep_events = 0) () =
    { counts = Hashtbl.create 8; events = []; kept = 0; keep_events; total = 0 }

  let record c ev =
    c.total <- c.total + 1;
    let label = event_label ev in
    (match Hashtbl.find_opt c.counts label with
    | Some r -> Stdlib.incr r
    | None -> Hashtbl.replace c.counts label (ref 1));
    if c.kept < c.keep_events then begin
      c.events <- ev :: c.events;
      c.kept <- c.kept + 1
    end

  let tracer c = make (record c)

  let counts c =
    Hashtbl.fold (fun label r acc -> (label, !r) :: acc) c.counts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let events c = List.rev c.events
  let total c = c.total

  let to_json c =
    Json.Obj
      [
        ("total", Json.Int c.total);
        ("counts",
         Json.Obj (List.map (fun (l, n) -> (l, Json.Int n)) (counts c)));
        ("events", Json.List (List.map event_to_json (events c)));
      ]
end

module Jsonl = struct
  let tracer oc =
    make (fun ev ->
        output_string oc (Json.to_string (event_to_json ev));
        output_char oc '\n')
end
