(** Process-global named counters for hot-path accounting.

    The costly primitives the ROADMAP's perf work targets — meeting-matrix
    row builds, RAPID rank invocations, position-index rebuilds —
    live deep inside modules that know nothing about runs or reports.
    They bump a pre-created counter (one [int ref] increment, no lookup,
    no allocation) and the bench/CLI layer snapshots the registry into
    BENCH.json, establishing a baseline future perf PRs can diff.

    Counters are process-wide and cumulative across protocol instances;
    call {!reset_all} before a measured section when per-run numbers are
    needed. Creating a counter with an existing name returns the existing
    cell, so module-level [create] calls are idempotent across functor
    instantiations.

    Counters are domain-safe: each counter keeps one private cell per
    domain ([incr]/[add] touch only the calling domain's cell, lock-free),
    and {!merge_domain} folds a domain's cells into the shared merged
    totals. [Rapid_par] workers call it at every task boundary, so reads
    taken on the main domain after a parallel map see exactly the
    sequential run's totals. Reads ({!value}, {!snapshot}) compose the
    calling domain's cell with the merged total — mid-task increments on
    other live domains are not yet visible. *)

type t

val create : string -> t
(** Register (or look up) the counter named [name]. *)

val incr : t -> unit
val add : t -> int -> unit
val value : t -> int
val reset : t -> unit

val snapshot : unit -> (string * int) list
(** All registered counters, sorted by name. *)

val reset_all : unit -> unit

val merge_domain : unit -> unit
(** Fold every counter's calling-domain cell into its shared merged total
    and zero the local cells. Called by worker domains when they finish a
    task (before completion is signalled); harmless on the main domain
    (reads already compose local + merged). *)

val to_json : unit -> Json.t
(** [snapshot] as a JSON object keyed by counter name. *)
