(* Same per-domain-cell scheme as Counter: [time]/[add_s] touch only the
   calling domain's cell (lock-free), worker totals fold into [merged_*]
   under [lock] at task boundaries via [merge_domain]. *)

type cell = { mutable total_s : float; mutable count : int }

type t = {
  name : string;
  local : cell Domain.DLS.key;
  mutable merged_s : float;  (* protected by [lock] *)
  mutable merged_count : int;  (* protected by [lock] *)
}

let lock = Mutex.create ()
let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let create name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some t -> t
      | None ->
          let t =
            {
              name;
              local = Domain.DLS.new_key (fun () -> { total_s = 0.0; count = 0 });
              merged_s = 0.0;
              merged_count = 0;
            }
          in
          Hashtbl.replace registry name t;
          t)

let add_s t s =
  let c = Domain.DLS.get t.local in
  c.total_s <- c.total_s +. s;
  c.count <- c.count + 1

(* CLOCK_MONOTONIC (ns) via bechamel's stub: wall clock is NTP-jumpable,
   and a step during a timed span would record a wildly wrong (even
   negative) duration. *)
let now_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let time t f =
  let t0 = now_s () in
  Fun.protect ~finally:(fun () -> add_s t (now_s () -. t0)) f

let total_s t = (Domain.DLS.get t.local).total_s +. t.merged_s
let count t = (Domain.DLS.get t.local).count + t.merged_count

let merge_domain () =
  Mutex.protect lock (fun () ->
      Hashtbl.iter
        (fun _ t ->
          let c = Domain.DLS.get t.local in
          if c.count <> 0 || c.total_s <> 0.0 then begin
            t.merged_s <- t.merged_s +. c.total_s;
            t.merged_count <- t.merged_count + c.count;
            c.total_s <- 0.0;
            c.count <- 0
          end)
        registry)

let snapshot () =
  Mutex.protect lock (fun () ->
      Hashtbl.fold
        (fun name t acc ->
          let c = Domain.DLS.get t.local in
          (name, c.total_s +. t.merged_s, c.count + t.merged_count) :: acc)
        registry [])
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let reset_all () =
  Mutex.protect lock (fun () ->
      Hashtbl.iter
        (fun _ t ->
          let c = Domain.DLS.get t.local in
          c.total_s <- 0.0;
          c.count <- 0;
          t.merged_s <- 0.0;
          t.merged_count <- 0)
        registry)

let to_json () =
  Json.Obj
    (List.map
       (fun (name, total, n) ->
         (name, Json.Obj [ ("total_s", Json.Float total); ("count", Json.Int n) ]))
       (snapshot ()))
