type t = { name : string; mutable total_s : float; mutable count : int }

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let create name =
  match Hashtbl.find_opt registry name with
  | Some t -> t
  | None ->
      let t = { name; total_s = 0.0; count = 0 } in
      Hashtbl.replace registry name t;
      t

let add_s t s =
  t.total_s <- t.total_s +. s;
  t.count <- t.count + 1

(* CLOCK_MONOTONIC (ns) via bechamel's stub: wall clock is NTP-jumpable,
   and a step during a timed span would record a wildly wrong (even
   negative) duration. *)
let now_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let time t f =
  let t0 = now_s () in
  Fun.protect ~finally:(fun () -> add_s t (now_s () -. t0)) f

let total_s t = t.total_s
let count t = t.count

let snapshot () =
  Hashtbl.fold (fun name t acc -> (name, t.total_s, t.count) :: acc) registry []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let reset_all () =
  Hashtbl.iter
    (fun _ t ->
      t.total_s <- 0.0;
      t.count <- 0)
    registry

let to_json () =
  Json.Obj
    (List.map
       (fun (name, total, n) ->
         (name, Json.Obj [ ("total_s", Json.Float total); ("count", Json.Int n) ]))
       (snapshot ()))
