(** Pluggable structured run tracing.

    The engine and RAPID emit one {!event} per simulation-level
    occurrence: contact observed, bytes transferred, packet delivered,
    packet evicted, ack-driven purge, metadata spent. A tracer is just a
    sink for those events; the default {!null} tracer drops them without
    allocating (emission sites guard on {!enabled} before building the
    event), so tracing costs nothing unless a sink is installed.

    Two sinks ship with the library: {!Collector} (in-memory counts plus
    a bounded event log, convertible to JSON) and {!Jsonl} (streams each
    event as one JSON line to a channel, for offline analysis of full
    runs). Anything else can be plugged via {!make}. *)

type event =
  | Contact of { time : float; a : int; b : int; bytes : int }
      (** A transfer opportunity of [bytes] capacity was observed. *)
  | Metadata of { time : float; a : int; b : int; bytes : int; kind : string }
      (** Control-channel spend; [kind] distinguishes the engine's
          per-contact total ["total"] from protocol-level breakdowns
          (e.g. RAPID's ["acks"], ["table"], ["entries"]). *)
  | Transfer of {
      time : float;
      sender : int;
      receiver : int;
      packet : int;
      bytes : int;
      delivered : bool;
    }  (** Data bytes charged against the opportunity. *)
  | Delivery of { time : float; packet : int; delay : float }
      (** First arrival at the destination. *)
  | Drop of { time : float; node : int; packet : int }
      (** Storage eviction chosen by the protocol. *)
  | Ack_purge of { time : float; node : int; packet : int }
      (** Buffered copy cleared because an ack proved it delivered. *)
  | Reboot of { time : float; node : int; lost : int }
      (** Fault injection: [node] rebooted, losing [lost] buffered
          copies and its protocol soft state. *)
  | Contact_suppressed of { time : float; a : int; b : int }
      (** Fault injection: a recorded contact never happened. *)
  | Contact_truncated of {
      time : float;
      a : int;
      b : int;
      bytes : int;
      effective : int;
    }
      (** Fault injection: the contact's recorded [bytes] capacity was
          cut to [effective]. *)
  | Metadata_dropped of { time : float; a : int; b : int }
      (** Fault injection: the contact's metadata exchange was lost. *)
  | Store_hit of { digest : string }
      (** Result store: a cell was read back in place of a recompute. *)
  | Store_miss of { digest : string }
      (** Result store: no cell for this key; the caller recomputes. *)
  | Store_write of { digest : string; bytes : int }
      (** Result store: a cell of [bytes] was atomically written. *)
  | Store_corrupt of { digest : string; reason : string }
      (** Result store: a cell failed parse/checksum validation and was
          treated as a miss (recompute-and-overwrite, never fatal). *)

type t

val null : t
(** Drops everything; the default wherever a tracer is accepted. *)

val make : (event -> unit) -> t

val enabled : t -> bool
(** [false] only for {!null}. Emission sites check this before
    constructing an event so the null tracer never allocates. *)

val emit : t -> event -> unit
(** No-op on {!null}. *)

val event_label : event -> string
(** Constructor name in snake case: ["contact"], ["metadata"], ... *)

val event_to_json : event -> Json.t

(** In-memory sink: per-label counts plus the first [keep_events] events
    verbatim (default 0 — counts only). *)
module Collector : sig
  type tracer := t
  type t

  val create : ?keep_events:int -> unit -> t
  val tracer : t -> tracer

  val counts : t -> (string * int) list
  (** Sorted by label. *)

  val events : t -> event list
  (** In emission order. *)

  val total : t -> int
  (** Events seen, including beyond the cap. *)

  val to_json : t -> Json.t
end

(** Streaming sink: one compact JSON object per line. The caller owns the
    channel (and its flushing/closing). *)
module Jsonl : sig
  val tracer : out_channel -> t
end
