(** Minimal JSON document builder, serializer, and reader.

    Deliberately dependency-free (the toolchain image carries no JSON
    library): the observability layer {e writes} JSON — run reports,
    benchmark trajectories, event streams — and the ci tooling reads the
    artifacts back to validate them. Output is strict RFC 8259:
    strings are escaped, and non-finite floats (which JSON cannot
    represent) serialize as [null], matching how the metrics layer uses
    [nan] for "undefined over an empty set". *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Stdlib.Buffer.t -> t -> unit

val to_string : t -> string
(** Compact single-line rendering. *)

val to_string_pretty : t -> string
(** Two-space indented rendering (for artifacts meant to be diffed across
    runs, e.g. BENCH.json). *)

val to_file : string -> t -> unit
(** Pretty-print to [path] with a trailing newline. *)

exception Parse_error of string

val of_string : string -> t
(** Parse a JSON document — the inverse of {!to_string} /
    {!to_string_pretty}, so tooling (the ci bench smoke check) can
    validate emitted artifacts without an external JSON library. Numbers
    without a fraction or exponent parse as [Int], others as [Float].
    Raises {!Parse_error} on malformed input. *)

val of_file : string -> t
(** [of_string] over the file's contents. *)

val member : string -> t -> t option
(** Field lookup; [None] when absent or not an [Obj]. *)
