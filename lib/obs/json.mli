(** Minimal JSON document builder and serializer.

    Deliberately dependency-free (the toolchain image carries no JSON
    library): the observability layer only ever {e writes} JSON — run
    reports, benchmark trajectories, event streams — so a constructor
    type plus a printer is the whole job. Output is strict RFC 8259:
    strings are escaped, and non-finite floats (which JSON cannot
    represent) serialize as [null], matching how the metrics layer uses
    [nan] for "undefined over an empty set". *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Stdlib.Buffer.t -> t -> unit

val to_string : t -> string
(** Compact single-line rendering. *)

val to_string_pretty : t -> string
(** Two-space indented rendering (for artifacts meant to be diffed across
    runs, e.g. BENCH.json). *)

val to_file : string -> t -> unit
(** Pretty-print to [path] with a trailing newline. *)
