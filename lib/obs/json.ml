type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    (* Render exact integers without an exponent so diffs stay readable. *)
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let rec pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as leaf -> to_buffer buf leaf
  | List [] -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List items ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          pretty buf (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf ']'
  | Obj fields ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          add_escaped buf k;
          Buffer.add_string buf ": ";
          pretty buf (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf '}'

let to_string_pretty j =
  let buf = Buffer.create 1024 in
  pretty buf 0 j;
  Buffer.contents buf

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string_pretty j);
      output_char oc '\n')
