type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    (* Render exact integers without an exponent so diffs stay readable. *)
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let rec pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as leaf -> to_buffer buf leaf
  | List [] -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List items ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          pretty buf (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf ']'
  | Obj fields ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          add_escaped buf k;
          Buffer.add_string buf ": ";
          pretty buf (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf '}'

let to_string_pretty j =
  let buf = Buffer.create 1024 in
  pretty buf 0 j;
  Buffer.contents buf

exception Parse_error of string

(* Minimal recursive-descent reader, the inverse of the writer above; it
   exists so tooling (ci bench smoke) can validate emitted artifacts
   without a JSON dependency. Numbers without '.', 'e' or 'E' parse as
   [Int], everything else as [Float]. *)
let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let skip_ws () =
    while
      !pos < len
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < len && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let n = String.length lit in
    if !pos + n <= len && String.sub s !pos n = lit then begin
      pos := !pos + n;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
          incr pos;
          Buffer.contents buf
      | '\\' ->
          incr pos;
          if !pos >= len then fail "truncated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 >= len then fail "truncated \\u escape";
              let code =
                match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
                | Some c -> c
                | None -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              add_utf8 buf code
          | _ -> fail "unknown escape");
          incr pos;
          go ()
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i when not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok)
      -> Int i
    | _ -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    if !pos >= len then fail "unexpected end of input";
    match s.[!pos] with
    | '{' ->
        incr pos;
        skip_ws ();
        if !pos < len && s.[!pos] = '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            if !pos < len && s.[!pos] = ',' then begin
              incr pos;
              fields ((k, v) :: acc)
            end
            else begin
              expect '}';
              List.rev ((k, v) :: acc)
            end
          in
          Obj (fields [])
        end
    | '[' ->
        incr pos;
        skip_ws ();
        if !pos < len && s.[!pos] = ']' then begin
          incr pos;
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            if !pos < len && s.[!pos] = ',' then begin
              incr pos;
              items (v :: acc)
            end
            else begin
              expect ']';
              List.rev (v :: acc)
            end
          in
          List (items [])
        end
    | '"' -> String (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string_pretty j);
      output_char oc '\n')
