(** Process-global named elapsed-time accumulators, the counterpart of
    {!Counter}: [time t f] adds [f]'s elapsed time to [t]'s total. Spans
    are measured on CLOCK_MONOTONIC (immune to NTP wall-clock jumps);
    totals are reported in seconds, so the JSON schema is unchanged. Used
    by the bench harness for per-artifact wall-times and by the hot-path
    spans (row builds, rank); same registry semantics as {!Counter}
    (idempotent [create], {!reset_all} scopes a measured section, one
    private cell per domain merged by {!merge_domain} at [Rapid_par] task
    boundaries). Note that under a parallel run a timer's total sums the
    spans of every domain, so it can exceed elapsed wall time — that is
    the same CPU-seconds a sequential run would have accumulated. *)

type t

val create : string -> t

val time : t -> (unit -> 'a) -> 'a
(** Run the thunk, accumulate its wall time (also counted on raise). *)

val add_s : t -> float -> unit
(** Accumulate an externally measured duration, in seconds. *)

val total_s : t -> float
val count : t -> int

val snapshot : unit -> (string * float * int) list
(** (name, total seconds, activations), sorted by name. *)

val reset_all : unit -> unit

val merge_domain : unit -> unit
(** Fold the calling domain's cells into the shared merged totals (see
    {!Counter.merge_domain}). *)

val to_json : unit -> Json.t
(** Object keyed by timer name with [{"total_s": ..., "count": ...}]
    values. *)
