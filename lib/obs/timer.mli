(** Process-global named wall-clock timers, the accumulator counterpart of
    {!Counter}: [time t f] adds [f]'s wall time to [t]'s total. Used by
    the bench harness for per-artifact wall-times; same registry
    semantics as {!Counter} (idempotent [create], {!reset_all} scopes a
    measured section). *)

type t

val create : string -> t

val time : t -> (unit -> 'a) -> 'a
(** Run the thunk, accumulate its wall time (also counted on raise). *)

val add_s : t -> float -> unit
(** Accumulate an externally measured duration, in seconds. *)

val total_s : t -> float
val count : t -> int

val snapshot : unit -> (string * float * int) list
(** (name, total seconds, activations), sorted by name. *)

val reset_all : unit -> unit

val to_json : unit -> Json.t
(** Object keyed by timer name with [{"total_s": ..., "count": ...}]
    values. *)
