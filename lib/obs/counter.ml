type t = { name : string; mutable count : int }

let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let create name =
  match Hashtbl.find_opt registry name with
  | Some c -> c
  | None ->
      let c = { name; count = 0 } in
      Hashtbl.replace registry name c;
      c

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let value c = c.count
let reset c = c.count <- 0

let snapshot () =
  Hashtbl.fold (fun name c acc -> (name, c.count) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_all () = Hashtbl.iter (fun _ c -> c.count <- 0) registry

let to_json () =
  Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) (snapshot ()))
