(* Each counter owns one cell *per domain* (a [Domain.DLS] slot): the hot
   path is a DLS array load plus an int-ref increment, with no lock and no
   sharing, so parallel workers never contend or race. Totals from worker
   domains are folded into [merged] (under [lock]) at task boundaries by
   {!merge_domain}; reads compose the calling domain's cell with the
   merged total, so a snapshot taken on the main domain after a parallel
   map equals the sequential run's. *)

type t = {
  name : string;
  local : int ref Domain.DLS.key;
  mutable merged : int;  (* flushed worker totals; protected by [lock] *)
}

let lock = Mutex.create ()
let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let create name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
          let c =
            { name; local = Domain.DLS.new_key (fun () -> ref 0); merged = 0 }
          in
          Hashtbl.replace registry name c;
          c)

let incr c = Stdlib.incr (Domain.DLS.get c.local)

let add c n =
  let r = Domain.DLS.get c.local in
  r := !r + n

let value c = !(Domain.DLS.get c.local) + c.merged

let reset c =
  Domain.DLS.get c.local := 0;
  Mutex.protect lock (fun () -> c.merged <- 0)

let merge_domain () =
  Mutex.protect lock (fun () ->
      Hashtbl.iter
        (fun _ c ->
          let r = Domain.DLS.get c.local in
          if !r <> 0 then begin
            c.merged <- c.merged + !r;
            r := 0
          end)
        registry)

let snapshot () =
  Mutex.protect lock (fun () ->
      Hashtbl.fold
        (fun name c acc -> (name, !(Domain.DLS.get c.local) + c.merged) :: acc)
        registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_all () =
  Mutex.protect lock (fun () ->
      Hashtbl.iter
        (fun _ c ->
          Domain.DLS.get c.local := 0;
          c.merged <- 0)
        registry)

let to_json () =
  Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) (snapshot ()))
