type contact_info = {
  now : float;
  a : int;
  b : int;
  budget : int;
  meta_budget : int option;
  meta_ok : bool;
}

module type S = sig
  type t

  val name : string
  val create : Env.t -> t
  val on_created : t -> now:float -> Packet.t -> unit
  val on_contact : t -> contact_info -> int

  val next_packet :
    t -> now:float -> sender:int -> receiver:int -> budget:int -> Packet.t option

  val on_transfer :
    t -> now:float -> sender:int -> receiver:int -> Packet.t -> delivered:bool -> unit

  val drop_candidate : t -> now:float -> node:int -> incoming:Packet.t -> Packet.t option
  val on_dropped : t -> now:float -> node:int -> Packet.t -> unit
  val on_reboot : t -> now:float -> node:int -> lost:Packet.t list -> unit
end

type packed = (module S)

module Ack_store = struct
  (* Membership set plus an append-only log per node, with per-directed-
     pair consumption watermarks: [consumed.(src).(dst)] is the prefix of
     [src]'s log already pushed to [dst], so an exchange walks only the
     acks learned since the two last met instead of both full sets.
     Entries below the watermark are guaranteed present at [dst] (its set
     only shrinks on a reboot, which resets the node's watermark row and
     column), so skipping them changes neither the union nor the
     fresh-entry count. *)
  type node_acks = {
    set : (int, unit) Hashtbl.t;
    mutable log : int array;
    mutable len : int;
  }

  type t = { nodes : node_acks array; consumed : int array array }

  let create ~num_nodes =
    {
      nodes =
        Array.init num_nodes (fun _ ->
            { set = Hashtbl.create 32; log = [||]; len = 0 });
      consumed = Array.init num_nodes (fun _ -> Array.make num_nodes 0);
    }

  let append (n : node_acks) id =
    let cap = Array.length n.log in
    if n.len = cap then begin
      let grown = Array.make (max 32 (2 * cap)) id in
      Array.blit n.log 0 grown 0 n.len;
      n.log <- grown
    end;
    n.log.(n.len) <- id;
    n.len <- n.len + 1

  let learn t ~node ~packet_id =
    let n = t.nodes.(node) in
    if not (Hashtbl.mem n.set packet_id) then begin
      Hashtbl.replace n.set packet_id ();
      append n packet_id
    end

  let reset_node t ~node =
    let n = t.nodes.(node) in
    Hashtbl.reset n.set;
    n.len <- 0;
    for peer = 0 to Array.length t.nodes - 1 do
      t.consumed.(node).(peer) <- 0;
      t.consumed.(peer).(node) <- 0
    done

  let knows t ~node ~packet_id = Hashtbl.mem t.nodes.(node).set packet_id

  let exchange t ~a ~b =
    let new_entries = ref 0 in
    let push src dst =
      let s = t.nodes.(src) and d = t.nodes.(dst) in
      for i = t.consumed.(src).(dst) to s.len - 1 do
        let id = s.log.(i) in
        if not (Hashtbl.mem d.set id) then begin
          Hashtbl.replace d.set id ();
          append d id;
          incr new_entries
        end
      done
    in
    push a b;
    push b a;
    t.consumed.(a).(b) <- t.nodes.(a).len;
    t.consumed.(b).(a) <- t.nodes.(b).len;
    !new_entries

  let purge t env ~now ~node ~on_purge =
    let buffer = env.Env.buffers.(node) in
    let victims =
      Buffer.fold buffer ~init:[] ~f:(fun acc entry ->
          let id = entry.Buffer.packet.Packet.id in
          if knows t ~node ~packet_id:id then entry.Buffer.packet :: acc else acc)
    in
    List.iter
      (fun p ->
        match Buffer.remove buffer p.Packet.id with
        | Some _ ->
            env.Env.on_ack_purge ~now ~node p;
            on_purge p
        | None -> ())
      victims
end

let split_direct ~receiver entries =
  List.partition
    (fun (e : Buffer.entry) -> e.packet.Packet.dst = receiver)
    entries
