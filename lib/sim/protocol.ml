module type S = sig
  type t

  val name : string
  val create : Env.t -> t
  val on_created : t -> now:float -> Packet.t -> unit

  val on_contact :
    t ->
    now:float ->
    a:int ->
    b:int ->
    budget:int ->
    meta_budget:int option ->
    meta_ok:bool ->
    int

  val next_packet :
    t -> now:float -> sender:int -> receiver:int -> budget:int -> Packet.t option

  val on_transfer :
    t -> now:float -> sender:int -> receiver:int -> Packet.t -> delivered:bool -> unit

  val drop_candidate : t -> now:float -> node:int -> incoming:Packet.t -> Packet.t option
  val on_dropped : t -> now:float -> node:int -> Packet.t -> unit
  val on_reboot : t -> now:float -> node:int -> lost:Packet.t list -> unit
end

type packed = (module S)

module Session = struct
  type t = { offered : (int * int, unit) Hashtbl.t }

  let create () = { offered = Hashtbl.create 64 }
  let reset t = Hashtbl.reset t.offered
  let mark t ~sender ~packet_id = Hashtbl.replace t.offered (sender, packet_id) ()
  let already_offered t ~sender ~packet_id = Hashtbl.mem t.offered (sender, packet_id)
end

module Ack_store = struct
  type t = { acks : (int, unit) Hashtbl.t array }

  let create ~num_nodes = { acks = Array.init num_nodes (fun _ -> Hashtbl.create 32) }
  let learn t ~node ~packet_id = Hashtbl.replace t.acks.(node) packet_id ()
  let reset_node t ~node = Hashtbl.reset t.acks.(node)
  let knows t ~node ~packet_id = Hashtbl.mem t.acks.(node) packet_id

  let exchange t ~a ~b =
    let new_entries = ref 0 in
    let push src dst =
      Hashtbl.iter
        (fun id () ->
          if not (Hashtbl.mem t.acks.(dst) id) then begin
            Hashtbl.replace t.acks.(dst) id ();
            incr new_entries
          end)
        t.acks.(src)
    in
    push a b;
    push b a;
    !new_entries

  let purge t env ~now ~node ~on_purge =
    let buffer = env.Env.buffers.(node) in
    let victims =
      Buffer.fold buffer ~init:[] ~f:(fun acc entry ->
          let id = entry.Buffer.packet.Packet.id in
          if knows t ~node ~packet_id:id then entry.Buffer.packet :: acc else acc)
    in
    List.iter
      (fun p ->
        match Buffer.remove buffer p.Packet.id with
        | Some _ ->
            env.Env.on_ack_purge ~now ~node p;
            on_purge p
        | None -> ())
      victims
end

let candidate_entries env session ~sender ~receiver ~budget =
  Env.buffered_entries env sender
  |> List.filter (fun (e : Buffer.entry) ->
         let p = e.packet in
         p.Packet.size <= budget
         && (not (Env.has_packet env ~node:receiver ~packet:p))
         && not (Session.already_offered session ~sender ~packet_id:p.Packet.id))

let split_direct ~receiver entries =
  List.partition
    (fun (e : Buffer.entry) -> e.packet.Packet.dst = receiver)
    entries
