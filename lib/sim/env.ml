type t = {
  num_nodes : int;
  duration : float;
  buffers : Buffer.t array;
  delivered : (int, float) Hashtbl.t;
  rng : Rapid_prelude.Rng.t;
  mutable on_ack_purge : now:float -> node:int -> Packet.t -> unit;
}

let create ~num_nodes ~duration ~buffer_capacity ~seed =
  {
    num_nodes;
    duration;
    buffers = Array.init num_nodes (fun _ -> Buffer.create ~capacity:buffer_capacity);
    delivered = Hashtbl.create 256;
    rng = Rapid_prelude.Rng.create seed;
    on_ack_purge = (fun ~now:_ ~node:_ _ -> ());
  }

let is_delivered t id = Hashtbl.mem t.delivered id

let has_packet t ~node ~packet =
  Buffer.mem t.buffers.(node) packet.Packet.id
  || (node = packet.Packet.dst && is_delivered t packet.Packet.id)

let buffered_entries t node = Buffer.entries t.buffers.(node)
