type outcome = { packet : Packet.t; mutable delivered_at : float option }

type t = {
  duration : float;
  packets : (int, outcome) Hashtbl.t;
  mutable created : int;
  mutable delivered : int;
  mutable data_bytes : int;
  mutable metadata_bytes : int;
  mutable capacity_bytes : int;
  mutable num_contacts : int;
  mutable drops : int;
  mutable ack_purges : int;
  mutable transfers : int;
}

let create ~duration =
  {
    duration;
    packets = Hashtbl.create 1024;
    created = 0;
    delivered = 0;
    data_bytes = 0;
    metadata_bytes = 0;
    capacity_bytes = 0;
    num_contacts = 0;
    drops = 0;
    ack_purges = 0;
    transfers = 0;
  }

let record_created t p =
  t.created <- t.created + 1;
  Hashtbl.replace t.packets p.Packet.id { packet = p; delivered_at = None }

let record_delivered t p ~now =
  match Hashtbl.find_opt t.packets p.Packet.id with
  | None -> invalid_arg "Metrics.record_delivered: unknown packet"
  | Some o -> (
      match o.delivered_at with
      | Some _ -> () (* duplicate arrival at destination: count once *)
      | None ->
          o.delivered_at <- Some now;
          t.delivered <- t.delivered + 1)

let record_contact t ~capacity =
  t.num_contacts <- t.num_contacts + 1;
  t.capacity_bytes <- t.capacity_bytes + capacity

let record_transfer t ~bytes =
  t.transfers <- t.transfers + 1;
  t.data_bytes <- t.data_bytes + bytes

let record_metadata t ~bytes = t.metadata_bytes <- t.metadata_bytes + bytes
let record_drop t = t.drops <- t.drops + 1
let record_ack_purge t = t.ack_purges <- t.ack_purges + 1

type report = {
  duration : float;
  created : int;
  delivered : int;
  delivery_rate : float;
  avg_delay : float;
  avg_delay_all : float;
  max_delay : float;
  within_deadline : int;
  within_deadline_rate : float;
  data_bytes : int;
  metadata_bytes : int;
  capacity_bytes : int;
  num_contacts : int;
  utilization : float;
  metadata_frac_bandwidth : float;
  metadata_frac_data : float;
  drops : int;
  ack_purges : int;
  transfers : int;
  delays : float array;
  pair_delays : ((int * int) * float array) array;
  outcomes : (int * float * float option) array;
}

let report t =
  let outcomes =
    Hashtbl.fold (fun _ o acc -> o :: acc) t.packets []
    |> List.sort (fun a b -> Int.compare a.packet.Packet.id b.packet.Packet.id)
  in
  let delays = ref [] in
  let sum_all = ref 0.0 in
  let max_delay = ref 0.0 in
  let within = ref 0 in
  let pair_tbl : (int * int, float list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun o ->
      let p = o.packet in
      match o.delivered_at with
      | Some at ->
          let d = at -. p.Packet.created in
          delays := d :: !delays;
          sum_all := !sum_all +. d;
          if d > !max_delay then max_delay := d;
          (match p.Packet.deadline with
          | Some dl when at <= dl -> incr within
          | Some _ | None -> ());
          let key = (p.Packet.src, p.Packet.dst) in
          let cell =
            match Hashtbl.find_opt pair_tbl key with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.replace pair_tbl key r;
                r
          in
          cell := d :: !cell
      | None -> sum_all := !sum_all +. (t.duration -. p.Packet.created))
    outcomes;
  let delays = Array.of_list (List.rev !delays) in
  let createdf = float_of_int t.created in
  let pair_delays =
    Hashtbl.fold (fun k v acc -> (k, Array.of_list (List.rev !v)) :: acc) pair_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> Array.of_list
  in
  {
    duration = t.duration;
    created = t.created;
    delivered = t.delivered;
    delivery_rate = (if t.created = 0 then 0.0 else float_of_int t.delivered /. createdf);
    avg_delay =
      (if Array.length delays = 0 then nan
       else Array.fold_left ( +. ) 0.0 delays /. float_of_int (Array.length delays));
    avg_delay_all = (if t.created = 0 then nan else !sum_all /. createdf);
    max_delay = (if t.delivered = 0 then nan else !max_delay);
    within_deadline = !within;
    within_deadline_rate =
      (if t.created = 0 then 0.0 else float_of_int !within /. createdf);
    data_bytes = t.data_bytes;
    metadata_bytes = t.metadata_bytes;
    capacity_bytes = t.capacity_bytes;
    num_contacts = t.num_contacts;
    utilization =
      (if t.capacity_bytes = 0 then 0.0
       else float_of_int (t.data_bytes + t.metadata_bytes) /. float_of_int t.capacity_bytes);
    metadata_frac_bandwidth =
      (if t.capacity_bytes = 0 then 0.0
       else float_of_int t.metadata_bytes /. float_of_int t.capacity_bytes);
    metadata_frac_data =
      (if t.data_bytes = 0 then 0.0
       else float_of_int t.metadata_bytes /. float_of_int t.data_bytes);
    drops = t.drops;
    ack_purges = t.ack_purges;
    transfers = t.transfers;
    delays;
    pair_delays;
    outcomes =
      Array.of_list
        (List.map
           (fun o -> (o.packet.Packet.id, o.packet.Packet.created, o.delivered_at))
           outcomes);
  }

let report_to_json (r : report) =
  let open Rapid_obs in
  Json.Obj
    [
      ("duration", Json.Float r.duration);
      ("created", Json.Int r.created);
      ("delivered", Json.Int r.delivered);
      ("delivery_rate", Json.Float r.delivery_rate);
      ("avg_delay", Json.Float r.avg_delay);
      ("avg_delay_all", Json.Float r.avg_delay_all);
      ("max_delay", Json.Float r.max_delay);
      ("within_deadline", Json.Int r.within_deadline);
      ("within_deadline_rate", Json.Float r.within_deadline_rate);
      ("data_bytes", Json.Int r.data_bytes);
      ("metadata_bytes", Json.Int r.metadata_bytes);
      ("capacity_bytes", Json.Int r.capacity_bytes);
      ("num_contacts", Json.Int r.num_contacts);
      ("utilization", Json.Float r.utilization);
      ("metadata_frac_bandwidth", Json.Float r.metadata_frac_bandwidth);
      ("metadata_frac_data", Json.Float r.metadata_frac_data);
      ("drops", Json.Int r.drops);
      ("ack_purges", Json.Int r.ack_purges);
      ("transfers", Json.Int r.transfers);
      ("delays",
       Json.List (Array.to_list (Array.map (fun d -> Json.Float d) r.delays)));
      ("pair_delays",
       Json.List
         (Array.to_list
            (Array.map
               (fun ((src, dst), delays) ->
                 Json.Obj
                   [
                     ("src", Json.Int src);
                     ("dst", Json.Int dst);
                     ("delays",
                      Json.List
                        (Array.to_list
                           (Array.map (fun d -> Json.Float d) delays)));
                   ])
               r.pair_delays)));
      ("outcomes",
       Json.List
         (Array.to_list
            (Array.map
               (fun (id, created, delivered_at) ->
                 Json.Obj
                   [
                     ("id", Json.Int id);
                     ("created", Json.Float created);
                     ("delivered_at",
                      match delivered_at with
                      | Some at -> Json.Float at
                      | None -> Json.Null);
                   ])
               r.outcomes)));
    ]

(* Inverse of [report_to_json], for the persistent point store: a report
   written with the strict writer (finite floats in %.17g, integer-valued
   floats as x.0, non-finite as null) reads back bit-identical, so a
   figure rendered from round-tripped reports is byte-identical to one
   rendered from live runs. Raises [Invalid_argument] on any shape
   mismatch — callers treat that as a corrupt cell and recompute. *)
let report_of_json j =
  let open Rapid_obs in
  let get name =
    match Json.member name j with
    | Some v -> v
    | None -> invalid_arg ("Metrics.report_of_json: missing " ^ name)
  in
  let shape name =
    invalid_arg ("Metrics.report_of_json: bad field " ^ name)
  in
  let int name = match get name with Json.Int i -> i | _ -> shape name in
  let float name =
    (* Non-finite values serialize as null (JSON has no nan/inf); the
       only non-finite the metrics layer produces is nan-for-undefined. *)
    match get name with
    | Json.Float f -> f
    | Json.Int i -> float_of_int i
    | Json.Null -> nan
    | _ -> shape name
  in
  let float_v name = function
    | Json.Float f -> f
    | Json.Int i -> float_of_int i
    | Json.Null -> nan
    | _ -> shape name
  in
  let list name = match get name with Json.List l -> l | _ -> shape name in
  let delays =
    Array.of_list (List.map (float_v "delays") (list "delays"))
  in
  let pair_delays =
    Array.of_list
      (List.map
         (fun item ->
           match
             ( Json.member "src" item,
               Json.member "dst" item,
               Json.member "delays" item )
           with
           | Some (Json.Int src), Some (Json.Int dst), Some (Json.List ds) ->
               ( (src, dst),
                 Array.of_list (List.map (float_v "pair_delays") ds) )
           | _ -> shape "pair_delays")
         (list "pair_delays"))
  in
  let outcomes =
    Array.of_list
      (List.map
         (fun item ->
           match
             ( Json.member "id" item,
               Json.member "created" item,
               Json.member "delivered_at" item )
           with
           | Some (Json.Int id), Some created, Some Json.Null ->
               (id, float_v "outcomes.created" created, None)
           | Some (Json.Int id), Some created, Some at ->
               ( id,
                 float_v "outcomes.created" created,
                 Some (float_v "outcomes.delivered_at" at) )
           | _ -> shape "outcomes")
         (list "outcomes"))
  in
  {
    duration = float "duration";
    created = int "created";
    delivered = int "delivered";
    delivery_rate = float "delivery_rate";
    avg_delay = float "avg_delay";
    avg_delay_all = float "avg_delay_all";
    max_delay = float "max_delay";
    within_deadline = int "within_deadline";
    within_deadline_rate = float "within_deadline_rate";
    data_bytes = int "data_bytes";
    metadata_bytes = int "metadata_bytes";
    capacity_bytes = int "capacity_bytes";
    num_contacts = int "num_contacts";
    utilization = float "utilization";
    metadata_frac_bandwidth = float "metadata_frac_bandwidth";
    metadata_frac_data = float "metadata_frac_data";
    drops = int "drops";
    ack_purges = int "ack_purges";
    transfers = int "transfers";
    delays;
    pair_delays;
    outcomes;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[created=%d delivered=%d (%.1f%%) avg_delay=%.1fs max=%.1fs deadline=%.1f%% \
     util=%.3f meta/bw=%.4f meta/data=%.4f drops=%d@]"
    r.created r.delivered (100.0 *. r.delivery_rate) r.avg_delay r.max_delay
    (100.0 *. r.within_deadline_rate)
    r.utilization r.metadata_frac_bandwidth r.metadata_frac_data r.drops
