(** Per-contact send-queue planning, shared by every protocol.

    Scanning and re-ranking a node's whole buffer for every transferred
    packet is quadratic in buffer size; real implementations (and RAPID's
    Protocol step 3c, "replicate packets in decreasing order of δU_i/s_i")
    rank once per transfer opportunity and then stream packets in order.
    A protocol builds each direction's ordered send list once per contact
    — segments sorted through a shared {!Rapid_prelude.Sortbuf} arena —
    and the engine's [next_packet] calls are served from a cursor.

    The cursor watches the sender buffer's removal counter
    ({!Buffer.removals}): while it stands still, every planned packet is
    still buffered and pops cost no lookups; when it moves (a delivery
    retiring the sender's copy, an ack purge, an eviction) the tail is
    re-validated — dropping packets no longer buffered or now present at
    the receiver — before serving resumes. A popped packet is never
    offered again in the same contact (covers storage refusals), and a
    packet exceeding the remaining byte budget is discarded for good
    (budgets only shrink within a contact).

    Counters [send_queue.plans] / [send_queue.replans] land in
    BENCH.json. *)

type t

val create : unit -> t

val begin_contact : t -> unit
(** Forget the plans from the previous contact. *)

val begin_plan :
  ?check_peer:bool -> t -> Env.t -> sender:int -> receiver:int -> unit
(** Start planning one direction. [check_peer] (default true) drops
    packets the receiver already holds when the plan is re-validated;
    protocols without summary vectors (the Random baseline) pass [false]
    and let the engine charge the wasted duplicate transfer. *)

val push : t -> Packet.t -> unit
(** Append the next packet of the direction being planned. *)

val push_entries :
  t -> cmp:(Buffer.entry -> Buffer.entry -> int) -> Buffer.entry list -> unit
(** Sort a segment with the shared scratch arena and append it. [cmp]
    must be a total order (the arena's heapsort is not stable; break ties
    on packet id). *)

val finish_plan : t -> unit
(** Seal the direction started by {!begin_plan}. *)

val next :
  t -> Env.t -> sender:int -> receiver:int -> budget:int -> Packet.t option
(** Pop the best still-legal packet; [None] when the direction is done
    or was never planned. *)

val candidates : Env.t -> sender:int -> receiver:int -> Buffer.entry list
(** Entries buffered at [sender] and absent at [receiver] — the raw input
    protocols rank (no budget filtering; {!next} re-validates). *)
