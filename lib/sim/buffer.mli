(** A node's in-transit packet store with an optional byte capacity.

    The engine owns one buffer per node and is the only component allowed
    to add packets (so that feasibility — storage never exceeded — is
    enforced in one place); protocols may remove packets (ack-driven
    cleanup, §4.2) and inspect contents. Iteration order is by packet id,
    which keeps runs deterministic.

    Internally the store is a dense entry array indexed by an id→slot
    table: add/remove are O(1), and {!entries} serves a cached id-sorted
    snapshot versioned by {!epoch}, rebuilt only after a mutation instead
    of sorted per call. *)

type entry = {
  packet : Packet.t;
  received : float;  (** When this copy arrived at this node. *)
  hops : int;  (** Replication depth: 0 at the source. *)
}

type t

val create : capacity:int option -> t
(** [capacity] in bytes; [None] means unlimited. *)

val capacity : t -> int option
val used : t -> int
(** Bytes currently stored. *)

val count : t -> int

val epoch : t -> int
(** Bumped on every mutation (add, remove, clear); versions caches built
    from the buffer's contents, e.g. the {!entries} snapshot and RAPID's
    per-contact position indexes. *)

val removals : t -> int
(** Bumped only when entries leave the buffer (remove, clear). While it
    stands still every previously observed entry is still present, so
    {!Send_queue} cursors skip per-pop membership checks. *)

val mem : t -> int -> bool
val find : t -> int -> entry option

val would_fit : t -> int -> bool
(** Whether [size] additional bytes fit right now. *)

val dst_bytes : t -> int -> int
(** Total bytes currently stored for this destination, maintained
    incrementally (O(1)): equals folding the sizes of entries whose packet
    destination matches. Protocol queue-position math against the newest
    packet of a destination reads this instead of scanning the buffer. *)

val add : t -> entry -> unit
(** Raises [Invalid_argument] if the entry does not fit or is a duplicate.
    Callers must check [would_fit] / [mem] first. *)

val remove : t -> int -> entry option
(** Remove by packet id; [None] if absent. *)

val clear : t -> Packet.t list
(** Empty the buffer in one sweep (no per-entry table churn), returning
    the packets that were stored, in slot order. The engine's reboot path
    is the only caller; consumers of the list must not depend on its
    order. *)

val entries : t -> entry list
(** Sorted by packet id. The returned list is a cached snapshot shared
    between calls: treat it as immutable and do not hold it across
    buffer mutations. *)

val fold : t -> init:'a -> f:('a -> entry -> 'a) -> 'a
(** Fold in packet-id order. *)

val fold_unordered : t -> init:'a -> f:('a -> entry -> 'a) -> 'a
(** Fold in slot order (hot paths that don't care about order; still
    deterministic for a given mutation history). *)
