(** Measurement collection and the per-run report.

    Captures everything the paper's evaluation reports: delivery rate and
    delays (Figs. 4–6), deadline hits (Fig. 7), control-channel overhead as
    a fraction of bandwidth and of data (Table 3, Figs. 8–9), channel
    utilization (Fig. 9), per-pair delays for the paired t-test (§6.2.1),
    and raw per-packet delays for the fairness CDF (Fig. 15). Undelivered
    packets contribute [duration - created] to {!report.avg_delay_all},
    matching the Fig. 13 ILP objective. *)

type t

val create : duration:float -> t

val record_created : t -> Packet.t -> unit
val record_delivered : t -> Packet.t -> now:float -> unit
val record_contact : t -> capacity:int -> unit
val record_transfer : t -> bytes:int -> unit
val record_metadata : t -> bytes:int -> unit
val record_drop : t -> unit
val record_ack_purge : t -> unit

type report = {
  duration : float;
  created : int;
  delivered : int;
  delivery_rate : float;
  avg_delay : float;  (** Over delivered packets; [nan] if none. *)
  avg_delay_all : float;  (** Undelivered count as [duration - created]. *)
  max_delay : float;  (** Over delivered packets; [nan] if none. *)
  within_deadline : int;
  within_deadline_rate : float;  (** Fraction of all created packets. *)
  data_bytes : int;
  metadata_bytes : int;
  capacity_bytes : int;
  num_contacts : int;
  utilization : float;  (** (data+metadata) / capacity. *)
  metadata_frac_bandwidth : float;
  metadata_frac_data : float;
  drops : int;
  ack_purges : int;
  transfers : int;
  delays : float array;  (** Per delivered packet, creation order. *)
  pair_delays : ((int * int) * float array) array;
      (** Mean-able delay samples per (src, dst) pair, delivered only. *)
  outcomes : (int * float * float option) array;
      (** (packet id, created, delivered_at), id order — for per-packet
          analyses such as the fairness CDF. *)
}

val report : t -> report

val report_to_json : report -> Rapid_obs.Json.t
(** The full report — scalars, per-packet delays, per-pair delays and
    outcomes — as a JSON object (non-finite values serialize as [null]).
    This is what [bin/main.exe run --json] writes. *)

val report_of_json : Rapid_obs.Json.t -> report
(** Inverse of {!report_to_json}: a serialized report reads back
    bit-identical (the writer emits finite floats with round-trip
    precision and non-finite ones as [null], which map back to [nan]).
    The persistent point store relies on this to make warm figure runs
    byte-identical to cold ones. Raises [Invalid_argument] on shape
    mismatch; store readers treat that as a corrupt cell. *)

val pp_report : Format.formatter -> report -> unit
(** Compact one-line rendering used by the CLI. *)
