(** The trace-driven discrete-event simulator (§5.3).

    Takes "a schedule of node meetings, the bandwidth available at each
    meeting, and a routing algorithm" and executes the protocol over the
    trace, enforcing feasibility centrally: the bytes moved during a
    meeting (data + control metadata) never exceed the opportunity size,
    and node storage never exceeds its capacity. Packets remaining after
    the trace horizon are undelivered (each trace is one experiment). *)

type options = {
  buffer_bytes : int option;  (** Per-node storage; [None] = unlimited. *)
  meta_cap_frac : float option;
      (** Cap on control metadata per contact, as a fraction of the
          opportunity (the Fig. 8 knob); [None] = unrestricted. *)
  seed : int;  (** Seed for protocol-visible randomness. *)
  faults : Rapid_faults.Faults.config;
      (** Fault injection (reboots, truncated contacts, lossy metadata,
          contact no-shows); [Faults.none] — the default — makes the run
          bit-identical to an engine without the fault layer. The fault
          stream is drawn up front from [(faults.seed, seed, trace)], so
          reports are byte-identical across [--jobs] settings. *)
}

val default_options : options

type result = { report : Metrics.report; env : Env.t }
(** One run's outcome: the measured report plus the final environment
    (tests use [env] to check conservation invariants; most callers read
    only [report]). *)

val run :
  ?options:options ->
  ?tracer:Rapid_obs.Tracer.t ->
  protocol:Protocol.packed ->
  trace:Rapid_trace.Trace.t ->
  workload:Rapid_trace.Workload.spec list ->
  unit ->
  result
(** The single engine entry point. [tracer] receives a structured event
    per contact, transfer, delivery, drop, ack purge and per-contact
    metadata total; the default null tracer is free (emission sites do
    not even build the event). *)
