open Rapid_trace
module Tracer = Rapid_obs.Tracer
module Faults = Rapid_faults.Faults

type options = {
  buffer_bytes : int option;
  meta_cap_frac : float option;
  seed : int;
  faults : Faults.config;
}

let default_options =
  { buffer_bytes = None; meta_cap_frac = None; seed = 1; faults = Faults.none }

(* Make room at [node] for [incoming] by evicting protocol-chosen victims.
   Returns true when the incoming packet now fits. A drop_candidate answer
   of [None] or of the incoming packet itself refuses it. *)
let make_room (type s) (module P : Protocol.S with type t = s) (st : s)
    (env : Env.t) metrics tracer ~now ~node ~(incoming : Packet.t) =
  let buffer = env.Env.buffers.(node) in
  (* A packet larger than the whole buffer can never fit: refuse it up
     front instead of letting the protocol drain every incumbent first
     and refusing anyway. *)
  match Buffer.capacity buffer with
  | Some cap when incoming.Packet.size > cap -> false
  | _ ->
  let rec loop () =
    if Buffer.would_fit buffer incoming.Packet.size then true
    else begin
      match P.drop_candidate st ~now ~node ~incoming with
      | None -> false
      | Some victim when victim.Packet.id = incoming.Packet.id -> false
      | Some victim -> (
          match Buffer.remove buffer victim.Packet.id with
          | None ->
              invalid_arg
                (Printf.sprintf "protocol %s: drop candidate %d not buffered"
                   P.name victim.Packet.id)
          | Some _ ->
              Metrics.record_drop metrics;
              if Tracer.enabled tracer then
                Tracer.emit tracer
                  (Tracer.Drop { time = now; node; packet = victim.Packet.id });
              P.on_dropped st ~now ~node victim;
              loop ())
    end
  in
  loop ()

let run_contact (type s) (module P : Protocol.S with type t = s) (st : s)
    (env : Env.t) metrics tracer ~meta_cap_frac ~effective ~meta_ok ~num_packets
    ~seen (c : Contact.t) =
  let now = c.Contact.time in
  Metrics.record_contact metrics ~capacity:effective;
  if Tracer.enabled tracer then
    Tracer.emit tracer
      (Tracer.Contact
         { time = now; a = c.Contact.a; b = c.Contact.b; bytes = c.Contact.bytes });
  if effective < c.Contact.bytes then begin
    Faults.note_contact_truncated ~lost_bytes:(c.Contact.bytes - effective);
    if Tracer.enabled tracer then
      Tracer.emit tracer
        (Tracer.Contact_truncated
           { time = now; a = c.Contact.a; b = c.Contact.b;
             bytes = c.Contact.bytes; effective })
  end;
  if not meta_ok then begin
    Faults.note_meta_drop ();
    if Tracer.enabled tracer then
      Tracer.emit tracer
        (Tracer.Metadata_dropped { time = now; a = c.Contact.a; b = c.Contact.b })
  end;
  (* The protocol is told the recorded opportunity size: a truncation cuts
     the contact short mid-transfer, which nobody can foresee. *)
  let meta_budget =
    Option.map
      (fun f -> int_of_float (f *. float_of_int c.Contact.bytes))
      meta_cap_frac
  in
  let meta =
    P.on_contact st
      {
        Protocol.now;
        a = c.Contact.a;
        b = c.Contact.b;
        budget = c.Contact.bytes;
        meta_budget;
        meta_ok;
      }
  in
  let cap = match meta_budget with Some m -> min m c.Contact.bytes | None -> c.Contact.bytes in
  let meta = max 0 (min meta cap) in
  (* A lost metadata exchange transfers nothing, whatever the protocol
     thinks it spent; a truncated contact bounds meta like data. *)
  let meta = if meta_ok then min meta effective else 0 in
  Metrics.record_metadata metrics ~bytes:meta;
  if Tracer.enabled tracer then
    Tracer.emit tracer
      (Tracer.Metadata
         { time = now; a = c.Contact.a; b = c.Contact.b; bytes = meta;
           kind = "total" });
  let budget = ref (effective - meta) in
  (* Alternate directions; guard against protocols re-offering a packet. *)
  let dirs = [| (c.Contact.a, c.Contact.b); (c.Contact.b, c.Contact.a) |] in
  let active = [| true; true |] in
  (* Flat (sender, packet id) key: packet ids are dense in
     [0, num_packets), so no tuple boxing on the per-transfer guard. The
     table itself is run-lifetime scratch owned by [run] — cleared (not
     reallocated) here so its bucket array is reused contact after
     contact. *)
  Hashtbl.clear seen;
  let seen_key sender id = (sender * max 1 num_packets) + id in
  let turn = ref 0 in
  let record_transfer ~sender ~receiver (p : Packet.t) ~delivered =
    Metrics.record_transfer metrics ~bytes:p.Packet.size;
    if Tracer.enabled tracer then
      Tracer.emit tracer
        (Tracer.Transfer
           { time = now; sender; receiver; packet = p.Packet.id;
             bytes = p.Packet.size; delivered })
  in
  while !budget > 0 && (active.(0) || active.(1)) do
    if not active.(!turn) then turn := 1 - !turn
    else begin
      let sender, receiver = dirs.(!turn) in
      match P.next_packet st ~now ~sender ~receiver ~budget:!budget with
      | None -> active.(!turn) <- false
      | Some p ->
          let id = p.Packet.id in
          if p.Packet.size > !budget then
            invalid_arg
              (Printf.sprintf "protocol %s: packet %d exceeds budget" P.name id);
          if not (Buffer.mem env.Env.buffers.(sender) id) then
            invalid_arg
              (Printf.sprintf "protocol %s: offered unbuffered packet %d" P.name id);
          if Hashtbl.mem seen (seen_key sender id) then
            invalid_arg
              (Printf.sprintf "protocol %s: packet %d offered twice" P.name id);
          Hashtbl.replace seen (seen_key sender id) ();
          if receiver = p.Packet.dst then begin
            (* Delivery: destination storage is unconstrained (§3.1), and
               the sender drops its copy — it has first-hand knowledge the
               packet is delivered. *)
            budget := !budget - p.Packet.size;
            record_transfer ~sender ~receiver p ~delivered:true;
            if not (Env.is_delivered env id) then begin
              Hashtbl.replace env.Env.delivered id now;
              if Tracer.enabled tracer then
                Tracer.emit tracer
                  (Tracer.Delivery
                     { time = now; packet = id;
                       delay = now -. p.Packet.created })
            end;
            Metrics.record_delivered metrics p ~now;
            ignore (Buffer.remove env.Env.buffers.(sender) id);
            P.on_transfer st ~now ~sender ~receiver p ~delivered:true
          end
          else if Env.has_packet env ~node:receiver ~packet:p then begin
            (* Duplicate push: a protocol that does not exchange summary
               vectors (the Random baseline) wastes the bandwidth; the
               receiver discards the copy. *)
            budget := !budget - p.Packet.size;
            record_transfer ~sender ~receiver p ~delivered:false
          end
          else begin
            if
              make_room (module P) st env metrics tracer ~now ~node:receiver
                ~incoming:p
            then begin
              let hops =
                match Buffer.find env.Env.buffers.(sender) id with
                | Some e -> e.Buffer.hops + 1
                | None -> 1
              in
              Buffer.add env.Env.buffers.(receiver)
                { Buffer.packet = p; received = now; hops };
              budget := !budget - p.Packet.size;
              record_transfer ~sender ~receiver p ~delivered:false;
              P.on_transfer st ~now ~sender ~receiver p ~delivered:false
            end
            (* else: receiver refused (storage); no bandwidth consumed. The
               protocol must not offer this packet again in this contact. *)
          end;
          turn := 1 - !turn
    end
  done

type result = { report : Metrics.report; env : Env.t }

let run ?(options = default_options) ?(tracer = Tracer.null) ~protocol
    ~trace ~workload () =
  let (module P : Protocol.S) = protocol in
  let env =
    Env.create ~num_nodes:trace.Trace.num_nodes ~duration:trace.Trace.duration
      ~buffer_capacity:options.buffer_bytes ~seed:options.seed
  in
  let metrics = Metrics.create ~duration:trace.Trace.duration in
  (* Ack-driven purges happen inside protocol callbacks; the env hook is
     the single accounting path back into the run's metrics. *)
  env.Env.on_ack_purge <-
    (fun ~now ~node p ->
      Metrics.record_ack_purge metrics;
      if Tracer.enabled tracer then
        Tracer.emit tracer
          (Tracer.Ack_purge { time = now; node; packet = p.Packet.id }));
  let st = P.create env in
  let plan = Faults.plan options.faults ~run_seed:options.seed ~trace in
  let reboot ~now ~node =
    (* Wipe the buffer first, then tell the protocol: on_reboot sees the
       post-crash world. Lost copies are not storage drops — no drop
       metrics — the faults.* counters account for them. *)
    (* [clear] empties in one sweep; the slot-order [lost] list is fine
       because on_reboot implementations treat it as a set. *)
    let lost = Buffer.clear env.Env.buffers.(node) in
    Faults.note_reboot ~lost:(List.length lost);
    if Tracer.enabled tracer then
      Tracer.emit tracer
        (Tracer.Reboot { time = now; node; lost = List.length lost });
    P.on_reboot st ~now ~node ~lost
  in
  let create_packet ~id (spec : Workload.spec) =
    let p = Packet.of_spec ~id spec in
    Metrics.record_created metrics p;
    let now = p.Packet.created in
    if
      make_room (module P) st env metrics tracer ~now ~node:p.Packet.src
        ~incoming:p
    then begin
      Buffer.add env.Env.buffers.(p.Packet.src)
        { Buffer.packet = p; received = now; hops = 0 };
      P.on_created st ~now p
    end
    else begin
      Metrics.record_drop metrics;
      if Tracer.enabled tracer then
        Tracer.emit tracer
          (Tracer.Drop { time = now; node = p.Packet.src; packet = p.Packet.id })
    end
  in
  (* Merge creations and contacts in time order (creations first on ties,
     so a packet created "at" a meeting can ride it). Scheduled reboots
     interleave via a third cursor and fire before any same-time event —
     a node that crashes "at" a meeting misses it with empty buffers. *)
  let contacts = trace.Trace.contacts in
  let specs = Array.of_list workload in
  let reboots = Faults.reboots plan in
  (* Run-lifetime duplicate-offer guard, cleared per contact inside
     run_contact instead of allocated fresh for each of them. *)
  let seen = Hashtbl.create 16 in
  let nc = Array.length contacts
  and ns = Array.length specs
  and nr = Array.length reboots in
  let ci = ref 0 and si = ref 0 and ri = ref 0 in
  let process_reboots_until limit =
    while !ri < nr && fst reboots.(!ri) <= limit do
      let time, node = reboots.(!ri) in
      reboot ~now:time ~node;
      incr ri
    done
  in
  while !ci < nc || !si < ns do
    let take_spec =
      if !si >= ns then false
      else if !ci >= nc then true
      else specs.(!si).Workload.created <= contacts.(!ci).Contact.time
    in
    if take_spec then begin
      process_reboots_until specs.(!si).Workload.created;
      create_packet ~id:!si specs.(!si);
      incr si
    end
    else begin
      let c = contacts.(!ci) in
      process_reboots_until c.Contact.time;
      if Faults.contact_skipped plan !ci then begin
        Faults.note_contact_suppressed ();
        if Tracer.enabled tracer then
          Tracer.emit tracer
            (Tracer.Contact_suppressed
               { time = c.Contact.time; a = c.Contact.a; b = c.Contact.b })
      end
      else
        run_contact (module P) st env metrics tracer
          ~meta_cap_frac:options.meta_cap_frac
          ~effective:(Faults.contact_capacity plan !ci ~bytes:c.Contact.bytes)
          ~meta_ok:(Faults.contact_meta_ok plan !ci)
          ~num_packets:ns ~seen c;
      incr ci
    end
  done;
  process_reboots_until infinity;
  { report = Metrics.report metrics; env }
