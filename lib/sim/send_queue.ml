open Rapid_prelude

let c_plans = Rapid_obs.Counter.create "send_queue.plans"
let c_replans = Rapid_obs.Counter.create "send_queue.replans"

(* One planned direction. [packets.(cursor..len-1)] is the tail still to
   offer; slots before [cursor] were served or discarded for good (old
   packets are never re-offered within a contact, which also covers
   storage refusals, and the byte budget only shrinks, so a packet too
   big now never fits later).

   Validity tracking: while the sender buffer's removal counter stands
   still, no planned packet can have left the buffer, so the tail is
   served without membership checks. When it moves, either the single
   removal is provably [last_served] (the common delivery / single-copy
   forward case, O(1) to recognise) or the tail is re-filtered — a
   replan. The receiver-side "peer already has it" check participates in
   the re-filter, matching the per-pop validation it replaces; within a
   contact the receiver can only gain a planned packet by being sent it,
   which retires that packet from the plan, so the check is belt and
   braces rather than load-bearing. *)
type dir = {
  mutable sender : int;
  mutable receiver : int;
  mutable check_peer : bool;
  mutable sender_buf : Buffer.t;
  mutable packets : Packet.t array;
  mutable len : int;
  mutable cursor : int;
  mutable removals_seen : int;
  (* Packet served since [removals_seen] was last brought up to date;
     -1 when that slot is empty. Only such a packet can explain away a
     single removal without a re-filter. *)
  mutable last_served : int;
  (* check_peer=false mode (the Random baseline without summary
     vectors): once a removal happens, fall back to per-pop membership
     checks — an evicted packet can legally reappear at the sender via a
     duplicate push and must then still be offered. *)
  mutable validate_pops : bool;
  mutable planned : bool;
}

type t = {
  dirs : dir array;
  mutable current : int;  (* dir being planned, -1 outside begin/finish *)
  scratch : Buffer.entry Sortbuf.t;
}

let make_dir () =
  {
    sender = -1;
    receiver = -1;
    check_peer = true;
    sender_buf = Buffer.create ~capacity:None;
    packets = [||];
    len = 0;
    cursor = 0;
    removals_seen = 0;
    last_served = -1;
    validate_pops = false;
    planned = false;
  }

let create () =
  { dirs = [| make_dir (); make_dir () |]; current = -1; scratch = Sortbuf.create () }

let begin_contact t =
  t.dirs.(0).planned <- false;
  t.dirs.(1).planned <- false;
  t.current <- -1

let begin_plan ?(check_peer = true) t (env : Env.t) ~sender ~receiver =
  let slot = if t.dirs.(0).planned then 1 else 0 in
  let d = t.dirs.(slot) in
  d.sender <- sender;
  d.receiver <- receiver;
  d.check_peer <- check_peer;
  d.sender_buf <- env.Env.buffers.(sender);
  d.len <- 0;
  d.cursor <- 0;
  d.last_served <- -1;
  d.validate_pops <- false;
  t.current <- slot

let current_dir t =
  if t.current < 0 then invalid_arg "Send_queue: no plan in progress";
  t.dirs.(t.current)

let push t (p : Packet.t) =
  let d = current_dir t in
  let cap = Array.length d.packets in
  if d.len = cap then begin
    let grown = Array.make (max 16 (2 * cap)) p in
    Array.blit d.packets 0 grown 0 d.len;
    d.packets <- grown
  end;
  d.packets.(d.len) <- p;
  d.len <- d.len + 1

(* Sort a segment with the shared scratch and append it. [cmp] must be a
   total order (the arena's heapsort is not stable; every protocol breaks
   ties on packet id). *)
let push_entries t ~cmp entries =
  let buf = t.scratch in
  Sortbuf.clear buf;
  List.iter (fun (e : Buffer.entry) -> Sortbuf.push buf e) entries;
  Sortbuf.sort buf ~cmp;
  Sortbuf.iteri buf (fun _ (e : Buffer.entry) -> push t e.Buffer.packet)

let finish_plan t =
  let d = current_dir t in
  d.removals_seen <- Buffer.removals d.sender_buf;
  d.planned <- true;
  t.current <- -1;
  Rapid_obs.Counter.incr c_plans

let find_dir t ~sender ~receiver =
  let matches (d : dir) =
    d.planned && d.sender = sender && d.receiver = receiver
  in
  if matches t.dirs.(0) then Some t.dirs.(0)
  else if matches t.dirs.(1) then Some t.dirs.(1)
  else None

let revalidate (env : Env.t) (d : dir) =
  let rem = Buffer.removals d.sender_buf in
  if rem <> d.removals_seen then begin
    if not d.check_peer then begin
      (* See [validate_pops]: eager tail filtering would wrongly retire a
         packet that gets pushed back before its turn. *)
      d.validate_pops <- true;
      d.removals_seen <- rem;
      d.last_served <- -1
    end
    else if
      rem = d.removals_seen + 1
      && d.last_served >= 0
      && not (Buffer.mem d.sender_buf d.last_served)
    then begin
      (* Exactly one removal since the last sync, and the packet we just
         served is gone: that removal was the served packet (it was
         present when served), so the tail is untouched. *)
      d.removals_seen <- rem;
      d.last_served <- -1
    end
    else begin
      Rapid_obs.Counter.incr c_replans;
      let w = ref d.cursor in
      for i = d.cursor to d.len - 1 do
        let p = d.packets.(i) in
        if
          Buffer.mem d.sender_buf p.Packet.id
          && not (Env.has_packet env ~node:d.receiver ~packet:p)
        then begin
          d.packets.(!w) <- p;
          incr w
        end
      done;
      d.len <- !w;
      d.removals_seen <- rem;
      d.last_served <- -1
    end
  end

let next t (env : Env.t) ~sender ~receiver ~budget =
  match find_dir t ~sender ~receiver with
  | None -> None
  | Some d ->
      revalidate env d;
      let rec serve () =
        if d.cursor >= d.len then None
        else begin
          let p = d.packets.(d.cursor) in
          d.cursor <- d.cursor + 1;
          if
            p.Packet.size <= budget
            && ((not d.validate_pops) || Buffer.mem d.sender_buf p.Packet.id)
          then begin
            d.last_served <- p.Packet.id;
            Some p
          end
          else serve ()
        end
      in
      serve ()

let candidates (env : Env.t) ~sender ~receiver =
  List.filter
    (fun (e : Buffer.entry) ->
      not (Env.has_packet env ~node:receiver ~packet:e.packet))
    (Env.buffered_entries env sender)
