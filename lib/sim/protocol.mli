(** The interface every routing protocol implements, plus shared helpers.

    The engine drives a contact as follows:
    + {!S.on_contact} — the protocol observes the meeting, updates its
      inference state, plans its send queues for both directions
      ({!Send_queue}), and returns the control-channel bytes it spent
      (charged against the transfer opportunity);
    + direct delivery and replication: the engine alternates directions,
      repeatedly asking {!S.next_packet} for the sender's best next packet
      that fits the remaining byte budget. Protocols must not offer a
      packet twice in the same contact ({!Send_queue}'s cursor tracks
      this) and should offer packets destined to the receiver first
      (Protocol rapid, step 2). Offering a packet the peer already holds
      is legal but wasteful: the engine charges the bytes and the receiver
      discards the copy (how the summary-vector-less Random baseline
      behaves); protocols with any control channel avoid it via
      {!Env.has_packet}.
    + {!S.on_transfer} confirms each replication/delivery, letting the
      protocol update replica bookkeeping and create acknowledgments.

    Storage policy: when a transfer or a fresh packet does not fit, the
    engine asks {!S.drop_candidate} which buffered packet to evict, until
    it fits or the protocol answers [None] (refuse the incoming packet). *)

(** Everything the engine tells a protocol about one meeting, in a single
    record (one value to thread, extensible without touching all eight
    protocol implementations). *)
type contact_info = {
  now : float;
  a : int;
  b : int;  (** The two meeting nodes. *)
  budget : int;  (** Capacity of the opportunity, in bytes. *)
  meta_budget : int option;
      (** Administrator cap on control metadata for this contact
          (the Fig. 8 knob); [None] = the protocol's own policy. *)
  meta_ok : bool;
      (** False when fault injection lost the metadata exchange. *)
}

module type S = sig
  type t

  val name : string
  val create : Env.t -> t

  val on_created : t -> now:float -> Packet.t -> unit
  (** The packet has just entered its source's buffer. *)

  val on_contact : t -> contact_info -> int
  (** Observe a meeting of capacity [budget] bytes; return metadata bytes
      consumed (will be clamped to [meta_budget] if given, then to
      [budget]). When [meta_ok] is false the metadata exchange is lost
      (fault injection): the protocol may still record first-hand
      observations of the meeting itself (meeting times, encounter
      probabilities) but must not exchange state with the peer (replica
      tables, ack sets, delivery-predictability vectors) and should
      return 0 — the engine forces the charge to 0 regardless. *)

  val next_packet :
    t -> now:float -> sender:int -> receiver:int -> budget:int -> Packet.t option
  (** Best next packet to replicate from [sender] to [receiver], of size
      <= [budget], present in [sender]'s buffer, absent at [receiver], and
      not previously offered in this contact. [None] ends this direction. *)

  val on_transfer :
    t -> now:float -> sender:int -> receiver:int -> Packet.t -> delivered:bool -> unit

  val drop_candidate : t -> now:float -> node:int -> incoming:Packet.t -> Packet.t option
  (** Choose a buffered victim at [node] to make room for [incoming];
      [None] refuses [incoming] instead. *)

  val on_dropped : t -> now:float -> node:int -> Packet.t -> unit

  val on_reboot : t -> now:float -> node:int -> lost:Packet.t list -> unit
  (** [node] rebooted (fault injection): the engine has already wiped its
      buffer, losing the copies in [lost] (no drop metrics are recorded —
      a reboot is not a storage decision). The protocol must forget that
      node's soft state: per-node inference rows, ack sets, tickets for
      copies it no longer holds. Other nodes' beliefs {e about} [node]
      are deliberately kept — peers cannot observe the reboot. *)
end

type packed = (module S)

(** Per-node acknowledgment stores with flooding semantics: once any node
    learns a packet was delivered, it propagates the ack at every contact
    and purges buffered copies (the mechanism MaxProp introduced and RAPID
    adopts, §4.2). Exchanges walk per-pair watermarked ack logs, so a
    meeting costs the number of acks learned since the pair last met, not
    the size of both full sets. *)
module Ack_store : sig
  type t

  val create : num_nodes:int -> t
  val learn : t -> node:int -> packet_id:int -> unit
  val knows : t -> node:int -> packet_id:int -> bool

  val reset_node : t -> node:int -> unit
  (** Forget everything [node] knows (reboot support). *)

  val exchange : t -> a:int -> b:int -> int
  (** Union the two nodes' ack sets; returns how many entries were new to
      either side (for metadata accounting). *)

  val purge :
    t -> Env.t -> now:float -> node:int -> on_purge:(Packet.t -> unit) -> unit
  (** Remove from [node]'s buffer every packet it knows to be delivered,
      except a source's own undelivered packets are never purged —
      guaranteed trivially because acks exist only for delivered packets.
      Each removal is reported through [Env.on_ack_purge] (at [now]) so
      the engine's metrics see it. *)
end

val split_direct :
  receiver:int -> Buffer.entry list -> Buffer.entry list * Buffer.entry list
(** Partition candidates into (destined to receiver, the rest). *)
