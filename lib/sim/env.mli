(** Shared simulation state visible to protocols.

    Buffers model the per-node summary-vector knowledge any DTN protocol
    obtains for free during a contact handshake: at a meeting, a protocol
    may consult {!has_packet} for its *peer* to avoid pushing duplicates.
    Global state beyond that (e.g. replica locations network-wide) must be
    learned through each protocol's own control channel — except for
    explicitly "oracle" variants such as RAPID's instant global channel
    (§6.2.3), which read it deliberately. *)

type t = {
  num_nodes : int;
  duration : float;  (** Experiment horizon. *)
  buffers : Buffer.t array;  (** Indexed by node id. *)
  delivered : (int, float) Hashtbl.t;  (** Packet id -> delivery time. *)
  rng : Rapid_prelude.Rng.t;  (** Protocol-visible randomness. *)
  mutable on_ack_purge : now:float -> node:int -> Packet.t -> unit;
      (** Notification that a buffered copy was cleared because an ack
          proved it delivered. Protocols must invoke it on every
          ack-driven purge ({!Protocol.Ack_store.purge} does so
          automatically); the engine points it at
          {!Metrics.record_ack_purge} and the run tracer, so purges are
          accounted exactly once, in one place. Defaults to a no-op. *)
}

val create :
  num_nodes:int -> duration:float -> buffer_capacity:int option ->
  seed:int -> t

val is_delivered : t -> int -> bool

val has_packet : t -> node:int -> packet:Packet.t -> bool
(** True if the node buffers the packet, or the node is the packet's
    destination and the packet has been delivered (destinations keep
    delivered packets; §3.1). *)

val buffered_entries : t -> int -> Buffer.entry list
