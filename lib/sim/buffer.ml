type entry = { packet : Packet.t; received : float; hops : int }

(* Counts snapshot rebuilds across all buffers (BENCH.json). *)
let c_rebuilds = Rapid_obs.Counter.create "buffer.rebuilds"

(* Dense slot array + id->slot index. [arr.(0..len-1)] are the live
   entries; removal swaps the last slot in, so add/remove are O(1) and
   iteration never touches the hash table. Unused slots may retain stale
   entry pointers (used as fill on growth) — [len] guards every read.

   [epoch] moves on every mutation and versions [snapshot], the id-sorted
   entry list handed out by [entries]: it is rebuilt at most once per
   buffer change instead of once per call. [removals] moves only when an
   entry leaves the buffer — Send_queue cursors use it to skip per-pop
   membership checks while no planned packet can have disappeared. *)
type t = {
  capacity : int option;
  mutable used : int;
  mutable arr : entry array;
  mutable len : int;
  slots : (int, int) Hashtbl.t;
  mutable epoch : int;
  mutable removals : int;
  mutable snapshot : entry list;
  mutable snapshot_epoch : int;
  (* Live bytes per destination, maintained at add/remove/clear so
     per-destination queue totals are O(1) instead of a buffer scan. *)
  dst_bytes : (int, int) Hashtbl.t;
}

let create ~capacity =
  (match capacity with
  | Some c when c < 0 -> invalid_arg "Buffer.create: negative capacity"
  | _ -> ());
  {
    capacity;
    used = 0;
    arr = [||];
    len = 0;
    slots = Hashtbl.create 64;
    epoch = 0;
    removals = 0;
    snapshot = [];
    snapshot_epoch = 0;
    dst_bytes = Hashtbl.create 16;
  }

let capacity t = t.capacity
let used t = t.used
let count t = t.len
let epoch t = t.epoch
let removals t = t.removals
let mem t id = Hashtbl.mem t.slots id

let find t id =
  match Hashtbl.find_opt t.slots id with
  | None -> None
  | Some slot -> Some t.arr.(slot)

let would_fit t size =
  match t.capacity with None -> true | Some c -> t.used + size <= c

let dst_bytes t dst =
  match Hashtbl.find_opt t.dst_bytes dst with Some b -> b | None -> 0

let add_dst_bytes t dst delta =
  Hashtbl.replace t.dst_bytes dst (dst_bytes t dst + delta)

let add t entry =
  let id = entry.packet.Packet.id in
  if mem t id then invalid_arg "Buffer.add: duplicate packet";
  if not (would_fit t entry.packet.Packet.size) then
    invalid_arg "Buffer.add: over capacity";
  let cap = Array.length t.arr in
  if t.len = cap then begin
    (* Fill with the incoming entry: slots past [len] are never read. *)
    let grown = Array.make (max 8 (2 * cap)) entry in
    Array.blit t.arr 0 grown 0 t.len;
    t.arr <- grown
  end;
  t.arr.(t.len) <- entry;
  Hashtbl.replace t.slots id t.len;
  t.len <- t.len + 1;
  t.used <- t.used + entry.packet.Packet.size;
  add_dst_bytes t entry.packet.Packet.dst entry.packet.Packet.size;
  t.epoch <- t.epoch + 1

let remove t id =
  match Hashtbl.find_opt t.slots id with
  | None -> None
  | Some slot ->
      let entry = t.arr.(slot) in
      Hashtbl.remove t.slots id;
      let last = t.len - 1 in
      if slot < last then begin
        let moved = t.arr.(last) in
        t.arr.(slot) <- moved;
        Hashtbl.replace t.slots moved.packet.Packet.id slot
      end;
      t.len <- last;
      t.used <- t.used - entry.packet.Packet.size;
      add_dst_bytes t entry.packet.Packet.dst (-entry.packet.Packet.size);
      t.epoch <- t.epoch + 1;
      t.removals <- t.removals + 1;
      Some entry

let clear t =
  if t.len = 0 then []
  else begin
    let lost = ref [] in
    for slot = t.len - 1 downto 0 do
      lost := t.arr.(slot).packet :: !lost
    done;
    Hashtbl.reset t.slots;
    Hashtbl.reset t.dst_bytes;
    t.len <- 0;
    t.used <- 0;
    t.epoch <- t.epoch + 1;
    t.removals <- t.removals + 1;
    !lost
  end

let cmp_id a b = Int.compare a.packet.Packet.id b.packet.Packet.id

let entries t =
  if t.snapshot_epoch <> t.epoch then begin
    Rapid_obs.Counter.incr c_rebuilds;
    let sorted = Array.sub t.arr 0 t.len in
    Array.sort cmp_id sorted;
    t.snapshot <- Array.to_list sorted;
    t.snapshot_epoch <- t.epoch
  end;
  t.snapshot

let fold t ~init ~f = List.fold_left f init (entries t)

let fold_unordered t ~init ~f =
  let acc = ref init in
  for slot = 0 to t.len - 1 do
    acc := f !acc t.arr.(slot)
  done;
  !acc
