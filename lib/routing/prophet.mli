(** PROPHET: probabilistic routing using history of encounters and
    transitivity (Lindgren et al. [22]).

    Delivery predictabilities P(a, b) ∈ [0, 1] evolve by three rules:
    - encounter:    P(a,b) ← P(a,b) + (1 − P(a,b))·P_init
    - aging:        P(a,b) ← P(a,b)·γ^k, k elapsed time units
    - transitivity: P(a,c) ← max(P(a,c), P(a,b)·P(b,c)·β)

    A packet is replicated to a peer whose predictability for the
    destination exceeds the carrier's. Parameters follow the paper's
    §6.1: P_init = 0.75, β = 0.25, γ = 0.98. [time_unit] maps the γ
    exponent to simulated seconds (the original paper ages once per unit).
    Predictability tables are exchanged at contacts and charged to the
    control channel. *)

val encounter_update :
  p_init:float -> beta:float -> float array array -> int -> int -> unit
(** Apply the encounter rule to [p.(a).(b)]/[p.(b).(a)], then the
    transitivity rule both ways, reading from post-encounter snapshots
    of the two rows so the result is symmetric in the argument order.
    Exposed for the symmetry regression test. *)

val make :
  ?p_init:float ->
  ?beta:float ->
  ?gamma:float ->
  ?time_unit:float ->
  ?entry_bytes:int ->
  unit ->
  Rapid_sim.Protocol.packed
(** [time_unit] defaults to 30 s; [entry_bytes] (default 12) is the charged
    size of one (node, predictability) record. *)
