open Rapid_sim

(* Encounter update followed by transitivity through the peer's table,
   on a raw predictability matrix (exposed so tests can check symmetry
   directly). The transitivity step reads from post-encounter snapshots
   of both rows: updating in place let [via_a] read a [p.(a).(c)] that
   [via_b] had just raised in the same iteration, making the result
   depend on which node was passed as [a]. *)
let encounter_update ~p_init ~beta p a b =
  p.(a).(b) <- p.(a).(b) +. ((1.0 -. p.(a).(b)) *. p_init);
  p.(b).(a) <- p.(b).(a) +. ((1.0 -. p.(b).(a)) *. p_init);
  let row_a = Array.copy p.(a) and row_b = Array.copy p.(b) in
  let n = Array.length p in
  for c = 0 to n - 1 do
    if c <> a && c <> b then begin
      let via_b = row_a.(b) *. row_b.(c) *. beta in
      if via_b > p.(a).(c) then p.(a).(c) <- via_b;
      let via_a = row_b.(a) *. row_a.(c) *. beta in
      if via_a > p.(b).(c) then p.(b).(c) <- via_a
    end
  done

let make ?(p_init = 0.75) ?(beta = 0.25) ?(gamma = 0.98) ?(time_unit = 30.0)
    ?(entry_bytes = 12) () : Protocol.packed =
  (module struct
    type t = {
      env : Env.t;
      queue : Send_queue.t;
      p : float array array;  (* p.(a).(b): a's predictability of meeting b *)
      last_aged : float array;
    }

    let name = "Prophet"

    let create env =
      let n = env.Env.num_nodes in
      {
        env;
        queue = Send_queue.create ();
        p = Array.init n (fun _ -> Array.make n 0.0);
        last_aged = Array.make n 0.0;
      }

    let age t ~now node =
      let elapsed = now -. t.last_aged.(node) in
      if elapsed > 0.0 then begin
        let factor = gamma ** (elapsed /. time_unit) in
        let row = t.p.(node) in
        for j = 0 to Array.length row - 1 do
          row.(j) <- row.(j) *. factor
        done;
        t.last_aged.(node) <- now
      end

    let on_created _ ~now:_ _ = ()

    let by_age (a : Buffer.entry) (b : Buffer.entry) =
      match Float.compare a.packet.Packet.created b.packet.Packet.created with
      | 0 -> Int.compare a.packet.Packet.id b.packet.Packet.id
      | n -> n

    let plan t ~sender ~receiver =
      Send_queue.begin_plan t.queue t.env ~sender ~receiver;
      let candidates = Send_queue.candidates t.env ~sender ~receiver in
      let direct, rest = Protocol.split_direct ~receiver candidates in
      (* Replicate only when the peer is strictly more likely to deliver. *)
      let forwardable =
        List.filter
          (fun (e : Buffer.entry) ->
            let dst = e.packet.Packet.dst in
            t.p.(receiver).(dst) > t.p.(sender).(dst))
          rest
      in
      let by_peer_predictability (a : Buffer.entry) (b : Buffer.entry) =
        match
          Float.compare
            t.p.(receiver).(b.packet.Packet.dst)
            t.p.(receiver).(a.packet.Packet.dst)
        with
        | 0 -> by_age a b
        | n -> n
      in
      Send_queue.push_entries t.queue ~cmp:by_age direct;
      Send_queue.push_entries t.queue ~cmp:by_peer_predictability forwardable;
      Send_queue.finish_plan t.queue

    let on_contact t { Protocol.now; a; b; meta_ok; _ } =
      Send_queue.begin_contact t.queue;
      age t ~now a;
      age t ~now b;
      let n = t.env.Env.num_nodes in
      let meta =
        if meta_ok then begin
          encounter_update ~p_init ~beta t.p a b;
          (* Both nodes ship their predictability vectors. *)
          2 * n * entry_bytes
        end
        else begin
          (* The meeting itself is first-hand knowledge; the transitivity
             step and the byte charge need the peer's shipped vector,
             which the fault ate. *)
          t.p.(a).(b) <- t.p.(a).(b) +. ((1.0 -. t.p.(a).(b)) *. p_init);
          t.p.(b).(a) <- t.p.(b).(a) +. ((1.0 -. t.p.(b).(a)) *. p_init);
          0
        end
      in
      plan t ~sender:a ~receiver:b;
      plan t ~sender:b ~receiver:a;
      meta

    let next_packet t ~now:_ ~sender ~receiver ~budget =
      Send_queue.next t.queue t.env ~sender ~receiver ~budget

    let on_transfer _ ~now:_ ~sender:_ ~receiver:_ _ ~delivered:_ = ()

    let drop_candidate t ~now:_ ~node ~incoming:_ =
      (* Evict the packet this node is least likely to deliver. *)
      let entries = Env.buffered_entries t.env node in
      let worst =
        List.fold_left
          (fun acc (e : Buffer.entry) ->
            let score = t.p.(node).(e.packet.Packet.dst) in
            match acc with
            | Some (_, s) when s <= score -> acc
            | _ -> Some (e.packet, score))
          None entries
      in
      Option.map fst worst

    let on_dropped _ ~now:_ ~node:_ _ = ()

    let on_reboot t ~now ~node ~lost:_ =
      (* The node's learned predictabilities die with it; what peers
         believe about the node survives (they saw no crash). *)
      Array.fill t.p.(node) 0 (Array.length t.p.(node)) 0.0;
      t.last_aged.(node) <- now
  end : Protocol.S)
