open Rapid_trace
open Rapid_lp

type how = Ilp_exact | Ilp_incumbent | Bound

type verdict = {
  avg_delay_all : float;
  delivered : int;
  created : int;
  delivery_rate : float;
  how : how;
}

(* Earliest arrival of packet [p] at every node, ignoring cross-packet
   bandwidth contention. *)
let earliest_arrival (trace : Trace.t) (p : Workload.spec) =
  let reach = Array.make trace.Trace.num_nodes infinity in
  reach.(p.Workload.src) <- p.Workload.created;
  Array.iter
    (fun (c : Contact.t) ->
      if c.Contact.bytes >= p.Workload.size then begin
        if reach.(c.Contact.a) <= c.Contact.time && c.Contact.time < reach.(c.Contact.b)
        then reach.(c.Contact.b) <- c.Contact.time;
        if reach.(c.Contact.b) <= c.Contact.time && c.Contact.time < reach.(c.Contact.a)
        then reach.(c.Contact.a) <- c.Contact.time
      end)
    trace.Trace.contacts;
  reach

(* Latest time at which holding packet [p] at a node still allows reaching
   the destination (reverse sweep). *)
let latest_departure (trace : Trace.t) (p : Workload.spec) =
  let l = Array.make trace.Trace.num_nodes neg_infinity in
  l.(p.Workload.dst) <- infinity;
  let m = Array.length trace.Trace.contacts in
  for i = m - 1 downto 0 do
    let c = trace.Trace.contacts.(i) in
    if c.Contact.bytes >= p.Workload.size then begin
      if l.(c.Contact.b) >= c.Contact.time && c.Contact.time > l.(c.Contact.a) then
        l.(c.Contact.a) <- c.Contact.time;
      if l.(c.Contact.a) >= c.Contact.time && c.Contact.time > l.(c.Contact.b) then
        l.(c.Contact.b) <- c.Contact.time
    end
  done;
  l

let summarize_delays ~duration ~how delays_opt specs =
  let n = List.length specs in
  let total, delivered =
    List.fold_left2
      (fun (acc, k) d (s : Workload.spec) ->
        match d with
        | Some t -> (acc +. (t -. s.Workload.created), k + 1)
        | None -> (acc +. (duration -. s.Workload.created), k))
      (0.0, 0) delays_opt specs
  in
  {
    avg_delay_all = (if n = 0 then nan else total /. float_of_int n);
    delivered;
    created = n;
    delivery_rate = (if n = 0 then 0.0 else float_of_int delivered /. float_of_int n);
    how;
  }

let contention_free ~trace ~workload =
  let delays =
    List.map
      (fun (s : Workload.spec) ->
        let reach = earliest_arrival trace s in
        let t = reach.(s.Workload.dst) in
        if Float.is_finite t then Some t else None)
      workload
  in
  summarize_delays ~duration:trace.Trace.duration ~how:Bound delays workload

(* One directed arc of the time-expanded graph. *)
type arc = { contact : int; from_ : int; to_ : int; time : float }

let build_arcs (trace : Trace.t) =
  let arcs = ref [] in
  Array.iteri
    (fun k (c : Contact.t) ->
      arcs :=
        { contact = k; from_ = c.Contact.b; to_ = c.Contact.a; time = c.Contact.time }
        :: { contact = k; from_ = c.Contact.a; to_ = c.Contact.b; time = c.Contact.time }
        :: !arcs)
    trace.Trace.contacts;
  (* Ascending contact order; within a contact the two directions are
     adjacent. *)
  List.sort (fun a b -> Int.compare a.contact b.contact) !arcs

type objective = Min_total_delay | Max_deliveries

let evaluate ?(objective = Min_total_delay) ?(max_vars = 40_000)
    ?(max_rows = 48_000) ?(max_nnz = 8_000_000) ?(max_bb_nodes = 600)
    ?(max_work = 2_000_000_000) ~trace ~workload () =
  let specs = Array.of_list workload in
  let np = Array.length specs in
  if np = 0 then
    { avg_delay_all = nan; delivered = 0; created = 0; delivery_rate = 0.0;
      how = Ilp_exact }
  else begin
    let all_arcs = build_arcs trace in
    let num_contacts = Array.length trace.Trace.contacts in
    let num_nodes = trace.Trace.num_nodes in
    (* Per-packet usable arcs after reachability pruning. *)
    let usable =
      Array.map
        (fun (s : Workload.spec) ->
          let reach = earliest_arrival trace s in
          let depart = latest_departure trace s in
          List.filter
            (fun a ->
              a.time >= s.Workload.created
              && trace.Trace.contacts.(a.contact).Contact.bytes >= s.Workload.size
              && reach.(a.from_) <= a.time
              && depart.(a.to_) >= a.time)
            all_arcs)
        specs
    in
    let num_x = Array.fold_left (fun acc l -> acc + List.length l) 0 usable in
    (* Exact row count. X <= 1 lives on the columns (bounded-variable
       simplex), so rows are causality per (packet, arc) + receive-once per
       (packet, node) + one bandwidth row per touched contact. *)
    let contact_used = Array.make num_contacts false in
    let recv_rows = ref 0 in
    let node_mark = Array.make num_nodes (-1) in
    Array.iteri
      (fun pi arcs ->
        List.iter
          (fun a ->
            contact_used.(a.contact) <- true;
            if node_mark.(a.to_) <> pi then begin
              node_mark.(a.to_) <- pi;
              incr recv_rows
            end)
          arcs)
      usable;
    let bw_rows =
      Array.fold_left (fun acc u -> if u then acc + 1 else acc) 0 contact_used
    in
    let rows = num_x + !recv_rows + bw_rows in
    (* Exact model nnz, mirroring the sorted-row causality build below
       without materializing it: every variable appears once in its
       contact's bandwidth row and once in its target node's receive-once
       row, and a causality row holds the arc itself plus the running
       per-node prefix of earlier in/out terms. The sparse revised simplex
       stores the matrix once (CSC + CSR), so [max_nnz] caps the model
       footprint where the dense tableau's cell count used to. *)
    let causality_nnz =
      let total = ref 0 in
      let pcount = Array.make num_nodes 0 in
      Array.iter
        (fun arcs ->
          let arcs = Array.of_list arcs in
          let n_arcs = Array.length arcs in
          let touched = ref [] in
          let d = ref 0 in
          while !d < n_arcs do
            let e = ref !d in
            while !e < n_arcs && arcs.(!e).contact = arcs.(!d).contact do
              incr e
            done;
            for k = !d to !e - 1 do
              total := !total + 1 + pcount.(arcs.(k).from_)
            done;
            for k = !d to !e - 1 do
              let a = arcs.(k) in
              if pcount.(a.from_) = 0 then touched := a.from_ :: !touched;
              pcount.(a.from_) <- pcount.(a.from_) + 1;
              if pcount.(a.to_) = 0 then touched := a.to_ :: !touched;
              pcount.(a.to_) <- pcount.(a.to_) + 1
            done;
            d := !e
          done;
          List.iter (fun n -> pcount.(n) <- 0) !touched)
        usable;
      !total
    in
    let nnz = (2 * num_x) + causality_nnz in
    if num_x = 0 then
      summarize_delays ~duration:trace.Trace.duration ~how:Ilp_exact
        (List.map (fun _ -> None) workload)
        workload
    else if num_x > max_vars || rows > max_rows || nnz > max_nnz then
      { (contention_free ~trace ~workload) with how = Bound }
    else begin
      let problem = Lp_problem.create ~num_vars:num_x in
      (* Variable layout: packets in order, arcs in usable order —
         X(pi, ai) is column [offset.(pi) + ai]. *)
      let offset = Array.make np 0 in
      let next = ref 0 in
      Array.iteri
        (fun pi arcs ->
          offset.(pi) <- !next;
          next := !next + List.length arcs)
        usable;
      let duration = trace.Trace.duration in
      (* Min_total_delay: a delivery at t reduces the total by (horizon - t);
         Max_deliveries: every delivery counts -1. *)
      let obj_terms = ref [] in
      Array.iteri
        (fun pi arcs ->
          let dst = specs.(pi).Workload.dst in
          List.iteri
            (fun ai a ->
              if a.to_ = dst then begin
                let coeff =
                  match objective with
                  | Min_total_delay -> a.time -. duration
                  | Max_deliveries -> -1.0
                in
                obj_terms := (offset.(pi) + ai, coeff) :: !obj_terms
              end)
            arcs)
        usable;
      Lp_problem.set_objective problem !obj_terms;
      (* Bandwidth per contact, emitted in contact order (a Hashtbl.iter
         here made row order — and hence pivot choices — vary run to
         run). Packet sizes and contact capacities are integral bytes, so
         each row is Chvatal-Gomory rounded by the gcd g of its sizes:
         sum (size/g) X <= floor(bytes/g). The integral feasible set is
         untouched (every 0/1 point satisfies one iff the other), but the
         LP relaxation is strictly tighter whenever bytes is not a
         multiple of g — exactly the contended instances whose weak
         fractional bounds otherwise keep branch-and-bound from closing. *)
      let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
      let per_contact = Array.make num_contacts [] in
      Array.iteri
        (fun pi arcs ->
          let size = specs.(pi).Workload.size in
          List.iteri
            (fun ai a ->
              per_contact.(a.contact) <-
                (offset.(pi) + ai, size) :: per_contact.(a.contact))
            arcs)
        usable;
      Array.iteri
        (fun k terms ->
          if terms <> [] then begin
            let g = List.fold_left (fun acc (_, s) -> gcd acc s) 0 terms in
            let g = max 1 g in
            let terms =
              List.map (fun (v, s) -> (v, float_of_int (s / g))) terms
            in
            Lp_problem.add_constraint problem terms Lp_problem.Le
              (float_of_int (trace.Trace.contacts.(k).Contact.bytes / g))
          end)
        per_contact;
      (* Per packet: receive-once and causality. *)
      let incoming = Array.make num_nodes [] in
      let prefix = Array.make num_nodes [] in
      Array.iteri
        (fun pi arcs ->
          let src = specs.(pi).Workload.src in
          let arcs = Array.of_list arcs in
          let n_arcs = Array.length arcs in
          let var ai = offset.(pi) + ai in
          (* Receive at most once per node, nodes in ascending order. *)
          let touched = ref [] in
          Array.iteri
            (fun ai a ->
              if incoming.(a.to_) = [] then touched := a.to_ :: !touched;
              incoming.(a.to_) <- (var ai, 1.0) :: incoming.(a.to_))
            arcs;
          List.iter
            (fun node ->
              Lp_problem.add_constraint problem incoming.(node) Lp_problem.Le
                1.0;
              incoming.(node) <- [])
            (List.sort Int.compare !touched);
          (* Causality: an arc out of node n at contact k needs the packet
             present: X_d + (prior outs of n) - (prior ins of n) <= [n=src].
             Arc lists are contact-ordered, so one pass suffices: emit each
             contact group's rows against the running per-node prefix of
             earlier in/out terms, then fold the group in (same-contact arcs
             must not see each other). The seed rescanned all arcs per row,
             O(n^2) per packet. *)
          let touched = ref [] in
          let d = ref 0 in
          while !d < n_arcs do
            let e = ref !d in
            while
              !e < n_arcs && arcs.(!e).contact = arcs.(!d).contact
            do
              incr e
            done;
            for k = !d to !e - 1 do
              let n = arcs.(k).from_ in
              let rhs = if n = src then 1.0 else 0.0 in
              Lp_problem.add_constraint problem
                ((var k, 1.0) :: prefix.(n))
                Lp_problem.Le rhs
            done;
            for k = !d to !e - 1 do
              let a = arcs.(k) in
              if prefix.(a.from_) = [] then touched := a.from_ :: !touched;
              prefix.(a.from_) <- (var k, 1.0) :: prefix.(a.from_);
              if prefix.(a.to_) = [] then touched := a.to_ :: !touched;
              prefix.(a.to_) <- (var k, -1.0) :: prefix.(a.to_)
            done;
            d := !e
          done;
          List.iter (fun n -> prefix.(n) <- []) !touched;
          (* X in [0, 1], integral: column bounds, not rows. *)
          for d = 0 to n_arcs - 1 do
            Lp_problem.set_upper problem (var d) 1.0;
            Lp_problem.mark_integer problem (var d)
          done)
        usable;
      (* A revised-simplex pivot costs one FTRAN + one BTRAN + a pivot-row
         gather + O(n + m) bookkeeping — proportional to the model's
         sparsity, not rows x columns — so [max_work] translates into a
         per-instance pivot budget through that estimate. Hard instances
         still give up (and fall back or report an incumbent) in bounded
         time, but the same default budget now buys orders of magnitude
         more pivots than the dense tableau's cell-sweep accounting did. *)
      let work_per_pivot =
        (4 * (rows + num_x)) + (8 * (nnz / max 1 rows))
      in
      let max_pivots = max 1_000 (max_work / max 1 work_per_pivot) in
      match Ilp.solve ~max_nodes:max_bb_nodes ~max_pivots problem with
      | Ilp.Solved o ->
          let delays =
            Array.to_list
              (Array.mapi
                 (fun pi (s : Workload.spec) ->
                   let arcs = Array.of_list usable.(pi) in
                   let best = ref None in
                   Array.iteri
                     (fun ai a ->
                       if
                         a.to_ = s.Workload.dst
                         && o.Ilp.solution.(offset.(pi) + ai) > 0.5
                       then
                         match !best with
                         | Some t when t <= a.time -> ()
                         | _ -> best := Some a.time)
                     arcs;
                   !best)
                 specs)
          in
          let how = if o.Ilp.proven_optimal then Ilp_exact else Ilp_incumbent in
          summarize_delays ~duration ~how delays workload
      | Ilp.Infeasible | Ilp.Unbounded | Ilp.No_incumbent ->
          (* The program is always feasible (all-zero = nothing delivered);
             reaching here means the solver gave up — fall back. *)
          { (contention_free ~trace ~workload) with how = Bound }
    end
  end
