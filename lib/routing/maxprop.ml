open Rapid_prelude
open Rapid_sim

let make ?(ack_entry_bytes = 8) ?(vector_entry_bytes = 12) () : Protocol.packed =
  (module struct
    type t = {
      env : Env.t;
      queue : Send_queue.t;
      acks : Protocol.Ack_store.t;
      (* own.(x): x's meeting-likelihood vector over all nodes. *)
      own : float array array;
      (* view.(x).(y): x's latest copy of y's vector (None = never heard). *)
      view : float array option array array;
      (* Moving average of observed transfer-opportunity bytes. *)
      avg_transfer : Moving_average.Cumulative.t;
      (* Dijkstra results cached within a contact (cleared on each): drop
         decisions during heavy eviction would otherwise recompute them
         per evicted packet. *)
      cost_cache : (int, float array) Hashtbl.t;
    }

    let name = "MaxProp"

    let uniform n =
      Array.init n (fun _ -> if n > 1 then 1.0 /. float_of_int (n - 1) else 0.0)

    let create env =
      let n = env.Env.num_nodes in
      let uniform () = uniform n in
      {
        env;
        queue = Send_queue.create ();
        acks = Protocol.Ack_store.create ~num_nodes:n;
        own = Array.init n (fun _ -> uniform ());
        view = Array.init n (fun _ -> Array.make n None);
        avg_transfer = Moving_average.Cumulative.create ();
        cost_cache = Hashtbl.create 4;
      }

    let bump_likelihood t ~node ~met =
      let row = t.own.(node) in
      row.(met) <- row.(met) +. 1.0;
      let sum = Array.fold_left ( +. ) 0.0 row in
      Array.iteri (fun j v -> row.(j) <- v /. sum) row

    (* Cheapest-path costs from [src] to every node under [observer]'s
       learned vectors; edge (u, v) costs 1 - f^u(v). Unknown vectors fall
       back to the uniform prior. *)
    let all_path_costs t ~observer ~src =
      let n = t.env.Env.num_nodes in
      let default = 1.0 /. float_of_int (max 1 (n - 1)) in
      let vector_of u =
        if u = observer then Some t.own.(observer) else t.view.(observer).(u)
      in
      let dist = Array.make n infinity in
      let queue = Pqueue.create () in
      dist.(src) <- 0.0;
      Pqueue.push queue 0.0 src;
      let rec loop () =
        match Pqueue.pop queue with
        | None -> ()
        | Some (d, u) ->
            if d <= dist.(u) then begin
              let vec = vector_of u in
              for v = 0 to n - 1 do
                if v <> u then begin
                  let f =
                    match vec with Some vec -> vec.(v) | None -> default
                  in
                  let w = 1.0 -. Float.min 1.0 (Float.max 0.0 f) in
                  if d +. w < dist.(v) then begin
                    dist.(v) <- d +. w;
                    Pqueue.push queue dist.(v) v
                  end
                end
              done;
              loop ()
            end
            else loop ()
      in
      loop ();
      dist

    let cached_costs t ~node =
      match Hashtbl.find_opt t.cost_cache node with
      | Some dist -> dist
      | None ->
          let dist = all_path_costs t ~observer:node ~src:node in
          Hashtbl.replace t.cost_cache node dist;
          dist

    let on_created _ ~now:_ _ = ()

    let by_age (x : Buffer.entry) (y : Buffer.entry) =
      match Float.compare x.packet.Packet.created y.packet.Packet.created with
      | 0 -> Int.compare x.packet.Packet.id y.packet.Packet.id
      | n -> n

    (* Adaptive hop-count threshold: the head of the buffer (packets sorted
       by hops) claims up to half the expected transfer opportunity. *)
    let hop_threshold t ~sender =
      let entries = Env.buffered_entries t.env sender in
      let avg =
        Moving_average.Cumulative.value_or t.avg_transfer ~default:infinity
      in
      let head_target = avg /. 2.0 in
      let sorted =
        List.sort
          (fun (x : Buffer.entry) (y : Buffer.entry) -> Int.compare x.hops y.hops)
          entries
      in
      let rec scan acc_bytes threshold = function
        | [] -> threshold
        | (e : Buffer.entry) :: rest ->
            let acc_bytes = acc_bytes +. float_of_int e.packet.Packet.size in
            if acc_bytes > head_target then e.hops
            else scan acc_bytes (e.hops + 1) rest
      in
      scan 0.0 0 sorted

    let plan t ~sender ~receiver =
      Send_queue.begin_plan t.queue t.env ~sender ~receiver;
      let candidates = Send_queue.candidates t.env ~sender ~receiver in
      let direct, rest = Protocol.split_direct ~receiver candidates in
      let threshold = hop_threshold t ~sender in
      let head, tail =
        List.partition (fun (e : Buffer.entry) -> e.hops < threshold) rest
      in
      let by_hops (x : Buffer.entry) (y : Buffer.entry) =
        match Int.compare x.hops y.hops with 0 -> by_age x y | n -> n
      in
      let costs = cached_costs t ~node:sender in
      let by_cost (x : Buffer.entry) (y : Buffer.entry) =
        match
          Float.compare costs.(x.packet.Packet.dst) costs.(y.packet.Packet.dst)
        with
        | 0 -> by_age x y
        | n -> n
      in
      Send_queue.push_entries t.queue ~cmp:by_age direct;
      Send_queue.push_entries t.queue ~cmp:by_hops head;
      Send_queue.push_entries t.queue ~cmp:by_cost tail;
      Send_queue.finish_plan t.queue

    let on_contact t { Protocol.now; a; b; budget; meta_ok; _ } =
      Send_queue.begin_contact t.queue;
      Hashtbl.reset t.cost_cache;
      Moving_average.Cumulative.add t.avg_transfer (float_of_int budget);
      bump_likelihood t ~node:a ~met:b;
      bump_likelihood t ~node:b ~met:a;
      let meta =
        if meta_ok then begin
          (* Exchange own vectors. *)
          t.view.(a).(b) <- Some (Array.copy t.own.(b));
          t.view.(b).(a) <- Some (Array.copy t.own.(a));
          let fresh = Protocol.Ack_store.exchange t.acks ~a ~b in
          Protocol.Ack_store.purge t.acks t.env ~now ~node:a
            ~on_purge:(fun _ -> ());
          Protocol.Ack_store.purge t.acks t.env ~now ~node:b
            ~on_purge:(fun _ -> ());
          (2 * t.env.Env.num_nodes * vector_entry_bytes)
          + (fresh * ack_entry_bytes)
        end
        else
          (* Lost metadata: likelihood bumps above are first-hand (each
             node saw whom it met), but vectors and acks went unheard. *)
          0
      in
      plan t ~sender:a ~receiver:b;
      plan t ~sender:b ~receiver:a;
      meta

    let next_packet t ~now:_ ~sender ~receiver ~budget =
      Send_queue.next t.queue t.env ~sender ~receiver ~budget

    let on_transfer t ~now:_ ~sender ~receiver (p : Packet.t) ~delivered =
      if delivered then begin
        Protocol.Ack_store.learn t.acks ~node:sender ~packet_id:p.Packet.id;
        Protocol.Ack_store.learn t.acks ~node:receiver ~packet_id:p.Packet.id
      end

    let drop_candidate t ~now:_ ~node ~incoming:_ =
      (* Tail eviction: most-replicated (highest hops) first, then the
         packet with the worst delivery likelihood. *)
      let entries = Env.buffered_entries t.env node in
      let costs = cached_costs t ~node in
      let worst =
        List.fold_left
          (fun acc (e : Buffer.entry) ->
            let h = e.hops and c = costs.(e.packet.Packet.dst) in
            match acc with
            | Some (_, bh, bc) when (bh, bc) >= (h, c) -> acc
            | _ -> Some (e.packet, h, c))
          None entries
      in
      Option.map (fun (p, _, _) -> p) worst

    let on_dropped _ ~now:_ ~node:_ _ = ()

    let on_reboot t ~now:_ ~node ~lost:_ =
      (* Back to the uniform prior, forgetting every vector heard and
         every ack learned; peers keep their (now stale) copy of this
         node's old vector. *)
      let n = t.env.Env.num_nodes in
      t.own.(node) <- uniform n;
      Array.fill t.view.(node) 0 n None;
      Protocol.Ack_store.reset_node t.acks ~node
  end : Protocol.S)
