open Rapid_prelude
open Rapid_sim

let by_age (a : Buffer.entry) (b : Buffer.entry) =
  match Float.compare a.packet.Packet.created b.packet.Packet.created with
  | 0 -> Int.compare a.packet.Packet.id b.packet.Packet.id
  | n -> n

let make ?(with_acks = false) ?(summary_vector = false) ?(ack_entry_bytes = 8)
    () : Protocol.packed =
  (module struct
    type t = {
      env : Env.t;
      queue : Send_queue.t;
      acks : Protocol.Ack_store.t;
    }

    let name =
      (if with_acks then "Random+acks" else "Random")
      ^ if summary_vector then "(sv)" else ""

    let create env =
      {
        env;
        queue = Send_queue.create ();
        acks = Protocol.Ack_store.create ~num_nodes:env.Env.num_nodes;
      }

    let on_created _ ~now:_ _ = ()

    let plan t ~sender ~receiver =
      (* Paper baseline: "replicates randomly chosen packets for the
         duration of the transfer opportunity" — without summary vectors
         the candidate set is the whole buffer, duplicates included, and
         the engine charges the waste. Direct deliveries still go first
         (any node knows who it is talking to). *)
      Send_queue.begin_plan ~check_peer:summary_vector t.queue t.env ~sender
        ~receiver;
      let entries =
        if summary_vector then Send_queue.candidates t.env ~sender ~receiver
        else Env.buffered_entries t.env sender
      in
      let direct, rest = Protocol.split_direct ~receiver entries in
      Send_queue.push_entries t.queue ~cmp:by_age direct;
      let rest = Array.of_list rest in
      Rng.shuffle t.env.Env.rng rest;
      Array.iter
        (fun (e : Buffer.entry) -> Send_queue.push t.queue e.packet)
        rest;
      Send_queue.finish_plan t.queue

    let on_contact t { Protocol.now; a; b; meta_ok; _ } =
      Send_queue.begin_contact t.queue;
      let meta =
        if with_acks && meta_ok then begin
          let fresh = Protocol.Ack_store.exchange t.acks ~a ~b in
          Protocol.Ack_store.purge t.acks t.env ~now ~node:a ~on_purge:(fun _ -> ());
          Protocol.Ack_store.purge t.acks t.env ~now ~node:b ~on_purge:(fun _ -> ());
          fresh * ack_entry_bytes
        end
        else 0
      in
      plan t ~sender:a ~receiver:b;
      plan t ~sender:b ~receiver:a;
      meta

    let next_packet t ~now:_ ~sender ~receiver ~budget =
      Send_queue.next t.queue t.env ~sender ~receiver ~budget

    let on_transfer t ~now:_ ~sender ~receiver (p : Packet.t) ~delivered =
      if delivered && with_acks then begin
        Protocol.Ack_store.learn t.acks ~node:sender ~packet_id:p.Packet.id;
        Protocol.Ack_store.learn t.acks ~node:receiver ~packet_id:p.Packet.id
      end

    let drop_candidate t ~now:_ ~node ~incoming:_ =
      match Env.buffered_entries t.env node with
      | [] -> None
      | entries ->
          let arr = Array.of_list entries in
          Some (Rng.sample t.env.Env.rng arr).Buffer.packet

    let on_dropped _ ~now:_ ~node:_ _ = ()

    let on_reboot t ~now:_ ~node ~lost:_ =
      if with_acks then Protocol.Ack_store.reset_node t.acks ~node
  end : Protocol.S)
