(** Optimal, the paper's upper-bound baseline (§6.2.4, Fig. 13, Appendix D).

    With node meetings known a priori, average delay is minimized by the
    appendix-D integer linear program. The paper used CPLEX; we build the
    same program and solve it with {!Rapid_lp}. As in the paper, "the delay
    of undelivered packets is set to the time the packet spent in the
    system" (the trace horizon minus creation).

    Because full future knowledge never benefits from replication (any
    delivered replica traces a single time-respecting path, and dropping
    the other replicas only frees bandwidth), the program routes a single
    copy per packet: variables X(p, d) choose directed contact arcs, with
    per-opportunity bandwidth coupling, per-node receive-once constraints,
    and causality (a node forwards only what it holds). Per-packet arcs are
    pruned to those forward-reachable from the source and co-reachable to
    the destination.

    [evaluate] solves the ILP when the instance fits the solver budget and
    otherwise falls back to {!contention_free} — a lower bound on delay
    (i.e. an optimistic Optimal) that is exact as load vanishes; the
    result records which method ran. *)

type how = Ilp_exact | Ilp_incumbent | Bound

type verdict = {
  avg_delay_all : float;
      (** Mean delay with undelivered packets charged [horizon − created]. *)
  delivered : int;
  created : int;
  delivery_rate : float;
  how : how;
}

val contention_free :
  trace:Rapid_trace.Trace.t -> workload:Rapid_trace.Workload.spec list -> verdict
(** Earliest time-respecting delivery per packet, ignoring bandwidth
    contention between packets (per-contact size limits still apply). *)

type objective =
  | Min_total_delay
      (** The paper's Fig. 13 objective (undelivered = time in system). *)
  | Max_deliveries
      (** The Theorem-2 objective: number of packets delivered — the
          quantity the EDP reduction preserves. *)

val evaluate :
  ?objective:objective ->
  ?max_vars:int ->
  ?max_rows:int ->
  ?max_nnz:int ->
  ?max_bb_nodes:int ->
  ?max_work:int ->
  trace:Rapid_trace.Trace.t ->
  workload:Rapid_trace.Workload.spec list ->
  unit ->
  verdict
(** ILP with size and work guards (defaults: [Min_total_delay], 40_000
    variables, 48_000 rows, 8M constraint-matrix nonzeros, 600
    branch-and-bound nodes, 2G work units). X <= 1 and branch constraints
    are column bounds of the bounded-variable simplex, not rows, so the
    row count is causality + receive-once + bandwidth only; [max_nnz]
    caps the sparse model footprint (the exact nonzero count is computed
    before building anything), and [max_work] converts into a
    per-instance simplex pivot budget through the revised simplex's
    per-pivot cost estimate — O(nnz/m) per triangular solve plus O(n + m)
    bookkeeping, not rows x columns — so hard instances give up in
    bounded time (ILP hardness is contention, not size — see Theorem 2). Constraint rows are emitted in sorted (contact, node) key
    order, so the model — and therefore the solver's pivot path — is
    byte-reproducible run to run. *)
