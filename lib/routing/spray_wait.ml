open Rapid_prelude
open Rapid_sim

let make ?(l = 12) () : Protocol.packed =
  (module struct
    type t = {
      env : Env.t;
      queue : Send_queue.t;
      (* packet id * num_nodes + node -> remaining logical copies at that
         node (flat int key: no tuple boxing on the per-entry plan scan). *)
      tokens : (int, int) Hashtbl.t;
    }

    let name = Printf.sprintf "SprayWait(L=%d)" l

    let create env =
      { env; queue = Send_queue.create (); tokens = Hashtbl.create 256 }

    let key t ~node ~packet_id = (packet_id * t.env.Env.num_nodes) + node

    let tokens_of t ~node ~packet_id =
      Option.value (Hashtbl.find_opt t.tokens (key t ~node ~packet_id)) ~default:1

    let on_created t ~now:_ (p : Packet.t) =
      Hashtbl.replace t.tokens (key t ~node:p.Packet.src ~packet_id:p.Packet.id) l

    let by_age (a : Buffer.entry) (b : Buffer.entry) =
      match Float.compare a.packet.Packet.created b.packet.Packet.created with
      | 0 -> Int.compare a.packet.Packet.id b.packet.Packet.id
      | n -> n

    let plan t ~sender ~receiver =
      Send_queue.begin_plan t.queue t.env ~sender ~receiver;
      let candidates = Send_queue.candidates t.env ~sender ~receiver in
      let direct, rest = Protocol.split_direct ~receiver candidates in
      (* Spray phase requires more than one logical copy in hand. The
         token count is looked up once per entry here (decorate), never
         inside the sort comparator. *)
      let sprayable =
        List.filter_map
          (fun (e : Buffer.entry) ->
            let n = tokens_of t ~node:sender ~packet_id:e.packet.Packet.id in
            if n > 1 then Some (n, e) else None)
          rest
      in
      Send_queue.push_entries t.queue ~cmp:by_age direct;
      (* Most copies first spreads widest fastest; ties oldest-first —
         (tokens desc, created, id) is a total order, so the unstable
         array sort is deterministic. *)
      let arr = Array.of_list sprayable in
      Array.sort
        (fun (ta, (a : Buffer.entry)) (tb, (b : Buffer.entry)) ->
          match Int.compare tb ta with 0 -> by_age a b | n -> n)
        arr;
      Array.iter (fun (_, (e : Buffer.entry)) -> Send_queue.push t.queue e.packet) arr;
      Send_queue.finish_plan t.queue

    let on_contact t { Protocol.a; b; _ } =
      Send_queue.begin_contact t.queue;
      plan t ~sender:a ~receiver:b;
      plan t ~sender:b ~receiver:a;
      0

    let next_packet t ~now:_ ~sender ~receiver ~budget =
      Send_queue.next t.queue t.env ~sender ~receiver ~budget

    let on_transfer t ~now:_ ~sender ~receiver (p : Packet.t) ~delivered =
      let id = p.Packet.id in
      if delivered then
        (* The sender relinquished its copy on delivery: retire its
           token entry rather than leaving it to go stale. *)
        Hashtbl.remove t.tokens (key t ~node:sender ~packet_id:id)
      else begin
        let n = tokens_of t ~node:sender ~packet_id:id in
        let give = max 1 (n / 2) in
        let keep = max 1 (n - give) in
        Hashtbl.replace t.tokens (key t ~node:sender ~packet_id:id) keep;
        Hashtbl.replace t.tokens (key t ~node:receiver ~packet_id:id) give
      end

    let drop_candidate t ~now:_ ~node ~incoming:_ =
      (* §6.3.2: Spray and Wait deletes packets randomly under pressure. *)
      match Env.buffered_entries t.env node with
      | [] -> None
      | entries ->
          let arr = Array.of_list entries in
          Some (Rng.sample t.env.Env.rng arr).Buffer.packet

    let on_dropped t ~now:_ ~node (p : Packet.t) =
      Hashtbl.remove t.tokens (key t ~node ~packet_id:p.Packet.id)

    let on_reboot t ~now:_ ~node ~lost:_ =
      (* Tickets live with the copies, which the crash destroyed. A copy
         re-sprayed to this node later arrives with fresh tokens. *)
      let n = t.env.Env.num_nodes in
      Hashtbl.filter_map_inplace
        (fun k count -> if k mod n = node then None else Some count)
        t.tokens
  end : Protocol.S)
