open Rapid_prelude
open Rapid_sim

let make ?(l = 12) () : Protocol.packed =
  (module struct
    type t = {
      env : Env.t;
      ranking : Ranking.t;
      (* (node, packet id) -> remaining logical copies at that node. *)
      tokens : (int * int, int) Hashtbl.t;
    }

    let name = Printf.sprintf "SprayWait(L=%d)" l

    let create env =
      { env; ranking = Ranking.create (); tokens = Hashtbl.create 256 }

    let tokens_of t ~node ~packet_id =
      Option.value (Hashtbl.find_opt t.tokens (node, packet_id)) ~default:1

    let on_created t ~now:_ (p : Packet.t) =
      Hashtbl.replace t.tokens (p.Packet.src, p.Packet.id) l

    let by_age (a : Buffer.entry) (b : Buffer.entry) =
      match Float.compare a.packet.Packet.created b.packet.Packet.created with
      | 0 -> Int.compare a.packet.Packet.id b.packet.Packet.id
      | n -> n

    let rank t ~sender ~receiver =
      let candidates = Ranking.replication_candidates t.env ~sender ~receiver in
      let direct, rest = Protocol.split_direct ~receiver candidates in
      (* Spray phase requires more than one logical copy in hand. *)
      let sprayable =
        List.filter
          (fun (e : Buffer.entry) ->
            tokens_of t ~node:sender ~packet_id:e.packet.Packet.id > 1)
          rest
      in
      (* Most copies first spreads widest fastest; ties oldest-first. *)
      let by_tokens (a : Buffer.entry) (b : Buffer.entry) =
        let ta = tokens_of t ~node:sender ~packet_id:a.packet.Packet.id in
        let tb = tokens_of t ~node:sender ~packet_id:b.packet.Packet.id in
        match Int.compare tb ta with 0 -> by_age a b | n -> n
      in
      List.map
        (fun (e : Buffer.entry) -> e.packet)
        (List.sort by_age direct @ List.sort by_tokens sprayable)

    let on_contact t ~now:_ ~a ~b ~budget:_ ~meta_budget:_ ~meta_ok:_ =
      Ranking.begin_contact t.ranking;
      Ranking.set t.ranking ~sender:a ~receiver:b (rank t ~sender:a ~receiver:b);
      Ranking.set t.ranking ~sender:b ~receiver:a (rank t ~sender:b ~receiver:a);
      0

    let next_packet t ~now:_ ~sender ~receiver ~budget =
      Ranking.next t.ranking t.env ~sender ~receiver ~budget

    let on_transfer t ~now:_ ~sender ~receiver (p : Packet.t) ~delivered =
      let id = p.Packet.id in
      if delivered then
        (* The sender relinquished its copy on delivery: retire its
           token entry rather than leaving it to go stale. *)
        Hashtbl.remove t.tokens (sender, id)
      else begin
        let n = tokens_of t ~node:sender ~packet_id:id in
        let give = max 1 (n / 2) in
        let keep = max 1 (n - give) in
        Hashtbl.replace t.tokens (sender, id) keep;
        Hashtbl.replace t.tokens (receiver, id) give
      end

    let drop_candidate t ~now:_ ~node ~incoming:_ =
      (* §6.3.2: Spray and Wait deletes packets randomly under pressure. *)
      match Env.buffered_entries t.env node with
      | [] -> None
      | entries ->
          let arr = Array.of_list entries in
          Some (Rng.sample t.env.Env.rng arr).Buffer.packet

    let on_dropped t ~now:_ ~node (p : Packet.t) =
      Hashtbl.remove t.tokens (node, p.Packet.id)

    let on_reboot t ~now:_ ~node ~lost:_ =
      (* Tickets live with the copies, which the crash destroyed. A copy
         re-sprayed to this node later arrives with fresh tokens. *)
      Hashtbl.filter_map_inplace
        (fun (holder, _) count -> if holder = node then None else Some count)
        t.tokens
  end : Protocol.S)
