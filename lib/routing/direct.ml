open Rapid_sim

let make () : Protocol.packed =
  (module struct
    type t = { env : Env.t; session : Protocol.Session.t }

    let name = "Direct"
    let create env = { env; session = Protocol.Session.create () }
    let on_created _ ~now:_ _ = ()

    let on_contact t ~now:_ ~a:_ ~b:_ ~budget:_ ~meta_budget:_ ~meta_ok:_ =
      Protocol.Session.reset t.session;
      0

    let next_packet t ~now:_ ~sender ~receiver ~budget =
      let candidates =
        Protocol.candidate_entries t.env t.session ~sender ~receiver ~budget
      in
      let direct, _ = Protocol.split_direct ~receiver candidates in
      (* Oldest first. *)
      let direct =
        List.sort
          (fun (a : Buffer.entry) (b : Buffer.entry) ->
            Float.compare a.packet.Packet.created b.packet.Packet.created)
          direct
      in
      match direct with
      | [] -> None
      | e :: _ ->
          Protocol.Session.mark t.session ~sender ~packet_id:e.packet.Packet.id;
          Some e.packet

    let on_transfer _ ~now:_ ~sender:_ ~receiver:_ _ ~delivered:_ = ()

    let drop_candidate t ~now:_ ~node ~incoming:_ =
      (* Newest first: keep the packets that have waited longest. *)
      match
        List.sort
          (fun (a : Buffer.entry) (b : Buffer.entry) ->
            Float.compare b.packet.Packet.created a.packet.Packet.created)
          (Env.buffered_entries t.env node)
      with
      | [] -> None
      | e :: _ -> Some e.packet

    let on_dropped _ ~now:_ ~node:_ _ = ()

    (* Stateless beyond the session: nothing to forget. *)
    let on_reboot _ ~now:_ ~node:_ ~lost:_ = ()
  end : Protocol.S)
