open Rapid_trace
open Rapid_sim

let by_age (a : Buffer.entry) (b : Buffer.entry) =
  match Float.compare a.packet.Packet.created b.packet.Packet.created with
  | 0 -> Int.compare a.packet.Packet.id b.packet.Packet.id
  | n -> n

let make ~trace () : Protocol.packed =
  (module struct
    type t = { env : Env.t; queue : Send_queue.t }

    let name = "OracleForwarding"
    let create env = { env; queue = Send_queue.create () }
    let on_created _ ~now:_ _ = ()

    (* Earliest arrival time at [dst] starting from [node] holding the
       packet strictly after time [now] (the current contact may itself be
       used, so [>= now]). *)
    let earliest_delivery ~now ~node ~dst ~size =
      let reach = Array.make trace.Trace.num_nodes infinity in
      reach.(node) <- now;
      Array.iter
        (fun (c : Contact.t) ->
          if c.Contact.time >= now && c.Contact.bytes >= size then begin
            if
              reach.(c.Contact.a) <= c.Contact.time
              && c.Contact.time < reach.(c.Contact.b)
            then reach.(c.Contact.b) <- c.Contact.time;
            if
              reach.(c.Contact.b) <= c.Contact.time
              && c.Contact.time < reach.(c.Contact.a)
            then reach.(c.Contact.a) <- c.Contact.time
          end)
        trace.Trace.contacts;
      reach.(dst)

    let plan t ~now ~sender ~receiver =
      Send_queue.begin_plan t.queue t.env ~sender ~receiver;
      let candidates = Send_queue.candidates t.env ~sender ~receiver in
      let direct, rest = Protocol.split_direct ~receiver candidates in
      Send_queue.push_entries t.queue ~cmp:by_age direct;
      (* Forward iff handing over strictly improves the earliest-arrival
         estimate: the receiver (who has the packet from this instant) can
         deliver sooner than the sender could by keeping it past this
         contact. *)
      let forwardable =
        List.filter_map
          (fun (e : Buffer.entry) ->
            let p = e.packet in
            let dst = p.Packet.dst and size = p.Packet.size in
            let via_receiver = earliest_delivery ~now ~node:receiver ~dst ~size in
            let keeping =
              earliest_delivery ~now:(now +. 1e-9) ~node:sender ~dst ~size
            in
            if via_receiver < keeping then Some (p, via_receiver) else None)
          rest
      in
      let ordered =
        List.sort
          (fun ((pa : Packet.t), a) ((pb : Packet.t), b) ->
            match Float.compare a b with
            | 0 -> Int.compare pa.Packet.id pb.Packet.id
            | n -> n)
          forwardable
      in
      List.iter (fun (p, _) -> Send_queue.push t.queue p) ordered;
      Send_queue.finish_plan t.queue

    let on_contact t { Protocol.now; a; b; _ } =
      Send_queue.begin_contact t.queue;
      plan t ~now ~sender:a ~receiver:b;
      plan t ~now ~sender:b ~receiver:a;
      0

    let next_packet t ~now:_ ~sender ~receiver ~budget =
      Send_queue.next t.queue t.env ~sender ~receiver ~budget

    (* Single copy: the sender relinquishes the packet once forwarded. *)
    let on_transfer t ~now:_ ~sender ~receiver:_ (p : Packet.t) ~delivered =
      if not delivered then
        ignore (Buffer.remove t.env.Env.buffers.(sender) p.Packet.id)

    let drop_candidate t ~now ~node ~incoming:_ =
      (* Drop the packet whose delivery prospects are worst. *)
      let worst =
        List.fold_left
          (fun acc (e : Buffer.entry) ->
            let p = e.packet in
            let eta =
              earliest_delivery ~now ~node ~dst:p.Packet.dst ~size:p.Packet.size
            in
            match acc with
            | Some (_, best_eta) when best_eta >= eta -> acc
            | _ -> Some (p, eta))
          None
          (Env.buffered_entries t.env node)
      in
      Option.map fst worst

    let on_dropped _ ~now:_ ~node:_ _ = ()

    (* The oracle recomputes from the trace each contact: no soft state. *)
    let on_reboot _ ~now:_ ~node:_ ~lost:_ = ()
  end : Protocol.S)
