open Rapid_sim

(* Total order (heapsort in Send_queue is not stable): oldest first,
   ties by id, matching the seed's stable sort over id-ordered input. *)
let by_age (a : Buffer.entry) (b : Buffer.entry) =
  match Float.compare a.packet.Packet.created b.packet.Packet.created with
  | 0 -> Int.compare a.packet.Packet.id b.packet.Packet.id
  | n -> n

let make () : Protocol.packed =
  (module struct
    type t = { env : Env.t; queue : Send_queue.t }

    let name = "Epidemic"
    let create env = { env; queue = Send_queue.create () }
    let on_created _ ~now:_ _ = ()

    let plan t ~sender ~receiver =
      Send_queue.begin_plan t.queue t.env ~sender ~receiver;
      let candidates = Send_queue.candidates t.env ~sender ~receiver in
      let direct, rest = Protocol.split_direct ~receiver candidates in
      Send_queue.push_entries t.queue ~cmp:by_age direct;
      Send_queue.push_entries t.queue ~cmp:by_age rest;
      Send_queue.finish_plan t.queue

    let on_contact t { Protocol.a; b; _ } =
      Send_queue.begin_contact t.queue;
      plan t ~sender:a ~receiver:b;
      plan t ~sender:b ~receiver:a;
      0

    let next_packet t ~now:_ ~sender ~receiver ~budget =
      Send_queue.next t.queue t.env ~sender ~receiver ~budget

    let on_transfer _ ~now:_ ~sender:_ ~receiver:_ _ ~delivered:_ = ()

    let drop_candidate t ~now:_ ~node ~incoming:_ =
      (* FIFO eviction: oldest copy goes first. *)
      Buffer.fold_unordered t.env.Env.buffers.(node) ~init:None
        ~f:(fun acc (e : Buffer.entry) ->
          match acc with Some best when by_age best e <= 0 -> acc | _ -> Some e)
      |> Option.map (fun (e : Buffer.entry) -> e.packet)

    let on_dropped _ ~now:_ ~node:_ _ = ()

    (* Flooding keeps no per-node state: the wiped buffer is the state. *)
    let on_reboot _ ~now:_ ~node:_ ~lost:_ = ()
  end : Protocol.S)
