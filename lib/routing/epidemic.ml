open Rapid_sim

let by_age (a : Buffer.entry) (b : Buffer.entry) =
  match Float.compare a.packet.Packet.created b.packet.Packet.created with
  | 0 -> Int.compare a.packet.Packet.id b.packet.Packet.id
  | n -> n

let make () : Protocol.packed =
  (module struct
    type t = { env : Env.t; ranking : Ranking.t }

    let name = "Epidemic"
    let create env = { env; ranking = Ranking.create () }
    let on_created _ ~now:_ _ = ()

    let rank t ~sender ~receiver =
      let candidates = Ranking.replication_candidates t.env ~sender ~receiver in
      let direct, rest = Protocol.split_direct ~receiver candidates in
      List.map
        (fun (e : Buffer.entry) -> e.packet)
        (List.sort by_age direct @ List.sort by_age rest)

    let on_contact t ~now:_ ~a ~b ~budget:_ ~meta_budget:_ ~meta_ok:_ =
      Ranking.begin_contact t.ranking;
      Ranking.set t.ranking ~sender:a ~receiver:b (rank t ~sender:a ~receiver:b);
      Ranking.set t.ranking ~sender:b ~receiver:a (rank t ~sender:b ~receiver:a);
      0

    let next_packet t ~now:_ ~sender ~receiver ~budget =
      Ranking.next t.ranking t.env ~sender ~receiver ~budget

    let on_transfer _ ~now:_ ~sender:_ ~receiver:_ _ ~delivered:_ = ()

    let drop_candidate t ~now:_ ~node ~incoming:_ =
      (* FIFO eviction: oldest copy goes first. *)
      match List.sort by_age (Env.buffered_entries t.env node) with
      | [] -> None
      | e :: _ -> Some e.Buffer.packet

    let on_dropped _ ~now:_ ~node:_ _ = ()

    (* Flooding keeps no per-node state: the wiped buffer is the state. *)
    let on_reboot _ ~now:_ ~node:_ ~lost:_ = ()
  end : Protocol.S)
