(** Persistent, content-addressed experiment result store.

    Figures are built from hundreds of expensive [Engine.run] points, and
    the in-memory point cache dies with the process. This store keeps each
    point on disk as one self-describing JSON cell addressed by a stable
    digest of its full identity (store schema version + a caller-supplied
    canonical key document). A warm rerun of a figure then reads its
    points back instead of recomputing them, and an interrupted sweep
    resumes from the points it already finished.

    Guarantees:

    - {b content addressing}: the cell path is [dir/xy/<digest>.json]
      where [digest] is {!digest_of_key} — a canonical-form hash, so the
      key's JSON field order never matters and two processes agree on
      the address of a point.
    - {b atomic writes}: cells are written to a temp file in the same
      shard directory and [rename]d into place, so readers (including
      concurrent [--jobs] workers and other processes) only ever see
      absent or complete cells. A crash mid-write leaves a [*.tmp] file
      that readers ignore and {!gc}/{!clear} sweep away.
    - {b graceful degradation}: every cell embeds a checksum of its
      payload; a cell that fails to parse or verify is logged, counted
      under [store.corrupt_cells] and treated as a miss — the caller
      recomputes and the next write replaces the bad cell. A corrupt
      store can cost time, never correctness.
    - {b thread safety}: all operations on a handle are mutex-guarded,
      so point runners on pool workers can share one handle.

    Observability: the [store.{hits,misses,writes,corrupt_cells}]
    counters register lazily on first handle open (or explicitly via
    {!register_counters}, which the bench harness uses so BENCH.json has
    a stable schema), and each operation emits a [Store_*] tracer event
    when the handle carries a tracer. *)

type t

val schema : string
(** The store's cell schema id, ["rapid-store/1"]. It participates in
    every digest, so bumping it orphans (but does not invalidate) all
    existing cells. *)

val open_dir : ?tracer:Rapid_obs.Tracer.t -> string -> t
(** Open (creating it and its parents if needed) the store rooted at the
    given directory. *)

val dir : t -> string

val digest_of_key : Rapid_obs.Json.t -> string
(** Stable hex digest of ({!schema}, canonical form of the key): object
    fields are sorted recursively and rendered compactly before hashing,
    so logically equal keys digest identically regardless of field order
    or the process that built them. *)

val find : t -> key:Rapid_obs.Json.t -> Rapid_obs.Json.t option
(** Look up the payload stored under [key]. [None] on a missing cell
    (counted as a miss) and on a corrupt one (logged to stderr, counted
    under [store.corrupt_cells] {e and} as a miss — the caller's
    recompute path must not care why the cell was unusable). *)

val store : t -> key:Rapid_obs.Json.t -> Rapid_obs.Json.t -> unit
(** Atomically write [payload] as the cell for [key] (temp file +
    rename; last concurrent writer wins with a complete cell). *)

val note_corrupt : t -> key:Rapid_obs.Json.t -> reason:string -> unit
(** Report a cell whose payload verified but failed the {e caller's}
    decode step (e.g. a report field missing after a schema drift):
    logged and counted exactly like a checksum failure. *)

type stats = { cells : int; bytes : int; tmp_files : int }

val stats : t -> stats
(** Walk the store: complete cells, their total size, and leftover
    temp files from crashed writers. *)

val gc : t -> max_bytes:int -> int * int
(** Delete oldest-first (mtime, ties by name) until the cells fit in
    [max_bytes], removing crash-leftover temp files unconditionally.
    Returns [(cells_removed, bytes_freed)]. *)

val clear : t -> int
(** Delete every cell (and temp file); returns the number of cells
    removed. *)

(** {2 Counters} *)

val register_counters : unit -> unit
(** Force registration of the [store.*] counters so they appear
    (possibly zero) in counter dumps — the bench harness calls this so
    BENCH.json carries a stable counter schema even for uncached runs. *)

val hits : unit -> int

val misses : unit -> int
(** Misses include corrupt cells (each corrupt cell bumps both). *)

val writes : unit -> int
val corrupt_cells : unit -> int
