module Json = Rapid_obs.Json
module Counter = Rapid_obs.Counter
module Tracer = Rapid_obs.Tracer

let schema = "rapid-store/1"

(* Registered lazily (first handle open / register_counters), like the
   faults.* counters: a process that never touches a store reports
   exactly the counter set it did before this module existed, which keeps
   the pinned figure-JSON goldens stable for uncached runs. *)
type counters = {
  c_hits : Counter.t;
  c_misses : Counter.t;
  c_writes : Counter.t;
  c_corrupt : Counter.t;
}

let counters =
  lazy
    {
      c_hits = Counter.create "store.hits";
      c_misses = Counter.create "store.misses";
      c_writes = Counter.create "store.writes";
      c_corrupt = Counter.create "store.corrupt_cells";
    }

let register_counters () = ignore (Lazy.force counters)
let hits () = Counter.value (Lazy.force counters).c_hits
let misses () = Counter.value (Lazy.force counters).c_misses
let writes () = Counter.value (Lazy.force counters).c_writes
let corrupt_cells () = Counter.value (Lazy.force counters).c_corrupt

type t = { dir : string; lock : Mutex.t; tracer : Tracer.t }

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.is_directory path -> () (* lost a race: fine *)
  end

let open_dir ?(tracer = Tracer.null) dir =
  register_counters ();
  mkdir_p dir;
  { dir; lock = Mutex.create (); tracer }

let dir t = t.dir

(* ------------------------------------------------------------------ *)
(* Content addressing *)

(* Canonical form: object fields sorted recursively, compact rendering.
   Two keys that differ only in field order (or in which process built
   them) digest identically; any value difference changes the digest. *)
let rec canonical = function
  | (Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.String _) as v
    -> v
  | Json.List items -> Json.List (List.map canonical items)
  | Json.Obj fields ->
      Json.Obj
        (List.map (fun (k, v) -> (k, canonical v)) fields
        |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let digest_of_key key =
  Digest.to_hex (Digest.string (schema ^ "\n" ^ Json.to_string (canonical key)))

let cell_path t digest =
  Filename.concat (Filename.concat t.dir (String.sub digest 0 2))
    (digest ^ ".json")

let checksum payload = Digest.to_hex (Digest.string (Json.to_string payload))

(* ------------------------------------------------------------------ *)
(* Reads *)

let log_corrupt path reason =
  Printf.eprintf "store: corrupt cell %s (%s); recomputing\n%!" path reason

let validate digest doc =
  match Json.member "schema" doc with
  | Some (Json.String s) when s = schema -> (
      match (Json.member "checksum" doc, Json.member "payload" doc) with
      | Some (Json.String sum), Some payload ->
          if String.equal sum (checksum payload) then Ok payload
          else Error "checksum mismatch"
      | _ -> Error "missing checksum/payload")
  | Some (Json.String s) -> Error (Printf.sprintf "schema %S" s)
  | Some _ | None -> Error ("missing schema; digest " ^ digest)

let find t ~key =
  let cs = Lazy.force counters in
  let digest = digest_of_key key in
  let path = cell_path t digest in
  Mutex.protect t.lock (fun () ->
      let miss () =
        Counter.incr cs.c_misses;
        if Tracer.enabled t.tracer then
          Tracer.emit t.tracer (Tracer.Store_miss { digest });
        None
      in
      let corrupt reason =
        log_corrupt path reason;
        Counter.incr cs.c_corrupt;
        if Tracer.enabled t.tracer then
          Tracer.emit t.tracer (Tracer.Store_corrupt { digest; reason });
        miss ()
      in
      if not (Sys.file_exists path) then miss ()
      else
        match Json.of_file path with
        | exception Json.Parse_error reason -> corrupt reason
        | exception Sys_error _ ->
            (* Vanished between the existence check and the read (e.g. a
               concurrent gc): an ordinary miss, not a corruption. *)
            miss ()
        | doc -> (
            match validate digest doc with
            | Error reason -> corrupt reason
            | Ok payload ->
                Counter.incr cs.c_hits;
                if Tracer.enabled t.tracer then
                  Tracer.emit t.tracer (Tracer.Store_hit { digest });
                Some payload))

let note_corrupt t ~key ~reason =
  let cs = Lazy.force counters in
  let digest = digest_of_key key in
  log_corrupt (cell_path t digest) reason;
  (* The preceding [find] counted a hit for a cell the caller could not
     use; reclassify it as a corrupt miss so hits = usable cells. *)
  Counter.add cs.c_hits (-1);
  Counter.incr cs.c_misses;
  Counter.incr cs.c_corrupt;
  if Tracer.enabled t.tracer then
    Tracer.emit t.tracer (Tracer.Store_corrupt { digest; reason })

(* ------------------------------------------------------------------ *)
(* Writes *)

let temp_seq = Atomic.make 0

let store t ~key payload =
  let cs = Lazy.force counters in
  let digest = digest_of_key key in
  let path = cell_path t digest in
  let doc =
    Json.Obj
      [
        ("schema", Json.String schema);
        ("digest", Json.String digest);
        ("key", key);
        ("checksum", Json.String (checksum payload));
        ("payload", payload);
      ]
  in
  Mutex.protect t.lock (fun () ->
      mkdir_p (Filename.dirname path);
      (* Temp file in the same shard directory (same filesystem, so the
         rename is atomic); unique per process and per write, so crashed
         or racing writers can never interleave bytes. *)
      let tmp =
        Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
          (Atomic.fetch_and_add temp_seq 1)
      in
      let oc = open_out_bin tmp in
      let bytes =
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            let s = Json.to_string_pretty doc in
            output_string oc s;
            output_char oc '\n';
            String.length s + 1)
      in
      Sys.rename tmp path;
      Counter.incr cs.c_writes;
      if Tracer.enabled t.tracer then
        Tracer.emit t.tracer (Tracer.Store_write { digest; bytes }))

(* ------------------------------------------------------------------ *)
(* Operations: stats / gc / clear *)

type stats = { cells : int; bytes : int; tmp_files : int }

let is_cell name = Filename.check_suffix name ".json"
let is_tmp name = Filename.check_suffix name ".tmp"

(* (path, size, mtime) of every complete cell, plus every temp file. *)
let walk t =
  let cells = ref [] and tmps = ref [] in
  let shards = try Sys.readdir t.dir with Sys_error _ -> [||] in
  Array.iter
    (fun shard ->
      let sdir = Filename.concat t.dir shard in
      if Sys.is_directory sdir then
        Array.iter
          (fun name ->
            let path = Filename.concat sdir name in
            if is_cell name then begin
              match Unix.stat path with
              | st -> cells := (path, st.Unix.st_size, st.Unix.st_mtime) :: !cells
              | exception Unix.Unix_error _ -> ()
            end
            else if is_tmp name then tmps := path :: !tmps)
          (try Sys.readdir sdir with Sys_error _ -> [||]))
    shards;
  (!cells, !tmps)

let stats t =
  Mutex.protect t.lock (fun () ->
      let cells, tmps = walk t in
      {
        cells = List.length cells;
        bytes = List.fold_left (fun acc (_, size, _) -> acc + size) 0 cells;
        tmp_files = List.length tmps;
      })

let remove path = try Sys.remove path with Sys_error _ -> ()

let gc t ~max_bytes =
  Mutex.protect t.lock (fun () ->
      let cells, tmps = walk t in
      List.iter remove tmps;
      (* Oldest first; mtime ties (common within one sweep) break by path
         so the victim order is deterministic. *)
      let by_age =
        List.sort
          (fun (pa, _, ma) (pb, _, mb) ->
            match Float.compare ma mb with
            | 0 -> String.compare pa pb
            | n -> n)
          cells
      in
      let total = List.fold_left (fun acc (_, size, _) -> acc + size) 0 cells in
      let rec evict removed freed total = function
        | (path, size, _) :: rest when total > max_bytes ->
            remove path;
            evict (removed + 1) (freed + size) (total - size) rest
        | _ -> (removed, freed)
      in
      evict 0 0 total by_age)

let clear t =
  Mutex.protect t.lock (fun () ->
      let cells, tmps = walk t in
      List.iter remove tmps;
      List.iter (fun (path, _, _) -> remove path) cells;
      List.length cells)
