(** Synthetic DieselNet-like vehicular contact traces.

    The paper evaluates on 58 days of real DieselNet traces (40 buses,
    ~19 scheduled per day, 19-hour days, ~147.5 meetings and ~261 MB of
    transfer capacity per day — Table 3 / Table 4). The original trace
    archive is not available offline, so this module generates a
    calibrated substitute that preserves the structural properties RAPID's
    mechanisms respond to:

    - a different random subset of buses is on the road each day;
    - buses are assigned to routes; same-route pairs meet often, distant
      pairs rarely or never (so the h <= 3-hop transitive meeting-time
      estimator of §4.1.2 is actually exercised);
    - pairwise meetings follow Poisson processes whose rates are scaled so
      the expected number of meetings per day matches the deployment;
    - per-contact transfer capacity is log-normal with a heavy tail,
      calibrated to the deployment's daily aggregate, producing the
      bottleneck links discussed around Fig. 9.

    Day [d] of a given [seed] is deterministic, so every protocol is
    compared on identical schedules. *)

type params = {
  fleet_size : int;  (** Total buses (paper: 40). *)
  mean_scheduled : int;  (** Buses on the road per day (paper: ~19). *)
  num_routes : int;  (** Route groups controlling meeting rates. *)
  day_seconds : float;  (** Horizon (paper: 19 h). *)
  meetings_per_day : float;  (** Calibration target (paper: 147.5). *)
  mean_contact_bytes : float;
      (** Mean opportunity size (paper: ~261.4 MB / 147.5 meetings). *)
}

val default_params : params

val route_distance : num_routes:int -> int -> int -> int
(** Circular distance between two route indices (routes loop through
    town, so 0 and [num_routes - 1] are adjacent). *)

val route_affinity : int -> float
(** Relative meeting intensity for a given {!route_distance}; zero from
    distance 4 up (those pairs never meet directly). *)

val route_assignment : params:params -> seed:int -> int array
(** The bus-to-route mapping shared by every day of a given [seed]
    (index = bus id, value = route index in [0, num_routes)). Exposed so
    tests can relate generated contacts back to route structure. *)

val day : ?params:params -> seed:int -> day:int -> unit -> Trace.t
(** One synthetic day. *)

val days : ?params:params -> seed:int -> n:int -> unit -> Trace.t list
(** [n] consecutive days sharing the same fleet/route structure. *)

val with_deployment_noise :
  Rapid_prelude.Rng.t -> Trace.t -> Trace.t
(** Deployment-imperfection layer used to emulate the real testbed for the
    Table 3 / Fig. 3 validation: each contact loses a random slice of its
    capacity to discovery/association latency and computation (uniform
    5–25%), and a small fraction of contacts (2%) fail outright. *)
