open Rapid_prelude

type params = {
  fleet_size : int;
  mean_scheduled : int;
  num_routes : int;
  day_seconds : float;
  meetings_per_day : float;
  mean_contact_bytes : float;
}

let default_params =
  {
    fleet_size = 40;
    mean_scheduled = 19;
    num_routes = 8;
    day_seconds = 19.0 *. 3600.0;
    meetings_per_day = 147.5;
    mean_contact_bytes = 261.4e6 /. 147.5;
  }

(* Relative meeting intensity as a function of route distance. Distance >= 4
   pairs never meet directly, which forces transitive meeting-time
   estimation. *)
let route_affinity d =
  match d with
  | 0 -> 4.0
  | 1 -> 1.2
  | 2 -> 0.4
  | 3 -> 0.15
  | _ -> 0.0

(* Routes form a loop through town, so the index space is circular: routes
   0 and num_routes-1 are adjacent. A linear |a - b| would disconnect the
   wrap-around pairs entirely (distance 7 in an 8-route system instead of
   1), skewing which pairs ever meet. *)
let route_distance ~num_routes a b =
  let d = abs (a - b) mod num_routes in
  min d (num_routes - d)

(* Assign buses to routes deterministically from the seed: route k gets
   buses k, k+num_routes, ... with a seeded shuffle on top so the mapping
   is not trivially structured. *)
let route_assignment ~params ~seed =
  let rng = Rng.create (seed * 7919) in
  let ids = Array.init params.fleet_size Fun.id in
  Rng.shuffle rng ids;
  let routes = Array.make params.fleet_size 0 in
  Array.iteri (fun pos bus -> routes.(bus) <- pos mod params.num_routes) ids;
  routes

(* Log-normal contact sizes with the requested mean: mean = e^{mu+s^2/2}. *)
let contact_bytes rng ~mean =
  let sigma = 1.1 in
  let mu = log mean -. (sigma *. sigma /. 2.0) in
  let raw = Dist.lognormal rng ~mu ~sigma in
  let clamped = Float.max 2048.0 (Float.min raw (50.0 *. mean)) in
  int_of_float clamped

let day ?(params = default_params) ~seed ~day () =
  let routes = route_assignment ~params ~seed in
  let rng = Rng.create ((seed * 1_000_003) + day) in
  (* Pick the day's scheduled subset: mean_scheduled +- 3. *)
  let jitter = Rng.int rng 7 - 3 in
  let scheduled_count =
    max 4 (min params.fleet_size (params.mean_scheduled + jitter))
  in
  let all = Array.init params.fleet_size Fun.id in
  let scheduled = Rng.pick_k rng all scheduled_count in
  Array.sort compare scheduled;
  (* Pairwise affinities, then scale rates so the expected meeting count
     matches the calibration target. *)
  let pairs = ref [] in
  let total_affinity = ref 0.0 in
  let n = Array.length scheduled in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = scheduled.(i) and b = scheduled.(j) in
      let d = route_distance ~num_routes:params.num_routes routes.(a) routes.(b) in
      let aff = route_affinity d in
      if aff > 0.0 then begin
        pairs := (a, b, aff) :: !pairs;
        total_affinity := !total_affinity +. aff
      end
    done
  done;
  let scale =
    if !total_affinity <= 0.0 then 0.0
    else params.meetings_per_day /. !total_affinity
  in
  let contacts = ref [] in
  List.iter
    (fun (a, b, aff) ->
      let rate = aff *. scale /. params.day_seconds in
      List.iter
        (fun time ->
          let bytes = contact_bytes rng ~mean:params.mean_contact_bytes in
          contacts := Contact.make ~time ~a ~b ~bytes :: !contacts)
        (Dist.poisson_process rng ~rate ~horizon:params.day_seconds))
    !pairs;
  Trace.create ~num_nodes:params.fleet_size ~duration:params.day_seconds
    ~active:(Array.to_list scheduled) !contacts

let days ?(params = default_params) ~seed ~n () =
  List.init n (fun d -> day ~params ~seed ~day:d ())

let with_deployment_noise rng trace =
  let trace = Trace.drop_contacts trace ~keep:(fun _ -> Rng.float rng >= 0.02) in
  Trace.restrict_capacity trace ~f:(fun c ->
      let loss = Rng.uniform rng 0.05 0.25 in
      int_of_float (float_of_int c.Contact.bytes *. (1.0 -. loss)))
