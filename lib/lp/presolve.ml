module Counter = Rapid_obs.Counter

let c_cols = Counter.create "lp.presolve_cols_removed"
let c_rows = Counter.create "lp.presolve_rows_removed"

let eps = 1e-9

(* Slack added when applying an implied bound, and the minimum improvement
   required to apply it at all: tightening must never cut a feasible point
   through float error, and must not churn the fixpoint loop. *)
let widen v = 1e-9 *. (1.0 +. Float.abs v)
let min_gain = 1e-7

type verdict = Feasible | Infeasible

type col_class = Kept of int | Fixed of float | Empty

type t = {
  n_orig : int;
  n_red : int;
  rows : Lp_problem.constr list;
  obj : float array;
  lb : float array;
  ub : float array;
  keep : int array;
  orig_obj : float array;
  tlb : float array;
  tub : float array;
  cls : col_class array;
  verdict : verdict;
  rows_removed : int;
  cols_removed : int;
}

(* Coalesce a row's coefficient list: sort by column, sum duplicates, drop
   exact zeros. Lp_problem rows may legitimately repeat a column. *)
let coalesce coeffs =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) coeffs in
  let rec merge = function
    | (j1, c1) :: (j2, c2) :: rest when j1 = j2 -> merge ((j1, c1 +. c2) :: rest)
    | entry :: rest -> entry :: merge rest
    | [] -> []
  in
  List.filter (fun (_, c) -> c <> 0.0) (merge sorted)

type work_row = {
  mutable coeffs : (int * float) list;
  relation : Lp_problem.relation;
  mutable rhs : float;
  mutable alive : bool;
}

exception Found_infeasible

let reduce ~obj ~lb ~ub ~rows =
  let n = Array.length obj in
  let lb = Array.copy lb and ub = Array.copy ub in
  let wrows =
    Array.of_list
      (List.map
         (fun { Lp_problem.coeffs; relation; rhs } ->
           { coeffs = coalesce coeffs; relation; rhs; alive = true })
         rows)
  in
  let nrows = Array.length wrows in
  (* gone.(j): column j eliminated; its kind is decided at the end (Fixed
     when the box is a point, Empty otherwise). *)
  let gone = Array.make n false in
  let fixed_val = Array.make n nan in
  let occs = Array.make n 0 in
  let rows_removed = ref 0 in
  let drop_row r =
    if r.alive then begin
      r.alive <- false;
      incr rows_removed
    end
  in
  let tighten_lb j v =
    if v > lb.(j) +. min_gain then begin
      lb.(j) <- v;
      if lb.(j) > ub.(j) +. eps then raise Found_infeasible;
      true
    end
    else false
  in
  let tighten_ub j v =
    if v < ub.(j) -. min_gain then begin
      ub.(j) <- v;
      if lb.(j) > ub.(j) +. eps then raise Found_infeasible;
      true
    end
    else false
  in
  let fix_col j v =
    if not gone.(j) then begin
      gone.(j) <- true;
      fixed_val.(j) <- v
    end
  in
  let verdict =
    try
      let changed = ref true in
      let rounds = ref 0 in
      while !changed && !rounds < 8 do
        changed := false;
        incr rounds;
        (* Newly fixed columns (point boxes). *)
        for j = 0 to n - 1 do
          if (not gone.(j)) && ub.(j) -. lb.(j) <= 1e-12 then begin
            fix_col j lb.(j);
            changed := true
          end
        done;
        (* Substitute eliminated columns, then classify rows. *)
        for ri = 0 to nrows - 1 do
          let r = wrows.(ri) in
          if r.alive then begin
            let keep, sub =
              List.partition (fun (j, _) -> not gone.(j)) r.coeffs
            in
            if sub <> [] then begin
              List.iter
                (fun (j, c) -> r.rhs <- r.rhs -. (c *. fixed_val.(j)))
                sub;
              r.coeffs <- keep;
              changed := true
            end;
            match r.coeffs with
            | [] ->
                (* Empty row: a pure feasibility check. *)
                let ok =
                  match r.relation with
                  | Lp_problem.Le -> r.rhs >= -.eps
                  | Lp_problem.Ge -> r.rhs <= eps
                  | Lp_problem.Eq -> Float.abs r.rhs <= eps
                in
                if not ok then raise Found_infeasible;
                drop_row r;
                changed := true
            | [ (j, a) ] ->
                (* Singleton row: fold into the column box. *)
                let v = r.rhs /. a in
                let t1, t2 =
                  match r.relation with
                  | Lp_problem.Le ->
                      if a > 0.0 then (tighten_ub j v, false)
                      else (tighten_lb j v, false)
                  | Lp_problem.Ge ->
                      if a > 0.0 then (tighten_lb j v, false)
                      else (tighten_ub j v, false)
                  | Lp_problem.Eq ->
                      if v < lb.(j) -. eps || v > ub.(j) +. eps then
                        raise Found_infeasible;
                      (tighten_lb j v, tighten_ub j v)
                in
                ignore t1;
                ignore t2;
                drop_row r;
                changed := true
            | _ -> ()
          end
        done;
        (* Empty columns: no occurrence in any kept row. *)
        Array.fill occs 0 n 0;
        Array.iter
          (fun r ->
            if r.alive then
              List.iter (fun (j, _) -> occs.(j) <- occs.(j) + 1) r.coeffs)
          wrows;
        for j = 0 to n - 1 do
          if (not gone.(j)) && occs.(j) = 0 then begin
            gone.(j) <- true;
            (* marked Empty below: fixed_val stays nan *)
            changed := true
          end
        done;
        (* Bound tightening from kept rows' activity bounds. A term with an
           open box contributes an infinity; an implied bound for column k
           is usable only when the activity excluding k is finite. *)
        Array.iter
          (fun r ->
            if r.alive then begin
              let lo_sum = ref 0.0 and lo_inf = ref 0 in
              let hi_sum = ref 0.0 and hi_inf = ref 0 in
              List.iter
                (fun (j, a) ->
                  let lo_t = if a > 0.0 then a *. lb.(j) else a *. ub.(j) in
                  let hi_t = if a > 0.0 then a *. ub.(j) else a *. lb.(j) in
                  if Float.is_finite lo_t then lo_sum := !lo_sum +. lo_t
                  else incr lo_inf;
                  if Float.is_finite hi_t then hi_sum := !hi_sum +. hi_t
                  else incr hi_inf)
                r.coeffs;
              let le_side () =
                (* Σ a_j x_j ≤ rhs *)
                List.iter
                  (fun (j, a) ->
                    let lo_t = if a > 0.0 then a *. lb.(j) else a *. ub.(j) in
                    let excl_ok =
                      !lo_inf = 0 || ((not (Float.is_finite lo_t)) && !lo_inf = 1)
                    in
                    if excl_ok then begin
                      let rest =
                        !lo_sum -. (if Float.is_finite lo_t then lo_t else 0.0)
                      in
                      let room = r.rhs -. rest in
                      if a > 0.0 then begin
                        let v = (room /. a) +. widen (room /. a) in
                        if tighten_ub j v then changed := true
                      end
                      else begin
                        let v = (room /. a) -. widen (room /. a) in
                        if tighten_lb j v then changed := true
                      end
                    end)
                  r.coeffs
              in
              let ge_side () =
                (* Σ a_j x_j ≥ rhs *)
                List.iter
                  (fun (j, a) ->
                    let hi_t = if a > 0.0 then a *. ub.(j) else a *. lb.(j) in
                    let excl_ok =
                      !hi_inf = 0 || ((not (Float.is_finite hi_t)) && !hi_inf = 1)
                    in
                    if excl_ok then begin
                      let rest =
                        !hi_sum -. (if Float.is_finite hi_t then hi_t else 0.0)
                      in
                      let need = r.rhs -. rest in
                      if a > 0.0 then begin
                        let v = (need /. a) -. widen (need /. a) in
                        if tighten_lb j v then changed := true
                      end
                      else begin
                        let v = (need /. a) +. widen (need /. a) in
                        if tighten_ub j v then changed := true
                      end
                    end)
                  r.coeffs
              in
              match r.relation with
              | Lp_problem.Le -> le_side ()
              | Lp_problem.Ge -> ge_side ()
              | Lp_problem.Eq ->
                  le_side ();
                  ge_side ()
            end)
          wrows
      done;
      Feasible
    with Found_infeasible -> Infeasible
  in
  (* Final classification and reindexing. *)
  let cls = Array.make n Empty in
  let n_red = ref 0 in
  for j = 0 to n - 1 do
    if gone.(j) then
      cls.(j) <- (if Float.is_nan fixed_val.(j) then Empty else Fixed fixed_val.(j))
    else begin
      cls.(j) <- Kept !n_red;
      incr n_red
    end
  done;
  let n_red = !n_red in
  let keep = Array.make n_red 0 in
  let robj = Array.make n_red 0.0 in
  let rlb = Array.make n_red 0.0 in
  let rub = Array.make n_red 0.0 in
  for j = 0 to n - 1 do
    match cls.(j) with
    | Kept rj ->
        keep.(rj) <- j;
        robj.(rj) <- obj.(j);
        rlb.(rj) <- lb.(j);
        rub.(rj) <- ub.(j)
    | Fixed _ | Empty -> ()
  done;
  (* An infeasible verdict can abort mid-substitution, leaving alive rows
     that still reference eliminated columns; such a reduction must not be
     solved, so no reduced rows are materialized for it. *)
  let rrows =
    if verdict = Infeasible then []
    else
      Array.to_list wrows
      |> List.filter_map (fun r ->
             if not r.alive then None
             else
               Some
                 {
                   Lp_problem.coeffs =
                     List.map
                       (fun (j, c) ->
                         match cls.(j) with
                         | Kept rj -> (rj, c)
                         | Fixed _ | Empty -> assert false)
                       r.coeffs;
                   relation = r.relation;
                   rhs = r.rhs;
                 })
  in
  let cols_removed = n - n_red in
  Counter.add c_cols cols_removed;
  Counter.add c_rows !rows_removed;
  {
    n_orig = n;
    n_red;
    rows = rrows;
    obj = robj;
    lb = rlb;
    ub = rub;
    keep;
    orig_obj = Array.copy obj;
    tlb = lb;
    tub = ub;
    cls;
    verdict;
    rows_removed = !rows_removed;
    cols_removed;
  }

let empty_value ~cost ~lo ~hi =
  if cost < 0.0 then if hi < infinity then `Value hi else `Unbounded
  else if cost > 0.0 then `Value lo
  else if Float.is_finite lo then `Value lo
  else if Float.is_finite hi then `Value hi
  else `Value 0.0

let postsolve t ~cur_lb ~cur_ub ~x_red =
  let x = Array.make t.n_orig 0.0 in
  let unbounded = ref false in
  for j = 0 to t.n_orig - 1 do
    match t.cls.(j) with
    | Kept rj -> x.(j) <- x_red.(rj)
    | Fixed v -> x.(j) <- v
    | Empty -> (
        (* The rows that once constrained this column live on only as its
           tightened box; the per-solve override must intersect it. *)
        let lo = Float.max cur_lb.(j) t.tlb.(j) in
        let hi = Float.min cur_ub.(j) t.tub.(j) in
        match empty_value ~cost:t.orig_obj.(j) ~lo ~hi with
        | `Value v -> x.(j) <- v
        | `Unbounded -> unbounded := true)
  done;
  if !unbounded then `Unbounded else `X x
