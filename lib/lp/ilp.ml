open Rapid_prelude
module Counter = Rapid_obs.Counter

type outcome = {
  objective : float;
  solution : float array;
  proven_optimal : bool;
  nodes_explored : int;
}

type result = Solved of outcome | Infeasible | Unbounded | No_incumbent

let c_nodes = Counter.create "ilp.nodes"
let c_warm = Counter.create "ilp.warm_starts"
let c_unconverged = Counter.create "ilp.unconverged"

(* A node is fully described by the column bounds its branching history
   imposes: [bounds] holds (var, lo, hi) for every branched variable.
   Re-solving it from whatever basis the shared {!Simplex.State} last
   reached is a bound-change dual-simplex step, not a from-scratch solve. *)
type node = { bounds : (int * float * float) list; depth : int }

let most_fractional int_vars solution int_tol =
  let best = ref None in
  List.iter
    (fun v ->
      let x = solution.(v) in
      let frac = Float.abs (x -. Float.round x) in
      if frac > int_tol then
        match !best with
        | Some (_, f) when f >= frac -> ()
        | _ -> best := Some (v, frac))
    int_vars;
  !best

let solve ?(max_nodes = 4000) ?max_pivots ?(int_tol = 1e-6) problem =
  let int_vars = Lp_problem.integer_vars problem in
  let defaults = Lp_problem.bounds problem in
  let st = Simplex.State.create problem in
  match Simplex.State.solve_root st with
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded
  | Simplex.Iter_limit ->
      (* The root relaxation never converged: no valid bound, no incumbent. *)
      Counter.incr c_unconverged;
      No_incumbent
  | Simplex.Optimal root -> (
      Counter.incr c_nodes;
      match most_fractional int_vars root.solution int_tol with
      | None ->
          Solved
            {
              objective = root.objective;
              solution = root.solution;
              proven_optimal = true;
              nodes_explored = 1;
            }
      | Some (v0, _) ->
          let queue = Pqueue.create () in
          let incumbent = ref None in
          let nodes = ref 1 in
          let budget_hit = ref false in
          let unconverged = ref false in
          (* Node and pivot budgets. The pivot budget bounds *work*: a hard
             node can take orders of magnitude more dual pivots than an
             easy one, so a node cap alone does not bound time. *)
          let out_of_budget () =
            !nodes >= max_nodes
            || match max_pivots with
               | Some mp -> Simplex.State.pivots st > mp
               | None -> false
          in
          let better obj =
            match !incumbent with
            | None -> true
            | Some (o, _) -> obj < o -. 1e-9
          in
          let range bounds v =
            match List.find_opt (fun (w, _, _) -> w = v) bounds with
            | Some (_, lo, hi) -> (lo, hi)
            | None -> defaults.(v)
          in
          let narrowed bounds v lo hi =
            (v, lo, hi) :: List.filter (fun (w, _, _) -> w <> v) bounds
          in
          (* Solve one node; branch or record an incumbent. [on_frac] decides
             what happens to a fractional child. *)
          let visit ~bounds ~on_frac =
            incr nodes;
            Counter.incr c_nodes;
            let result, warm = Simplex.State.resolve st ~bounds in
            if warm then Counter.incr c_warm;
            match result with
            | Simplex.Infeasible | Simplex.Unbounded -> ()
            | Simplex.Iter_limit ->
                (* Not converged: the node has no valid relaxation bound, so
                   neither prune nor branch on it — record that the search
                   is incomplete. *)
                Counter.incr c_unconverged;
                unconverged := true
            | Simplex.Optimal { objective; solution } ->
                if better objective then begin
                  match most_fractional int_vars solution int_tol with
                  | None -> incumbent := Some (objective, solution)
                  | Some (v, _) -> on_frac ~bound:objective v solution.(v)
                end
          in
          (* Plunge depth-first from a fractional node: tighten the branch
             variable toward its relaxation value and recurse. Until the
             first incumbent lands the far sibling is explored by
             backtracking DFS right here — contended instances dead-end
             most plunges on an infeasible near child, and a best-first
             queue alone then re-plunges shallow nodes until the whole
             node budget is gone without ever completing an integral
             point. Once an incumbent exists, far siblings go to the
             queue (keyed by the parent bound, preserving best-first
             order) and pruning takes over. *)
          let rec dive ~bound ~bounds ~depth v x =
            if out_of_budget () then budget_hit := true
            else begin
              let cur_lo, cur_hi = range bounds v in
              let fl = Float.floor x and ce = Float.ceil x in
              let down = narrowed bounds v cur_lo (Float.min cur_hi fl) in
              let up = narrowed bounds v (Float.max cur_lo ce) cur_hi in
              let near, far =
                if x -. fl <= 0.5 then (down, up) else (up, down)
              in
              if !incumbent = None then begin
                visit ~bounds:near ~on_frac:(fun ~bound v x ->
                    dive ~bound ~bounds:near ~depth:(depth + 1) v x);
                if !incumbent = None then begin
                  if out_of_budget () then budget_hit := true
                  else
                    visit ~bounds:far ~on_frac:(fun ~bound v x ->
                        dive ~bound ~bounds:far ~depth:(depth + 1) v x)
                end
                else Pqueue.push queue bound { bounds = far; depth = depth + 1 }
              end
              else begin
                Pqueue.push queue bound { bounds = far; depth = depth + 1 };
                visit ~bounds:near ~on_frac:(fun ~bound v x ->
                    dive ~bound ~bounds:near ~depth:(depth + 1) v x)
              end
            end
          in
          dive ~bound:root.objective ~bounds:[] ~depth:0 v0
            root.solution.(v0);
          let rec bb () =
            match Pqueue.pop queue with
            | None -> ()
            | Some (bound, node) ->
                (* Prune against the incumbent. *)
                if not (better bound) then bb ()
                else if out_of_budget () then budget_hit := true
                else begin
                  visit ~bounds:node.bounds ~on_frac:(fun ~bound v x ->
                      dive ~bound ~bounds:node.bounds ~depth:node.depth v x);
                  bb ()
                end
          in
          bb ();
          (match !incumbent with
          | Some (objective, solution) ->
              Solved
                {
                  objective;
                  solution;
                  proven_optimal = not (!budget_hit || !unconverged);
                  nodes_explored = !nodes;
                }
          | None ->
              if !budget_hit || !unconverged then No_incumbent else Infeasible))
