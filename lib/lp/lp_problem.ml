type relation = Le | Eq | Ge

type constr = {
  coeffs : (int * float) list;
  relation : relation;
  rhs : float;
}

type t = {
  n : int;
  obj : float array;
  lb : float array;
  ub : float array;
  mutable rows : constr list;  (* reversed *)
  mutable num_rows : int;
  mutable integers : int list;
}

let create ~num_vars =
  assert (num_vars > 0);
  {
    n = num_vars;
    obj = Array.make num_vars 0.0;
    lb = Array.make num_vars 0.0;
    ub = Array.make num_vars infinity;
    rows = [];
    num_rows = 0;
    integers = [];
  }

let num_vars t = t.n

let check_var t i =
  if i < 0 || i >= t.n then invalid_arg "Lp_problem: variable out of range"

let set_objective t coeffs =
  Array.fill t.obj 0 t.n 0.0;
  List.iter
    (fun (i, c) ->
      check_var t i;
      t.obj.(i) <- c)
    coeffs

let add_constraint t coeffs relation rhs =
  List.iter (fun (i, _) -> check_var t i) coeffs;
  t.rows <- { coeffs; relation; rhs } :: t.rows;
  t.num_rows <- t.num_rows + 1

let set_lower t i l =
  check_var t i;
  if l < 0.0 then invalid_arg "Lp_problem.set_lower: negative lower bound";
  t.lb.(i) <- l

let set_upper t i u =
  check_var t i;
  if u < 0.0 then invalid_arg "Lp_problem.set_upper: negative upper bound";
  t.ub.(i) <- u

let bounds t = Array.init t.n (fun i -> (t.lb.(i), t.ub.(i)))

let mark_integer t i =
  check_var t i;
  if not (List.mem i t.integers) then t.integers <- i :: t.integers

let integer_vars t = List.rev t.integers
let objective t = Array.copy t.obj
let constraints t = List.rev t.rows

let pp_stats fmt t =
  Format.fprintf fmt "lp: %d vars, %d constraints, %d integer" t.n t.num_rows
    (List.length t.integers)
