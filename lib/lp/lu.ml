module Counter = Rapid_obs.Counter

let c_refactor = Counter.create "lp.refactorizations"
let c_eta = Counter.create "lp.eta_updates"

exception Singular

(* Pivots smaller than this are rejected during factorization: the column
   order tries the largest remaining magnitude, so hitting the floor means
   the basis is numerically singular. *)
let tiny = 1e-11

type t = {
  m : int;
  prow : int array;  (* factor step -> original row pivoted at that step *)
  row_step : int array;  (* original row -> factor step *)
  bpos : int array;  (* factor step -> basis position (column of B) *)
  (* L: unit lower triangular in step order. Column k holds multipliers for
     original rows not yet pivoted at step k. *)
  lcol_i : int array array;
  lcol_v : float array array;
  (* U: upper triangular over step indices. Column k holds its
     above-diagonal entries (step j < k); the diagonal is split out. *)
  ucol_j : int array array;
  ucol_v : float array array;
  udiag : float array;
  (* Eta file: one product-form update per pivot since [factor]. Entry e
     acts at basis position [erow.(e)] with pivot [ediag.(e)]; its
     off-pivot coefficients live in eidx/eval.[eoff.(e), eoff.(e+1)). *)
  mutable n_etas : int;
  mutable erow : int array;
  mutable ediag : float array;
  mutable eoff : int array;
  mutable eidx : int array;
  mutable eval : float array;
  (* dense step-space scratch for the triangular solves *)
  scratch : float array;
  (* Small-basis dense form: when [dw] is non-empty the factors live in
     this flat column-major m×m buffer (multipliers below the pivot, U
     above, diagonal split into [udiag]; column order is the identity, so
     [bpos] stays the identity permutation) and the [lcol]/[ucol] arrays
     are unused. The factors exist only to (re)build [bi], the explicit
     inverse B⁻¹ held row-major as [bi.(p*m+i)] = (B⁻¹)[p,i] (p a basis
     position, i an original row). Solves against [bi] are straight dense
     sweeps and {!update} folds each eta into it in place (product form of
     the inverse), so between refactorizations no eta file exists for this
     form. All buffers are reused across refactorizations, making an
     in-place {!refactor} allocation-free on the B&B hot path. *)
  mutable dw : float array;
  bi : float array;
  scratch2 : float array;  (* dense-form build scratch *)
}

let dim t = t.m
let n_etas t = t.n_etas

(* Small-basis fast path: at tiny dimensions the Gilbert–Peierls machinery
   (column sort, per-column DFS, touched-set bookkeeping) costs more than
   the factorization itself, and B&B warm-started solves refactor often
   enough that this shows up at the top of the ILP profile. A flat m×m
   right-looking elimination with partial pivoting produces the same
   column-structured L/U/permutation representation with a handful of
   allocations. Zero entries are skipped throughout, so near-identity
   bases (the common cold start) stay cheap. *)
let dense_cutoff = 48

let factor_dense_into t (a : Sparse.t) ~basis =
  let m = t.m in
  let w = t.dw in
  let prow = t.prow in
  Array.fill w 0 (m * m) 0.0;
  (* Rows are kept physically in step (permuted) order: a pivot swap moves
     the whole row across all columns (O(m²) worst case total), which buys
     contiguous, indirection-free inner loops in the elimination and in
     every later triangular solve. [prow] tracks which original row sits
     at each step position. *)
  for i = 0 to m - 1 do
    prow.(i) <- i;
    t.row_step.(i) <- -1
  done;
  for pos = 0 to m - 1 do
    let j = basis.(pos) in
    let base = pos * m in
    for k = a.Sparse.colptr.(j) to a.Sparse.colptr.(j + 1) - 1 do
      Array.unsafe_set w
        (base + Array.unsafe_get a.Sparse.rowind k)
        (Array.unsafe_get a.Sparse.values k)
    done
  done;
  for k = 0 to m - 1 do
    let base = k * m in
    (* partial pivoting; ties keep the lowest position for determinism *)
    let bp = ref k in
    let best = ref (Float.abs (Array.unsafe_get w (base + k))) in
    for p = k + 1 to m - 1 do
      let v = Float.abs (Array.unsafe_get w (base + p)) in
      if v > !best then begin
        best := v;
        bp := p
      end
    done;
    if !best <= tiny then raise Singular;
    if !bp <> k then begin
      let p = !bp in
      for c = 0 to m - 1 do
        let cb = c * m in
        let tmp = Array.unsafe_get w (cb + k) in
        Array.unsafe_set w (cb + k) (Array.unsafe_get w (cb + p));
        Array.unsafe_set w (cb + p) tmp
      done;
      let tmp = prow.(k) in
      prow.(k) <- prow.(p);
      prow.(p) <- tmp
    end;
    let piv = Array.unsafe_get w (base + k) in
    t.udiag.(k) <- piv;
    (* store multipliers in place and eliminate the remaining columns;
       both loops run over the contiguous below-pivot row range *)
    for i = k + 1 to m - 1 do
      let v = Array.unsafe_get w (base + i) in
      if v <> 0.0 then Array.unsafe_set w (base + i) (v /. piv)
    done;
    for c = k + 1 to m - 1 do
      let cb = c * m in
      let v = Array.unsafe_get w (cb + k) in
      if v <> 0.0 then
        for i = k + 1 to m - 1 do
          let l = Array.unsafe_get w (base + i) in
          if l <> 0.0 then
            Array.unsafe_set w (cb + i) (Array.unsafe_get w (cb + i) -. (l *. v))
        done
    done
  done;
  for k = 0 to m - 1 do
    t.row_step.(prow.(k)) <- k
  done;
  t.n_etas <- 0

let create_dense m =
  {
    m;
    prow = Array.make m (-1);
    row_step = Array.make m (-1);
    bpos = Array.init m (fun k -> k);
    lcol_i = [||];
    lcol_v = [||];
    ucol_j = [||];
    ucol_v = [||];
    udiag = Array.make m 0.0;
    n_etas = 0;
    erow = Array.make 16 0;
    ediag = Array.make 16 0.0;
    eoff = Array.make 17 0;
    eidx = Array.make 64 0;
    eval = Array.make 64 0.0;
    scratch = Array.make m 0.0;
    dw = Array.make (m * m) 0.0;
    bi = Array.make (m * m) 0.0;
    scratch2 = Array.make m 0.0;
  }

let factor_sparse (a : Sparse.t) ~basis m =
  let prow = Array.make m (-1) in
  let row_step = Array.make m (-1) in
  let bpos = Array.make m (-1) in
  let lcol_i = Array.make m [||] in
  let lcol_v = Array.make m [||] in
  let ucol_j = Array.make m [||] in
  let ucol_v = Array.make m [||] in
  let udiag = Array.make m 0.0 in
  (* Column order: singleton columns first (unit pivots, zero fill), then
     ascending nnz — a cheap deterministic stand-in for Markowitz ordering
     that keeps the all-logical cold basis an exact identity factor. *)
  let order = Array.init m (fun p -> p) in
  Array.sort
    (fun p1 p2 ->
      let n1 = Sparse.col_nnz a basis.(p1)
      and n2 = Sparse.col_nnz a basis.(p2) in
      if n1 <> n2 then compare n1 n2 else compare p1 p2)
    order;
  let work = Array.make m 0.0 in
  let marked = Array.make m false in
  let touched = Array.make m 0 in
  let n_touched = ref 0 in
  let touch i =
    if not marked.(i) then begin
      marked.(i) <- true;
      touched.(!n_touched) <- i;
      incr n_touched
    end
  in
  (* Gilbert–Peierls reachability: the steps with a structurally nonzero
     intermediate in the L-solve of this column are exactly those reachable
     (via L-column fill edges) from the column's own pattern. A DFS in
     reverse postorder yields a valid elimination order without scanning
     all previous steps. *)
  let visited = Array.make m false in
  let topo = Array.make m 0 in
  let n_topo = ref 0 in
  let stack = Array.make m 0 in
  let cursor = Array.make m 0 in
  let dfs root =
    if not visited.(root) then begin
      visited.(root) <- true;
      let top = ref 0 in
      stack.(0) <- root;
      cursor.(0) <- 0;
      while !top >= 0 do
        let s = stack.(!top) in
        let li = lcol_i.(s) in
        let len = Array.length li in
        let advanced = ref false in
        while (not !advanced) && cursor.(!top) < len do
          let c = cursor.(!top) in
          cursor.(!top) <- c + 1;
          let child = row_step.(li.(c)) in
          if child >= 0 && not visited.(child) then begin
            visited.(child) <- true;
            incr top;
            stack.(!top) <- child;
            cursor.(!top) <- 0;
            advanced := true
          end
        done;
        if not !advanced then begin
          topo.(!n_topo) <- s;
          incr n_topo;
          decr top
        end
      done
    end
  in
  let uj = Array.make m 0 in
  let uv = Array.make m 0.0 in
  for step = 0 to m - 1 do
    let pos = order.(step) in
    n_topo := 0;
    Sparse.iter_col a basis.(pos) (fun i v ->
        work.(i) <- v;
        touch i;
        let s = row_step.(i) in
        if s >= 0 then dfs s);
    (* Eliminate along the reach in reverse postorder (topological). *)
    let n_u = ref 0 in
    for e = !n_topo - 1 downto 0 do
      let s = topo.(e) in
      visited.(s) <- false;
      let v = work.(prow.(s)) in
      if v <> 0.0 then begin
        uj.(!n_u) <- s;
        uv.(!n_u) <- v;
        incr n_u;
        let li = lcol_i.(s) and lv = lcol_v.(s) in
        for k = 0 to Array.length li - 1 do
          let i = li.(k) in
          work.(i) <- work.(i) -. (v *. lv.(k));
          touch i
        done
      end
    done;
    (* Partial pivoting: largest remaining magnitude among unpivoted rows. *)
    let prow_k = ref (-1) in
    let best = ref 0.0 in
    for e = 0 to !n_touched - 1 do
      let i = touched.(e) in
      if row_step.(i) < 0 then begin
        let v = Float.abs work.(i) in
        if v > !best then begin
          best := v;
          prow_k := i
        end
      end
    done;
    if !best <= tiny then begin
      (* reset marks before bailing out *)
      for e = 0 to !n_touched - 1 do
        let i = touched.(e) in
        work.(i) <- 0.0;
        marked.(i) <- false
      done;
      raise Singular
    end;
    let pr = !prow_k in
    let piv = work.(pr) in
    prow.(step) <- pr;
    row_step.(pr) <- step;
    bpos.(step) <- pos;
    udiag.(step) <- piv;
    ucol_j.(step) <- Array.sub uj 0 !n_u;
    ucol_v.(step) <- Array.sub uv 0 !n_u;
    let n_l = ref 0 in
    for e = 0 to !n_touched - 1 do
      let i = touched.(e) in
      if row_step.(i) < 0 && work.(i) <> 0.0 then incr n_l
    done;
    let li = Array.make !n_l 0 and lv = Array.make !n_l 0.0 in
    let out = ref 0 in
    for e = 0 to !n_touched - 1 do
      let i = touched.(e) in
      if row_step.(i) < 0 && work.(i) <> 0.0 then begin
        li.(!out) <- i;
        lv.(!out) <- work.(i) /. piv;
        incr out
      end;
      work.(i) <- 0.0;
      marked.(i) <- false
    done;
    n_touched := 0;
    lcol_i.(step) <- li;
    lcol_v.(step) <- lv
  done;
  {
    m;
    prow;
    row_step;
    bpos;
    lcol_i;
    lcol_v;
    ucol_j;
    ucol_v;
    udiag;
    n_etas = 0;
    erow = Array.make 16 0;
    ediag = Array.make 16 0.0;
    eoff = Array.make 17 0;
    eidx = Array.make 64 0;
    eval = Array.make 64 0.0;
    scratch = Array.make m 0.0;
    dw = [||];
    bi = [||];
    scratch2 = [||];
  }

let grow_int a n = if Array.length a >= n then a else
  let b = Array.make (max n (2 * Array.length a)) 0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_float a n = if Array.length a >= n then a else
  let b = Array.make (max n (2 * Array.length a)) 0.0 in
  Array.blit a 0 b 0 (Array.length a);
  b

let update t ~r ~alpha =
  Counter.incr c_eta;
  if Array.length t.bi > 0 then begin
    (* Explicit-inverse form: fold the eta into B⁻¹ in place — row [r]
       scales by 1/α_r, every other row subtracts its α_p multiple of the
       new row [r]. Row-major storage keeps all three loops contiguous. *)
    let m = t.m in
    let bi = t.bi in
    let inv = 1.0 /. alpha.(r) in
    let br = r * m in
    for i = 0 to m - 1 do
      Array.unsafe_set bi (br + i) (Array.unsafe_get bi (br + i) *. inv)
    done;
    for p = 0 to m - 1 do
      if p <> r then begin
        let ap = Array.unsafe_get alpha p in
        if ap <> 0.0 then begin
          let bp = p * m in
          for i = 0 to m - 1 do
            Array.unsafe_set bi (bp + i)
              (Array.unsafe_get bi (bp + i)
               -. (ap *. Array.unsafe_get bi (br + i)))
          done
        end
      end
    done;
    t.n_etas <- t.n_etas + 1
  end
  else begin
  let e = t.n_etas in
  t.erow <- grow_int t.erow (e + 1);
  t.ediag <- grow_float t.ediag (e + 1);
  t.eoff <- grow_int t.eoff (e + 2);
  let base = t.eoff.(e) in
  let nz = ref 0 in
  for i = 0 to t.m - 1 do
    if i <> r && alpha.(i) <> 0.0 then incr nz
  done;
  t.eidx <- grow_int t.eidx (base + !nz);
  t.eval <- grow_float t.eval (base + !nz);
  let out = ref base in
  for i = 0 to t.m - 1 do
    if i <> r && alpha.(i) <> 0.0 then begin
      t.eidx.(!out) <- i;
      t.eval.(!out) <- alpha.(i);
      incr out
    end
  done;
  t.erow.(e) <- r;
  t.ediag.(e) <- alpha.(r);
  t.eoff.(e + 1) <- !out;
  t.n_etas <- e + 1
  end

(* The triangular solves and eta sweeps below run several times per pivot;
   every index is produced by the factorization itself (permutations and
   column patterns over [0, m)), so unchecked array access is safe and
   worth the bounds-check savings at this call rate. *)
(* eta file, oldest first: v_r ← v_r/α_r; v_i ← v_i − α_i·v_r *)
let apply_etas_ftran t x =
  for e = 0 to t.n_etas - 1 do
    let r = Array.unsafe_get t.erow e in
    let xr = Array.unsafe_get x r in
    if xr <> 0.0 then begin
      let xr = xr /. Array.unsafe_get t.ediag e in
      Array.unsafe_set x r xr;
      for o = Array.unsafe_get t.eoff e to Array.unsafe_get t.eoff (e + 1) - 1
      do
        let i = Array.unsafe_get t.eidx o in
        Array.unsafe_set x i
          (Array.unsafe_get x i -. (Array.unsafe_get t.eval o *. xr))
      done
    end
  done

(* transposed eta file, newest first: y_r ← (y_r − Σ α_i·y_i)/α_r *)
let apply_etas_btran t y =
  for e = t.n_etas - 1 downto 0 do
    let r = Array.unsafe_get t.erow e in
    let s = ref (Array.unsafe_get y r) in
    for o = Array.unsafe_get t.eoff e to Array.unsafe_get t.eoff (e + 1) - 1 do
      s :=
        !s
        -. Array.unsafe_get t.eval o
           *. Array.unsafe_get y (Array.unsafe_get t.eidx o)
    done;
    Array.unsafe_set y r (!s /. Array.unsafe_get t.ediag e)
  done

(* Dense-form triangular solve: flat column-major factors, identity
   column order, permutation in [prow]. Only used by {!build_inverse} —
   runtime solves go through [bi]. *)
let ftran_dense t x =
  let m = t.m in
  let w = t.dw in
  let y = t.scratch in
  let prow = t.prow in
  (* permute input into step order, then solve with contiguous columns *)
  for k = 0 to m - 1 do
    Array.unsafe_set y k (Array.unsafe_get x (Array.unsafe_get prow k))
  done;
  (* L y = P⁻¹ x, forward *)
  for k = 0 to m - 1 do
    let v = Array.unsafe_get y k in
    if v <> 0.0 then begin
      let base = k * m in
      for i = k + 1 to m - 1 do
        let l = Array.unsafe_get w (base + i) in
        if l <> 0.0 then
          Array.unsafe_set y i (Array.unsafe_get y i -. (l *. v))
      done
    end
  done;
  (* U x' = y, backward; identity column order puts the result straight
     into basis-position space *)
  for k = m - 1 downto 0 do
    let v = Array.unsafe_get y k /. Array.unsafe_get t.udiag k in
    Array.unsafe_set y k v;
    if v <> 0.0 then begin
      let base = k * m in
      for j = 0 to k - 1 do
        let u = Array.unsafe_get w (base + j) in
        if u <> 0.0 then
          Array.unsafe_set y j (Array.unsafe_get y j -. (u *. v))
      done
    end
  done;
  Array.blit y 0 x 0 m;
  apply_etas_ftran t x

let ftran_sparse t x =
  let m = t.m in
  let y = t.scratch in
  (* L y = P⁻¹ x, in step order *)
  for k = 0 to m - 1 do
    let v = Array.unsafe_get x (Array.unsafe_get t.prow k) in
    Array.unsafe_set y k v;
    if v <> 0.0 then begin
      let li = Array.unsafe_get t.lcol_i k
      and lv = Array.unsafe_get t.lcol_v k in
      for e = 0 to Array.length li - 1 do
        let i = Array.unsafe_get li e in
        Array.unsafe_set x i
          (Array.unsafe_get x i -. (Array.unsafe_get lv e *. v))
      done
    end
  done;
  (* U x' = y, backward *)
  for k = m - 1 downto 0 do
    let v = Array.unsafe_get y k /. Array.unsafe_get t.udiag k in
    Array.unsafe_set y k v;
    if v <> 0.0 then begin
      let uj = Array.unsafe_get t.ucol_j k
      and uv = Array.unsafe_get t.ucol_v k in
      for e = 0 to Array.length uj - 1 do
        let j = Array.unsafe_get uj e in
        Array.unsafe_set y j
          (Array.unsafe_get y j -. (Array.unsafe_get uv e *. v))
      done
    end
  done;
  (* scatter step space -> basis-position space (bpos is a permutation) *)
  for k = 0 to m - 1 do
    Array.unsafe_set x (Array.unsafe_get t.bpos k) (Array.unsafe_get y k)
  done;
  apply_etas_ftran t x

let btran_sparse t y =
  let m = t.m in
  apply_etas_btran t y;
  (* Uᵀ w = Qᵀ y, forward in step order *)
  let w = t.scratch in
  for k = 0 to m - 1 do
    let s = ref (Array.unsafe_get y (Array.unsafe_get t.bpos k)) in
    let uj = Array.unsafe_get t.ucol_j k
    and uv = Array.unsafe_get t.ucol_v k in
    for e = 0 to Array.length uj - 1 do
      s :=
        !s
        -. Array.unsafe_get uv e
           *. Array.unsafe_get w (Array.unsafe_get uj e)
    done;
    Array.unsafe_set w k (!s /. Array.unsafe_get t.udiag k)
  done;
  (* Lᵀ v = w, backward; L column entries live on original rows, so map
     them back to their factor steps *)
  for k = m - 1 downto 0 do
    let li = Array.unsafe_get t.lcol_i k
    and lv = Array.unsafe_get t.lcol_v k in
    let s = ref (Array.unsafe_get w k) in
    for e = 0 to Array.length li - 1 do
      s :=
        !s
        -. Array.unsafe_get lv e
           *. Array.unsafe_get w
                (Array.unsafe_get t.row_step (Array.unsafe_get li e))
    done;
    Array.unsafe_set w k !s
  done;
  (* scatter step space -> original rows *)
  for k = 0 to m - 1 do
    Array.unsafe_set y (Array.unsafe_get t.prow k) (Array.unsafe_get w k)
  done

(* Explicit-inverse solves: one dense row sweep per output entry. FTRAN
   is m contiguous dot products; BTRAN accumulates the nonzero input
   positions' rows — for the pivot-row gather (a unit vector) that is a
   single row pass. No eta sweep in either direction: {!update} already
   folded every pivot into [bi]. *)
let ftran_inv t x =
  let m = t.m in
  let bi = t.bi in
  let y = t.scratch in
  for p = 0 to m - 1 do
    let base = p * m in
    let s = ref 0.0 in
    for i = 0 to m - 1 do
      s := !s +. (Array.unsafe_get bi (base + i) *. Array.unsafe_get x i)
    done;
    Array.unsafe_set y p !s
  done;
  Array.blit y 0 x 0 m

let btran_inv t y =
  let m = t.m in
  let bi = t.bi in
  let w = t.scratch in
  Array.fill w 0 m 0.0;
  for p = 0 to m - 1 do
    let xp = Array.unsafe_get y p in
    if xp <> 0.0 then begin
      let base = p * m in
      for i = 0 to m - 1 do
        Array.unsafe_set w i
          (Array.unsafe_get w i +. (xp *. Array.unsafe_get bi (base + i)))
      done
    end
  done;
  Array.blit w 0 y 0 m

(* Rebuild [bi] from the fresh LU factors: column i of B⁻¹ is the FTRAN of
   original row i's unit vector (the eta file is empty right after a
   factorization, so [ftran_dense] is the pure triangular solve). *)
let build_inverse t =
  let m = t.m in
  let bi = t.bi in
  let x = t.scratch2 in
  for i = 0 to m - 1 do
    Array.fill x 0 m 0.0;
    x.(i) <- 1.0;
    ftran_dense t x;
    for p = 0 to m - 1 do
      bi.((p * m) + i) <- x.(p)
    done
  done

let factor_dense (a : Sparse.t) ~basis m =
  let t = create_dense m in
  factor_dense_into t a ~basis;
  build_inverse t;
  t

let factor (a : Sparse.t) ~basis =
  Counter.incr c_refactor;
  let m = Array.length basis in
  if m <= dense_cutoff then factor_dense a ~basis m
  else factor_sparse a ~basis m

(* Refactorize, reusing [t]'s buffers when it is a dense-form factor of the
   same dimension (the warm-started B&B path refactors every few dozen
   pivots; reuse makes that allocation-free). Falls back to a fresh
   {!factor} otherwise. *)
let refactor t (a : Sparse.t) ~basis =
  let m = Array.length basis in
  if m = t.m && Array.length t.dw = m * m then begin
    Counter.incr c_refactor;
    factor_dense_into t a ~basis;
    build_inverse t;
    t
  end
  else factor a ~basis

let ftran t x =
  if Array.length t.bi > 0 then ftran_inv t x else ftran_sparse t x

let btran t y =
  if Array.length t.bi > 0 then btran_inv t y else btran_sparse t y
