type t = {
  m : int;
  n : int;
  colptr : int array;
  rowind : int array;
  values : float array;
}

let nnz t = t.colptr.(t.n)

let of_arrays ~m ~n ~rows ~cols ~vals =
  let k = Array.length rows in
  if Array.length cols <> k || Array.length vals <> k then
    invalid_arg "Sparse.of_arrays";
  (* Canonical order: column-major, rows ascending, via a permutation so
     the caller's arrays stay untouched. Coalescing duplicates here keeps
     every downstream kernel free of repeated-cell special cases. *)
  let perm = Array.init k (fun i -> i) in
  Array.sort
    (fun i1 i2 ->
      if cols.(i1) <> cols.(i2) then compare cols.(i1) cols.(i2)
      else if rows.(i1) <> rows.(i2) then compare rows.(i1) rows.(i2)
      else compare i1 i2)
    perm;
  let count = ref 0 in
  for e = 0 to k - 1 do
    let i = perm.(e) in
    if rows.(i) < 0 || rows.(i) >= m || cols.(i) < 0 || cols.(i) >= n then
      invalid_arg "Sparse.of_arrays";
    if
      e = 0
      ||
      let p = perm.(e - 1) in
      rows.(p) <> rows.(i) || cols.(p) <> cols.(i)
    then incr count
  done;
  let colptr = Array.make (n + 1) 0 in
  let rowind = Array.make !count 0 in
  let values = Array.make !count 0.0 in
  let out = ref (-1) in
  for e = 0 to k - 1 do
    let i = perm.(e) in
    let fresh =
      e = 0
      ||
      let p = perm.(e - 1) in
      rows.(p) <> rows.(i) || cols.(p) <> cols.(i)
    in
    if fresh then begin
      incr out;
      rowind.(!out) <- rows.(i);
      values.(!out) <- vals.(i);
      colptr.(cols.(i) + 1) <- colptr.(cols.(i) + 1) + 1
    end
    else values.(!out) <- values.(!out) +. vals.(i)
  done;
  for c = 1 to n do
    colptr.(c) <- colptr.(c) + colptr.(c - 1)
  done;
  { m; n; colptr; rowind; values }

let of_triplets ~m ~n entries =
  let k = List.length entries in
  let rows = Array.make k 0 and cols = Array.make k 0 in
  let vals = Array.make k 0.0 in
  List.iteri
    (fun i (r, c, v) ->
      rows.(i) <- r;
      cols.(i) <- c;
      vals.(i) <- v)
    entries;
  of_arrays ~m ~n ~rows ~cols ~vals

let transpose t =
  let colptr = Array.make (t.m + 1) 0 in
  let k = nnz t in
  for i = 0 to k - 1 do
    let r = t.rowind.(i) in
    colptr.(r + 1) <- colptr.(r + 1) + 1
  done;
  for r = 1 to t.m do
    colptr.(r) <- colptr.(r) + colptr.(r - 1)
  done;
  let cursor = Array.copy colptr in
  let rowind = Array.make k 0 in
  let values = Array.make k 0.0 in
  for c = 0 to t.n - 1 do
    for i = t.colptr.(c) to t.colptr.(c + 1) - 1 do
      let r = t.rowind.(i) in
      let dst = cursor.(r) in
      cursor.(r) <- dst + 1;
      rowind.(dst) <- c;
      values.(dst) <- t.values.(i)
    done
  done;
  { m = t.n; n = t.m; colptr; rowind; values }

let iter_col t j f =
  for i = t.colptr.(j) to t.colptr.(j + 1) - 1 do
    f t.rowind.(i) t.values.(i)
  done

let col_nnz t j = t.colptr.(j + 1) - t.colptr.(j)
