(** Test-only dense reference simplex.

    This is the dense-tableau bounded-variable simplex exactly as it
    shipped before the sparse revised-simplex rewrite, kept verbatim
    (minus {!Rapid_obs} instrumentation) as an independent oracle: the
    qcheck equivalence properties in [test/test_lp.ml] check the sparse
    {!Simplex} against this module on random bounded LPs.

    Nothing under [lib/] or [bin/] may depend on it — every pivot is
    O(m·n), which is exactly the cost profile the sparse rewrite removed.
    The API mirrors {!Simplex} so tests can drive both sides through the
    same harness. *)

type solution = { objective : float; solution : float array }

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iter_limit
      (** Iteration cap hit before convergence; the objective is NOT a
          valid bound. *)

val solve : ?extra:Lp_problem.constr list -> Lp_problem.t -> result
(** One-shot dense two-phase solve. *)

(** Warm-startable dense solver state (dual-simplex re-solves), mirroring
    {!Simplex.State}. *)
module State : sig
  type t

  val create : ?extra:Lp_problem.constr list -> Lp_problem.t -> t
  val solve_root : t -> result
  val pivots : t -> int

  val resolve : t -> bounds:(int * float * float) list -> result * bool
  (** Same contract as {!Simplex.State.resolve}: listed variables are
      forced into their boxes, all others revert to the problem's own
      bounds; the boolean is [true] iff the warm dual path produced the
      result. *)
end
