module Counter = Rapid_obs.Counter
module Timer = Rapid_obs.Timer

type solution = { objective : float; solution : float array }

type result = Optimal of solution | Infeasible | Unbounded | Iter_limit

let eps = 1e-9

let c_pivots = Counter.create "lp.pivots"
let c_phase1 = Counter.create "lp.phase1_iters"
let c_bound_flips = Counter.create "lp.bound_flips"
let c_iter_limits = Counter.create "lp.iter_limits"
let c_cold_solves = Counter.create "lp.cold_solves"
let t_solve = Timer.create "lp.solve"

(* Sparse revised simplex over bounded columns. The constraint matrix is
   held once in CSC form (plus its CSR transpose for pivot-row gathers)
   and never modified; the basis lives in an {!Lu} factorization extended
   by product-form etas, refactorized periodically. A pivot costs one
   FTRAN (entering column), one BTRAN + row gather (pivot row, which also
   refreshes the reduced costs incrementally), and O(n) bookkeeping —
   instead of the dense tableau's O(m·n) cell sweep. Devex reference
   weights replace full Dantzig pricing's bias toward large-coefficient
   columns; Bland's rule still takes over after a stall, preserving the
   anti-cycling guarantee.

   Variable bounds stay on columns exactly as in the dense solver (kept
   verbatim in {!Dense_simplex} as the test oracle): nonbasic variables
   rest at a bound, the ratio tests enforce boxes, and a bound-to-bound
   move is an O(m) flip with no pivot. *)

type var_status = Basic | At_lower | At_upper

type tab = {
  m : int;
  n : int;  (* total columns: structural + slack + artificial *)
  n_struct : int;
  art_start : int;  (* artificial columns occupy [art_start, n) *)
  acols : Sparse.t;  (* m×n, CSC: untransformed constraint matrix *)
  arows : Sparse.t;  (* n×m, its transpose: row gathers for BTRAN rows *)
  b : float array;  (* sign-normalized rhs *)
  xb : float array;  (* current value of the basic variable of each row *)
  basis : int array;
  status : var_status array;  (* length n *)
  lower : float array;  (* length n *)
  upper : float array;
  z : float array;  (* reduced costs of [cost] under the current basis *)
  cost : float array;  (* phase-dependent cost vector *)
  dvx : float array;  (* devex reference weights, length n *)
  mutable lu : Lu.t;
  (* dense scratch; one allocation per tableau, reused every iteration *)
  alpha : float array;  (* length m: FTRAN of the entering column *)
  rho : float array;  (* length m: BTRAN of the pivot row's unit vector *)
  rwork : float array;  (* length m *)
  arow : float array;  (* length n: gathered pivot row of B⁻¹A *)
  (* Sparsity of the gathered row: [tlist.(0..ntouched)] are the columns
     with (structurally) nonzero entries in [arow]; everything else is
     exactly 0.0. [gstamp]/[gseq] deduplicate insertions during the
     gather. The ratio test and the pivot commit sweep only the touched
     list, and the next gather re-zeroes exactly those entries, so the
     O(n) fill-and-scan per pivot shrinks to the row's actual support. *)
  tlist : int array;
  gstamp : int array;
  mutable ntouched : int;
  mutable gseq : int;
  pivots : int ref;
      (* owned by the caller ({!State}), so the count survives cold
         rebuilds; the process-global [lp.pivots] counter cannot serve as
         a work budget because concurrent domains pollute its deltas *)
}


let nb_val t j = if t.status.(j) = At_upper then t.upper.(j) else t.lower.(j)

(* Refactorize once the eta file reaches this depth: solves slow down
   linearly with eta count while a refactorization amortizes to O(nnz).
   Scaled to the basis dimension — on a small basis each eta costs a
   comparable amount to the LU solve itself, so letting the file grow to
   a fixed 64 would make every FTRAN/BTRAN several times the cost of a
   fresh factorization. *)
let eta_limit t = Int.min 64 (Int.max 4 t.m)

(* The kernels below index the CSC/CSR arrays directly instead of going
   through [Sparse.iter_col]: a closure invocation per nonzero costs more
   than the multiply-add it wraps, and these loops run once per pivot. *)

(* FTRAN the entering column [q] into [t.alpha] (basis-position space). *)
let ftran_col t q =
  Array.fill t.alpha 0 t.m 0.0;
  let a = t.acols in
  let rowind = a.Sparse.rowind and values = a.Sparse.values in
  for k = a.Sparse.colptr.(q) to a.Sparse.colptr.(q + 1) - 1 do
    t.alpha.(rowind.(k)) <- values.(k)
  done;
  Lu.ftran t.lu t.alpha

(* BTRAN row [r]'s unit vector into [t.rho] (original-row space) and
   gather the full tableau row e_r·B⁻¹A into [t.arow]. *)
let gather_row t r =
  Array.fill t.rho 0 t.m 0.0;
  t.rho.(r) <- 1.0;
  Lu.btran t.lu t.rho;
  let arow = t.arow and tlist = t.tlist and gstamp = t.gstamp in
  for e = 0 to t.ntouched - 1 do
    Array.unsafe_set arow (Array.unsafe_get tlist e) 0.0
  done;
  t.ntouched <- 0;
  t.gseq <- t.gseq + 1;
  let seq = t.gseq in
  let a = t.arows in
  let colptr = a.Sparse.colptr in
  let rowind = a.Sparse.rowind and values = a.Sparse.values in
  for i = 0 to t.m - 1 do
    let ri = Array.unsafe_get t.rho i in
    if ri <> 0.0 then
      for k = Array.unsafe_get colptr i to Array.unsafe_get colptr (i + 1) - 1
      do
        let j = Array.unsafe_get rowind k in
        let v = ri *. Array.unsafe_get values k in
        if Array.unsafe_get gstamp j = seq then
          Array.unsafe_set arow j (Array.unsafe_get arow j +. v)
        else begin
          Array.unsafe_set gstamp j seq;
          Array.unsafe_set tlist t.ntouched j;
          t.ntouched <- t.ntouched + 1;
          Array.unsafe_set arow j v
        end
      done
  done

(* Recompute [z] from [cost] under the current basis: y = B⁻ᵀ·c_B, then
   one CSC sweep. O(nnz) — used at phase switches and refactorizations. *)
let reprice t =
  for i = 0 to t.m - 1 do
    t.rwork.(i) <- t.cost.(t.basis.(i))
  done;
  Lu.btran t.lu t.rwork;
  let a = t.acols in
  let colptr = a.Sparse.colptr in
  let rowind = a.Sparse.rowind and values = a.Sparse.values in
  let rwork = t.rwork in
  for j = 0 to t.n - 1 do
    let zj = ref (Array.unsafe_get t.cost j) in
    for k = Array.unsafe_get colptr j to Array.unsafe_get colptr (j + 1) - 1 do
      zj :=
        !zj
        -. Array.unsafe_get rwork (Array.unsafe_get rowind k)
           *. Array.unsafe_get values k
    done;
    Array.unsafe_set t.z j !zj
  done;
  for i = 0 to t.m - 1 do
    t.z.(t.basis.(i)) <- 0.0
  done

(* Basic values: FTRAN of b minus the nonbasic columns at nonzero bounds. *)
let refresh_xb t =
  Array.blit t.b 0 t.xb 0 t.m;
  let a = t.acols in
  let colptr = a.Sparse.colptr in
  let rowind = a.Sparse.rowind and values = a.Sparse.values in
  let xb = t.xb in
  for j = 0 to t.n - 1 do
    if t.status.(j) <> Basic then begin
      let v = nb_val t j in
      if v <> 0.0 then
        for k = Array.unsafe_get colptr j to Array.unsafe_get colptr (j + 1) - 1
        do
          let i = Array.unsafe_get rowind k in
          Array.unsafe_set xb i
            (Array.unsafe_get xb i -. (Array.unsafe_get values k *. v))
        done
    end
  done;
  Lu.ftran t.lu t.xb

let refactor t =
  t.lu <- Lu.refactor t.lu t.acols ~basis:t.basis;
  refresh_xb t;
  reprice t

let maybe_refactor t = if Lu.n_etas t.lu >= eta_limit t then refactor t

let reset_devex t = Array.fill t.dvx 0 t.n 1.0

(* Commit a basis change at row [r] with entering column [q]: [t.alpha]
   must hold the FTRAN'd entering column and [t.arow] the gathered pivot
   row (both w.r.t. the pre-pivot basis). Updates z incrementally from the
   pivot row and, when [devex], folds the reference-weight update into the
   same O(n) sweep. *)
let commit_pivot t ~r ~q ~devex =
  let piv = t.arow.(q) in
  let piv = if piv <> 0.0 then piv else t.alpha.(r) in
  let inv = 1.0 /. piv in
  let f = t.z.(q) in
  if devex then begin
    let wq = t.dvx.(q) in
    let wq = if wq > 1e8 then (reset_devex t; 1.0) else wq in
    for e = 0 to t.ntouched - 1 do
      let j = Array.unsafe_get t.tlist e in
      let aj = Array.unsafe_get t.arow j in
      if aj <> 0.0 then begin
        let rn = aj *. inv in
        if f <> 0.0 then t.z.(j) <- t.z.(j) -. (f *. rn);
        if t.status.(j) <> Basic then begin
          let w = rn *. rn *. wq in
          if w > t.dvx.(j) then t.dvx.(j) <- w
        end
      end
    done;
    let wp = wq *. inv *. inv in
    t.dvx.(t.basis.(r)) <- (if wp > 1.0 then wp else 1.0)
  end
  else if f <> 0.0 then begin
    (* dual pivots skip devex upkeep; a degenerate pivot (f = 0) leaves
       the whole reduced-cost row unchanged *)
    let fi = f *. inv in
    let z = t.z and arow = t.arow and tlist = t.tlist in
    for e = 0 to t.ntouched - 1 do
      let j = Array.unsafe_get tlist e in
      let aj = Array.unsafe_get arow j in
      if aj <> 0.0 then
        Array.unsafe_set z j (Array.unsafe_get z j -. (fi *. aj))
    done
  end;
  t.z.(q) <- 0.0;
  Lu.update t.lu ~r ~alpha:t.alpha;
  t.basis.(r) <- q;
  t.status.(q) <- Basic;
  Counter.incr c_pivots;
  incr t.pivots

let max_iter_of t = 20_000 + (200 * (t.m + t.n))

(* Bounded-variable primal simplex minimizing [t.cost] (whose reduced costs
   are current in [t.z]). Devex pricing with Bland's rule after a stall. *)
let primal ?(phase1 = false) t =
  let max_iter = max_iter_of t in
  let rec loop iter =
    if iter >= max_iter then begin
      Counter.incr c_iter_limits;
      `Iter_limit
    end
    else begin
      let bland = iter > max_iter / 2 in
      let enter = ref (-1) in
      let best = ref 0.0 in
      (try
         for j = 0 to t.n - 1 do
           if t.status.(j) <> Basic && t.upper.(j) -. t.lower.(j) > eps then begin
             let viol =
               match t.status.(j) with
               | At_lower -> -.t.z.(j)
               | At_upper -> t.z.(j)
               | Basic -> 0.0
             in
             if viol > eps then
               if bland then begin
                 enter := j;
                 raise Exit
               end
               else begin
                 let score = viol *. viol /. t.dvx.(j) in
                 if score > !best then begin
                   best := score;
                   enter := j
                 end
               end
           end
         done
       with Exit -> ());
      if !enter < 0 then `Optimal
      else begin
        let q = !enter in
        let d = if t.status.(q) = At_upper then -1.0 else 1.0 in
        ftran_col t q;
        (* Ratio test: row limits plus the entering variable's own opposite
           bound (a bound flip needs no pivot). *)
        let t_flip = t.upper.(q) -. t.lower.(q) in
        let leave = ref (-1) in
        let leave_to = ref At_lower in
        let best_t = ref t_flip in
        for i = 0 to t.m - 1 do
          let alpha = t.alpha.(i) *. d in
          if alpha > eps then begin
            let bi = t.basis.(i) in
            let slack = t.xb.(i) -. t.lower.(bi) in
            let ratio = (if slack < 0.0 then 0.0 else slack) /. alpha in
            if
              ratio < !best_t -. eps
              || (ratio < !best_t +. eps && !leave >= 0 && bi < t.basis.(!leave))
            then begin
              best_t := ratio;
              leave := i;
              leave_to := At_lower
            end
          end
          else if alpha < -.eps then begin
            let bi = t.basis.(i) in
            if t.upper.(bi) < infinity then begin
              let slack = t.upper.(bi) -. t.xb.(i) in
              let ratio = (if slack < 0.0 then 0.0 else slack) /. -.alpha in
              if
                ratio < !best_t -. eps
                || (ratio < !best_t +. eps
                   && !leave >= 0 && bi < t.basis.(!leave))
              then begin
                best_t := ratio;
                leave := i;
                leave_to := At_upper
              end
            end
          end
        done;
        if !leave < 0 then begin
          if !best_t = infinity then `Unbounded
          else begin
            (* Bound flip: q crosses to its other bound, basics shift, no
               pivot, no eta. *)
            Counter.incr c_bound_flips;
            for i = 0 to t.m - 1 do
              let alpha = t.alpha.(i) *. d in
              if alpha <> 0.0 then t.xb.(i) <- t.xb.(i) -. (alpha *. t_flip)
            done;
            t.status.(q) <-
              (if t.status.(q) = At_lower then At_upper else At_lower);
            loop (iter + 1)
          end
        end
        else begin
          let r = !leave in
          if Float.abs t.alpha.(r) < 1e-8 && Lu.n_etas t.lu > 0 then begin
            (* Pivot too small to trust through a deep eta file: rebuild
               the factorization and retry this iteration (the eta file is
               now empty, so the retry cannot loop). *)
            refactor t;
            loop iter
          end
          else begin
            let step = !best_t in
            for i = 0 to t.m - 1 do
              if i <> r then begin
                let alpha = t.alpha.(i) *. d in
                if alpha <> 0.0 then t.xb.(i) <- t.xb.(i) -. (alpha *. step)
              end
            done;
            let entering_val = nb_val t q +. (d *. step) in
            t.status.(t.basis.(r)) <- !leave_to;
            gather_row t r;
            commit_pivot t ~r ~q ~devex:(not bland);
            t.xb.(r) <- entering_val;
            if phase1 then Counter.incr c_phase1;
            maybe_refactor t;
            loop (iter + 1)
          end
        end
      end
    end
  in
  loop 0

(* Bounded-variable dual simplex: from a dual-feasible [z], pivot the most
   bound-violating basic variable to the bound it violates; the entering
   column is chosen by the dual ratio test min |z_j / a_rj| over the
   gathered pivot row, which preserves dual feasibility. This is the
   warm-start workhorse: after a column-bound change the basis stays dual
   feasible and typically needs only a few pivots. *)
let dual t =
  let max_iter = max_iter_of t in
  let rec loop iter =
    if iter >= max_iter then begin
      Counter.incr c_iter_limits;
      `Iter_limit
    end
    else begin
      let r = ref (-1) in
      let viol = ref eps in
      let below = ref false in
      for i = 0 to t.m - 1 do
        let bi = Array.unsafe_get t.basis i in
        let xi = Array.unsafe_get t.xb i in
        if xi < Array.unsafe_get t.lower bi -. !viol then begin
          viol := Array.unsafe_get t.lower bi -. xi;
          r := i;
          below := true
        end
        else if xi > Array.unsafe_get t.upper bi +. !viol then begin
          viol := xi -. Array.unsafe_get t.upper bi;
          r := i;
          below := false
        end
      done;
      if !r < 0 then `Optimal
      else begin
        let row = !r in
        gather_row t row;
        let q = ref (-1) in
        let best = ref infinity in
        let status = t.status and arow = t.arow and z = t.z in
        let upper = t.upper and lower = t.lower in
        (* Fold the violation direction into the row once so each branch
           below tests a single sign; a positive (signed) coefficient can
           only enter from the lower bound, a negative one from the upper.
           [Basic] columns fail both status tests, and fixed columns fail
           the box test, so no separate gates are needed. The division is
           kept off the common path: a candidate must first beat the
           current best by cross-multiplication (|z_j| < bound·|a_rj|),
           and only survivors compute their exact ratio. *)
        let sgn = if !below then -1.0 else 1.0 in
        let tlist = t.tlist in
        for e = 0 to t.ntouched - 1 do
          let j = Array.unsafe_get tlist e in
          let arj = sgn *. Array.unsafe_get arow j in
          if arj > eps then begin
            if
              Array.unsafe_get status j = At_lower
              && Array.unsafe_get upper j -. Array.unsafe_get lower j > eps
            then begin
              let az = Float.abs (Array.unsafe_get z j) in
              if az < (!best +. eps) *. arj then begin
                let ratio = az /. arj in
                if
                  ratio < !best -. eps
                  || (ratio < !best +. eps && !q >= 0 && j < !q)
                then begin
                  best := ratio;
                  q := j
                end
              end
            end
          end
          else if arj < -.eps then
            if
              Array.unsafe_get status j = At_upper
              && Array.unsafe_get upper j -. Array.unsafe_get lower j > eps
            then begin
              let az = Float.abs (Array.unsafe_get z j) in
              let aa = -.arj in
              if az < (!best +. eps) *. aa then begin
                let ratio = az /. aa in
                if
                  ratio < !best -. eps
                  || (ratio < !best +. eps && !q >= 0 && j < !q)
                then begin
                  best := ratio;
                  q := j
                end
              end
            end
        done;
        if !q < 0 then `Infeasible
        else begin
          let qq = !q in
          ftran_col t qq;
          if Float.abs t.alpha.(row) < 1e-8 && Lu.n_etas t.lu > 0 then begin
            refactor t;
            loop iter
          end
          else begin
            let d = if t.status.(qq) = At_upper then -1.0 else 1.0 in
            let p = t.basis.(row) in
            let target = if !below then t.lower.(p) else t.upper.(p) in
            let step = (target -. t.xb.(row)) /. -.(t.arow.(qq) *. d) in
            let step = if step < 0.0 then 0.0 else step in
            for i = 0 to t.m - 1 do
              if i <> row then begin
                let alpha = Array.unsafe_get t.alpha i *. d in
                if alpha <> 0.0 then
                  Array.unsafe_set t.xb i
                    (Array.unsafe_get t.xb i -. (alpha *. step))
              end
            done;
            let entering_val = nb_val t qq +. (d *. step) in
            t.status.(p) <- (if !below then At_lower else At_upper);
            commit_pivot t ~r:row ~q:qq ~devex:false;
            t.xb.(row) <- entering_val;
            maybe_refactor t;
            loop (iter + 1)
          end
        end
      end
    end
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Cold build: one slack per inequality row; an artificial only where the
   all-structurals-at-lower-bound start leaves the row without an in-range
   basic slack. The chosen logical column always carries +1 in its row (rows
   are sign-normalized), so the initial basis factors as an exact identity. *)

let build ~rows ~n_struct ~lb ~ub ~pivots =
  let rows = Array.of_list rows in
  let m = Array.length rows in
  let residual =
    Array.map
      (fun { Lp_problem.coeffs; relation = _; rhs } ->
        List.fold_left (fun acc (i, c) -> acc -. (c *. lb.(i))) rhs coeffs)
      rows
  in
  let needs_art i =
    match rows.(i).Lp_problem.relation with
    | Lp_problem.Le -> residual.(i) < 0.0
    | Lp_problem.Ge -> residual.(i) > 0.0
    | Lp_problem.Eq -> true
  in
  let n_slack =
    Array.fold_left
      (fun acc r ->
        match r.Lp_problem.relation with
        | Lp_problem.Le | Lp_problem.Ge -> acc + 1
        | Lp_problem.Eq -> acc)
      0 rows
  in
  let n_art = ref 0 in
  for i = 0 to m - 1 do
    if needs_art i then incr n_art
  done;
  let art_start = n_struct + n_slack in
  let n = art_start + !n_art in
  let struct_nnz =
    Array.fold_left
      (fun acc r -> acc + List.length r.Lp_problem.coeffs)
      0 rows
  in
  let total_nnz = struct_nnz + n_slack + !n_art in
  let trows = Array.make total_nnz 0 in
  let tcols = Array.make total_nnz 0 in
  let tvals = Array.make total_nnz 0.0 in
  let nt = ref 0 in
  let push r c v =
    trows.(!nt) <- r;
    tcols.(!nt) <- c;
    tvals.(!nt) <- v;
    incr nt
  in
  let b = Array.make m 0.0 in
  let basis = Array.make m (-1) in
  let slack_idx = ref n_struct in
  let art_idx = ref art_start in
  Array.iteri
    (fun i { Lp_problem.coeffs; relation; rhs } ->
      (* The row's basic variable (slack or artificial) must form a unit
         column, so rows whose natural basic coefficient would be -1 are
         negated wholesale. *)
      let flip =
        match relation with
        | Lp_problem.Le -> residual.(i) < 0.0
        | Lp_problem.Ge -> residual.(i) <= 0.0
        | Lp_problem.Eq -> residual.(i) < 0.0
      in
      let s = if flip then -1.0 else 1.0 in
      List.iter (fun (j, c) -> push i j (s *. c)) coeffs;
      b.(i) <- s *. rhs;
      (match relation with
      | Lp_problem.Le ->
          push i !slack_idx s;
          if residual.(i) >= 0.0 then basis.(i) <- !slack_idx;
          incr slack_idx
      | Lp_problem.Ge ->
          push i !slack_idx (-.s);
          if residual.(i) <= 0.0 then basis.(i) <- !slack_idx;
          incr slack_idx
      | Lp_problem.Eq -> ());
      if needs_art i then begin
        push i !art_idx 1.0;
        basis.(i) <- !art_idx;
        incr art_idx
      end)
    rows;
  let acols = Sparse.of_arrays ~m ~n ~rows:trows ~cols:tcols ~vals:tvals in
  let t =
    {
      m;
      n;
      n_struct;
      art_start;
      acols;
      arows = Sparse.transpose acols;
      b;
      xb = Array.make m 0.0;
      basis;
      status = Array.make n At_lower;
      lower = Array.make n 0.0;
      upper = Array.make n infinity;
      z = Array.make n 0.0;
      cost = Array.make n 0.0;
      dvx = Array.make n 1.0;
      lu = Lu.factor acols ~basis;
      alpha = Array.make m 0.0;
      rho = Array.make m 0.0;
      rwork = Array.make m 0.0;
      arow = Array.make n 0.0;
      tlist = Array.make n 0;
      gstamp = Array.make n 0;
      ntouched = 0;
      gseq = 0;
      pivots;
    }
  in
  Array.blit lb 0 t.lower 0 n_struct;
  Array.blit ub 0 t.upper 0 n_struct;
  for i = 0 to m - 1 do
    t.status.(t.basis.(i)) <- Basic
  done;
  refresh_xb t;
  t

(* Phase-1 objective value: the artificials' total (all nonbasic artificials
   sit at a zero bound). *)
let artificial_mass t =
  let total = ref 0.0 in
  for i = 0 to t.m - 1 do
    if t.basis.(i) >= t.art_start then total := !total +. Float.abs t.xb.(i)
  done;
  !total

(* After a feasible phase 1: pin every artificial to [0,0] so it can never
   re-enter, and drive basic ones out of the basis where a structural/slack
   pivot exists (a fully zero row is redundant; its pinned artificial stays
   basic at 0, which the ratio tests then hold there). The subsequent
   phase-2 reprice rebuilds [z], so these degenerate pivots skip it. *)
let retire_artificials t =
  for r = 0 to t.m - 1 do
    if t.basis.(r) >= t.art_start then begin
      gather_row t r;
      let found = ref (-1) in
      let j = ref 0 in
      while !found < 0 && !j < t.art_start do
        if t.status.(!j) <> Basic && Float.abs t.arow.(!j) > eps then
          found := !j;
        incr j
      done;
      if !found >= 0 then begin
        let q = !found in
        ftran_col t q;
        let v = nb_val t q in
        t.status.(t.basis.(r)) <- At_lower;
        Lu.update t.lu ~r ~alpha:t.alpha;
        t.basis.(r) <- q;
        t.status.(q) <- Basic;
        t.xb.(r) <- v;
        Counter.incr c_pivots;
        incr t.pivots;
        maybe_refactor t
      end
    end
  done;
  for j = t.art_start to t.n - 1 do
    t.lower.(j) <- 0.0;
    t.upper.(j) <- 0.0
  done

(* Extract the structural solution and its true objective under [obj]. *)
let extract t obj =
  let x = Array.make t.n_struct 0.0 in
  for j = 0 to t.n_struct - 1 do
    if t.status.(j) <> Basic then x.(j) <- nb_val t j
  done;
  for r = 0 to t.m - 1 do
    if t.basis.(r) < t.n_struct then x.(t.basis.(r)) <- t.xb.(r)
  done;
  for j = 0 to t.n_struct - 1 do
    if x.(j) < t.lower.(j) then x.(j) <- t.lower.(j)
    else if x.(j) > t.upper.(j) then x.(j) <- t.upper.(j)
  done;
  let objective = ref 0.0 in
  for j = 0 to t.n_struct - 1 do
    objective := !objective +. (obj.(j) *. x.(j))
  done;
  Optimal { objective = !objective; solution = x }

(* Two-phase primal solve of a freshly built tableau. Returns the result
   and whether the final tableau is dual feasible for [obj] (i.e. usable as
   a dual-simplex warm-start point). *)
let cold_solve t obj =
  Counter.incr c_cold_solves;
  let feasible =
    if t.art_start = t.n then `Feasible
    else begin
      (* Phase 1: minimize the sum of artificials (each enters with a
         coefficient matching its row's residual sign, so its start value —
         and hence the phase-1 cost — is +1 per unit of infeasibility). *)
      Array.fill t.cost 0 t.n 0.0;
      for j = t.art_start to t.n - 1 do
        t.cost.(j) <- 1.0
      done;
      reprice t;
      reset_devex t;
      match primal ~phase1:true t with
      | `Unbounded | `Optimal ->
          (* Phase 1 is bounded below by 0; `Unbounded cannot happen. *)
          if artificial_mass t > 1e-6 then `Infeasible
          else begin
            retire_artificials t;
            `Feasible
          end
      | `Iter_limit -> `Iter_limit
    end
  in
  match feasible with
  | `Infeasible -> (Infeasible, false)
  | `Iter_limit -> (Iter_limit, false)
  | `Feasible -> (
      Array.fill t.cost 0 t.n 0.0;
      Array.blit obj 0 t.cost 0 t.n_struct;
      reprice t;
      reset_devex t;
      match primal t with
      | `Optimal -> (extract t obj, true)
      | `Unbounded -> (Unbounded, false)
      | `Iter_limit -> (Iter_limit, false))

(* ------------------------------------------------------------------ *)
(* Warm-startable solver state: presolve once against the problem's own
   bounds, build the reduced tableau once, re-solve under changed column
   bounds with the dual simplex from the last optimal basis + factors. *)

module State = struct
  type kind = Raw | Pre of Presolve.t

  type t = {
    problem : Lp_problem.t;
    extra : Lp_problem.constr list;
    obj : float array;
    orig_lb : float array;
    orig_ub : float array;
    cur_lb : float array;
    cur_ub : float array;
    mutable overridden : int list;
    pivot_count : int ref;  (* cumulative across cold rebuilds *)
    mutable pre : Presolve.t option;  (* memoized root presolve *)
    mutable kind : kind;
    mutable tab : tab option;
    (* [dual_ready]: the tableau's [z] row prices [obj] and is dual
       feasible, so a bound change can be re-solved by [dual] alone. *)
    mutable dual_ready : bool;
  }

  let create ?(extra = []) problem =
    let b = Lp_problem.bounds problem in
    {
      problem;
      extra;
      obj = Lp_problem.objective problem;
      orig_lb = Array.map fst b;
      orig_ub = Array.map snd b;
      cur_lb = Array.map fst b;
      cur_ub = Array.map snd b;
      overridden = [];
      pivot_count = ref 0;
      pre = None;
      kind = Raw;
      tab = None;
      dual_ready = false;
    }

  let pivots st = !(st.pivot_count)

  let empty_box st =
    let bad = ref false in
    Array.iteri
      (fun j lo -> if lo > st.cur_ub.(j) +. eps then bad := true)
      st.cur_lb;
    !bad

  (* The presolve is computed once against the problem's own bounds;
     reusing its reductions for a re-solve is sound only while every
     override box stays inside the original box (then intersecting with
     the presolve-tightened boxes is equivalent to keeping the deleted
     rows). B&B narrowing always satisfies this; anything else falls back
     to an unpresolved build. *)
  let in_box st =
    let ok = ref true in
    for j = 0 to Array.length st.cur_lb - 1 do
      if
        st.cur_lb.(j) < st.orig_lb.(j) -. 1e-12
        || st.cur_ub.(j) > st.orig_ub.(j) +. 1e-12
      then ok := false
    done;
    !ok

  let get_pre st =
    match st.pre with
    | Some p -> p
    | None ->
        let p =
          Presolve.reduce ~obj:st.obj ~lb:st.orig_lb ~ub:st.orig_ub
            ~rows:(Lp_problem.constraints st.problem @ st.extra)
        in
        st.pre <- Some p;
        p

  (* Clamp the current boxes into the reduced space (intersecting with the
     presolve-tightened boxes), writing into [rlb]/[rub] (length ≥ n_red);
     [false] when some intersection is empty or a fixed column's forced
     value falls outside its override box. Runs once per warm B&B resolve,
     so it writes straight into caller storage and avoids [Float.min]/
     [Float.max] (branchless NaN handling this path never needs). *)
  let reduced_bounds_into st (pre : Presolve.t) rlb rub =
    let n_red = pre.Presolve.n_red in
    let ok = ref true in
    for rj = 0 to n_red - 1 do
      let j = pre.Presolve.keep.(rj) in
      let a = st.cur_lb.(j) and b = pre.Presolve.lb.(rj) in
      let lo = if a >= b then a else b in
      let a = st.cur_ub.(j) and b = pre.Presolve.ub.(rj) in
      let hi = if a <= b then a else b in
      if lo > hi +. eps then ok := false;
      rlb.(rj) <- lo;
      rub.(rj) <- hi
    done;
    for j = 0 to Array.length pre.Presolve.cls - 1 do
      match pre.Presolve.cls.(j) with
      | Presolve.Fixed v ->
          if v < st.cur_lb.(j) -. eps || v > st.cur_ub.(j) +. eps then
            ok := false
      | Presolve.Empty ->
          (* Deleted rows survive as this column's tightened box; an
             override that misses it is infeasible, not clampable. *)
          let a = st.cur_lb.(j) and b = pre.Presolve.tlb.(j) in
          let lo = if a >= b then a else b in
          let a = st.cur_ub.(j) and b = pre.Presolve.tub.(j) in
          let hi = if a <= b then a else b in
          if lo > hi +. eps then ok := false
      | Presolve.Kept _ -> ()
    done;
    !ok

  let reduced_bounds st (pre : Presolve.t) =
    let n_red = pre.Presolve.n_red in
    let rlb = Array.make n_red 0.0 in
    let rub = Array.make n_red 0.0 in
    if reduced_bounds_into st pre rlb rub then Some (rlb, rub) else None

  (* Lift a tableau-space result back to the original variable space. *)
  let finish st result =
    match (result, st.kind) with
    | Optimal _, Raw | Infeasible, _ | Unbounded, _ | Iter_limit, _ -> result
    | Optimal { solution = x_red; _ }, Pre pre -> (
        match
          Presolve.postsolve pre ~cur_lb:st.cur_lb ~cur_ub:st.cur_ub ~x_red
        with
        | `Unbounded -> Unbounded
        | `X x ->
            let objective = ref 0.0 in
            for j = 0 to Array.length x - 1 do
              objective := !objective +. (st.obj.(j) *. x.(j))
            done;
            Optimal { objective = !objective; solution = x })

  let tab_obj st =
    match st.kind with Raw -> st.obj | Pre pre -> pre.Presolve.obj

  let drop_tab st =
    st.tab <- None;
    st.dual_ready <- false

  let cold st =
    if empty_box st then begin
      drop_tab st;
      Infeasible
    end
    else begin
      let build_and_solve () =
        if in_box st then begin
          let pre = get_pre st in
          if pre.Presolve.verdict = Presolve.Infeasible then begin
            drop_tab st;
            Infeasible
          end
          else
            match reduced_bounds st pre with
            | None ->
                drop_tab st;
                Infeasible
            | Some (rlb, rub) ->
                st.kind <- Pre pre;
                let t =
                  build ~rows:pre.Presolve.rows ~n_struct:pre.Presolve.n_red
                    ~lb:rlb ~ub:rub ~pivots:st.pivot_count
                in
                st.tab <- Some t;
                let result, dual_ready = cold_solve t (tab_obj st) in
                st.dual_ready <- dual_ready;
                finish st result
        end
        else begin
          st.kind <- Raw;
          let t =
            build
              ~rows:(Lp_problem.constraints st.problem @ st.extra)
              ~n_struct:(Lp_problem.num_vars st.problem)
              ~lb:st.cur_lb ~ub:st.cur_ub ~pivots:st.pivot_count
          in
          st.tab <- Some t;
          let result, dual_ready = cold_solve t (tab_obj st) in
          st.dual_ready <- dual_ready;
          finish st result
        end
      in
      try build_and_solve ()
      with Lu.Singular ->
        (* Numerically singular basis mid-solve: give up on this solve
           without presenting a truncated answer as optimal. *)
        drop_tab st;
        Iter_limit
    end

  let solve_root st = Timer.time t_solve (fun () -> cold st)

  (* Sync the live tableau's column bounds to the current boxes. [false]
     when the tableau cannot express them (presolved tableau with an
     override escaping the original box). [`Infeasible] when an
     intersected box is empty. *)
  let sync_bounds st t =
    match st.kind with
    | Raw ->
        Array.blit st.cur_lb 0 t.lower 0 t.n_struct;
        Array.blit st.cur_ub 0 t.upper 0 t.n_struct;
        `Ok
    | Pre pre ->
        if not (in_box st) then `Incompatible
          (* writes the reduced boxes straight into the tableau's column
             bounds; a [`Infeasible] partial write is harmless because
             every later warm start re-syncs before solving *)
        else if reduced_bounds_into st pre t.lower t.upper then `Ok
        else `Infeasible

  (* Re-solve with per-variable bound overrides (all other variables reset
     to the problem's own bounds). Warm path: sync the tableau's column
     bounds, refresh basic values through the factorization, run the dual
     simplex. Falls back to a cold solve when no dual-feasible tableau is
     available or the dual hits its iteration cap. Returns the result and
     whether the warm path produced it. *)
  let resolve st ~bounds =
    Timer.time t_solve (fun () ->
        List.iter
          (fun j ->
            st.cur_lb.(j) <- st.orig_lb.(j);
            st.cur_ub.(j) <- st.orig_ub.(j))
          st.overridden;
        st.overridden <- List.map (fun (j, _, _) -> j) bounds;
        List.iter
          (fun (j, lo, hi) ->
            st.cur_lb.(j) <- lo;
            st.cur_ub.(j) <- hi)
          bounds;
        if empty_box st then (Infeasible, true)
        else
          match st.tab with
          | Some t when st.dual_ready -> (
              match sync_bounds st t with
              | `Infeasible -> (Infeasible, true)
              | `Incompatible -> (cold st, false)
              | `Ok -> (
                  (* Restore dual feasibility by bound flips. While a
                     variable is fixed (lo = hi) the dual simplex never
                     protects its reduced cost, so unfixing it can expose a
                     sign that disagrees with the bound it rests at; moving
                     it to its other (finite) bound makes the sign agree
                     again. A reverted override can likewise leave a
                     variable resting on an upper bound that is now
                     infinite. Only a wrong-signed column with no finite
                     opposite bound defeats the warm start and forces a
                     cold solve. *)
                  let still_dual = ref true in
                  for j = 0 to t.n - 1 do
                    if t.status.(j) <> Basic && t.upper.(j) -. t.lower.(j) > eps
                    then begin
                      if t.status.(j) = At_upper && t.upper.(j) = infinity then
                        t.status.(j) <- At_lower;
                      match t.status.(j) with
                      | At_lower when t.z.(j) < -.eps ->
                          if t.upper.(j) < infinity then
                            t.status.(j) <- At_upper
                          else still_dual := false
                      | At_upper when t.z.(j) > eps -> t.status.(j) <- At_lower
                      | At_lower | At_upper | Basic -> ()
                    end
                  done;
                  if not !still_dual then (cold st, false)
                  else
                    try
                      refresh_xb t;
                      match dual t with
                      | `Optimal ->
                          (finish st (extract t (tab_obj st)), true)
                      | `Infeasible -> (Infeasible, true)
                      | `Iter_limit ->
                          (* Cold restart with the same bounds. *)
                          (cold st, false)
                    with Lu.Singular -> (cold st, false)))
          | _ -> (cold st, false))
end

let solve ?(extra = []) problem =
  let st = State.create ~extra problem in
  State.solve_root st
