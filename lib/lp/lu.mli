(** Sparse LU factorization of a simplex basis, with product-form eta
    updates between refactorizations.

    A factorization represents B = P·L·U·Q⁻¹ (row permutation [P], unit
    lower triangular [L], upper triangular [U], column permutation [Q]
    mapping factor steps to basis positions), followed by the eta file: one
    product-form elementary matrix per pivot applied since the last
    {!factor}. FTRAN/BTRAN solve against the whole product, so the simplex
    never forms B⁻¹.

    Index spaces: FTRAN input vectors are indexed by original row, output
    by basis position (= tableau row); BTRAN is the transpose map. Both
    solves are in place over dense work vectors — at simplex scale an O(m)
    sweep over a dense vector is cheaper and simpler than maintaining
    sparse solution patterns.

    Small bases (dimension ≤ 48, the warm-started B&B workhorse) use a
    dense fast path behind the same interface: the LU seeds an explicit
    inverse B⁻¹ that {!update} then folds each eta into in place (product
    form of the inverse), so FTRAN/BTRAN are contiguous dense sweeps and
    no eta file exists between refactorizations. Counter semantics are
    identical on both paths.

    Counters [lp.refactorizations] and [lp.eta_updates] register at module
    init and surface in every JSON artifact. *)

type t

exception Singular
(** Raised by {!factor} when a basis column cannot supply an acceptable
    pivot (numerically singular basis). Callers recover by rebuilding from
    the all-logical identity basis. *)

val factor : Sparse.t -> basis:int array -> t
(** [factor a ~basis] factorizes the m×m basis whose position-[p] column is
    [a]'s column [basis.(p)]. Left-looking with partial pivoting by
    magnitude; singleton columns are pivoted first, the rest in ascending
    column-nnz order (cheap deterministic fill control). Resets the eta
    file. Counts one [lp.refactorizations]. *)

val refactor : t -> Sparse.t -> basis:int array -> t
(** [refactor t a ~basis] is {!factor} that reuses [t]'s buffers when [t]
    is a small-basis dense-form factorization of the same dimension
    (allocation-free); otherwise it falls back to a fresh {!factor}.
    Either way the returned value is the factorization to use — [t] must
    not be used afterwards. *)

val dim : t -> int
val n_etas : t -> int

val update : t -> r:int -> alpha:float array -> unit
(** [update t ~r ~alpha] appends the product-form eta for a pivot at basis
    position [r], where [alpha] is the FTRAN'd entering column (position
    space). [alpha] is read, not kept. The caller checks pivot magnitude
    ([alpha.(r)]) before committing. Counts one [lp.eta_updates]. *)

val ftran : t -> float array -> unit
(** In-place solve B·x = b: input dense [b] indexed by original row,
    output x indexed by basis position. *)

val btran : t -> float array -> unit
(** In-place solve Bᵀ·y = c: input dense [c] indexed by basis position,
    output y indexed by original row. *)
