(** Branch-and-bound integer linear programming on top of {!Simplex}.

    Best-first search on the LP relaxation bound, branching on the most
    fractional integer-marked variable. Branch constraints (x <= floor,
    x >= ceil) are column bounds, not rows: every node shares one
    {!Simplex.State} and is re-solved from the previous basis by a few
    dual-simplex pivots ([ilp.warm_starts] counts the nodes the warm path
    served; [ilp.nodes] counts LP solves including the root).

    The search opens with a depth-first dive (each branch variable rounded
    toward its relaxation value, siblings queued) so an incumbent exists —
    and bound pruning bites — before the best-first phase starts. Node and
    pivot budgets cap the work; when either is exhausted the best incumbent
    found so far is returned with [proven_optimal = false] (the Fig. 13
    harness reports which). A relaxation that hits the simplex iteration
    cap ({!Simplex.Iter_limit}) has no valid bound: the node is neither
    pruned nor branched, [ilp.unconverged] is bumped, and the final result
    is demoted to [proven_optimal = false] (the seed solver silently
    treated such truncated solves as optimal and pruned against them). *)

type outcome = {
  objective : float;
  solution : float array;
  proven_optimal : bool;
  nodes_explored : int;
}

type result = Solved of outcome | Infeasible | Unbounded | No_incumbent
(** [No_incumbent]: the node budget (or the simplex iteration cap on the
    root) ran out before any integral solution was found. *)

val solve :
  ?max_nodes:int -> ?max_pivots:int -> ?int_tol:float -> Lp_problem.t -> result
(** [solve p] minimizes [p] with the integrality marks honoured.
    [max_nodes] defaults to 4000; [int_tol] to 1e-6. [max_pivots]
    (default: unlimited) additionally caps the total simplex pivots across
    all nodes — a work budget, since a single hard node can cost orders of
    magnitude more than an easy one. Exhausting either budget yields the
    best incumbent with [proven_optimal = false], or [No_incumbent]. *)
