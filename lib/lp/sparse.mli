(** Compressed sparse column (CSC) matrices for the LP kernel.

    Immutable after construction. Entries within each column are sorted by
    row index with duplicates coalesced, so assembly from unsorted
    (row, col, value) triplets — e.g. straight off {!Lp_problem.constr}
    rows, whose coefficient lists may repeat a variable — is deterministic
    and canonical. A CSR view of the same matrix is just {!transpose}. *)

type t = private {
  m : int;  (** rows *)
  n : int;  (** columns *)
  colptr : int array;  (** length n+1; column j spans [colptr.(j), colptr.(j+1)) *)
  rowind : int array;  (** row index per entry, sorted within a column *)
  values : float array;
}

val nnz : t -> int

val of_triplets : m:int -> n:int -> (int * int * float) list -> t
(** [of_triplets ~m ~n entries] assembles from (row, col, value) triplets in
    any order; duplicates of the same (row, col) cell are summed and exact
    zeros produced by coalescing are kept (structural nonzeros). *)

val of_arrays :
  m:int -> n:int -> rows:int array -> cols:int array -> vals:float array -> t
(** Same assembly from parallel triplet arrays, avoiding the intermediate
    list when the caller counts entries up front (the simplex build path).
    The input arrays are not modified. *)

val transpose : t -> t
(** O(nnz); the transpose of a CSC matrix is its CSR view. *)

val iter_col : t -> int -> (int -> float -> unit) -> unit
(** [iter_col a j f] applies [f row value] to each entry of column [j]. *)

val col_nnz : t -> int -> int
