(* Test-only reference: the dense bounded-variable tableau simplex exactly
   as it shipped before the sparse revised-simplex rewrite (PR 10), minus
   the Rapid_obs instrumentation (the live registry names now belong to
   {!Simplex}). The qcheck equivalence properties in test/test_lp.ml pit
   the sparse solver against this module on random bounded LPs; nothing in
   lib/ or bin/ may depend on it. *)

type solution = { objective : float; solution : float array }

type result = Optimal of solution | Infeasible | Unbounded | Iter_limit

let eps = 1e-9

(* Bounded-variable tableau: every variable (structural, slack, artificial)
   carries column bounds [lower, upper]; nonbasic variables rest at one of
   their bounds and basic values are tracked in [xb]. The reduced-cost row
   [z] is maintained incrementally through pivots — repriced only at phase
   switches — so an iteration costs one O(m·n) pivot, not O(m·n) pricing
   plus a pivot. Variable bounds never occupy a row: they are enforced by
   the ratio tests, and a bound-to-bound move is an O(m) flip with no pivot
   at all. *)

type var_status = Basic | At_lower | At_upper

type tab = {
  m : int;
  n : int;  (* total columns: structural + slack + artificial *)
  n_struct : int;
  art_start : int;  (* artificial columns occupy [art_start, n) *)
  a : float array array;  (* m rows of n coefficients: B^-1 A *)
  b0 : float array;  (* B^-1 b, updated alongside the rows *)
  xb : float array;  (* current value of the basic variable of each row *)
  basis : int array;
  status : var_status array;  (* length n *)
  lower : float array;  (* length n *)
  upper : float array;
  z : float array;  (* reduced costs of [cost] under the current basis *)
  cost : float array;  (* phase-dependent cost vector *)
  pivots : int ref;
      (* owned by the caller ({!State}), so the count survives cold
         rebuilds; the process-global [lp.pivots] counter cannot serve as
         a work budget because concurrent domains pollute its deltas *)
}

let nb_val t j = if t.status.(j) = At_upper then t.upper.(j) else t.lower.(j)

let pivot t ~row ~col =
  incr t.pivots;
  let arow = t.a.(row) in
  let inv = 1.0 /. arow.(col) in
  for j = 0 to t.n - 1 do
    arow.(j) <- arow.(j) *. inv
  done;
  arow.(col) <- 1.0;
  t.b0.(row) <- t.b0.(row) *. inv;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let f = t.a.(i).(col) in
      if f <> 0.0 then begin
        let ai = t.a.(i) in
        for j = 0 to t.n - 1 do
          ai.(j) <- ai.(j) -. (f *. arow.(j))
        done;
        ai.(col) <- 0.0;
        t.b0.(i) <- t.b0.(i) -. (f *. t.b0.(row))
      end
    end
  done;
  let f = t.z.(col) in
  if f <> 0.0 then begin
    for j = 0 to t.n - 1 do
      t.z.(j) <- t.z.(j) -. (f *. arow.(j))
    done;
    t.z.(col) <- 0.0
  end;
  t.basis.(row) <- col

(* Recompute [z] from [cost] under the current basis: one O(m·n) pricing,
   used only when the cost vector changes (phase switch), never per pivot. *)
let reprice t =
  Array.blit t.cost 0 t.z 0 t.n;
  for r = 0 to t.m - 1 do
    let cb = t.cost.(t.basis.(r)) in
    if cb <> 0.0 then begin
      let ar = t.a.(r) in
      for j = 0 to t.n - 1 do
        t.z.(j) <- t.z.(j) -. (cb *. ar.(j))
      done
    end
  done;
  for r = 0 to t.m - 1 do
    t.z.(t.basis.(r)) <- 0.0
  done

(* Basic values from B^-1 b minus the nonbasic columns at nonzero bounds. *)
let refresh_xb t =
  Array.blit t.b0 0 t.xb 0 t.m;
  for j = 0 to t.n - 1 do
    if t.status.(j) <> Basic then begin
      let v = nb_val t j in
      if v <> 0.0 then
        for i = 0 to t.m - 1 do
          t.xb.(i) <- t.xb.(i) -. (t.a.(i).(j) *. v)
        done
    end
  done

let max_iter_of t = 20_000 + (200 * (t.m + t.n))

(* Bounded-variable primal simplex minimizing [t.cost] (whose reduced costs
   are current in [t.z]). Dantzig pricing with Bland's rule after a stall. *)
let primal ?phase1:(_ = false) t =
  let max_iter = max_iter_of t in
  let rec loop iter =
    if iter >= max_iter then begin
      `Iter_limit
    end
    else begin
      let bland = iter > max_iter / 2 in
      let enter = ref (-1) in
      let best = ref eps in
      (try
         for j = 0 to t.n - 1 do
           if t.status.(j) <> Basic && t.upper.(j) -. t.lower.(j) > eps then begin
             let viol =
               match t.status.(j) with
               | At_lower -> -.t.z.(j)
               | At_upper -> t.z.(j)
               | Basic -> 0.0
             in
             if viol > eps then
               if bland then begin
                 enter := j;
                 raise Exit
               end
               else if viol > !best then begin
                 best := viol;
                 enter := j
               end
           end
         done
       with Exit -> ());
      if !enter < 0 then `Optimal
      else begin
        let q = !enter in
        let d = if t.status.(q) = At_upper then -1.0 else 1.0 in
        (* Ratio test: row limits plus the entering variable's own opposite
           bound (a bound flip needs no pivot). *)
        let t_flip = t.upper.(q) -. t.lower.(q) in
        let leave = ref (-1) in
        let leave_to = ref At_lower in
        let best_t = ref t_flip in
        for i = 0 to t.m - 1 do
          let alpha = t.a.(i).(q) *. d in
          if alpha > eps then begin
            let bi = t.basis.(i) in
            let slack = t.xb.(i) -. t.lower.(bi) in
            let ratio = (if slack < 0.0 then 0.0 else slack) /. alpha in
            if
              ratio < !best_t -. eps
              || (ratio < !best_t +. eps && !leave >= 0 && bi < t.basis.(!leave))
            then begin
              best_t := ratio;
              leave := i;
              leave_to := At_lower
            end
          end
          else if alpha < -.eps then begin
            let bi = t.basis.(i) in
            if t.upper.(bi) < infinity then begin
              let slack = t.upper.(bi) -. t.xb.(i) in
              let ratio = (if slack < 0.0 then 0.0 else slack) /. -.alpha in
              if
                ratio < !best_t -. eps
                || (ratio < !best_t +. eps
                   && !leave >= 0 && bi < t.basis.(!leave))
              then begin
                best_t := ratio;
                leave := i;
                leave_to := At_upper
              end
            end
          end
        done;
        if !leave < 0 then begin
          if !best_t = infinity then `Unbounded
          else begin
            (* Bound flip: q crosses to its other bound, basics shift, no
               pivot. *)
            for i = 0 to t.m - 1 do
              let alpha = t.a.(i).(q) *. d in
              if alpha <> 0.0 then t.xb.(i) <- t.xb.(i) -. (alpha *. t_flip)
            done;
            t.status.(q) <-
              (if t.status.(q) = At_lower then At_upper else At_lower);
            loop (iter + 1)
          end
        end
        else begin
          let r = !leave in
          let step = !best_t in
          for i = 0 to t.m - 1 do
            if i <> r then begin
              let alpha = t.a.(i).(q) *. d in
              if alpha <> 0.0 then t.xb.(i) <- t.xb.(i) -. (alpha *. step)
            end
          done;
          let entering_val = nb_val t q +. (d *. step) in
          t.status.(t.basis.(r)) <- !leave_to;
          pivot t ~row:r ~col:q;
          t.status.(q) <- Basic;
          t.xb.(r) <- entering_val;
          loop (iter + 1)
        end
      end
    end
  in
  loop 0

(* Bounded-variable dual simplex: from a dual-feasible [z], pivot the most
   bound-violating basic variable to the bound it violates; the entering
   column is chosen by the dual ratio test min |z_j / a_rj| over columns
   whose movement repairs the violation, which preserves dual feasibility.
   This is the warm-start workhorse: after a column-bound change the basis
   stays dual feasible and typically needs only a few pivots. *)
let dual t =
  let max_iter = max_iter_of t in
  let rec loop iter =
    if iter >= max_iter then begin
      `Iter_limit
    end
    else begin
      let r = ref (-1) in
      let viol = ref eps in
      let below = ref false in
      for i = 0 to t.m - 1 do
        let bi = t.basis.(i) in
        if t.xb.(i) < t.lower.(bi) -. !viol then begin
          viol := t.lower.(bi) -. t.xb.(i);
          r := i;
          below := true
        end
        else if t.xb.(i) > t.upper.(bi) +. !viol then begin
          viol := t.xb.(i) -. t.upper.(bi);
          r := i;
          below := false
        end
      done;
      if !r < 0 then `Optimal
      else begin
        let row = !r in
        let ar = t.a.(row) in
        let q = ref (-1) in
        let best = ref infinity in
        for j = 0 to t.n - 1 do
          if t.status.(j) <> Basic && t.upper.(j) -. t.lower.(j) > eps then begin
            let arj = ar.(j) in
            let eligible =
              if !below then
                if t.status.(j) = At_lower then arj < -.eps else arj > eps
              else if t.status.(j) = At_lower then arj > eps
              else arj < -.eps
            in
            if eligible then begin
              let ratio = Float.abs (t.z.(j) /. arj) in
              if
                ratio < !best -. eps
                || (ratio < !best +. eps && !q >= 0 && j < !q)
              then begin
                best := ratio;
                q := j
              end
            end
          end
        done;
        if !q < 0 then `Infeasible
        else begin
          let qq = !q in
          let d = if t.status.(qq) = At_upper then -1.0 else 1.0 in
          let p = t.basis.(row) in
          let target = if !below then t.lower.(p) else t.upper.(p) in
          let step = (target -. t.xb.(row)) /. -.(ar.(qq) *. d) in
          let step = if step < 0.0 then 0.0 else step in
          for i = 0 to t.m - 1 do
            if i <> row then begin
              let alpha = t.a.(i).(qq) *. d in
              if alpha <> 0.0 then t.xb.(i) <- t.xb.(i) -. (alpha *. step)
            end
          done;
          let entering_val = nb_val t qq +. (d *. step) in
          t.status.(p) <- (if !below then At_lower else At_upper);
          pivot t ~row ~col:qq;
          t.status.(qq) <- Basic;
          t.xb.(row) <- entering_val;
          loop (iter + 1)
        end
      end
    end
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Cold build: one slack per inequality row; an artificial only where the
   all-structurals-at-lower-bound start leaves the row without an in-range
   basic slack. *)

let build problem ~extra ~lb ~ub ~pivots =
  let n_struct = Lp_problem.num_vars problem in
  let rows = Array.of_list (Lp_problem.constraints problem @ extra) in
  let m = Array.length rows in
  let residual =
    Array.map
      (fun { Lp_problem.coeffs; relation = _; rhs } ->
        List.fold_left (fun acc (i, c) -> acc -. (c *. lb.(i))) rhs coeffs)
      rows
  in
  let needs_art i =
    match rows.(i).Lp_problem.relation with
    | Lp_problem.Le -> residual.(i) < 0.0
    | Lp_problem.Ge -> residual.(i) > 0.0
    | Lp_problem.Eq -> true
  in
  let n_slack =
    Array.fold_left
      (fun acc r ->
        match r.Lp_problem.relation with
        | Lp_problem.Le | Lp_problem.Ge -> acc + 1
        | Lp_problem.Eq -> acc)
      0 rows
  in
  let n_art = ref 0 in
  for i = 0 to m - 1 do
    if needs_art i then incr n_art
  done;
  let art_start = n_struct + n_slack in
  let n = art_start + !n_art in
  let t =
    {
      m;
      n;
      n_struct;
      art_start;
      a = Array.init m (fun _ -> Array.make n 0.0);
      b0 = Array.make m 0.0;
      xb = Array.make m 0.0;
      basis = Array.make m (-1);
      status = Array.make n At_lower;
      lower = Array.make n 0.0;
      upper = Array.make n infinity;
      z = Array.make n 0.0;
      cost = Array.make n 0.0;
      pivots;
    }
  in
  Array.blit lb 0 t.lower 0 n_struct;
  Array.blit ub 0 t.upper 0 n_struct;
  let slack_idx = ref n_struct in
  let art_idx = ref art_start in
  Array.iteri
    (fun i { Lp_problem.coeffs; relation; rhs } ->
      (* The row's basic variable (slack or artificial) must form a unit
         column, so rows whose natural basic coefficient would be -1 are
         negated wholesale. *)
      let flip =
        match relation with
        | Lp_problem.Le -> residual.(i) < 0.0
        | Lp_problem.Ge -> residual.(i) <= 0.0
        | Lp_problem.Eq -> residual.(i) < 0.0
      in
      let s = if flip then -1.0 else 1.0 in
      List.iter (fun (j, c) -> t.a.(i).(j) <- t.a.(i).(j) +. (s *. c)) coeffs;
      t.b0.(i) <- s *. rhs;
      (match relation with
      | Lp_problem.Le ->
          t.a.(i).(!slack_idx) <- s;
          if residual.(i) >= 0.0 then t.basis.(i) <- !slack_idx;
          incr slack_idx
      | Lp_problem.Ge ->
          t.a.(i).(!slack_idx) <- -.s;
          if residual.(i) <= 0.0 then t.basis.(i) <- !slack_idx;
          incr slack_idx
      | Lp_problem.Eq -> ());
      if needs_art i then begin
        t.a.(i).(!art_idx) <- 1.0;
        t.basis.(i) <- !art_idx;
        incr art_idx
      end)
    rows;
  for i = 0 to m - 1 do
    t.status.(t.basis.(i)) <- Basic
  done;
  refresh_xb t;
  t

(* Phase-1 objective value: the artificials' total (all nonbasic artificials
   sit at a zero bound). *)
let artificial_mass t =
  let total = ref 0.0 in
  for i = 0 to t.m - 1 do
    if t.basis.(i) >= t.art_start then total := !total +. Float.abs t.xb.(i)
  done;
  !total

(* After a feasible phase 1: pin every artificial to [0,0] so it can never
   re-enter, and drive basic ones out of the basis where a structural/slack
   pivot exists (a fully zero row is redundant; its pinned artificial stays
   basic at 0, which the ratio tests then hold there). *)
let retire_artificials t =
  for r = 0 to t.m - 1 do
    if t.basis.(r) >= t.art_start then begin
      let found = ref false in
      let j = ref 0 in
      while (not !found) && !j < t.art_start do
        if t.status.(!j) <> Basic && Float.abs t.a.(r).(!j) > eps then begin
          let v = nb_val t !j in
          t.status.(t.basis.(r)) <- At_lower;
          pivot t ~row:r ~col:!j;
          t.status.(!j) <- Basic;
          t.xb.(r) <- v;
          found := true
        end;
        incr j
      done
    end
  done;
  for j = t.art_start to t.n - 1 do
    t.lower.(j) <- 0.0;
    t.upper.(j) <- 0.0
  done

(* Extract the structural solution and its true objective under [obj]. *)
let extract t obj =
  let x = Array.make t.n_struct 0.0 in
  for j = 0 to t.n_struct - 1 do
    if t.status.(j) <> Basic then x.(j) <- nb_val t j
  done;
  for r = 0 to t.m - 1 do
    if t.basis.(r) < t.n_struct then x.(t.basis.(r)) <- t.xb.(r)
  done;
  for j = 0 to t.n_struct - 1 do
    if x.(j) < t.lower.(j) then x.(j) <- t.lower.(j)
    else if x.(j) > t.upper.(j) then x.(j) <- t.upper.(j)
  done;
  let objective = ref 0.0 in
  for j = 0 to t.n_struct - 1 do
    objective := !objective +. (obj.(j) *. x.(j))
  done;
  Optimal { objective = !objective; solution = x }

(* Two-phase primal solve of a freshly built tableau. Returns the result
   and whether the final tableau is dual feasible for [obj] (i.e. usable as
   a dual-simplex warm-start point). *)
let cold_solve t obj =
  let feasible =
    if t.art_start = t.n then `Feasible
    else begin
      (* Phase 1: minimize the sum of artificials (each enters with a
         coefficient matching its row's residual sign, so its start value —
         and hence the phase-1 cost — is +1 per unit of infeasibility). *)
      Array.fill t.cost 0 t.n 0.0;
      for j = t.art_start to t.n - 1 do
        t.cost.(j) <- 1.0
      done;
      reprice t;
      match primal ~phase1:true t with
      | `Unbounded | `Optimal ->
          (* Phase 1 is bounded below by 0; `Unbounded cannot happen. *)
          if artificial_mass t > 1e-6 then `Infeasible
          else begin
            retire_artificials t;
            `Feasible
          end
      | `Iter_limit -> `Iter_limit
    end
  in
  match feasible with
  | `Infeasible -> (Infeasible, false)
  | `Iter_limit -> (Iter_limit, false)
  | `Feasible -> (
      Array.fill t.cost 0 t.n 0.0;
      Array.blit obj 0 t.cost 0 t.n_struct;
      reprice t;
      match primal t with
      | `Optimal -> (extract t obj, true)
      | `Unbounded -> (Unbounded, false)
      | `Iter_limit -> (Iter_limit, false))

(* ------------------------------------------------------------------ *)
(* Warm-startable solver state: build once, re-solve under changed column
   bounds with the dual simplex from the last optimal basis. *)

module State = struct
  type t = {
    problem : Lp_problem.t;
    extra : Lp_problem.constr list;
    obj : float array;
    orig_lb : float array;
    orig_ub : float array;
    cur_lb : float array;
    cur_ub : float array;
    mutable overridden : int list;
    pivot_count : int ref;  (* cumulative across cold rebuilds *)
    mutable tab : tab option;
    (* [dual_ready]: the tableau's [z] row prices [obj] and is dual
       feasible, so a bound change can be re-solved by [dual] alone. *)
    mutable dual_ready : bool;
  }

  let create ?(extra = []) problem =
    let b = Lp_problem.bounds problem in
    {
      problem;
      extra;
      obj = Lp_problem.objective problem;
      orig_lb = Array.map fst b;
      orig_ub = Array.map snd b;
      cur_lb = Array.map fst b;
      cur_ub = Array.map snd b;
      overridden = [];
      pivot_count = ref 0;
      tab = None;
      dual_ready = false;
    }

  let pivots st = !(st.pivot_count)

  let empty_box st =
    let bad = ref false in
    Array.iteri
      (fun j lo -> if lo > st.cur_ub.(j) +. eps then bad := true)
      st.cur_lb;
    !bad

  let cold st =
    if empty_box st then begin
      st.tab <- None;
      st.dual_ready <- false;
      Infeasible
    end
    else begin
      let t =
        build st.problem ~extra:st.extra ~lb:st.cur_lb ~ub:st.cur_ub
          ~pivots:st.pivot_count
      in
      st.tab <- Some t;
      let result, dual_ready = cold_solve t st.obj in
      st.dual_ready <- dual_ready;
      result
    end

  let solve_root st = cold st

  (* Re-solve with per-variable bound overrides (all other variables reset
     to the problem's own bounds). Warm path: sync the tableau's column
     bounds, refresh basic values, run the dual simplex. Falls back to a
     cold solve when no dual-feasible tableau is available or the dual
     hits its iteration cap. Returns the result and whether the warm path
     produced it. *)
  let resolve st ~bounds =
    (fun () ->
        List.iter
          (fun j ->
            st.cur_lb.(j) <- st.orig_lb.(j);
            st.cur_ub.(j) <- st.orig_ub.(j))
          st.overridden;
        st.overridden <- List.map (fun (j, _, _) -> j) bounds;
        List.iter
          (fun (j, lo, hi) ->
            st.cur_lb.(j) <- lo;
            st.cur_ub.(j) <- hi)
          bounds;
        if empty_box st then (Infeasible, true)
        else
          match st.tab with
          | Some t when st.dual_ready ->
              Array.blit st.cur_lb 0 t.lower 0 t.n_struct;
              Array.blit st.cur_ub 0 t.upper 0 t.n_struct;
              (* Restore dual feasibility by bound flips. While a variable
                 is fixed (lo = hi) the dual simplex never protects its
                 reduced cost, so unfixing it can expose a sign that
                 disagrees with the bound it rests at; moving it to its
                 other (finite) bound makes the sign agree again. A
                 reverted override can likewise leave a variable resting on
                 an upper bound that is now infinite. Only a wrong-signed
                 column with no finite opposite bound defeats the warm
                 start and forces a cold solve. *)
              let still_dual = ref true in
              for j = 0 to t.n - 1 do
                if t.status.(j) <> Basic && t.upper.(j) -. t.lower.(j) > eps
                then begin
                  if t.status.(j) = At_upper && t.upper.(j) = infinity then
                    t.status.(j) <- At_lower;
                  match t.status.(j) with
                  | At_lower when t.z.(j) < -.eps ->
                      if t.upper.(j) < infinity then t.status.(j) <- At_upper
                      else still_dual := false
                  | At_upper when t.z.(j) > eps -> t.status.(j) <- At_lower
                  | At_lower | At_upper | Basic -> ()
                end
              done;
              if not !still_dual then (cold st, false)
              else begin
                refresh_xb t;
                match dual t with
                | `Optimal -> (extract t st.obj, true)
                | `Infeasible -> (Infeasible, true)
                | `Iter_limit ->
                    (* Cold restart with the same bounds. *)
                    (cold st, false)
              end
          | _ -> (cold st, false))
      ()
end

let solve ?(extra = []) problem =
  let st = State.create ~extra problem in
  State.solve_root st
