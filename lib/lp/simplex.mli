(** Warm-startable bounded-variable sparse revised simplex.

    Solves min c·x over the constraints of an {!Lp_problem.t} with the
    problem's column bounds l <= x <= u. Integrality marks are ignored here
    (see {!Ilp}).

    The implementation is a sparse revised simplex:

    {ul
    {- the constraint matrix is held once in CSC form ({!Sparse}) and
       never modified; the basis lives in an {!Lu} factorization extended
       by product-form etas and refactorized periodically, so a pivot
       costs one FTRAN + one BTRAN + O(n) bookkeeping instead of a dense
       O(m·n) tableau sweep;}
    {- a {!Presolve} pass (fixed/empty columns, empty and singleton rows,
       bound tightening) shrinks the model before the first factorization
       and its tightened boxes soundly absorb the per-node bound overrides
       of branch-and-bound re-solves;}
    {- pricing uses devex reference weights with Bland's rule after a
       stall (anti-cycling), and the reduced-cost row is maintained
       incrementally from the gathered pivot row;}
    {- variable bounds live on columns, not rows: the ratio test limits
       steps by both the leaving row and the entering variable's opposite
       bound, and a bound-to-bound move is an O(m) flip with no pivot;}
    {- artificial variables are introduced per row only when the
       all-at-lower-bound start cannot make that row's slack basic, and
       are retired (pinned to [0,0]) after phase 1;}
    {- {!State} keeps the solved tableau, basis factorization and presolve
       alive so branch-and-bound can re-solve under changed column bounds
       with a few dual-simplex pivots instead of a from-scratch primal
       solve.}}

    A hard iteration cap returns {!Iter_limit} instead of silently
    presenting a truncated solve as optimal (callers must not prune
    against such a result — see {!Ilp}). The dense tableau solver this
    replaced survives verbatim as {!Dense_simplex}, the qcheck oracle.

    Counters [lp.pivots], [lp.phase1_iters], [lp.bound_flips],
    [lp.iter_limits], [lp.cold_solves] (here), [lp.refactorizations],
    [lp.eta_updates] ({!Lu}), [lp.presolve_cols_removed],
    [lp.presolve_rows_removed] ({!Presolve}) and the [lp.solve] timer are
    registered with {!Rapid_obs} and surface in every JSON artifact. *)

type solution = { objective : float; solution : float array }

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iter_limit
      (** The iteration cap was hit before convergence: the tableau's state
          is feasible-but-not-proven-optimal (primal) or not even feasible
          (dual); its objective is NOT a valid bound. *)

val solve : ?extra:Lp_problem.constr list -> Lp_problem.t -> result
(** [solve ?extra p] solves [p] with optional additional rows. One-shot:
    builds a fresh tableau, runs phase 1 (only if some row needs an
    artificial) and phase 2. *)

(** Persistent solver state for warm-started re-solves under changed
    column bounds (the branch-and-bound hot path). *)
module State : sig
  type t

  val create : ?extra:Lp_problem.constr list -> Lp_problem.t -> t
  (** Capture the problem; nothing is solved yet. The problem's rows and
      bounds are read at the first solve. *)

  val solve_root : t -> result
  (** Cold two-phase solve from the all-slack basis. *)

  val pivots : t -> int
  (** Total simplex pivots this state has performed, cumulative across
      warm re-solves and cold rebuilds. Deterministic for a given problem
      (unlike the process-global [lp.pivots] counter, whose deltas mix in
      concurrent domains' work), so callers can use it as a work budget. *)

  val resolve : t -> bounds:(int * float * float) list -> result * bool
  (** [resolve st ~bounds] re-solves with each listed variable [j] forced
      into [[lo, hi]] (every variable not listed reverts to the problem's
      own bounds). When the previous solve left a dual-feasible tableau,
      only the column bounds and basic values are refreshed (through the
      retained basis factorization) and the dual simplex runs from the
      previous basis; otherwise (or if the dual hits its iteration cap) a
      cold solve is performed. Overrides that stay inside the problem's own
      boxes — the branch-and-bound case — run against the presolved
      tableau; an override escaping its original box forces an unpresolved
      rebuild. The boolean is [true] iff the warm path produced the
      result. *)
end

