(** LP presolve: shrink a bounded-column model before the simplex sees it.

    Rules applied to fixpoint (bounded rounds):

    {ul
    {- {e fixed columns} (lb = ub) are substituted into row right-hand
       sides and dropped;}
    {- {e empty columns} (no occurrence in any kept row) are dropped — the
       solver-side value is chosen per solve from the current box by cost
       sign ({!empty_value}), because {!Simplex.State.resolve} can change
       the box between solves;}
    {- {e empty rows} become a feasibility check and disappear;}
    {- {e singleton rows} fold into a tightened column bound and
       disappear;}
    {- {e bound tightening} from kept rows' activity bounds shrinks column
       boxes (implied bounds are widened by a small slack so float error
       never cuts into the feasible region).}}

    All tightening is implied-bound reasoning on the LP relaxation: no
    feasible point is cut, so the reduced model has the same optimal value
    and every reduced solution lifts back via {!postsolve}. Integrality
    marks are deliberately ignored — {!Simplex.State} solves LP
    relaxations whose boxes branch-and-bound narrows per node, and the
    tightened boxes here are exactly the sound set to intersect those
    overrides with.

    Counters [lp.presolve_cols_removed] and [lp.presolve_rows_removed]
    register at module init. *)

type verdict = Feasible | Infeasible

type col_class =
  | Kept of int  (** survives, with its reduced-space index *)
  | Fixed of float  (** eliminated at this value *)
  | Empty  (** eliminated; value chosen per solve by cost sign *)

type t = {
  n_orig : int;
  n_red : int;
  rows : Lp_problem.constr list;  (** kept rows, reduced indices, coalesced *)
  obj : float array;  (** reduced-space objective *)
  lb : float array;  (** reduced-space tightened bounds *)
  ub : float array;
  keep : int array;  (** reduced index -> original column *)
  orig_obj : float array;  (** the objective as given, original space *)
  tlb : float array;  (** tightened boxes, original space, every column — *)
  tub : float array;
      (** eliminated singleton rows survive only here, so any per-solve box
          for an eliminated column must be intersected with these *)
  cls : col_class array;  (** per original column *)
  verdict : verdict;
  rows_removed : int;
  cols_removed : int;
}

val reduce :
  obj:float array ->
  lb:float array ->
  ub:float array ->
  rows:Lp_problem.constr list ->
  t
(** [reduce ~obj ~lb ~ub ~rows] presolves min obj·x s.t. rows, lb ≤ x ≤ ub.
    When [verdict = Infeasible] the remaining fields describe the partial
    reduction and must not be solved. *)

val empty_value :
  cost:float -> lo:float -> hi:float -> [ `Value of float | `Unbounded ]
(** Optimal resting value of an eliminated empty column under the given
    box: the finite bound its cost pushes it to, or [`Unbounded] when the
    cost is negative and the box is open above. *)

val postsolve :
  t ->
  cur_lb:float array ->
  cur_ub:float array ->
  x_red:float array ->
  [ `X of float array | `Unbounded ]
(** Lift a reduced solution back to the original variable space under the
    {e current} original-space boxes (which matter only for [Empty]
    columns). [`Unbounded] propagates {!empty_value}'s open-box case. *)
