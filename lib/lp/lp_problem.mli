(** Linear / integer program description.

    This is the interface the Optimal routing baseline targets; the paper
    used CPLEX [10], which is closed source, so we solve the same programs
    with our own simplex ({!Simplex}) and branch-and-bound ({!Ilp}).

    Conventions: all variables are nonnegative; the objective is always
    minimized. Each variable carries column bounds [l, u] (default
    [0, +inf)): the bounded-variable simplex ({!Simplex}) handles them in
    the ratio test, so a bound costs no tableau row — prefer
    {!set_upper}/{!set_lower} over singleton [Le]/[Ge] constraints. *)

type relation = Le | Eq | Ge

type constr = {
  coeffs : (int * float) list;  (** Sparse row: (variable index, coefficient). *)
  relation : relation;
  rhs : float;
}

type t

val create : num_vars:int -> t
(** A problem over variables [0 .. num_vars-1], objective initially 0. *)

val num_vars : t -> int

val set_objective : t -> (int * float) list -> unit
(** Sparse minimization objective; unmentioned variables have cost 0. *)

val add_constraint : t -> (int * float) list -> relation -> float -> unit

val set_lower : t -> int -> float -> unit
(** Column lower bound; must be >= 0 (the paper's programs are over
    nonnegative flows). Default 0. *)

val set_upper : t -> int -> float -> unit
(** Column upper bound; default +inf. *)

val bounds : t -> (float * float) array
(** Per-variable (lower, upper). *)

val mark_integer : t -> int -> unit
(** Require the variable to take an integer value (for {!Ilp}). *)

val integer_vars : t -> int list
val objective : t -> float array
val constraints : t -> constr list
(** In insertion order. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line size summary (vars / constraints / integers). *)
