type output = Text of string | Series of Series.t * string

type item = { id : string; title : string; render : Params.t -> output }

let series id title f =
  {
    id;
    title;
    render =
      (fun p ->
        let s = f p in
        Series (s, Series.render s));
  }

let text id title f = { id; title; render = (fun p -> Text (f p)) }

let output_text = function Text s -> s | Series (_, rendered) -> rendered

let output_json item out =
  let open Rapid_obs in
  match out with
  | Series (s, _) -> Series.to_json s
  | Text rendered ->
      Json.Obj
        [
          ("id", Json.String item.id);
          ("title", Json.String item.title);
          ("rendered", Json.String rendered);
        ]

let all =
  [
    text "table3" "Deployment daily statistics" (fun p ->
        Deployment.render_table3 (Deployment.table3 p));
    series "fig3" "Validation: real vs simulation" Deployment.fig3;
    series "fig4" "Trace: average delay" Fig_trace_load.fig4;
    series "fig5" "Trace: delivery rate" Fig_trace_load.fig5;
    series "fig6" "Trace: max delay" Fig_trace_load.fig6;
    series "fig7" "Trace: delivery within deadline" Fig_trace_load.fig7;
    series "fig8" "Trace: control channel benefit" Fig_metadata.fig8;
    series "fig9" "Trace: channel utilization" Fig_metadata.fig9;
    series "fig10" "Trace: global channel, avg delay" Fig_global.fig10;
    series "fig11" "Trace: global channel, delivery rate" Fig_global.fig11;
    series "fig12" "Trace: global channel, within deadline" Fig_global.fig12;
    series "fig13" "Trace: comparison with Optimal" Fig_optimal.fig13;
    series "fig14" "Trace: RAPID components" Fig_components.fig14;
    series "fig15" "Trace: fairness CDF" Fig_fairness.fig15;
    series "fig16" "Powerlaw: avg delay" Fig_synthetic.fig16;
    series "fig17" "Powerlaw: max delay" Fig_synthetic.fig17;
    series "fig18" "Powerlaw: within deadline" Fig_synthetic.fig18;
    series "fig19" "Powerlaw: avg delay vs buffer" Fig_synthetic.fig19;
    series "fig20" "Powerlaw: max delay vs buffer" Fig_synthetic.fig20;
    series "fig21" "Powerlaw: within deadline vs buffer" Fig_synthetic.fig21;
    series "fig22" "Exponential: avg delay" Fig_synthetic.fig22;
    series "fig23" "Exponential: max delay" Fig_synthetic.fig23;
    series "fig24" "Exponential: within deadline" Fig_synthetic.fig24;
    series "robustness"
      "Trace: delivery under injected faults (not a paper figure)"
      Fig_robustness.robustness;
    text "ablations" "RAPID design-knob ablations (not a paper figure)"
      Ablations.run;
  ]

let find id = List.find_opt (fun i -> i.id = id) all

let params_header (p : Params.t) =
  let dn = p.Params.dieselnet in
  String.concat "\n"
    [
      Printf.sprintf "profile: %s"
        (match p.Params.profile with Params.Quick -> "quick" | Params.Full -> "full");
      Printf.sprintf
        "trace: fleet=%d scheduled~%d day=%.1fh meetings/day~%.0f contact~%.0fKB days=%d loads=%s deadline=%.0fmin"
        dn.Rapid_trace.Dieselnet.fleet_size dn.Rapid_trace.Dieselnet.mean_scheduled
        (dn.Rapid_trace.Dieselnet.day_seconds /. 3600.0)
        dn.Rapid_trace.Dieselnet.meetings_per_day
        (dn.Rapid_trace.Dieselnet.mean_contact_bytes /. 1e3)
        p.Params.days
        (String.concat "," (List.map (Printf.sprintf "%g") p.Params.trace_loads))
        (p.Params.trace_deadline /. 60.0);
      Printf.sprintf
        "synthetic: nodes=%d duration=%.0fs meet~%.0fs opp=%dKB buffer=%dKB pkt=%dB deadline=%.0fs loads=%s runs=%d"
        p.Params.syn_nodes p.Params.syn_duration p.Params.syn_mean_inter_meeting
        (p.Params.syn_opportunity_bytes / 1024)
        (p.Params.syn_buffer_bytes / 1024)
        p.Params.syn_packet_bytes p.Params.syn_deadline
        (String.concat "," (List.map (Printf.sprintf "%g") p.Params.syn_loads))
        p.Params.syn_runs;
    ]
