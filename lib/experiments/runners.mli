(** Shared machinery for the figure reproductions: protocol zoo, workload
    construction, and averaging over trace days / seeds.

    Point runners fan their independent day/seed cells out through
    [Rapid_par.Pool] (the global pool; sequential unless the CLI set
    [--jobs]). Every cell derives its RNGs from explicit seeds, so a
    parallel point is bit-identical to a sequential one. *)

type protocol_spec = {
  label : string;  (** Line label in the rendered figure. *)
  cache_id : string;
      (** Distinct per protocol *configuration* (metric, channel, acks):
          identical (cache_id, workload) trace points are computed once per
          process, so figures sharing baselines do not re-run them. *)
  make : unit -> Rapid_sim.Protocol.packed;
}

val rapid : Rapid_core.Metric.t -> protocol_spec
val rapid_with :
  ?label:string -> Rapid_core.Rapid.params -> protocol_spec
val maxprop : protocol_spec
val spray_wait : protocol_spec
val prophet : protocol_spec
val random : protocol_spec
val random_acks : protocol_spec

val comparison_set : Rapid_core.Metric.t -> protocol_spec list
(** RAPID (with the given metric), MaxProp, Spray-and-Wait, Random — the
    four lines of Figs. 4–7 and 16–24. *)

type point = Rapid_sim.Metrics.report list
(** One report per day/seed replication. *)

val mean_of : point -> (Rapid_sim.Metrics.report -> float) -> float
(** Mean of [f] over the point's reports, skipping non-finite samples
    (a zero-delivery day reports [nan] delays); [nan] when no sample is
    finite. *)

(** Storage override for one point. *)
type buffer_spec =
  | Profile_default  (** The profile's trace/synthetic buffer setting. *)
  | Unlimited
  | Bytes of int

type point_spec = {
  meta_cap_frac : float option;
      (** Administrator metadata cap (the Fig. 8 knob); [None] leaves the
          protocol's own policy in charge. *)
  buffer : buffer_spec;
  deployment_noise : bool;
      (** Apply the Table-3 deployment-imperfection layer to each trace
          day (trace points only). *)
  faults : Rapid_faults.Faults.config;
      (** Fault injection for this point; [Faults.none] (the default)
          runs the plain engine. All-zero-rate configs are canonicalized
          to [Faults.none] before keying the cache, so a "severity 0"
          point aliases the plain one. *)
}

val default_spec : point_spec
(** No cap, profile buffers, no noise — override fields as needed:
    [{ default_spec with buffer = Bytes b }]. *)

val run_trace_point :
  params:Params.t ->
  protocol:protocol_spec ->
  load:float ->
  ?spec:point_spec ->
  unit ->
  point
(** Run the protocol over the profile's DieselNet days at the given load
    (packets/hour/destination), with the profile's packet size, deadline
    and buffers unless [spec] overrides them. Cached per process under a
    typed {!Point_key.t} (protocol configuration, load, spec overrides,
    and the profile inputs the run depends on — days, base seed, packet
    size, deadline — so two profiles in one process never alias). *)

val run_synthetic_point :
  params:Params.t ->
  protocol:protocol_spec ->
  mobility:[ `Powerlaw | `Exponential ] ->
  load:float ->
  ?spec:point_spec ->
  unit ->
  point
(** Run the profile's Table-4 synthetic scenario over [syn_runs] seeds;
    [load] is packets per 50 s per destination. [spec.deployment_noise]
    is ignored (it is a trace-layer effect). *)

(** The typed trace-point cache key (exposed for tests). *)
module Point_key : sig
  type t = {
    cache_id : string;
    load : float;
    meta_cap_frac : float option;
    buffer_bytes : int option;
    deployment_noise : bool;
    days : int;
    base_seed : int;
    packet_bytes : int;
    deadline : float;
    faults : Rapid_faults.Faults.config;
  }
end

val reset_point_cache : unit -> unit
(** Drop every cached trace point AND the session's persistent store
    handle (tests use this to force live runs and isolate cache state). *)

val set_cache_dir : string option -> unit
(** Attach a persistent {!Rapid_store.Store} under the given directory
    (created if missing) to the point runners: subsequent
    {!run_trace_point} / {!run_synthetic_point} calls consult it before
    computing and write each freshly computed point back, so interrupted
    sweeps resume where they left off. [None] (the default state)
    disables the store. Safe under [--jobs N]: the handle is shared and
    internally locked, and cell writes are atomic. *)

val cache_store : unit -> Rapid_store.Store.t option
(** The session store installed by {!set_cache_dir}, if any (the CLI
    uses this to print store traffic after a cached run). *)

val trace_day :
  params:Params.t -> day:int -> Rapid_trace.Trace.t
(** Day [day] of the profile's DieselNet (seeded deterministically). *)

val trace_workload :
  params:Params.t ->
  trace:Rapid_trace.Trace.t ->
  load:float ->
  day:int ->
  Rapid_trace.Workload.spec list
