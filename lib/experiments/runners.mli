(** Shared machinery for the figure reproductions: protocol zoo, workload
    construction, and averaging over trace days / seeds. *)

type protocol_spec = {
  label : string;  (** Line label in the rendered figure. *)
  cache_id : string;
      (** Distinct per protocol *configuration* (metric, channel, acks):
          identical (cache_id, workload) trace points are computed once per
          process, so figures sharing baselines do not re-run them. *)
  make : unit -> Rapid_sim.Protocol.packed;
}

val rapid : Rapid_core.Metric.t -> protocol_spec
val rapid_with :
  ?label:string -> Rapid_core.Rapid.params -> protocol_spec
val maxprop : protocol_spec
val spray_wait : protocol_spec
val prophet : protocol_spec
val random : protocol_spec
val random_acks : protocol_spec

val comparison_set : Rapid_core.Metric.t -> protocol_spec list
(** RAPID (with the given metric), MaxProp, Spray-and-Wait, Random — the
    four lines of Figs. 4–7 and 16–24. *)

type point = Rapid_sim.Metrics.report list
(** One report per day/seed replication. *)

val mean_of : point -> (Rapid_sim.Metrics.report -> float) -> float
(** Mean of [f] over the point's reports, skipping non-finite samples
    (a zero-delivery day reports [nan] delays); [nan] when no sample is
    finite. *)

val run_trace_point :
  params:Params.t ->
  protocol:protocol_spec ->
  load:float ->
  ?meta_cap_frac:float ->
  ?buffer_bytes:int option ->
  ?deployment_noise:bool ->
  unit ->
  point
(** Run the protocol over the profile's DieselNet days at the given load
    (packets/hour/destination), with the profile's packet size, deadline
    and buffers. *)

val run_synthetic_point :
  params:Params.t ->
  protocol:protocol_spec ->
  mobility:[ `Powerlaw | `Exponential ] ->
  load:float ->
  ?buffer_bytes:int ->
  unit ->
  point
(** Run the profile's Table-4 synthetic scenario over [syn_runs] seeds;
    [load] is packets per 50 s per destination. *)

val trace_day :
  params:Params.t -> day:int -> Rapid_trace.Trace.t
(** Day [day] of the profile's DieselNet (seeded deterministically). *)

val trace_workload :
  params:Params.t ->
  trace:Rapid_trace.Trace.t ->
  load:float ->
  day:int ->
  Rapid_trace.Workload.spec list
