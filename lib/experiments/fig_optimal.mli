(** Figure 13: RAPID (in-band and instant-global channels) and MaxProp
    against Optimal at small loads, on the trace.

    "Our ILP objective function minimizes delay of all packets, where the
    delay of undelivered packets is set to the time the packet spent in
    the system" — so the y-value is {!Rapid_sim.Metrics.report.avg_delay_all}.
    Optimal runs on a reduced slice of each day (the ILP's size guard;
    smaller instances solve exactly, larger ones fall back to the
    contention-free bound, which is optimistic for Optimal — noted in the
    series output). *)

val day_slice :
  params:Params.t -> day:int -> frac:float -> Rapid_trace.Trace.t
(** The first [frac] of day [day]'s trace — the reduced instances Optimal
    solves exactly. Exposed for the ILP regression test and CI smoke. *)

val fig13 : Params.t -> Series.t
