open Rapid_prelude
open Rapid_trace
open Rapid_sim
open Rapid_core

type table3 = {
  avg_buses_scheduled : float;
  avg_bytes_per_day : float;
  avg_meetings_per_day : float;
  delivery_rate : float;
  avg_delay_minutes : float;
  meta_over_bandwidth : float;
  meta_over_data : float;
}

let deployment_load = 4.0 (* packets per hour per destination (§5.1) *)

(* Both deployment artifacts now go through [Runners.run_trace_point]
   (with [spec.deployment_noise] standing in for the old ad-hoc noisy
   path), so they share its per-process cache and — under [--cache-dir] —
   the persistent point store. The engine inputs are bit-identical to
   the previous direct [Engine.run]: same protocol ([Runners.rapid] is
   [Rapid.make_default]), same default options, same seeds. *)
let run_days ~(params : Params.t) ~noisy =
  Runners.run_trace_point ~params
    ~protocol:(Runners.rapid Metric.Average_delay) ~load:deployment_load
    ~spec:{ Runners.default_spec with deployment_noise = noisy }
    ()

(* Trace-side statistics (scheduled buses) do not depend on the engine
   run; regenerate the deterministic noisy traces directly instead of
   widening the store payload to carry them. *)
let noisy_trace ~(params : Params.t) ~day =
  let trace = Runners.trace_day ~params ~day in
  let rng = Rng.create ((params.Params.base_seed * 31) + day) in
  Dieselnet.with_deployment_noise rng trace

let table3 (params : Params.t) =
  let reports = run_days ~params ~noisy:true in
  let traces =
    Rapid_par.Pool.init params.Params.days (fun day -> noisy_trace ~params ~day)
  in
  let mean_t f = Stats.mean (List.map f traces) in
  let mean f = Stats.mean (List.map f reports) in
  {
    avg_buses_scheduled =
      mean_t (fun t -> float_of_int (Array.length t.Trace.active));
    avg_bytes_per_day =
      mean (fun r -> float_of_int (r.Metrics.data_bytes + r.Metrics.metadata_bytes));
    avg_meetings_per_day = mean (fun r -> float_of_int r.Metrics.num_contacts);
    delivery_rate = mean (fun r -> r.Metrics.delivery_rate);
    avg_delay_minutes = mean (fun r -> r.Metrics.avg_delay /. 60.0);
    meta_over_bandwidth = mean (fun r -> r.Metrics.metadata_frac_bandwidth);
    meta_over_data = mean (fun r -> r.Metrics.metadata_frac_data);
  }

let render_table3 t =
  String.concat "\n"
    [
      "== TABLE 3: deployment daily statistics (emulated) ==";
      Printf.sprintf "Avg. buses scheduled per day        %8.1f" t.avg_buses_scheduled;
      Printf.sprintf "Avg. total bytes transferred per day %7.1f MB" (t.avg_bytes_per_day /. 1e6);
      Printf.sprintf "Avg. number of meetings per day     %8.1f" t.avg_meetings_per_day;
      Printf.sprintf "Percentage delivered per day        %8.1f%%" (100.0 *. t.delivery_rate);
      Printf.sprintf "Avg. packet delivery delay          %8.1f min" t.avg_delay_minutes;
      Printf.sprintf "Meta-data size / bandwidth          %8.4f" t.meta_over_bandwidth;
      Printf.sprintf "Meta-data size / data size          %8.4f" t.meta_over_data;
      "";
    ]

let fig3 (params : Params.t) =
  let per_day noisy =
    List.mapi
      (fun day r -> (float_of_int day, r.Metrics.avg_delay /. 60.0))
      (run_days ~params ~noisy)
  in
  let real = per_day true in
  let sim = per_day false in
  let diffs =
    List.map2
      (fun (_, a) (_, b) -> if b = 0.0 then 0.0 else (a -. b) /. b)
      real sim
  in
  let s = Stats.summarize diffs in
  Series.make ~id:"fig3" ~title:"Validation: real (noisy) vs simulation"
    ~x_label:"day" ~y_label:"avg delay (min)"
    ~notes:
      [
        Printf.sprintf
          "mean relative difference %.1f%% (95%% CI +-%.1f%%) across %d days"
          (100.0 *. s.Stats.mean) (100.0 *. s.Stats.ci95) s.Stats.n;
      ]
    [ { Series.label = "Real"; points = real };
      { Series.label = "Simulation"; points = sim } ]
