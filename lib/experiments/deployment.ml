open Rapid_prelude
open Rapid_trace
open Rapid_sim
open Rapid_core

type table3 = {
  avg_buses_scheduled : float;
  avg_bytes_per_day : float;
  avg_meetings_per_day : float;
  delivery_rate : float;
  avg_delay_minutes : float;
  meta_over_bandwidth : float;
  meta_over_data : float;
}

let deployment_load = 4.0 (* packets per hour per destination (§5.1) *)

let run_day ~(params : Params.t) ~day ~noisy =
  let trace = Runners.trace_day ~params ~day in
  let trace =
    if noisy then begin
      let rng = Rng.create ((params.Params.base_seed * 31) + day) in
      Dieselnet.with_deployment_noise rng trace
    end
    else trace
  in
  let workload =
    Runners.trace_workload ~params ~trace ~load:deployment_load ~day
  in
  let report =
    (Engine.run
       ~options:{ Engine.default_options with seed = params.Params.base_seed + day }
       ~protocol:(Rapid.make_default Metric.Average_delay)
       ~trace ~workload ())
      .Engine.report
  in
  (trace, report)

let table3 (params : Params.t) =
  let days =
    Rapid_par.Pool.init params.Params.days (fun d -> run_day ~params ~day:d ~noisy:true)
  in
  let mean f = Stats.mean (List.map f days) in
  {
    avg_buses_scheduled = mean (fun (t, _) -> float_of_int (Array.length t.Trace.active));
    avg_bytes_per_day =
      mean (fun (_, r) -> float_of_int (r.Metrics.data_bytes + r.Metrics.metadata_bytes));
    avg_meetings_per_day = mean (fun (_, r) -> float_of_int r.Metrics.num_contacts);
    delivery_rate = mean (fun (_, r) -> r.Metrics.delivery_rate);
    avg_delay_minutes = mean (fun (_, r) -> r.Metrics.avg_delay /. 60.0);
    meta_over_bandwidth = mean (fun (_, r) -> r.Metrics.metadata_frac_bandwidth);
    meta_over_data = mean (fun (_, r) -> r.Metrics.metadata_frac_data);
  }

let render_table3 t =
  String.concat "\n"
    [
      "== TABLE 3: deployment daily statistics (emulated) ==";
      Printf.sprintf "Avg. buses scheduled per day        %8.1f" t.avg_buses_scheduled;
      Printf.sprintf "Avg. total bytes transferred per day %7.1f MB" (t.avg_bytes_per_day /. 1e6);
      Printf.sprintf "Avg. number of meetings per day     %8.1f" t.avg_meetings_per_day;
      Printf.sprintf "Percentage delivered per day        %8.1f%%" (100.0 *. t.delivery_rate);
      Printf.sprintf "Avg. packet delivery delay          %8.1f min" t.avg_delay_minutes;
      Printf.sprintf "Meta-data size / bandwidth          %8.4f" t.meta_over_bandwidth;
      Printf.sprintf "Meta-data size / data size          %8.4f" t.meta_over_data;
      "";
    ]

let fig3 (params : Params.t) =
  let per_day noisy =
    Rapid_par.Pool.init params.Params.days (fun day ->
        let _, r = run_day ~params ~day ~noisy in
        (float_of_int day, r.Metrics.avg_delay /. 60.0))
  in
  let real = per_day true in
  let sim = per_day false in
  let diffs =
    List.map2
      (fun (_, a) (_, b) -> if b = 0.0 then 0.0 else (a -. b) /. b)
      real sim
  in
  let s = Stats.summarize diffs in
  Series.make ~id:"fig3" ~title:"Validation: real (noisy) vs simulation"
    ~x_label:"day" ~y_label:"avg delay (min)"
    ~notes:
      [
        Printf.sprintf
          "mean relative difference %.1f%% (95%% CI +-%.1f%%) across %d days"
          (100.0 *. s.Stats.mean) (100.0 *. s.Stats.ci95) s.Stats.n;
      ]
    [ { Series.label = "Real"; points = real };
      { Series.label = "Simulation"; points = sim } ]
