open Rapid_trace
open Rapid_sim
open Rapid_core

(* A slice of the day keeps ILP instances within the solver budget while
   preserving the meeting structure: the first [frac] of the day, active
   nodes restricted to those appearing in it. *)
let day_slice ~(params : Params.t) ~day ~frac =
  let trace = Runners.trace_day ~params ~day in
  let horizon = trace.Trace.duration *. frac in
  Trace.create ~num_nodes:trace.Trace.num_nodes ~duration:horizon
    (Array.to_list trace.Trace.contacts
    |> List.filter (fun (c : Contact.t) -> c.Contact.time < horizon))

let fig13 (params : Params.t) =
  let loads = [ 0.5; 1.0; 2.0; 4.0; 6.0 ] in
  let frac = 0.15 in
  let days = min params.Params.days 3 in
  let protos =
    [
      ( "RAPID in-band",
        Runners.rapid_with ~label:"in-band"
          (Rapid.default_params Metric.Average_delay) );
      ( "RAPID global",
        Runners.rapid_with ~label:"global"
          {
            (Rapid.default_params Metric.Average_delay) with
            Rapid.channel = Control_channel.Instant_global;
          } );
      ("MaxProp", Runners.maxprop);
    ]
  in
  let per_day load day =
    let trace = day_slice ~params ~day ~frac in
    let workload = Runners.trace_workload ~params ~trace ~load ~day in
    (trace, workload)
  in
  (* Solver-method counts are tallied from the returned tags, not bumped
     inside the parallel region. *)
  let bound_count = ref 0
  and exact_count = ref 0
  and incumbent_count = ref 0 in
  let optimal_line =
    {
      Series.label = "Optimal";
      points =
        List.map
          (fun load ->
            let vals =
              Rapid_par.Pool.init days (fun day ->
                  let trace, workload = per_day load day in
                  let v =
                    Rapid_routing.Optimal.evaluate ~trace ~workload ()
                  in
                  ( v.Rapid_routing.Optimal.avg_delay_all /. 60.0,
                    v.Rapid_routing.Optimal.how ))
            in
            List.iter
              (fun (_, how) ->
                match how with
                | Rapid_routing.Optimal.Bound -> incr bound_count
                | Rapid_routing.Optimal.Ilp_exact -> incr exact_count
                | Rapid_routing.Optimal.Ilp_incumbent -> incr incumbent_count)
              vals;
            (load, Rapid_prelude.Stats.mean (List.map fst vals)))
          loads;
    }
  in
  let protocol_lines =
    List.map
      (fun (label, (proto : Runners.protocol_spec)) ->
        {
          Series.label;
          points =
            List.map
              (fun load ->
                let vals =
                  Rapid_par.Pool.init days (fun day ->
                      let trace, workload = per_day load day in
                      let r =
                        (Engine.run ~protocol:(proto.Runners.make ()) ~trace
                           ~workload ())
                          .Engine.report
                      in
                      r.Metrics.avg_delay_all /. 60.0)
                in
                (load, Rapid_prelude.Stats.mean vals))
              loads;
        })
      protos
  in
  Series.make ~id:"fig13" ~title:"Trace slice: comparison with Optimal"
    ~x_label:"pkts/hr/dest" ~y_label:"avg delay incl. undelivered (min)"
    ~notes:
      [
        Printf.sprintf
          "optimal solved exactly %d times, to an incumbent %d times, by \
           contention-free bound %d times"
          !exact_count !incumbent_count !bound_count;
      ]
    (optimal_line :: protocol_lines)
