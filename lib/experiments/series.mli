(** Result container for one reproduced figure or table: named lines of
    (x, y) points plus free-form note rows, with a plain-text renderer that
    prints the same rows/series the paper plots. *)

type line = { label : string; points : (float * float) list }

type t = {
  id : string;  (** e.g. "fig4". *)
  title : string;
  x_label : string;
  y_label : string;
  lines : line list;
  notes : string list;
}

val make :
  id:string -> title:string -> x_label:string -> y_label:string ->
  ?notes:string list -> line list -> t

val render : t -> string
(** Aligned table: one row per x, one column per line. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Rapid_obs.Json.t
(** Machine-readable form: id/title/labels, each line as its label plus
    [[x, y]] point pairs, and the note rows ([nan] points serialize as
    [null]). *)

val crossover : t -> a:string -> b:string -> float option
(** Smallest x at which line [a]'s y exceeds line [b]'s (used to report
    where protocols cross in EXPERIMENTS.md). *)

val ratio_at : t -> a:string -> b:string -> x:float -> float option
(** y_a / y_b at the given x, when both lines have that point. *)
