open Rapid_sim
open Rapid_core

type axis = Load | Buffer

(* Figures 16–18 (and 19–21, 22–24) share their baseline runs: MaxProp /
   Spray-and-Wait / Random do not depend on RAPID's metric, so each
   (protocol, mobility, axis, x) point is computed once per process. *)
let point_cache : (string * string * string * float, Runners.point) Hashtbl.t =
  Hashtbl.create 64

let cached ~key run =
  match Hashtbl.find_opt point_cache key with
  | Some pt -> pt
  | None ->
      let pt = run () in
      Hashtbl.replace point_cache key pt;
      pt

let extract_for = function
  | `Avg -> fun (r : Metrics.report) -> r.Metrics.avg_delay
  | `Max -> fun (r : Metrics.report) -> r.Metrics.max_delay
  | `Deadline -> fun (r : Metrics.report) -> r.Metrics.within_deadline_rate

let metric_for = function
  | `Avg -> Metric.Average_delay
  | `Max -> Metric.Maximum_delay
  | `Deadline -> Metric.Missed_deadlines

let y_label_for = function
  | `Avg -> "avg delay (s)"
  | `Max -> "max delay (s)"
  | `Deadline -> "fraction within deadline"

let mobility_tag = function `Powerlaw -> "powerlaw" | `Exponential -> "exp"
let axis_tag = function Load -> "load" | Buffer -> "buffer"

let sweep ~(params : Params.t) ~mobility ~axis ~which =
  let protocols = Runners.comparison_set (metric_for which) in
  let extract = extract_for which in
  let xs, runner =
    match axis with
    | Load ->
        ( params.Params.syn_loads,
          fun (p : Runners.protocol_spec) load ->
            Runners.run_synthetic_point ~params ~protocol:p ~mobility ~load () )
    | Buffer ->
        ( List.map float_of_int params.Params.syn_buffers,
          fun p bytes ->
            Runners.run_synthetic_point ~params ~protocol:p ~mobility
              ~load:20.0
              ~spec:
                { Runners.default_spec with
                  buffer = Runners.Bytes (int_of_float bytes) }
              () )
  in
  List.map
    (fun (p : Runners.protocol_spec) ->
      {
        Series.label = p.Runners.label;
        points =
          List.map
            (fun x ->
              (* RAPID's runs depend on its metric; the baselines do not
                 and are shared across the three figures of a family. *)
              let key_label =
                if p.Runners.label = "RAPID" then
                  "RAPID/" ^ Metric.to_string (metric_for which)
                else p.Runners.label
              in
              let key = (key_label, mobility_tag mobility, axis_tag axis, x) in
              (x, Runners.mean_of (cached ~key (fun () -> runner p x)) extract))
            xs;
      })
    protocols

let make_fig ~id ~title ~params ~mobility ~axis ~which =
  let x_label =
    match axis with Load -> "pkts/50s/dest" | Buffer -> "buffer (bytes)"
  in
  Series.make ~id ~title ~x_label ~y_label:(y_label_for which)
    (sweep ~params ~mobility ~axis ~which)

let fig16 params =
  make_fig ~id:"fig16" ~title:"Powerlaw: avg delay vs load" ~params
    ~mobility:`Powerlaw ~axis:Load ~which:`Avg

let fig17 params =
  make_fig ~id:"fig17" ~title:"Powerlaw: max delay vs load" ~params
    ~mobility:`Powerlaw ~axis:Load ~which:`Max

let fig18 params =
  make_fig ~id:"fig18" ~title:"Powerlaw: delivery within deadline vs load"
    ~params ~mobility:`Powerlaw ~axis:Load ~which:`Deadline

let fig19 params =
  make_fig ~id:"fig19" ~title:"Powerlaw: avg delay vs buffer size" ~params
    ~mobility:`Powerlaw ~axis:Buffer ~which:`Avg

let fig20 params =
  make_fig ~id:"fig20" ~title:"Powerlaw: max delay vs buffer size" ~params
    ~mobility:`Powerlaw ~axis:Buffer ~which:`Max

let fig21 params =
  make_fig ~id:"fig21" ~title:"Powerlaw: within deadline vs buffer size"
    ~params ~mobility:`Powerlaw ~axis:Buffer ~which:`Deadline

let fig22 params =
  make_fig ~id:"fig22" ~title:"Exponential: avg delay vs load" ~params
    ~mobility:`Exponential ~axis:Load ~which:`Avg

let fig23 params =
  make_fig ~id:"fig23" ~title:"Exponential: max delay vs load" ~params
    ~mobility:`Exponential ~axis:Load ~which:`Max

let fig24 params =
  make_fig ~id:"fig24" ~title:"Exponential: delivery within deadline vs load"
    ~params ~mobility:`Exponential ~axis:Load ~which:`Deadline
