open Rapid_sim

let fig8 params =
  let caps = [ 0.0; 0.01; 0.05; 0.1; 0.2; 0.35 ] in
  let loads =
    (* "6, 12 and 20 packets per hour per node" *)
    match params.Params.trace_loads with
    | _ :: _ -> [ 6.0; 12.0; 20.0 ]
    | [] -> [ 6.0 ]
  in
  let protocol = Runners.rapid Rapid_core.Metric.Average_delay in
  let lines =
    List.map
      (fun load ->
        let points =
          List.map
            (fun cap ->
              let point =
                Runners.run_trace_point ~params ~protocol ~load
                  ~spec:{ Runners.default_spec with meta_cap_frac = Some cap }
                  ()
              in
              ( cap,
                Runners.mean_of point (fun r -> r.Metrics.avg_delay /. 60.0) ))
            caps
        in
        { Series.label = Printf.sprintf "load %g/h" load; points })
      loads
  in
  Series.make ~id:"fig8" ~title:"Trace: benefit of the control channel"
    ~x_label:"metadata cap (frac of bw)" ~y_label:"avg delay (min)" lines

let fig9 params =
  let loads = params.Params.trace_loads @ [ 60.0; 75.0 ] in
  let protocol = Runners.rapid Rapid_core.Metric.Average_delay in
  let runs =
    List.map
      (fun load ->
        (load, Runners.run_trace_point ~params ~protocol ~load ()))
      loads
  in
  let line label extract =
    {
      Series.label;
      points = List.map (fun (l, pt) -> (l, Runners.mean_of pt extract)) runs;
    }
  in
  Series.make ~id:"fig9" ~title:"Trace: channel utilization under load"
    ~x_label:"pkts/hr/dest" ~y_label:"fraction"
    [
      line "meta/data" (fun r -> r.Metrics.metadata_frac_data);
      line "utilization" (fun r -> r.Metrics.utilization);
      line "delivery rate" (fun r -> r.Metrics.delivery_rate);
    ]
