(** Registry of every reproduced artifact, keyed by paper id ("fig4",
    "table3", ...), used by both the CLI and the bench harness. *)

(** What rendering an artifact produces: prose/table artifacts (table3,
    ablations) are plain text; figure artifacts carry the structured
    series alongside its rendered text, so one [render] call serves both
    the terminal and [--json] without re-running the experiment. *)
type output =
  | Text of string
  | Series of Series.t * string  (** structured form, rendered text *)

type item = {
  id : string;
  title : string;
  render : Params.t -> output;  (** Run the experiment and render it. *)
}

val output_text : output -> string
(** The paper-style rows/series as printed to the terminal. *)

val output_json : item -> output -> Rapid_obs.Json.t
(** Machine-readable form: the series JSON for figures, an
    [{id; title; rendered}] object for text artifacts. *)

val all : item list
(** In paper order: table3, fig3, fig4 ... fig24. *)

val find : string -> item option

val params_header : Params.t -> string
(** Table-4-style parameter banner printed before a batch of runs. *)
