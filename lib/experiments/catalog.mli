(** Registry of every reproduced artifact, keyed by paper id ("fig4",
    "table3", ...), used by both the CLI and the bench harness. *)

type item = {
  id : string;
  title : string;
  run : Params.t -> string;  (** Render the paper-style rows/series. *)
  series : (Params.t -> Series.t) option;
      (** Structured form when the artifact is a figure series; [None] for
          prose/table artifacts (table3, ablations). The CLI's [--json]
          uses it and falls back to the rendered text otherwise. *)
}

val all : item list
(** In paper order: table3, fig3, fig4 ... fig24. *)

val find : string -> item option

val params_header : Params.t -> string
(** Table-4-style parameter banner printed before a batch of runs. *)
