open Rapid_prelude
open Rapid_trace
open Rapid_sim
open Rapid_core

type protocol_spec = {
  label : string;
  cache_id : string;
  make : unit -> Protocol.packed;
}

let rapid_cache_id (p : Rapid.params) =
  Printf.sprintf "rapid:%s:%s:%b:%g"
    (Metric.to_string p.Rapid.metric)
    (Control_channel.to_string p.Rapid.channel)
    p.Rapid.use_acks p.Rapid.meta_self_cap_frac

let rapid metric =
  let params = Rapid.default_params metric in
  {
    label = "RAPID";
    cache_id = rapid_cache_id params;
    make = (fun () -> Rapid.make params);
  }

let rapid_with ?label params =
  let label =
    match label with
    | Some l -> l
    | None -> "RAPID(" ^ Control_channel.to_string params.Rapid.channel ^ ")"
  in
  { label; cache_id = rapid_cache_id params; make = (fun () -> Rapid.make params) }

let maxprop =
  { label = "MaxProp"; cache_id = "maxprop";
    make = (fun () -> Rapid_routing.Maxprop.make ()) }

let spray_wait =
  { label = "SprayWait"; cache_id = "spraywait12";
    make = (fun () -> Rapid_routing.Spray_wait.make ~l:12 ()) }

let prophet =
  { label = "Prophet"; cache_id = "prophet";
    make = (fun () -> Rapid_routing.Prophet.make ()) }

let random =
  { label = "Random"; cache_id = "random";
    make = (fun () -> Rapid_routing.Random_protocol.make ()) }

let random_acks =
  {
    label = "Random+acks";
    cache_id = "random-acks";
    make = (fun () -> Rapid_routing.Random_protocol.make ~with_acks:true ());
  }

let comparison_set metric = [ rapid metric; maxprop; spray_wait; random ]

type point = Metrics.report list

(* A day with zero deliveries reports [nan] delays (see Metrics); skip
   non-finite samples so they cannot poison a figure's mean. *)
let mean_of point f =
  match List.filter Float.is_finite (List.map f point) with
  | [] -> nan
  | xs -> Stats.mean xs

let trace_day ~(params : Params.t) ~day =
  Dieselnet.day ~params:params.Params.dieselnet ~seed:params.Params.base_seed
    ~day ()

let trace_workload ~(params : Params.t) ~trace ~load ~day =
  let rng = Rng.create ((params.Params.base_seed * 65537) + day) in
  Workload.generate rng ~trace ~pkts_per_hour_per_dest:load
    ~size:params.Params.trace_packet_bytes
    ~lifetime:params.Params.trace_deadline ()

let trace_point_cache : (string, Metrics.report list) Hashtbl.t =
  Hashtbl.create 64

let run_trace_point_uncached ~(params : Params.t) ~protocol ~load
    ~meta_cap_frac ~buffer_bytes ~deployment_noise =
  List.init params.Params.days (fun day ->
      let trace = trace_day ~params ~day in
      let trace =
        if deployment_noise then begin
          let rng = Rng.create ((params.Params.base_seed * 31) + day) in
          Dieselnet.with_deployment_noise rng trace
        end
        else trace
      in
      let workload = trace_workload ~params ~trace ~load ~day in
      Engine.run
        ~options:
          { Engine.buffer_bytes; meta_cap_frac; seed = params.Params.base_seed + day }
        ~protocol:(protocol.make ()) ~trace ~workload ())

let run_trace_point ~(params : Params.t) ~protocol ~load ?meta_cap_frac
    ?buffer_bytes ?(deployment_noise = false) () =
  let buffer_bytes =
    match buffer_bytes with
    | Some b -> b
    | None -> params.Params.trace_buffer_bytes
  in
  let key =
    Printf.sprintf "%s|%g|%s|%s|%b|%d" protocol.cache_id load
      (match meta_cap_frac with None -> "-" | Some f -> string_of_float f)
      (match buffer_bytes with None -> "-" | Some b -> string_of_int b)
      deployment_noise params.Params.days
  in
  match Hashtbl.find_opt trace_point_cache key with
  | Some pt -> pt
  | None ->
      let pt =
        run_trace_point_uncached ~params ~protocol ~load ~meta_cap_frac
          ~buffer_bytes ~deployment_noise
      in
      Hashtbl.replace trace_point_cache key pt;
      pt

let run_synthetic_point ~(params : Params.t) ~protocol ~mobility ~load
    ?buffer_bytes () =
  let buffer_bytes =
    Option.value buffer_bytes ~default:params.Params.syn_buffer_bytes
  in
  List.init params.Params.syn_runs (fun run ->
      let seed = params.Params.base_seed + (1000 * run) in
      let rng = Rng.create seed in
      let trace =
        match mobility with
        | `Powerlaw ->
            Rapid_mobility.Mobility.powerlaw rng
              ~num_nodes:params.Params.syn_nodes
              ~mean_inter_meeting:params.Params.syn_mean_inter_meeting
              ~duration:params.Params.syn_duration
              ~opportunity_bytes:params.Params.syn_opportunity_bytes ()
        | `Exponential ->
            Rapid_mobility.Mobility.exponential rng
              ~num_nodes:params.Params.syn_nodes
              ~mean_inter_meeting:params.Params.syn_mean_inter_meeting
              ~duration:params.Params.syn_duration
              ~opportunity_bytes:params.Params.syn_opportunity_bytes
      in
      let workload =
        Workload.generate rng ~trace
          ~pkts_per_hour_per_dest:(Params.syn_pair_rate_per_hour params load)
          ~size:params.Params.syn_packet_bytes
          ~lifetime:params.Params.syn_deadline ()
      in
      Engine.run
        ~options:
          {
            Engine.buffer_bytes = Some buffer_bytes;
            meta_cap_frac = None;
            seed;
          }
        ~protocol:(protocol.make ()) ~trace ~workload ())
