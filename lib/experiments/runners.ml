open Rapid_prelude
open Rapid_trace
open Rapid_sim
open Rapid_core
module Pool = Rapid_par.Pool
module Faults = Rapid_faults.Faults
module Store = Rapid_store.Store
module Json = Rapid_obs.Json

type protocol_spec = {
  label : string;
  cache_id : string;
  make : unit -> Protocol.packed;
}

let rapid_cache_id (p : Rapid.params) =
  Printf.sprintf "rapid:%s:%s:%b:%g"
    (Metric.to_string p.Rapid.metric)
    (Control_channel.to_string p.Rapid.channel)
    p.Rapid.use_acks p.Rapid.meta_self_cap_frac

let rapid metric =
  let params = Rapid.default_params metric in
  {
    label = "RAPID";
    cache_id = rapid_cache_id params;
    make = (fun () -> Rapid.make params);
  }

let rapid_with ?label params =
  let label =
    match label with
    | Some l -> l
    | None -> "RAPID(" ^ Control_channel.to_string params.Rapid.channel ^ ")"
  in
  { label; cache_id = rapid_cache_id params; make = (fun () -> Rapid.make params) }

let maxprop =
  { label = "MaxProp"; cache_id = "maxprop";
    make = (fun () -> Rapid_routing.Maxprop.make ()) }

let spray_wait =
  { label = "SprayWait"; cache_id = "spraywait12";
    make = (fun () -> Rapid_routing.Spray_wait.make ~l:12 ()) }

let prophet =
  { label = "Prophet"; cache_id = "prophet";
    make = (fun () -> Rapid_routing.Prophet.make ()) }

let random =
  { label = "Random"; cache_id = "random";
    make = (fun () -> Rapid_routing.Random_protocol.make ()) }

let random_acks =
  {
    label = "Random+acks";
    cache_id = "random-acks";
    make = (fun () -> Rapid_routing.Random_protocol.make ~with_acks:true ());
  }

let comparison_set metric = [ rapid metric; maxprop; spray_wait; random ]

type point = Metrics.report list

(* A day with zero deliveries reports [nan] delays (see Metrics); skip
   non-finite samples so they cannot poison a figure's mean. *)
let mean_of point f =
  match List.filter Float.is_finite (List.map f point) with
  | [] -> nan
  | xs -> Stats.mean xs

let trace_day ~(params : Params.t) ~day =
  Dieselnet.day ~params:params.Params.dieselnet ~seed:params.Params.base_seed
    ~day ()

let trace_workload ~(params : Params.t) ~trace ~load ~day =
  let rng = Rng.create ((params.Params.base_seed * 65537) + day) in
  Workload.generate rng ~trace ~pkts_per_hour_per_dest:load
    ~size:params.Params.trace_packet_bytes
    ~lifetime:params.Params.trace_deadline ()

(* ------------------------------------------------------------------ *)
(* Point specs: the non-default knobs of a figure point, folded into one
   record instead of a sprawl of per-call optional arguments. *)

type buffer_spec = Profile_default | Unlimited | Bytes of int

type point_spec = {
  meta_cap_frac : float option;
  buffer : buffer_spec;
  deployment_noise : bool;
  faults : Faults.config;
}

let default_spec =
  {
    meta_cap_frac = None;
    buffer = Profile_default;
    deployment_noise = false;
    faults = Faults.none;
  }

module Point_key = struct
  type t = {
    cache_id : string;
    load : float;
    meta_cap_frac : float option;
    buffer_bytes : int option;  (* resolved: [None] = unlimited storage *)
    deployment_noise : bool;
    days : int;
    base_seed : int;
    packet_bytes : int;
    deadline : float;
    faults : Faults.config;
  }
end

(* Guards [trace_point_cache]: points may be computed from fig drivers
   that themselves run on pool workers, and the pool makes no promise
   about which domain executes a task. *)
let cache_lock = Mutex.create ()

let trace_point_cache : (Point_key.t, Metrics.report list) Hashtbl.t =
  Hashtbl.create 64

(* The session's persistent point store ([--cache-dir]); [None] — the
   default — keeps everything exactly as it was before lib/store existed.
   Shares [cache_lock] with the in-memory cache: both are touched from
   pool workers. *)
let session_store : Store.t option ref = ref None

let set_cache_dir = function
  | None -> Mutex.protect cache_lock (fun () -> session_store := None)
  | Some dir ->
      (* Open outside the lock: creating directories can be slow. *)
      let s = Store.open_dir dir in
      Mutex.protect cache_lock (fun () -> session_store := Some s)

let cache_store () = Mutex.protect cache_lock (fun () -> !session_store)

let reset_point_cache () =
  Mutex.protect cache_lock (fun () ->
      Hashtbl.reset trace_point_cache;
      (* Also drop the store handle: a test that reset the caches must
         not silently resurrect points from an earlier [set_cache_dir]. *)
      session_store := None)

(* ------------------------------------------------------------------ *)
(* Persistent store keying: every input a point's reports depend on,
   spelled out as a self-describing JSON document (the store hashes its
   canonical form, so field order here is immaterial). [point_schema]
   versions the *payload* shape — bump it when the report serialization
   changes so stale cells become unreachable rather than corrupt. *)

let point_schema = 1

let json_opt_int = function Some i -> Json.Int i | None -> Json.Null
let json_opt_float = function Some f -> Json.Float f | None -> Json.Null

let dieselnet_json (dn : Dieselnet.params) =
  Json.Obj
    [
      ("fleet_size", Json.Int dn.Dieselnet.fleet_size);
      ("mean_scheduled", Json.Int dn.Dieselnet.mean_scheduled);
      ("num_routes", Json.Int dn.Dieselnet.num_routes);
      ("day_seconds", Json.Float dn.Dieselnet.day_seconds);
      ("meetings_per_day", Json.Float dn.Dieselnet.meetings_per_day);
      ("mean_contact_bytes", Json.Float dn.Dieselnet.mean_contact_bytes);
    ]

let trace_store_key ~(params : Params.t) (k : Point_key.t) =
  Json.Obj
    [
      ("kind", Json.String "trace_point");
      ("point_schema", Json.Int point_schema);
      ("cache_id", Json.String k.Point_key.cache_id);
      ("load", Json.Float k.Point_key.load);
      ("meta_cap_frac", json_opt_float k.Point_key.meta_cap_frac);
      ("buffer_bytes", json_opt_int k.Point_key.buffer_bytes);
      ("deployment_noise", Json.Bool k.Point_key.deployment_noise);
      ("days", Json.Int k.Point_key.days);
      ("base_seed", Json.Int k.Point_key.base_seed);
      ("packet_bytes", Json.Int k.Point_key.packet_bytes);
      ("deadline", Json.Float k.Point_key.deadline);
      ("faults", Json.String (Faults.spec_string k.Point_key.faults));
      ("dieselnet", dieselnet_json params.Params.dieselnet);
    ]

let synthetic_store_key ~(params : Params.t) ~cache_id ~mobility ~load
    ~(spec : point_spec) ~buffer_bytes ~faults =
  Json.Obj
    [
      ("kind", Json.String "synthetic_point");
      ("point_schema", Json.Int point_schema);
      ("cache_id", Json.String cache_id);
      ( "mobility",
        Json.String
          (match mobility with
          | `Powerlaw -> "powerlaw"
          | `Exponential -> "exponential") );
      ("load", Json.Float load);
      ("meta_cap_frac", json_opt_float spec.meta_cap_frac);
      ("buffer_bytes", json_opt_int buffer_bytes);
      ("faults", Json.String (Faults.spec_string faults));
      ("syn_runs", Json.Int params.Params.syn_runs);
      ("syn_nodes", Json.Int params.Params.syn_nodes);
      ("syn_duration", Json.Float params.Params.syn_duration);
      ( "syn_mean_inter_meeting",
        Json.Float params.Params.syn_mean_inter_meeting );
      ("syn_opportunity_bytes", Json.Int params.Params.syn_opportunity_bytes);
      ("syn_packet_bytes", Json.Int params.Params.syn_packet_bytes);
      ("syn_deadline", Json.Float params.Params.syn_deadline);
      ("base_seed", Json.Int params.Params.base_seed);
    ]

let point_to_json pt = Json.List (List.map Metrics.report_to_json pt)

let point_of_json = function
  | Json.List l -> List.map Metrics.report_of_json l
  | _ -> invalid_arg "Runners.point_of_json: payload is not a list"

(* A cell that parses and checksums but no longer decodes (payload shape
   drift without a point_schema bump) degrades to a recompute, exactly
   like a checksum failure. *)
let store_find_point s skey =
  match Store.find s ~key:skey with
  | None -> None
  | Some payload -> (
      match point_of_json payload with
      | pt -> Some pt
      | exception Invalid_argument reason ->
          Store.note_corrupt s ~key:skey ~reason;
          None)

(* Each day is an independent cell: trace, workload and engine seed all
   derive from (base_seed, day), so the pool fan-out is bit-identical to
   the sequential List.init. *)
let run_trace_point_uncached ~(params : Params.t) ~protocol ~load ~spec
    ~buffer_bytes ~faults =
  Pool.init params.Params.days (fun day ->
      let trace = trace_day ~params ~day in
      let trace =
        if spec.deployment_noise then begin
          let rng = Rng.create ((params.Params.base_seed * 31) + day) in
          Dieselnet.with_deployment_noise rng trace
        end
        else trace
      in
      let workload = trace_workload ~params ~trace ~load ~day in
      (Engine.run
         ~options:
           {
             Engine.buffer_bytes;
             meta_cap_frac = spec.meta_cap_frac;
             seed = params.Params.base_seed + day;
             faults;
           }
         ~protocol:(protocol.make ()) ~trace ~workload ())
        .Engine.report)

let run_trace_point ~(params : Params.t) ~protocol ~load ?(spec = default_spec)
    () =
  let buffer_bytes =
    match spec.buffer with
    | Profile_default -> params.Params.trace_buffer_bytes
    | Unlimited -> None
    | Bytes b -> Some b
  in
  (* Canonicalize all-zero-rate configs so a "faulted at severity 0"
     point shares its cache cell with plain points. *)
  let faults = if Faults.is_none spec.faults then Faults.none else spec.faults in
  let key =
    {
      Point_key.cache_id = protocol.cache_id;
      load;
      meta_cap_frac = spec.meta_cap_frac;
      buffer_bytes;
      deployment_noise = spec.deployment_noise;
      days = params.Params.days;
      base_seed = params.Params.base_seed;
      packet_bytes = params.Params.trace_packet_bytes;
      deadline = params.Params.trace_deadline;
      faults;
    }
  in
  match
    Mutex.protect cache_lock (fun () ->
        Hashtbl.find_opt trace_point_cache key)
  with
  | Some pt -> pt
  | None -> (
      let store = cache_store () in
      let skey () = trace_store_key ~params key in
      let memoize pt =
        Mutex.protect cache_lock (fun () ->
            Hashtbl.replace trace_point_cache key pt)
      in
      match
        match store with
        | None -> None
        | Some s -> store_find_point s (skey ())
      with
      | Some pt ->
          memoize pt;
          pt
      | None ->
          (* Computed outside the lock (a point is seconds of simulation);
             a racing duplicate computation would produce the identical
             value, so a lost replace is harmless — as is a racing store
             write, thanks to the atomic rename. *)
          let pt =
            run_trace_point_uncached ~params ~protocol ~load ~spec
              ~buffer_bytes ~faults
          in
          (match store with
          | None -> ()
          | Some s -> Store.store s ~key:(skey ()) (point_to_json pt));
          memoize pt;
          pt)

let run_synthetic_point ~(params : Params.t) ~protocol ~mobility ~load
    ?(spec = default_spec) () =
  let buffer_bytes =
    match spec.buffer with
    | Profile_default -> Some params.Params.syn_buffer_bytes
    | Unlimited -> None
    | Bytes b -> Some b
  in
  let faults = if Faults.is_none spec.faults then Faults.none else spec.faults in
  let compute () =
    Pool.init params.Params.syn_runs (fun run ->
        let seed = params.Params.base_seed + (1000 * run) in
        let rng = Rng.create seed in
        let trace =
          match mobility with
          | `Powerlaw ->
              Rapid_mobility.Mobility.powerlaw rng
                ~num_nodes:params.Params.syn_nodes
                ~mean_inter_meeting:params.Params.syn_mean_inter_meeting
                ~duration:params.Params.syn_duration
                ~opportunity_bytes:params.Params.syn_opportunity_bytes ()
          | `Exponential ->
              Rapid_mobility.Mobility.exponential rng
                ~num_nodes:params.Params.syn_nodes
                ~mean_inter_meeting:params.Params.syn_mean_inter_meeting
                ~duration:params.Params.syn_duration
                ~opportunity_bytes:params.Params.syn_opportunity_bytes
        in
        let workload =
          Workload.generate rng ~trace
            ~pkts_per_hour_per_dest:(Params.syn_pair_rate_per_hour params load)
            ~size:params.Params.syn_packet_bytes
            ~lifetime:params.Params.syn_deadline ()
        in
        (Engine.run
           ~options:
             {
               Engine.buffer_bytes;
               meta_cap_frac = spec.meta_cap_frac;
               seed;
               faults;
             }
           ~protocol:(protocol.make ()) ~trace ~workload ())
          .Engine.report)
  in
  match cache_store () with
  | None -> compute ()
  | Some s -> (
      let skey =
        synthetic_store_key ~params ~cache_id:protocol.cache_id ~mobility
          ~load ~spec ~buffer_bytes ~faults
      in
      match store_find_point s skey with
      | Some pt -> pt
      | None ->
          let pt = compute () in
          Store.store s ~key:skey (point_to_json pt);
          pt)
