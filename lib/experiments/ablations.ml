open Rapid_sim
open Rapid_core

let load = 12.0

let variants =
  let base = Rapid.default_params Metric.Average_delay in
  [
    ("RAPID (defaults)", base);
    ("h = 1 (direct only)", { base with Rapid.h_hops = 1 });
    ("h = 2", { base with Rapid.h_hops = 2 });
    ("no acknowledgments", { base with Rapid.use_acks = false });
    ("meta cap 2%", { base with Rapid.meta_self_cap_frac = 0.02 });
    ("meta cap 20%", { base with Rapid.meta_self_cap_frac = 0.2 });
    ("local-only channel", { base with Rapid.channel = Control_channel.Local_only });
    ("instant global channel",
     { base with Rapid.channel = Control_channel.Instant_global });
  ]

let run (params : Params.t) =
  let buf = Stdlib.Buffer.create 1024 in
  Stdlib.Buffer.add_string buf
    (Printf.sprintf
       "== ABLATIONS: RAPID design knobs (trace, load %g pkts/hr/dest) ==\n"
       load);
  Stdlib.Buffer.add_string buf
    (Printf.sprintf "%-26s %10s %12s %11s %10s\n" "variant" "delivered"
       "avg (min)" "deadline%" "meta/data");
  let row label (point : Runners.point) =
    Stdlib.Buffer.add_string buf
      (Printf.sprintf "%-26s %9.1f%% %12.1f %10.1f%% %10.4f\n" label
         (100.0 *. Runners.mean_of point (fun r -> r.Metrics.delivery_rate))
         (Runners.mean_of point (fun r -> r.Metrics.avg_delay /. 60.0))
         (100.0
         *. Runners.mean_of point (fun r -> r.Metrics.within_deadline_rate))
         (Runners.mean_of point (fun r -> r.Metrics.metadata_frac_data)))
  in
  List.iter
    (fun (label, rapid_params) ->
      let spec = Runners.rapid_with ~label rapid_params in
      row label (Runners.run_trace_point ~params ~protocol:spec ~load ()))
    variants;
  (* The P2 contrast: single-copy forwarding with a full future oracle. *)
  let oracle_point =
    Rapid_par.Pool.init params.Params.days (fun day ->
        let trace = Runners.trace_day ~params ~day in
        let workload = Runners.trace_workload ~params ~trace ~load ~day in
        (Engine.run
           ~options:
             { Engine.default_options with
               buffer_bytes = params.Params.trace_buffer_bytes;
               seed = params.Params.base_seed + day }
           ~protocol:(Rapid_routing.Oracle_forwarding.make ~trace ())
           ~trace ~workload ())
          .Engine.report)
  in
  row "oracle fwd (P2, 1 copy)" oracle_point;
  Stdlib.Buffer.add_string buf
    "  note: h-insensitivity is expected at ~10 active nodes: a relay that\n\
    \  has met the destination directly always exists, so one-hop estimates\n\
    \  suffice; h>1 matters on sparser fleets (the paper's 19-40 buses).\n\
    \  The oracle forwarder holds complete future knowledge, which Theorem\n\
    \  1 shows is unattainable online; it is a bound, not a competitor.\n";
  Stdlib.Buffer.contents buf
