open Rapid_prelude
open Rapid_trace
open Rapid_sim
open Rapid_core

(* Jain index over the delays of one parallel batch (packets created
   exactly at the batch instant), following the paper's per-flow delay
   comparison: delivered packets' delays are compared; a batch with fewer
   than two deliveries contributes nothing. *)
let batch_index (report : Metrics.report) ~batch_time =
  let ds =
    Array.to_list report.Metrics.outcomes
    |> List.filter_map (fun (_, created, delivered_at) ->
           if created <> batch_time then None
           else Option.map (fun at -> at -. created) delivered_at)
    |> Array.of_list
  in
  if Array.length ds < 2 then None else Some (Stats.jain_index ds)

let fig15 (params : Params.t) =
  let batches = [ 20; 30 ] in
  let batch_fracs = [ 0.1; 0.2; 0.3; 0.4; 0.5 ] in
  let indices n =
    List.concat
      (Rapid_par.Pool.init params.Params.days (fun day ->
           let trace = Runners.trace_day ~params ~day in
           let rng = Rng.create ((params.Params.base_seed * 131) + day) in
           let ats =
             List.map (fun f -> trace.Trace.duration *. f) batch_fracs
           in
           let batches =
             List.concat_map
               (fun at ->
                 Workload.parallel_batch rng ~trace ~n ~at
                   ~size:params.Params.trace_packet_bytes ())
               ats
           in
           (* Heavy background load so the parallel flows contend (§6.2.5
              uses 60 packets per hour per node). *)
           let background =
             Runners.trace_workload ~params ~trace ~load:30.0 ~day
           in
           let workload =
             List.sort
               (fun (a : Workload.spec) b -> Float.compare a.created b.created)
               (batches @ background)
           in
           let report =
             (Engine.run
                ~options:
                  { Engine.default_options with seed = params.Params.base_seed + day }
                ~protocol:(Rapid.make_default Metric.Average_delay)
                ~trace ~workload ())
               .Engine.report
           in
           List.filter_map (fun at -> batch_index report ~batch_time:at) ats))
  in
  let lines =
    List.map
      (fun n ->
        let idx = Array.of_list (indices n) in
        {
          Series.label = Printf.sprintf "%d parallel" n;
          points = Stats.cdf_points idx;
        })
      batches
  in
  Series.make ~id:"fig15" ~title:"Trace: Jain fairness index CDF"
    ~x_label:"fairness index" ~y_label:"CDF over days" lines
