type line = { label : string; points : (float * float) list }

type t = {
  id : string;
  title : string;
  x_label : string;
  y_label : string;
  lines : line list;
  notes : string list;
}

let make ~id ~title ~x_label ~y_label ?(notes = []) lines =
  { id; title; x_label; y_label; lines; notes }

let xs t =
  List.concat_map (fun l -> List.map fst l.points) t.lines
  |> List.sort_uniq compare

let value_at line x =
  List.assoc_opt x line.points

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "== %s: %s ==\n" (String.uppercase_ascii t.id) t.title);
  let col_w =
    List.fold_left (fun acc l -> max acc (String.length l.label)) 10 t.lines + 2
  in
  let xw = max 10 (String.length t.x_label) + 2 in
  Buffer.add_string buf (Printf.sprintf "%-*s" xw t.x_label);
  List.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "%*s" col_w l.label))
    t.lines;
  Buffer.add_string buf (Printf.sprintf "   [%s]\n" t.y_label);
  List.iter
    (fun x ->
      Buffer.add_string buf (Printf.sprintf "%-*.3g" xw x);
      List.iter
        (fun l ->
          match value_at l x with
          | Some y -> Buffer.add_string buf (Printf.sprintf "%*.4g" col_w y)
          | None -> Buffer.add_string buf (Printf.sprintf "%*s" col_w "-"))
        t.lines;
      Buffer.add_char buf '\n')
    (xs t);
  List.iter
    (fun note -> Buffer.add_string buf (Printf.sprintf "  note: %s\n" note))
    t.notes;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (render t)

let to_json t =
  let open Rapid_obs in
  Json.Obj
    [
      ("id", Json.String t.id);
      ("title", Json.String t.title);
      ("x_label", Json.String t.x_label);
      ("y_label", Json.String t.y_label);
      ("lines",
       Json.List
         (List.map
            (fun l ->
              Json.Obj
                [
                  ("label", Json.String l.label);
                  ("points",
                   Json.List
                     (List.map
                        (fun (x, y) -> Json.List [ Json.Float x; Json.Float y ])
                        l.points));
                ])
            t.lines));
      ("notes", Json.List (List.map (fun n -> Json.String n) t.notes));
    ]

let find_line t label = List.find_opt (fun l -> l.label = label) t.lines

let crossover t ~a ~b =
  match (find_line t a, find_line t b) with
  | Some la, Some lb ->
      let rec scan = function
        | [] -> None
        | x :: rest -> (
            match (value_at la x, value_at lb x) with
            | Some ya, Some yb when ya > yb -> Some x
            | _ -> scan rest)
      in
      scan (xs t)
  | _ -> None

let ratio_at t ~a ~b ~x =
  match (find_line t a, find_line t b) with
  | Some la, Some lb -> (
      match (value_at la x, value_at lb x) with
      | Some ya, Some yb when yb <> 0.0 -> Some (ya /. yb)
      | _ -> None)
  | _ -> None
