(* Robustness under injected faults (not a paper figure, but the
   deployment the paper measures had all of them: bus reboots, contacts
   cut short, lost control traffic). One composite severity knob s maps
   to all four fault models at once — reboots/node = 4s over the day,
   truncation probability s, metadata-loss probability s, contact
   no-show probability s/2 — and we plot delivery rate as s grows. *)

open Rapid_sim
module Faults = Rapid_faults.Faults

let severities = [ 0.0; 0.05; 0.1; 0.2; 0.3 ]

let config_of_severity ~seed s =
  if s <= 0.0 then Faults.none
  else
    {
      Faults.seed;
      reboots_per_node = 4.0 *. s;
      truncate_prob = s;
      meta_drop_prob = s;
      contact_drop_prob = s /. 2.0;
    }

(* Mid-range load: queues are non-trivial but bandwidth is not yet the
   binding constraint, so the fault response is visible in deliveries.
   Shared with the fig4/fig5 sweeps so the s = 0 points hit the point
   cache. *)
let load = 12.0

let robustness params =
  let protocols = Runners.comparison_set Rapid_core.Metric.Average_delay in
  let seed = (params.Params.base_seed * 7) + 1 in
  let lines =
    List.map
      (fun (p : Runners.protocol_spec) ->
        let points =
          List.map
            (fun s ->
              let spec =
                {
                  Runners.default_spec with
                  Runners.faults = config_of_severity ~seed s;
                }
              in
              let point =
                Runners.run_trace_point ~params ~protocol:p ~load ~spec ()
              in
              (s, Runners.mean_of point (fun r -> r.Metrics.delivery_rate)))
            severities
        in
        { Series.label = p.Runners.label; points })
      protocols
  in
  Series.make ~id:"robustness"
    ~title:"Trace: delivery rate vs fault severity"
    ~x_label:"fault severity s" ~y_label:"fraction delivered"
    ~notes:
      [
        Printf.sprintf "load %g pkts/hr/dest; severity s = %s" load
          "{reboots/node 4s, truncate p=s, metadata loss p=s, no-show q=s/2}";
        Printf.sprintf "fault seed %d, mixed with per-day run seeds" seed;
      ]
    lines
