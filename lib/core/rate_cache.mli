(** Incremental cache for the Eq. 9 believed delivery rate.

    RAPID's utility scoring re-folds over every believed holder of every
    candidate packet on every contact. The fold's value depends only on
    (a) the packet's holder set in the observer's {!Replica_db} and
    (b) the meeting-matrix h-hop row of the packet's destination — both
    of which carry cheap monotone versions. This cache stamps each
    computed rate with that version pair and serves it back until either
    input moves.

    Contract (who bumps, who reads — DESIGN §3a): {!Replica_db.version}
    bumps on every holder-set write; {!Meeting_matrix.row_version} bumps
    when a lazy row rebuild actually changes a cell. {!find} compares
    both stamps; any mismatch is a miss and the caller re-folds and
    {!store}s. A reboot replaces a node's replica DB (restarting its
    version sequence), so the owner must {!drop_observer} that node. *)

type t

val create : num_nodes:int -> t

val find :
  t -> observer:int -> packet_id:int -> pkt_ver:int -> row_ver:int -> float
(** The cached rate when both stamps match, [nan] otherwise (a believed
    rate is a finite non-negative sum, never nan). Counts a hit or a miss
    when counters are registered. *)

val store :
  t ->
  observer:int ->
  packet_id:int ->
  pkt_ver:int ->
  row_ver:int ->
  rate:float ->
  unit

val drop_observer : t -> int -> unit
(** Invalidate every entry cached for this observer (reboot path). *)

val register_counters : unit -> unit
(** Create the [rapid.rate_cache_hits]/[rapid.rate_cache_misses] obs
    counters. Registration is lazy and opt-in: harnesses that snapshot
    counters into pinned, byte-compared artifacts (the CLI) never call
    this, so clean goldens stand; the bench calls it at startup so
    BENCH.json always carries both keys. *)
