open Rapid_prelude

type t = {
  n : int;
  gaps : Dense.Cumulative_grid.t;  (* upper triangle used *)
  last_meeting : Dense.Mat.t;  (* nan = never met *)
  (* Materialized direct estimate d1: mean gap, [infinity] for never-met
     pairs, 0 on the diagonal. Kept current cell-by-cell on [observe] so a
     row build never recomputes n² divisions. *)
  direct : Dense.Mat.t;
  mutable updates : int;
  (* Epoch counter: bumped whenever a direct mean changes. A memoized row
     whose [row_epoch] lags behind is stale; nothing is recomputed until
     that source is queried again. *)
  mutable epoch : int;
  rows : float array array;  (* rows.(a): ≤h-hop row from a; [||] = never built *)
  row_epoch : int array;
  row_h : int array;
  (* Content version of rows.(a): bumped by a rebuild only when some cell
     actually moved, so believed-rate caches stamped with it survive the
     (frequent) epoch bumps that leave this row's values untouched. *)
  row_ver : int array;
  scratch : Dense.Scratch.t;
}

let create ~num_nodes =
  let direct = Dense.Mat.create ~init:infinity num_nodes in
  for i = 0 to num_nodes - 1 do
    Dense.Mat.set direct i i 0.0
  done;
  {
    n = num_nodes;
    gaps = Dense.Cumulative_grid.create num_nodes;
    last_meeting = Dense.Mat.create ~init:nan num_nodes;
    direct;
    updates = 0;
    epoch = 0;
    rows = Array.make num_nodes [||];
    row_epoch = Array.make num_nodes (-1);
    row_h = Array.make num_nodes 0;
    row_ver = Array.make num_nodes 0;
    scratch = Dense.Scratch.create ();
  }

let key a b = if a < b then (a, b) else (b, a)

(* Row builds are the matrix's dominant cost (O(h·n²) each); counter and
   timer make the lazy cache's effectiveness visible in --json /
   BENCH.json output. *)
let c_row_builds = Rapid_obs.Counter.create "meeting_matrix.row_builds"
let t_row_build = Rapid_obs.Timer.create "meeting_matrix.row_build"

let observe t ~now ~a ~b =
  if a = b then invalid_arg "Meeting_matrix.observe: self-meeting";
  let x, y = key a b in
  let last = Dense.Mat.get t.last_meeting x y in
  let gap = if Float.is_nan last then now else now -. last in
  (* A zero gap (two meetings at the same instant) carries no information
     about the meeting process; the average must stay positive. No mean
     changed, so memoized rows stay valid — the epoch is left alone. *)
  if gap > 0.0 then begin
    Dense.Cumulative_grid.add t.gaps x y gap;
    let mean = Dense.Cumulative_grid.value_or t.gaps x y ~default:infinity in
    Dense.Mat.set t.direct x y mean;
    Dense.Mat.set t.direct y x mean;
    t.epoch <- t.epoch + 1
  end;
  Dense.Mat.set t.last_meeting x y now;
  t.updates <- t.updates + 1

let direct_mean t a b =
  if a = b then Some 0.0
  else begin
    let x, y = key a b in
    Dense.Cumulative_grid.value t.gaps x y
  end

(* Min-plus row relaxation from [a]: r_k(x) is the cheapest expected time
   between [a] and [x] using at most k hops; each pass appends one hop
   (r_{k+1}(x) = min(r_k(x), min_y r_k(y) + d1(y,x))). The former full
   O(h·n³) closure prepended hops instead — float addition is not
   associative, so the two parenthesize path sums differently. But d1 is
   symmetric and float addition commutes, so reversing each walk shows
   [build_row a].(x) is bit-for-bit the old [closure.(x).(a)]: this row
   is exactly the old closure's *column* of [a]. Queries therefore key
   the lazy row on their second argument and read it at the first. *)
let build_row t ~h a =
  Rapid_obs.Counter.incr c_row_builds;
  Rapid_obs.Timer.time t_row_build @@ fun () ->
  let n = t.n in
  let d = Dense.Mat.data t.direct in
  let cur, next = Dense.Scratch.rows t.scratch n in
  Array.blit d (a * n) cur 0 n;
  let cur = ref cur and next = ref next in
  for _ = 2 to h do
    Array.blit !cur 0 !next 0 n;
    let nx = !next in
    let cu = !cur in
    for y = 0 to n - 1 do
      let cy = Array.unsafe_get cu y in
      (* An unreachable relay can't improve anything: skip its d1 row. *)
      if Float.is_finite cy then begin
        let base = y * n in
        for b = 0 to n - 1 do
          let v = cy +. Array.unsafe_get d (base + b) in
          if v < Array.unsafe_get nx b then Array.unsafe_set nx b v
        done
      end
    done;
    let tmp = !cur in
    cur := !next;
    next := tmp
  done;
  let fresh = !cur in
  let row =
    if Array.length t.rows.(a) = n then begin
      (* Bump the content version only if some cell moved: a rebuild that
         reproduces the old values keeps every stamp derived from this
         row alive. Cells are means / min-plus sums of positive gaps (or
         [infinity], or 0 on the diagonal) — never nan, never -0. — so
         plain float equality is exact. *)
      let old = t.rows.(a) in
      let changed = ref false in
      let i = ref 0 in
      while (not !changed) && !i < n do
        if Array.unsafe_get old !i <> Array.unsafe_get fresh !i then
          changed := true;
        incr i
      done;
      if !changed then t.row_ver.(a) <- t.row_ver.(a) + 1;
      old
    end
    else begin
      let r = Array.make n 0.0 in
      t.rows.(a) <- r;
      t.row_ver.(a) <- t.row_ver.(a) + 1;
      r
    end
  in
  Array.blit fresh 0 row 0 n;
  t.row_epoch.(a) <- t.epoch;
  t.row_h.(a) <- h;
  row

let expected_meeting_time ?(h = 3) t a b =
  if a = b then 0.0
  else begin
    (* The row keyed on [b] holds the old closure's (·,b) column; in the
       protocol [b] is the packet destination, so one contact touches few
       distinct rows even when it scores many holders. *)
    let row =
      if t.row_epoch.(b) = t.epoch && t.row_h.(b) = h then t.rows.(b)
      else build_row t ~h b
    in
    row.(a)
  end

(* The up-to-date ≤h-hop row keyed on [b] (same lazy build a query
   triggers). Borrowed, not owned: valid only until the next [observe] —
   hot loops that score many holders against one destination read it
   directly instead of re-validating per [expected_meeting_time] call. *)
let row ?(h = 3) t b =
  if t.row_epoch.(b) = t.epoch && t.row_h.(b) = h then t.rows.(b)
  else build_row t ~h b

(* Bring the row up to date exactly as a query would (same lazy build,
   same counters), then report its content version. Callers stamping a
   cached value with this must only call it when a query for the row is
   about to happen anyway, so the build accounting stays identical to the
   uncached walk. *)
let row_version ?(h = 3) t a =
  if not (t.row_epoch.(a) = t.epoch && t.row_h.(a) = h) then
    ignore (build_row t ~h a);
  t.row_ver.(a)

let updates_count t = t.updates

let global_mean t =
  let w = Stats.Welford.create () in
  for a = 0 to t.n - 1 do
    for b = a + 1 to t.n - 1 do
      match Dense.Cumulative_grid.value t.gaps a b with
      | Some v -> Stats.Welford.add w v
      | None -> ()
    done
  done;
  if Stats.Welford.count w = 0 then None else Some (Stats.Welford.mean w)
