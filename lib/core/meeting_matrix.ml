open Rapid_prelude

type t = {
  n : int;
  gaps : Moving_average.Cumulative.t array array;  (* upper triangle used *)
  last_meeting : float array array;
  mutable updates : int;
  mutable closure : float array array option;  (* cached h-hop estimate *)
  mutable closure_h : int;
}

let create ~num_nodes =
  {
    n = num_nodes;
    gaps =
      Array.init num_nodes (fun _ ->
          Array.init num_nodes (fun _ -> Moving_average.Cumulative.create ()));
    last_meeting = Array.init num_nodes (fun _ -> Array.make num_nodes nan);
    updates = 0;
    closure = None;
    closure_h = 0;
  }

let key a b = if a < b then (a, b) else (b, a)

(* Closure rebuilds are the matrix's dominant cost (O(h·n³)); the counter
   makes cache effectiveness visible in --json / BENCH.json output. *)
let c_closure_rebuilds = Rapid_obs.Counter.create "meeting_matrix.closure_rebuilds"

let observe t ~now ~a ~b =
  if a = b then invalid_arg "Meeting_matrix.observe: self-meeting";
  let x, y = key a b in
  let last = t.last_meeting.(x).(y) in
  let gap = if Float.is_nan last then now else now -. last in
  (* A zero gap (two meetings at the same instant) carries no information
     about the meeting process; the average must stay positive. *)
  if gap > 0.0 then Moving_average.Cumulative.add t.gaps.(x).(y) gap;
  t.last_meeting.(x).(y) <- now;
  t.updates <- t.updates + 1;
  t.closure <- None

let direct_mean t a b =
  if a = b then Some 0.0
  else begin
    let x, y = key a b in
    Moving_average.Cumulative.value t.gaps.(x).(y)
  end

let compute_closure t ~h =
  let n = t.n in
  let d1 =
    Array.init n (fun a ->
        Array.init n (fun b ->
            if a = b then 0.0
            else match direct_mean t a b with Some v -> v | None -> infinity))
  in
  (* dk.(a).(b): cheapest expected time using at most k hops. *)
  let extend prev =
    Array.init n (fun a ->
        Array.init n (fun b ->
            if a = b then 0.0
            else begin
              let best = ref prev.(a).(b) in
              for y = 0 to n - 1 do
                if y <> a && y <> b then begin
                  let via = d1.(a).(y) +. prev.(y).(b) in
                  if via < !best then best := via
                end
              done;
              !best
            end))
  in
  let rec go acc k = if k >= h then acc else go (extend acc) (k + 1) in
  go d1 1

let expected_meeting_time ?(h = 3) t a b =
  if a = b then 0.0
  else begin
    let closure =
      match t.closure with
      | Some c when t.closure_h = h -> c
      | Some _ | None ->
          Rapid_obs.Counter.incr c_closure_rebuilds;
          let c = compute_closure t ~h in
          t.closure <- Some c;
          t.closure_h <- h;
          c
    in
    closure.(a).(b)
  end

let updates_count t = t.updates

let global_mean t =
  let w = Stats.Welford.create () in
  for a = 0 to t.n - 1 do
    for b = a + 1 to t.n - 1 do
      match Moving_average.Cumulative.value t.gaps.(a).(b) with
      | Some v -> Stats.Welford.add w v
      | None -> ()
    done
  done;
  if Stats.Welford.count w = 0 then None else Some (Stats.Welford.mean w)
