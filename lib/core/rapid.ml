open Rapid_prelude
open Rapid_sim

type params = {
  metric : Metric.t;
  channel : Control_channel.t;
  use_acks : bool;
  ack_entry_bytes : int;
  table_entry_bytes : int;
  packet_entry_bytes : int;
  h_hops : int;
  meta_self_cap_frac : float;
  tracer : Rapid_obs.Tracer.t;
}

let default_params metric =
  {
    metric;
    channel = Control_channel.In_band;
    use_acks = true;
    ack_entry_bytes = 8;
    table_entry_bytes = 12;
    packet_entry_bytes = 20;
    h_hops = 3;
    meta_self_cap_frac = 0.08;
    tracer = Rapid_obs.Tracer.null;
  }

(* Stand-in for an infinite expected delay when ordering improvements:
   replicating a packet nobody can currently deliver dominates any finite
   improvement. *)
let big_delay = 1e15

(* Hot-path counters (process-global by name; see lib/obs). Snapshots land
   in the CLI's --json output and in BENCH.json. *)
let c_rank_calls = Rapid_obs.Counter.create "rapid.rank_calls"
let t_rank = Rapid_obs.Timer.create "rapid.rank"
let c_position_index_builds = Rapid_obs.Counter.create "rapid.position_index_builds"
let c_meta_ack_bytes = Rapid_obs.Counter.create "rapid.meta_ack_bytes"
let c_meta_table_bytes = Rapid_obs.Counter.create "rapid.meta_table_bytes"
let c_meta_entry_bytes = Rapid_obs.Counter.create "rapid.meta_entry_bytes"

(* Cached victim ordering for storage adaptation: within one eviction
   burst (same decision instant, same node) the engine asks for victims
   one at a time; the per-byte local-loss scores of the survivors do not
   change between those calls (only the dropped packet's own holder entry
   is removed), so the whole ordering is computed once and served from a
   cursor. Any event that can move a score or the candidate set
   (contact, transfer, packet creation, reboot) invalidates the plan. *)
type victim_plan = {
  mutable v_valid : bool;
  mutable v_node : int;
  mutable v_now : float;
  mutable v_own : bool;  (* plan may offer the node's own packets *)
  mutable v_packets : Packet.t array;
  mutable v_len : int;
  mutable v_cursor : int;
}

(* One destination cell of a node's position index: that destination's
   buffered packets as (created, id, size) triples sorted in delivery
   order, plus byte prefix sums, stamped with the (node, dst) cell
   version they were built from. *)
type pos_cell = {
  pc_ver : int;
  pc_arr : (float * int * int) array;
  pc_prefix : int array;
}

(* A node's persistent position index. [pi_epoch] is the buffer epoch the
   cells describe (-1 = never synced); a sync at a newer epoch re-sorts
   only the destination cells whose (node, dst) version moved and keeps
   every other cell untouched — the kept cells are bit-identical to what
   a from-scratch rebuild would produce, because an unmoved version pins
   the cell's entry set. [pi_refresh_epoch] mirrors the epoch the
   pre-incremental refresh-level cache recorded at its last miss; it
   exists only so the build counter keeps its old values (see
   [sync_index]). *)
type pos_index = {
  mutable pi_epoch : int;
  mutable pi_refresh_epoch : int;
  pi_cells : (int, pos_cell) Hashtbl.t;  (* dst -> cell *)
}

let make params : Protocol.packed =
  (module struct
    type t = {
      env : Env.t;
      queue : Send_queue.t;
      acks : Protocol.Ack_store.t;
      matrix : Meeting_matrix.t;
      (* Expected transfer-opportunity bytes per pair and globally
         (Algorithm 2 step 3). *)
      pair_transfer : Dense.Cumulative_grid.t;
      global_transfer : Moving_average.Cumulative.t;
      (* Per-node believed replica locations; [truth] is ground truth,
         maintained from first-hand events, read only by the
         instant-global channel. *)
      dbs : Replica_db.t array;
      truth : Replica_db.t;
      last_meta_exchange : Dense.Mat.t;
      (* meet_count.(x): meetings x has participated in; last_table_sync
         tracks the counter at the last exchange with each peer, pricing
         the "expected meeting times with nodes" row delta (§4.2). *)
      meet_count : int array;
      last_table_sync : Dense.Int_mat.t;
      (* Per directed pair, the (packet id, holder id) delta entries a
         budget cut left unsent; re-offered (re-materialized from the
         current db) at the next exchange with that peer. *)
      meta_backlog : (int * int, (int * int, unit) Hashtbl.t) Hashtbl.t;
      (* Per-contact cache of buffer position indexes (cleared each
         contact): transfers would otherwise rescan the receiver's buffer
         per packet. Entries go slightly stale within a contact; the next
         contact's refresh corrects them. Values carry the contact_seq
         they were built under, asserted on every lookup. *)
      contact_indexes : (int, int * pos_index) Hashtbl.t;
      (* node -> its incrementally-synced position index. The index is a
         pure function of buffer contents; a sync re-sorts only the
         destination cells whose (node, dst) cell version moved since
         they were built and reuses every other cell bit-identically. *)
      pos_cache : (int, pos_index) Hashtbl.t;
      victim : victim_plan;
      (* Believed-rate cache (Eq. 9): rates stamped with
         (Replica_db.version, Meeting_matrix.row_version) and reused
         until either input moves. See Rate_cache / DESIGN §3a. *)
      rcache : Rate_cache.t;
      (* Contact sequence number; stamps contact_indexes entries so
         cached_index can assert it never serves across contacts. *)
      mutable contact_seq : int;
      (* Per (node, dst) buffer-cell version: bumped whenever a copy
         destined to [dst] is added to or removed from [node]'s buffer.
         [refresh_own] skips a whole destination cell when neither its
         version nor the pair's transfer-sample count moved — every
         n_meet estimate (and hence every hysteresis verdict) of the
         previous refresh still stands. *)
      cell_ver : Dense.Int_mat.t;
      (* node -> (cell versions, pair counts) seen at its last refresh. *)
      refresh_memo : (int, int array * int array) Hashtbl.t;
      (* Scratch: (packet id, new n_meet) pairs a refresh must write. *)
      refresh_changed : (int * int) Sortbuf.t;
      (* own_n.(node).(packet id): mirror of the n_meet recorded in
         dbs.(node) for holder [node] itself (-1 = no entry), kept in
         lockstep with every write path. Turns the per-entry hysteresis
         lookup of [refresh_own] into an array load. Only consulted for
         packets currently buffered at [node] — the one case gossip can
         insert an own-holder entry behind its back (a merge for a
         non-buffered packet) is never read. *)
      mutable own_n : int array array;
      (* Reused per-call scratch (reset, never re-created): the
         position-index accumulation arena, the metadata-delta dedup set
         (indexed by packet id * num_nodes + holder id, generation-stamped
         so "clearing" is one counter bump), and the delta sort buffer. *)
      scratch_by_dst : (int, (float * int * int) list ref) Hashtbl.t;
      mutable delta_seen : int array;
      mutable delta_gen : int;
      delta_buf : Replica_db.entry Sortbuf.t;
      (* Flat per-plan scoring scratch: candidate packets and their
         ranking key in parallel growable arrays, ranked by sorting an
         index permutation through the shared Sortbuf arena — no boxed
         (packet, float, float) tuples, no per-plan list churn. *)
      mutable plan_pkts : Packet.t array;
      mutable plan_key : float array;
      mutable plan_len : int;
      plan_order : int Sortbuf.t;
      (* Per-plan memo of the (receiver, dst)-constant sub-expressions of
         Estimate_delay — meeting_time receiver dst and the clamped B_j —
         hoisted out of the candidate loop. Keyed by dst; a generation
         stamp (bumped per plan) replaces clearing. *)
      mt_memo : float array;
      avg_memo : float array;
      memo_stamp : int array;
      mutable memo_gen : int;
    }

    let name =
      Printf.sprintf "RAPID(%s%s%s)"
        (Metric.to_string params.metric)
        (match params.channel with
        | Control_channel.In_band -> ""
        | c -> "," ^ Control_channel.to_string c)
        (if params.use_acks then "" else ",no-acks")

    let create env =
      let n = env.Env.num_nodes in
      {
        env;
        queue = Send_queue.create ();
        acks = Protocol.Ack_store.create ~num_nodes:n;
        matrix = Meeting_matrix.create ~num_nodes:n;
        pair_transfer = Dense.Cumulative_grid.create n;
        global_transfer = Moving_average.Cumulative.create ();
        dbs = Array.init n (fun _ -> Replica_db.create ());
        truth = Replica_db.create ();
        last_meta_exchange = Dense.Mat.create ~init:neg_infinity n;
        meet_count = Array.make n 0;
        last_table_sync = Dense.Int_mat.create n;
        meta_backlog = Hashtbl.create 16;
        contact_indexes = Hashtbl.create 4;
        pos_cache = Hashtbl.create 16;
        victim =
          {
            v_valid = false;
            v_node = -1;
            v_now = nan;
            v_own = false;
            v_packets = [||];
            v_len = 0;
            v_cursor = 0;
          };
        rcache = Rate_cache.create ~num_nodes:n;
        contact_seq = 0;
        cell_ver = Dense.Int_mat.create n;
        refresh_memo = Hashtbl.create 16;
        refresh_changed = Sortbuf.create ();
        own_n = Array.init n (fun _ -> [||]);
        scratch_by_dst = Hashtbl.create 16;
        delta_seen = [||];
        delta_gen = 0;
        delta_buf = Sortbuf.create ();
        plan_pkts = [||];
        plan_key = [||];
        plan_len = 0;
        plan_order = Sortbuf.create ();
        mt_memo = Array.make n 0.0;
        avg_memo = Array.make n 0.0;
        memo_stamp = Array.make n 0;
        memo_gen = 0;
      }

    (* -------------------------------------------------------------- *)
    (* Estimation helpers *)

    let own_get t node id =
      let row = t.own_n.(node) in
      if id < Array.length row then row.(id) else -1

    let own_set t node id n =
      let row = t.own_n.(node) in
      let row =
        if id < Array.length row then row
        else begin
          let g = Array.make (max 256 (2 * (id + 1))) (-1) in
          Array.blit row 0 g 0 (Array.length row);
          t.own_n.(node) <- g;
          g
        end
      in
      row.(id) <- n

    let bump_cell t node dst =
      Dense.Int_mat.set t.cell_ver node dst
        (Dense.Int_mat.get t.cell_ver node dst + 1)

    let view t node =
      match params.channel with
      | Control_channel.Instant_global -> t.truth
      | Control_channel.In_band | Control_channel.Local_only -> t.dbs.(node)

    (* B_j: expected transfer opportunity between [holder] and [dst]. *)
    let b_avg t ~holder ~dst =
      let x, y = if holder < dst then (holder, dst) else (dst, holder) in
      match Dense.Cumulative_grid.value t.pair_transfer x y with
      | Some v -> v
      | None ->
          Moving_average.Cumulative.value_or t.global_transfer ~default:1e6

    (* "When two nodes never meet, even via three intermediate nodes, we
       set the expected inter-meeting time to infinity" (§4.1.2): an
       infinite estimate yields a zero delivery rate and hence zero
       marginal utility, so RAPID does not replicate toward destinations
       it has no evidence of reaching. *)
    let meeting_time t a b =
      Meeting_matrix.expected_meeting_time ~h:params.h_hops t.matrix a b

    (* n_j(i) for a freshly created packet, O(1): only the bytes of
       same-destination packets ahead in delivery order (created, then id)
       matter, and a just-created packet is strictly last in its cell —
       the engine hands out ids in workload order and both workload
       generators emit specs sorted by creation time, so every other copy
       anywhere carries a smaller (created, id). The per-destination byte
       total the buffer maintains is therefore exactly "bytes ahead plus
       the packet itself" once the packet's own copy is counted once. *)
    let n_meet_created t ~node ~(packet : Packet.t) =
      let dst = packet.Packet.dst in
      let buffer = t.env.Env.buffers.(node) in
      let bytes =
        Buffer.dst_bytes buffer dst
        + (if Buffer.mem buffer packet.Packet.id then 0 else packet.Packet.size)
      in
      let avg = Float.max 1.0 (b_avg t ~holder:node ~dst) in
      max 1 (int_of_float (Float.ceil (float_of_int bytes /. avg)))

    (* Total delivery rate R over the believed holders of [packet] as seen
       by [observer] (Eq. 9 summation), cached per (observer, packet).
       The fold's value is a pure function of the packet's holder set in
       the observer's view and of the h-hop row keyed on the destination;
       both carry versions, so the cached value is reused until one of
       them moves. With no holders the fold touches neither the matrix
       nor the cache — the 0.0 short-circuit keeps row-build accounting
       identical to the plain walk. On a hit the holder table is
       untouched since the stamp was taken, so a re-fold would visit the
       same holders in the same order over the same row: the cached float
       is bit-identical to the recomputation it replaces. *)
    let believed_rate t ~observer ~(packet : Packet.t) =
      let db = view t observer in
      let id = packet.Packet.id in
      if Replica_db.holder_count db ~packet_id:id = 0 then 0.0
      else begin
        let dst = packet.Packet.dst in
        let pkt_ver = Replica_db.version db ~packet_id:id in
        let row_ver = Meeting_matrix.row_version ~h:params.h_hops t.matrix dst in
        let cached =
          Rate_cache.find t.rcache ~observer ~packet_id:id ~pkt_ver ~row_ver
        in
        if not (Float.is_nan cached) then cached
        else begin
          (* Fold over the borrowed row directly: [row.(holder)] is the
             exact cell [meeting_time t holder dst] reads (0.0 on the
             diagonal), minus the per-holder revalidation. The row cannot
             move mid-fold — nothing in it observes the matrix. *)
          let row = Meeting_matrix.row ~h:params.h_hops t.matrix dst in
          let r =
            Replica_db.fold_holders db ~packet_id:id ~init:0.0
              ~f:(fun acc holder_id (h : Replica_db.holder) ->
                let mt =
                  if holder_id = dst then 0.0
                  else Array.unsafe_get row holder_id
                in
                acc
                +. Estimate_delay.rate_of_holder ~meeting_time:mt
                     ~n_meet:h.Replica_db.n_meet)
          in
          Rate_cache.store t.rcache ~observer ~packet_id:id ~pkt_ver ~row_ver
            ~rate:r;
          r
        end
      end

    (* Delivery order within a destination cell: (created, id, size)
       triples, id unique — a total order, so any comparison sort yields
       the same sequence. Monomorphic on purpose: polymorphic [compare]
       on boxed tuples costs a C call per comparison in the hot sorts. *)
    let cmp_cell (c1, i1, s1) (c2, i2, s2) =
      match Float.compare c1 c2 with
      | 0 -> ( match Int.compare i1 i2 with 0 -> Int.compare s1 s2 | n -> n)
      | n -> n

    (* Per-destination index over a node's buffer: entries sorted in
       delivery order (created, then id) with byte prefix sums, so the
       would-be queue position of any packet is a binary search instead of
       a buffer scan per candidate. The index is persistent and synced
       incrementally: when the buffer epoch moved, one walk collects the
       entries of destinations whose cell version changed (into the
       reused [t.scratch_by_dst] arena), only those cells are re-sorted,
       and cells whose version moved but have no surviving entries are
       dropped. Unchanged-version cells are reused as-is.

       Counter discipline: [c_position_index_builds] lands in hashed
       report JSON, so it must keep the values of the from-scratch build
       it replaces. That build was counted at two miss sites — the
       refresh-level epoch cache (whose recorded epoch only refresh_own
       advanced) and the per-contact cache's fallback through it — so the
       increments live at those call sites (keyed on [pi_refresh_epoch]),
       not here: a sync is the build made cheap, not a new countable
       event. *)
    let sync_index t node =
      let pi =
        match Hashtbl.find_opt t.pos_cache node with
        | Some pi -> pi
        | None ->
            let pi =
              { pi_epoch = -1; pi_refresh_epoch = -1;
                pi_cells = Hashtbl.create 16 }
            in
            Hashtbl.replace t.pos_cache node pi;
            pi
      in
      let ep = Buffer.epoch t.env.Env.buffers.(node) in
      if pi.pi_epoch <> ep then begin
        let by_dst = t.scratch_by_dst in
        Hashtbl.reset by_dst;
        List.iter
          (fun (e : Buffer.entry) ->
            let p = e.packet in
            let dst = p.Packet.dst in
            let stale =
              match Hashtbl.find_opt pi.pi_cells dst with
              | Some c -> c.pc_ver <> Dense.Int_mat.get t.cell_ver node dst
              | None -> true
            in
            if stale then begin
              let cell =
                match Hashtbl.find_opt by_dst dst with
                | Some c -> c
                | None ->
                    let c = ref [] in
                    Hashtbl.replace by_dst dst c;
                    c
              in
              cell := (p.Packet.created, p.Packet.id, p.Packet.size) :: !cell
            end)
          (Env.buffered_entries t.env node);
        (* A cell whose version moved but collected nothing lost its last
           entry (drop / delivery / ack purge): remove it, as a rebuild
           would. Unmoved versions are untouchable — every buffer
           mutation bumps its (node, dst) cell. *)
        let dead = ref [] in
        Hashtbl.iter
          (fun dst (c : pos_cell) ->
            if
              c.pc_ver <> Dense.Int_mat.get t.cell_ver node dst
              && not (Hashtbl.mem by_dst dst)
            then dead := dst :: !dead)
          pi.pi_cells;
        List.iter (Hashtbl.remove pi.pi_cells) !dead;
        Hashtbl.iter
          (fun dst cell ->
            let arr = Array.of_list !cell in
            Array.sort cmp_cell arr;
            let prefix = Array.make (Array.length arr + 1) 0 in
            Array.iteri
              (fun i (_, _, size) -> prefix.(i + 1) <- prefix.(i) + size)
              arr;
            Hashtbl.replace pi.pi_cells dst
              { pc_ver = Dense.Int_mat.get t.cell_ver node dst;
                pc_arr = arr; pc_prefix = prefix })
          by_dst;
        pi.pi_epoch <- ep
      end;
      pi

    (* Bytes queued ahead of [packet] (strictly earlier in delivery order,
       excluding the packet itself) at the node the index describes. *)
    let bytes_before (index : pos_index) (packet : Packet.t) =
      match Hashtbl.find_opt index.pi_cells packet.Packet.dst with
      | None -> 0
      | Some c ->
          let arr = c.pc_arr in
          let key = (packet.Packet.created, packet.Packet.id, min_int) in
          let lo = ref 0 and hi = ref (Array.length arr) in
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            if cmp_cell arr.(mid) key < 0 then lo := mid + 1 else hi := mid
          done;
          c.pc_prefix.(!lo)

    let n_meet_from_index t ~node index (packet : Packet.t) =
      let b = bytes_before index packet in
      let avg =
        Float.max 1.0 (b_avg t ~holder:node ~dst:packet.Packet.dst)
      in
      max 1
        (int_of_float
           (Float.ceil (float_of_int (b + packet.Packet.size) /. avg)))

    let delay_improvement ~r ~r_recv =
      let a = Estimate_delay.expected_delay ~rate:r in
      let a' = Estimate_delay.expected_delay ~rate:(r +. r_recv) in
      if not (Float.is_finite a') then 0.0
      else if not (Float.is_finite a) then big_delay -. a'
      else a -. a'

    let on_created t ~now (p : Packet.t) =
      t.victim.v_valid <- false;
      bump_cell t p.Packet.src p.Packet.dst;
      let n = n_meet_created t ~node:p.Packet.src ~packet:p in
      own_set t p.Packet.src p.Packet.id n;
      Replica_db.set_holder t.truth ~packet:p ~holder_id:p.Packet.src ~n_meet:n
        ~now;
      Replica_db.set_holder t.dbs.(p.Packet.src) ~packet:p
        ~holder_id:p.Packet.src ~n_meet:n ~now

    (* -------------------------------------------------------------- *)
    (* Selection: one send-queue plan per direction *)

    let by_age (x : Buffer.entry) (y : Buffer.entry) =
      match Float.compare x.packet.Packet.created y.packet.Packet.created with
      | 0 -> Int.compare x.packet.Packet.id y.packet.Packet.id
      | n -> n

    (* Direct-delivery segment of a plan; every comparator is a total
       order (id tie-breaks) because the scratch sort is not stable. *)
    let push_direct t ~now entries =
      match params.metric with
      | Metric.Average_delay | Metric.Maximum_delay ->
          Send_queue.push_entries t.queue ~cmp:by_age entries
      | Metric.Missed_deadlines ->
          (* Alive packets by nearest deadline, then the expired ones. *)
          let alive, dead =
            List.partition
              (fun (e : Buffer.entry) ->
                not (Packet.missed_deadline e.packet ~now))
              entries
          in
          let by_deadline (x : Buffer.entry) (y : Buffer.entry) =
            match (x.packet.Packet.deadline, y.packet.Packet.deadline) with
            | Some dx, Some dy -> (
                match Float.compare dx dy with 0 -> by_age x y | n -> n)
            | Some _, None -> -1
            | None, Some _ -> 1
            | None, None -> by_age x y
          in
          Send_queue.push_entries t.queue ~cmp:by_deadline alive;
          Send_queue.push_entries t.queue ~cmp:by_age dead

    let cached_index t node =
      match Hashtbl.find_opt t.contact_indexes node with
      | Some (seq, idx) ->
          (* Entries go slightly stale within a contact (receiver-side
             buffer mutations), which is sound only because on_contact
             resets the table: a served index must come from THIS
             contact. A refactor that decouples the reset from the cache
             trips this instead of silently serving stale positions. *)
          assert (seq = t.contact_seq);
          idx
      | None ->
          let idx = sync_index t node in
          (* Count a build iff the refresh-level cache would have missed
             (its epoch record is only advanced by refresh_own, matching
             the cache this discipline replaces). *)
          if idx.pi_refresh_epoch <> Buffer.epoch t.env.Env.buffers.(node)
          then Rapid_obs.Counter.incr c_position_index_builds;
          Hashtbl.replace t.contact_indexes node (t.contact_seq, idx);
          idx

    let plan_push t p key =
      let cap = Array.length t.plan_key in
      if t.plan_len = cap then begin
        let n = max 64 (2 * cap) in
        let pk = Array.make n p in
        Array.blit t.plan_pkts 0 pk 0 t.plan_len;
        t.plan_pkts <- pk;
        let kk = Array.make n 0.0 in
        Array.blit t.plan_key 0 kk 0 t.plan_len;
        t.plan_key <- kk
      end;
      t.plan_pkts.(t.plan_len) <- p;
      t.plan_key.(t.plan_len) <- key;
      t.plan_len <- t.plan_len + 1

    let plan t ~now ~sender ~receiver =
      Rapid_obs.Counter.incr c_rank_calls;
      Rapid_obs.Timer.time t_rank @@ fun () ->
      Send_queue.begin_plan t.queue t.env ~sender ~receiver;
      let recv_index = cached_index t receiver in
      t.memo_gen <- t.memo_gen + 1;
      t.plan_len <- 0;
      (* One walk over the sender's buffer snapshot — no materialized
         candidate / direct / rest lists. Sound because every downstream
         order is a total-order sort (id tie-breaks everywhere), so the
         walk order never shows in the output. Direct-to-receiver packets
         are collected aside (few); every other candidate the receiver
         lacks is scored straight into the flat arrays: one slot per
         shippable candidate, keyed by marginal utility per byte (metrics
         1/3') or expected delay D(i) (metric 2) — the only value the
         ranking below reads. Both orders are "key descending, id
         ascending", so one comparator serves every metric. *)
      let direct =
        List.fold_left
          (fun direct (e : Buffer.entry) ->
            let p = e.packet in
            if Env.has_packet t.env ~node:receiver ~packet:p then direct
            else if p.Packet.dst = receiver then e :: direct
            else begin
              let dst = p.Packet.dst in
              (* (receiver, dst)-constant sub-expressions of the score —
                 the receiver's expected meeting time with the destination
                 and its clamped expected transfer size — memoized per
                 plan: they cannot move while the plan is built. *)
              if t.memo_stamp.(dst) <> t.memo_gen then begin
                t.mt_memo.(dst) <- meeting_time t receiver dst;
                t.avg_memo.(dst) <-
                  Float.max 1.0 (b_avg t ~holder:receiver ~dst);
                t.memo_stamp.(dst) <- t.memo_gen
              end;
              let mt_rd = t.mt_memo.(dst) and avg_rd = t.avg_memo.(dst) in
              (* Current believed rate and the rate the receiver would
                 add, from the sender's knowledge (the deciding node is
                 the sender, §3.4). The receiver is not currently a
                 holder (checked above), so any stale holder entry for it
                 is excluded from the baseline — otherwise its rate would
                 be counted twice. *)
              let r0 = believed_rate t ~observer:sender ~packet:p in
              let r =
                match
                  Replica_db.find_holder (view t sender)
                    ~packet_id:p.Packet.id ~holder_id:receiver
                with
                | Some stale ->
                    Float.max 0.0
                      (r0
                      -. Estimate_delay.rate_of_holder ~meeting_time:mt_rd
                           ~n_meet:stale.Replica_db.n_meet)
                | None -> r0
              in
              let b = bytes_before recv_index p in
              let n_recv =
                max 1
                  (int_of_float
                     (Float.ceil
                        (float_of_int (b + p.Packet.size) /. avg_rd)))
              in
              let r_recv =
                Estimate_delay.rate_of_holder ~meeting_time:mt_rd
                  ~n_meet:n_recv
              in
              if r_recv > 0.0 then begin
                let delta =
                  match params.metric with
                  | Metric.Average_delay | Metric.Maximum_delay ->
                      delay_improvement ~r ~r_recv
                  | Metric.Missed_deadlines -> (
                      match Packet.remaining_lifetime p ~now with
                      | None -> delay_improvement ~r ~r_recv
                      | Some rem ->
                          Estimate_delay.delivery_prob_within
                            ~rate:(r +. r_recv) ~horizon:rem
                          -. Estimate_delay.delivery_prob_within ~rate:r
                               ~horizon:rem)
                in
                if delta > 0.0 then begin
                  let key =
                    match params.metric with
                    | Metric.Average_delay | Metric.Missed_deadlines ->
                        delta /. float_of_int p.Packet.size
                    | Metric.Maximum_delay ->
                        (* Work conservation: serve highest expected delay
                           D(i) first; replication only changes the served
                           packet's own D(i), so a static descending order
                           is equivalent within one contact. *)
                        let a = Estimate_delay.expected_delay ~rate:r in
                        Packet.age p ~now +. Float.min a big_delay
                  in
                  plan_push t p key
                end
              end;
              direct
            end)
          []
          (Env.buffered_entries t.env sender)
      in
      push_direct t ~now direct;
      (* Rank an index permutation through the shared arena; key and id
         make the order total, so the (unstable) heapsort reproduces the
         stable sort it replaces byte for byte. *)
      let order = t.plan_order in
      Sortbuf.clear order;
      for i = 0 to t.plan_len - 1 do
        Sortbuf.push order i
      done;
      let key = t.plan_key and pkts = t.plan_pkts in
      Sortbuf.sort order ~cmp:(fun i j ->
          match Float.compare key.(j) key.(i) with
          | 0 -> Int.compare pkts.(i).Packet.id pkts.(j).Packet.id
          | n -> n);
      Sortbuf.iteri order (fun _ i -> Send_queue.push t.queue pkts.(i));
      Send_queue.finish_plan t.queue

    (* -------------------------------------------------------------- *)
    (* Control channel *)

    let refresh_own t ~now node =
      (* Re-estimate n_meet for every buffered packet, but only mark an
         entry changed when the estimate moved — "the node only sends
         information about packets whose information changed since the
         last exchange" (§4.2). Work is per destination cell of the
         position index: a cell whose contents (cell version) and B_j
         inputs (pair sample count) are untouched since the last refresh
         reproduces the exact n_meet of that refresh for every entry, so
         its hysteresis verdicts stand and the whole cell is skipped. *)
      (* Unconditional snapshot fetch, as before the incremental index:
         keeps the lazy snapshot-rebuild accounting (buffer.rebuilds)
         identical run for run. *)
      ignore (Env.buffered_entries t.env node : Buffer.entry list);
      let ep = Buffer.epoch t.env.Env.buffers.(node) in
      let index = sync_index t node in
      if index.pi_refresh_epoch <> ep then begin
        Rapid_obs.Counter.incr c_position_index_builds;
        index.pi_refresh_epoch <- ep
      end;
      let vers, counts =
        match Hashtbl.find_opt t.refresh_memo node with
        | Some memo -> memo
        | None ->
            let n = t.env.Env.num_nodes in
            let memo = (Array.make n (-1), Array.make n (-1)) in
            Hashtbl.replace t.refresh_memo node memo;
            memo
      in
      let db = t.dbs.(node) in
      let changed = t.refresh_changed in
      Sortbuf.clear changed;
      Hashtbl.iter
        (fun dst (c : pos_cell) ->
          let arr = c.pc_arr and prefix = c.pc_prefix in
          let ver = Dense.Int_mat.get t.cell_ver node dst in
          let x, y = if node < dst then (node, dst) else (dst, node) in
          let cnt = Dense.Cumulative_grid.count t.pair_transfer x y in
          (* A zero pair count falls back to the global transfer average,
             which moves every contact — never skippable. *)
          if not (cnt > 0 && vers.(dst) = ver && counts.(dst) = cnt) then begin
            vers.(dst) <- ver;
            counts.(dst) <- cnt;
            let avg = Float.max 1.0 (b_avg t ~holder:node ~dst) in
            Array.iteri
              (fun i (_, id, size) ->
                (* [prefix.(i)] is exactly the bytes strictly ahead of
                   this entry in delivery order. *)
                let n =
                  max 1
                    (int_of_float
                       (Float.ceil (float_of_int (prefix.(i) + size) /. avg)))
                in
                (* Hysteresis: deep-queue jitter (17 <-> 18 meetings)
                   barely moves the estimate but would flood the channel;
                   small n changes matter and are always shipped. *)
                let old = own_get t node id in
                let unchanged =
                  old >= 0 && (old = n || (old > 3 && abs (old - n) < 2))
                in
                if not unchanged then Sortbuf.push changed (id, n))
              arr
          end)
        index.pi_cells;
      (* Apply in ascending packet id — the order of the buffer-entry
         walk this replaces — so the update log (and every ordering
         derived from it downstream) is byte-identical. *)
      Sortbuf.sort changed ~cmp:(fun (a, _) (b, _) -> Int.compare a b);
      Sortbuf.iteri changed (fun _ (id, n) ->
          let p =
            match Buffer.find t.env.Env.buffers.(node) id with
            | Some (e : Buffer.entry) -> e.packet
            | None -> assert false
          in
          own_set t node id n;
          Replica_db.set_holder t.truth ~packet:p ~holder_id:node ~n_meet:n
            ~now;
          Replica_db.set_holder db ~packet:p ~holder_id:node ~n_meet:n ~now)

    let purge_delivered_instantly t ~now ~node =
      (* Instant-global acknowledgments: any buffered copy of an
         already-delivered packet is cleared on the spot. The env hook is
         how the run accounts the purge (exactly once, in Metrics). *)
      let buffer = t.env.Env.buffers.(node) in
      let victims =
        List.filter
          (fun (e : Buffer.entry) ->
            Env.is_delivered t.env e.packet.Packet.id)
          (Env.buffered_entries t.env node)
      in
      List.iter
        (fun (e : Buffer.entry) ->
          match Buffer.remove buffer e.packet.Packet.id with
          | Some _ ->
              bump_cell t node e.packet.Packet.dst;
              t.env.Env.on_ack_purge ~now ~node e.packet;
              Replica_db.remove_packet t.truth ~packet_id:e.packet.Packet.id
          | None -> ())
        victims

    (* Ship [sender]'s metadata delta to [receiver]: entries changed since
       the last exchange plus whatever a previous budget cut left unsent,
       oldest first. The watermark always advances to [now]; the unsent set
       is tracked precisely in [meta_backlog] instead of by rewinding the
       watermark — [entries_since] clamps gossip log times and ties on
       [updated_at], so a rewind re-offered already-shipped entries and
       double-spent the budget. Returns bytes spent. *)
    (* Oldest-first delta order; (packet id, holder id) is unique after
       the dedup pass, so the order is total and the (unstable) scratch
       sort is deterministic. *)
    let cmp_delta (x : Replica_db.entry) (y : Replica_db.entry) =
      match
        Float.compare x.Replica_db.holder.Replica_db.updated_at
          y.Replica_db.holder.Replica_db.updated_at
      with
      | 0 -> (
          match
            Int.compare x.Replica_db.packet.Packet.id
              y.Replica_db.packet.Packet.id
          with
          | 0 -> Int.compare x.Replica_db.holder_id y.Replica_db.holder_id
          | n -> n)
      | n -> n

    let send_delta t ~now ~sender ~receiver ~entry_budget =
      let since = Dense.Mat.get t.last_meta_exchange sender receiver in
      let key = (sender, receiver) in
      let eligible (e : Replica_db.entry) =
        match params.channel with
        | Control_channel.Local_only ->
            (* Only packets currently in the sender's own buffer. *)
            Rapid_sim.Buffer.mem
              t.env.Env.buffers.(sender)
              e.Replica_db.packet.Packet.id
        | Control_channel.In_band -> true
        | Control_channel.Instant_global -> false
      in
      (* Re-materialize the backlog from the current db: entries acked or
         dropped since they were deferred have vanished and are skipped;
         surviving ones ship their freshest holder info. *)
      let backlog =
        match Hashtbl.find_opt t.meta_backlog key with
        | None -> []
        | Some set ->
            Hashtbl.fold
              (fun (packet_id, holder_id) () acc ->
                match Replica_db.known_packet t.dbs.(sender) ~packet_id with
                | None -> acc
                | Some packet -> (
                    match
                      Replica_db.find_holder t.dbs.(sender) ~packet_id
                        ~holder_id
                    with
                    | None -> acc
                    | Some holder ->
                        { Replica_db.packet; holder_id; holder } :: acc))
              set []
      in
      t.delta_gen <- t.delta_gen + 1;
      let gen = t.delta_gen in
      let delta = t.delta_buf in
      Sortbuf.clear delta;
      let num_nodes = t.env.Env.num_nodes in
      (* Generation-stamped flat dedup: seen(k) iff delta_seen.(k) holds
         this call's generation, so no per-call clear and no hashing. *)
      let fresh k =
        if k < Array.length t.delta_seen then Array.unsafe_get t.delta_seen k <> gen
        else true
      in
      let mark k =
        let cap = Array.length t.delta_seen in
        if k >= cap then begin
          let g = Array.make (max 1024 (2 * (k + 1))) 0 in
          Array.blit t.delta_seen 0 g 0 cap;
          t.delta_seen <- g
        end;
        Array.unsafe_set t.delta_seen k gen
      in
      let consider (e : Replica_db.entry) =
        let k =
          (e.Replica_db.packet.Packet.id * num_nodes) + e.Replica_db.holder_id
        in
        if fresh k then begin
          mark k;
          if eligible e then Sortbuf.push delta e
        end
      in
      List.iter consider backlog;
      (* The raw log suffix may visit a (packet, holder) pair several
         times; the dedup keeps the first, and every occurrence would
         materialize the same current-db value, so deduping on raw ids
         BEFORE materializing yields the same set (and hence the same
         sorted delta) while paying the record lookups and the entry
         allocation once per distinct pair instead of once per log
         occurrence. *)
      Replica_db.iter_ids_since t.dbs.(sender) since
        (fun ~packet_id ~holder_id ->
          let k = (packet_id * num_nodes) + holder_id in
          if fresh k then begin
            mark k;
            match
              Replica_db.entry_since t.dbs.(sender) since ~packet_id
                ~holder_id
            with
            | Some e -> if eligible e then Sortbuf.push delta e
            | None -> ()
          end);
      (* Only the first [entry_budget] entries ship (in oldest-first
         order); everything past the cut lands in the unordered backlog
         set, so a partial selection replaces the full sort. *)
      Sortbuf.select delta ~cmp:cmp_delta entry_budget;
      let unsent = ref None in
      let sent = ref 0 in
      Sortbuf.iteri delta (fun i (e : Replica_db.entry) ->
          if i < entry_budget then begin
            incr sent;
            ignore
              (Replica_db.merge t.dbs.(receiver) ~packet:e.Replica_db.packet
                 ~holder_id:e.Replica_db.holder_id ~holder:e.Replica_db.holder)
          end
          else begin
            let set =
              match !unsent with
              | Some set -> set
              | None ->
                  let set = Hashtbl.create 16 in
                  unsent := Some set;
                  set
            in
            Hashtbl.replace set
              (e.Replica_db.packet.Packet.id, e.Replica_db.holder_id) ()
          end);
      (match !unsent with
      | None -> Hashtbl.remove t.meta_backlog key
      | Some set -> Hashtbl.replace t.meta_backlog key set);
      Dense.Mat.set t.last_meta_exchange sender receiver now;
      !sent * params.packet_entry_bytes

    let on_contact t { Protocol.now; a; b; budget; meta_budget; meta_ok } =
      Send_queue.begin_contact t.queue;
      t.victim.v_valid <- false;
      t.contact_seq <- t.contact_seq + 1;
      Hashtbl.reset t.contact_indexes;
      Meeting_matrix.observe t.matrix ~now ~a ~b;
      t.meet_count.(a) <- t.meet_count.(a) + 1;
      t.meet_count.(b) <- t.meet_count.(b) + 1;
      let x, y = if a < b then (a, b) else (b, a) in
      Dense.Cumulative_grid.add t.pair_transfer x y (float_of_int budget);
      Moving_average.Cumulative.add t.global_transfer (float_of_int budget);
      refresh_own t ~now a;
      refresh_own t ~now b;
      let bytes = ref 0 in
      (* Metadata can never exceed the transfer opportunity; absent an
         administrator cap (Fig. 8), RAPID limits itself to a fraction of
         the opportunity so gossip cannot starve data under churn. *)
      let cap =
        match meta_budget with
        | Some m -> min m budget
        | None ->
            int_of_float (params.meta_self_cap_frac *. float_of_int budget)
      in
      let remaining () = cap - !bytes in
      let trace_meta kind spent =
        if Rapid_obs.Tracer.enabled params.tracer then
          Rapid_obs.Tracer.emit params.tracer
            (Rapid_obs.Tracer.Metadata { time = now; a; b; bytes = spent; kind })
      in
      (match params.channel with
      | Control_channel.Instant_global ->
          (* The oracle channel is out of band — in-band metadata loss
             cannot touch it. *)
          purge_delivered_instantly t ~now ~node:a;
          purge_delivered_instantly t ~now ~node:b
      | Control_channel.In_band | Control_channel.Local_only
        when not meta_ok ->
          (* The exchange was lost in flight: no acks, no table cells, no
             replica deltas — and crucially no watermark advances, so the
             next successful meeting ships everything accumulated. The
             meeting observation above is first-hand and stays. *)
          ()
      | Control_channel.In_band | Control_channel.Local_only ->
          (* 1. Acknowledgments (highest priority). *)
          if params.use_acks && remaining () >= params.ack_entry_bytes then begin
            let fresh = Protocol.Ack_store.exchange t.acks ~a ~b in
            let purge node =
              Protocol.Ack_store.purge t.acks t.env ~now ~node
                ~on_purge:(fun p ->
                  bump_cell t node p.Packet.dst;
                  own_set t node p.Packet.id (-1);
                  Replica_db.remove_packet t.dbs.(node)
                    ~packet_id:p.Packet.id;
                  Replica_db.remove_holder t.truth ~packet_id:p.Packet.id
                    ~holder_id:node)
            in
            purge a;
            purge b;
            let ack_bytes = fresh * params.ack_entry_bytes in
            bytes := !bytes + ack_bytes;
            Rapid_obs.Counter.add c_meta_ack_bytes ack_bytes;
            trace_meta "acks" ack_bytes
          end;
          (* 2. Meeting-time table deltas: each side ships the cells of its
             own row that changed since it last synced with this peer (a
             row has at most n-1 cells). *)
          let row_cells x y =
            (* max 0 guards against watermarks from before a reboot reset
               the node's meeting counter. *)
            max 0
              (min (t.env.Env.num_nodes - 1)
                 (t.meet_count.(x) - Dense.Int_mat.get t.last_table_sync x y))
          in
          let cells = row_cells a b + row_cells b a in
          let table_bytes = cells * params.table_entry_bytes in
          let table_bytes = min table_bytes (max 0 (remaining ())) in
          bytes := !bytes + table_bytes;
          Rapid_obs.Counter.add c_meta_table_bytes table_bytes;
          trace_meta "table" table_bytes;
          Dense.Int_mat.set t.last_table_sync a b t.meet_count.(a);
          Dense.Int_mat.set t.last_table_sync b a t.meet_count.(b);
          (* 3. Replica metadata deltas, split evenly across directions. *)
          let entry_budget_total = max 0 (remaining ()) / params.packet_entry_bytes in
          let half = (entry_budget_total + 1) / 2 in
          let spent_ab =
            send_delta t ~now ~sender:a ~receiver:b ~entry_budget:half
          in
          let rest_budget =
            entry_budget_total - (spent_ab / params.packet_entry_bytes)
          in
          let spent_ba =
            send_delta t ~now ~sender:b ~receiver:a ~entry_budget:rest_budget
          in
          bytes := !bytes + spent_ab + spent_ba;
          Rapid_obs.Counter.add c_meta_entry_bytes (spent_ab + spent_ba);
          trace_meta "entries" (spent_ab + spent_ba));
      plan t ~now ~sender:a ~receiver:b;
      plan t ~now ~sender:b ~receiver:a;
      !bytes

    let next_packet t ~now:_ ~sender ~receiver ~budget =
      Send_queue.next t.queue t.env ~sender ~receiver ~budget

    let on_transfer t ~now ~sender ~receiver (p : Packet.t) ~delivered =
      t.victim.v_valid <- false;
      (* Delivery removes the sender's copy; a relay adds the receiver's. *)
      bump_cell t (if delivered then sender else receiver) p.Packet.dst;
      let id = p.Packet.id in
      if delivered then begin
        if params.use_acks then begin
          Protocol.Ack_store.learn t.acks ~node:sender ~packet_id:id;
          Protocol.Ack_store.learn t.acks ~node:receiver ~packet_id:id
        end;
        own_set t sender id (-1);
        own_set t receiver id (-1);
        Replica_db.remove_packet t.truth ~packet_id:id;
        Replica_db.remove_packet t.dbs.(sender) ~packet_id:id;
        Replica_db.remove_packet t.dbs.(receiver) ~packet_id:id
      end
      else begin
        let n = n_meet_from_index t ~node:receiver (cached_index t receiver) p in
        own_set t receiver id n;
        Replica_db.set_holder t.truth ~packet:p ~holder_id:receiver ~n_meet:n ~now;
        List.iter
          (fun node ->
            Replica_db.set_holder t.dbs.(node) ~packet:p ~holder_id:receiver
              ~n_meet:n ~now)
          [ sender; receiver ]
      end

    (* -------------------------------------------------------------- *)
    (* Storage adaptation (§3.4): lowest-utility first; a source never
       deletes its own unacknowledged packet. *)

    (* Marginal utility of the local copy: how much does losing THIS
       replica hurt the packet's expected metric contribution? A copy
       whose packet is well replicated elsewhere (or can never reach its
       destination) costs little — those go first, per byte. *)
    let local_loss t ~now ~node (p : Packet.t) =
        let r = believed_rate t ~observer:node ~packet:p in
        let r_self =
          match
            Replica_db.find_holder t.dbs.(node) ~packet_id:p.Packet.id
              ~holder_id:node
          with
          | Some h ->
              Estimate_delay.rate_of_holder
                ~meeting_time:(meeting_time t node p.Packet.dst)
                ~n_meet:h.Replica_db.n_meet
          | None -> 0.0
        in
        let without = Float.max 0.0 (r -. r_self) in
        match params.metric with
        | Metric.Average_delay | Metric.Maximum_delay ->
            let a = Estimate_delay.expected_delay ~rate:r in
            let a' = Estimate_delay.expected_delay ~rate:without in
            if not (Float.is_finite a) then 0.0
            else if not (Float.is_finite a') then big_delay -. a
            else a' -. a
        | Metric.Missed_deadlines -> (
            match Packet.remaining_lifetime p ~now with
            | Some rem when rem <= 0.0 -> 0.0 (* dead: worthless, drop first *)
            | Some rem ->
                Estimate_delay.delivery_prob_within ~rate:r ~horizon:rem
                -. Estimate_delay.delivery_prob_within ~rate:without
                     ~horizon:rem
            | None ->
                let a = Estimate_delay.expected_delay ~rate:r in
                let a' = Estimate_delay.expected_delay ~rate:without in
                if not (Float.is_finite a) then 0.0
                else if not (Float.is_finite a') then big_delay -. a
                else a' -. a)

    (* Victims sorted cheapest-per-byte first (float ties broken by id,
       matching the first-among-ties fold this replaces). *)
    let build_victim_plan t ~now ~node ~own entries =
      let v = t.victim in
      let arr =
        Array.of_list
          (List.map
             (fun (e : Buffer.entry) ->
               let p = e.packet in
               (p, local_loss t ~now ~node p /. float_of_int p.Packet.size))
             entries)
      in
      Array.sort
        (fun ((px : Packet.t), sx) ((py : Packet.t), sy) ->
          match Float.compare sx sy with
          | 0 -> Int.compare px.Packet.id py.Packet.id
          | n -> n)
        arr;
      v.v_packets <- Array.map fst arr;
      v.v_len <- Array.length arr;
      v.v_cursor <- 0;
      v.v_valid <- true;
      v.v_node <- node;
      v.v_now <- now;
      v.v_own <- own

    let drop_candidate t ~now ~node ~incoming =
      (* Foreign replicas are evicted before anything else; a source's own
         packets are protected (§3.4) — except that a source creating a new
         packet may replace its own lowest-utility one (the alternative
         would deadlock a full source buffer forever). *)
      let v = t.victim in
      let fresh_plan ~own =
        let all = Env.buffered_entries t.env node in
        let entries =
          if own then all
          else
            List.filter
              (fun (e : Buffer.entry) -> e.packet.Packet.src <> node)
              all
        in
        build_victim_plan t ~now ~node ~own entries
      in
      if not (v.v_valid && v.v_node = node && v.v_now = now) then
        fresh_plan ~own:false;
      let buf = t.env.Env.buffers.(node) in
      (* Serve the cheapest victim still buffered; already-dropped plan
         entries are skipped for good. The cursor stays on the served
         packet — the engine drops it, which is what retires it. *)
      let rec serve () =
        if v.v_cursor >= v.v_len then None
        else begin
          let p = v.v_packets.(v.v_cursor) in
          if Buffer.mem buf p.Packet.id then Some p
          else begin
            v.v_cursor <- v.v_cursor + 1;
            serve ()
          end
        end
      in
      match serve () with
      | Some p -> Some p
      | None ->
          (* No foreign replica left: a source squeezing in its own new
             packet may evict its own cheapest copy; anyone else refuses.
             The buffer cannot have regained foreign copies since the plan
             was built (additions invalidate it), so the own-packet plan
             is built over what remains. *)
          if (not v.v_own) && incoming.Packet.src = node then begin
            fresh_plan ~own:true;
            serve ()
          end
          else None

    let on_dropped t ~now:_ ~node (p : Packet.t) =
      bump_cell t node p.Packet.dst;
      own_set t node p.Packet.id (-1);
      Replica_db.remove_holder t.truth ~packet_id:p.Packet.id ~holder_id:node;
      Replica_db.remove_holder t.dbs.(node) ~packet_id:p.Packet.id
        ~holder_id:node

    let on_reboot t ~now:_ ~node ~lost =
      t.victim.v_valid <- false;
      (* The emptied buffer invalidates every cell verdict at once. The
         positional index must go too: a reboot clears the buffer without
         bumping (node, dst) cell versions, so an incremental sync would
         wrongly keep every cell. *)
      Hashtbl.remove t.refresh_memo node;
      Hashtbl.remove t.pos_cache node;
      (* The replacement replica DB below restarts the node's version
         sequence, so every believed-rate stamp this observer holds is
         poisoned. *)
      Rate_cache.drop_observer t.rcache node;
      Array.fill t.own_n.(node) 0 (Array.length t.own_n.(node)) (-1);
      (* First-hand truth: the crashed copies are gone. *)
      List.iter
        (fun (p : Packet.t) ->
          Replica_db.remove_holder t.truth ~packet_id:p.Packet.id
            ~holder_id:node)
        lost;
      (* The node's replica DB, ack set and gossip watermarks lived in
         RAM; peers' (stale) beliefs about this node survive. Meeting-time
         statistics are kept: the deployment persists them to flash, and
         they age out via the matrix's own dynamics. *)
      t.dbs.(node) <- Replica_db.create ();
      Protocol.Ack_store.reset_node t.acks ~node;
      let n = t.env.Env.num_nodes in
      for peer = 0 to n - 1 do
        Dense.Mat.set t.last_meta_exchange node peer neg_infinity;
        Dense.Int_mat.set t.last_table_sync node peer 0
      done;
      t.meet_count.(node) <- 0;
      Hashtbl.filter_map_inplace
        (fun (sender, _) pending ->
          if sender = node then None else Some pending)
        t.meta_backlog
  end : Protocol.S)

let make_default metric = make (default_params metric)
