(** Learned expected inter-meeting times (§4.1.2).

    "Every node tabulates the average time to meet every other node based
    on past meeting times. Nodes exchange this table as part of metadata
    exchanges... The matrix contains the expected time for two nodes to
    meet directly, calculated as the average of past meetings."

    E(M_XZ) is estimated as the expected time for X to meet Z in at most
    [h] hops (default 3, as in the paper's implementation): if X never met
    Z directly, the estimate is the cheapest sum of direct averages along
    a path of <= h hops; infinity when no such path exists.

    Simplification (documented in DESIGN.md §4): the implementation keeps
    one shared learned matrix rather than per-node copies — meeting-time
    observations are symmetric, flow on every contact, and converge to the
    same table; the in-band control channel still *charges* for table
    entries, but all nodes read the converged view. The first observed gap
    for a pair is measured from the trace start, seeding estimates
    early. *)

type t

val create : num_nodes:int -> t

val observe : t -> now:float -> a:int -> b:int -> unit
(** Record a meeting between [a] and [b] at time [now]. *)

val direct_mean : t -> int -> int -> float option
(** Average observed inter-meeting time, if the pair ever met. *)

val expected_meeting_time : ?h:int -> t -> int -> int -> float
(** E(M_XZ) with up-to-[h]-hop transitivity (default 3); [infinity] if
    unreachable. The [h]-hop closure is cached and recomputed lazily. *)

val row : ?h:int -> t -> int -> float array
(** The up-to-date ≤[h]-hop row keyed on the given node — the array
    [expected_meeting_time ?h t a node] reads at index [a] (0 on the
    node's own index). Borrowed: valid only until the next {!observe};
    callers must not mutate it. Triggers the same lazy build a query
    would. *)

val row_version : ?h:int -> t -> int -> int
(** Content version of the ≤[h]-hop row keyed on the given node: first
    brings the row up to date (the same lazy build a query triggers —
    call this only when a query is imminent so build counts are
    unchanged), then returns a counter that bumps only when a rebuild
    actually moved some cell. Together with {!Replica_db.version} it
    forms the believed-rate cache stamp: while both stand still, every
    [expected_meeting_time (·, node)] read is unchanged. *)

val updates_count : t -> int
(** Total number of cell updates so far — used by the control channel to
    price table synchronization. *)

val global_mean : t -> float option
(** Mean over all observed direct pair averages (a prior for unknown
    pairs). *)
