open Rapid_sim

type holder = { n_meet : int; updated_at : float }
type entry = { packet : Packet.t; holder_id : int; holder : holder }

type record = { packet : Packet.t; holders : (int, holder) Hashtbl.t }

type t = {
  records : (int, record) Hashtbl.t;
  (* Update log in append order, as parallel arrays of (log time, packet
     id, holder id). Lets [iter_since] walk only the recent suffix instead
     of scanning every record. Log times are clamped to be non-decreasing
     (gossip can carry old origin timestamps), so the suffix boundary is a
     binary search; emission re-checks the entry's real [updated_at], so
     clamping can only widen the walk, never lose an entry. Superseded or
     deleted entries are filtered during the walk. *)
  mutable log_times : float array;
  mutable log_pids : int array;
  mutable log_hids : int array;
  mutable log_len : int;
  mutable log_newest : float;
  (* Per-packet mutation version, bumped by every write that can change a
     packet's holder set (set_holder, applied merge, remove_holder of a
     present holder, remove_packet of a known packet). Indexed by packet
     id; slots survive record removal so a forgotten-then-regossiped
     packet can never replay an old version value. Backs the believed-rate
     cache's (packet version, row version) stamp. *)
  mutable vers : int array;
}

(* Bound on log length: beyond it the oldest deltas are discarded, so a
   peer that has not exchanged for a very long time receives a truncated
   (bounded-staleness) delta instead of the full history. This keeps
   memory and per-contact work proportional to recent activity. *)
let max_log = 8_000

let create () =
  {
    records = Hashtbl.create 256;
    log_times = [||];
    log_pids = [||];
    log_hids = [||];
    log_len = 0;
    log_newest = neg_infinity;
    vers = [||];
  }

let bump_version t packet_id =
  let cap = Array.length t.vers in
  if packet_id >= cap then begin
    let g = Array.make (max 256 (2 * (packet_id + 1))) 0 in
    Array.blit t.vers 0 g 0 cap;
    t.vers <- g
  end;
  t.vers.(packet_id) <- t.vers.(packet_id) + 1

let version t ~packet_id =
  if packet_id < Array.length t.vers then t.vers.(packet_id) else 0

let log_update t ~time ~packet_id ~holder_id =
  let time = Float.max time t.log_newest in
  t.log_newest <- time;
  let cap = Array.length t.log_times in
  if t.log_len = cap then begin
    let grow a fill =
      let g = Array.make (max 64 (2 * cap)) fill in
      Array.blit a 0 g 0 t.log_len;
      g
    in
    t.log_times <- grow t.log_times 0.0;
    t.log_pids <- grow t.log_pids 0;
    t.log_hids <- grow t.log_hids 0
  end;
  t.log_times.(t.log_len) <- time;
  t.log_pids.(t.log_len) <- packet_id;
  t.log_hids.(t.log_len) <- holder_id;
  t.log_len <- t.log_len + 1;
  if t.log_len > 2 * max_log then begin
    (* Amortized truncation: keep the newest half. *)
    let src = t.log_len - max_log in
    Array.blit t.log_times src t.log_times 0 max_log;
    Array.blit t.log_pids src t.log_pids 0 max_log;
    Array.blit t.log_hids src t.log_hids 0 max_log;
    t.log_len <- max_log
  end

let record_of t (packet : Packet.t) =
  match Hashtbl.find_opt t.records packet.Packet.id with
  | Some r -> r
  | None ->
      let r = { packet; holders = Hashtbl.create 4 } in
      Hashtbl.replace t.records packet.Packet.id r;
      r

let set_holder t ~packet ~holder_id ~n_meet ~now =
  let r = record_of t packet in
  Hashtbl.replace r.holders holder_id { n_meet; updated_at = now };
  bump_version t packet.Packet.id;
  log_update t ~time:now ~packet_id:packet.Packet.id ~holder_id

let merge t ~packet ~holder_id ~holder =
  let r = record_of t packet in
  match Hashtbl.find_opt r.holders holder_id with
  | Some existing when existing.updated_at >= holder.updated_at -> false
  | Some _ | None ->
      Hashtbl.replace r.holders holder_id holder;
      bump_version t packet.Packet.id;
      log_update t ~time:holder.updated_at ~packet_id:packet.Packet.id ~holder_id;
      true

let remove_holder t ~packet_id ~holder_id =
  match Hashtbl.find_opt t.records packet_id with
  | None -> ()
  | Some r ->
      if Hashtbl.mem r.holders holder_id then begin
        Hashtbl.remove r.holders holder_id;
        bump_version t packet_id;
        if Hashtbl.length r.holders = 0 then Hashtbl.remove t.records packet_id
      end

let remove_packet t ~packet_id =
  if Hashtbl.mem t.records packet_id then begin
    Hashtbl.remove t.records packet_id;
    bump_version t packet_id
  end

let holders t ~packet_id =
  match Hashtbl.find_opt t.records packet_id with
  | None -> []
  | Some r ->
      Hashtbl.fold (fun id h acc -> (id, h) :: acc) r.holders []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let fold_holders t ~packet_id ~init ~f =
  match Hashtbl.find_opt t.records packet_id with
  | None -> init
  | Some r -> Hashtbl.fold (fun id h acc -> f acc id h) r.holders init

let holder_count t ~packet_id =
  match Hashtbl.find_opt t.records packet_id with
  | None -> 0
  | Some r -> Hashtbl.length r.holders

let find_holder t ~packet_id ~holder_id =
  match Hashtbl.find_opt t.records packet_id with
  | None -> None
  | Some r -> Hashtbl.find_opt r.holders holder_id

let known_packet t ~packet_id =
  Option.map (fun r -> r.packet) (Hashtbl.find_opt t.records packet_id)

(* First log index with time > threshold (times are non-decreasing). *)
let suffix_start t threshold =
  let lo = ref 0 and hi = ref t.log_len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.log_times.(mid) <= threshold then lo := mid + 1 else hi := mid
  done;
  !lo

let materialize t threshold ~packet_id ~holder_id =
  match Hashtbl.find_opt t.records packet_id with
  | None -> None (* forgotten (acked) *)
  | Some r -> (
      match Hashtbl.find_opt r.holders holder_id with
      | Some holder when holder.updated_at > threshold ->
          Some { packet = r.packet; holder_id; holder }
      | Some _ | None -> None)

let iter_since t threshold f =
  for i = suffix_start t threshold to t.log_len - 1 do
    match
      materialize t threshold ~packet_id:t.log_pids.(i)
        ~holder_id:t.log_hids.(i)
    with
    | Some e -> f e
    | None -> ()
  done

(* Raw id walk of the same suffix: duplicates and dead entries included,
   nothing materialized. Lets a caller that dedups on (packet, holder)
   pay the two record lookups and the entry allocation once per distinct
   pair (via [entry_since]) instead of once per log occurrence. *)
let iter_ids_since t threshold f =
  for i = suffix_start t threshold to t.log_len - 1 do
    f ~packet_id:(Array.unsafe_get t.log_pids i)
      ~holder_id:(Array.unsafe_get t.log_hids i)
  done

let entry_since t threshold ~packet_id ~holder_id =
  materialize t threshold ~packet_id ~holder_id

let entries_since t threshold =
  let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let lo = suffix_start t threshold in
  let acc = ref [] in
  (* Newest first so the dedup keeps the freshest occurrence; the
     materialized value is the same either way (always the current db
     state), but the order reported is roughly newest first, which is
     what truncation fairness on the control channel wants. *)
  for i = t.log_len - 1 downto lo do
    let packet_id = t.log_pids.(i) and holder_id = t.log_hids.(i) in
    if not (Hashtbl.mem seen (packet_id, holder_id)) then begin
      Hashtbl.replace seen (packet_id, holder_id) ();
      match materialize t threshold ~packet_id ~holder_id with
      | Some e -> acc := e :: !acc
      | None -> ()
    end
  done;
  List.rev !acc

let size t =
  Hashtbl.fold (fun _ r acc -> acc + Hashtbl.length r.holders) t.records 0
