(** A node's view of where packet replicas live (§4.2).

    "For each encountered packet i, rapid maintains a list of nodes that
    carry the replica of i, and for each replica, an estimated time for
    direct delivery" — here represented by the holder's meeting count
    n_j(i) (its buffer position over its expected transfer size), which
    combined with the meeting matrix yields the direct-delivery estimate.

    Entries are timestamped so the in-band control channel can ship only
    what changed since the last exchange with a given peer, and so that a
    receiver merges only strictly fresher information (stale gossip never
    overwrites newer observations). *)

type holder = { n_meet : int; updated_at : float }

type entry = {
  packet : Rapid_sim.Packet.t;
  holder_id : int;
  holder : holder;
}

type t

val create : unit -> t

val set_holder :
  t -> packet:Rapid_sim.Packet.t -> holder_id:int -> n_meet:int -> now:float -> unit
(** First-hand knowledge: records/overwrites unconditionally. *)

val merge :
  t -> packet:Rapid_sim.Packet.t -> holder_id:int -> holder:holder -> bool
(** Gossip: applied only if strictly fresher than what is known; returns
    whether it was applied. *)

val remove_holder : t -> packet_id:int -> holder_id:int -> unit
(** Local knowledge of a drop; removals are not gossiped (the resulting
    staleness at other nodes is the imprecision §4.2 accepts). *)

val remove_packet : t -> packet_id:int -> unit
(** Forget the packet entirely (ack received: "metadata for delivered
    packets is deleted when an ack is received"). *)

val holders : t -> packet_id:int -> (int * holder) list
(** Sorted by holder id. *)

val find_holder : t -> packet_id:int -> holder_id:int -> holder option

val fold_holders :
  t -> packet_id:int -> init:'a -> f:('a -> int -> holder -> 'a) -> 'a
(** Fold over a packet's holders without sorting (hot path; iteration
    order is deterministic for a given update sequence). *)

val holder_count : t -> packet_id:int -> int
(** Number of believed holders; 0 when the packet is unknown. *)

val version : t -> packet_id:int -> int
(** Per-packet mutation version: strictly increases on every write that
    can change the packet's holder set — {!set_holder}, an applied
    {!merge}, {!remove_holder} of a present holder, {!remove_packet} of a
    known packet. A rejected (stale) merge or a removal of something not
    stored leaves it untouched. Versions survive {!remove_packet}, so a
    packet forgotten and later re-learned from gossip continues the same
    sequence — a cache stamped with an old version can never be revived
    by coincidence. Unknown packets read as 0; any stored state implies a
    version >= 1. *)

val known_packet : t -> packet_id:int -> Rapid_sim.Packet.t option

val iter_since : t -> float -> (entry -> unit) -> unit
(** Visit the log suffix of updates newer than the threshold (a binary
    search finds the boundary; no allocation per call), materializing
    each surviving (packet, holder) pair from the current db state. A
    pair updated several times since the threshold is visited once per
    update with identical (current) contents — callers that need a set
    dedup on (packet id, holder id). The retained history is bounded
    (several thousand updates): peers that have not exchanged for a very
    long time receive a truncated, bounded-staleness delta. *)

val iter_ids_since :
  t -> float -> (packet_id:int -> holder_id:int -> unit) -> unit
(** The raw (packet id, holder id) walk underlying {!iter_since}:
    duplicates and superseded entries included, nothing allocated or
    looked up. Callers dedup and then {!entry_since} each distinct pair,
    so the per-occurrence cost of a long suffix is two array reads. *)

val entry_since : t -> float -> packet_id:int -> holder_id:int -> entry option
(** Materialize one (packet, holder) pair from the current db state, as
    {!iter_since} would: [None] if forgotten or not updated since the
    threshold. *)

val entries_since : t -> float -> entry list
(** The deduplicated {!iter_since} visit as a list, approximately newest
    first — the delta the control channel ships. *)

val size : t -> int
(** Total holder entries stored. *)
