(** The RAPID protocol (§3–4): utility-driven replication as a
    {!Rapid_sim.Protocol.S}.

    Protocol rapid(X, Y) at every transfer opportunity:
    + exchange metadata (acknowledgments, meeting-time table deltas, and
      per-packet replica records changed since the last exchange with this
      peer), charged to the opportunity under the selected
      {!Control_channel.t};
    + deliver packets destined to the peer in decreasing utility order;
    + replicate remaining packets in decreasing order of marginal utility
      per byte δU_i/s_i, where utilities follow the configured
      {!Metric.t} and expected delays come from {!Estimate_delay} over the
      believed replica sets ({!Replica_db}) and learned
      {!Meeting_matrix};
    + under storage pressure, evict lowest-utility packets first — but a
      source never deletes its own packet unless acknowledged (§3.4).

    Faithfulness notes: replication requires strictly positive marginal
    utility, so packets whose deadline passed (metric 2) or whose believed
    holders can never reach the destination within h hops are not
    replicated; with an empty meeting matrix (cold start) RAPID performs
    direct delivery only, exactly as a deployment that "learns all values
    during the experiment" (§6.1). For metric 3 the ranking is by expected
    delay D(i) descending, which is equivalent to the paper's
    work-conserving recomputation within a contact because replicating a
    packet only lowers its own D(i). *)

type params = {
  metric : Metric.t;
  channel : Control_channel.t;
  use_acks : bool;  (** Disable only for component ablations (Fig. 14). *)
  ack_entry_bytes : int;
  table_entry_bytes : int;
  packet_entry_bytes : int;
  h_hops : int;  (** Transitive meeting-estimate depth; the paper uses 3. *)
  meta_self_cap_frac : float;
      (** Voluntary in-band metadata ceiling as a fraction of each
          opportunity, applied when no administrator cap (Fig. 8) is set;
          keeps gossip from starving data under heavy replica churn. *)
  tracer : Rapid_obs.Tracer.t;
      (** Receives per-contact [Metadata] events broken down by kind
          ("acks", "table", "entries"); default is the null tracer. *)
}

val default_params : Metric.t -> params
(** In-band channel, acks on, entry sizes 8/12/20 bytes, h = 3,
    self-cap 0.08, null tracer. *)

val make : params -> Rapid_sim.Protocol.packed

val make_default : Metric.t -> Rapid_sim.Protocol.packed
(** [make (default_params metric)]. *)
