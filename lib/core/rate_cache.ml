(* Incremental believed-rate cache (Eq. 9 hot path).

   The total delivery rate R of a packet as seen by one observer is a
   pure function of two inputs: the packet's believed holder set in the
   observer's replica DB, and the meeting-matrix h-hop row keyed on the
   packet's destination. Both carry cheap versions (Replica_db.version,
   Meeting_matrix.row_version), so a computed rate is stamped with the
   pair and reused until either input actually moves — the same
   version-stamp discipline refresh_own uses for its per-cell skips.

   Storage is flat and reused: per observer, three parallel growable
   arrays indexed by (dense) packet id. A stamp of -1 marks an empty
   slot; Replica_db versions are >= 1 for any stored packet, so no live
   stamp collides with it. *)

type t = {
  mutable pkt_ver : int array array; (* observer -> packet id -> stamp *)
  mutable row_ver : int array array;
  mutable rate : float array array;
}

(* Hit/miss accounting registers lazily: the obs counters are created
   only when a harness opts in (the bench does, at startup), so the
   counter blocks of pinned clean-run goldens — fig3 JSON, per-protocol
   report JSONs — carry no rate_cache keys and stand byte-identical. *)
let counters :
    (Rapid_obs.Counter.t * Rapid_obs.Counter.t) option ref =
  ref None

let register_counters () =
  match !counters with
  | Some _ -> ()
  | None ->
      counters :=
        Some
          ( Rapid_obs.Counter.create "rapid.rate_cache_hits",
            Rapid_obs.Counter.create "rapid.rate_cache_misses" )

let create ~num_nodes =
  {
    pkt_ver = Array.make num_nodes [||];
    row_ver = Array.make num_nodes [||];
    rate = Array.make num_nodes [||];
  }

(* nan sentinel: a believed rate is a finite non-negative sum (0 when no
   holder can reach the destination), never nan. *)
let miss = nan

let find t ~observer ~packet_id ~pkt_ver ~row_ver =
  let pv = t.pkt_ver.(observer) in
  let hit =
    packet_id < Array.length pv
    && pv.(packet_id) = pkt_ver
    && t.row_ver.(observer).(packet_id) = row_ver
  in
  (match !counters with
  | Some (hits, misses) ->
      Rapid_obs.Counter.incr (if hit then hits else misses)
  | None -> ());
  if hit then t.rate.(observer).(packet_id) else miss

let store t ~observer ~packet_id ~pkt_ver ~row_ver ~rate =
  let cap = Array.length t.pkt_ver.(observer) in
  if packet_id >= cap then begin
    let n = max 256 (2 * (packet_id + 1)) in
    let grow_int a =
      let g = Array.make n (-1) in
      Array.blit a 0 g 0 cap;
      g
    in
    t.pkt_ver.(observer) <- grow_int t.pkt_ver.(observer);
    t.row_ver.(observer) <- grow_int t.row_ver.(observer);
    let g = Array.make n 0.0 in
    Array.blit t.rate.(observer) 0 g 0 cap;
    t.rate.(observer) <- g
  end;
  t.pkt_ver.(observer).(packet_id) <- pkt_ver;
  t.row_ver.(observer).(packet_id) <- row_ver;
  t.rate.(observer).(packet_id) <- rate

let drop_observer t observer =
  (* A reboot replaces the observer's replica DB outright; its version
     sequence restarts, so every stamp for that observer is poisoned. *)
  Array.fill t.pkt_ver.(observer) 0 (Array.length t.pkt_ver.(observer)) (-1)
