(** Flat dense n×n storage for the inference hot path.

    RAPID's estimators keep several per-pair tables (meeting gaps, last
    meeting times, transfer-opportunity averages, exchange watermarks).
    As [Array.init n (fun _ -> Array.init n ...)] grids of boxed records
    these cost a pointer chase per access and scatter the heap; here they
    are flat row-major arrays with [(i*n + j)] indexing, which is what the
    O(h·n²) min-plus row builds in [Meeting_matrix] iterate over. All
    indices must be in [0, dim): the flat layout means an out-of-range
    column would silently alias a neighbouring row. *)

(** Row-major [float] matrix. *)
module Mat : sig
  type t

  val create : ?init:float -> int -> t
  (** [create ?init n] is an n×n matrix filled with [init]
      (default [0.0]). *)

  val dim : t -> int
  val get : t -> int -> int -> float
  val set : t -> int -> int -> float -> unit

  val data : t -> float array
  (** The row-major backing store (row [i] occupies
      [i*dim .. i*dim+dim-1]) — for tight loops that index with
      [Array.unsafe_get]. *)
end

(** Row-major [int] matrix. *)
module Int_mat : sig
  type t

  val create : ?init:int -> int -> t
  val dim : t -> int
  val get : t -> int -> int -> int
  val set : t -> int -> int -> int -> unit
end

(** An n×n grid of cumulative (equal-weight) averages: the flat
    counterpart of a [Moving_average.Cumulative.t array array], holding
    one count array and one sum array instead of n² boxed records. Means
    are computed exactly as [Moving_average.Cumulative.value] does
    (sum ÷ count). *)
module Cumulative_grid : sig
  type t

  val create : int -> t
  val dim : t -> int
  val add : t -> int -> int -> float -> unit
  val count : t -> int -> int -> int

  val value : t -> int -> int -> float option
  (** [None] before the first observation of the cell. *)

  val value_or : t -> int -> int -> default:float -> float
end

(** Preallocated double-buffer scratch for min-plus row passes: a relaxed
    row is written into one buffer while the previous pass is read from
    the other, then the roles swap. One scratch serves any number of
    sequential row builds without allocating. *)
module Scratch : sig
  type t

  val create : unit -> t

  val rows : t -> int -> float array * float array
  (** Two distinct buffers of length ≥ [n] (grown on demand; previous
      contents undefined). The same two arrays are returned on every call
      with the same [t], so callers must finish with them before the next
      [rows] call. *)
end
