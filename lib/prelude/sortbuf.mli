(** Reusable push-then-sort arena.

    The per-contact hot paths collect a batch of items, sort it, and
    consume it in order ([position_index] destination cells, metadata
    delta ordering). [List.sort] / [Array.of_list] allocate a fresh
    intermediate per batch; a [Sortbuf.t] owned by the caller amortizes
    that to zero once the high-water mark is reached: [clear], [push]
    each item, [sort], then [iteri].

    [clear] only resets the length — slots keep their last elements alive
    until overwritten, so don't park a long-lived buffer holding large
    values. Sorting is in-place heapsort, hence NOT stable: pass a total
    order (break ties on a unique key) whenever deterministic output
    matters. *)

type 'a t

val create : unit -> 'a t
val clear : 'a t -> unit
val length : 'a t -> int
val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] beyond [length]. *)

val sort : 'a t -> cmp:('a -> 'a -> int) -> unit
(** Sort the live prefix ascending per [cmp], in place. *)

val select : 'a t -> cmp:('a -> 'a -> int) -> int -> unit
(** [select t ~cmp k] places the [k] smallest elements in ascending
    order in slots [0..k-1] — exactly the prefix a full {!sort} would
    produce when [cmp] is a total order — and leaves the remaining
    elements in slots [k..length-1] in an unspecified deterministic
    order. O(len·log k) instead of O(len·log len). *)

val iteri : 'a t -> (int -> 'a -> unit) -> unit
