(** Reusable push-then-sort arena.

    The per-contact hot paths collect a batch of items, sort it, and
    consume it in order ([position_index] destination cells, metadata
    delta ordering). [List.sort] / [Array.of_list] allocate a fresh
    intermediate per batch; a [Sortbuf.t] owned by the caller amortizes
    that to zero once the high-water mark is reached: [clear], [push]
    each item, [sort], then [iteri].

    [clear] only resets the length — slots keep their last elements alive
    until overwritten, so don't park a long-lived buffer holding large
    values. Sorting is in-place heapsort, hence NOT stable: pass a total
    order (break ties on a unique key) whenever deterministic output
    matters. *)

type 'a t

val create : unit -> 'a t
val clear : 'a t -> unit
val length : 'a t -> int
val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] beyond [length]. *)

val sort : 'a t -> cmp:('a -> 'a -> int) -> unit
(** Sort the live prefix ascending per [cmp], in place. *)

val iteri : 'a t -> (int -> 'a -> unit) -> unit
