type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length t = t.len
let clear t = t.len <- 0
let get t i = if i >= t.len then invalid_arg "Sortbuf.get" else t.data.(i)

let push t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let data = Array.make (max 16 (2 * cap)) x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

(* In-place heapsort over [data.(0..len-1)]: the stdlib only sorts whole
   arrays, which would force a fresh right-sized copy per call — the
   allocation this buffer exists to avoid. Not stable, so [cmp] must be a
   total order for deterministic output. *)
let heapsort a n ~cmp =
  let swap i j =
    let x = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- x
  in
  let rec sift_down root last =
    let child = (2 * root) + 1 in
    if child <= last then begin
      let child =
        if child < last && cmp a.(child) a.(child + 1) < 0 then child + 1
        else child
      in
      if cmp a.(root) a.(child) < 0 then begin
        swap root child;
        sift_down child last
      end
    end
  in
  for root = (n - 2) / 2 downto 0 do
    sift_down root (n - 1)
  done;
  for last = n - 1 downto 1 do
    swap 0 last;
    sift_down 0 (last - 1)
  done

let sort t ~cmp = heapsort t.data t.len ~cmp

(* Partial sort: the [k] smallest elements end up in slots [0..k-1] in
   ascending order; the rest land in [k..len-1] in an unspecified (but
   deterministic) order. A max-heap of size [k] absorbs the scan, so the
   cost is O(len + len log k) instead of O(len log len) — the win when a
   budget consumes only a prefix of a large batch. With a total order the
   selected prefix is exactly the full sort's prefix. *)
let select t ~cmp k =
  let n = t.len in
  let k = max 0 (min k n) in
  if k = n then (if n > 1 then heapsort t.data n ~cmp)
  else if k > 0 then begin
    let a = t.data in
    let swap i j =
      let x = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- x
    in
    let rec sift_down root last =
      let child = (2 * root) + 1 in
      if child <= last then begin
        let child =
          if child < last && cmp a.(child) a.(child + 1) < 0 then child + 1
          else child
        in
        if cmp a.(root) a.(child) < 0 then begin
          swap root child;
          sift_down child last
        end
      end
    in
    (* Max-heap over the first k slots; any later element smaller than
       the heap root displaces it. *)
    for root = (k - 2) / 2 downto 0 do
      sift_down root (k - 1)
    done;
    for i = k to n - 1 do
      if cmp a.(i) a.(0) < 0 then begin
        swap i 0;
        sift_down 0 (k - 1)
      end
    done;
    for last = k - 1 downto 1 do
      swap 0 last;
      sift_down 0 (last - 1)
    done
  end

let iteri t f =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done
