module Mat = struct
  type t = { n : int; data : float array }

  let create ?(init = 0.0) n = { n; data = Array.make (n * n) init }
  let dim t = t.n
  let get t i j = t.data.((i * t.n) + j)
  let set t i j v = t.data.((i * t.n) + j) <- v
  let data t = t.data
end

module Int_mat = struct
  type t = { n : int; data : int array }

  let create ?(init = 0) n = { n; data = Array.make (n * n) init }
  let dim t = t.n
  let get t i j = t.data.((i * t.n) + j)
  let set t i j v = t.data.((i * t.n) + j) <- v
end

module Cumulative_grid = struct
  type t = { n : int; count : int array; sum : float array }

  let create n =
    { n; count = Array.make (n * n) 0; sum = Array.make (n * n) 0.0 }

  let dim t = t.n

  let add t i j x =
    let k = (i * t.n) + j in
    t.count.(k) <- t.count.(k) + 1;
    t.sum.(k) <- t.sum.(k) +. x

  let count t i j = t.count.((i * t.n) + j)

  let value t i j =
    let k = (i * t.n) + j in
    if t.count.(k) = 0 then None
    else Some (t.sum.(k) /. float_of_int t.count.(k))

  let value_or t i j ~default =
    let k = (i * t.n) + j in
    if t.count.(k) = 0 then default
    else t.sum.(k) /. float_of_int t.count.(k)
end

module Scratch = struct
  type t = { mutable a : float array; mutable b : float array }

  let create () = { a = [||]; b = [||] }

  let rows t n =
    if Array.length t.a < n then begin
      t.a <- Array.make n 0.0;
      t.b <- Array.make n 0.0
    end;
    (t.a, t.b)
end
