(* A fixed-size Domain worker pool, hand-rolled over Domain + Mutex +
   Condition (no dependencies beyond the OCaml 5 stdlib).

   Design constraints, in order:

   1. Determinism. [map] preserves input order and propagates the
      lowest-index exception, so a parallel run is observationally
      identical to the sequential [List.map] — parallelism may only
      change wall time, never results. Every simulation cell already
      derives its RNGs from explicit seeds; the pool adds no ordering
      of its own to the results.
   2. Exact observability. Workers fold their per-domain Counter/Timer
      cells into the shared merged totals *before* signalling task
      completion, so a registry snapshot taken after [map] returns equals
      the sequential run's totals (see Rapid_obs.Counter.merge_domain).
   3. No nested parallelism. A [map] issued from inside a worker (e.g. a
      figure driver fanning out over loads whose point runner fans out
      over days) runs sequentially inline — bounded domain count, no
      deadlock, same results. *)

type t = {
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  tasks : (unit -> unit) Queue.t;
  capacity : int;  (* queue bound; submitters block when full *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  jobs : int;
}

(* Set in every worker domain; [map] consults it to inline nested calls. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let inside_worker () = Domain.DLS.get in_worker

let worker_loop t =
  Domain.DLS.set in_worker true;
  let rec next () =
    Mutex.lock t.lock;
    while Queue.is_empty t.tasks && not t.stop do
      Condition.wait t.not_empty t.lock
    done;
    if Queue.is_empty t.tasks then Mutex.unlock t.lock (* stop requested *)
    else begin
      let task = Queue.pop t.tasks in
      Condition.signal t.not_full;
      Mutex.unlock t.lock;
      task ();
      next ()
    end
  in
  next ()

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      tasks = Queue.create ();
      capacity = 4 * jobs;
      stop = false;
      workers = [];
      jobs;
    }
  in
  if jobs > 1 then
    t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.not_empty;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let submit t task =
  Mutex.lock t.lock;
  while Queue.length t.tasks >= t.capacity do
    Condition.wait t.not_full t.lock
  done;
  Queue.push task t.tasks;
  Condition.signal t.not_empty;
  Mutex.unlock t.lock

let map_pool t f xs =
  if t.workers = [] || inside_worker () then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    if n <= 1 then List.map f xs
    else begin
      let results = Array.make n None in
      let remaining = ref n in
      let done_lock = Mutex.create () in
      let done_cond = Condition.create () in
      for i = 0 to n - 1 do
        submit t (fun () ->
            let r =
              try Ok (f arr.(i))
              with e -> Error (e, Printexc.get_raw_backtrace ())
            in
            (* Fold this domain's obs deltas in before completion so a
               snapshot taken once [map] returns matches a sequential
               run's totals. *)
            Rapid_obs.Counter.merge_domain ();
            Rapid_obs.Timer.merge_domain ();
            Mutex.lock done_lock;
            results.(i) <- Some r;
            decr remaining;
            if !remaining = 0 then Condition.signal done_cond;
            Mutex.unlock done_lock)
      done;
      Mutex.lock done_lock;
      while !remaining > 0 do
        Condition.wait done_cond done_lock
      done;
      Mutex.unlock done_lock;
      (* All tasks ran to completion; re-raise the lowest-index failure
         (Array.map visits indices in order), as the sequential map would
         have raised it first. *)
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
             | None -> assert false)
           results)
    end
  end

(* ------------------------------------------------------------------ *)
(* The process-global pool, configured once by the CLI (--jobs N) and
   shared by every runner: created lazily on first parallel map, torn
   down (and its domains joined) on reconfiguration and at exit. *)

let global_lock = Mutex.create ()
let configured_jobs = ref 1
let global : t option ref = ref None
let exit_hook_registered = ref false

let shutdown_global () =
  Mutex.protect global_lock (fun () ->
      match !global with
      | Some p ->
          global := None;
          shutdown p
      | None -> ())

let set_jobs n =
  let n = max 1 n in
  let stale =
    Mutex.protect global_lock (fun () ->
        if n = !configured_jobs then None
        else begin
          configured_jobs := n;
          let old = !global in
          global := None;
          old
        end)
  in
  Option.iter shutdown stale

let configured () = !configured_jobs

let get_global () =
  Mutex.protect global_lock (fun () ->
      match !global with
      | Some p -> p
      | None ->
          let p = create ~jobs:!configured_jobs in
          global := Some p;
          if not !exit_hook_registered then begin
            exit_hook_registered := true;
            (* Join the workers before process exit rather than letting
               [exit] tear down domains blocked in Condition.wait. *)
            at_exit shutdown_global
          end;
          p)

let map f xs =
  if !configured_jobs <= 1 || inside_worker () then List.map f xs
  else map_pool (get_global ()) f xs

let init n f = map f (List.init n (fun i -> i))
