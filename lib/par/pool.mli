(** Fixed-size [Domain] worker pool for embarrassingly parallel
    experiment cells (day/seed/protocol/load points).

    The contract every user relies on: {!map} (and {!map_pool}) is
    observationally identical to [List.map] — results come back in input
    order, the lowest-index exception is the one re-raised, and worker
    domains fold their {!Rapid_obs} counter/timer cells into the shared
    totals before completion is signalled, so parallelism changes wall
    time and nothing else. Simulation cells must derive their randomness
    from explicit seeds (they do: every runner seeds per day/run), and
    must not share mutable state across cells (the engine and protocols
    allocate per run; the obs registries are the one shared structure and
    are domain-safe).

    A [map] issued from inside a worker runs sequentially inline: the
    domain count stays bounded by the configured job count, nested
    fan-outs cannot deadlock the queue, and results are unchanged. *)

type t
(** A pool with a fixed set of worker domains and a bounded task queue
    (submitters block while the queue is full). *)

val create : jobs:int -> t
(** Spawn [jobs] worker domains ([jobs <= 1] spawns none: every map on
    such a pool is sequential). *)

val jobs : t -> int

val map_pool : t -> ('a -> 'b) -> 'a list -> 'b list
(** Deterministic parallel map over the pool (see the module contract). *)

val shutdown : t -> unit
(** Stop and join the workers; subsequent maps run sequentially. *)

val inside_worker : unit -> bool
(** True when called from a pool worker domain. *)

(** {1 The process-global pool}

    Configured once by the CLI ([--jobs N], default sequential) and
    shared by every runner; created lazily on first parallel {!map},
    joined on reconfiguration and at process exit. *)

val set_jobs : int -> unit
(** Set the global parallelism width; [n <= 1] means sequential. Shuts
    down any previously created global pool. *)

val configured : unit -> int
(** The configured width (not necessarily instantiated yet). *)

val map : ('a -> 'b) -> 'a list -> 'b list
(** [List.map] through the global pool; sequential when the configured
    width is 1 or when already inside a worker. *)

val init : int -> (int -> 'a) -> 'a list
(** [List.init] through the global pool (same guarantees as {!map}). *)
