(** Deterministic, seeded fault injection for trace replays.

    The engine replays recorded contacts under perfectly reliable
    conditions; the deployment the traces come from was anything but:
    buses reboot (wiping the DTN daemon's in-memory state), radio
    contacts cut out mid-transfer, and the in-band control channel
    loses metadata. This module turns a {!config} into a {!plan} — a
    pre-drawn realization of every fault for one run — so the engine can
    consult it without consuming randomness during the replay. That is
    what keeps faulted runs byte-identical across [--jobs] settings: the
    plan depends only on [(config, run_seed, trace)], never on execution
    order.

    Four independent, composable fault models:

    - {b node reboots}: at seeded times a node loses its entire buffer
      and the protocol is told via [Protocol.S.on_reboot] so it can
      reset that node's soft state.
    - {b truncated contacts}: a contact's byte budget is cut to a
      seeded fraction of its recorded size, exercising partial-exchange
      paths.
    - {b lossy metadata}: with probability [meta_drop_prob] a contact's
      metadata exchange silently fails, so protocols must degrade to
      stale state.
    - {b contact no-shows}: with probability [contact_drop_prob] a
      recorded contact simply never happens. *)

type config = {
  seed : int;  (** Fault-stream seed, mixed with the run seed. *)
  reboots_per_node : float;
      (** Expected reboots per node over the trace horizon (Poisson
          arrivals); [0.] disables reboots. *)
  truncate_prob : float;  (** Per-contact probability of truncation. *)
  meta_drop_prob : float;
      (** Per-contact probability the metadata exchange is lost. *)
  contact_drop_prob : float;  (** Per-contact probability of a no-show. *)
}

val none : config
(** All rates zero: injects nothing. *)

val is_none : config -> bool
(** True when every rate is zero ([seed] is irrelevant then). *)

val parse : string -> (config, string) result
(** Parse a CLI spec like ["reboots=1,truncate=0.2,metaloss=0.1,noshow=0.05,seed=7"].
    Keys are optional and default to {!none}'s fields; the empty string
    is {!none}. Probabilities must lie in [0,1]. *)

val spec_string : config -> string
(** Canonical [parse]-able rendering of a config. *)

type plan
(** A fully drawn fault realization for one run over one trace. *)

val plan : config -> run_seed:int -> trace:Rapid_trace.Trace.t -> plan
(** Draw the plan. When [is_none config] this returns a null plan
    without touching any RNG or registering any counters, so a
    zero-rate run is observably identical to one with no fault layer at
    all. *)

val active : plan -> bool

val reboots : plan -> (float * int) array
(** [(time, node)] pairs, sorted by time (ties by node id). *)

val contact_skipped : plan -> int -> bool
(** Whether the [i]-th contact of the trace is a no-show. *)

val contact_capacity : plan -> int -> bytes:int -> int
(** Effective byte budget of the [i]-th contact given its recorded
    [bytes]; equals [bytes] unless the contact is truncated. *)

val contact_meta_ok : plan -> int -> bool
(** Whether the [i]-th contact's metadata exchange succeeds. *)

(** {2 Observability}

    The [faults.*] counters are registered lazily — building an active
    plan (or calling {!register_counters}) creates them; a process that
    never injects faults reports exactly the counter set it did before
    this module existed. *)

val register_counters : unit -> unit
(** Force registration so [faults.*] appear (possibly zero) in counter
    dumps — used by the bench harness so BENCH.json has a stable
    schema. *)

val note_reboot : lost:int -> unit
val note_contact_suppressed : unit -> unit
val note_contact_truncated : lost_bytes:int -> unit
val note_meta_drop : unit -> unit
