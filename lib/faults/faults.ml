open Rapid_prelude

type config = {
  seed : int;
  reboots_per_node : float;
  truncate_prob : float;
  meta_drop_prob : float;
  contact_drop_prob : float;
}

let none =
  {
    seed = 0;
    reboots_per_node = 0.0;
    truncate_prob = 0.0;
    meta_drop_prob = 0.0;
    contact_drop_prob = 0.0;
  }

let is_none c =
  c.reboots_per_node <= 0.0
  && c.truncate_prob <= 0.0
  && c.meta_drop_prob <= 0.0
  && c.contact_drop_prob <= 0.0

let spec_string c =
  Printf.sprintf "reboots=%g,truncate=%g,metaloss=%g,noshow=%g,seed=%d"
    c.reboots_per_node c.truncate_prob c.meta_drop_prob c.contact_drop_prob
    c.seed

let parse s =
  let s = String.trim s in
  if s = "" then Ok none
  else begin
    let ( let* ) = Result.bind in
    let rate k v =
      match float_of_string_opt v with
      | Some f when f >= 0.0 -> Ok f
      | _ -> Error (Printf.sprintf "faults: %s wants a rate >= 0, got %S" k v)
    in
    let prob k v =
      match float_of_string_opt v with
      | Some f when f >= 0.0 && f <= 1.0 -> Ok f
      | _ ->
          Error
            (Printf.sprintf "faults: %s wants a probability in [0,1], got %S" k
               v)
    in
    let rec go cfg = function
      | [] -> Ok cfg
      | kv :: rest -> (
          match String.index_opt kv '=' with
          | None ->
              Error (Printf.sprintf "faults: %S is not of the form key=value" kv)
          | Some i ->
              let k = String.trim (String.sub kv 0 i) in
              let v =
                String.trim (String.sub kv (i + 1) (String.length kv - i - 1))
              in
              let* cfg =
                match k with
                | "reboots" ->
                    let* f = rate k v in
                    Ok { cfg with reboots_per_node = f }
                | "truncate" ->
                    let* p = prob k v in
                    Ok { cfg with truncate_prob = p }
                | "metaloss" ->
                    let* p = prob k v in
                    Ok { cfg with meta_drop_prob = p }
                | "noshow" ->
                    let* p = prob k v in
                    Ok { cfg with contact_drop_prob = p }
                | "seed" -> (
                    match int_of_string_opt v with
                    | Some n -> Ok { cfg with seed = n }
                    | None ->
                        Error
                          (Printf.sprintf "faults: seed wants an integer, got %S"
                             v))
                | _ ->
                    Error
                      (Printf.sprintf
                         "faults: unknown key %S (want \
                          reboots/truncate/metaloss/noshow/seed)"
                         k)
              in
              go cfg rest)
    in
    go none (String.split_on_char ',' s)
  end

(* Counters are registered lazily so a process that never injects faults
   emits exactly the counter set it did before this module existed —
   [Counter.to_json] dumps every registered counter, and figure/run JSON
   byte-identity at fault-rate 0 depends on not adding rows to it. *)

type counters = {
  reboots : Rapid_obs.Counter.t;
  reboot_lost_packets : Rapid_obs.Counter.t;
  contacts_suppressed : Rapid_obs.Counter.t;
  contacts_truncated : Rapid_obs.Counter.t;
  truncated_bytes_lost : Rapid_obs.Counter.t;
  meta_drops : Rapid_obs.Counter.t;
}

let counters =
  lazy
    (let c name = Rapid_obs.Counter.create ("faults." ^ name) in
     {
       reboots = c "reboots";
       reboot_lost_packets = c "reboot_lost_packets";
       contacts_suppressed = c "contacts_suppressed";
       contacts_truncated = c "contacts_truncated";
       truncated_bytes_lost = c "truncated_bytes_lost";
       meta_drops = c "meta_drops";
     })

let register_counters () = ignore (Lazy.force counters)

let note_reboot ~lost =
  let c = Lazy.force counters in
  Rapid_obs.Counter.incr c.reboots;
  Rapid_obs.Counter.add c.reboot_lost_packets lost

let note_contact_suppressed () =
  Rapid_obs.Counter.incr (Lazy.force counters).contacts_suppressed

let note_contact_truncated ~lost_bytes =
  let c = Lazy.force counters in
  Rapid_obs.Counter.incr c.contacts_truncated;
  Rapid_obs.Counter.add c.truncated_bytes_lost lost_bytes

let note_meta_drop () =
  Rapid_obs.Counter.incr (Lazy.force counters).meta_drops

type plan = {
  active : bool;
  skip : bool array;
  capacity : int array;  (* -1 = not truncated *)
  meta_ok : bool array;
  reboot_schedule : (float * int) array;
}

let null_plan =
  {
    active = false;
    skip = [||];
    capacity = [||];
    meta_ok = [||];
    reboot_schedule = [||];
  }

let plan config ~run_seed ~trace =
  if is_none config then null_plan
  else begin
    register_counters ();
    let open Rapid_trace in
    let contacts = trace.Trace.contacts in
    let n = Array.length contacts in
    let rng = Rng.create ((config.seed * 1_000_003) + run_seed) in
    let contact_rng = Rng.split rng in
    let reboot_rng = Rng.split rng in
    let skip = Array.make n false in
    let capacity = Array.make n (-1) in
    let meta_ok = Array.make n true in
    for i = 0 to n - 1 do
      (* A fixed draw count per contact: one contact's fault realization
         never shifts the random stream seen by later contacts, so
         turning one knob perturbs only that fault model. *)
      let u_skip = Rng.float contact_rng in
      let u_trunc = Rng.float contact_rng in
      let u_frac = Rng.float contact_rng in
      let u_meta = Rng.float contact_rng in
      if u_skip < config.contact_drop_prob then skip.(i) <- true;
      if u_trunc < config.truncate_prob then
        capacity.(i) <-
          int_of_float (u_frac *. float_of_int contacts.(i).Contact.bytes);
      if u_meta < config.meta_drop_prob then meta_ok.(i) <- false
    done;
    let reboot_schedule = ref [] in
    if config.reboots_per_node > 0.0 then begin
      (* Poisson arrivals per node: exponential inter-reboot gaps with
         mean horizon / reboots_per_node. Each node gets its own split
         stream so the schedule is independent of node count ordering. *)
      let mean_gap = trace.Trace.duration /. config.reboots_per_node in
      for node = 0 to trace.Trace.num_nodes - 1 do
        let r = Rng.split reboot_rng in
        let t = ref 0.0 in
        let live = ref true in
        while !live do
          t := !t -. (mean_gap *. log (1.0 -. Rng.float r));
          if !t < trace.Trace.duration then
            reboot_schedule := (!t, node) :: !reboot_schedule
          else live := false
        done
      done
    end;
    let reboot_schedule = Array.of_list !reboot_schedule in
    Array.sort
      (fun (t1, n1) (t2, n2) ->
        match Float.compare t1 t2 with 0 -> Int.compare n1 n2 | c -> c)
      reboot_schedule;
    { active = true; skip; capacity; meta_ok; reboot_schedule }
  end

let active p = p.active
let reboots p = p.reboot_schedule
let contact_skipped p i = p.active && p.skip.(i)

let contact_capacity p i ~bytes =
  if not p.active then bytes
  else begin
    match p.capacity.(i) with -1 -> bytes | c -> min c bytes
  end

let contact_meta_ok p i = (not p.active) || p.meta_ok.(i)
