(* The paper's motivating application (§1): "a simple news and information
   application is better served by maximizing the number of news stories
   delivered before they are outdated, rather than maximizing the number
   of stories eventually delivered."

   A kiosk node publishes stories to every reader; each story is stale 15
   minutes after publication. RAPID instantiated with the missed-deadlines
   metric (Eq. 2) is compared against RAPID-with-the-wrong-metric, MaxProp
   and Random: the right routing *metric*, not just the right protocol,
   is what delivers fresh news.

   Run with: dune exec examples/news_deadline.exe *)

open Rapid_prelude
open Rapid_trace
open Rapid_sim
open Rapid_core

let () =
  let rng = Rng.create 11 in
  let num_nodes = 15 in
  let kiosk = 0 in
  let trace =
    Rapid_mobility.Mobility.powerlaw rng ~num_nodes ~mean_inter_meeting:1500.0
      ~duration:7200.0 ~opportunity_bytes:6144 ()
  in
  (* The kiosk publishes a 1 KB story to every reader every ~10 s; stories
     are stale after 10 minutes. *)
  let stories = ref [] in
  List.iter
    (fun t ->
      let dst = 1 + Rng.int rng (num_nodes - 1) in
      stories :=
        { Workload.src = kiosk; dst; size = 1024; created = t;
          deadline = Some (t +. 600.0) }
        :: !stories)
    (Dist.poisson_process rng ~rate:(1.0 /. 10.0) ~horizon:7200.0);
  let workload =
    List.sort (fun (a : Workload.spec) b -> Float.compare a.created b.created)
      !stories
  in
  Format.printf "published %d stories; staleness deadline 10 min@."
    (List.length workload);
  let run label protocol =
    let report =
      (Engine.run
         ~options:{ Engine.default_options with buffer_bytes = Some 20_480 }
         ~protocol ~trace ~workload ())
        .Engine.report
    in
    Format.printf "%-22s fresh: %4.1f%%   eventually delivered: %4.1f%%@." label
      (100.0 *. report.Metrics.within_deadline_rate)
      (100.0 *. report.Metrics.delivery_rate)
  in
  run "RAPID (deadline)" (Rapid.make_default Metric.Missed_deadlines);
  run "RAPID (avg delay)" (Rapid.make_default Metric.Average_delay);
  run "MaxProp" (Rapid_routing.Maxprop.make ());
  run "Random" (Rapid_routing.Random_protocol.make ())
