(* A day in the life of the (synthetic) DieselNet testbed.

   Generates one calibrated bus-fleet day, saves it to a portable text
   trace, reloads it (demonstrating the trace interchange format), and
   races every protocol in the library over the same schedule at the
   deployment's default load of 4 packets/hour/destination (§5.1).

   Run with: dune exec examples/dieselnet_day.exe *)

open Rapid_prelude
open Rapid_trace
open Rapid_sim

let () =
  let trace = Dieselnet.day ~seed:2026 ~day:0 () in
  let path = Filename.temp_file "dieselnet-day" ".trace" in
  Trace_io.save path trace;
  let trace = Trace_io.load path in
  Sys.remove path;
  Format.printf "%a@.@." Trace.pp_summary trace;
  let rng = Rng.create 1 in
  let workload =
    Workload.generate rng ~trace ~pkts_per_hour_per_dest:4.0 ~size:1024
      ~lifetime:(2.7 *. 3600.0) ()
  in
  Format.printf "workload: %d packets (4/hr/dest, 2.7 h deadlines)@.@."
    (List.length workload);
  Format.printf "%-14s %9s %10s %9s %10s %9s@." "protocol" "delivered"
    "avg (min)" "max (min)" "deadline%" "meta/data";
  let race label protocol =
    let r = (Engine.run ~protocol ~trace ~workload ()).Engine.report in
    Format.printf "%-14s %8.1f%% %10.1f %9.1f %9.1f%% %9.4f@." label
      (100.0 *. r.Metrics.delivery_rate)
      (r.Metrics.avg_delay /. 60.0)
      (r.Metrics.max_delay /. 60.0)
      (100.0 *. r.Metrics.within_deadline_rate)
      r.Metrics.metadata_frac_data
  in
  race "RAPID" (Rapid_core.Rapid.make_default Rapid_core.Metric.Average_delay);
  race "MaxProp" (Rapid_routing.Maxprop.make ());
  race "SprayWait" (Rapid_routing.Spray_wait.make ());
  race "Prophet" (Rapid_routing.Prophet.make ());
  race "Epidemic" (Rapid_routing.Epidemic.make ());
  race "Random" (Rapid_routing.Random_protocol.make ());
  race "Random+acks" (Rapid_routing.Random_protocol.make ~with_acks:true ());
  race "Direct" (Rapid_routing.Direct.make ())
