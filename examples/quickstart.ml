(* Quickstart: simulate RAPID on a small synthetic DTN.

   Build a 10-node network where nodes meet each other with exponential
   inter-meeting times, generate Poisson traffic between every pair, run
   the RAPID protocol (minimizing average delay), and print the report.

   Run with: dune exec examples/quickstart.exe *)

open Rapid_prelude
open Rapid_trace
open Rapid_sim
open Rapid_core

let () =
  let rng = Rng.create 7 in
  (* One hour of mobility: any pair meets every ~5 minutes on average and
     can move 50 KB per meeting. *)
  let trace =
    Rapid_mobility.Mobility.exponential rng ~num_nodes:10
      ~mean_inter_meeting:300.0 ~duration:3600.0 ~opportunity_bytes:51_200
  in
  Format.printf "%a@." Trace.pp_summary trace;
  (* 30 packets/hour between every ordered pair, 1 KB each, 10-minute
     deadlines. *)
  let workload =
    Workload.generate rng ~trace ~pkts_per_hour_per_dest:30.0 ~size:1024
      ~lifetime:600.0 ()
  in
  Format.printf "workload: %d packets@." (List.length workload);
  let report =
    (Engine.run
       ~options:{ Engine.default_options with buffer_bytes = Some 65_536 }
       ~protocol:(Rapid.make_default Metric.Average_delay)
       ~trace ~workload ())
      .Engine.report
  in
  Format.printf "RAPID: %a@." Metrics.pp_report report;
  (* The same network under Random replication, for contrast. *)
  let baseline =
    (Engine.run
       ~options:{ Engine.default_options with buffer_bytes = Some 65_536 }
       ~protocol:(Rapid_routing.Random_protocol.make ())
       ~trace ~workload ())
      .Engine.report
  in
  Format.printf "Random: %a@." Metrics.pp_report baseline
