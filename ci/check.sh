#!/bin/sh
# Repository check: build everything, run the test suites, and (when the
# formatter is installed) verify formatting. Run from the repo root:
#
#   sh ci/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune fmt =="
  dune build @fmt
else
  echo "== dune fmt skipped (ocamlformat not installed) =="
fi

# Bench smoke: one quick artifact end to end, then hard-validate the
# BENCH.json schema (parse + hot-path counter/timer keys) and compare
# artifact wall times against the committed BENCH.baseline.json — a >25%
# regression prints WARN (set RAPID_BENCH_STRICT=1 to make it fail).
echo "== bench smoke =="
BENCH_SMOKE_OUT="${TMPDIR:-/tmp}/rapid_bench_smoke.json"
RAPID_BENCH_OUT="$BENCH_SMOKE_OUT" dune exec bench/main.exe -- table3 >/dev/null
dune exec bench/check_bench.exe -- "$BENCH_SMOKE_OUT" BENCH.baseline.json

# ILP smoke: the full fig13 grid must close every instance to proven
# optimality with the pinned golden objective on the load 2.0 / day 1
# slice (see bench/ilp_smoke.ml). RAPID_BENCH_STRICT=1 additionally
# hard-fails unless the sparse simplex's instrumentation is live:
# lp.refactorizations, lp.eta_updates and both lp.presolve_*_removed
# counters must be nonzero across the grid.
echo "== ilp smoke =="
RAPID_BENCH_STRICT=1 dune exec bench/ilp_smoke.exe

# Parallel determinism smoke: the same figure with --jobs 2 and --jobs 4
# must be byte-identical to the sequential run (the Rapid_par contract),
# and the sequential run must match a pinned golden hash — buffer/send-
# queue rewrites must keep reports byte-identical; any deliberate output
# change (e.g. new counters in the JSON) retunes this hash on purpose.
echo "== parallel determinism smoke =="
FIG_SEQ="${TMPDIR:-/tmp}/rapid_fig3_seq.json"
FIG_PAR="${TMPDIR:-/tmp}/rapid_fig3_par.json"
FIG_PAR4="${TMPDIR:-/tmp}/rapid_fig3_par4.json"
dune exec bin/main.exe -- figure -i fig3 --json "$FIG_SEQ" >/dev/null
dune exec bin/main.exe -- figure -i fig3 --jobs 2 --json "$FIG_PAR" >/dev/null
dune exec bin/main.exe -- figure -i fig3 --jobs 4 --json "$FIG_PAR4" >/dev/null
cmp "$FIG_SEQ" "$FIG_PAR"
cmp "$FIG_SEQ" "$FIG_PAR4"
# retuned for the four lp.* counters the sparse-simplex rewrite adds to
# the counter block (reports members are untouched; the per-protocol MD5
# goldens below prove it)
FIG3_GOLDEN="b671b7157d5670b75db56a8b3f59a05e8f2a073cecf1b11c019cce65555dda34"
FIG3_HASH="$(sha256sum "$FIG_SEQ" | cut -d' ' -f1)"
if [ "$FIG3_HASH" != "$FIG3_GOLDEN" ]; then
  echo "fig3 report hash mismatch: $FIG3_HASH != $FIG3_GOLDEN" >&2
  exit 1
fi

# Protocol report goldens: every protocol/metric/load cell of the core
# comparison, pinned by MD5 of the run's "reports" JSON member. The hot
# paths behind these runs (believed-rate caching, positional indexes,
# flat plan scoring, delta dedup) are all exact rewrites — a drifting
# hash here means an "optimization" changed routing behavior. Only the
# reports member is hashed, so adding counters/instrumentation does not
# retune these; the fig3 hash above pins the full JSON.
echo "== protocol report goldens =="
RAPID_BIN="./_build/default/bin/main.exe"
JSON_MEMBER_BIN="./_build/default/bench/json_member.exe"
PROTO_OUT="${TMPDIR:-/tmp}/rapid_proto_golden.json"
check_proto() {
  proto="$1"; metric="$2"; load="$3"; want="$4"
  "$RAPID_BIN" run --protocol "$proto" --metric "$metric" --load "$load" \
    --json "$PROTO_OUT" >/dev/null
  got="$("$JSON_MEMBER_BIN" "$PROTO_OUT" reports | md5sum | cut -d' ' -f1)"
  if [ "$got" != "$want" ]; then
    echo "report golden mismatch: $proto/$metric/load=$load: $got != $want" >&2
    exit 1
  fi
}
check_proto rapid        avg 2 d37c5341580264d3181d64627c09c503
check_proto rapid-global avg 2 02dcc5902850b68f4ab4e44c86f62ac0
check_proto rapid-local  avg 2 65c3004adbdfaf69c1b4cddd8faaacbb
check_proto maxprop      avg 2 9efbf2868e4d7db7e852571f96a78add
check_proto spraywait    avg 2 d838e042f08d09197966c3ff1950f337
check_proto prophet      avg 2 907494843160b8813f9ff27a0ff603ff
check_proto random       avg 2 562073e36a3e0f76a3cc393a384d9588
check_proto random-acks  avg 2 e85a11e5f6d7db9bd11d25e2f1c87eba
check_proto epidemic     avg 2 baaeadf39d8b2ac1959ea25ed7e4907e
check_proto direct       avg 2 efd9df0f3b66c730427bb14ee4b63d16
check_proto rapid        avg 4 2e0d1f2c1a9ebc70a652409948feb1ea
check_proto rapid-global avg 4 41754bd39ff59d7df3393e708bcfa704
check_proto rapid-local  avg 4 666448a3071955f2630e1413172f4d95
check_proto maxprop      avg 4 20f855d1c0eba6306fec38a837a4b94a
check_proto spraywait    avg 4 a9067e10148f68f76179a5e3aeca8b26
check_proto prophet      avg 4 aa70da4defa86dfced85819821313116
check_proto random       avg 4 9cf35c677b0cc4558d8350737cd95d0a
check_proto random-acks  avg 4 fb889ae15b621511ad1bd6c4a99808c4
check_proto epidemic     avg 4 c4355abcaaf4910713cac37034fd59a5
check_proto direct       avg 4 4b5c33c86d2c7fcfb59e542878c3b9bf
check_proto rapid max      2 9abdef2a27caadece73f918c9e87447c
check_proto rapid deadline 2 59d370a22d5f880fca9c417ec74c5b45

# Fault-injection smoke: three contracts of lib/faults.
#   1. All-zero fault rates are the plain engine, byte for byte.
#   2. A faulted run is byte-identical across --jobs widths (the fault
#      plan is pre-drawn from (spec seed, run seed, trace)).
#   3. The faulted report matches a pinned golden hash — any change to
#      the fault stream or its engine plumbing must retune this on
#      purpose, not by accident.
echo "== fault injection smoke =="
FAULT_PLAIN="${TMPDIR:-/tmp}/rapid_faults_plain.json"
FAULT_ZERO="${TMPDIR:-/tmp}/rapid_faults_zero.json"
FAULT_SEQ="${TMPDIR:-/tmp}/rapid_faults_seq.json"
FAULT_PAR="${TMPDIR:-/tmp}/rapid_faults_par.json"
FAULT_SPEC="reboots=1,truncate=0.2,metaloss=0.2,noshow=0.1,seed=7"
dune exec bin/main.exe -- run --load 2 --json "$FAULT_PLAIN" >/dev/null
dune exec bin/main.exe -- run --load 2 --faults "seed=7" --json "$FAULT_ZERO" >/dev/null
cmp "$FAULT_PLAIN" "$FAULT_ZERO"
dune exec bin/main.exe -- run --load 2 --faults "$FAULT_SPEC" --json "$FAULT_SEQ" >/dev/null
dune exec bin/main.exe -- run --load 2 --faults "$FAULT_SPEC" --jobs 4 --json "$FAULT_PAR" >/dev/null
cmp "$FAULT_SEQ" "$FAULT_PAR"
# retuned for the lp.* counter keys (see FIG3_GOLDEN above); the
# zero-fault and cross-jobs byte-compares prove the fault stream itself
# is untouched
FAULT_GOLDEN="925c752ce572dfb352b4fb744b11a1353ee485bc8dece130658a87d896db8d8f"
FAULT_HASH="$(sha256sum "$FAULT_SEQ" | cut -d' ' -f1)"
if [ "$FAULT_HASH" != "$FAULT_GOLDEN" ]; then
  echo "faulted report hash mismatch: $FAULT_HASH != $FAULT_GOLDEN" >&2
  exit 1
fi

# Point-store smoke: four contracts of lib/store via the CLI.
#   1. A warm --cache-dir rerun's artifact is byte-identical to the cold
#      run's (the full JSON differs only in live engine counters, so the
#      comparison extracts the "artifact" member).
#   2. The warm run is served from the store: store.hits > 0 and
#      warm wall-time < 25% of cold.
#   3. A manually corrupted cell degrades to a recompute — the rerun
#      still succeeds, still byte-matches, and counts corrupt_cells=1.
#   4. An uncached run is unaffected (the fig3 golden hash above already
#      pins that: store counters only register once a store is opened).
echo "== point store smoke =="
STORE_DIR="${TMPDIR:-/tmp}/rapid_store_smoke"
FIG_COLD="${TMPDIR:-/tmp}/rapid_fig3_cold.json"
FIG_WARM="${TMPDIR:-/tmp}/rapid_fig3_warm.json"
FIG_REPAIR="${TMPDIR:-/tmp}/rapid_fig3_repair.json"
STORE_OUT="${TMPDIR:-/tmp}/rapid_store_smoke_out.txt"
rm -rf "$STORE_DIR"
RAPID="./_build/default/bin/main.exe"
JSON_MEMBER="./_build/default/bench/json_member.exe"
COLD_T0=$(date +%s%N)
"$RAPID" figure -i fig3 --cache-dir "$STORE_DIR" --json "$FIG_COLD" > "$STORE_OUT"
COLD_T1=$(date +%s%N)
grep -E "store: hits=0 misses=[1-9][0-9]* writes=[1-9][0-9]* corrupt_cells=0" "$STORE_OUT" >/dev/null
WARM_T0=$(date +%s%N)
"$RAPID" figure -i fig3 --cache-dir "$STORE_DIR" --json "$FIG_WARM" > "$STORE_OUT"
WARM_T1=$(date +%s%N)
grep -E "store: hits=[1-9][0-9]* misses=0 writes=0 corrupt_cells=0" "$STORE_OUT" >/dev/null
"$JSON_MEMBER" "$FIG_COLD" artifact > "$FIG_COLD.artifact"
"$JSON_MEMBER" "$FIG_WARM" artifact > "$FIG_WARM.artifact"
cmp "$FIG_COLD.artifact" "$FIG_WARM.artifact"
COLD_NS=$((COLD_T1 - COLD_T0))
WARM_NS=$((WARM_T1 - WARM_T0))
if [ $((WARM_NS * 4)) -ge "$COLD_NS" ]; then
  echo "warm rerun not fast enough: ${WARM_NS}ns vs cold ${COLD_NS}ns" >&2
  exit 1
fi
# Corrupt one cell and rerun: recomputed, repaired, still byte-identical.
CELL="$(find "$STORE_DIR" -name '*.json' | sort | head -n 1)"
printf 'garbage' > "$CELL"
"$RAPID" figure -i fig3 --cache-dir "$STORE_DIR" --json "$FIG_REPAIR" > "$STORE_OUT" 2>/dev/null
grep -E "store: hits=[1-9][0-9]* misses=1 writes=1 corrupt_cells=1" "$STORE_OUT" >/dev/null
"$JSON_MEMBER" "$FIG_REPAIR" artifact > "$FIG_REPAIR.artifact"
cmp "$FIG_COLD.artifact" "$FIG_REPAIR.artifact"
# The repair rewrote the cell, so one more run must be all hits again.
"$RAPID" figure -i fig3 --cache-dir "$STORE_DIR" > "$STORE_OUT"
grep -E "store: hits=[1-9][0-9]* misses=0 writes=0 corrupt_cells=0" "$STORE_OUT" >/dev/null
# cache subcommands: stats sees the cells, gc bounds the size, clear empties.
"$RAPID" cache stats --cache-dir "$STORE_DIR" | grep -E "cells +[1-9]" >/dev/null
"$RAPID" cache gc --cache-dir "$STORE_DIR" --max-bytes 1 >/dev/null
"$RAPID" cache stats --cache-dir "$STORE_DIR" | grep -E "cells +0" >/dev/null
# Unknown artifact ids exit 2 and list the valid ids.
if "$RAPID" figure -i nosuchfig 2> "$STORE_OUT"; then
  echo "unknown artifact id should fail" >&2
  exit 1
else
  [ $? -eq 2 ]
fi
grep "fig3" "$STORE_OUT" >/dev/null

echo "All checks passed."
