#!/bin/sh
# Repository check: build everything, run the test suites, and (when the
# formatter is installed) verify formatting. Run from the repo root:
#
#   sh ci/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune fmt =="
  dune build @fmt
else
  echo "== dune fmt skipped (ocamlformat not installed) =="
fi

# Bench smoke: one quick artifact end to end, then hard-validate the
# BENCH.json schema (parse + hot-path counter/timer keys). Perf numbers
# are printed for eyeballing only — regressions are diffed across
# commits, never gated here.
echo "== bench smoke =="
BENCH_SMOKE_OUT="${TMPDIR:-/tmp}/rapid_bench_smoke.json"
RAPID_BENCH_OUT="$BENCH_SMOKE_OUT" dune exec bench/main.exe -- table3 >/dev/null
dune exec bench/check_bench.exe -- "$BENCH_SMOKE_OUT"

# ILP smoke: a fig13 day slice the seed solver could not close must solve
# to proven optimality with the golden objective (see bench/ilp_smoke.ml).
echo "== ilp smoke =="
dune exec bench/ilp_smoke.exe

# Parallel determinism smoke: the same figure with --jobs 2 must be
# byte-identical to the sequential run (the Rapid_par contract).
echo "== parallel determinism smoke =="
FIG_SEQ="${TMPDIR:-/tmp}/rapid_fig3_seq.json"
FIG_PAR="${TMPDIR:-/tmp}/rapid_fig3_par.json"
dune exec bin/main.exe -- figure -i fig3 --json "$FIG_SEQ" >/dev/null
dune exec bin/main.exe -- figure -i fig3 --jobs 2 --json "$FIG_PAR" >/dev/null
cmp "$FIG_SEQ" "$FIG_PAR"

# Fault-injection smoke: three contracts of lib/faults.
#   1. All-zero fault rates are the plain engine, byte for byte.
#   2. A faulted run is byte-identical across --jobs widths (the fault
#      plan is pre-drawn from (spec seed, run seed, trace)).
#   3. The faulted report matches a pinned golden hash — any change to
#      the fault stream or its engine plumbing must retune this on
#      purpose, not by accident.
echo "== fault injection smoke =="
FAULT_PLAIN="${TMPDIR:-/tmp}/rapid_faults_plain.json"
FAULT_ZERO="${TMPDIR:-/tmp}/rapid_faults_zero.json"
FAULT_SEQ="${TMPDIR:-/tmp}/rapid_faults_seq.json"
FAULT_PAR="${TMPDIR:-/tmp}/rapid_faults_par.json"
FAULT_SPEC="reboots=1,truncate=0.2,metaloss=0.2,noshow=0.1,seed=7"
dune exec bin/main.exe -- run --load 2 --json "$FAULT_PLAIN" >/dev/null
dune exec bin/main.exe -- run --load 2 --faults "seed=7" --json "$FAULT_ZERO" >/dev/null
cmp "$FAULT_PLAIN" "$FAULT_ZERO"
dune exec bin/main.exe -- run --load 2 --faults "$FAULT_SPEC" --json "$FAULT_SEQ" >/dev/null
dune exec bin/main.exe -- run --load 2 --faults "$FAULT_SPEC" --jobs 4 --json "$FAULT_PAR" >/dev/null
cmp "$FAULT_SEQ" "$FAULT_PAR"
FAULT_GOLDEN="5754a0de7e8d38599bf983b5a50a38d747ca8501518d4b5d85cb0b53f5392cb8"
FAULT_HASH="$(sha256sum "$FAULT_SEQ" | cut -d' ' -f1)"
if [ "$FAULT_HASH" != "$FAULT_GOLDEN" ]; then
  echo "faulted report hash mismatch: $FAULT_HASH != $FAULT_GOLDEN" >&2
  exit 1
fi

echo "All checks passed."
