#!/bin/sh
# Repository check: build everything, run the test suites, and (when the
# formatter is installed) verify formatting. Run from the repo root:
#
#   sh ci/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune fmt =="
  dune build @fmt
else
  echo "== dune fmt skipped (ocamlformat not installed) =="
fi

echo "All checks passed."
