#!/bin/sh
# Repository check: build everything, run the test suites, and (when the
# formatter is installed) verify formatting. Run from the repo root:
#
#   sh ci/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune fmt =="
  dune build @fmt
else
  echo "== dune fmt skipped (ocamlformat not installed) =="
fi

# Bench smoke: one quick artifact end to end, then hard-validate the
# BENCH.json schema (parse + hot-path counter/timer keys). Perf numbers
# are printed for eyeballing only — regressions are diffed across
# commits, never gated here.
echo "== bench smoke =="
BENCH_SMOKE_OUT="${TMPDIR:-/tmp}/rapid_bench_smoke.json"
RAPID_BENCH_OUT="$BENCH_SMOKE_OUT" dune exec bench/main.exe -- table3 >/dev/null
dune exec bench/check_bench.exe -- "$BENCH_SMOKE_OUT"

# ILP smoke: a fig13 day slice the seed solver could not close must solve
# to proven optimality with the golden objective (see bench/ilp_smoke.ml).
echo "== ilp smoke =="
dune exec bench/ilp_smoke.exe

# Parallel determinism smoke: the same figure with --jobs 2 must be
# byte-identical to the sequential run (the Rapid_par contract).
echo "== parallel determinism smoke =="
FIG_SEQ="${TMPDIR:-/tmp}/rapid_fig3_seq.json"
FIG_PAR="${TMPDIR:-/tmp}/rapid_fig3_par.json"
dune exec bin/main.exe -- figure -i fig3 --json "$FIG_SEQ" >/dev/null
dune exec bin/main.exe -- figure -i fig3 --jobs 2 --json "$FIG_PAR" >/dev/null
cmp "$FIG_SEQ" "$FIG_PAR"

echo "All checks passed."
