(** Ablation study for the design choices DESIGN.md calls out (not a paper
    figure): each RAPID knob is varied in isolation on the trace scenario
    at a moderate load, and the oracle single-copy forwarder (P2) is run
    for contrast.

    Knobs: transitive meeting-estimate depth h (1/2/3), acknowledgments
    on/off, in-band metadata self-cap (2/8/20%), and the control-channel
    mode (in-band / local-only / instant-global). *)

val run : Params.t -> string
(** Rendered table: variant, delivery rate, avg delay, within-deadline,
    metadata/data. *)
