(** Figure 15: fairness of RAPID's allocation to parallel flows (§6.2.5).

    20 / 30 packets are created simultaneously between random pairs on top
    of a heavy background load; the CDF of Jain's fairness index over the
    delays of each parallel batch is reported (index 1 = perfectly fair). *)

val fig15 : Params.t -> Series.t
