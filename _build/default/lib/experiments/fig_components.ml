open Rapid_sim
open Rapid_core

let fig14 (params : Params.t) =
  let variants =
    [
      Runners.random;
      Runners.random_acks;
      Runners.rapid_with ~label:"RAPID local"
        {
          (Rapid.default_params Metric.Average_delay) with
          Rapid.channel = Control_channel.Local_only;
        };
      Runners.rapid_with ~label:"RAPID" (Rapid.default_params Metric.Average_delay);
    ]
  in
  let lines =
    List.map
      (fun (p : Runners.protocol_spec) ->
        {
          Series.label = p.Runners.label;
          points =
            List.map
              (fun load ->
                let pt = Runners.run_trace_point ~params ~protocol:p ~load () in
                (load, Runners.mean_of pt (fun r -> r.Metrics.avg_delay /. 60.0)))
              params.Params.trace_loads;
        })
      variants
  in
  Series.make ~id:"fig14" ~title:"Trace: RAPID components (cumulative from Random)"
    ~x_label:"pkts/hr/dest" ~y_label:"avg delay (min)" lines
