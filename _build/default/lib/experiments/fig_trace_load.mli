(** Figures 4–7: trace-driven comparison of RAPID, MaxProp, Spray-and-Wait
    and Random across loads (packets/hour/destination).

    - Fig. 4: average delay of delivered packets (RAPID metric = Eq. 1);
    - Fig. 5: delivery rate (same runs as Fig. 4);
    - Fig. 6: maximum delay (RAPID metric = Eq. 3);
    - Fig. 7: fraction delivered within the deadline (RAPID metric = Eq. 2). *)

val fig4 : Params.t -> Series.t
val fig5 : Params.t -> Series.t
val fig6 : Params.t -> Series.t
val fig7 : Params.t -> Series.t

val fig4_and_5 : Params.t -> Series.t * Series.t
(** One pass producing both (they share runs in the paper too). *)
