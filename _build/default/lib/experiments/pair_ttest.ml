open Rapid_prelude
open Rapid_sim

type result = {
  pairs : int;
  mean_a : float;
  mean_b : float;
  t : Stats.t_test;
}

(* Mean delay per (src, dst) pair pooled across a point's days. *)
let pair_means (point : Runners.point) =
  let tbl : (int * int, float list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (r : Metrics.report) ->
      Array.iter
        (fun (key, delays) ->
          if Array.length delays > 0 then begin
            let cell =
              match Hashtbl.find_opt tbl key with
              | Some c -> c
              | None ->
                  let c = ref [] in
                  Hashtbl.replace tbl key c;
                  c
            in
            cell := Array.to_list delays @ !cell
          end)
        r.Metrics.pair_delays)
    point;
  tbl

let compare_protocols ~params ~a ~b ~load =
  let pa = pair_means (Runners.run_trace_point ~params ~protocol:a ~load ()) in
  let pb = pair_means (Runners.run_trace_point ~params ~protocol:b ~load ()) in
  let paired =
    Hashtbl.fold
      (fun key da acc ->
        match Hashtbl.find_opt pb key with
        | Some db -> (Stats.mean !da, Stats.mean !db) :: acc
        | None -> acc)
      pa []
  in
  if List.length paired < 2 then None
  else begin
    let xs = Array.of_list (List.map fst paired) in
    let ys = Array.of_list (List.map snd paired) in
    Some
      {
        pairs = Array.length xs;
        mean_a = (Stats.summarize_array xs).Stats.mean;
        mean_b = (Stats.summarize_array ys).Stats.mean;
        t = Stats.paired_t_test xs ys;
      }
  end

let render ~a_label ~b_label ~load = function
  | None ->
      Printf.sprintf
        "paired t-test %s vs %s at load %g: not enough common pairs\n" a_label
        b_label load
  | Some r ->
      Printf.sprintf
        "paired t-test over %d (src,dst) pairs at load %g:\n\
        \  %-12s mean pair delay %8.1f s\n\
        \  %-12s mean pair delay %8.1f s\n\
        \  t = %.3f (df %.0f), two-sided p = %.2g -> %s\n"
        r.pairs load a_label r.mean_a b_label r.mean_b r.t.Stats.t_stat
        r.t.Stats.df r.t.Stats.p_value
        (if r.t.Stats.p_value < 0.05 then "difference is significant"
         else "difference is not significant")
