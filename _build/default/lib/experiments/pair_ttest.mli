(** The paper's statistical comparison (§6.2.1): "we performed a paired
    t-test to compare the average delay of every source-destination pair
    using rapid to the average delay of the same source-destination pair
    using MaxProp ... we found p-values always less than 0.0005".

    Two protocols are run over the same trace days and workloads; each
    (src, dst) pair delivered by both contributes one paired observation
    (its mean delay under each protocol), and the two-sided paired t-test
    decides whether the difference in means is significant. *)

type result = {
  pairs : int;  (** Paired (src, dst) observations. *)
  mean_a : float;  (** Mean per-pair delay under protocol A, seconds. *)
  mean_b : float;
  t : Rapid_prelude.Stats.t_test;
}

val compare_protocols :
  params:Params.t ->
  a:Runners.protocol_spec ->
  b:Runners.protocol_spec ->
  load:float ->
  result option
(** [None] when fewer than two pairs were delivered by both protocols. *)

val render :
  a_label:string -> b_label:string -> load:float -> result option -> string
