type profile = Quick | Full

type t = {
  profile : profile;
  dieselnet : Rapid_trace.Dieselnet.params;
  days : int;
  trace_loads : float list;
  trace_packet_bytes : int;
  trace_deadline : float;
  trace_buffer_bytes : int option;
  syn_nodes : int;
  syn_duration : float;
  syn_mean_inter_meeting : float;
  syn_opportunity_bytes : int;
  syn_buffer_bytes : int;
  syn_packet_bytes : int;
  syn_deadline : float;
  syn_loads : float list;
  syn_buffers : int list;
  syn_runs : int;
  base_seed : int;
}

(* The quick trace keeps DieselNet's structure (route-skewed meetings,
   variable opportunity sizes, per-day scheduling) at roughly 1/10 of the
   simulation cost: ~10 scheduled buses over 6-hour days. Meeting counts
   and capacity are scaled so a pair still meets about once per day and a
   contact still carries ~1.8 MB on average. *)
let quick_dieselnet =
  {
    Rapid_trace.Dieselnet.fleet_size = 40;
    mean_scheduled = 10;
    num_routes = 6;
    day_seconds = 6.0 *. 3600.0;
    (* Meetings kept dense enough that carriers have real routing choices
       (a pair meets ~3x/day, as in the deployment), while per-contact
       capacity is scaled with the workload so bandwidth binds at the top
       loads, reproducing Fig. 9's bottleneck links. *)
    meetings_per_day = 150.0;
    mean_contact_bytes = 120e3;
  }

let quick =
  {
    profile = Quick;
    dieselnet = quick_dieselnet;
    days = 4;
    trace_loads = [ 2.0; 6.0; 12.0; 20.0; 30.0; 40.0 ];
    trace_packet_bytes = 1024;
    trace_deadline = 2.7 *. 3600.0 /. 3.0;
    (* deadline scaled with the 19h -> 6h day *)
    trace_buffer_bytes = None;
    syn_nodes = 20;
    syn_duration = 900.0;
    syn_mean_inter_meeting = 120.0;
    syn_opportunity_bytes = 102_400;
    syn_buffer_bytes = 102_400;
    syn_packet_bytes = 1024;
    syn_deadline = 20.0;
    syn_loads = [ 10.0; 20.0; 40.0; 60.0 ];
    syn_buffers = [ 10_240; 61_440; 143_360; 286_720 ];
    syn_runs = 2;
    base_seed = 42;
  }

let full =
  {
    quick with
    profile = Full;
    dieselnet = Rapid_trace.Dieselnet.default_params;
    days = 58;
    trace_loads = [ 1.0; 5.0; 10.0; 15.0; 20.0; 25.0; 30.0; 35.0; 40.0 ];
    trace_deadline = 2.7 *. 3600.0;
    syn_loads = [ 10.0; 20.0; 30.0; 40.0; 50.0; 60.0; 70.0; 80.0 ];
    syn_runs = 10;
  }

let get = function Quick -> quick | Full -> full

let syn_pair_rate_per_hour t load_per_50s_per_dest =
  (* load/50s arriving at one destination, spread over (n-1) sources: each
     ordered pair generates load/(n-1) packets per 50 s. *)
  load_per_50s_per_dest /. float_of_int (t.syn_nodes - 1) *. (3600.0 /. 50.0)
