(** Figures 16–24: synthetic-mobility comparisons (Table 4 parameters).

    Power-law mobility, increasing load: Fig. 16 (avg delay, Eq. 1),
    Fig. 17 (max delay, Eq. 3), Fig. 18 (delivered within deadline, Eq. 2).

    Power-law mobility, varying per-node buffer at fixed load:
    Fig. 19 (avg delay), Fig. 20 (max delay), Fig. 21 (within deadline).

    Exponential mobility, increasing load: Figs. 22–24 (same metrics).

    RAPID runs with the metric matching each figure; the incidental
    baselines (MaxProp, Spray-and-Wait, Random) are metric-agnostic. *)

val fig16 : Params.t -> Series.t
val fig17 : Params.t -> Series.t
val fig18 : Params.t -> Series.t
val fig19 : Params.t -> Series.t
val fig20 : Params.t -> Series.t
val fig21 : Params.t -> Series.t
val fig22 : Params.t -> Series.t
val fig23 : Params.t -> Series.t
val fig24 : Params.t -> Series.t
