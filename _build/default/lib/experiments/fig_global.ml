open Rapid_sim
open Rapid_core

let channels metric =
  [
    ( "in-band",
      Runners.rapid_with ~label:"in-band" (Rapid.default_params metric) );
    ( "global",
      Runners.rapid_with ~label:"global"
        {
          (Rapid.default_params metric) with
          Rapid.channel = Control_channel.Instant_global;
        } );
  ]

let sweep ~params ~metric ~extract =
  List.map
    (fun (label, protocol) ->
      let points =
        List.map
          (fun load ->
            let point = Runners.run_trace_point ~params ~protocol ~load () in
            (load, Runners.mean_of point extract))
          params.Params.trace_loads
      in
      { Series.label; points })
    (channels metric)

let fig10 params =
  Series.make ~id:"fig10" ~title:"Trace: avg delay, in-band vs instant global"
    ~x_label:"pkts/hr/dest" ~y_label:"avg delay (min)"
    (sweep ~params ~metric:Metric.Average_delay
       ~extract:(fun r -> r.Metrics.avg_delay /. 60.0))

let fig11 params =
  Series.make ~id:"fig11" ~title:"Trace: delivery rate, in-band vs global"
    ~x_label:"pkts/hr/dest" ~y_label:"fraction delivered"
    (sweep ~params ~metric:Metric.Average_delay
       ~extract:(fun r -> r.Metrics.delivery_rate))

let fig12 params =
  Series.make ~id:"fig12" ~title:"Trace: within-deadline, in-band vs global"
    ~x_label:"pkts/hr/dest" ~y_label:"fraction within deadline"
    (sweep ~params ~metric:Metric.Missed_deadlines
       ~extract:(fun r -> r.Metrics.within_deadline_rate))
