open Rapid_sim

let sweep ~params ~metric ~extract =
  let protocols = Runners.comparison_set metric in
  List.map
    (fun (p : Runners.protocol_spec) ->
      let points =
        List.map
          (fun load ->
            let point = Runners.run_trace_point ~params ~protocol:p ~load () in
            (load, Runners.mean_of point extract))
          params.Params.trace_loads
      in
      { Series.label = p.Runners.label; points })
    protocols

let minutes s = s /. 60.0

let fig4_and_5 params =
  let protocols = Runners.comparison_set Rapid_core.Metric.Average_delay in
  let runs =
    List.map
      (fun (p : Runners.protocol_spec) ->
        ( p.Runners.label,
          List.map
            (fun load ->
              (load, Runners.run_trace_point ~params ~protocol:p ~load ()))
            params.Params.trace_loads ))
      protocols
  in
  let line extract (label, pts) =
    {
      Series.label;
      points = List.map (fun (load, pt) -> (load, Runners.mean_of pt extract)) pts;
    }
  in
  let fig4 =
    Series.make ~id:"fig4" ~title:"Trace: average delay vs load"
      ~x_label:"pkts/hr/dest" ~y_label:"avg delay (min)"
      (List.map (line (fun r -> minutes r.Metrics.avg_delay)) runs)
  in
  let fig5 =
    Series.make ~id:"fig5" ~title:"Trace: delivery rate vs load"
      ~x_label:"pkts/hr/dest" ~y_label:"fraction delivered"
      (List.map (line (fun r -> r.Metrics.delivery_rate)) runs)
  in
  (fig4, fig5)

let fig4 params = fst (fig4_and_5 params)
let fig5 params = snd (fig4_and_5 params)

let fig6 params =
  Series.make ~id:"fig6" ~title:"Trace: max delay vs load"
    ~x_label:"pkts/hr/dest" ~y_label:"max delay (min)"
    (sweep ~params ~metric:Rapid_core.Metric.Maximum_delay
       ~extract:(fun r -> minutes r.Metrics.max_delay))

let fig7 params =
  Series.make ~id:"fig7" ~title:"Trace: delivery within deadline vs load"
    ~x_label:"pkts/hr/dest" ~y_label:"fraction within deadline"
    (sweep ~params ~metric:Rapid_core.Metric.Missed_deadlines
       ~extract:(fun r -> r.Metrics.within_deadline_rate))
