(** Figures 10–12: the default delayed in-band control channel versus an
    instant global (oracle / hybrid-DTN) channel, on the trace.

    - Fig. 10: average delay (metric = Eq. 1);
    - Fig. 11: delivery rate (same runs);
    - Fig. 12: fraction delivered within deadline (metric = Eq. 2). *)

val fig10 : Params.t -> Series.t
val fig11 : Params.t -> Series.t
val fig12 : Params.t -> Series.t
