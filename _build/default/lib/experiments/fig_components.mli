(** Figure 14: value of each RAPID component, cumulatively from Random
    (§6.2.6): Random, Random with flooded acks, RAPID-local (metadata about
    the node's own buffer only), and full RAPID, on the trace, metric =
    average delay. *)

val fig14 : Params.t -> Series.t
