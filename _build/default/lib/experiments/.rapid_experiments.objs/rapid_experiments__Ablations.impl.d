lib/experiments/ablations.ml: Control_channel Engine List Metric Metrics Params Printf Rapid Rapid_core Rapid_routing Rapid_sim Runners Stdlib
