lib/experiments/deployment.ml: Array Dieselnet Engine List Metric Metrics Params Printf Rapid Rapid_core Rapid_prelude Rapid_sim Rapid_trace Rng Runners Series Stats String Trace
