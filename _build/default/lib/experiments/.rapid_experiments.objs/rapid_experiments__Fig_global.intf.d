lib/experiments/fig_global.mli: Params Series
