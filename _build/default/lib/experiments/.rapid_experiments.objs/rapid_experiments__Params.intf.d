lib/experiments/params.mli: Rapid_trace
