lib/experiments/fig_synthetic.mli: Params Series
