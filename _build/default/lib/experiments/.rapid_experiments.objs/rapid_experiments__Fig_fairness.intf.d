lib/experiments/fig_fairness.mli: Params Series
