lib/experiments/fig_global.ml: Control_channel List Metric Metrics Params Rapid Rapid_core Rapid_sim Runners Series
