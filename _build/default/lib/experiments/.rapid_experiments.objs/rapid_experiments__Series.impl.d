lib/experiments/series.ml: Buffer Format List Printf String
