lib/experiments/fig_fairness.ml: Array Engine Float List Metric Metrics Option Params Printf Rapid Rapid_core Rapid_prelude Rapid_sim Rapid_trace Rng Runners Series Stats Trace Workload
