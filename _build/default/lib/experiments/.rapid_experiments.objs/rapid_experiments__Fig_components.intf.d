lib/experiments/fig_components.mli: Params Series
