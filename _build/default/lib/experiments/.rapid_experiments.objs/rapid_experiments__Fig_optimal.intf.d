lib/experiments/fig_optimal.mli: Params Series
