lib/experiments/catalog.mli: Params
