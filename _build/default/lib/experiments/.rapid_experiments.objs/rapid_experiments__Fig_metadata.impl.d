lib/experiments/fig_metadata.ml: List Metrics Params Printf Rapid_core Rapid_sim Runners Series
