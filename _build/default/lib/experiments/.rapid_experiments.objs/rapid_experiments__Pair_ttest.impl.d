lib/experiments/pair_ttest.ml: Array Hashtbl List Metrics Printf Rapid_prelude Rapid_sim Runners Stats
