lib/experiments/fig_trace_load.mli: Params Series
