lib/experiments/catalog.ml: Ablations Deployment Fig_components Fig_fairness Fig_global Fig_metadata Fig_optimal Fig_synthetic Fig_trace_load List Params Printf Rapid_trace Series String
