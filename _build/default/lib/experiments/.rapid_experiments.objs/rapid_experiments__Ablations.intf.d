lib/experiments/ablations.mli: Params
