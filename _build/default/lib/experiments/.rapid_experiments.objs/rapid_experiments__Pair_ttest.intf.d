lib/experiments/pair_ttest.mli: Params Rapid_prelude Runners
