lib/experiments/fig_optimal.ml: Array Contact Control_channel Engine List Metric Metrics Params Printf Rapid Rapid_core Rapid_prelude Rapid_routing Rapid_sim Rapid_trace Runners Series Trace
