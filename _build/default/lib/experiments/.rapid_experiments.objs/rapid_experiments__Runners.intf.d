lib/experiments/runners.mli: Params Rapid_core Rapid_sim Rapid_trace
