lib/experiments/params.ml: Rapid_trace
