lib/experiments/deployment.mli: Params Series
