lib/experiments/fig_trace_load.ml: List Metrics Params Rapid_core Rapid_sim Runners Series
