lib/experiments/fig_metadata.mli: Params Series
