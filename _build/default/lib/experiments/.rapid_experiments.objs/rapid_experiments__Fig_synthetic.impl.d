lib/experiments/fig_synthetic.ml: Hashtbl List Metric Metrics Params Rapid_core Rapid_sim Runners Series
