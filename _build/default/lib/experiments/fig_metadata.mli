(** Figures 8–9: control-channel cost/benefit on the trace.

    - Fig. 8: average delay as the metadata budget is capped at a fraction
      of each transfer opportunity (0–35%), for three loads — performance
      improves as the cap is lifted (§6.2.2);
    - Fig. 9: pushing the load up, channel utilization, delivery rate and
      metadata-to-data ratio per load — the network stays under-utilized
      while delivery drops (bottleneck links). *)

val fig8 : Params.t -> Series.t
val fig9 : Params.t -> Series.t
