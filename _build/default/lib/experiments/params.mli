(** Experiment parameterization (the paper's Table 4) with two profiles.

    The paper's full evaluation replays 58 DieselNet days, 10–30 runs per
    point, loads to 40 packets/hour/destination (up to ~260k packets per
    simulated day at the top end). That is hours of CPU; the [Quick]
    profile (the default for `bench/main.exe`) reproduces every figure's
    shape on a scaled trace — fewer scheduled buses, shorter days, fewer
    replications — while [Full] approaches the paper's scale. Either way
    the workload model, protocols, and metrics are identical; only trace
    scale and repetition counts change. *)

type profile = Quick | Full

type t = {
  profile : profile;
  (* Trace-driven experiments (Figs. 4–15, Table 3, Fig. 3). *)
  dieselnet : Rapid_trace.Dieselnet.params;
  days : int;  (** Trace days averaged per point (paper: 58). *)
  trace_loads : float list;  (** Packets/hour/destination (paper: 1–40). *)
  trace_packet_bytes : int;  (** Paper: 1 KB. *)
  trace_deadline : float;  (** Paper: 2.7 h. *)
  trace_buffer_bytes : int option;  (** Paper: 40 GB, i.e. effectively none. *)
  (* Synthetic-mobility experiments (Figs. 16–24), Table 4 column 1. *)
  syn_nodes : int;
  syn_duration : float;
  syn_mean_inter_meeting : float;
  syn_opportunity_bytes : int;
  syn_buffer_bytes : int;
  syn_packet_bytes : int;
  syn_deadline : float;
  syn_loads : float list;  (** Packets per 50 s per destination (10–80). *)
  syn_buffers : int list;  (** Buffer sweep for Figs. 19–21 (10–280 KB). *)
  syn_runs : int;  (** Seeds averaged per point (paper: 10). *)
  base_seed : int;
}

val get : profile -> t

val syn_pair_rate_per_hour : t -> float -> float
(** Convert a Table-4 load (packets per 50 s per destination) into this
    workload generator's packets/hour per ordered (src, dst) pair. *)
