(** Table 3 and Figure 3: the deployment emulation and simulator
    validation.

    Table 3 reports the deployment's average daily statistics at the
    default load of 4 packets/hour/destination; we reproduce the same rows
    from the deployment-noise runs (discovery/association losses and
    contact failures applied to the trace, DESIGN.md §4.2).

    Figure 3 compares per-day average delay of the "real" (noisy) system
    against the clean trace-driven simulator, and reports the relative gap
    (the paper finds the simulator within 1% of the deployment with 95%
    confidence; our noise layer removes ~15% of capacity, so expect a
    small but nonzero gap). *)

type table3 = {
  avg_buses_scheduled : float;
  avg_bytes_per_day : float;
  avg_meetings_per_day : float;
  delivery_rate : float;
  avg_delay_minutes : float;
  meta_over_bandwidth : float;
  meta_over_data : float;
}

val table3 : Params.t -> table3
val render_table3 : table3 -> string

val fig3 : Params.t -> Series.t
(** Lines "Real" (noisy deployment) and "Simulation" per day, plus a note
    with the mean relative difference and its 95% CI. *)
