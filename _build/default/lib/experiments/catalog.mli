(** Registry of every reproduced artifact, keyed by paper id ("fig4",
    "table3", ...), used by both the CLI and the bench harness. *)

type item = {
  id : string;
  title : string;
  run : Params.t -> string;  (** Render the paper-style rows/series. *)
}

val all : item list
(** In paper order: table3, fig3, fig4 ... fig24. *)

val find : string -> item option

val params_header : Params.t -> string
(** Table-4-style parameter banner printed before a batch of runs. *)
