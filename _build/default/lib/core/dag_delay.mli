(** Appendix C: delay estimation over the full dependency graph.

    Estimate-Delay (§4.1) ignores "non-vertical" dependencies between the
    delay distributions of packets buffered at different nodes. This module
    implements the idealized [dag_delay] procedure, which honours them:

    {v
    d'(p_j) = d(succ(p_j)) ⊕ e_node(p_j)      (e_n for queue heads)
    d(p)    = min_j d'(p_j)
    v}

    where ⊕ is distribution convolution and e_n is node n's meeting-delay
    distribution to the common destination. It assumes unit-sized transfer
    opportunities and packets (each meeting delivers exactly the queue
    head), exactly as in the appendix, and requires a global control
    channel — which is why RAPID's implementation uses Estimate-Delay
    instead; we provide both so the approximation gap is measurable
    ({!vertical_only} reproduces Estimate-Delay on the same inputs).

    Distribution grids come from the supplied meeting distributions (all
    must share one [dt]). Queues must be consistently ordered by a global
    key (the paper sorts every queue by time-since-creation), which
    guarantees the dependency graph is acyclic; a cycle raises
    [Invalid_argument]. *)

type queues = (int * string list) list
(** Per DTN node: the queue of packet labels destined to the common
    destination, head (next to be delivered) first. The same label in
    several queues denotes replicas. *)

val estimate :
  queues:queues ->
  meeting:(int -> Rapid_prelude.Dist.Discrete.t) ->
  string ->
  Rapid_prelude.Dist.Discrete.t
(** Full dependency-graph delay distribution of the labelled packet.
    [meeting n] is e_n. Raises [Not_found] for an unknown label. *)

val vertical_only :
  queues:queues ->
  meeting:(int -> Rapid_prelude.Dist.Discrete.t) ->
  string ->
  Rapid_prelude.Dist.Discrete.t
(** The Estimate-Delay approximation on the same inputs: a replica at
    position k (0-based) waits for k+1 independent meetings of its own
    node, i.e. d'(p_j) = e_n^{⊕(k+1)}; d(p) = min_j d'(p_j). *)
