lib/core/meeting_matrix.mli:
