lib/core/rapid.ml: Array Buffer Control_channel Env Estimate_delay Float Hashtbl Int List Meeting_matrix Metric Moving_average Option Packet Printf Protocol Ranking Rapid_prelude Rapid_sim Replica_db
