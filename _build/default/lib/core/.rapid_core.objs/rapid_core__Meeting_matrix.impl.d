lib/core/meeting_matrix.ml: Array Float Moving_average Rapid_prelude Stats
