lib/core/dag_delay.ml: Dist Hashtbl List Option Printf Rapid_prelude
