lib/core/replica_db.ml: Float Hashtbl Int List Option Packet Rapid_sim
