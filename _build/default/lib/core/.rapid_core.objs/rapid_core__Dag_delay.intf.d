lib/core/dag_delay.mli: Rapid_prelude
