lib/core/rapid.mli: Control_channel Metric Rapid_sim
