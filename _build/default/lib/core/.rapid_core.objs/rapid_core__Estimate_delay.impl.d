lib/core/estimate_delay.ml: Buffer Float List Packet Rapid_sim
