lib/core/replica_db.mli: Rapid_sim
