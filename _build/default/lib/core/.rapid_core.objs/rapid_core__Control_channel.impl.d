lib/core/control_channel.ml:
