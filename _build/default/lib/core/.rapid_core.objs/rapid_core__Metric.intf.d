lib/core/metric.mli:
