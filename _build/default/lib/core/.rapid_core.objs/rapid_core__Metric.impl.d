lib/core/metric.ml:
