lib/core/control_channel.mli:
