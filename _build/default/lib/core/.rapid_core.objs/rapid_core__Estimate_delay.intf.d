lib/core/estimate_delay.mli: Rapid_sim
