(** A node's view of where packet replicas live (§4.2).

    "For each encountered packet i, rapid maintains a list of nodes that
    carry the replica of i, and for each replica, an estimated time for
    direct delivery" — here represented by the holder's meeting count
    n_j(i) (its buffer position over its expected transfer size), which
    combined with the meeting matrix yields the direct-delivery estimate.

    Entries are timestamped so the in-band control channel can ship only
    what changed since the last exchange with a given peer, and so that a
    receiver merges only strictly fresher information (stale gossip never
    overwrites newer observations). *)

type holder = { n_meet : int; updated_at : float }

type entry = {
  packet : Rapid_sim.Packet.t;
  holder_id : int;
  holder : holder;
}

type t

val create : unit -> t

val set_holder :
  t -> packet:Rapid_sim.Packet.t -> holder_id:int -> n_meet:int -> now:float -> unit
(** First-hand knowledge: records/overwrites unconditionally. *)

val merge :
  t -> packet:Rapid_sim.Packet.t -> holder_id:int -> holder:holder -> bool
(** Gossip: applied only if strictly fresher than what is known; returns
    whether it was applied. *)

val remove_holder : t -> packet_id:int -> holder_id:int -> unit
(** Local knowledge of a drop; removals are not gossiped (the resulting
    staleness at other nodes is the imprecision §4.2 accepts). *)

val remove_packet : t -> packet_id:int -> unit
(** Forget the packet entirely (ack received: "metadata for delivered
    packets is deleted when an ack is received"). *)

val holders : t -> packet_id:int -> (int * holder) list
(** Sorted by holder id. *)

val find_holder : t -> packet_id:int -> holder_id:int -> holder option

val fold_holders :
  t -> packet_id:int -> init:'a -> f:('a -> int -> holder -> 'a) -> 'a
(** Fold over a packet's holders without sorting (hot path; iteration
    order is deterministic for a given update sequence). *)

val known_packet : t -> packet_id:int -> Rapid_sim.Packet.t option

val entries_since : t -> float -> entry list
(** Holder entries with [updated_at > threshold], approximately newest
    first — the delta the control channel ships. The retained history is
    bounded (several thousand updates): peers that have not exchanged for
    a very long time receive a truncated, bounded-staleness delta. *)

val size : t -> int
(** Total holder entries stored. *)
