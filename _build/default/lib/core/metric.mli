(** The administrator-specified routing metrics RAPID optimizes (§3.5).

    Table 2 glossary, used throughout this library:
    - D(i): packet i's expected delay = T(i) + A(i)
    - T(i): time since creation of i
    - a(i): random remaining time to deliver i
    - A(i): expected remaining time, E[a(i)]
    - L(i): packet lifetime (deadline relative to creation)
    - M_XZ: random inter-meeting time between nodes X and Z *)

type t =
  | Average_delay
      (** Metric 1 (Eq. 1): U_i = −D(i); replicate the packet whose
          replication most reduces expected delay per byte. *)
  | Missed_deadlines
      (** Metric 2 (Eq. 2): U_i = P(a(i) < L(i) − T(i)) when the deadline
          is still ahead, 0 once missed. *)
  | Maximum_delay
      (** Metric 3 (Eq. 3): U_i = −D(i) only for the packet with the
          largest expected delay in the buffer; recomputed after each
          replication (work conservation, §3.5.3). *)

val to_string : t -> string
val all : t list
