open Rapid_sim

let n_meetings ~entries ~packet ~avg_transfer_bytes =
  let dst = packet.Packet.dst in
  (* Delivery order: oldest creation first (descending T(i)); ties broken
     by id for determinism. *)
  let before (p : Packet.t) =
    p.Packet.created < packet.Packet.created
    || (p.Packet.created = packet.Packet.created && p.Packet.id < packet.Packet.id)
  in
  let bytes_before =
    List.fold_left
      (fun acc (e : Buffer.entry) ->
        let p = e.packet in
        if p.Packet.dst = dst && p.Packet.id <> packet.Packet.id && before p then
          acc + p.Packet.size
        else acc)
      0 entries
  in
  let total = float_of_int (bytes_before + packet.Packet.size) in
  let b = Float.max 1.0 avg_transfer_bytes in
  max 1 (int_of_float (Float.ceil (total /. b)))

let rate_of_holder ~meeting_time ~n_meet =
  if Float.is_finite meeting_time && meeting_time > 0.0 then
    1.0 /. (meeting_time *. float_of_int (max 1 n_meet))
  else 0.0

let expected_delay ~rate = if rate > 0.0 then 1.0 /. rate else infinity

let delivery_prob_within ~rate ~horizon =
  if horizon <= 0.0 || rate <= 0.0 then 0.0 else 1.0 -. exp (-.rate *. horizon)
