open Rapid_prelude

type queues = (int * string list) list

(* Replicas of each label: (node, predecessor label option). *)
let replicas_of queues =
  let tbl : (string, (int * string option) list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (node, labels) ->
      let rec walk pred = function
        | [] -> ()
        | label :: rest ->
            let cur = Option.value (Hashtbl.find_opt tbl label) ~default:[] in
            Hashtbl.replace tbl label ((node, pred) :: cur);
            walk (Some label) rest
      in
      walk None labels)
    queues;
  tbl

let estimate ~queues ~meeting label =
  let replicas = replicas_of queues in
  let memo : (string, Dist.Discrete.t) Hashtbl.t = Hashtbl.create 16 in
  let in_progress : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec d label =
    match Hashtbl.find_opt memo label with
    | Some dist -> dist
    | None ->
        if Hashtbl.mem in_progress label then
          invalid_arg
            (Printf.sprintf
               "Dag_delay.estimate: cyclic dependency through %S (queues are \
                not consistently ordered)"
               label);
        Hashtbl.replace in_progress label ();
        let reps =
          match Hashtbl.find_opt replicas label with
          | Some reps -> reps
          | None -> raise Not_found
        in
        let per_replica =
          List.map
            (fun (node, pred) ->
              let e_n = meeting node in
              match pred with
              | None -> e_n
              | Some pred_label -> Dist.Discrete.convolve (d pred_label) e_n)
            reps
        in
        let dist = Dist.Discrete.minimum_list per_replica in
        Hashtbl.remove in_progress label;
        Hashtbl.replace memo label dist;
        dist
  in
  d label

let vertical_only ~queues ~meeting label =
  let positions =
    List.filter_map
      (fun (node, labels) ->
        Option.map
          (fun pos -> (node, pos))
          (List.find_index (fun l -> l = label) labels))
      queues
  in
  match positions with
  | [] -> raise Not_found
  | _ ->
      let per_replica =
        List.map
          (fun (node, pos) ->
            let e_n = meeting node in
            let rec self_convolve acc k =
              if k = 0 then acc
              else self_convolve (Dist.Discrete.convolve acc e_n) (k - 1)
            in
            self_convolve e_n pos)
          positions
      in
      Dist.Discrete.minimum_list per_replica
