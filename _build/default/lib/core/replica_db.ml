open Rapid_sim

type holder = { n_meet : int; updated_at : float }
type entry = { packet : Packet.t; holder_id : int; holder : holder }

type record = { packet : Packet.t; holders : (int, holder) Hashtbl.t }

type t = {
  records : (int, record) Hashtbl.t;
  (* Update log, newest first: (log time, packet id, holder id). Lets
     [entries_since] walk only the recent tail instead of scanning every
     record. Log times are clamped to be non-increasing from the head
     (gossip can carry old origin timestamps); emission re-checks the
     entry's real [updated_at], so clamping can only widen the walk, never
     lose an entry. Superseded or deleted entries are filtered during the
     walk. *)
  mutable log : (float * int * int) list;
  mutable log_newest : float;
  mutable log_len : int;
}

(* Bound on log length: beyond it the oldest deltas are discarded, so a
   peer that has not exchanged for a very long time receives a truncated
   (bounded-staleness) delta instead of the full history. This keeps
   memory and per-contact work proportional to recent activity. *)
let max_log = 8_000

let create () =
  { records = Hashtbl.create 256; log = []; log_newest = neg_infinity;
    log_len = 0 }

let log_update t ~time ~packet_id ~holder_id =
  let time = Float.max time t.log_newest in
  t.log_newest <- time;
  t.log <- (time, packet_id, holder_id) :: t.log;
  t.log_len <- t.log_len + 1;
  if t.log_len > 2 * max_log then begin
    (* Amortized truncation: keep the newest half. *)
    t.log <- List.filteri (fun i _ -> i < max_log) t.log;
    t.log_len <- max_log
  end

let record_of t (packet : Packet.t) =
  match Hashtbl.find_opt t.records packet.Packet.id with
  | Some r -> r
  | None ->
      let r = { packet; holders = Hashtbl.create 4 } in
      Hashtbl.replace t.records packet.Packet.id r;
      r

let set_holder t ~packet ~holder_id ~n_meet ~now =
  let r = record_of t packet in
  Hashtbl.replace r.holders holder_id { n_meet; updated_at = now };
  log_update t ~time:now ~packet_id:packet.Packet.id ~holder_id

let merge t ~packet ~holder_id ~holder =
  let r = record_of t packet in
  match Hashtbl.find_opt r.holders holder_id with
  | Some existing when existing.updated_at >= holder.updated_at -> false
  | Some _ | None ->
      Hashtbl.replace r.holders holder_id holder;
      log_update t ~time:holder.updated_at ~packet_id:packet.Packet.id ~holder_id;
      true

let remove_holder t ~packet_id ~holder_id =
  match Hashtbl.find_opt t.records packet_id with
  | None -> ()
  | Some r ->
      Hashtbl.remove r.holders holder_id;
      if Hashtbl.length r.holders = 0 then Hashtbl.remove t.records packet_id

let remove_packet t ~packet_id = Hashtbl.remove t.records packet_id

let holders t ~packet_id =
  match Hashtbl.find_opt t.records packet_id with
  | None -> []
  | Some r ->
      Hashtbl.fold (fun id h acc -> (id, h) :: acc) r.holders []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let fold_holders t ~packet_id ~init ~f =
  match Hashtbl.find_opt t.records packet_id with
  | None -> init
  | Some r -> Hashtbl.fold (fun id h acc -> f acc id h) r.holders init

let find_holder t ~packet_id ~holder_id =
  match Hashtbl.find_opt t.records packet_id with
  | None -> None
  | Some r -> Hashtbl.find_opt r.holders holder_id

let known_packet t ~packet_id =
  Option.map (fun r -> r.packet) (Hashtbl.find_opt t.records packet_id)

let entries_since t threshold =
  let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec walk acc = function
    | [] -> acc
    | (time, _, _) :: _ when time <= threshold -> acc
    | (_, packet_id, holder_id) :: rest ->
        if Hashtbl.mem seen (packet_id, holder_id) then walk acc rest
        else begin
          Hashtbl.replace seen (packet_id, holder_id) ();
          match Hashtbl.find_opt t.records packet_id with
          | None -> walk acc rest (* forgotten (acked) *)
          | Some r -> (
              match Hashtbl.find_opt r.holders holder_id with
              | Some holder when holder.updated_at > threshold ->
                  walk ({ packet = r.packet; holder_id; holder } :: acc) rest
              | Some _ | None -> walk acc rest)
        end
  in
  (* Log order is newest-first up to the clamping of gossip timestamps —
     close enough for the control channel, which only needs "roughly
     newest first" (truncation fairness), not a total order. *)
  List.rev (walk [] t.log)

let size t =
  Hashtbl.fold (fun _ r acc -> acc + Hashtbl.length r.holders) t.records 0
