(** Algorithm Estimate-Delay (§4.1) under the exponential approximation.

    A node needs, per packet i destined to Z:
    - per believed replica holder j: the expected direct inter-meeting time
      E(M_jZ) and the number of meetings n_j(i) = ⌈b_j(i)/B_j⌉ that j
      needs with Z before i's turn comes (buffer position over expected
      transfer size, Algorithm 2 steps 1–4);
    - the exponential approximation (§4.1.1 / Eq. 9):
        A(i) = [ Σ_j 1 / (E(M_jZ) · n_j(i)) ]⁻¹
        P(a(i) < t) = 1 − exp(−R·t) with R = Σ_j 1/(E(M_jZ)·n_j(i)).

    [rate_of_holder] returns one summand of R; combine with {!expected_delay}
    / {!delivery_prob_within}. *)

val n_meetings :
  entries:Rapid_sim.Buffer.entry list ->
  packet:Rapid_sim.Packet.t ->
  avg_transfer_bytes:float ->
  int
(** Meetings holder needs with the destination to deliver [packet] directly:
    sort the holder's packets destined to [packet.dst] oldest-first (the
    direct-delivery order of Protocol rapid step 2, i.e. descending T(i)),
    sum the sizes up to and including [packet], divide by the expected
    transfer size, round up; at least 1. [entries] is the holder's buffer;
    [packet] need not be in it (the would-be position is used), duplicates
    are handled. *)

val rate_of_holder : meeting_time:float -> n_meet:int -> float
(** 1/(E·n); 0 when E is infinite (holder never meets the destination). *)

val expected_delay : rate:float -> float
(** A(i) = 1/R; [infinity] when R = 0. *)

val delivery_prob_within : rate:float -> horizon:float -> float
(** P(a(i) < horizon) = 1 − e^{−R·horizon}; 0 for non-positive horizon. *)
