(** RAPID's control-channel operating modes.

    §4.2 describes the default delayed {!In_band} channel: nodes spend a
    slice of every transfer opportunity exchanging acknowledgments,
    meeting-time tables, and per-packet replica metadata (only entries
    changed since the last exchange with that peer). §6.2.3 evaluates an
    {!Instant_global} channel — an oracle upper bound modelling a hybrid
    DTN with a long-range low-bandwidth radio — and §6.2.6 an ablated
    {!Local_only} channel where nodes describe only packets in their own
    buffers. *)

type t =
  | In_band  (** Delayed, charged against each transfer opportunity. *)
  | Instant_global  (** Free, instantaneous, exact global view (§6.2.3). *)
  | Local_only  (** Metadata restricted to the node's own buffer (§6.2.6). *)

val to_string : t -> string
