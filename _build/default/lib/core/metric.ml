type t = Average_delay | Missed_deadlines | Maximum_delay

let to_string = function
  | Average_delay -> "avg-delay"
  | Missed_deadlines -> "deadline"
  | Maximum_delay -> "max-delay"

let all = [ Average_delay; Missed_deadlines; Maximum_delay ]
