type t = In_band | Instant_global | Local_only

let to_string = function
  | In_band -> "in-band"
  | Instant_global -> "global"
  | Local_only -> "local"
