(** Special mathematical functions needed by the statistics machinery.

    Implementations follow the classical series / continued-fraction
    developments (Lanczos approximation for the log-gamma function, the
    Lentz continued fraction for the regularized incomplete beta function).
    Accuracy is ample for confidence intervals and t-tests (relative error
    well under 1e-10 over the domains we use). *)

val log_gamma : float -> float
(** [log_gamma x] = ln Γ(x) for x > 0. *)

val incomplete_beta : a:float -> b:float -> x:float -> float
(** Regularized incomplete beta function I_x(a, b) for a,b > 0 and
    0 <= x <= 1. *)

val student_t_cdf : df:float -> float -> float
(** CDF of Student's t distribution with [df] degrees of freedom. *)

val student_t_quantile : df:float -> float -> float
(** Inverse CDF (by monotone bisection); argument in (0, 1). *)

val erf : float -> float
(** Error function. *)

val normal_cdf : float -> float
(** Standard normal CDF. *)
