type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let length q = q.size
let is_empty q = q.size = 0

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow q entry =
  let cap = Array.length q.data in
  if q.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let data = Array.make ncap entry in
    Array.blit q.data 0 data 0 q.size;
    q.data <- data
  end

let push q prio value =
  let entry = { prio; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  grow q entry;
  (* Sift up. *)
  let i = ref q.size in
  q.size <- q.size + 1;
  q.data.(!i) <- entry;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less q.data.(!i) q.data.(parent) then begin
      let tmp = q.data.(parent) in
      q.data.(parent) <- q.data.(!i);
      q.data.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let peek q = if q.size = 0 then None else Some (q.data.(0).prio, q.data.(0).value)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.data.(0) <- q.data.(q.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.size && less q.data.(l) q.data.(!smallest) then smallest := l;
        if r < q.size && less q.data.(r) q.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = q.data.(!smallest) in
          q.data.(!smallest) <- q.data.(!i);
          q.data.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.prio, top.value)
  end

let clear q = q.size <- 0
