(** Summary statistics and hypothesis tests used by the evaluation harness.

    Covers everything §6 of the paper reports: means with 95% confidence
    intervals (Student's t), the paired t-test used to compare per-pair
    delays of two protocols (§6.2.1), Jain's fairness index (§6.2.5), and
    empirical CDFs (Fig. 15). *)

(** Streaming mean / variance (Welford's online algorithm). *)
module Welford : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** [nan] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [nan] when count < 2. *)

  val std : t -> float
  val merge : t -> t -> t
end

type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  ci95 : float;  (** Half-width of the 95% confidence interval on the mean. *)
}

val summarize : float list -> summary
val summarize_array : float array -> summary

type t_test = {
  t_stat : float;
  df : float;
  p_value : float;  (** Two-sided. *)
  mean_diff : float;
}

val paired_t_test : float array -> float array -> t_test
(** Paired two-sided t-test on per-index differences. Arrays must have equal
    length >= 2. *)

val jain_index : float array -> float
(** Jain's fairness index (Σx)² / (n·Σx²); 1.0 for perfectly equal values.
    Returns [nan] on an empty array or all-zero values. *)

val cdf_points : float array -> (float * float) list
(** Empirical CDF: sorted (value, fraction <= value) pairs. *)

val percentile : float array -> float -> float
(** [percentile xs p] for p in [0,1], with linear interpolation. *)

val mean : float list -> float
(** Arithmetic mean; [nan] on empty. *)
