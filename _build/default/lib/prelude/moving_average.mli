(** Online averages of past observations.

    RAPID nodes "locally compute the expected transfer opportunity with
    every other node as a moving average of past transfers" (§4.1, step 3)
    and tabulate "the average time to meet every other node based on past
    meeting times" (§4.1.2). Both uses are served here: a plain cumulative
    average and an exponentially weighted one. *)

(** Cumulative (equal-weight) average. *)
module Cumulative : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val value : t -> float option
  (** [None] before the first observation. *)

  val value_or : t -> default:float -> float
  val count : t -> int
end

(** Exponentially weighted moving average. *)
module Ewma : sig
  type t

  val create : alpha:float -> t
  (** [alpha] in (0, 1]: weight of the newest observation. *)

  val add : t -> float -> unit
  val value : t -> float option
  val value_or : t -> default:float -> float
end
