type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed =
  (* Pre-mix the seed so that small consecutive seeds give unrelated
     streams. *)
  { state = Int64.mul (Int64.of_int (seed + 1)) 0xBF58476D1CE4E5B9L }

let copy t = { state = t.state }

(* splitmix64 finalizer (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

let float t =
  (* 53 high-quality bits into [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t lo hi = lo +. ((hi -. lo) *. float t)

let int t n =
  assert (n > 0);
  (* Rejection-free for our purposes: modulo bias is negligible for n << 2^63,
     but we use multiply-shift to avoid it entirely for small n. *)
  let bits = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem bits (Int64.of_int n))

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let pick_k t a k =
  assert (k <= Array.length a);
  let pool = Array.copy a in
  shuffle t pool;
  Array.sub pool 0 k
