(** Probability distributions: samplers and a small distribution algebra.

    The samplers power workload and mobility generation. The [Discrete]
    sub-module provides a numerically represented nonnegative distribution
    with the two operators the appendix-C DAG-delay estimator needs:
    [convolve] (the paper's ⊕, the delay of doing one thing after another)
    and [minimum] (the delay until the first of several replicas is
    delivered). *)

val exponential : Rng.t -> mean:float -> float
(** Exponential sample with the given mean. Requires [mean > 0]. *)

val normal : Rng.t -> mu:float -> sigma:float -> float
(** Gaussian sample (Box–Muller). *)

val lognormal : Rng.t -> mu:float -> sigma:float -> float
(** exp of a Gaussian; [mu]/[sigma] are the parameters of the log. *)

val gamma : Rng.t -> shape:float -> scale:float -> float
(** Gamma sample (Marsaglia–Tsang, with the shape<1 boost). *)

val pareto : Rng.t -> alpha:float -> x_min:float -> float
(** Pareto (power-law) sample: P(X > x) = (x_min/x)^alpha for x >= x_min. *)

val poisson_process : Rng.t -> rate:float -> horizon:float -> float list
(** Event times of a homogeneous Poisson process on [0, horizon), sorted
    ascending. The empty list if [rate <= 0.]. *)

val weighted_index : Rng.t -> float array -> int
(** Index drawn proportionally to the (nonnegative) weights. *)

(** Gamma distribution helpers used by Estimate-Delay's analysis. *)

val gamma_mean : shape:float -> scale:float -> float

val exponential_cdf : mean:float -> float -> float
(** P(X < t) for an exponential with the given mean. *)

val min_exponential_rate : rates:float list -> float
(** Rate of the minimum of independent exponentials (sum of rates). *)

module Discrete : sig
  type t
  (** A distribution over [0, n*dt) stored as a PMF on a uniform grid; mass
      beyond the horizon is tracked as a defect (an "undelivered" atom at
      +infinity), so means are reported conditionally on finite support
      together with the defect. *)

  val create : dt:float -> pmf:float array -> t
  (** Normalizes to total mass <= 1; remaining mass becomes the defect. *)

  val point : dt:float -> cells:int -> float -> t
  (** Unit mass at (approximately) the given value. *)

  val of_exponential : dt:float -> cells:int -> mean:float -> t

  val of_gamma_exponential_sum : dt:float -> cells:int -> mean:float -> k:int -> t
  (** Sum of [k] i.i.d. exponentials with the given mean (a gamma / Erlang),
      computed by repeated convolution: the time to meet a node [k] times. *)

  val dt : t -> float
  val cells : t -> int
  val defect : t -> float
  (** Mass escaping the grid horizon. *)

  val cdf : t -> float -> float
  val mean : t -> float
  (** Mean conditioned on finite support; [infinity] if all mass escapes. *)

  val convolve : t -> t -> t
  (** The paper's ⊕: distribution of the sum of two independent delays. *)

  val minimum : t -> t -> t
  (** Distribution of the minimum of two independent delays. *)

  val minimum_list : t list -> t
  (** Minimum of several; requires a non-empty list. *)
end
