(* Lanczos approximation, g = 7, n = 9 coefficients. *)
let lanczos =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  assert (x > 0.0);
  if x < 0.5 then
    (* Reflection: Γ(x)Γ(1-x) = π / sin(πx). *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let acc = ref lanczos.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

(* Continued fraction for the incomplete beta function (modified Lentz). *)
let beta_cf ~a ~b ~x =
  let max_iter = 300 and eps = 3e-14 and fpmin = 1e-300 in
  let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if Float.abs !d < fpmin then d := fpmin;
  d := 1.0 /. !d;
  let h = ref !d in
  let m = ref 1 in
  let continue = ref true in
  while !continue && !m <= max_iter do
    let mf = float_of_int !m in
    let m2 = 2.0 *. mf in
    let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1.0 +. (aa *. !d);
    if Float.abs !d < fpmin then d := fpmin;
    c := 1.0 +. (aa /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    h := !h *. !d *. !c;
    let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
    d := 1.0 +. (aa *. !d);
    if Float.abs !d < fpmin then d := fpmin;
    c := 1.0 +. (aa /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.0) < eps then continue := false;
    incr m
  done;
  !h

let incomplete_beta ~a ~b ~x =
  assert (a > 0.0 && b > 0.0);
  if x <= 0.0 then 0.0
  else if x >= 1.0 then 1.0
  else begin
    let ln_front =
      log_gamma (a +. b) -. log_gamma a -. log_gamma b
      +. (a *. log x) +. (b *. log (1.0 -. x))
    in
    let front = exp ln_front in
    (* Use the symmetry relation to stay in the rapidly-converging regime. *)
    if x < (a +. 1.0) /. (a +. b +. 2.0) then front *. beta_cf ~a ~b ~x /. a
    else 1.0 -. (front *. beta_cf ~a:b ~b:a ~x:(1.0 -. x) /. b)
  end

let student_t_cdf ~df t =
  let x = df /. (df +. (t *. t)) in
  let p = 0.5 *. incomplete_beta ~a:(df /. 2.0) ~b:0.5 ~x in
  if t > 0.0 then 1.0 -. p else p

let student_t_quantile ~df p =
  assert (p > 0.0 && p < 1.0);
  let rec bisect lo hi n =
    if n = 0 then (lo +. hi) /. 2.0
    else begin
      let mid = (lo +. hi) /. 2.0 in
      if student_t_cdf ~df mid < p then bisect mid hi (n - 1)
      else bisect lo mid (n - 1)
    end
  in
  bisect (-1e3) 1e3 200

(* Maclaurin series for small |x|, first-order asymptotic tail beyond; the
   crossover at 3 keeps both branches comfortably inside double precision. *)
let erf x =
  let ax = Float.abs x in
  let v =
    if ax < 3.0 then begin
      (* Maclaurin series with term recurrence; converges fast for |x|<3. *)
      let term = ref ax and sum = ref ax in
      let n = ref 0 in
      let x2 = ax *. ax in
      while Float.abs !term > 1e-17 *. Float.abs !sum && !n < 200 do
        incr n;
        let nf = float_of_int !n in
        term := !term *. -.x2 /. nf;
        sum := !sum +. (!term /. ((2.0 *. nf) +. 1.0))
      done;
      2.0 /. sqrt Float.pi *. !sum
    end
    else 1.0 -. (exp (-.(ax *. ax)) /. (ax *. sqrt Float.pi))
  in
  if x < 0.0 then -.v else v

let normal_cdf x = 0.5 *. (1.0 +. erf (x /. sqrt 2.0))
