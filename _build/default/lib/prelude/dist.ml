let exponential rng ~mean =
  assert (mean > 0.0);
  let u = 1.0 -. Rng.float rng in
  -.mean *. log u

let normal rng ~mu ~sigma =
  let u1 = 1.0 -. Rng.float rng in
  let u2 = Rng.float rng in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let lognormal rng ~mu ~sigma = exp (normal rng ~mu ~sigma)

let rec gamma rng ~shape ~scale =
  assert (shape > 0.0 && scale > 0.0);
  if shape < 1.0 then begin
    (* Boost: Gamma(a) = Gamma(a+1) * U^(1/a). *)
    let u = 1.0 -. Rng.float rng in
    gamma rng ~shape:(shape +. 1.0) ~scale *. (u ** (1.0 /. shape))
  end
  else begin
    (* Marsaglia–Tsang squeeze method. *)
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec draw () =
      let x = normal rng ~mu:0.0 ~sigma:1.0 in
      let v = 1.0 +. (c *. x) in
      if v <= 0.0 then draw ()
      else begin
        let v = v *. v *. v in
        let u = 1.0 -. Rng.float rng in
        let x2 = x *. x in
        if u < 1.0 -. (0.0331 *. x2 *. x2) then d *. v
        else if log u < (0.5 *. x2) +. (d *. (1.0 -. v +. log v)) then d *. v
        else draw ()
      end
    in
    scale *. draw ()
  end

let pareto rng ~alpha ~x_min =
  assert (alpha > 0.0 && x_min > 0.0);
  let u = 1.0 -. Rng.float rng in
  x_min /. (u ** (1.0 /. alpha))

let poisson_process rng ~rate ~horizon =
  if rate <= 0.0 then []
  else begin
    let rec loop t acc =
      let t = t +. exponential rng ~mean:(1.0 /. rate) in
      if t >= horizon then List.rev acc else loop t (t :: acc)
    in
    loop 0.0 []
  end

let weighted_index rng weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  assert (total > 0.0);
  let target = Rng.float rng *. total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else begin
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
    end
  in
  scan 0 0.0

let gamma_mean ~shape ~scale = shape *. scale

let exponential_cdf ~mean t =
  if t <= 0.0 then 0.0 else 1.0 -. exp (-.t /. mean)

let min_exponential_rate ~rates = List.fold_left ( +. ) 0.0 rates

module Discrete = struct
  type t = { dt : float; pmf : float array; defect : float }

  let create ~dt ~pmf =
    assert (dt > 0.0);
    let total = Array.fold_left ( +. ) 0.0 pmf in
    if total > 1.0 then begin
      let pmf = Array.map (fun p -> p /. total) pmf in
      { dt; pmf; defect = 0.0 }
    end
    else { dt; pmf = Array.copy pmf; defect = 1.0 -. total }

  let dt d = d.dt
  let cells d = Array.length d.pmf
  let defect d = d.defect

  let point ~dt ~cells v =
    let pmf = Array.make cells 0.0 in
    let i = int_of_float (v /. dt) in
    if i < cells then begin
      pmf.(i) <- 1.0;
      create ~dt ~pmf
    end
    else { dt; pmf; defect = 1.0 }

  let of_exponential ~dt ~cells ~mean =
    assert (mean > 0.0);
    let pmf = Array.make cells 0.0 in
    for i = 0 to cells - 1 do
      let lo = float_of_int i *. dt in
      let hi = lo +. dt in
      pmf.(i) <- exp (-.lo /. mean) -. exp (-.hi /. mean)
    done;
    let mass = Array.fold_left ( +. ) 0.0 pmf in
    { dt; pmf; defect = 1.0 -. mass }

  let cdf d t =
    if t <= 0.0 then 0.0
    else begin
      let cells = Array.length d.pmf in
      let n = min cells (int_of_float (t /. d.dt)) in
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc := !acc +. d.pmf.(i)
      done;
      !acc
    end

  let mean d =
    let mass = 1.0 -. d.defect in
    if mass <= 1e-12 then infinity
    else begin
      let acc = ref 0.0 in
      Array.iteri
        (fun i p -> acc := !acc +. (p *. ((float_of_int i +. 0.5) *. d.dt)))
        d.pmf;
      !acc /. mass
    end

  let convolve a b =
    assert (a.dt = b.dt);
    let na = Array.length a.pmf and nb = Array.length b.pmf in
    let n = max na nb in
    let pmf = Array.make n 0.0 in
    for i = 0 to na - 1 do
      if a.pmf.(i) > 0.0 then
        for j = 0 to nb - 1 do
          let k = i + j in
          if k < n then pmf.(k) <- pmf.(k) +. (a.pmf.(i) *. b.pmf.(j))
        done
    done;
    let mass = Array.fold_left ( +. ) 0.0 pmf in
    { dt = a.dt; pmf; defect = 1.0 -. mass }

  let of_gamma_exponential_sum ~dt ~cells ~mean ~k =
    assert (k >= 1);
    let e = of_exponential ~dt ~cells ~mean in
    let rec loop acc k = if k = 0 then acc else loop (convolve acc e) (k - 1) in
    loop e (k - 1)

  let minimum a b =
    assert (a.dt = b.dt);
    let n = max (Array.length a.pmf) (Array.length b.pmf) in
    (* Work with CDFs: F_min = 1 - (1-F_a)(1-F_b), then difference cells. *)
    let cdf_at d i =
      (* CDF at the upper edge of cell i. *)
      let acc = ref 0.0 in
      for j = 0 to min i (Array.length d.pmf - 1) do
        acc := !acc +. d.pmf.(j)
      done;
      !acc
    in
    let pmf = Array.make n 0.0 in
    let prev = ref 0.0 in
    for i = 0 to n - 1 do
      let fa = cdf_at a i and fb = cdf_at b i in
      let fmin = 1.0 -. ((1.0 -. fa) *. (1.0 -. fb)) in
      pmf.(i) <- fmin -. !prev;
      prev := fmin
    done;
    { dt = a.dt; pmf; defect = 1.0 -. !prev }

  let minimum_list = function
    | [] -> invalid_arg "Dist.Discrete.minimum_list: empty"
    | d :: rest -> List.fold_left minimum d rest
end
