(** Mutable binary min-heap keyed by float priority.

    Used as the simulator's event queue and by the Dijkstra passes in the
    routing protocols (meeting-time matrix, MaxProp path costs, the optimal
    lower bound). Ties are broken by insertion order so simulation runs are
    deterministic. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push q priority v] inserts [v]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element; [None] when empty. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
