module Welford = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = if t.n = 0 then nan else t.mean
  let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)
  let std t = sqrt (variance t)

  let merge a b =
    if a.n = 0 then { n = b.n; mean = b.mean; m2 = b.m2 }
    else if b.n = 0 then { n = a.n; mean = a.mean; m2 = a.m2 }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let nf = float_of_int n in
      let mean = a.mean +. (delta *. float_of_int b.n /. nf) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. nf)
      in
      { n; mean; m2 }
    end
end

type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  ci95 : float;
}

let summarize_array xs =
  let n = Array.length xs in
  if n = 0 then { n = 0; mean = nan; std = nan; min = nan; max = nan; ci95 = nan }
  else begin
    let w = Welford.create () in
    Array.iter (Welford.add w) xs;
    let mn = Array.fold_left min xs.(0) xs in
    let mx = Array.fold_left max xs.(0) xs in
    let std = if n < 2 then 0.0 else Welford.std w in
    let ci95 =
      if n < 2 then 0.0
      else begin
        let df = float_of_int (n - 1) in
        let tq = Special.student_t_quantile ~df 0.975 in
        tq *. std /. sqrt (float_of_int n)
      end
    in
    { n; mean = Welford.mean w; std; min = mn; max = mx; ci95 }
  end

let summarize xs = summarize_array (Array.of_list xs)

type t_test = { t_stat : float; df : float; p_value : float; mean_diff : float }

let paired_t_test a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "paired_t_test: length mismatch";
  if n < 2 then invalid_arg "paired_t_test: need at least 2 pairs";
  let diffs = Array.init n (fun i -> a.(i) -. b.(i)) in
  let s = summarize_array diffs in
  let se = s.std /. sqrt (float_of_int n) in
  let df = float_of_int (n - 1) in
  if se = 0.0 then
    { t_stat = (if s.mean = 0.0 then 0.0 else Float.infinity);
      df;
      p_value = (if s.mean = 0.0 then 1.0 else 0.0);
      mean_diff = s.mean }
  else begin
    let t_stat = s.mean /. se in
    let p_value = 2.0 *. (1.0 -. Special.student_t_cdf ~df (Float.abs t_stat)) in
    { t_stat; df; p_value; mean_diff = s.mean }
  end

let jain_index xs =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let s = Array.fold_left ( +. ) 0.0 xs in
    let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if s2 = 0.0 then nan else s *. s /. (float_of_int n *. s2)
  end

let cdf_points xs =
  let n = Array.length xs in
  if n = 0 then []
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    List.init n (fun i -> (sorted.(i), float_of_int (i + 1) /. float_of_int n))
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let pos = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let mean = function
  | [] -> nan
  | xs ->
      let s = List.fold_left ( +. ) 0.0 xs in
      s /. float_of_int (List.length xs)
