module Cumulative = struct
  type t = { mutable n : int; mutable sum : float }

  let create () = { n = 0; sum = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    t.sum <- t.sum +. x

  let value t = if t.n = 0 then None else Some (t.sum /. float_of_int t.n)

  let value_or t ~default =
    match value t with Some v -> v | None -> default

  let count t = t.n
end

module Ewma = struct
  type t = { alpha : float; mutable v : float option }

  let create ~alpha =
    assert (alpha > 0.0 && alpha <= 1.0);
    { alpha; v = None }

  let add t x =
    match t.v with
    | None -> t.v <- Some x
    | Some v -> t.v <- Some ((t.alpha *. x) +. ((1.0 -. t.alpha) *. v))

  let value t = t.v

  let value_or t ~default =
    match t.v with Some v -> v | None -> default
end
