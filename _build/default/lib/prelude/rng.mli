(** Deterministic pseudo-random number generation.

    A small, fast, splittable PRNG (splitmix64). Every stochastic component
    of the simulator draws from an explicit [t] so that experiments are
    reproducible from a single integer seed and independent streams can be
    derived for independent subsystems (workload, mobility, protocol
    tie-breaking). *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves independently. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of the
    remainder of [t]'s stream. Advances [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform in [0, 1). *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [lo, hi). *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample : t -> 'a array -> 'a
(** Uniformly random element. Requires a non-empty array. *)

val pick_k : t -> 'a array -> int -> 'a array
(** [pick_k t a k] draws [k] distinct elements uniformly (k <= length). *)
