lib/prelude/moving_average.ml:
