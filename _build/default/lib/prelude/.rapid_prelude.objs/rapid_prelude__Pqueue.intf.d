lib/prelude/pqueue.mli:
