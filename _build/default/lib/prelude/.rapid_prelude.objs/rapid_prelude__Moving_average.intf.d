lib/prelude/moving_average.mli:
