lib/prelude/special.ml: Array Float
