lib/prelude/stats.mli:
