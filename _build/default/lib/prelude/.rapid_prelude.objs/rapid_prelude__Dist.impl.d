lib/prelude/dist.ml: Array Float List Rng
