lib/prelude/rng.mli:
