lib/prelude/special.mli:
