(** Shared simulation state visible to protocols.

    Buffers model the per-node summary-vector knowledge any DTN protocol
    obtains for free during a contact handshake: at a meeting, a protocol
    may consult {!has_packet} for its *peer* to avoid pushing duplicates.
    Global state beyond that (e.g. replica locations network-wide) must be
    learned through each protocol's own control channel — except for
    explicitly "oracle" variants such as RAPID's instant global channel
    (§6.2.3), which read it deliberately. *)

type t = {
  num_nodes : int;
  duration : float;  (** Experiment horizon. *)
  buffers : Buffer.t array;  (** Indexed by node id. *)
  delivered : (int, float) Hashtbl.t;  (** Packet id -> delivery time. *)
  rng : Rapid_prelude.Rng.t;  (** Protocol-visible randomness. *)
  mutable ack_purges : int;
      (** Buffered copies cleared because an ack proved them delivered;
          bumped by {!Protocol.Ack_store.purge}. *)
}

val create :
  num_nodes:int -> duration:float -> buffer_capacity:int option ->
  seed:int -> t

val is_delivered : t -> int -> bool

val has_packet : t -> node:int -> packet:Packet.t -> bool
(** True if the node buffers the packet, or the node is the packet's
    destination and the packet has been delivered (destinations keep
    delivered packets; §3.1). *)

val buffered_entries : t -> int -> Buffer.entry list
