type entry = { packet : Packet.t; received : float; hops : int }

type t = {
  capacity : int option;
  mutable used : int;
  table : (int, entry) Hashtbl.t;
}

let create ~capacity =
  (match capacity with
  | Some c when c < 0 -> invalid_arg "Buffer.create: negative capacity"
  | _ -> ());
  { capacity; used = 0; table = Hashtbl.create 64 }

let capacity t = t.capacity
let used t = t.used
let count t = Hashtbl.length t.table
let mem t id = Hashtbl.mem t.table id
let find t id = Hashtbl.find_opt t.table id

let would_fit t size =
  match t.capacity with None -> true | Some c -> t.used + size <= c

let add t entry =
  let id = entry.packet.Packet.id in
  if mem t id then invalid_arg "Buffer.add: duplicate packet";
  if not (would_fit t entry.packet.Packet.size) then
    invalid_arg "Buffer.add: over capacity";
  Hashtbl.replace t.table id entry;
  t.used <- t.used + entry.packet.Packet.size

let remove t id =
  match Hashtbl.find_opt t.table id with
  | None -> None
  | Some entry ->
      Hashtbl.remove t.table id;
      t.used <- t.used - entry.packet.Packet.size;
      Some entry

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
  |> List.sort (fun a b -> Int.compare a.packet.Packet.id b.packet.Packet.id)

let fold t ~init ~f = List.fold_left f init (entries t)

let fold_unordered t ~init ~f =
  Hashtbl.fold (fun _ e acc -> f acc e) t.table init
