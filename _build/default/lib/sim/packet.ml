type t = {
  id : int;
  src : int;
  dst : int;
  size : int;
  created : float;
  deadline : float option;
}

let of_spec ~id (s : Rapid_trace.Workload.spec) =
  if s.src = s.dst then invalid_arg "Packet.of_spec: src = dst";
  if s.size <= 0 then invalid_arg "Packet.of_spec: non-positive size";
  { id; src = s.src; dst = s.dst; size = s.size; created = s.created;
    deadline = s.deadline }

let age t ~now = now -. t.created

let remaining_lifetime t ~now = Option.map (fun d -> d -. now) t.deadline

let missed_deadline t ~now =
  match t.deadline with Some d -> now > d | None -> false

let pp fmt t =
  Format.fprintf fmt "@[pkt#%d %d->%d %dB t0=%.1f%a@]" t.id t.src t.dst t.size
    t.created
    (fun fmt -> function
      | Some d -> Format.fprintf fmt " dl=%.1f" d
      | None -> ())
    t.deadline
