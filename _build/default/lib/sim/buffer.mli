(** A node's in-transit packet store with an optional byte capacity.

    The engine owns one buffer per node and is the only component allowed
    to add packets (so that feasibility — storage never exceeded — is
    enforced in one place); protocols may remove packets (ack-driven
    cleanup, §4.2) and inspect contents. Iteration order is by packet id,
    which keeps runs deterministic. *)

type entry = {
  packet : Packet.t;
  received : float;  (** When this copy arrived at this node. *)
  hops : int;  (** Replication depth: 0 at the source. *)
}

type t

val create : capacity:int option -> t
(** [capacity] in bytes; [None] means unlimited. *)

val capacity : t -> int option
val used : t -> int
(** Bytes currently stored. *)

val count : t -> int
val mem : t -> int -> bool
val find : t -> int -> entry option

val would_fit : t -> int -> bool
(** Whether [size] additional bytes fit right now. *)

val add : t -> entry -> unit
(** Raises [Invalid_argument] if the entry does not fit or is a duplicate.
    Callers must check [would_fit] / [mem] first. *)

val remove : t -> int -> entry option
(** Remove by packet id; [None] if absent. *)

val entries : t -> entry list
(** Sorted by packet id. *)

val fold : t -> init:'a -> f:('a -> entry -> 'a) -> 'a
(** Fold in packet-id order. *)

val fold_unordered : t -> init:'a -> f:('a -> entry -> 'a) -> 'a
(** Fold in hash order (hot paths that don't care about order; still
    deterministic for a given insertion history). *)
