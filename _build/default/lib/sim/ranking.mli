(** Per-contact precomputed transfer queues.

    Scanning and re-ranking a node's whole buffer for every transferred
    packet is quadratic in buffer size; real implementations (and RAPID's
    Protocol step 3c, "replicate packets in decreasing order of δU_i/s_i")
    rank once per transfer opportunity and then stream packets in order.
    This helper builds one ranked queue per direction at contact start and
    serves from it, re-validating each head cheaply:

    - still buffered at the sender (it may have been dropped or purged);
    - still missing at the receiver;
    - fits the remaining byte budget (budgets only shrink within a
      contact, so a packet that does not fit now never will — discarded).

    A popped packet is never offered again in the same contact, which also
    covers storage refusals. *)

type t

val create : unit -> t

val begin_contact : t -> unit
(** Forget queues from the previous contact. *)

val is_ready : t -> sender:int -> receiver:int -> bool

val set : t -> sender:int -> receiver:int -> Packet.t list -> unit
(** Install the ranked packet list for one direction (best first). *)

val next :
  ?check_peer:bool ->
  t -> Env.t -> sender:int -> receiver:int -> budget:int -> Packet.t option
(** Pop the best still-legal packet; [None] when the direction is done.
    [check_peer] (default true) skips packets the receiver already has;
    protocols without summary vectors (the Random baseline) pass [false]
    and let the engine charge the wasted duplicate transfer. *)

val replication_candidates :
  Env.t -> sender:int -> receiver:int -> Buffer.entry list
(** Entries buffered at [sender] and absent at [receiver] — the raw input
    protocols rank (no budget/session filtering; {!next} re-validates). *)
