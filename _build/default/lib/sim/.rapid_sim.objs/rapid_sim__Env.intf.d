lib/sim/env.mli: Buffer Hashtbl Packet Rapid_prelude
