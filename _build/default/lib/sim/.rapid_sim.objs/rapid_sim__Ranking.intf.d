lib/sim/ranking.mli: Buffer Env Packet
