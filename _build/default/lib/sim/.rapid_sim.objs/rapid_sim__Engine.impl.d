lib/sim/engine.ml: Array Buffer Contact Env Hashtbl Metrics Option Packet Printf Protocol Rapid_trace Trace Workload
