lib/sim/engine.mli: Env Metrics Protocol Rapid_trace
