lib/sim/env.ml: Array Buffer Hashtbl Packet Rapid_prelude
