lib/sim/packet.mli: Format Rapid_trace
