lib/sim/metrics.ml: Array Format Hashtbl Int List Packet
