lib/sim/buffer.mli: Packet
