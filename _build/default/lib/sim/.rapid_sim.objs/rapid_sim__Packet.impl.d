lib/sim/packet.ml: Format Option Rapid_trace
