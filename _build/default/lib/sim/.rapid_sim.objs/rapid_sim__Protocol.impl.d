lib/sim/protocol.ml: Array Buffer Env Hashtbl List Packet
