lib/sim/metrics.mli: Format Packet
