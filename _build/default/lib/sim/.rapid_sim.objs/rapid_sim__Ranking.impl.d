lib/sim/ranking.ml: Array Buffer Env Hashtbl List Packet
