lib/sim/buffer.ml: Hashtbl Int List Packet
