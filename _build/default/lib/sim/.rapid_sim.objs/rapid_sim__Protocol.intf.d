lib/sim/protocol.mli: Buffer Env Packet
