(** A data packet (the workload tuples of §3.1).

    Packets are never fragmented; a packet is identified globally by [id]
    and every replica shares it. *)

type t = {
  id : int;
  src : int;
  dst : int;
  size : int;  (** Bytes. *)
  created : float;  (** Creation time at the source. *)
  deadline : float option;  (** Absolute time L(i)+creation, if any. *)
}

val of_spec : id:int -> Rapid_trace.Workload.spec -> t

val age : t -> now:float -> float
(** T(i): time since creation. *)

val remaining_lifetime : t -> now:float -> float option
(** L(i) - T(i) when a deadline is set; negative once missed. *)

val missed_deadline : t -> now:float -> bool
(** True iff the packet has a deadline and it has passed. *)

val pp : Format.formatter -> t -> unit
