type t = { queues : (int * int, Packet.t list ref) Hashtbl.t }

let create () = { queues = Hashtbl.create 4 }
let begin_contact t = Hashtbl.reset t.queues
let is_ready t ~sender ~receiver = Hashtbl.mem t.queues (sender, receiver)

let set t ~sender ~receiver packets =
  Hashtbl.replace t.queues (sender, receiver) (ref packets)

let next ?(check_peer = true) t env ~sender ~receiver ~budget =
  match Hashtbl.find_opt t.queues (sender, receiver) with
  | None -> None
  | Some queue ->
      let rec pop () =
        match !queue with
        | [] -> None
        | p :: rest ->
            queue := rest;
            if
              p.Packet.size <= budget
              && Buffer.mem env.Env.buffers.(sender) p.Packet.id
              && ((not check_peer)
                 || not (Env.has_packet env ~node:receiver ~packet:p))
            then Some p
            else pop ()
      in
      pop ()

let replication_candidates env ~sender ~receiver =
  Env.buffered_entries env sender
  |> List.filter (fun (e : Buffer.entry) ->
         not (Env.has_packet env ~node:receiver ~packet:e.packet))
