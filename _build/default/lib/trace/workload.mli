(** Packet workload generation.

    Reproduces the deployment's traffic model (§5.1): each active node
    generates packets "with an exponential inter-arrival time" for every
    other active node, so the load knob is packets per hour per destination
    — exactly the x-axis of Figs. 4–24. Destinations only include nodes on
    the road, "which avoided creation of many packets that could never be
    delivered". *)

type spec = {
  src : int;
  dst : int;
  size : int;  (** Bytes; the paper uses 1 KB packets. *)
  created : float;  (** Seconds from trace start. *)
  deadline : float option;  (** Absolute deadline (creation + lifetime). *)
}

val generate :
  Rapid_prelude.Rng.t ->
  trace:Trace.t ->
  pkts_per_hour_per_dest:float ->
  size:int ->
  ?lifetime:float ->
  unit ->
  spec list
(** Poisson traffic for every ordered active pair, sorted by creation time.
    [lifetime] (seconds) sets each packet's deadline relative to creation. *)

val parallel_batch :
  Rapid_prelude.Rng.t ->
  trace:Trace.t ->
  n:int ->
  at:float ->
  size:int ->
  ?lifetime:float ->
  unit ->
  spec list
(** [n] packets created simultaneously at time [at] between random distinct
    active pairs — the fairness workload of §6.2.5. *)

val count_pairs : Trace.t -> int
(** Number of ordered active (src, dst) pairs. *)
