type t = { time : float; a : int; b : int; bytes : int }

let make ~time ~a ~b ~bytes =
  if a = b then invalid_arg "Contact.make: self-meeting";
  if time < 0.0 then invalid_arg "Contact.make: negative time";
  if bytes < 0 then invalid_arg "Contact.make: negative size";
  { time; a; b; bytes }

let involves c x = c.a = x || c.b = x

let peer_of c x =
  if c.a = x then c.b
  else if c.b = x then c.a
  else invalid_arg "Contact.peer_of: not an endpoint"

let compare_by_time c1 c2 =
  match Float.compare c1.time c2.time with
  | 0 -> (
      match Int.compare c1.a c2.a with
      | 0 -> (
          match Int.compare c1.b c2.b with
          | 0 -> Int.compare c1.bytes c2.bytes
          | n -> n)
      | n -> n)
  | n -> n

let pp fmt c =
  Format.fprintf fmt "@[contact t=%.1f %d<->%d %dB@]" c.time c.a c.b c.bytes
