(** A transfer opportunity.

    The paper's system model (§3.1) annotates each node meeting with a tuple
    [(t_e, s_e)]: the time of the meeting and the size of the transfer
    opportunity. Meetings are discrete and short-lived; all bytes moved
    during a meeting (data and control metadata) must fit in [bytes]. *)

type t = {
  time : float;  (** Seconds from the start of the trace. *)
  a : int;  (** First endpoint (node id). *)
  b : int;  (** Second endpoint; [a <> b]. *)
  bytes : int;  (** Size of the transfer opportunity, in bytes. *)
}

val make : time:float -> a:int -> b:int -> bytes:int -> t
(** Validates [a <> b], [time >= 0.], [bytes >= 0]. *)

val involves : t -> int -> bool
val peer_of : t -> int -> int
(** [peer_of c x] is the other endpoint; raises [Invalid_argument] if [x]
    is not an endpoint. *)

val compare_by_time : t -> t -> int
val pp : Format.formatter -> t -> unit
