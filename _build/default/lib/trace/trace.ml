type t = {
  num_nodes : int;
  duration : float;
  contacts : Contact.t array;
  active : int array;
}

let create ~num_nodes ~duration ?active contacts =
  if num_nodes <= 0 then invalid_arg "Trace.create: num_nodes";
  if duration <= 0.0 then invalid_arg "Trace.create: duration";
  List.iter
    (fun (c : Contact.t) ->
      if c.a < 0 || c.a >= num_nodes || c.b < 0 || c.b >= num_nodes then
        invalid_arg "Trace.create: node id out of range";
      if c.time > duration then invalid_arg "Trace.create: contact after horizon")
    contacts;
  let contacts = Array.of_list contacts in
  Array.sort Contact.compare_by_time contacts;
  let active =
    match active with
    | Some ids ->
        List.iter
          (fun i ->
            if i < 0 || i >= num_nodes then
              invalid_arg "Trace.create: active id out of range")
          ids;
        Array.of_list (List.sort_uniq compare ids)
    | None ->
        let module S = Set.Make (Int) in
        let s =
          Array.fold_left
            (fun s (c : Contact.t) -> S.add c.a (S.add c.b s))
            S.empty contacts
        in
        Array.of_list (S.elements s)
  in
  { num_nodes; duration; contacts; active }

let num_contacts t = Array.length t.contacts

let total_capacity_bytes t =
  Array.fold_left (fun acc (c : Contact.t) -> acc + c.bytes) 0 t.contacts

let contacts_between t x y =
  Array.to_list t.contacts
  |> List.filter (fun c -> Contact.involves c x && Contact.involves c y)

let mean_pair_meetings t =
  let n = Array.length t.active in
  if n < 2 then 0.0
  else begin
    let pairs = float_of_int (n * (n - 1) / 2) in
    float_of_int (num_contacts t) /. pairs
  end

let restrict_capacity t ~f =
  let contacts =
    Array.to_list t.contacts
    |> List.map (fun c -> { c with Contact.bytes = max 0 (f c) })
  in
  create ~num_nodes:t.num_nodes ~duration:t.duration
    ~active:(Array.to_list t.active) contacts

let drop_contacts t ~keep =
  let contacts = Array.to_list t.contacts |> List.filter keep in
  create ~num_nodes:t.num_nodes ~duration:t.duration
    ~active:(Array.to_list t.active) contacts

let pp_summary fmt t =
  Format.fprintf fmt
    "@[trace: %d nodes (%d active), %.0fs horizon, %d contacts, %.1f MB capacity@]"
    t.num_nodes (Array.length t.active) t.duration (num_contacts t)
    (float_of_int (total_capacity_bytes t) /. 1e6)
