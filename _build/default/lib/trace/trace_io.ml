let to_string (t : Trace.t) =
  let buf = Buffer.create (64 + (32 * Array.length t.contacts)) in
  Buffer.add_string buf "rapid-trace 1\n";
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" t.num_nodes);
  Buffer.add_string buf (Printf.sprintf "duration %.6f\n" t.duration);
  Buffer.add_string buf "active";
  Array.iter (fun i -> Buffer.add_string buf (Printf.sprintf " %d" i)) t.active;
  Buffer.add_char buf '\n';
  Array.iter
    (fun (c : Contact.t) ->
      Buffer.add_string buf
        (Printf.sprintf "contact %.6f %d %d %d\n" c.time c.a c.b c.bytes))
    t.contacts;
  Buffer.contents buf

let fail_line n msg = failwith (Printf.sprintf "Trace_io: line %d: %s" n msg)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let nodes = ref None in
  let duration = ref None in
  let active = ref None in
  let contacts = ref [] in
  let saw_header = ref false in
  List.iteri
    (fun idx line ->
      let n = idx + 1 in
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "rapid-trace"; "1" ] -> saw_header := true
        | [ "nodes"; v ] -> (
            match int_of_string_opt v with
            | Some v -> nodes := Some v
            | None -> fail_line n "bad node count")
        | [ "duration"; v ] -> (
            match float_of_string_opt v with
            | Some v -> duration := Some v
            | None -> fail_line n "bad duration")
        | "active" :: ids ->
            let parse v =
              match int_of_string_opt v with
              | Some v -> v
              | None -> fail_line n "bad active id"
            in
            active := Some (List.map parse ids)
        | [ "contact"; time; a; b; bytes ] -> (
            match
              ( float_of_string_opt time,
                int_of_string_opt a,
                int_of_string_opt b,
                int_of_string_opt bytes )
            with
            | Some time, Some a, Some b, Some bytes ->
                contacts := Contact.make ~time ~a ~b ~bytes :: !contacts
            | _ -> fail_line n "bad contact record")
        | _ -> fail_line n (Printf.sprintf "unrecognized record %S" line)
      end)
    lines;
  if not !saw_header then failwith "Trace_io: missing rapid-trace header";
  match (!nodes, !duration) with
  | Some num_nodes, Some duration ->
      Trace.create ~num_nodes ~duration ?active:!active (List.rev !contacts)
  | None, _ -> failwith "Trace_io: missing nodes record"
  | _, None -> failwith "Trace_io: missing duration record"

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
