lib/trace/workload.mli: Rapid_prelude Trace
