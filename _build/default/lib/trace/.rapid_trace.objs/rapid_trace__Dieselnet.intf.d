lib/trace/dieselnet.mli: Rapid_prelude Trace
