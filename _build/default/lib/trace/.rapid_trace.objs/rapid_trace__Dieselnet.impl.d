lib/trace/dieselnet.ml: Array Contact Dist Float Fun List Rapid_prelude Rng Trace
