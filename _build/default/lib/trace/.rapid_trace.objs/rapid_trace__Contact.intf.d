lib/trace/contact.mli: Format
