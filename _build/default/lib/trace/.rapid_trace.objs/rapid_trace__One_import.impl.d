lib/trace/one_import.ml: Contact Float Fun Hashtbl List Printf String Trace
