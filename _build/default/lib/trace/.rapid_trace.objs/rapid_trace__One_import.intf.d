lib/trace/one_import.mli: Trace
