lib/trace/trace.ml: Array Contact Format Int List Set
