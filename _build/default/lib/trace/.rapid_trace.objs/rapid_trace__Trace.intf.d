lib/trace/trace.mli: Contact Format
