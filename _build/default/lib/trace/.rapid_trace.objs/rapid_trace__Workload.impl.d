lib/trace/workload.ml: Array Dist Float List Option Rapid_prelude Rng Trace
