lib/trace/contact.ml: Float Format Int
