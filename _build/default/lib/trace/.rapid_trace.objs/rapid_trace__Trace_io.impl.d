lib/trace/trace_io.ml: Array Buffer Contact Fun List Printf String Trace
