(** A node-meeting schedule: the directed multigraph G = (V, E) of §3.1,
    flattened into a time-sorted contact list over a fixed horizon.

    Each trace corresponds to one experiment (e.g. one DieselNet day);
    packets not delivered by [duration] are lost, matching §6.1 ("each of
    the 58 days is a separate experiment"). [active] lists the nodes that
    are on the road that day — only they source or sink traffic. *)

type t = private {
  num_nodes : int;
  duration : float;
  contacts : Contact.t array;  (** Sorted by time ascending. *)
  active : int array;  (** Sorted ascending, no duplicates. *)
}

val create :
  num_nodes:int -> duration:float -> ?active:int list -> Contact.t list -> t
(** Sorts contacts; validates ids and times against the horizon. When
    [active] is omitted it defaults to all nodes appearing in a contact. *)

val num_contacts : t -> int
val total_capacity_bytes : t -> int
(** Σ s_e over all transfer opportunities. *)

val contacts_between : t -> int -> int -> Contact.t list
(** All contacts involving the two given nodes, in time order. *)

val mean_pair_meetings : t -> float
(** Average number of meetings per active unordered pair. *)

val restrict_capacity : t -> f:(Contact.t -> int) -> t
(** Rewrite opportunity sizes (used by the deployment-noise layer). *)

val drop_contacts : t -> keep:(Contact.t -> bool) -> t
val pp_summary : Format.formatter -> t -> unit
