(** Plain-text serialization of contact traces.

    Format (one record per line, '#' comments ignored):
    {v
    rapid-trace 1
    nodes <num_nodes>
    duration <seconds>
    active <id> <id> ...
    contact <time> <a> <b> <bytes>
    ...
    v}

    This lets users plug in real contact traces (e.g. converted DieselNet
    or Haggle data sets) without recompiling. *)

val to_string : Trace.t -> string
val of_string : string -> Trace.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val save : string -> Trace.t -> unit
val load : string -> Trace.t
