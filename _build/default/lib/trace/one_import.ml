let fail_line n msg = failwith (Printf.sprintf "One_import: line %d: %s" n msg)

let of_string ?(bandwidth_bytes_per_sec = 250_000) s =
  let ids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let names = ref [] in
  let id_of name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None ->
        let id = Hashtbl.length ids in
        Hashtbl.replace ids name id;
        names := (name, id) :: !names;
        id
  in
  (* Open intervals keyed by unordered pair. *)
  let open_since : (int * int, float) Hashtbl.t = Hashtbl.create 16 in
  let contacts = ref [] in
  let last_time = ref 0.0 in
  let close ~a ~b ~from_time ~until =
    let span = Float.max 0.0 (until -. from_time) in
    let bytes = int_of_float (span *. float_of_int bandwidth_bytes_per_sec) in
    contacts := Contact.make ~time:from_time ~a ~b ~bytes :: !contacts
  in
  List.iteri
    (fun idx line ->
      let n = idx + 1 in
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ time; "CONN"; h1; h2; state ] -> (
            match float_of_string_opt time with
            | None -> fail_line n "bad timestamp"
            | Some time ->
                if time < !last_time then fail_line n "events out of order";
                last_time := time;
                let a = id_of h1 and b = id_of h2 in
                if a = b then fail_line n "self-connection";
                let key = (min a b, max a b) in
                (match String.lowercase_ascii state with
                | "up" ->
                    if Hashtbl.mem open_since key then
                      fail_line n "connection already up"
                    else Hashtbl.replace open_since key time
                | "down" -> (
                    match Hashtbl.find_opt open_since key with
                    | Some from_time ->
                        Hashtbl.remove open_since key;
                        close ~a ~b ~from_time ~until:time
                    | None -> fail_line n "down without matching up")
                | other -> fail_line n (Printf.sprintf "unknown state %S" other)))
        | _ -> fail_line n (Printf.sprintf "unrecognized record %S" line)
      end)
    (String.split_on_char '\n' s);
  (* Close dangling intervals at the last observed event. *)
  Hashtbl.iter
    (fun (a, b) from_time -> close ~a ~b ~from_time ~until:!last_time)
    open_since;
  let num_nodes = max 1 (Hashtbl.length ids) in
  let duration = Float.max 1.0 (!last_time +. 1.0) in
  let trace = Trace.create ~num_nodes ~duration !contacts in
  (trace, List.rev !names)

let load ?bandwidth_bytes_per_sec path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string ?bandwidth_bytes_per_sec (really_input_string ic len))
