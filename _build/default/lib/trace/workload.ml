open Rapid_prelude

type spec = {
  src : int;
  dst : int;
  size : int;
  created : float;
  deadline : float option;
}

let count_pairs (trace : Trace.t) =
  let n = Array.length trace.active in
  n * (n - 1)

let generate rng ~(trace : Trace.t) ~pkts_per_hour_per_dest ~size ?lifetime () =
  let rate = pkts_per_hour_per_dest /. 3600.0 in
  let active = trace.active in
  let specs = ref [] in
  Array.iter
    (fun src ->
      Array.iter
        (fun dst ->
          if src <> dst then
            List.iter
              (fun t ->
                let deadline = Option.map (fun l -> t +. l) lifetime in
                specs := { src; dst; size; created = t; deadline } :: !specs)
              (Dist.poisson_process rng ~rate ~horizon:trace.duration))
        active)
    active;
  List.sort (fun a b -> Float.compare a.created b.created) !specs

let parallel_batch rng ~(trace : Trace.t) ~n ~at ~size ?lifetime () =
  let active = trace.active in
  if Array.length active < 2 then invalid_arg "parallel_batch: need >= 2 nodes";
  let deadline = Option.map (fun l -> at +. l) lifetime in
  List.init n (fun _ ->
      let src = Rng.sample rng active in
      let rec pick () =
        let dst = Rng.sample rng active in
        if dst = src then pick () else dst
      in
      { src; dst = pick (); size; created = at; deadline })
