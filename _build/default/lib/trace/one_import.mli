(** Importer for connectivity reports in the ONE simulator's format, the
    de-facto interchange format for DTN contact traces (also produced by
    several CRAWDAD data-set converters):

    {v
    <time> CONN <host1> <host2> up
    <time> CONN <host1> <host2> down
    v}

    Our model uses discrete transfer opportunities (t_e, s_e), so each
    up/down interval becomes one contact at the [up] time whose size is
    the interval length times [bandwidth_bytes_per_sec] (ONE's default
    Bluetooth speed, 250 kB/s, if unspecified). Intervals still open at
    the end of the report are closed at the last observed event time.
    Host names are arbitrary tokens; they are assigned dense node ids in
    first-appearance order. *)

val of_string :
  ?bandwidth_bytes_per_sec:int -> string -> Trace.t * (string * int) list
(** Returns the trace and the host-name → node-id mapping. Raises
    [Failure] with a line-numbered message on malformed input. *)

val load :
  ?bandwidth_bytes_per_sec:int -> string -> Trace.t * (string * int) list
