(** Executable construction for Theorem 1(a).

    A deterministic online algorithm ALG knows the workload (n unit
    packets p_i at source A, destined to v_i) but not the meeting
    schedule. ADV first reveals unit-size meetings (A, u_j) for every
    intermediary u_j at t = 0; ALG commits a replication choice; ADV then
    picks a bijection Y from intermediaries to destinations (procedure
    Generate-Y) and reveals meetings (u_j, Y(u_j)) at t = 1.

    Lemmas 1–3: ALG delivers at most one packet; ADV, routing p_i via
    Y⁻¹(v_i), delivers all n. So ALG is Ω(n)-competitive. *)

type alg = n:int -> int array
(** The online algorithm's replication choice: element j is the packet
    index (0-based) copied to intermediary u_j, or -1 to leave u_j empty.
    Each meeting carries one unit packet, so one packet per intermediary;
    a packet index may repeat (replication). *)

type outcome = {
  n : int;
  alg_delivered : int;
  adv_delivered : int;
  mapping : int array;  (** Y: intermediary j -> destination index. *)
}

val generate_y : assignment:int array -> int array
(** Procedure Generate-Y from the appendix. The result is a bijection. *)

val run : n:int -> alg:alg -> outcome

val replicate_first : alg
(** Floods packet 0 to every intermediary. *)

val spread : alg
(** Gives u_j packet j (one copy of each). *)

val greedy_modulo : int -> alg
(** Gives u_j packet (j mod k) — partial replication of k packets. *)
