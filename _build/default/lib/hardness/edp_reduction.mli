(** Theorem 2: the polynomial-time reduction from edge-disjoint paths
    (EDP) in a DAG to the DTN routing problem, plus brute-force oracles
    for validating it on small instances.

    Edges are labelled so that labels strictly increase along any path
    (topological edge labelling); edge e = (u, v) with label l becomes the
    unit-size transfer opportunity (u, v, 1 byte, time l); each
    source–destination pair becomes a unit packet created at time 0.
    A set of k edge-disjoint paths exists iff k packets are deliverable —
    so maximizing deliveries is NP-hard and inherits EDP's Ω(n^{1/2−ε})
    approximation lower bound. *)

type dag = {
  num_vertices : int;
  edges : (int * int) list;  (** Directed (u, v); must be acyclic. *)
}

val is_dag : dag -> bool

val label_edges : dag -> (int * int * int) list
(** [(u, v, label)] with distinct labels, increasing along every path.
    Raises [Invalid_argument] on a cyclic input. *)

val to_dtn :
  dag ->
  pairs:(int * int) list ->
  Rapid_trace.Trace.t * Rapid_trace.Workload.spec list
(** The reduction. DAG vertices keep their ids; since the paper's model
    uses {e directed} transfer opportunities while our contacts are
    symmetric, each edge (u, v) with label l is realized as a relay vertex
    w with contacts (u, w) at 2l and (w, v) at 2l+1 — usable only in the
    u→v direction and by a single unit packet, preserving the
    equivalence. *)

val max_edge_disjoint_paths : dag -> pairs:(int * int) list -> int
(** Brute-force EDP oracle (exponential; small instances only). Paths must
    respect edge direction; each pair contributes at most one path. *)

val max_deliveries_brute :
  Rapid_trace.Trace.t -> Rapid_trace.Workload.spec list -> int
(** Brute-force optimal delivery count for unit packets over unit
    opportunities (exponential; small instances only). *)
