open Rapid_trace

type dag = { num_vertices : int; edges : (int * int) list }

let topo_order dag =
  let n = dag.num_vertices in
  let indeg = Array.make n 0 in
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Edp_reduction: vertex out of range";
      indeg.(v) <- indeg.(v) + 1;
      adj.(u) <- v :: adj.(u))
    dag.edges;
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      adj.(u)
  done;
  let order = List.rev !order in
  if List.length order <> n then None else Some order

let is_dag dag = Option.is_some (topo_order dag)

let label_edges dag =
  match topo_order dag with
  | None -> invalid_arg "Edp_reduction.label_edges: graph has a cycle"
  | Some order ->
      let pos = Array.make dag.num_vertices 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      (* Labelling all edges out of earlier vertices first guarantees
         l(e_in) < l(e_out) along any path. *)
      let sorted =
        List.stable_sort
          (fun (u1, _) (u2, _) -> Int.compare pos.(u1) pos.(u2))
          dag.edges
      in
      List.mapi (fun i (u, v) -> (u, v, i + 1)) sorted

let to_dtn dag ~pairs =
  let labelled = label_edges dag in
  (* The paper's model has *directed* transfer opportunities; our contacts
     are symmetric. Enforce direction with a relay vertex per edge: edge
     (u, v) labelled l becomes contacts (u, w) at 2l and (w, v) at 2l+1.
     Traversing backwards would need (v, w) at 2l+1 followed by (w, u) at
     2l — not time-respecting — so only u -> v is usable, and each original
     edge still carries at most one unit packet. *)
  let num_relays = List.length labelled in
  let num_nodes = dag.num_vertices + num_relays in
  let contacts =
    List.concat
      (List.mapi
         (fun i (u, v, l) ->
           let w = dag.num_vertices + i in
           [
             Contact.make ~time:(float_of_int (2 * l)) ~a:u ~b:w ~bytes:1;
             Contact.make ~time:(float_of_int ((2 * l) + 1)) ~a:w ~b:v ~bytes:1;
           ])
         labelled)
  in
  let horizon = float_of_int ((2 * (List.length labelled + 1)) + 1) in
  let trace =
    Trace.create ~num_nodes ~duration:horizon
      ~active:(List.init dag.num_vertices Fun.id)
      contacts
  in
  let workload =
    List.map
      (fun (s, t) ->
        { Workload.src = s; dst = t; size = 1; created = 0.0; deadline = None })
      pairs
  in
  (trace, workload)

(* All directed paths from s to t as edge index sets. *)
let paths_between dag ~edge_ids s t =
  let adj = Array.make dag.num_vertices [] in
  List.iteri
    (fun idx (u, v) -> adj.(u) <- (v, idx) :: adj.(u))
    edge_ids;
  let results = ref [] in
  let rec dfs u used path =
    if u = t then results := path :: !results
    else
      List.iter
        (fun (v, idx) ->
          if not (List.mem idx used) then dfs v (idx :: used) (idx :: path))
        adj.(u)
  in
  dfs s [] [];
  !results

let max_edge_disjoint_paths dag ~pairs =
  let edge_ids = dag.edges in
  let all_paths =
    List.map (fun (s, t) -> paths_between dag ~edge_ids s t) pairs
  in
  (* Backtrack over pairs: for each, either skip it or use one of its paths
     disjoint from already-used edges. *)
  let rec go best pairs_paths used count =
    match pairs_paths with
    | [] -> max best count
    | paths :: rest ->
        let best = go best rest used count in
        List.fold_left
          (fun best path ->
            if List.exists (fun e -> List.mem e used) path then best
            else go best rest (path @ used) (count + 1))
          best paths
  in
  go 0 all_paths [] 0

let max_deliveries_brute (trace : Trace.t) workload =
  (* State: packet -> set of holders (replication allowed; it never helps
     with unit opportunities, but brute force should not assume that).
     Each contact moves at most one unit packet in one direction. *)
  let packets = Array.of_list workload in
  let np = Array.length packets in
  let contacts = trace.Trace.contacts in
  let nc = Array.length contacts in
  (* holders: np arrays of int sets, encoded as bit masks over nodes.
     Memoized on (contact index, holder masks) — many interleavings reach
     the same state. *)
  let memo : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let key ci holders =
    let b = Stdlib.Buffer.create 32 in
    Stdlib.Buffer.add_string b (string_of_int ci);
    Array.iter
      (fun m ->
        Stdlib.Buffer.add_char b ',';
        Stdlib.Buffer.add_string b (string_of_int m))
      holders;
    Stdlib.Buffer.contents b
  in
  let rec explore ci holders =
    if ci = nc then begin
      let count = ref 0 in
      Array.iteri
        (fun pi mask ->
          if mask land (1 lsl packets.(pi).Workload.dst) <> 0 then incr count)
        holders;
      !count
    end
    else begin
      let k = key ci holders in
      match Hashtbl.find_opt memo k with
      | Some v -> v
      | None ->
          let v = explore_raw ci holders in
          Hashtbl.replace memo k v;
          v
    end
  and explore_raw ci holders =
    begin
      let c = contacts.(ci) in
      (* Option 0: carry nothing. *)
      let best = ref (explore (ci + 1) holders) in
      (* Option: replicate packet pi across the contact (either way). *)
      for pi = 0 to np - 1 do
        if packets.(pi).Workload.created <= c.Contact.time then begin
          let mask = holders.(pi) in
          let try_dir from_ to_ =
            if mask land (1 lsl from_) <> 0 && mask land (1 lsl to_) = 0 then begin
              let holders' = Array.copy holders in
              holders'.(pi) <- mask lor (1 lsl to_);
              let r = explore (ci + 1) holders' in
              if r > !best then best := r
            end
          in
          try_dir c.Contact.a c.Contact.b;
          try_dir c.Contact.b c.Contact.a
        end
      done;
      !best
    end
  in
  let holders =
    Array.map (fun (p : Workload.spec) -> 1 lsl p.Workload.src) packets
  in
  explore 0 holders
