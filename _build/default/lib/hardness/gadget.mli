(** Executable construction for Theorem 1(b).

    ALG knows the meeting schedule but not the workload. The basic gadget:
    node A holds p1 (→ v1) and p2 (→ v2); unit meetings (A, v1') and
    (A, v2') at T1, then (v1', v1) and (v2', v2) at T2. Whatever ALG does
    at T1, ADV injects one new packet at each intermediary so that ALG
    must drop half the packets at T2, while ADV (choosing the opposite
    placement) delivers everything (Lemma 4).

    Composing gadgets to depth i limits ALG's delivery rate to
    i/(3i − 1) → 1/3. *)

type alg_choice =
  | Straight  (** p1 → v1', p2 → v2'. *)
  | Crossed  (** p1 → v2', p2 → v1'. *)
  | Replicate_p1  (** p1 to both intermediaries; p2 dropped at A. *)

type outcome = {
  alg_delivered : int;
  adv_delivered : int;
  total_packets : int;
}

val basic_gadget : alg_choice -> outcome
(** Lemma 4: ALG delivers at most half; ADV delivers all 4 packets. *)

val depth_ratio : int -> float
(** The delivery-rate bound i/(3i − 1) ADV forces at composition depth i;
    [depth_ratio 1 = 1/2], limit 1/3. *)

val packets_at_depth : int -> int
(** Total packets ADV creates in a depth-i composition: 3i + 1. *)
