lib/hardness/online_adversary.mli:
