lib/hardness/edp_reduction.mli: Rapid_trace
