lib/hardness/gadget.ml:
