lib/hardness/gadget.mli:
