lib/hardness/edp_reduction.ml: Array Contact Fun Hashtbl Int List Option Queue Rapid_trace Stdlib Trace Workload
