lib/hardness/online_adversary.ml: Array Fun
