type alg = n:int -> int array

type outcome = {
  n : int;
  alg_delivered : int;
  adv_delivered : int;
  mapping : int array;
}

let generate_y ~assignment =
  let n = Array.length assignment in
  let y = Array.make n (-1) in
  (* carries.(j) = packet at u_j; X(p_i) = { j | carries.(j) = i }. *)
  for i = 0 to n - 1 do
    (* Line 3: find the smallest unmapped u_j NOT carrying p_i. *)
    let found = ref (-1) in
    (try
       for j = 0 to n - 1 do
         if y.(j) = -1 && assignment.(j) <> i then begin
           found := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !found >= 0 then y.(!found) <- i
    else begin
      (* Line 6: any unmapped u_j (executed at most once — Lemma 1). *)
      let j = ref 0 in
      while y.(!j) <> -1 do
        incr j
      done;
      y.(!j) <- i
    end
  done;
  y

let run ~n ~alg =
  if n <= 0 then invalid_arg "Online_adversary.run: n must be positive";
  let assignment = alg ~n in
  if Array.length assignment <> n then
    invalid_arg "Online_adversary.run: assignment must have length n";
  Array.iter
    (fun p ->
      if p < -1 || p >= n then
        invalid_arg "Online_adversary.run: packet index out of range")
    assignment;
  let y = generate_y ~assignment in
  (* ALG delivers p_i iff some intermediary carrying p_i is mapped to v_i. *)
  let delivered = Array.make n false in
  Array.iteri
    (fun j dest -> if assignment.(j) = dest && dest >= 0 then delivered.(dest) <- true)
    y;
  let alg_delivered = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 delivered in
  (* ADV routes p_i through Y⁻¹(v_i): always deliverable since Y is a
     bijection. *)
  { n; alg_delivered; adv_delivered = n; mapping = y }

let replicate_first ~n = Array.make n 0
let spread ~n = Array.init n Fun.id
let greedy_modulo k ~n = Array.init n (fun j -> j mod max 1 k)
