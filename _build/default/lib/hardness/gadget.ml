type alg_choice = Straight | Crossed | Replicate_p1

type outcome = {
  alg_delivered : int;
  adv_delivered : int;
  total_packets : int;
}

let basic_gadget choice =
  (* After T1, ADV creates p2' at the intermediary ALG used for p1 (destined
     to v2) and p1' at the one used for p2 (destined to v1). Each T2 meeting
     carries one unit packet, so each intermediary delivers exactly one of
     its two packets; the injected packet and the carried one contend.

     ALG keeps one per intermediary: at v1' it holds {p1, p2'} and the T2
     meeting reaches v1 — only p1 is deliverable there; at v2' it holds
     {p2, p1'} and reaches v2 — only p2 is deliverable. The injected
     packets p1'/p2' sit at intermediaries whose T2 meeting goes to the
     wrong destination, so ALG delivers 2 of 4.

     Under Crossed the carried packets are at the wrong intermediaries and
     the injected ones are at the right ones: still 2 of 4. Replicating p1
     on both edges drops p2 immediately; ADV then attaches a fresh gadget
     per replica, and ALG again salvages at most half.

     ADV, playing the opposite placement, delivers all 4 (Lemma 4). *)
  let alg_delivered =
    match choice with Straight -> 2 | Crossed -> 2 | Replicate_p1 -> 2
  in
  { alg_delivered; adv_delivered = 4; total_packets = 4 }

let depth_ratio i =
  if i <= 0 then invalid_arg "Gadget.depth_ratio: depth must be positive";
  float_of_int i /. float_of_int ((3 * i) - 1)

let packets_at_depth i =
  if i <= 0 then invalid_arg "Gadget.packets_at_depth: depth must be positive";
  (3 * i) + 1
