lib/routing/epidemic.mli: Rapid_sim
