lib/routing/optimal.ml: Array Contact Float Hashtbl Ilp Int List Lp_problem Option Rapid_lp Rapid_trace Trace Workload
