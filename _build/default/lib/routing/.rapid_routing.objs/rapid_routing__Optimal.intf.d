lib/routing/optimal.mli: Rapid_trace
