lib/routing/direct.ml: Buffer Env Float List Packet Protocol Rapid_sim
