lib/routing/spray_wait.ml: Array Buffer Env Float Hashtbl Int List Option Packet Printf Protocol Ranking Rapid_prelude Rapid_sim Rng
