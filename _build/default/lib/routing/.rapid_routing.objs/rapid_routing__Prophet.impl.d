lib/routing/prophet.ml: Array Buffer Env Float Int List Option Packet Protocol Ranking Rapid_sim
