lib/routing/epidemic.ml: Buffer Env Float Int List Packet Protocol Ranking Rapid_sim
