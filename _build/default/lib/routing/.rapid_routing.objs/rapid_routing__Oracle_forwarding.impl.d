lib/routing/oracle_forwarding.ml: Array Buffer Contact Env Float List Option Packet Protocol Ranking Rapid_sim Rapid_trace Trace
