lib/routing/maxprop.ml: Array Buffer Env Float Hashtbl Int List Moving_average Option Packet Pqueue Protocol Ranking Rapid_prelude Rapid_sim
