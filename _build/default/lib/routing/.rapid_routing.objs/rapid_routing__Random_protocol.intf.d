lib/routing/random_protocol.mli: Rapid_sim
