lib/routing/oracle_forwarding.mli: Rapid_sim Rapid_trace
