lib/routing/maxprop.mli: Rapid_sim
