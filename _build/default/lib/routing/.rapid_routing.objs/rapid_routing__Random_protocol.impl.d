lib/routing/random_protocol.ml: Array Buffer Env Float List Packet Protocol Ranking Rapid_prelude Rapid_sim Rng
