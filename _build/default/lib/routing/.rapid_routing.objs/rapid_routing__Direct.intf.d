lib/routing/direct.mli: Rapid_sim
