lib/routing/prophet.mli: Rapid_sim
