lib/routing/spray_wait.mli: Rapid_sim
