open Rapid_sim

let make ?(p_init = 0.75) ?(beta = 0.25) ?(gamma = 0.98) ?(time_unit = 30.0)
    ?(entry_bytes = 12) () : Protocol.packed =
  (module struct
    type t = {
      env : Env.t;
      ranking : Ranking.t;
      p : float array array;  (* p.(a).(b): a's predictability of meeting b *)
      last_aged : float array;
    }

    let name = "Prophet"

    let create env =
      let n = env.Env.num_nodes in
      {
        env;
        ranking = Ranking.create ();
        p = Array.init n (fun _ -> Array.make n 0.0);
        last_aged = Array.make n 0.0;
      }

    let age t ~now node =
      let elapsed = now -. t.last_aged.(node) in
      if elapsed > 0.0 then begin
        let factor = gamma ** (elapsed /. time_unit) in
        let row = t.p.(node) in
        for j = 0 to Array.length row - 1 do
          row.(j) <- row.(j) *. factor
        done;
        t.last_aged.(node) <- now
      end

    let on_created _ ~now:_ _ = ()

    let by_age (a : Buffer.entry) (b : Buffer.entry) =
      match Float.compare a.packet.Packet.created b.packet.Packet.created with
      | 0 -> Int.compare a.packet.Packet.id b.packet.Packet.id
      | n -> n

    let rank t ~sender ~receiver =
      let candidates = Ranking.replication_candidates t.env ~sender ~receiver in
      let direct, rest = Protocol.split_direct ~receiver candidates in
      (* Replicate only when the peer is strictly more likely to deliver. *)
      let forwardable =
        List.filter
          (fun (e : Buffer.entry) ->
            let dst = e.packet.Packet.dst in
            t.p.(receiver).(dst) > t.p.(sender).(dst))
          rest
      in
      let by_peer_predictability (a : Buffer.entry) (b : Buffer.entry) =
        match
          Float.compare
            t.p.(receiver).(b.packet.Packet.dst)
            t.p.(receiver).(a.packet.Packet.dst)
        with
        | 0 -> by_age a b
        | n -> n
      in
      List.map
        (fun (e : Buffer.entry) -> e.packet)
        (List.sort by_age direct @ List.sort by_peer_predictability forwardable)

    let on_contact t ~now ~a ~b ~budget:_ ~meta_budget:_ =
      Ranking.begin_contact t.ranking;
      age t ~now a;
      age t ~now b;
      (* Encounter update. *)
      t.p.(a).(b) <- t.p.(a).(b) +. ((1.0 -. t.p.(a).(b)) *. p_init);
      t.p.(b).(a) <- t.p.(b).(a) +. ((1.0 -. t.p.(b).(a)) *. p_init);
      (* Transitivity through the peer's table. *)
      let n = t.env.Env.num_nodes in
      for c = 0 to n - 1 do
        if c <> a && c <> b then begin
          let via_b = t.p.(a).(b) *. t.p.(b).(c) *. beta in
          if via_b > t.p.(a).(c) then t.p.(a).(c) <- via_b;
          let via_a = t.p.(b).(a) *. t.p.(a).(c) *. beta in
          if via_a > t.p.(b).(c) then t.p.(b).(c) <- via_a
        end
      done;
      Ranking.set t.ranking ~sender:a ~receiver:b (rank t ~sender:a ~receiver:b);
      Ranking.set t.ranking ~sender:b ~receiver:a (rank t ~sender:b ~receiver:a);
      (* Both nodes ship their predictability vectors. *)
      2 * n * entry_bytes

    let next_packet t ~now:_ ~sender ~receiver ~budget =
      Ranking.next t.ranking t.env ~sender ~receiver ~budget

    let on_transfer _ ~now:_ ~sender:_ ~receiver:_ _ ~delivered:_ = ()

    let drop_candidate t ~now:_ ~node ~incoming:_ =
      (* Evict the packet this node is least likely to deliver. *)
      let entries = Env.buffered_entries t.env node in
      let worst =
        List.fold_left
          (fun acc (e : Buffer.entry) ->
            let score = t.p.(node).(e.packet.Packet.dst) in
            match acc with
            | Some (_, s) when s <= score -> acc
            | _ -> Some (e.packet, score))
          None entries
      in
      Option.map fst worst

    let on_dropped _ ~now:_ ~node:_ _ = ()
  end : Protocol.S)
