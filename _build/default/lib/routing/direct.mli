(** Direct delivery: a packet is handed over only when its source (or a
    prior carrier — none exist here, so only the source) meets the
    destination. The degenerate baseline P2-style single-copy protocol;
    useful as a floor in experiments and as the simplest possible
    {!Rapid_sim.Protocol.S} implementation. *)

val make : unit -> Rapid_sim.Protocol.packed
