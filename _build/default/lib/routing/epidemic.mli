(** Epidemic routing (Vahdat & Becker [24] in the paper's taxonomy, P1):
    replicate every packet the peer is missing, oldest first, with no
    replication control. The canonical naive-flooding baseline. *)

val make : unit -> Rapid_sim.Protocol.packed
