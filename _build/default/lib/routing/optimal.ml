open Rapid_trace
open Rapid_lp

type how = Ilp_exact | Ilp_incumbent | Bound

type verdict = {
  avg_delay_all : float;
  delivered : int;
  created : int;
  delivery_rate : float;
  how : how;
}

(* Earliest arrival of packet [p] at every node, ignoring cross-packet
   bandwidth contention. *)
let earliest_arrival (trace : Trace.t) (p : Workload.spec) =
  let reach = Array.make trace.Trace.num_nodes infinity in
  reach.(p.Workload.src) <- p.Workload.created;
  Array.iter
    (fun (c : Contact.t) ->
      if c.Contact.bytes >= p.Workload.size then begin
        if reach.(c.Contact.a) <= c.Contact.time && c.Contact.time < reach.(c.Contact.b)
        then reach.(c.Contact.b) <- c.Contact.time;
        if reach.(c.Contact.b) <= c.Contact.time && c.Contact.time < reach.(c.Contact.a)
        then reach.(c.Contact.a) <- c.Contact.time
      end)
    trace.Trace.contacts;
  reach

(* Latest time at which holding packet [p] at a node still allows reaching
   the destination (reverse sweep). *)
let latest_departure (trace : Trace.t) (p : Workload.spec) =
  let l = Array.make trace.Trace.num_nodes neg_infinity in
  l.(p.Workload.dst) <- infinity;
  let m = Array.length trace.Trace.contacts in
  for i = m - 1 downto 0 do
    let c = trace.Trace.contacts.(i) in
    if c.Contact.bytes >= p.Workload.size then begin
      if l.(c.Contact.b) >= c.Contact.time && c.Contact.time > l.(c.Contact.a) then
        l.(c.Contact.a) <- c.Contact.time;
      if l.(c.Contact.a) >= c.Contact.time && c.Contact.time > l.(c.Contact.b) then
        l.(c.Contact.b) <- c.Contact.time
    end
  done;
  l

let summarize_delays ~duration ~how delays_opt specs =
  let n = List.length specs in
  let total, delivered =
    List.fold_left2
      (fun (acc, k) d (s : Workload.spec) ->
        match d with
        | Some t -> (acc +. (t -. s.Workload.created), k + 1)
        | None -> (acc +. (duration -. s.Workload.created), k))
      (0.0, 0) delays_opt specs
  in
  {
    avg_delay_all = (if n = 0 then nan else total /. float_of_int n);
    delivered;
    created = n;
    delivery_rate = (if n = 0 then 0.0 else float_of_int delivered /. float_of_int n);
    how;
  }

let contention_free ~trace ~workload =
  let delays =
    List.map
      (fun (s : Workload.spec) ->
        let reach = earliest_arrival trace s in
        let t = reach.(s.Workload.dst) in
        if Float.is_finite t then Some t else None)
      workload
  in
  summarize_delays ~duration:trace.Trace.duration ~how:Bound delays workload

(* One directed arc of the time-expanded graph. *)
type arc = { contact : int; from_ : int; to_ : int; time : float }

let build_arcs (trace : Trace.t) =
  let arcs = ref [] in
  Array.iteri
    (fun k (c : Contact.t) ->
      arcs :=
        { contact = k; from_ = c.Contact.b; to_ = c.Contact.a; time = c.Contact.time }
        :: { contact = k; from_ = c.Contact.a; to_ = c.Contact.b; time = c.Contact.time }
        :: !arcs)
    trace.Trace.contacts;
  (* Ascending contact order; within a contact the two directions are
     adjacent. *)
  List.sort (fun a b -> Int.compare a.contact b.contact) !arcs

type objective = Min_total_delay | Max_deliveries

let evaluate ?(objective = Min_total_delay) ?(max_vars = 1200)
    ?(max_rows = 1500) ?(max_bb_nodes = 300) ~trace ~workload () =
  let specs = Array.of_list workload in
  let np = Array.length specs in
  if np = 0 then
    { avg_delay_all = nan; delivered = 0; created = 0; delivery_rate = 0.0;
      how = Ilp_exact }
  else begin
    let all_arcs = build_arcs trace in
    (* Per-packet usable arcs after reachability pruning. *)
    let usable =
      Array.map
        (fun (s : Workload.spec) ->
          let reach = earliest_arrival trace s in
          let depart = latest_departure trace s in
          List.filter
            (fun a ->
              a.time >= s.Workload.created
              && trace.Trace.contacts.(a.contact).Contact.bytes >= s.Workload.size
              && reach.(a.from_) <= a.time
              && depart.(a.to_) >= a.time)
            all_arcs)
        specs
    in
    let num_x = Array.fold_left (fun acc l -> acc + List.length l) 0 usable in
    (* Row estimate: causality per (packet, arc) + receive-once per touched
       node + one bandwidth row per touched contact. *)
    let row_estimate = num_x + (2 * num_x) + Array.length trace.Trace.contacts in
    if num_x = 0 then
      summarize_delays ~duration:trace.Trace.duration ~how:Ilp_exact
        (List.map (fun _ -> None) workload)
        workload
    else if num_x > max_vars || row_estimate > max_rows then
      { (contention_free ~trace ~workload) with how = Bound }
    else begin
      let problem = Lp_problem.create ~num_vars:num_x in
      (* Variable layout: packets in order, arcs in usable order. *)
      let var_index = Hashtbl.create num_x in
      let next = ref 0 in
      Array.iteri
        (fun pi arcs ->
          List.iteri
            (fun ai _ ->
              Hashtbl.replace var_index (pi, ai) !next;
              incr next)
            arcs)
        usable;
      let duration = trace.Trace.duration in
      (* Min_total_delay: a delivery at t reduces the total by (horizon - t);
         Max_deliveries: every delivery counts -1. *)
      let obj_terms = ref [] in
      Array.iteri
        (fun pi arcs ->
          let dst = specs.(pi).Workload.dst in
          List.iteri
            (fun ai a ->
              if a.to_ = dst then begin
                let coeff =
                  match objective with
                  | Min_total_delay -> a.time -. duration
                  | Max_deliveries -> -1.0
                in
                obj_terms := (Hashtbl.find var_index (pi, ai), coeff) :: !obj_terms
              end)
            arcs)
        usable;
      Lp_problem.set_objective problem !obj_terms;
      (* Bandwidth per contact. *)
      let per_contact = Hashtbl.create 64 in
      Array.iteri
        (fun pi arcs ->
          let size = float_of_int specs.(pi).Workload.size in
          List.iteri
            (fun ai a ->
              let cur =
                Option.value (Hashtbl.find_opt per_contact a.contact) ~default:[]
              in
              Hashtbl.replace per_contact a.contact
                ((Hashtbl.find var_index (pi, ai), size) :: cur))
            arcs)
        usable;
      Hashtbl.iter
        (fun k terms ->
          Lp_problem.add_constraint problem terms Lp_problem.Le
            (float_of_int trace.Trace.contacts.(k).Contact.bytes))
        per_contact;
      (* Per packet: receive-once and causality. *)
      Array.iteri
        (fun pi arcs ->
          let src = specs.(pi).Workload.src in
          let arcs = Array.of_list arcs in
          let n_arcs = Array.length arcs in
          let var ai = Hashtbl.find var_index (pi, ai) in
          (* Receive at most once per node. *)
          let incoming = Hashtbl.create 8 in
          Array.iteri
            (fun ai a ->
              let cur = Option.value (Hashtbl.find_opt incoming a.to_) ~default:[] in
              Hashtbl.replace incoming a.to_ ((var ai, 1.0) :: cur))
            arcs;
          Hashtbl.iter
            (fun _node terms ->
              Lp_problem.add_constraint problem terms Lp_problem.Le 1.0)
            incoming;
          (* Causality: an arc out of node n at contact k needs the packet
             present: X_d + (prior outs of n) - (prior ins of n) <= [n=src].
             Arc lists are contact-ordered, so a prefix scan suffices. *)
          for d = 0 to n_arcs - 1 do
            let a = arcs.(d) in
            let n = a.from_ in
            let terms = ref [ (var d, 1.0) ] in
            for e = 0 to n_arcs - 1 do
              if arcs.(e).contact < a.contact then begin
                if arcs.(e).from_ = n then terms := (var e, 1.0) :: !terms
                else if arcs.(e).to_ = n then terms := (var e, -1.0) :: !terms
              end
            done;
            let rhs = if n = src then 1.0 else 0.0 in
            Lp_problem.add_constraint problem !terms Lp_problem.Le rhs
          done;
          (* Upper bounds and integrality. *)
          for d = 0 to n_arcs - 1 do
            Lp_problem.add_constraint problem [ (var d, 1.0) ] Lp_problem.Le 1.0;
            Lp_problem.mark_integer problem (var d)
          done)
        usable;
      match Ilp.solve ~max_nodes:max_bb_nodes problem with
      | Ilp.Solved o ->
          let delays =
            Array.to_list
              (Array.mapi
                 (fun pi (s : Workload.spec) ->
                   let arcs = Array.of_list usable.(pi) in
                   let best = ref None in
                   Array.iteri
                     (fun ai a ->
                       if
                         a.to_ = s.Workload.dst
                         && o.Ilp.solution.(Hashtbl.find var_index (pi, ai)) > 0.5
                       then
                         match !best with
                         | Some t when t <= a.time -> ()
                         | _ -> best := Some a.time)
                     arcs;
                   !best)
                 specs)
          in
          let how = if o.Ilp.proven_optimal then Ilp_exact else Ilp_incumbent in
          summarize_delays ~duration ~how delays workload
      | Ilp.Infeasible | Ilp.Unbounded | Ilp.No_incumbent ->
          (* The program is always feasible (all-zero = nothing delivered);
             reaching here means the solver gave up — fall back. *)
          { (contention_free ~trace ~workload) with how = Bound }
    end
  end
