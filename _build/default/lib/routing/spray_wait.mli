(** Binary Spray and Wait (Spyropoulos et al. [30]).

    Each packet starts with [l] logical copies at its source. In the spray
    phase a node holding [n > 1] copies that meets a node without the
    packet hands over ⌊n/2⌋ copies and keeps ⌈n/2⌉. A node holding a
    single copy waits and delivers only directly to the destination.

    The paper sets L = 12 for the evaluation ("based on consultation with
    authors and using Lemma 4.3 in [30] with a = 4"). Storage eviction is
    random, matching §6.3.2 ("Spray and Wait and Random deletes packets
    randomly"). *)

val make : ?l:int -> unit -> Rapid_sim.Protocol.packed
(** [l] defaults to 12. *)
