(** MaxProp (Burgess et al. [5]) — the strongest incidental baseline and
    the paper's own prior work; closest to RAPID's problem space (P5).

    Mechanisms implemented, following the MaxProp paper:
    - per-node meeting-likelihood vectors with incremental averaging
      (start uniform; on meeting j, bump f_j and renormalize), exchanged
      at every contact and charged to the control channel;
    - destination cost = cheapest path cost under Dijkstra where an edge
      (u, v) costs 1 − f^u(v), computed from the node's learned vectors;
    - buffer priority: packets below an adaptive hop-count threshold go
      first (new packets, sorted by hops), the remainder sorted by path
      cost — the behaviour §6.3.1 calls "MaxProp prioritizes new packets";
    - flooded delivery acknowledgments purging dead replicas;
    - eviction from the tail: highest hop count first, then worst cost
      (§6.3.2: "deletes packets that are replicated most number of
      times"). *)

val make :
  ?ack_entry_bytes:int -> ?vector_entry_bytes:int -> unit ->
  Rapid_sim.Protocol.packed
