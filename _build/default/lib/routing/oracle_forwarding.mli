(** Oracle-based single-copy forwarding — the P2/P4 contrast class
    (Jain et al. [18], "Routing in a Delay Tolerant Network").

    The protocol holds the complete meeting schedule (an oracle the paper
    argues is unrealistic even for a scheduled bus service, §2) and keeps
    exactly one copy of each packet: at a contact it hands the copy over
    iff this contact lies on an earliest-arrival time-respecting path from
    the carrier to the destination computed over the *future* schedule.

    Including it alongside RAPID quantifies the paper's replication-vs-
    forwarding argument: even with perfect future knowledge, single-copy
    forwarding forfeits the delay gains of replication under uncertainty
    about which copy wins, while using far less bandwidth. *)

val make : trace:Rapid_trace.Trace.t -> unit -> Rapid_sim.Protocol.packed
(** The trace passed here must be the one the engine replays (the oracle).
    Buffer eviction drops the packet with the latest (or no) deliverable
    path. *)
