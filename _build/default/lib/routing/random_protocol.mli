(** Random replication (§6.1): "replicates randomly chosen packets for the
    duration of the transfer opportunity".

    [with_acks] adds flooded delivery acknowledgments (the "Random with
    acks" component baseline of Fig. 14): at each contact the two nodes
    union their ack sets — charged to the control channel — and purge
    buffered copies known to be delivered. *)

val make :
  ?with_acks:bool -> ?summary_vector:bool -> ?ack_entry_bytes:int -> unit ->
  Rapid_sim.Protocol.packed
(** [summary_vector] (default false, as the paper's baseline) controls
    whether Random learns what the peer already holds; without it,
    duplicate pushes consume real bandwidth. [ack_entry_bytes] (default 8)
    is charged per ack entry newly learned at a contact. *)
