(** Branch-and-bound integer linear programming on top of {!Simplex}.

    Best-first search on the LP relaxation bound, branching on the most
    fractional integer-marked variable. A node budget caps the work; when it
    is exhausted the best incumbent found so far is returned with
    [proven_optimal = false] (the Fig. 13 harness reports which). *)

type outcome = {
  objective : float;
  solution : float array;
  proven_optimal : bool;
  nodes_explored : int;
}

type result = Solved of outcome | Infeasible | Unbounded | No_incumbent
(** [No_incumbent]: the node budget ran out before any integral solution was
    found. *)

val solve : ?max_nodes:int -> ?int_tol:float -> Lp_problem.t -> result
(** [solve p] minimizes [p] with the integrality marks honoured.
    [max_nodes] defaults to 4000; [int_tol] to 1e-6. *)
