open Rapid_prelude

type outcome = {
  objective : float;
  solution : float array;
  proven_optimal : bool;
  nodes_explored : int;
}

type result = Solved of outcome | Infeasible | Unbounded | No_incumbent

type node = { extra : Lp_problem.constr list; depth : int }

let most_fractional int_vars solution int_tol =
  let best = ref None in
  List.iter
    (fun v ->
      let x = solution.(v) in
      let frac = Float.abs (x -. Float.round x) in
      if frac > int_tol then
        match !best with
        | Some (_, f) when f >= frac -> ()
        | _ -> best := Some (v, frac))
    int_vars;
  !best

let solve ?(max_nodes = 4000) ?(int_tol = 1e-6) problem =
  let int_vars = Lp_problem.integer_vars problem in
  match Simplex.solve problem with
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded -> Unbounded
  | Simplex.Optimal root ->
      (match most_fractional int_vars root.solution int_tol with
      | None ->
          Solved
            { objective = root.objective; solution = root.solution;
              proven_optimal = true; nodes_explored = 1 }
      | Some _ ->
          let queue = Pqueue.create () in
          Pqueue.push queue root.objective { extra = []; depth = 0 };
          let incumbent = ref None in
          let nodes = ref 0 in
          let budget_hit = ref false in
          let better obj =
            match !incumbent with
            | None -> true
            | Some (o, _) -> obj < o -. 1e-9
          in
          let rec bb () =
            match Pqueue.pop queue with
            | None -> ()
            | Some (bound, node) ->
                (* Prune against the incumbent. *)
                if not (better bound) then bb ()
                else if !nodes >= max_nodes then budget_hit := true
                else begin
                  incr nodes;
                  (match Simplex.solve ~extra:node.extra problem with
                  | Simplex.Infeasible | Simplex.Unbounded -> ()
                  | Simplex.Optimal { objective; solution } ->
                      if better objective then begin
                        match most_fractional int_vars solution int_tol with
                        | None -> incumbent := Some (objective, solution)
                        | Some (v, _) ->
                            let x = solution.(v) in
                            let fl = Float.floor x and ce = Float.ceil x in
                            let left =
                              { Lp_problem.coeffs = [ (v, 1.0) ];
                                relation = Lp_problem.Le; rhs = fl }
                            in
                            let right =
                              { Lp_problem.coeffs = [ (v, 1.0) ];
                                relation = Lp_problem.Ge; rhs = ce }
                            in
                            Pqueue.push queue objective
                              { extra = left :: node.extra;
                                depth = node.depth + 1 };
                            Pqueue.push queue objective
                              { extra = right :: node.extra;
                                depth = node.depth + 1 }
                      end);
                  bb ()
                end
          in
          bb ();
          (match !incumbent with
          | Some (objective, solution) ->
              Solved
                { objective; solution; proven_optimal = not !budget_hit;
                  nodes_explored = !nodes }
          | None -> if !budget_hit then No_incumbent else Infeasible))
