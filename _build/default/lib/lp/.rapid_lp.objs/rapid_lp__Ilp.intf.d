lib/lp/ilp.mli: Lp_problem
