lib/lp/lp_problem.ml: Array Format List
