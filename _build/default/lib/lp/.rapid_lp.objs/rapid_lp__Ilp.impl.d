lib/lp/ilp.ml: Array Float List Lp_problem Pqueue Rapid_prelude Simplex
