type solution = { objective : float; solution : float array }

type result = Optimal of solution | Infeasible | Unbounded

let eps = 1e-9

(* Tableau layout: rows 0..m-1 are constraints, stored as dense arrays over
   columns 0..total_vars-1 plus a rhs column. [basis.(r)] is the variable
   basic in row r. The objective is kept as a separate reduced-cost row. *)

type tableau = {
  m : int;
  n : int;  (* total columns (structural + slack + artificial) *)
  a : float array array;  (* m rows of n coefficients *)
  b : float array;  (* rhs, maintained >= 0 *)
  basis : int array;
}

let pivot t ~row ~col =
  let arow = t.a.(row) in
  let p = arow.(col) in
  (* Normalize pivot row. *)
  for j = 0 to t.n - 1 do
    arow.(j) <- arow.(j) /. p
  done;
  t.b.(row) <- t.b.(row) /. p;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let f = t.a.(i).(col) in
      if Float.abs f > 0.0 then begin
        let ai = t.a.(i) in
        for j = 0 to t.n - 1 do
          ai.(j) <- ai.(j) -. (f *. arow.(j))
        done;
        t.b.(i) <- t.b.(i) -. (f *. t.b.(row))
      end
    end
  done;
  t.basis.(row) <- col

(* Price a cost vector against the current basis: returns reduced costs and
   current objective value. *)
let reduced_costs t cost =
  let z = Array.copy cost in
  let obj = ref 0.0 in
  for r = 0 to t.m - 1 do
    let cb = cost.(t.basis.(r)) in
    if cb <> 0.0 then begin
      obj := !obj +. (cb *. t.b.(r));
      let ar = t.a.(r) in
      for j = 0 to t.n - 1 do
        z.(j) <- z.(j) -. (cb *. ar.(j))
      done
    end
  done;
  (z, !obj)

(* Run simplex iterations minimizing [cost]. Returns [`Optimal] or
   [`Unbounded]. Dantzig rule with a switch to Bland's rule after many
   iterations to guarantee termination. *)
let optimize t cost =
  let max_iter = 20_000 + (200 * (t.m + t.n)) in
  let rec loop iter =
    let z, _ = reduced_costs t cost in
    (* Entering column: most negative reduced cost (Dantzig), or first
       negative (Bland) once iter is large. *)
    let bland = iter > max_iter / 2 in
    let enter = ref (-1) in
    let best = ref (-.eps) in
    (try
       for j = 0 to t.n - 1 do
         if z.(j) < -.eps then
           if bland then begin
             enter := j;
             raise Exit
           end
           else if z.(j) < !best then begin
             best := z.(j);
             enter := j
           end
       done
     with Exit -> ());
    if !enter < 0 then `Optimal
    else if iter >= max_iter then `Optimal (* give up improving; near-opt *)
    else begin
      let col = !enter in
      (* Ratio test. *)
      let leave = ref (-1) in
      let best_ratio = ref infinity in
      for r = 0 to t.m - 1 do
        let arc = t.a.(r).(col) in
        if arc > eps then begin
          let ratio = t.b.(r) /. arc in
          if
            ratio < !best_ratio -. eps
            || (ratio < !best_ratio +. eps
               && (!leave < 0 || t.basis.(r) < t.basis.(!leave)))
          then begin
            best_ratio := ratio;
            leave := r
          end
        end
      done;
      if !leave < 0 then `Unbounded
      else begin
        pivot t ~row:!leave ~col;
        loop (iter + 1)
      end
    end
  in
  loop 0

let solve ?(extra = []) problem =
  let n_struct = Lp_problem.num_vars problem in
  let rows = Lp_problem.constraints problem @ extra in
  let m = List.length rows in
  if m = 0 then
    (* Unconstrained: minimum of a nonnegative-orthant linear function is 0
       at the origin unless some cost is negative (then unbounded). *)
    let c = Lp_problem.objective problem in
    if Array.exists (fun x -> x < -.eps) c then Unbounded
    else Optimal { objective = 0.0; solution = Array.make n_struct 0.0 }
  else begin
    (* Normalize rows to b >= 0, count slacks and artificials. *)
    let normalized =
      List.map
        (fun { Lp_problem.coeffs; relation; rhs } ->
          if rhs < 0.0 then
            let coeffs = List.map (fun (i, c) -> (i, -.c)) coeffs in
            let relation =
              match relation with
              | Lp_problem.Le -> Lp_problem.Ge
              | Lp_problem.Ge -> Lp_problem.Le
              | Lp_problem.Eq -> Lp_problem.Eq
            in
            (coeffs, relation, -.rhs)
          else (coeffs, relation, rhs))
        rows
    in
    let n_slack =
      List.length
        (List.filter
           (fun (_, r, _) -> r = Lp_problem.Le || r = Lp_problem.Ge)
           normalized)
    in
    let n_art =
      List.length
        (List.filter
           (fun (_, r, _) -> r = Lp_problem.Ge || r = Lp_problem.Eq)
           normalized)
    in
    let n = n_struct + n_slack + n_art in
    let a = Array.init m (fun _ -> Array.make n 0.0) in
    let b = Array.make m 0.0 in
    let basis = Array.make m (-1) in
    let slack_idx = ref n_struct in
    let art_idx = ref (n_struct + n_slack) in
    List.iteri
      (fun r (coeffs, relation, rhs) ->
        List.iter (fun (i, c) -> a.(r).(i) <- a.(r).(i) +. c) coeffs;
        b.(r) <- rhs;
        (match relation with
        | Lp_problem.Le ->
            a.(r).(!slack_idx) <- 1.0;
            basis.(r) <- !slack_idx;
            incr slack_idx
        | Lp_problem.Ge ->
            a.(r).(!slack_idx) <- -1.0;
            incr slack_idx;
            a.(r).(!art_idx) <- 1.0;
            basis.(r) <- !art_idx;
            incr art_idx
        | Lp_problem.Eq ->
            a.(r).(!art_idx) <- 1.0;
            basis.(r) <- !art_idx;
            incr art_idx))
      normalized;
    let t = { m; n; a; b; basis } in
    (* Phase 1: minimize sum of artificials. *)
    let phase1_needed = n_art > 0 in
    let feasible =
      if not phase1_needed then true
      else begin
        let cost1 = Array.make n 0.0 in
        for j = n_struct + n_slack to n - 1 do
          cost1.(j) <- 1.0
        done;
        match optimize t cost1 with
        | `Unbounded -> false (* cannot happen: phase-1 obj bounded below *)
        | `Optimal ->
            let _, obj = reduced_costs t cost1 in
            if obj > 1e-6 then false
            else begin
              (* Drive any artificial still basic out of the basis (degenerate
                 rows); if impossible the row is redundant and harmless as the
                 artificial equals zero. *)
              for r = 0 to m - 1 do
                if t.basis.(r) >= n_struct + n_slack then begin
                  let found = ref false in
                  let j = ref 0 in
                  while (not !found) && !j < n_struct + n_slack do
                    if Float.abs t.a.(r).(!j) > eps then begin
                      pivot t ~row:r ~col:!j;
                      found := true
                    end;
                    incr j
                  done
                end
              done;
              true
            end
      end
    in
    if not feasible then Infeasible
    else begin
      (* Phase 2: forbid artificials from re-entering by giving them a large
         cost (they are at zero and zero-priced columns are never chosen;
         big-M here only as a guard). *)
      let cost2 = Array.make n 0.0 in
      let c = Lp_problem.objective problem in
      Array.blit c 0 cost2 0 n_struct;
      for j = n_struct + n_slack to n - 1 do
        cost2.(j) <- 1e12
      done;
      match optimize t cost2 with
      | `Unbounded -> Unbounded
      | `Optimal ->
          let solution = Array.make n_struct 0.0 in
          for r = 0 to m - 1 do
            if t.basis.(r) < n_struct then solution.(t.basis.(r)) <- t.b.(r)
          done;
          let objective =
            Array.to_seqi solution
            |> Seq.fold_left (fun acc (i, x) -> acc +. (c.(i) *. x)) 0.0
          in
          Optimal { objective; solution }
    end
  end
