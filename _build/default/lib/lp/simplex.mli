(** Two-phase dense primal simplex.

    Solves min c·x s.t. the constraints of an {!Lp_problem.t}, x >= 0.
    Integrality marks are ignored here (see {!Ilp}).

    The implementation is the classical tableau method with Bland's
    anti-cycling rule engaged after a stall is detected; artificial
    variables are introduced for >= and = rows and driven out in phase 1.
    It is intended for the small/medium DTN programs of the paper's Fig. 13
    (hundreds to a few thousands of variables), not industrial scale. *)

type solution = { objective : float; solution : float array }

type result = Optimal of solution | Infeasible | Unbounded

val solve : ?extra:Lp_problem.constr list -> Lp_problem.t -> result
(** [solve ?extra p] solves [p] with optional additional rows (used by
    branch-and-bound to impose variable bounds without copying [p]). *)
