(** Synthetic mobility models (§6.3).

    Each model generates a {!Rapid_trace.Trace.t}: pairwise node meetings as
    Poisson processes (so inter-meeting times are exponential), with the
    pairwise rates determined by the model:

    - {!exponential}: all pairs share one mean inter-meeting time — the
      "uniform exponential" model of §6.3.3 and §4.1.1.
    - {!powerlaw}: each node has a popularity rank (1 = most popular) and a
      pair's meeting rate scales with the product of the endpoints'
      popularity weights (§6.3: "two nodes meet with an exponential
      inter-meeting time, but the mean ... is determined by the popularity
      of the nodes"). The weights follow a power law in the rank.
    - {!community}: nodes are partitioned into communities; intra-community
      pairs meet [boost] times more often than inter-community pairs (the
      community-based synthetic model referenced for MV/Prophet in
      Table 1, provided for completeness).

    All models share the transfer-opportunity model of Table 4: every
    meeting carries the same opportunity size. *)

val exponential :
  Rapid_prelude.Rng.t ->
  num_nodes:int ->
  mean_inter_meeting:float ->
  duration:float ->
  opportunity_bytes:int ->
  Rapid_trace.Trace.t

val powerlaw :
  Rapid_prelude.Rng.t ->
  num_nodes:int ->
  mean_inter_meeting:float ->
  duration:float ->
  opportunity_bytes:int ->
  ?skew:float ->
  unit ->
  Rapid_trace.Trace.t
(** Popularity ranks are assigned uniformly at random to the nodes; weight
    of rank r is r^(-skew) (default skew 1.0). Rates are normalized so the
    expected total number of meetings equals that of {!exponential} with
    the same [mean_inter_meeting], making the two models comparable at
    equal load, while the distribution across pairs is heavily skewed. *)

val community :
  Rapid_prelude.Rng.t ->
  num_nodes:int ->
  num_communities:int ->
  mean_inter_meeting:float ->
  duration:float ->
  opportunity_bytes:int ->
  ?boost:float ->
  unit ->
  Rapid_trace.Trace.t
(** [boost] (default 8.0) is the intra/inter meeting-rate ratio; rates are
    normalized as in {!powerlaw}. *)

val pair_rates_powerlaw :
  Rapid_prelude.Rng.t -> num_nodes:int -> mean_inter_meeting:float ->
  ?skew:float -> unit -> float array array
(** The normalized rate matrix used by {!powerlaw} (exposed for tests). *)
