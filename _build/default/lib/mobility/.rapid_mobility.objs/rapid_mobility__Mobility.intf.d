lib/mobility/mobility.mli: Rapid_prelude Rapid_trace
