lib/mobility/mobility.ml: Array Contact Dist Fun List Rapid_prelude Rapid_trace Rng Trace
