open Rapid_prelude
open Rapid_trace

let generate_from_rates rng ~num_nodes ~rates ~duration ~opportunity_bytes =
  let contacts = ref [] in
  for a = 0 to num_nodes - 1 do
    for b = a + 1 to num_nodes - 1 do
      let rate = rates.(a).(b) in
      List.iter
        (fun time ->
          contacts :=
            Contact.make ~time ~a ~b ~bytes:opportunity_bytes :: !contacts)
        (Dist.poisson_process rng ~rate ~horizon:duration)
    done
  done;
  Trace.create ~num_nodes ~duration
    ~active:(List.init num_nodes Fun.id)
    !contacts

let uniform_rates ~num_nodes ~rate =
  Array.init num_nodes (fun _ -> Array.make num_nodes rate)

(* Scale an affinity matrix so the sum of pairwise rates matches that of the
   uniform model with the given per-pair mean inter-meeting time. *)
let normalize_to_uniform affinity ~num_nodes ~mean_inter_meeting =
  let target = ref 0.0 and total = ref 0.0 in
  let uniform_rate = 1.0 /. mean_inter_meeting in
  for a = 0 to num_nodes - 1 do
    for b = a + 1 to num_nodes - 1 do
      target := !target +. uniform_rate;
      total := !total +. affinity.(a).(b)
    done
  done;
  let scale = if !total > 0.0 then !target /. !total else 0.0 in
  Array.map (Array.map (fun x -> x *. scale)) affinity

let exponential rng ~num_nodes ~mean_inter_meeting ~duration ~opportunity_bytes =
  let rates = uniform_rates ~num_nodes ~rate:(1.0 /. mean_inter_meeting) in
  generate_from_rates rng ~num_nodes ~rates ~duration ~opportunity_bytes

let pair_rates_powerlaw rng ~num_nodes ~mean_inter_meeting ?(skew = 1.0) () =
  (* Random assignment of popularity ranks 1..n (1 = most popular). *)
  let ranks = Array.init num_nodes (fun i -> i + 1) in
  Rng.shuffle rng ranks;
  let weight i = float_of_int ranks.(i) ** -.skew in
  let affinity =
    Array.init num_nodes (fun a ->
        Array.init num_nodes (fun b -> if a = b then 0.0 else weight a *. weight b))
  in
  normalize_to_uniform affinity ~num_nodes ~mean_inter_meeting

let powerlaw rng ~num_nodes ~mean_inter_meeting ~duration ~opportunity_bytes
    ?(skew = 1.0) () =
  let rates = pair_rates_powerlaw rng ~num_nodes ~mean_inter_meeting ~skew () in
  generate_from_rates rng ~num_nodes ~rates ~duration ~opportunity_bytes

let community rng ~num_nodes ~num_communities ~mean_inter_meeting ~duration
    ~opportunity_bytes ?(boost = 8.0) () =
  assert (num_communities > 0);
  let communities = Array.init num_nodes (fun i -> i mod num_communities) in
  Rng.shuffle rng communities;
  let affinity =
    Array.init num_nodes (fun a ->
        Array.init num_nodes (fun b ->
            if a = b then 0.0
            else if communities.(a) = communities.(b) then boost
            else 1.0))
  in
  let rates = normalize_to_uniform affinity ~num_nodes ~mean_inter_meeting in
  generate_from_rates rng ~num_nodes ~rates ~duration ~opportunity_bytes
