examples/delay_estimation.ml: Dag_delay Dist Format List Rapid_core Rapid_prelude
