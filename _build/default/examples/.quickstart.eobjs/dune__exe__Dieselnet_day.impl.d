examples/dieselnet_day.ml: Dieselnet Engine Filename Format List Metrics Rapid_core Rapid_prelude Rapid_routing Rapid_sim Rapid_trace Rng Sys Trace Trace_io Workload
