examples/news_deadline.mli:
