examples/news_deadline.ml: Dist Engine Float Format List Metric Metrics Rapid Rapid_core Rapid_mobility Rapid_prelude Rapid_routing Rapid_sim Rapid_trace Rng Workload
