examples/quickstart.mli:
