examples/delay_estimation.mli:
