examples/dieselnet_day.mli:
