(* Appendix C, executable: how much does Estimate-Delay's independence
   assumption cost?

   Reconstructs the paper's Figure 2 scenario — replicas of packets a, b
   and d queued at nodes W, X, Y (all destined to Z) — and compares the
   idealized dependency-graph estimator (dag_delay) with the
   vertical-edges-only approximation RAPID actually ships (Estimate-Delay
   under unit-size transfers).

   Run with: dune exec examples/delay_estimation.exe *)

open Rapid_prelude
open Rapid_core

let () =
  (* Node ids: 0 = W, 1 = X, 2 = Y; destination Z is implicit. Queues are
     ordered oldest-first (delivery order), consistently across nodes. *)
  let queues = [ (0, [ "a" ]); (1, [ "a"; "b" ]); (2, [ "d"; "b" ]); (3, [ "d" ]) ] in
  let mean_of = function
    | 0 -> 1.0 (* W meets Z quickly *)
    | 1 -> 4.0 (* X is slow *)
    | 2 -> 5.0 (* Y is slower *)
    | _ -> 1.5
  in
  let meeting n = Dist.Discrete.of_exponential ~dt:0.02 ~cells:3000 ~mean:(mean_of n) in
  Format.printf
    "Queues (head first): W=[a]  X=[a;b]  Y=[d;b]  V=[d];  E[M_WZ]=1 E[M_XZ]=4 E[M_YZ]=5 E[M_VZ]=1.5@.@.";
  Format.printf "%-8s %18s %24s@." "packet" "dag_delay mean" "vertical-only (Estimate-Delay)";
  List.iter
    (fun label ->
      let full = Dag_delay.estimate ~queues ~meeting label in
      let vert = Dag_delay.vertical_only ~queues ~meeting label in
      Format.printf "%-8s %18.3f %24.3f@." label (Dist.Discrete.mean full)
        (Dist.Discrete.mean vert))
    [ "a"; "b"; "d" ];
  Format.printf
    "@.Packet b benefits from the non-vertical edges: W delivering a@\n\
     unblocks b at X, which Estimate-Delay cannot see — the appendix's@\n\
     point that the independence assumption inflates delay estimates.@."
