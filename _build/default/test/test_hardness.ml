(* Tests for the appendix hardness constructions: the Theorem-1(a) online
   adversary, the Theorem-1(b) gadget bounds, and the Theorem-2 EDP
   reduction (validated against brute force and the ILP optimal). *)

open Rapid_hardness

(* ------------------------------------------------------------------ *)
(* Theorem 1(a) *)

let assert_outcome ~n alg =
  let o = Online_adversary.run ~n ~alg in
  if o.Online_adversary.alg_delivered > 1 then
    Alcotest.failf "ALG delivered %d > 1" o.Online_adversary.alg_delivered;
  Alcotest.(check int) "ADV delivers all" n o.Online_adversary.adv_delivered;
  (* Y must be a bijection. *)
  let seen = Array.make n false in
  Array.iter
    (fun d ->
      if d < 0 || d >= n then Alcotest.fail "Y out of range";
      if seen.(d) then Alcotest.fail "Y not injective";
      seen.(d) <- true)
    o.Online_adversary.mapping

let test_adversary_spread () = assert_outcome ~n:8 Online_adversary.spread
let test_adversary_flood () = assert_outcome ~n:8 Online_adversary.replicate_first

let test_adversary_partial_replication () =
  List.iter
    (fun k -> assert_outcome ~n:9 (Online_adversary.greedy_modulo k))
    [ 1; 2; 3; 4; 9 ]

let test_adversary_competitive_ratio_grows () =
  (* The delivery-ratio gap is Ω(n): ALG <= 1/n of ADV. *)
  List.iter
    (fun n ->
      let o = Online_adversary.run ~n ~alg:Online_adversary.spread in
      let ratio =
        float_of_int o.Online_adversary.alg_delivered
        /. float_of_int o.Online_adversary.adv_delivered
      in
      if ratio > 1.0 /. float_of_int n then
        Alcotest.failf "ratio %.3f above 1/%d" ratio n)
    [ 2; 4; 16; 64 ]

let prop_adversary_beats_any_alg =
  QCheck.Test.make ~name:"ADV limits every deterministic ALG to <= 1" ~count:100
    QCheck.(pair (int_range 1 20) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Rapid_prelude.Rng.create seed in
      let alg ~n = Array.init n (fun _ -> Rapid_prelude.Rng.int rng (n + 1) - 1) in
      let o = Online_adversary.run ~n ~alg in
      o.Online_adversary.alg_delivered <= 1
      && o.Online_adversary.adv_delivered = n)

(* ------------------------------------------------------------------ *)
(* Theorem 1(b) *)

let test_gadget_halves () =
  List.iter
    (fun choice ->
      let o = Gadget.basic_gadget choice in
      Alcotest.(check int) "alg half" 2 o.Gadget.alg_delivered;
      Alcotest.(check int) "adv all" 4 o.Gadget.adv_delivered)
    [ Gadget.Straight; Gadget.Crossed; Gadget.Replicate_p1 ]

let test_gadget_depth_ratio () =
  let check_close what expected actual =
    if Float.abs (expected -. actual) > 1e-9 then
      Alcotest.failf "%s: expected %.6f got %.6f" what expected actual
  in
  check_close "depth 1" 0.5 (Gadget.depth_ratio 1);
  check_close "depth 2" (2.0 /. 5.0) (Gadget.depth_ratio 2);
  check_close "depth 3" (3.0 /. 8.0) (Gadget.depth_ratio 3);
  (* Monotone decreasing toward 1/3. *)
  let rec monotone i =
    i > 50
    || (Gadget.depth_ratio i > Gadget.depth_ratio (i + 1)
        && Gadget.depth_ratio (i + 1) > 1.0 /. 3.0
        && monotone (i + 1))
  in
  Alcotest.(check bool) "monotone to 1/3" true (monotone 1);
  if Gadget.depth_ratio 1000 -. (1.0 /. 3.0) > 1e-3 then
    Alcotest.fail "does not approach 1/3"

let test_gadget_packet_count () =
  Alcotest.(check int) "depth 1" 4 (Gadget.packets_at_depth 1);
  Alcotest.(check int) "depth 2" 7 (Gadget.packets_at_depth 2)

(* ------------------------------------------------------------------ *)
(* Theorem 2 *)

let diamond =
  (* 0 -> 1 -> 3, 0 -> 2 -> 3. *)
  { Edp_reduction.num_vertices = 4; edges = [ (0, 1); (1, 3); (0, 2); (2, 3) ] }

let test_is_dag () =
  Alcotest.(check bool) "diamond is a dag" true (Edp_reduction.is_dag diamond);
  let cyclic = { Edp_reduction.num_vertices = 2; edges = [ (0, 1); (1, 0) ] } in
  Alcotest.(check bool) "cycle detected" false (Edp_reduction.is_dag cyclic)

let test_labels_increase_along_paths () =
  let labelled = Edp_reduction.label_edges diamond in
  (* For every consecutive edge pair (u,v),(v,w): label1 < label2. *)
  List.iter
    (fun (u1, v1, l1) ->
      List.iter
        (fun (u2, _, l2) ->
          if v1 = u2 && l1 >= l2 then
            Alcotest.failf "labels not increasing: (%d,%d)=%d then (%d,..)=%d" u1
              v1 l1 u2 l2)
        labelled)
    labelled;
  (* Distinct labels. *)
  let ls = List.map (fun (_, _, l) -> l) labelled in
  Alcotest.(check int) "distinct" (List.length ls)
    (List.length (List.sort_uniq compare ls))

let test_edp_diamond () =
  (* Two edge-disjoint 0->3 paths exist. *)
  Alcotest.(check int) "two paths" 2
    (Edp_reduction.max_edge_disjoint_paths diamond ~pairs:[ (0, 3); (0, 3) ]);
  (* A third copy cannot fit. *)
  Alcotest.(check int) "still two" 2
    (Edp_reduction.max_edge_disjoint_paths diamond
       ~pairs:[ (0, 3); (0, 3); (0, 3) ])

let test_reduction_preserves_count () =
  let pairs = [ (0, 3); (0, 3) ] in
  let trace, workload = Edp_reduction.to_dtn diamond ~pairs in
  let edp = Edp_reduction.max_edge_disjoint_paths diamond ~pairs in
  let dtn = Edp_reduction.max_deliveries_brute trace workload in
  Alcotest.(check int) "edp = dtn deliveries" edp dtn

let test_reduction_matches_ilp () =
  let pairs = [ (0, 3); (0, 3) ] in
  let trace, workload = Edp_reduction.to_dtn diamond ~pairs in
  let v =
    Rapid_routing.Optimal.evaluate
      ~objective:Rapid_routing.Optimal.Max_deliveries ~trace ~workload ()
  in
  Alcotest.(check int) "ilp recovers both paths" 2 v.Rapid_routing.Optimal.delivered

let random_dag rng ~num_vertices ~num_edges =
  (* Edges only forward in vertex order: always a DAG. *)
  let edges = ref [] in
  let attempts = ref 0 in
  while List.length !edges < num_edges && !attempts < 100 do
    incr attempts;
    let u = Rapid_prelude.Rng.int rng (num_vertices - 1) in
    let v = u + 1 + Rapid_prelude.Rng.int rng (num_vertices - u - 1) in
    if not (List.mem (u, v) !edges) then edges := (u, v) :: !edges
  done;
  { Edp_reduction.num_vertices; edges = !edges }

let prop_reduction_equivalence =
  QCheck.Test.make ~name:"EDP count = max DTN deliveries (reduction)" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rapid_prelude.Rng.create seed in
      let dag = random_dag rng ~num_vertices:5 ~num_edges:6 in
      let n_pairs = 1 + Rapid_prelude.Rng.int rng 3 in
      let pairs =
        List.init n_pairs (fun _ ->
            let s = Rapid_prelude.Rng.int rng 4 in
            (s, s + 1 + Rapid_prelude.Rng.int rng (4 - s)))
      in
      let edp = Edp_reduction.max_edge_disjoint_paths dag ~pairs in
      let trace, workload = Edp_reduction.to_dtn dag ~pairs in
      let dtn = Edp_reduction.max_deliveries_brute trace workload in
      edp = dtn)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_adversary_beats_any_alg; prop_reduction_equivalence ]

let () =
  Alcotest.run "hardness"
    [
      ( "theorem-1a",
        [
          Alcotest.test_case "spread" `Quick test_adversary_spread;
          Alcotest.test_case "flood" `Quick test_adversary_flood;
          Alcotest.test_case "partial replication" `Quick
            test_adversary_partial_replication;
          Alcotest.test_case "competitive ratio" `Quick
            test_adversary_competitive_ratio_grows;
        ] );
      ( "theorem-1b",
        [
          Alcotest.test_case "gadget halves" `Quick test_gadget_halves;
          Alcotest.test_case "depth ratio" `Quick test_gadget_depth_ratio;
          Alcotest.test_case "packet count" `Quick test_gadget_packet_count;
        ] );
      ( "theorem-2",
        [
          Alcotest.test_case "is_dag" `Quick test_is_dag;
          Alcotest.test_case "labels increase" `Quick
            test_labels_increase_along_paths;
          Alcotest.test_case "diamond edp" `Quick test_edp_diamond;
          Alcotest.test_case "reduction preserves count" `Quick
            test_reduction_preserves_count;
          Alcotest.test_case "reduction matches ilp" `Quick
            test_reduction_matches_ilp;
        ] );
      ("properties", qcheck_cases);
    ]
