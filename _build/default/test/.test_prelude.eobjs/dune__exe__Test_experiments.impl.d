test/test_experiments.ml: Alcotest Astring Catalog Deployment Float List Pair_ttest Params Printf Rapid_experiments Rapid_prelude Rapid_trace Runners Series Unix
