test/test_dag_delay.mli:
