test/test_prelude.ml: Alcotest Array Dist Float Fun Gen Int List Moving_average Pqueue Printf QCheck QCheck_alcotest Rapid_prelude Rng Set Special Stats
