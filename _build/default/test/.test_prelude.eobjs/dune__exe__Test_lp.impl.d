test/test_lp.ml: Alcotest Array Float Ilp List Lp_problem QCheck QCheck_alcotest Rapid_lp Rapid_prelude Rng Seq Simplex
