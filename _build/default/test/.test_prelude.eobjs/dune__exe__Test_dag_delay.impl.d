test/test_dag_delay.ml: Alcotest Array Dag_delay Dist Float List Printf QCheck QCheck_alcotest Rapid_core Rapid_prelude Rng
