test/test_hardness.ml: Alcotest Array Edp_reduction Float Gadget List Online_adversary QCheck QCheck_alcotest Rapid_hardness Rapid_prelude Rapid_routing
