(* Tests for the Rapid_lp solver substrate: simplex on known programs,
   infeasibility/unboundedness detection, branch-and-bound ILPs, and a
   property test comparing the ILP against brute-force enumeration on random
   small integer programs. *)

open Rapid_lp
open Rapid_prelude

let check_close ?(eps = 1e-6) what expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" what expected actual

let solve_expect_optimal p =
  match Simplex.solve p with
  | Simplex.Optimal o -> o
  | Simplex.Infeasible -> Alcotest.fail "unexpected: infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected: unbounded"

(* ------------------------------------------------------------------ *)
(* Simplex *)

let test_simplex_basic_2d () =
  (* max x + y s.t. x + 2y <= 4, 3x + y <= 6  => min -(x+y).
     Optimum at intersection: x = 8/5, y = 6/5, value 14/5. *)
  let p = Lp_problem.create ~num_vars:2 in
  Lp_problem.set_objective p [ (0, -1.0); (1, -1.0) ];
  Lp_problem.add_constraint p [ (0, 1.0); (1, 2.0) ] Lp_problem.Le 4.0;
  Lp_problem.add_constraint p [ (0, 3.0); (1, 1.0) ] Lp_problem.Le 6.0;
  let o = solve_expect_optimal p in
  check_close "objective" (-2.8) o.objective;
  check_close "x" 1.6 o.solution.(0);
  check_close "y" 1.2 o.solution.(1)

let test_simplex_equality () =
  (* min x + y s.t. x + y = 3, x <= 1 => x=1, y=2 is not forced; any point on
     the segment has objective 3. *)
  let p = Lp_problem.create ~num_vars:2 in
  Lp_problem.set_objective p [ (0, 1.0); (1, 1.0) ];
  Lp_problem.add_constraint p [ (0, 1.0); (1, 1.0) ] Lp_problem.Eq 3.0;
  Lp_problem.add_constraint p [ (0, 1.0) ] Lp_problem.Le 1.0;
  let o = solve_expect_optimal p in
  check_close "objective" 3.0 o.objective

let test_simplex_ge_constraints () =
  (* min 2x + 3y s.t. x + y >= 4, x >= 1, y >= 1. Optimum x=3,y=1 -> 9. *)
  let p = Lp_problem.create ~num_vars:2 in
  Lp_problem.set_objective p [ (0, 2.0); (1, 3.0) ];
  Lp_problem.add_constraint p [ (0, 1.0); (1, 1.0) ] Lp_problem.Ge 4.0;
  Lp_problem.add_constraint p [ (0, 1.0) ] Lp_problem.Ge 1.0;
  Lp_problem.add_constraint p [ (1, 1.0) ] Lp_problem.Ge 1.0;
  let o = solve_expect_optimal p in
  check_close "objective" 9.0 o.objective;
  check_close "x" 3.0 o.solution.(0);
  check_close "y" 1.0 o.solution.(1)

let test_simplex_negative_rhs () =
  (* x - y <= -1 (i.e., y >= x + 1), min y => x=0, y=1. *)
  let p = Lp_problem.create ~num_vars:2 in
  Lp_problem.set_objective p [ (1, 1.0) ];
  Lp_problem.add_constraint p [ (0, 1.0); (1, -1.0) ] Lp_problem.Le (-1.0);
  let o = solve_expect_optimal p in
  check_close "objective" 1.0 o.objective

let test_simplex_infeasible () =
  let p = Lp_problem.create ~num_vars:1 in
  Lp_problem.set_objective p [ (0, 1.0) ];
  Lp_problem.add_constraint p [ (0, 1.0) ] Lp_problem.Ge 5.0;
  Lp_problem.add_constraint p [ (0, 1.0) ] Lp_problem.Le 3.0;
  match Simplex.solve p with
  | Simplex.Infeasible -> ()
  | Simplex.Optimal _ -> Alcotest.fail "expected infeasible, got optimal"
  | Simplex.Unbounded -> Alcotest.fail "expected infeasible, got unbounded"

let test_simplex_unbounded () =
  (* min -x s.t. x >= 1: unbounded below. *)
  let p = Lp_problem.create ~num_vars:1 in
  Lp_problem.set_objective p [ (0, -1.0) ];
  Lp_problem.add_constraint p [ (0, 1.0) ] Lp_problem.Ge 1.0;
  match Simplex.solve p with
  | Simplex.Unbounded -> ()
  | Simplex.Optimal _ -> Alcotest.fail "expected unbounded, got optimal"
  | Simplex.Infeasible -> Alcotest.fail "expected unbounded, got infeasible"

let test_simplex_degenerate () =
  (* A classic degenerate program; must terminate and find the optimum.
     min -0.75x1 + 150x2 - 0.02x3 + 6x4 (Beale's cycling example). *)
  let p = Lp_problem.create ~num_vars:4 in
  Lp_problem.set_objective p [ (0, -0.75); (1, 150.0); (2, -0.02); (3, 6.0) ];
  Lp_problem.add_constraint p
    [ (0, 0.25); (1, -60.0); (2, -0.04); (3, 9.0) ]
    Lp_problem.Le 0.0;
  Lp_problem.add_constraint p
    [ (0, 0.5); (1, -90.0); (2, -0.02); (3, 3.0) ]
    Lp_problem.Le 0.0;
  Lp_problem.add_constraint p [ (2, 1.0) ] Lp_problem.Le 1.0;
  let o = solve_expect_optimal p in
  check_close ~eps:1e-6 "beale optimum" (-0.05) o.objective

let test_simplex_extra_rows () =
  (* Base problem plus extra bound rows, as branch-and-bound uses them. *)
  let p = Lp_problem.create ~num_vars:1 in
  Lp_problem.set_objective p [ (0, -1.0) ];
  Lp_problem.add_constraint p [ (0, 1.0) ] Lp_problem.Le 10.0;
  let extra =
    [ { Lp_problem.coeffs = [ (0, 1.0) ]; relation = Lp_problem.Le; rhs = 4.0 } ]
  in
  (match Simplex.solve ~extra p with
  | Simplex.Optimal o -> check_close "bounded by extra" (-4.0) o.objective
  | _ -> Alcotest.fail "expected optimal");
  (* Without extra rows the answer differs. *)
  let o = solve_expect_optimal p in
  check_close "without extra" (-10.0) o.objective

let test_simplex_feasibility_of_solution () =
  (* The returned point must satisfy every constraint. *)
  let p = Lp_problem.create ~num_vars:3 in
  Lp_problem.set_objective p [ (0, 1.0); (1, 2.0); (2, -1.0) ];
  Lp_problem.add_constraint p [ (0, 1.0); (1, 1.0); (2, 1.0) ] Lp_problem.Le 7.0;
  Lp_problem.add_constraint p [ (0, 2.0); (2, 1.0) ] Lp_problem.Ge 2.0;
  Lp_problem.add_constraint p [ (1, 1.0); (2, -1.0) ] Lp_problem.Eq 1.0;
  let o = solve_expect_optimal p in
  let dot coeffs = List.fold_left (fun acc (i, c) -> acc +. (c *. o.solution.(i))) 0.0 coeffs in
  List.iter
    (fun { Lp_problem.coeffs; relation; rhs } ->
      let v = dot coeffs in
      match relation with
      | Lp_problem.Le -> if v > rhs +. 1e-6 then Alcotest.fail "Le violated"
      | Lp_problem.Ge -> if v < rhs -. 1e-6 then Alcotest.fail "Ge violated"
      | Lp_problem.Eq ->
          if Float.abs (v -. rhs) > 1e-6 then Alcotest.fail "Eq violated")
    (Lp_problem.constraints p);
  Array.iter (fun x -> if x < -1e-9 then Alcotest.fail "negative variable") o.solution

(* ------------------------------------------------------------------ *)
(* ILP *)

let solve_ilp_expect p =
  match Ilp.solve p with
  | Ilp.Solved o -> o
  | Ilp.Infeasible -> Alcotest.fail "ilp: unexpected infeasible"
  | Ilp.Unbounded -> Alcotest.fail "ilp: unexpected unbounded"
  | Ilp.No_incumbent -> Alcotest.fail "ilp: no incumbent"

let test_ilp_knapsack () =
  (* max 8a + 11b + 6c + 4d, weights 5,7,4,3 <= 14, binary.
     Known optimum: b + c + d? 11+6+4=21, weight 14. a+b? 19 w12. a+c+d=18 w12.
     Optimal = 21. Minimize the negative. *)
  let p = Lp_problem.create ~num_vars:4 in
  Lp_problem.set_objective p [ (0, -8.0); (1, -11.0); (2, -6.0); (3, -4.0) ];
  Lp_problem.add_constraint p
    [ (0, 5.0); (1, 7.0); (2, 4.0); (3, 3.0) ]
    Lp_problem.Le 14.0;
  for v = 0 to 3 do
    Lp_problem.add_constraint p [ (v, 1.0) ] Lp_problem.Le 1.0;
    Lp_problem.mark_integer p v
  done;
  let o = solve_ilp_expect p in
  check_close "knapsack optimum" (-21.0) o.objective;
  Alcotest.(check bool) "proven" true o.proven_optimal;
  Array.iter
    (fun x ->
      if Float.abs (x -. Float.round x) > 1e-6 then
        Alcotest.fail "non-integral ILP solution")
    o.solution

let test_ilp_rounding_matters () =
  (* LP relaxation optimum is fractional; ILP must find the integral one.
     max x + y s.t. 2x + 2y <= 3, x,y binary -> LP gives 1.5, ILP gives 1. *)
  let p = Lp_problem.create ~num_vars:2 in
  Lp_problem.set_objective p [ (0, -1.0); (1, -1.0) ];
  Lp_problem.add_constraint p [ (0, 2.0); (1, 2.0) ] Lp_problem.Le 3.0;
  for v = 0 to 1 do
    Lp_problem.add_constraint p [ (v, 1.0) ] Lp_problem.Le 1.0;
    Lp_problem.mark_integer p v
  done;
  let o = solve_ilp_expect p in
  check_close "ilp optimum" (-1.0) o.objective

let test_ilp_integral_relaxation_short_circuits () =
  (* When the relaxation is already integral, one node suffices. *)
  let p = Lp_problem.create ~num_vars:2 in
  Lp_problem.set_objective p [ (0, 1.0); (1, 1.0) ];
  Lp_problem.add_constraint p [ (0, 1.0) ] Lp_problem.Ge 2.0;
  Lp_problem.add_constraint p [ (1, 1.0) ] Lp_problem.Ge 3.0;
  Lp_problem.mark_integer p 0;
  Lp_problem.mark_integer p 1;
  let o = solve_ilp_expect p in
  check_close "objective" 5.0 o.objective;
  Alcotest.(check int) "single node" 1 o.nodes_explored

let test_ilp_infeasible () =
  let p = Lp_problem.create ~num_vars:1 in
  Lp_problem.set_objective p [ (0, 1.0) ];
  Lp_problem.add_constraint p [ (0, 2.0) ] Lp_problem.Eq 1.0;
  (* x = 0.5 is the only solution; integrality makes it infeasible. *)
  Lp_problem.mark_integer p 0;
  match Ilp.solve p with
  | Ilp.Infeasible -> ()
  | Ilp.Solved o -> Alcotest.failf "expected infeasible, got %g" o.objective
  | Ilp.Unbounded -> Alcotest.fail "expected infeasible, got unbounded"
  | Ilp.No_incumbent -> Alcotest.fail "expected infeasible, got no-incumbent"

(* ------------------------------------------------------------------ *)
(* Property: ILP vs brute force on random small binary programs. *)

let brute_force_binary ~num_vars ~obj ~rows =
  (* Minimize over all 2^num_vars assignments; None when infeasible. *)
  let best = ref None in
  for mask = 0 to (1 lsl num_vars) - 1 do
    let x = Array.init num_vars (fun i -> if mask land (1 lsl i) <> 0 then 1.0 else 0.0) in
    let ok =
      List.for_all
        (fun (coeffs, rhs) ->
          let v = List.fold_left (fun acc (i, c) -> acc +. (c *. x.(i))) 0.0 coeffs in
          v <= rhs +. 1e-9)
        rows
    in
    if ok then begin
      let value = Array.to_seqi x |> Seq.fold_left (fun acc (i, xi) -> acc +. (obj.(i) *. xi)) 0.0 in
      match !best with
      | Some b when b <= value -> ()
      | _ -> best := Some value
    end
  done;
  !best

let prop_ilp_matches_brute_force =
  let gen =
    QCheck.Gen.(
      let* num_vars = int_range 2 5 in
      let* num_rows = int_range 1 4 in
      let* obj = array_size (return num_vars) (float_range (-5.0) 5.0) in
      let* rows =
        list_size (return num_rows)
          (let* coeffs =
             array_size (return num_vars) (float_range (-3.0) 3.0)
           in
           let* rhs = float_range 0.0 6.0 in
           return (coeffs, rhs))
      in
      return (num_vars, obj, rows))
  in
  QCheck.Test.make ~name:"ilp matches brute force (binary programs)" ~count:60
    (QCheck.make gen)
    (fun (num_vars, obj, rows) ->
      let rows = List.map (fun (c, r) -> (Array.to_list (Array.mapi (fun i x -> (i, x)) c), r)) rows in
      let p = Lp_problem.create ~num_vars in
      Lp_problem.set_objective p (Array.to_list (Array.mapi (fun i c -> (i, c)) obj));
      List.iter (fun (coeffs, rhs) -> Lp_problem.add_constraint p coeffs Lp_problem.Le rhs) rows;
      for v = 0 to num_vars - 1 do
        Lp_problem.add_constraint p [ (v, 1.0) ] Lp_problem.Le 1.0;
        Lp_problem.mark_integer p v
      done;
      let expected = brute_force_binary ~num_vars ~obj ~rows in
      match (Ilp.solve p, expected) with
      | Ilp.Solved o, Some e -> Float.abs (o.objective -. e) < 1e-5
      | Ilp.Infeasible, None -> true
      | Ilp.Solved _, None -> false
      | Ilp.Infeasible, Some _ -> false
      | (Ilp.Unbounded | Ilp.No_incumbent), _ -> false)

let prop_simplex_lower_bounds_ilp =
  let gen = QCheck.Gen.int_range 0 10_000 in
  QCheck.Test.make ~name:"lp relaxation lower-bounds ilp" ~count:40
    (QCheck.make gen)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars = 3 + Rng.int rng 3 in
      let p = Lp_problem.create ~num_vars in
      Lp_problem.set_objective p
        (List.init num_vars (fun i -> (i, Rng.uniform rng (-4.0) 4.0)));
      for _ = 1 to 3 do
        Lp_problem.add_constraint p
          (List.init num_vars (fun i -> (i, Rng.uniform rng 0.0 3.0)))
          Lp_problem.Le
          (Rng.uniform rng 1.0 8.0)
      done;
      for v = 0 to num_vars - 1 do
        Lp_problem.add_constraint p [ (v, 1.0) ] Lp_problem.Le 1.0;
        Lp_problem.mark_integer p v
      done;
      match (Simplex.solve p, Ilp.solve p) with
      | Simplex.Optimal lp, Ilp.Solved ilp -> lp.objective <= ilp.objective +. 1e-6
      | Simplex.Infeasible, Ilp.Infeasible -> true
      | _, Ilp.Infeasible -> true (* integrality can break feasibility *)
      | _ -> false)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_ilp_matches_brute_force; prop_simplex_lower_bounds_ilp ]

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "basic 2d" `Quick test_simplex_basic_2d;
          Alcotest.test_case "equality" `Quick test_simplex_equality;
          Alcotest.test_case "ge constraints" `Quick test_simplex_ge_constraints;
          Alcotest.test_case "negative rhs" `Quick test_simplex_negative_rhs;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "degenerate (Beale)" `Quick test_simplex_degenerate;
          Alcotest.test_case "extra rows" `Quick test_simplex_extra_rows;
          Alcotest.test_case "solution feasibility" `Quick
            test_simplex_feasibility_of_solution;
        ] );
      ( "ilp",
        [
          Alcotest.test_case "knapsack" `Quick test_ilp_knapsack;
          Alcotest.test_case "fractional relaxation" `Quick
            test_ilp_rounding_matters;
          Alcotest.test_case "integral shortcut" `Quick
            test_ilp_integral_relaxation_short_circuits;
          Alcotest.test_case "infeasible by integrality" `Quick
            test_ilp_infeasible;
        ] );
      ("properties", qcheck_cases);
    ]
