(* Tests for the appendix-C DAG-delay estimator: known closed forms, the
   Fig. 2 example, the approximation gap versus Estimate-Delay's
   vertical-only view, and cycle detection. *)

open Rapid_prelude
open Rapid_core

let dt = 0.01
let cells = 4000

let exp_meeting mean = Dist.Discrete.of_exponential ~dt ~cells ~mean

let check_rel ?(tol = 0.05) what expected actual =
  let denom = max 1e-12 (Float.abs expected) in
  if Float.abs (expected -. actual) /. denom > tol then
    Alcotest.failf "%s: expected ~%.6g, got %.6g" what expected actual

(* Single replica at the head of one queue: delay = e_n (mean = mean). *)
let test_single_head () =
  let queues = [ (0, [ "a" ]) ] in
  let meeting _ = exp_meeting 2.0 in
  let d = Dag_delay.estimate ~queues ~meeting "a" in
  check_rel "single head mean" 2.0 (Dist.Discrete.mean d)

(* Second in queue: Erlang(2) with mean 2*mean. *)
let test_queued_behind () =
  let queues = [ (0, [ "a"; "b" ]) ] in
  let meeting _ = exp_meeting 1.5 in
  let d = Dag_delay.estimate ~queues ~meeting "b" in
  check_rel "erlang mean" 3.0 (Dist.Discrete.mean d)

(* Two head replicas at different nodes: min of two exponentials. *)
let test_two_replicas_min () =
  let queues = [ (0, [ "a" ]); (1, [ "a" ]) ] in
  let meeting _ = exp_meeting 2.0 in
  let d = Dag_delay.estimate ~queues ~meeting "a" in
  check_rel "min of two exps" 1.0 (Dist.Discrete.mean d)

(* Vertical-only agrees with the full estimate when there are no
   cross-node dependencies (each queue holds distinct packets). *)
let test_vertical_agrees_without_sharing () =
  let queues = [ (0, [ "a"; "b" ]); (1, [ "c" ]) ] in
  let meeting = function 0 -> exp_meeting 1.0 | _ -> exp_meeting 3.0 in
  List.iter
    (fun label ->
      let full = Dag_delay.estimate ~queues ~meeting label in
      let vert = Dag_delay.vertical_only ~queues ~meeting label in
      check_rel
        (Printf.sprintf "agree on %s" label)
        (Dist.Discrete.mean full) (Dist.Discrete.mean vert))
    [ "a"; "b"; "c" ]

(* The paper's Fig. 2-style example: b behind a at X, behind d at Y, while
   a and d have other head replicas. Estimate-Delay overestimates b's delay
   because it ignores that a/d may be delivered by W first, unblocking b.
   Here: full estimate <= vertical-only estimate. *)
let test_fig2_nonvertical_gap () =
  let queues =
    [ (0, [ "a"; "b" ]) (* X *); (1, [ "d"; "b" ]) (* Y *); (2, [ "a" ]) (* W *);
      (3, [ "d" ]) ]
  in
  let meeting = function
    | 0 -> exp_meeting 2.0
    | 1 -> exp_meeting 2.5
    | 2 -> exp_meeting 0.5 (* W delivers a fast, unblocking b at X *)
    | _ -> exp_meeting 0.5
  in
  let full = Dist.Discrete.mean (Dag_delay.estimate ~queues ~meeting "b") in
  let vert = Dist.Discrete.mean (Dag_delay.vertical_only ~queues ~meeting "b") in
  if full > vert +. 0.02 then
    Alcotest.failf "full (%.3f) should not exceed vertical-only (%.3f)" full vert

(* dag_delay uses d(pred) = packet-level min, so a fast foreign replica of
   the predecessor shortens the successor — exactly the non-vertical edge
   Estimate-Delay ignores. *)
let test_fast_foreign_predecessor_helps () =
  let slow_queues = [ (0, [ "a"; "b" ]) ] in
  let shared_queues = [ (0, [ "a"; "b" ]); (1, [ "a" ]) ] in
  let meeting = function 0 -> exp_meeting 2.0 | _ -> exp_meeting 0.2 in
  let slow = Dist.Discrete.mean (Dag_delay.estimate ~queues:slow_queues ~meeting "b") in
  let shared =
    Dist.Discrete.mean (Dag_delay.estimate ~queues:shared_queues ~meeting "b")
  in
  if shared >= slow then
    Alcotest.failf "foreign replica of predecessor should help: %.3f vs %.3f"
      shared slow;
  (* Vertical-only cannot see this: it gives the same estimate for b. *)
  let vert_slow =
    Dist.Discrete.mean (Dag_delay.vertical_only ~queues:slow_queues ~meeting "b")
  in
  let vert_shared =
    Dist.Discrete.mean (Dag_delay.vertical_only ~queues:shared_queues ~meeting "b")
  in
  check_rel ~tol:1e-6 "vertical-only is blind to the foreign replica" vert_slow
    vert_shared

let test_cycle_detection () =
  (* Inconsistent queue orders: a before b at node 0, b before a at 1. *)
  let queues = [ (0, [ "a"; "b" ]); (1, [ "b"; "a" ]) ] in
  let meeting _ = exp_meeting 1.0 in
  match Dag_delay.estimate ~queues ~meeting "a" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cycle not detected"

let test_unknown_label () =
  let queues = [ (0, [ "a" ]) ] in
  let meeting _ = exp_meeting 1.0 in
  match Dag_delay.estimate ~queues ~meeting "zz" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown label accepted"

(* Property: the full estimate never exceeds vertical-only by more than the
   discretization error — extra knowledge can only reduce estimated delay
   in these unit-size settings where sharing a predecessor's foreign
   replicas weakly helps. *)
let prop_full_le_vertical =
  QCheck.Test.make ~name:"full dag estimate <= vertical-only (+eps)" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      (* Random consistent queues over a global packet order p0 < p1 < ... *)
      let n_packets = 2 + Rng.int rng 4 in
      let n_nodes = 2 + Rng.int rng 3 in
      let labels = List.init n_packets (Printf.sprintf "p%d") in
      let queues =
        List.init n_nodes (fun node ->
            let subset = List.filter (fun _ -> Rng.bool rng) labels in
            (node, subset))
      in
      let means = Array.init n_nodes (fun _ -> 0.3 +. Rng.float rng) in
      let meeting n = exp_meeting means.(n) in
      (* Pick a label that appears somewhere. *)
      match List.concat_map snd queues with
      | [] -> true
      | l :: _ ->
          let full = Dist.Discrete.mean (Dag_delay.estimate ~queues ~meeting l) in
          let vert =
            Dist.Discrete.mean (Dag_delay.vertical_only ~queues ~meeting l)
          in
          (not (Float.is_finite vert)) || full <= vert +. 0.05)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_full_le_vertical ]

let () =
  Alcotest.run "dag_delay"
    [
      ( "closed forms",
        [
          Alcotest.test_case "single head" `Quick test_single_head;
          Alcotest.test_case "queued behind" `Quick test_queued_behind;
          Alcotest.test_case "two replicas" `Quick test_two_replicas_min;
        ] );
      ( "approximation gap",
        [
          Alcotest.test_case "agrees without sharing" `Quick
            test_vertical_agrees_without_sharing;
          Alcotest.test_case "fig2 non-vertical gap" `Quick test_fig2_nonvertical_gap;
          Alcotest.test_case "foreign predecessor helps" `Quick
            test_fast_foreign_predecessor_helps;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
          Alcotest.test_case "unknown label" `Quick test_unknown_label;
        ] );
      ("properties", qcheck_cases);
    ]
