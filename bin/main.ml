(* rapid — command-line driver for the RAPID reproduction.

   Subcommands:
     list                      enumerate reproducible figures/tables
     figure -i fig4 [...]      reproduce one artifact
     run [...]                 one simulation, one protocol, printed report
     trace [...]               generate synthetic DieselNet days to files
     cache stats|gc|clear      inspect/maintain a --cache-dir point store
     hardness                  run the appendix constructions *)

open Cmdliner
open Rapid_experiments

let profile_conv =
  let parse = function
    | "quick" -> Ok Params.Quick
    | "full" -> Ok Params.Full
    | s -> Error (`Msg (Printf.sprintf "unknown profile %S (quick|full)" s))
  in
  let print fmt p =
    Format.pp_print_string fmt
      (match p with Params.Quick -> "quick" | Params.Full -> "full")
  in
  Arg.conv (parse, print)

let profile_arg =
  Arg.(
    value
    & opt profile_conv Params.Quick
    & info [ "p"; "profile" ] ~docv:"PROFILE"
        ~doc:"Experiment profile: quick (scaled, default) or full (paper scale).")

let profile_string = function Params.Quick -> "quick" | Params.Full -> "full"

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:"Also write the result as machine-readable JSON to $(docv).")

let faults_conv =
  let parse s =
    match Rapid_faults.Faults.parse s with
    | Ok c -> Ok c
    | Error e -> Error (`Msg e)
  in
  let print fmt c =
    Format.pp_print_string fmt (Rapid_faults.Faults.spec_string c)
  in
  Arg.conv (parse, print)

let faults_arg =
  Arg.(
    value
    & opt faults_conv Rapid_faults.Faults.none
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Deterministic fault injection, e.g. \
           'reboots=1,truncate=0.2,metaloss=0.1,noshow=0.05,seed=7'. \
           Keys are optional; all-zero rates (the default) run the plain \
           engine bit-identically. The fault stream derives from \
           (SPEC seed, run seed, trace), so reports stay bit-identical \
           across --jobs settings.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persistent point store: look experiment points up under \
           $(docv) (created if needed) before computing them, and write \
           freshly computed points back, so interrupted sweeps resume \
           where they stopped and warm reruns are near-instant. Off by \
           default; results are byte-identical either way. Safe to \
           combine with --jobs and to share between processes.")

(* The `store:` traffic line is part of the CLI contract (ci greps it);
   printed only when a store is attached, so plain runs are unchanged. *)
let report_store_traffic () =
  match Runners.cache_store () with
  | None -> ()
  | Some _ ->
      let open Rapid_store.Store in
      Printf.printf "store: hits=%d misses=%d writes=%d corrupt_cells=%d\n"
        (hits ()) (misses ()) (writes ()) (corrupt_cells ())

(* Parallelism only changes wall time: every simulation cell is seeded
   explicitly, and the worker pool preserves result order, so reports
   (and the JSON artifacts) are bit-identical across --jobs settings. *)
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run independent simulation cells (days, seeds) on $(docv) \
           domains; 1 (default) is fully sequential. Results are \
           bit-identical for every value of $(docv).")

(* ------------------------------------------------------------------ *)

let list_cmd =
  let doc = "List every reproducible table and figure." in
  let run () =
    List.iter
      (fun (i : Catalog.item) -> Printf.printf "%-8s %s\n" i.Catalog.id i.Catalog.title)
      Catalog.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let figure_cmd =
  let doc = "Reproduce one figure or table from the paper." in
  let id_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "i"; "id" ] ~docv:"ID" ~doc:"Artifact id, e.g. fig4 or table3.")
  in
  let run profile id json_path jobs cache_dir =
    Rapid_par.Pool.set_jobs jobs;
    Runners.set_cache_dir cache_dir;
    match Catalog.find id with
    | None ->
        Printf.eprintf "unknown artifact %S; valid ids:\n" id;
        List.iter
          (fun (i : Catalog.item) -> Printf.eprintf "  %s\n" i.Catalog.id)
          Catalog.all;
        exit 2
    | Some item ->
        let params = Params.get profile in
        print_endline (Catalog.params_header params);
        print_newline ();
        let open Rapid_obs in
        let out = item.Catalog.render params in
        print_string (Catalog.output_text out);
        Option.iter
          (fun path ->
            Json.to_file path
              (Json.Obj
                 [
                   ("schema", Json.String "rapid-figure/1");
                   ("profile", Json.String (profile_string profile));
                   ("artifact", Catalog.output_json item out);
                   ("counters", Counter.to_json ());
                 ]);
            Printf.printf "wrote %s\n" path)
          json_path;
        report_store_traffic ()
  in
  Cmd.v (Cmd.info "figure" ~doc)
    Term.(
      const run $ profile_arg $ id_arg $ json_arg $ jobs_arg $ cache_dir_arg)

(* ------------------------------------------------------------------ *)

let protocol_conv metric =
  let open Rapid_core in
  function
  | "rapid" -> Ok (Runners.rapid metric)
  | "rapid-global" ->
      Ok
        (Runners.rapid_with ~label:"RAPID(global)"
           {
             (Rapid.default_params metric) with
             Rapid.channel = Control_channel.Instant_global;
           })
  | "rapid-local" ->
      Ok
        (Runners.rapid_with ~label:"RAPID(local)"
           {
             (Rapid.default_params metric) with
             Rapid.channel = Control_channel.Local_only;
           })
  | "maxprop" -> Ok Runners.maxprop
  | "spraywait" -> Ok Runners.spray_wait
  | "prophet" -> Ok Runners.prophet
  | "random" -> Ok Runners.random
  | "random-acks" -> Ok Runners.random_acks
  | "epidemic" ->
      Ok
        {
          Runners.label = "Epidemic";
          cache_id = "epidemic";
          make = (fun () -> Rapid_routing.Epidemic.make ());
        }
  | "direct" ->
      Ok
        { Runners.label = "Direct"; cache_id = "direct";
          make = (fun () -> Rapid_routing.Direct.make ()) }
  | s -> Error (Printf.sprintf "unknown protocol %S" s)

let metric_of_string = function
  | "avg" -> Ok Rapid_core.Metric.Average_delay
  | "max" -> Ok Rapid_core.Metric.Maximum_delay
  | "deadline" -> Ok Rapid_core.Metric.Missed_deadlines
  | s -> Error (Printf.sprintf "unknown metric %S (avg|max|deadline)" s)

let run_cmd =
  let doc = "Run one protocol over synthetic DieselNet days and print the report." in
  let proto_arg =
    Arg.(
      value & opt string "rapid"
      & info [ "protocol" ] ~docv:"NAME"
          ~doc:
            "rapid | rapid-global | rapid-local | maxprop | spraywait | \
             prophet | random | random-acks | epidemic | direct")
  in
  let metric_arg =
    Arg.(
      value & opt string "avg"
      & info [ "metric" ] ~docv:"METRIC" ~doc:"RAPID metric: avg | max | deadline.")
  in
  let load_arg =
    Arg.(
      value & opt float 6.0
      & info [ "load" ] ~docv:"PKTS" ~doc:"Packets per hour per destination.")
  in
  let trace_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Run on a contact trace file instead of synthetic days.")
  in
  let events_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"PATH"
          ~doc:
            "Stream every simulation event (contacts, transfers, \
             deliveries, drops, ack purges, metadata) as JSON lines to \
             $(docv). Bypasses the in-process point cache.")
  in
  let run profile proto metric_name load trace_file json_path events_path jobs
      faults cache_dir =
    Rapid_par.Pool.set_jobs jobs;
    Runners.set_cache_dir cache_dir;
    match metric_of_string metric_name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok metric -> (
        match protocol_conv metric proto with
        | Error e ->
            prerr_endline e;
            exit 1
        | Ok spec ->
            let params = Params.get profile in
            let with_tracer f =
              match events_path with
              | None -> f Rapid_obs.Tracer.null
              | Some path ->
                  let oc = open_out path in
                  Fun.protect
                    ~finally:(fun () -> close_out oc)
                    (fun () -> f (Rapid_obs.Tracer.Jsonl.tracer oc))
            in
            let reports =
              with_tracer (fun tracer ->
                  match trace_file with
                  | Some path ->
                      let trace = Rapid_trace.Trace_io.load path in
                      let rng =
                        Rapid_prelude.Rng.create params.Params.base_seed
                      in
                      let workload =
                        Rapid_trace.Workload.generate rng ~trace
                          ~pkts_per_hour_per_dest:load
                          ~size:params.Params.trace_packet_bytes
                          ~lifetime:params.Params.trace_deadline ()
                      in
                      [
                        (Rapid_sim.Engine.run ~tracer
                           ~options:
                             {
                               Rapid_sim.Engine.default_options with
                               Rapid_sim.Engine.faults;
                             }
                           ~protocol:(spec.Runners.make ()) ~trace ~workload ())
                          .Rapid_sim.Engine.report;
                      ]
                  | None ->
                      if Rapid_obs.Tracer.enabled tracer then
                        (* Tracing needs live runs, not cached reports —
                           and a single ordered event stream, so this
                           path stays sequential regardless of --jobs. *)
                        List.init params.Params.days (fun day ->
                            let trace = Runners.trace_day ~params ~day in
                            let workload =
                              Runners.trace_workload ~params ~trace ~load ~day
                            in
                            (Rapid_sim.Engine.run ~tracer
                               ~options:
                                 {
                                   Rapid_sim.Engine.buffer_bytes =
                                     params.Params.trace_buffer_bytes;
                                   meta_cap_frac = None;
                                   seed = params.Params.base_seed + day;
                                   faults;
                                 }
                               ~protocol:(spec.Runners.make ()) ~trace ~workload
                               ())
                              .Rapid_sim.Engine.report)
                      else
                        Runners.run_trace_point ~params ~protocol:spec ~load
                          ~spec:{ Runners.default_spec with Runners.faults }
                          ())
            in
            List.iteri
              (fun day r ->
                Format.printf "day %d %s: %a@." day spec.Runners.label
                  Rapid_sim.Metrics.pp_report r)
              reports;
            Option.iter
              (fun path ->
                let open Rapid_obs in
                Json.to_file path
                  (Json.Obj
                     [
                       ("schema", Json.String "rapid-run/1");
                       ("protocol", Json.String spec.Runners.label);
                       ("metric", Json.String metric_name);
                       ("load", Json.Float load);
                       ("profile", Json.String (profile_string profile));
                       ( "reports",
                         Json.List
                           (List.map Rapid_sim.Metrics.report_to_json reports)
                       );
                       ("counters", Counter.to_json ());
                     ]);
                Printf.printf "wrote %s\n" path)
              json_path;
            report_store_traffic ())
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ profile_arg $ proto_arg $ metric_arg $ load_arg
      $ trace_file_arg $ json_arg $ events_arg $ jobs_arg $ faults_arg
      $ cache_dir_arg)

(* ------------------------------------------------------------------ *)

let trace_cmd =
  let doc = "Generate synthetic DieselNet contact traces to files." in
  let days_arg =
    Arg.(value & opt int 5 & info [ "days" ] ~docv:"N" ~doc:"Number of days.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")
  in
  let out_arg =
    Arg.(
      value & opt string "traces"
      & info [ "out" ] ~docv:"DIR" ~doc:"Output directory (created if needed).")
  in
  let run profile days seed out =
    let params = Params.get profile in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    List.iteri
      (fun d trace ->
        let path = Filename.concat out (Printf.sprintf "day-%02d.trace" d) in
        Rapid_trace.Trace_io.save path trace;
        Format.printf "%s: %a@." path Rapid_trace.Trace.pp_summary trace)
      (Rapid_trace.Dieselnet.days ~params:params.Params.dieselnet ~seed ~n:days ())
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ profile_arg $ days_arg $ seed_arg $ out_arg)

(* ------------------------------------------------------------------ *)

let ttest_cmd =
  let doc =
    "Paired t-test of per-pair delays between two protocols (the paper's \
     §6.2.1 methodology)."
  in
  let proto a default =
    Arg.(
      value & opt string default
      & info [ a ] ~docv:"NAME" ~doc:"Protocol (see `run --protocol`).")
  in
  let load_arg =
    Arg.(
      value & opt float 12.0
      & info [ "load" ] ~docv:"PKTS" ~doc:"Packets per hour per destination.")
  in
  let run profile a b load =
    let metric = Rapid_core.Metric.Average_delay in
    match (protocol_conv metric a, protocol_conv metric b) with
    | Error e, _ | _, Error e ->
        prerr_endline e;
        exit 1
    | Ok sa, Ok sb ->
        let params = Params.get profile in
        let result = Pair_ttest.compare_protocols ~params ~a:sa ~b:sb ~load in
        print_string
          (Pair_ttest.render ~a_label:sa.Runners.label ~b_label:sb.Runners.label
             ~load result)
  in
  Cmd.v (Cmd.info "ttest" ~doc)
    Term.(const run $ profile_arg $ proto "a" "rapid" $ proto "b" "maxprop" $ load_arg)

let cache_cmd =
  let doc = "Inspect and maintain a persistent point store (see --cache-dir)." in
  let dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"The point-store directory (as passed to figure/run).")
  in
  let stats_cmd =
    let sdoc = "Print cell count, total bytes, and leftover temp files." in
    let run dir =
      let s = Rapid_store.Store.open_dir dir in
      let st = Rapid_store.Store.stats s in
      Printf.printf "dir         %s\n" (Rapid_store.Store.dir s);
      Printf.printf "cells       %d\n" st.Rapid_store.Store.cells;
      Printf.printf "bytes       %d\n" st.Rapid_store.Store.bytes;
      Printf.printf "tmp_files   %d\n" st.Rapid_store.Store.tmp_files
    in
    Cmd.v (Cmd.info "stats" ~doc:sdoc) Term.(const run $ dir_arg)
  in
  let gc_cmd =
    let sdoc =
      "Evict oldest cells until the store fits under a size bound (and \
       sweep crash-leftover temp files)."
    in
    let max_bytes_arg =
      Arg.(
        required
        & opt (some int) None
        & info [ "max-bytes" ] ~docv:"N"
            ~doc:"Target size bound for the store's cells, in bytes.")
    in
    let run dir max_bytes =
      let s = Rapid_store.Store.open_dir dir in
      let removed, freed = Rapid_store.Store.gc s ~max_bytes in
      Printf.printf "evicted %d cells (%d bytes)\n" removed freed
    in
    Cmd.v (Cmd.info "gc" ~doc:sdoc) Term.(const run $ dir_arg $ max_bytes_arg)
  in
  let clear_cmd =
    let sdoc = "Delete every cell in the store." in
    let run dir =
      let s = Rapid_store.Store.open_dir dir in
      Printf.printf "removed %d cells\n" (Rapid_store.Store.clear s)
    in
    Cmd.v (Cmd.info "clear" ~doc:sdoc) Term.(const run $ dir_arg)
  in
  Cmd.group (Cmd.info "cache" ~doc) [ stats_cmd; gc_cmd; clear_cmd ]

let hardness_cmd =
  let doc = "Exercise the appendix hardness constructions." in
  let run () =
    let open Rapid_hardness in
    Printf.printf "Theorem 1(a): online ALG vs adversary (n = 16)\n";
    List.iter
      (fun (name, alg) ->
        let o = Online_adversary.run ~n:16 ~alg in
        Printf.printf "  ALG=%-12s delivered %d/16; ADV delivered %d/16\n" name
          o.Online_adversary.alg_delivered o.Online_adversary.adv_delivered)
      [
        ("spread", Online_adversary.spread);
        ("flood-first", Online_adversary.replicate_first);
        ("modulo-4", Online_adversary.greedy_modulo 4);
      ];
    Printf.printf "\nTheorem 1(b): gadget delivery-rate bound i/(3i-1)\n";
    List.iter
      (fun i ->
        Printf.printf "  depth %-3d -> ALG rate <= %.4f\n" i (Gadget.depth_ratio i))
      [ 1; 2; 3; 10; 100 ];
    Printf.printf "\nTheorem 2: EDP reduction on the diamond DAG\n";
    let diamond =
      { Edp_reduction.num_vertices = 4; edges = [ (0, 1); (1, 3); (0, 2); (2, 3) ] }
    in
    let pairs = [ (0, 3); (0, 3); (0, 3) ] in
    let edp = Edp_reduction.max_edge_disjoint_paths diamond ~pairs in
    let trace, workload = Edp_reduction.to_dtn diamond ~pairs in
    let dtn = Edp_reduction.max_deliveries_brute trace workload in
    let ilp =
      Rapid_routing.Optimal.evaluate ~objective:Rapid_routing.Optimal.Max_deliveries
        ~trace ~workload ()
    in
    Printf.printf
      "  max edge-disjoint paths = %d; DTN max deliveries (brute) = %d; ILP = %d\n"
      edp dtn ilp.Rapid_routing.Optimal.delivered
  in
  Cmd.v (Cmd.info "hardness" ~doc) Term.(const run $ const ())

let () =
  let doc = "RAPID: DTN routing as a resource allocation problem (reproduction)" in
  let info = Cmd.info "rapid" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; figure_cmd; run_cmd; trace_cmd; ttest_cmd; cache_cmd;
            hardness_cmd;
          ]))
