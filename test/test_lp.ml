(* Tests for the Rapid_lp solver substrate: simplex on known programs,
   infeasibility/unboundedness detection, column bounds, warm-started
   re-solves, branch-and-bound ILPs, and property tests comparing the
   bounded-variable solver against the seed's dense two-phase simplex
   (kept below as a test-only reference) and the ILP against brute-force
   enumeration on random small integer programs. *)

open Rapid_lp
open Rapid_prelude

let check_close ?(eps = 1e-6) what expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" what expected actual

let solve_expect_optimal p =
  match Simplex.solve p with
  | Simplex.Optimal o -> o
  | Simplex.Infeasible -> Alcotest.fail "unexpected: infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected: unbounded"
  | Simplex.Iter_limit -> Alcotest.fail "unexpected: iteration limit"

(* ------------------------------------------------------------------ *)
(* Reference solver: the seed's dense two-phase simplex, verbatim except
   for the module wrapper. It knows nothing about column bounds, so
   callers express bounds as ordinary rows; disagreements between it and
   the bounded-variable solver on the same program are bugs. *)

module Reference = struct
  type solution = { objective : float; solution : float array }
  type result = Optimal of solution | Infeasible | Unbounded

  let eps = 1e-9

  type tableau = {
    m : int;
    n : int;
    a : float array array;
    b : float array;
    basis : int array;
  }

  let pivot t ~row ~col =
    let arow = t.a.(row) in
    let p = arow.(col) in
    for j = 0 to t.n - 1 do
      arow.(j) <- arow.(j) /. p
    done;
    t.b.(row) <- t.b.(row) /. p;
    for i = 0 to t.m - 1 do
      if i <> row then begin
        let f = t.a.(i).(col) in
        if Float.abs f > 0.0 then begin
          let ai = t.a.(i) in
          for j = 0 to t.n - 1 do
            ai.(j) <- ai.(j) -. (f *. arow.(j))
          done;
          t.b.(i) <- t.b.(i) -. (f *. t.b.(row))
        end
      end
    done;
    t.basis.(row) <- col

  let reduced_costs t cost =
    let z = Array.copy cost in
    let obj = ref 0.0 in
    for r = 0 to t.m - 1 do
      let cb = cost.(t.basis.(r)) in
      if cb <> 0.0 then begin
        obj := !obj +. (cb *. t.b.(r));
        let ar = t.a.(r) in
        for j = 0 to t.n - 1 do
          z.(j) <- z.(j) -. (cb *. ar.(j))
        done
      end
    done;
    (z, !obj)

  let optimize t cost =
    let max_iter = 20_000 + (200 * (t.m + t.n)) in
    let rec loop iter =
      let z, _ = reduced_costs t cost in
      let bland = iter > max_iter / 2 in
      let enter = ref (-1) in
      let best = ref (-.eps) in
      (try
         for j = 0 to t.n - 1 do
           if z.(j) < -.eps then
             if bland then begin
               enter := j;
               raise Exit
             end
             else if z.(j) < !best then begin
               best := z.(j);
               enter := j
             end
         done
       with Exit -> ());
      if !enter < 0 then `Optimal
      else if iter >= max_iter then `Optimal
      else begin
        let col = !enter in
        let leave = ref (-1) in
        let best_ratio = ref infinity in
        for r = 0 to t.m - 1 do
          let arc = t.a.(r).(col) in
          if arc > eps then begin
            let ratio = t.b.(r) /. arc in
            if
              ratio < !best_ratio -. eps
              || (ratio < !best_ratio +. eps
                 && (!leave < 0 || t.basis.(r) < t.basis.(!leave)))
            then begin
              best_ratio := ratio;
              leave := r
            end
          end
        done;
        if !leave < 0 then `Unbounded
        else begin
          pivot t ~row:!leave ~col;
          loop (iter + 1)
        end
      end
    in
    loop 0

  let solve ?(extra = []) problem =
    let n_struct = Lp_problem.num_vars problem in
    let rows = Lp_problem.constraints problem @ extra in
    let m = List.length rows in
    if m = 0 then
      let c = Lp_problem.objective problem in
      if Array.exists (fun x -> x < -.eps) c then Unbounded
      else Optimal { objective = 0.0; solution = Array.make n_struct 0.0 }
    else begin
      let normalized =
        List.map
          (fun { Lp_problem.coeffs; relation; rhs } ->
            if rhs < 0.0 then
              let coeffs = List.map (fun (i, c) -> (i, -.c)) coeffs in
              let relation =
                match relation with
                | Lp_problem.Le -> Lp_problem.Ge
                | Lp_problem.Ge -> Lp_problem.Le
                | Lp_problem.Eq -> Lp_problem.Eq
              in
              (coeffs, relation, -.rhs)
            else (coeffs, relation, rhs))
          rows
      in
      let n_slack =
        List.length
          (List.filter
             (fun (_, r, _) -> r = Lp_problem.Le || r = Lp_problem.Ge)
             normalized)
      in
      let n_art =
        List.length
          (List.filter
             (fun (_, r, _) -> r = Lp_problem.Ge || r = Lp_problem.Eq)
             normalized)
      in
      let n = n_struct + n_slack + n_art in
      let a = Array.init m (fun _ -> Array.make n 0.0) in
      let b = Array.make m 0.0 in
      let basis = Array.make m (-1) in
      let slack_idx = ref n_struct in
      let art_idx = ref (n_struct + n_slack) in
      List.iteri
        (fun r (coeffs, relation, rhs) ->
          List.iter (fun (i, c) -> a.(r).(i) <- a.(r).(i) +. c) coeffs;
          b.(r) <- rhs;
          match relation with
          | Lp_problem.Le ->
              a.(r).(!slack_idx) <- 1.0;
              basis.(r) <- !slack_idx;
              incr slack_idx
          | Lp_problem.Ge ->
              a.(r).(!slack_idx) <- -1.0;
              incr slack_idx;
              a.(r).(!art_idx) <- 1.0;
              basis.(r) <- !art_idx;
              incr art_idx
          | Lp_problem.Eq ->
              a.(r).(!art_idx) <- 1.0;
              basis.(r) <- !art_idx;
              incr art_idx)
        normalized;
      let t = { m; n; a; b; basis } in
      let phase1_needed = n_art > 0 in
      let feasible =
        if not phase1_needed then true
        else begin
          let cost1 = Array.make n 0.0 in
          for j = n_struct + n_slack to n - 1 do
            cost1.(j) <- 1.0
          done;
          match optimize t cost1 with
          | `Unbounded -> false
          | `Optimal ->
              let _, obj = reduced_costs t cost1 in
              if obj > 1e-6 then false
              else begin
                for r = 0 to m - 1 do
                  if t.basis.(r) >= n_struct + n_slack then begin
                    let found = ref false in
                    let j = ref 0 in
                    while (not !found) && !j < n_struct + n_slack do
                      if Float.abs t.a.(r).(!j) > eps then begin
                        pivot t ~row:r ~col:!j;
                        found := true
                      end;
                      incr j
                    done
                  end
                done;
                true
              end
        end
      in
      if not feasible then Infeasible
      else begin
        let cost2 = Array.make n 0.0 in
        let c = Lp_problem.objective problem in
        Array.blit c 0 cost2 0 n_struct;
        for j = n_struct + n_slack to n - 1 do
          cost2.(j) <- 1e12
        done;
        match optimize t cost2 with
        | `Unbounded -> Unbounded
        | `Optimal ->
            let solution = Array.make n_struct 0.0 in
            for r = 0 to m - 1 do
              if t.basis.(r) < n_struct then solution.(t.basis.(r)) <- t.b.(r)
            done;
            let objective =
              Array.to_seqi solution
              |> Seq.fold_left (fun acc (i, x) -> acc +. (c.(i) *. x)) 0.0
            in
            Optimal { objective; solution }
      end
    end
end

(* ------------------------------------------------------------------ *)
(* Simplex *)

let test_simplex_basic_2d () =
  (* max x + y s.t. x + 2y <= 4, 3x + y <= 6  => min -(x+y).
     Optimum at intersection: x = 8/5, y = 6/5, value 14/5. *)
  let p = Lp_problem.create ~num_vars:2 in
  Lp_problem.set_objective p [ (0, -1.0); (1, -1.0) ];
  Lp_problem.add_constraint p [ (0, 1.0); (1, 2.0) ] Lp_problem.Le 4.0;
  Lp_problem.add_constraint p [ (0, 3.0); (1, 1.0) ] Lp_problem.Le 6.0;
  let o = solve_expect_optimal p in
  check_close "objective" (-2.8) o.objective;
  check_close "x" 1.6 o.solution.(0);
  check_close "y" 1.2 o.solution.(1)

let test_simplex_equality () =
  (* min x + y s.t. x + y = 3, x <= 1 => x=1, y=2 is not forced; any point on
     the segment has objective 3. *)
  let p = Lp_problem.create ~num_vars:2 in
  Lp_problem.set_objective p [ (0, 1.0); (1, 1.0) ];
  Lp_problem.add_constraint p [ (0, 1.0); (1, 1.0) ] Lp_problem.Eq 3.0;
  Lp_problem.add_constraint p [ (0, 1.0) ] Lp_problem.Le 1.0;
  let o = solve_expect_optimal p in
  check_close "objective" 3.0 o.objective

let test_simplex_ge_constraints () =
  (* min 2x + 3y s.t. x + y >= 4, x >= 1, y >= 1. Optimum x=3,y=1 -> 9. *)
  let p = Lp_problem.create ~num_vars:2 in
  Lp_problem.set_objective p [ (0, 2.0); (1, 3.0) ];
  Lp_problem.add_constraint p [ (0, 1.0); (1, 1.0) ] Lp_problem.Ge 4.0;
  Lp_problem.add_constraint p [ (0, 1.0) ] Lp_problem.Ge 1.0;
  Lp_problem.add_constraint p [ (1, 1.0) ] Lp_problem.Ge 1.0;
  let o = solve_expect_optimal p in
  check_close "objective" 9.0 o.objective;
  check_close "x" 3.0 o.solution.(0);
  check_close "y" 1.0 o.solution.(1)

let test_simplex_negative_rhs () =
  (* x - y <= -1 (i.e., y >= x + 1), min y => x=0, y=1. *)
  let p = Lp_problem.create ~num_vars:2 in
  Lp_problem.set_objective p [ (1, 1.0) ];
  Lp_problem.add_constraint p [ (0, 1.0); (1, -1.0) ] Lp_problem.Le (-1.0);
  let o = solve_expect_optimal p in
  check_close "objective" 1.0 o.objective

let test_simplex_infeasible () =
  let p = Lp_problem.create ~num_vars:1 in
  Lp_problem.set_objective p [ (0, 1.0) ];
  Lp_problem.add_constraint p [ (0, 1.0) ] Lp_problem.Ge 5.0;
  Lp_problem.add_constraint p [ (0, 1.0) ] Lp_problem.Le 3.0;
  match Simplex.solve p with
  | Simplex.Infeasible -> ()
  | Simplex.Optimal _ -> Alcotest.fail "expected infeasible, got optimal"
  | Simplex.Unbounded -> Alcotest.fail "expected infeasible, got unbounded"
  | Simplex.Iter_limit -> Alcotest.fail "expected infeasible, got iter limit"

let test_simplex_unbounded () =
  (* min -x s.t. x >= 1: unbounded below. *)
  let p = Lp_problem.create ~num_vars:1 in
  Lp_problem.set_objective p [ (0, -1.0) ];
  Lp_problem.add_constraint p [ (0, 1.0) ] Lp_problem.Ge 1.0;
  match Simplex.solve p with
  | Simplex.Unbounded -> ()
  | Simplex.Optimal _ -> Alcotest.fail "expected unbounded, got optimal"
  | Simplex.Infeasible -> Alcotest.fail "expected unbounded, got infeasible"
  | Simplex.Iter_limit -> Alcotest.fail "expected unbounded, got iter limit"

let test_simplex_degenerate () =
  (* A classic degenerate program; must terminate and find the optimum.
     min -0.75x1 + 150x2 - 0.02x3 + 6x4 (Beale's cycling example). *)
  let p = Lp_problem.create ~num_vars:4 in
  Lp_problem.set_objective p [ (0, -0.75); (1, 150.0); (2, -0.02); (3, 6.0) ];
  Lp_problem.add_constraint p
    [ (0, 0.25); (1, -60.0); (2, -0.04); (3, 9.0) ]
    Lp_problem.Le 0.0;
  Lp_problem.add_constraint p
    [ (0, 0.5); (1, -90.0); (2, -0.02); (3, 3.0) ]
    Lp_problem.Le 0.0;
  Lp_problem.add_constraint p [ (2, 1.0) ] Lp_problem.Le 1.0;
  let o = solve_expect_optimal p in
  check_close ~eps:1e-6 "beale optimum" (-0.05) o.objective

let test_simplex_extra_rows () =
  (* Base problem plus extra rows, as one-shot callers use them. *)
  let p = Lp_problem.create ~num_vars:1 in
  Lp_problem.set_objective p [ (0, -1.0) ];
  Lp_problem.add_constraint p [ (0, 1.0) ] Lp_problem.Le 10.0;
  let extra =
    [ { Lp_problem.coeffs = [ (0, 1.0) ]; relation = Lp_problem.Le; rhs = 4.0 } ]
  in
  (match Simplex.solve ~extra p with
  | Simplex.Optimal o -> check_close "bounded by extra" (-4.0) o.objective
  | _ -> Alcotest.fail "expected optimal");
  (* Without extra rows the answer differs. *)
  let o = solve_expect_optimal p in
  check_close "without extra" (-10.0) o.objective

let test_simplex_upper_bounds_no_rows () =
  (* Column bounds alone, zero constraint rows: min -x - 2y with
     x <= 4, y <= 1.5 is solved entirely by bound flips. *)
  let p = Lp_problem.create ~num_vars:2 in
  Lp_problem.set_objective p [ (0, -1.0); (1, -2.0) ];
  Lp_problem.set_upper p 0 4.0;
  Lp_problem.set_upper p 1 1.5;
  let o = solve_expect_optimal p in
  check_close "objective" (-7.0) o.objective;
  check_close "x" 4.0 o.solution.(0);
  check_close "y" 1.5 o.solution.(1)

let test_simplex_bounds_vs_rows () =
  (* The same program with x <= 1 expressed as a column bound and as a
     row must agree. max x + y s.t. x + y <= 1.5, x, y in [0, 1]. *)
  let bounded = Lp_problem.create ~num_vars:2 in
  Lp_problem.set_objective bounded [ (0, -1.0); (1, -1.0) ];
  Lp_problem.add_constraint bounded [ (0, 1.0); (1, 1.0) ] Lp_problem.Le 1.5;
  Lp_problem.set_upper bounded 0 1.0;
  Lp_problem.set_upper bounded 1 1.0;
  let o = solve_expect_optimal bounded in
  check_close "objective" (-1.5) o.objective;
  (* Lower bounds likewise: min x + y s.t. x + y >= 3 with x >= 2. *)
  let lower = Lp_problem.create ~num_vars:2 in
  Lp_problem.set_objective lower [ (0, 1.0); (1, 1.0) ];
  Lp_problem.add_constraint lower [ (0, 1.0); (1, 1.0) ] Lp_problem.Ge 3.0;
  Lp_problem.set_lower lower 0 2.0;
  let o = solve_expect_optimal lower in
  check_close "objective with lower bound" 3.0 o.objective;
  if o.solution.(0) < 2.0 -. 1e-9 then Alcotest.fail "lower bound violated"

let test_simplex_feasibility_of_solution () =
  (* The returned point must satisfy every constraint and every bound. *)
  let p = Lp_problem.create ~num_vars:3 in
  Lp_problem.set_objective p [ (0, 1.0); (1, 2.0); (2, -1.0) ];
  Lp_problem.add_constraint p [ (0, 1.0); (1, 1.0); (2, 1.0) ] Lp_problem.Le 7.0;
  Lp_problem.add_constraint p [ (0, 2.0); (2, 1.0) ] Lp_problem.Ge 2.0;
  Lp_problem.add_constraint p [ (1, 1.0); (2, -1.0) ] Lp_problem.Eq 1.0;
  Lp_problem.set_upper p 2 2.5;
  let o = solve_expect_optimal p in
  let dot coeffs = List.fold_left (fun acc (i, c) -> acc +. (c *. o.solution.(i))) 0.0 coeffs in
  List.iter
    (fun { Lp_problem.coeffs; relation; rhs } ->
      let v = dot coeffs in
      match relation with
      | Lp_problem.Le -> if v > rhs +. 1e-6 then Alcotest.fail "Le violated"
      | Lp_problem.Ge -> if v < rhs -. 1e-6 then Alcotest.fail "Ge violated"
      | Lp_problem.Eq ->
          if Float.abs (v -. rhs) > 1e-6 then Alcotest.fail "Eq violated")
    (Lp_problem.constraints p);
  Array.iteri
    (fun i x ->
      let lo, hi = (Lp_problem.bounds p).(i) in
      if x < lo -. 1e-9 || x > hi +. 1e-9 then
        Alcotest.fail "column bound violated")
    o.solution

let test_state_warm_resolve () =
  (* Warm-started re-solves under changed column bounds: the branch-and-
     bound hot path, exercised directly. *)
  let p = Lp_problem.create ~num_vars:2 in
  Lp_problem.set_objective p [ (0, -1.0); (1, -1.0) ];
  Lp_problem.add_constraint p [ (0, 1.0); (1, 1.0) ] Lp_problem.Le 3.0;
  Lp_problem.set_upper p 0 2.0;
  Lp_problem.set_upper p 1 2.0;
  let st = Simplex.State.create p in
  (match Simplex.State.solve_root st with
  | Simplex.Optimal o -> check_close "root" (-3.0) o.objective
  | _ -> Alcotest.fail "root not optimal");
  (* Force x = 0: optimum becomes y = 2. *)
  (match Simplex.State.resolve st ~bounds:[ (0, 0.0, 0.0) ] with
  | Simplex.Optimal o, warm ->
      check_close "x fixed to 0" (-2.0) o.objective;
      check_close "x" 0.0 o.solution.(0);
      Alcotest.(check bool) "warm path" true warm
  | _ -> Alcotest.fail "resolve not optimal");
  (* Force x >= 1 instead (override replaces, not stacks). *)
  (match Simplex.State.resolve st ~bounds:[ (0, 1.0, 2.0) ] with
  | Simplex.Optimal o, _ ->
      check_close "x >= 1" (-3.0) o.objective;
      if o.solution.(0) < 1.0 -. 1e-9 then Alcotest.fail "x below 1"
  | _ -> Alcotest.fail "resolve not optimal");
  (* Empty box: immediate infeasible. *)
  (match Simplex.State.resolve st ~bounds:[ (1, 2.0, 1.0) ] with
  | Simplex.Infeasible, _ -> ()
  | _ -> Alcotest.fail "empty box not infeasible");
  (* No overrides: back to the root optimum. *)
  match Simplex.State.resolve st ~bounds:[] with
  | Simplex.Optimal o, _ -> check_close "reverted" (-3.0) o.objective
  | _ -> Alcotest.fail "revert not optimal"

(* ------------------------------------------------------------------ *)
(* ILP *)

let solve_ilp_expect p =
  match Ilp.solve p with
  | Ilp.Solved o -> o
  | Ilp.Infeasible -> Alcotest.fail "ilp: unexpected infeasible"
  | Ilp.Unbounded -> Alcotest.fail "ilp: unexpected unbounded"
  | Ilp.No_incumbent -> Alcotest.fail "ilp: no incumbent"

let test_ilp_knapsack () =
  (* max 8a + 11b + 6c + 4d, weights 5,7,4,3 <= 14, binary.
     Known optimum: b + c + d? 11+6+4=21, weight 14. a+b? 19 w12. a+c+d=18 w12.
     Optimal = 21. Minimize the negative. *)
  let p = Lp_problem.create ~num_vars:4 in
  Lp_problem.set_objective p [ (0, -8.0); (1, -11.0); (2, -6.0); (3, -4.0) ];
  Lp_problem.add_constraint p
    [ (0, 5.0); (1, 7.0); (2, 4.0); (3, 3.0) ]
    Lp_problem.Le 14.0;
  for v = 0 to 3 do
    Lp_problem.set_upper p v 1.0;
    Lp_problem.mark_integer p v
  done;
  let o = solve_ilp_expect p in
  check_close "knapsack optimum" (-21.0) o.objective;
  Alcotest.(check bool) "proven" true o.proven_optimal;
  Array.iter
    (fun x ->
      if Float.abs (x -. Float.round x) > 1e-6 then
        Alcotest.fail "non-integral ILP solution")
    o.solution

let test_ilp_rounding_matters () =
  (* LP relaxation optimum is fractional; ILP must find the integral one.
     max x + y s.t. 2x + 2y <= 3, x,y binary -> LP gives 1.5, ILP gives 1. *)
  let p = Lp_problem.create ~num_vars:2 in
  Lp_problem.set_objective p [ (0, -1.0); (1, -1.0) ];
  Lp_problem.add_constraint p [ (0, 2.0); (1, 2.0) ] Lp_problem.Le 3.0;
  for v = 0 to 1 do
    Lp_problem.set_upper p v 1.0;
    Lp_problem.mark_integer p v
  done;
  let o = solve_ilp_expect p in
  check_close "ilp optimum" (-1.0) o.objective

let test_ilp_integral_relaxation_short_circuits () =
  (* When the relaxation is already integral, one node suffices. *)
  let p = Lp_problem.create ~num_vars:2 in
  Lp_problem.set_objective p [ (0, 1.0); (1, 1.0) ];
  Lp_problem.add_constraint p [ (0, 1.0) ] Lp_problem.Ge 2.0;
  Lp_problem.add_constraint p [ (1, 1.0) ] Lp_problem.Ge 3.0;
  Lp_problem.mark_integer p 0;
  Lp_problem.mark_integer p 1;
  let o = solve_ilp_expect p in
  check_close "objective" 5.0 o.objective;
  Alcotest.(check int) "single node" 1 o.nodes_explored

let test_ilp_infeasible () =
  let p = Lp_problem.create ~num_vars:1 in
  Lp_problem.set_objective p [ (0, 1.0) ];
  Lp_problem.add_constraint p [ (0, 2.0) ] Lp_problem.Eq 1.0;
  (* x = 0.5 is the only solution; integrality makes it infeasible. *)
  Lp_problem.mark_integer p 0;
  match Ilp.solve p with
  | Ilp.Infeasible -> ()
  | Ilp.Solved o -> Alcotest.failf "expected infeasible, got %g" o.objective
  | Ilp.Unbounded -> Alcotest.fail "expected infeasible, got unbounded"
  | Ilp.No_incumbent -> Alcotest.fail "expected infeasible, got no-incumbent"

let test_ilp_warm_starts_counted () =
  (* A fractional relaxation forces branching; the shared Simplex.State
     must serve (almost) every child node from the warm dual path. *)
  let nodes0 = Rapid_obs.Counter.value (Rapid_obs.Counter.create "ilp.nodes") in
  let warm0 =
    Rapid_obs.Counter.value (Rapid_obs.Counter.create "ilp.warm_starts")
  in
  let p = Lp_problem.create ~num_vars:3 in
  Lp_problem.set_objective p [ (0, -3.0); (1, -2.0); (2, -2.0) ];
  Lp_problem.add_constraint p
    [ (0, 2.0); (1, 2.0); (2, 2.0) ]
    Lp_problem.Le 3.0;
  for v = 0 to 2 do
    Lp_problem.set_upper p v 1.0;
    Lp_problem.mark_integer p v
  done;
  let o = solve_ilp_expect p in
  check_close "objective" (-3.0) o.objective;
  let nodes =
    Rapid_obs.Counter.value (Rapid_obs.Counter.create "ilp.nodes") - nodes0
  in
  let warm =
    Rapid_obs.Counter.value (Rapid_obs.Counter.create "ilp.warm_starts")
    - warm0
  in
  if nodes < 2 then Alcotest.failf "expected branching, got %d nodes" nodes;
  if warm < nodes - 1 then
    Alcotest.failf "expected >= %d warm starts, got %d" (nodes - 1) warm

(* ------------------------------------------------------------------ *)
(* Properties. *)

(* Random LP with column bounds; the same program with bounds spelled as
   rows, fed to the seed's dense solver, must agree on the verdict and
   (when optimal) the objective. *)
let prop_bounded_simplex_matches_reference =
  let gen = QCheck.Gen.int_range 0 100_000 in
  QCheck.Test.make ~name:"bounded simplex matches seed dense solver"
    ~count:300 (QCheck.make gen) (fun seed ->
      let rng = Rng.create seed in
      let num_vars = 2 + Rng.int rng 5 in
      let num_rows = 1 + Rng.int rng 4 in
      let rows =
        List.init num_rows (fun _ ->
            let coeffs =
              List.init num_vars (fun i -> (i, Rng.uniform rng (-3.0) 3.0))
              |> List.filter (fun _ -> Rng.float rng < 0.8)
            in
            let relation =
              match Rng.int rng 4 with
              | 0 -> Lp_problem.Ge
              | 1 -> Lp_problem.Eq
              | _ -> Lp_problem.Le
            in
            (coeffs, relation, Rng.uniform rng (-2.0) 6.0))
      in
      let bnds =
        Array.init num_vars (fun _ ->
            let lo =
              if Rng.float rng < 0.3 then Rng.uniform rng 0.0 1.0 else 0.0
            in
            let hi =
              if Rng.float rng < 0.6 then lo +. Rng.uniform rng 0.0 3.0
              else infinity
            in
            (lo, hi))
      in
      let obj =
        List.init num_vars (fun i -> (i, Rng.uniform rng (-4.0) 4.0))
      in
      let bounded = Lp_problem.create ~num_vars in
      Lp_problem.set_objective bounded obj;
      List.iter
        (fun (coeffs, rel, rhs) ->
          Lp_problem.add_constraint bounded coeffs rel rhs)
        rows;
      Array.iteri
        (fun i (lo, hi) ->
          Lp_problem.set_lower bounded i lo;
          if hi < infinity then Lp_problem.set_upper bounded i hi)
        bnds;
      let as_rows = Lp_problem.create ~num_vars in
      Lp_problem.set_objective as_rows obj;
      List.iter
        (fun (coeffs, rel, rhs) ->
          Lp_problem.add_constraint as_rows coeffs rel rhs)
        rows;
      Array.iteri
        (fun i (lo, hi) ->
          if lo > 0.0 then
            Lp_problem.add_constraint as_rows [ (i, 1.0) ] Lp_problem.Ge lo;
          if hi < infinity then
            Lp_problem.add_constraint as_rows [ (i, 1.0) ] Lp_problem.Le hi)
        bnds;
      match (Simplex.solve bounded, Reference.solve as_rows) with
      | Simplex.Optimal a, Reference.Optimal b ->
          Float.abs (a.objective -. b.objective) < 1e-5
      | Simplex.Infeasible, Reference.Infeasible -> true
      | Simplex.Unbounded, Reference.Unbounded -> true
      | _ -> false)

(* Warm-started resolves must agree with cold solves of a problem that
   has the overridden bounds baked in from the start. *)
let prop_warm_resolve_matches_cold =
  let gen = QCheck.Gen.int_range 0 100_000 in
  QCheck.Test.make ~name:"warm resolve matches cold solve" ~count:200
    (QCheck.make gen) (fun seed ->
      let rng = Rng.create seed in
      let num_vars = 2 + Rng.int rng 5 in
      let rows =
        List.init
          (1 + Rng.int rng 3)
          (fun _ ->
            let coeffs =
              List.init num_vars (fun i -> (i, Rng.uniform rng (-2.0) 3.0))
            in
            let relation =
              if Rng.float rng < 0.75 then Lp_problem.Le else Lp_problem.Ge
            in
            (coeffs, relation, Rng.uniform rng 0.0 6.0))
      in
      let obj =
        List.init num_vars (fun i -> (i, Rng.uniform rng (-4.0) 4.0))
      in
      let ub = Array.init num_vars (fun _ -> Rng.uniform rng 0.5 4.0) in
      let make () =
        let p = Lp_problem.create ~num_vars in
        Lp_problem.set_objective p obj;
        List.iter
          (fun (coeffs, rel, rhs) -> Lp_problem.add_constraint p coeffs rel rhs)
          rows;
        Array.iteri (fun i u -> Lp_problem.set_upper p i u) ub;
        p
      in
      let st = Simplex.State.create (make ()) in
      (match Simplex.State.solve_root st with
      | Simplex.Optimal _ | Simplex.Infeasible | Simplex.Unbounded
      | Simplex.Iter_limit ->
          ());
      let ok = ref true in
      for _ = 1 to 3 do
        (* Random branch-like overrides on a few variables. *)
        let overrides =
          List.init num_vars (fun i ->
              let lo = Float.of_int (Rng.int rng 2) in
              let hi = Float.min ub.(i) (lo +. Float.of_int (Rng.int rng 2)) in
              (i, Float.min lo hi, hi))
          |> List.filter (fun _ -> Rng.float rng < 0.4)
        in
        let warm, _ = Simplex.State.resolve st ~bounds:overrides in
        let fresh = make () in
        List.iter
          (fun (i, lo, hi) ->
            Lp_problem.set_lower fresh i lo;
            Lp_problem.set_upper fresh i hi)
          overrides;
        let cold = Simplex.solve fresh in
        (match (warm, cold) with
        | Simplex.Optimal a, Simplex.Optimal b ->
            if Float.abs (a.objective -. b.objective) > 1e-5 then ok := false
        | Simplex.Infeasible, Simplex.Infeasible -> ()
        | Simplex.Unbounded, Simplex.Unbounded -> ()
        | _ -> ok := false)
      done;
      !ok)

let brute_force_binary ~num_vars ~obj ~rows =
  (* Minimize over all 2^num_vars assignments; None when infeasible. *)
  let best = ref None in
  for mask = 0 to (1 lsl num_vars) - 1 do
    let x = Array.init num_vars (fun i -> if mask land (1 lsl i) <> 0 then 1.0 else 0.0) in
    let ok =
      List.for_all
        (fun (coeffs, rhs) ->
          let v = List.fold_left (fun acc (i, c) -> acc +. (c *. x.(i))) 0.0 coeffs in
          v <= rhs +. 1e-9)
        rows
    in
    if ok then begin
      let value = Array.to_seqi x |> Seq.fold_left (fun acc (i, xi) -> acc +. (obj.(i) *. xi)) 0.0 in
      match !best with
      | Some b when b <= value -> ()
      | _ -> best := Some value
    end
  done;
  !best

let prop_ilp_matches_brute_force =
  let gen =
    QCheck.Gen.(
      let* num_vars = int_range 2 12 in
      let* num_rows = int_range 1 4 in
      let* obj = array_size (return num_vars) (float_range (-5.0) 5.0) in
      let* rows =
        list_size (return num_rows)
          (let* coeffs =
             array_size (return num_vars) (float_range (-3.0) 3.0)
           in
           let* rhs = float_range 0.0 6.0 in
           return (coeffs, rhs))
      in
      return (num_vars, obj, rows))
  in
  QCheck.Test.make ~name:"ilp matches brute force (binary programs)" ~count:80
    (QCheck.make gen)
    (fun (num_vars, obj, rows) ->
      let rows = List.map (fun (c, r) -> (Array.to_list (Array.mapi (fun i x -> (i, x)) c), r)) rows in
      let p = Lp_problem.create ~num_vars in
      Lp_problem.set_objective p (Array.to_list (Array.mapi (fun i c -> (i, c)) obj));
      List.iter (fun (coeffs, rhs) -> Lp_problem.add_constraint p coeffs Lp_problem.Le rhs) rows;
      for v = 0 to num_vars - 1 do
        Lp_problem.set_upper p v 1.0;
        Lp_problem.mark_integer p v
      done;
      let expected = brute_force_binary ~num_vars ~obj ~rows in
      match (Ilp.solve p, expected) with
      | Ilp.Solved o, Some e -> Float.abs (o.objective -. e) < 1e-5
      | Ilp.Infeasible, None -> true
      | Ilp.Solved _, None -> false
      | Ilp.Infeasible, Some _ -> false
      | (Ilp.Unbounded | Ilp.No_incumbent), _ -> false)

let prop_simplex_lower_bounds_ilp =
  let gen = QCheck.Gen.int_range 0 10_000 in
  QCheck.Test.make ~name:"lp relaxation lower-bounds ilp" ~count:40
    (QCheck.make gen)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars = 3 + Rng.int rng 3 in
      let p = Lp_problem.create ~num_vars in
      Lp_problem.set_objective p
        (List.init num_vars (fun i -> (i, Rng.uniform rng (-4.0) 4.0)));
      for _ = 1 to 3 do
        Lp_problem.add_constraint p
          (List.init num_vars (fun i -> (i, Rng.uniform rng 0.0 3.0)))
          Lp_problem.Le
          (Rng.uniform rng 1.0 8.0)
      done;
      for v = 0 to num_vars - 1 do
        Lp_problem.set_upper p v 1.0;
        Lp_problem.mark_integer p v
      done;
      match (Simplex.solve p, Ilp.solve p) with
      | Simplex.Optimal lp, Ilp.Solved ilp -> lp.objective <= ilp.objective +. 1e-6
      | Simplex.Infeasible, Ilp.Infeasible -> true
      | _, Ilp.Infeasible -> true (* integrality can break feasibility *)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Sparse rewrite oracle properties: Dense_simplex is the pre-rewrite
   bounded-variable dense solver kept verbatim, so any disagreement with
   the sparse revised simplex on the same program is a bug in the
   rewrite. Iteration-capped runs on either side are inconclusive. *)

let build_random_bounded rng =
  let num_vars = 2 + Rng.int rng 6 in
  let num_rows = 1 + Rng.int rng 5 in
  let p = Lp_problem.create ~num_vars in
  Lp_problem.set_objective p
    (List.init num_vars (fun i -> (i, Rng.uniform rng (-4.0) 4.0)));
  for _ = 1 to num_rows do
    let coeffs =
      List.init num_vars (fun i -> (i, Rng.uniform rng (-3.0) 3.0))
      |> List.filter (fun _ -> Rng.float rng < 0.8)
    in
    let relation =
      match Rng.int rng 4 with
      | 0 -> Lp_problem.Ge
      | 1 -> Lp_problem.Eq
      | _ -> Lp_problem.Le
    in
    Lp_problem.add_constraint p coeffs relation (Rng.uniform rng (-2.0) 6.0)
  done;
  for i = 0 to num_vars - 1 do
    if Rng.float rng < 0.3 then
      Lp_problem.set_lower p i (Rng.uniform rng 0.0 1.0);
    if Rng.float rng < 0.6 then begin
      let lo, _ = (Lp_problem.bounds p).(i) in
      Lp_problem.set_upper p i (lo +. Rng.uniform rng 0.0 3.0)
    end
  done;
  p

let prop_sparse_matches_dense_oracle =
  let gen = QCheck.Gen.int_range 0 100_000 in
  QCheck.Test.make ~name:"sparse simplex matches dense oracle" ~count:400
    (QCheck.make gen) (fun seed ->
      let rng = Rng.create seed in
      let p = build_random_bounded rng in
      match (Simplex.solve p, Dense_simplex.solve p) with
      | Simplex.Optimal a, Dense_simplex.Optimal b ->
          Float.abs (a.Simplex.objective -. b.Dense_simplex.objective) < 1e-5
      | Simplex.Infeasible, Dense_simplex.Infeasible -> true
      | Simplex.Unbounded, Dense_simplex.Unbounded -> true
      | Simplex.Iter_limit, _ | _, Dense_simplex.Iter_limit -> true
      | _ -> false)

(* Both warm-start states — sparse (basis + LU + eta file in State) and
   dense — must agree through the same branch-like resolve sequence. *)
let prop_warm_parity_sparse_vs_dense =
  let gen = QCheck.Gen.int_range 0 100_000 in
  QCheck.Test.make ~name:"warm resolve parity, sparse vs dense state"
    ~count:200 (QCheck.make gen) (fun seed ->
      let rng = Rng.create seed in
      let num_vars = 2 + Rng.int rng 5 in
      let rows =
        List.init
          (1 + Rng.int rng 3)
          (fun _ ->
            let coeffs =
              List.init num_vars (fun i -> (i, Rng.uniform rng (-2.0) 3.0))
            in
            let relation =
              if Rng.float rng < 0.75 then Lp_problem.Le else Lp_problem.Ge
            in
            (coeffs, relation, Rng.uniform rng 0.0 6.0))
      in
      let obj =
        List.init num_vars (fun i -> (i, Rng.uniform rng (-4.0) 4.0))
      in
      let ub = Array.init num_vars (fun _ -> Rng.uniform rng 0.5 4.0) in
      let make () =
        let p = Lp_problem.create ~num_vars in
        Lp_problem.set_objective p obj;
        List.iter
          (fun (coeffs, rel, rhs) -> Lp_problem.add_constraint p coeffs rel rhs)
          rows;
        Array.iteri (fun i u -> Lp_problem.set_upper p i u) ub;
        p
      in
      let st = Simplex.State.create (make ()) in
      let dt = Dense_simplex.State.create (make ()) in
      let agree sparse dense =
        match (sparse, dense) with
        | Simplex.Optimal a, Dense_simplex.Optimal b ->
            Float.abs (a.Simplex.objective -. b.Dense_simplex.objective)
            < 1e-5
        | Simplex.Infeasible, Dense_simplex.Infeasible -> true
        | Simplex.Unbounded, Dense_simplex.Unbounded -> true
        | Simplex.Iter_limit, _ | _, Dense_simplex.Iter_limit -> true
        | _ -> false
      in
      let ok =
        ref
          (agree (Simplex.State.solve_root st)
             (Dense_simplex.State.solve_root dt))
      in
      for _ = 1 to 4 do
        let overrides =
          List.init num_vars (fun i ->
              let lo = Float.of_int (Rng.int rng 2) in
              let hi = Float.min ub.(i) (lo +. Float.of_int (Rng.int rng 2)) in
              (i, Float.min lo hi, hi))
          |> List.filter (fun _ -> Rng.float rng < 0.4)
        in
        let warm, _ = Simplex.State.resolve st ~bounds:overrides in
        let dwarm, _ = Dense_simplex.State.resolve dt ~bounds:overrides in
        if not (agree warm dwarm) then ok := false
      done;
      !ok)

(* Presolve/postsolve round trip: solving the reduced model (with the
   independent dense oracle) and lifting must produce a point that is
   feasible for every original row and box and attains the original
   optimum. *)
let prop_presolve_postsolve_roundtrip =
  let gen = QCheck.Gen.int_range 0 100_000 in
  QCheck.Test.make ~name:"presolve/postsolve round trip" ~count:300
    (QCheck.make gen) (fun seed ->
      let rng = Rng.create seed in
      let p = build_random_bounded rng in
      let obj = Lp_problem.objective p in
      let bnds = Lp_problem.bounds p in
      let lb = Array.map fst bnds and ub = Array.map snd bnds in
      let rows = Lp_problem.constraints p in
      let pre = Presolve.reduce ~obj ~lb ~ub ~rows in
      let lift x_red =
        match Presolve.postsolve pre ~cur_lb:lb ~cur_ub:ub ~x_red with
        | `Unbounded -> (
            match Simplex.solve p with Simplex.Unbounded -> true | _ -> false)
        | `X x ->
            let row_ok (c : Lp_problem.constr) =
              let v =
                List.fold_left
                  (fun acc (i, coef) -> acc +. (coef *. x.(i)))
                  0.0 c.Lp_problem.coeffs
              in
              match c.Lp_problem.relation with
              | Lp_problem.Le -> v <= c.Lp_problem.rhs +. 1e-6
              | Lp_problem.Ge -> v >= c.Lp_problem.rhs -. 1e-6
              | Lp_problem.Eq -> Float.abs (v -. c.Lp_problem.rhs) <= 1e-6
            in
            let box_ok i xi = xi >= lb.(i) -. 1e-6 && xi <= ub.(i) +. 1e-6 in
            let value =
              Array.to_seqi x
              |> Seq.fold_left (fun acc (i, xi) -> acc +. (obj.(i) *. xi)) 0.0
            in
            List.for_all row_ok rows
            && Array.for_all (fun b -> b) (Array.mapi box_ok x)
            && (match Simplex.solve p with
               | Simplex.Optimal o ->
                   Float.abs (o.Simplex.objective -. value) < 1e-5
               | Simplex.Iter_limit -> true
               | Simplex.Infeasible | Simplex.Unbounded -> false)
      in
      match pre.Presolve.verdict with
      | Presolve.Infeasible -> (
          (* Presolve may only declare infeasibility when the solver
             agrees on the unreduced program. *)
          match Simplex.solve p with Simplex.Infeasible -> true | _ -> false)
      | Presolve.Feasible ->
          if pre.Presolve.n_red = 0 then lift [||]
          else begin
            let red = Lp_problem.create ~num_vars:pre.Presolve.n_red in
            Lp_problem.set_objective red
              (Array.to_list (Array.mapi (fun i c -> (i, c)) pre.Presolve.obj));
            List.iter
              (fun (c : Lp_problem.constr) ->
                Lp_problem.add_constraint red c.Lp_problem.coeffs
                  c.Lp_problem.relation c.Lp_problem.rhs)
              pre.Presolve.rows;
            Array.iteri
              (fun i lo ->
                Lp_problem.set_lower red i lo;
                if pre.Presolve.ub.(i) < infinity then
                  Lp_problem.set_upper red i pre.Presolve.ub.(i))
              pre.Presolve.lb;
            match Dense_simplex.solve red with
            | Dense_simplex.Optimal o -> lift o.Dense_simplex.solution
            | Dense_simplex.Infeasible -> (
                (* Feasible is "not detected infeasible", so the reduced
                   model may still be infeasible — but then the original
                   must be too. *)
                match Simplex.solve p with
                | Simplex.Infeasible -> true
                | _ -> false)
            | Dense_simplex.Unbounded -> (
                match Simplex.solve p with
                | Simplex.Unbounded -> true
                | _ -> false)
            | Dense_simplex.Iter_limit -> true
          end)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_bounded_simplex_matches_reference;
      prop_warm_resolve_matches_cold;
      prop_ilp_matches_brute_force;
      prop_simplex_lower_bounds_ilp;
      prop_sparse_matches_dense_oracle;
      prop_warm_parity_sparse_vs_dense;
      prop_presolve_postsolve_roundtrip;
    ]

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "basic 2d" `Quick test_simplex_basic_2d;
          Alcotest.test_case "equality" `Quick test_simplex_equality;
          Alcotest.test_case "ge constraints" `Quick test_simplex_ge_constraints;
          Alcotest.test_case "negative rhs" `Quick test_simplex_negative_rhs;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "degenerate (Beale)" `Quick test_simplex_degenerate;
          Alcotest.test_case "extra rows" `Quick test_simplex_extra_rows;
          Alcotest.test_case "upper bounds, no rows" `Quick
            test_simplex_upper_bounds_no_rows;
          Alcotest.test_case "bounds vs rows" `Quick test_simplex_bounds_vs_rows;
          Alcotest.test_case "solution feasibility" `Quick
            test_simplex_feasibility_of_solution;
          Alcotest.test_case "warm resolve" `Quick test_state_warm_resolve;
        ] );
      ( "ilp",
        [
          Alcotest.test_case "knapsack" `Quick test_ilp_knapsack;
          Alcotest.test_case "fractional relaxation" `Quick
            test_ilp_rounding_matters;
          Alcotest.test_case "integral shortcut" `Quick
            test_ilp_integral_relaxation_short_circuits;
          Alcotest.test_case "infeasible by integrality" `Quick
            test_ilp_infeasible;
          Alcotest.test_case "warm starts counted" `Quick
            test_ilp_warm_starts_counted;
        ] );
      ("properties", qcheck_cases);
    ]
