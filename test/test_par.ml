(* Tests for Rapid_par: the pool's List.map contract (order, exception
   choice, nested inlining), the jobs=4 vs jobs=1 report-equality
   guarantee over the protocol comparison set, and exact Counter/Timer
   merging under multi-domain hammering. *)

module Pool = Rapid_par.Pool
module Counter = Rapid_obs.Counter
module Timer = Rapid_obs.Timer
open Rapid_experiments

let with_pool ~jobs f =
  let p = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* Restore the global pool to sequential no matter how the test exits —
   other suites in this binary assume the default. *)
let with_global_jobs jobs f =
  Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_jobs 1) f

(* ------------------------------------------------------------------ *)
(* Pool semantics *)

let test_map_order () =
  with_pool ~jobs:4 (fun p ->
      let xs = List.init 200 (fun i -> i) in
      let f i = (i * i) - (3 * i) in
      Alcotest.(check (list int)) "order preserved" (List.map f xs)
        (Pool.map_pool p f xs))

let test_map_degenerate () =
  with_pool ~jobs:4 (fun p ->
      Alcotest.(check (list int)) "empty" [] (Pool.map_pool p (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 9 ]
        (Pool.map_pool p (fun x -> x * 3) [ 3 ]));
  (* A jobs<=1 pool spawns no domains and degrades to List.map. *)
  with_pool ~jobs:1 (fun p ->
      Alcotest.(check (list int)) "sequential pool" [ 0; 2; 4 ]
        (Pool.map_pool p (fun x -> 2 * x) [ 0; 1; 2 ]))

exception Boom of int

let test_exception_lowest_index () =
  with_pool ~jobs:4 (fun p ->
      match
        Pool.map_pool p
          (fun i -> if i mod 10 = 7 then raise (Boom i) else i)
          (List.init 50 Fun.id)
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Boom i ->
          (* Failures at 7, 17, 27, 37, 47: the sequential map would have
             raised the first one. *)
          Alcotest.(check int) "lowest failing index" 7 i)

let test_nested_map_inlines () =
  with_pool ~jobs:4 (fun p ->
      Alcotest.(check bool) "main domain is not a worker" false
        (Pool.inside_worker ());
      let got =
        Pool.map_pool p
          (fun i ->
            let inner =
              Pool.map_pool p (fun j -> (i * 10) + j) (List.init 5 Fun.id)
            in
            (Pool.inside_worker (), inner))
          (List.init 12 Fun.id)
      in
      List.iteri
        (fun i (in_worker, inner) ->
          Alcotest.(check bool) "ran inside a worker" true in_worker;
          Alcotest.(check (list int)) "nested map correct"
            (List.init 5 (fun j -> (i * 10) + j))
            inner)
        got)

let test_global_pool () =
  Alcotest.(check int) "default sequential" 1 (Pool.configured ());
  with_global_jobs 3 (fun () ->
      Alcotest.(check int) "configured" 3 (Pool.configured ());
      Alcotest.(check (list int)) "init through global"
        (List.init 40 (fun i -> i * 7))
        (Pool.init 40 (fun i -> i * 7)));
  Alcotest.(check int) "restored" 1 (Pool.configured ())

(* ------------------------------------------------------------------ *)
(* Report determinism: jobs=4 must be bit-identical to jobs=1 *)

(* Two short trace days keep the suite fast while still exercising a
   parallel fan-out; the load sits mid-range so queues and drops are
   non-trivial. *)
let quick2 =
  let q = Params.get Params.Quick in
  {
    q with
    Params.days = 2;
    dieselnet =
      {
        q.Params.dieselnet with
        Rapid_trace.Dieselnet.fleet_size = 20;
        mean_scheduled = 6;
        day_seconds = 3600.0;
        meetings_per_day = 40.0;
      };
    syn_duration = 300.0;
  }

let det_load = 6.0

(* Reports carry nan fields (e.g. max delay over zero deliveries), so
   bit-identity is structural [compare], not [=]. *)
let check_identical label a b =
  Alcotest.(check bool) (label ^ ": jobs=4 = jobs=1") true (compare a b = 0)

let trace_points () =
  Runners.reset_point_cache ();
  List.map
    (fun proto ->
      ( proto.Runners.label,
        Runners.run_trace_point ~params:quick2 ~protocol:proto ~load:det_load
          () ))
    (Runners.comparison_set Rapid_core.Metric.Average_delay)

let test_trace_point_determinism () =
  let seq = trace_points () in
  let par = with_global_jobs 4 trace_points in
  List.iter2
    (fun (label, a) (label', b) ->
      Alcotest.(check string) "same protocol order" label label';
      check_identical label a b)
    seq par

let synthetic_point () =
  Runners.reset_point_cache ();
  Runners.run_synthetic_point ~params:quick2
    ~protocol:(Runners.rapid Rapid_core.Metric.Average_delay)
    ~mobility:`Exponential ~load:20.0 ()

let test_synthetic_point_determinism () =
  let seq = synthetic_point () in
  let par = with_global_jobs 4 synthetic_point in
  check_identical "synthetic rapid" seq par

(* A spec override must flow through the parallel path unchanged too
   (and exercises the typed cache key's non-default fields). *)
let noisy_point () =
  Runners.reset_point_cache ();
  Runners.run_trace_point ~params:quick2
    ~protocol:(Runners.rapid Rapid_core.Metric.Average_delay)
    ~load:det_load
    ~spec:{ Runners.default_spec with deployment_noise = true }
    ()

let test_spec_point_determinism () =
  let seq = noisy_point () in
  let par = with_global_jobs 4 noisy_point in
  check_identical "noisy rapid" seq par

(* ------------------------------------------------------------------ *)
(* Observability parity: a parallel run's merged counters (and timer
   activation counts) equal the sequential run's. Timer totals are real
   wall spans and so not bit-comparable. *)

let obs_snapshots run =
  Runners.reset_point_cache ();
  Counter.reset_all ();
  Timer.reset_all ();
  ignore (run ());
  ( Counter.snapshot (),
    List.map (fun (name, _, count) -> (name, count)) (Timer.snapshot ()) )

let test_obs_parity () =
  let run () =
    Runners.run_trace_point ~params:quick2
      ~protocol:(Runners.rapid Rapid_core.Metric.Average_delay)
      ~load:det_load ()
  in
  let counters_seq, timer_counts_seq = obs_snapshots run in
  let counters_par, timer_counts_par =
    with_global_jobs 4 (fun () -> obs_snapshots run)
  in
  Alcotest.(check (list (pair string int)))
    "counter totals merge-exact" counters_seq counters_par;
  Alcotest.(check (list (pair string int)))
    "timer activation counts merge-exact" timer_counts_seq timer_counts_par

let test_obs_hammer () =
  let c = Counter.create "test.par.hammer" in
  let t = Timer.create "test.par.hammer" in
  Counter.reset c;
  let count0 = Timer.count t in
  let total0 = Timer.total_s t in
  let tasks = 64 and per = 1_000 in
  with_pool ~jobs:4 (fun p ->
      ignore
        (Pool.map_pool p
           (fun _ ->
             for _ = 1 to per do
               Counter.incr c
             done;
             Counter.add c per;
             Timer.add_s t 0.001)
           (List.init tasks Fun.id)));
  (* Workers merged at every task boundary, so main-domain reads see
     every increment — exactly, not approximately. *)
  Alcotest.(check int) "counter exact under contention" (2 * tasks * per)
    (Counter.value c);
  Alcotest.(check int) "timer activations exact" (count0 + tasks)
    (Timer.count t);
  let added = Timer.total_s t -. total0 in
  if Float.abs (added -. (0.001 *. float_of_int tasks)) > 1e-9 then
    Alcotest.failf "timer total off: added %.12f" added

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_order;
          Alcotest.test_case "degenerate maps" `Quick test_map_degenerate;
          Alcotest.test_case "lowest-index exception" `Quick
            test_exception_lowest_index;
          Alcotest.test_case "nested map inlines" `Quick
            test_nested_map_inlines;
          Alcotest.test_case "global pool" `Quick test_global_pool;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "trace points, all protocols" `Quick
            test_trace_point_determinism;
          Alcotest.test_case "synthetic point" `Quick
            test_synthetic_point_determinism;
          Alcotest.test_case "spec override point" `Quick
            test_spec_point_determinism;
        ] );
      ( "obs",
        [
          Alcotest.test_case "snapshot parity" `Quick test_obs_parity;
          Alcotest.test_case "multi-domain hammer" `Quick test_obs_hammer;
        ] );
    ]
