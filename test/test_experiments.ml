(* Tests for Rapid_experiments: the series container/renderer, experiment
   catalog integrity, parameter profiles, and one minimal end-to-end trace
   point (protocol caching included). *)

open Rapid_experiments

let series =
  Series.make ~id:"figX" ~title:"test" ~x_label:"load" ~y_label:"delay"
    [
      { Series.label = "A"; points = [ (1.0, 10.0); (2.0, 20.0) ] };
      { Series.label = "B"; points = [ (1.0, 12.0); (2.0, 18.0) ] };
    ]

let test_series_render () =
  let s = Series.render series in
  Alcotest.(check bool) "has title" true
    (Astring.String.is_infix ~affix:"FIGX" s || Astring.String.is_infix ~affix:"figX" s);
  List.iter
    (fun needle ->
      if not (Astring.String.is_infix ~affix:needle s) then
        Alcotest.failf "missing %S in rendered series:\n%s" needle s)
    [ "A"; "B"; "load"; "delay"; "10"; "18" ]

let test_series_crossover () =
  (* B starts above A (12 > 10 at x=1); A overtakes at x=2 (20 > 18). *)
  Alcotest.(check (option (float 1e-9))) "A first exceeds B at 2" (Some 2.0)
    (Series.crossover series ~a:"A" ~b:"B");
  Alcotest.(check (option (float 1e-9))) "B exceeds A from the start" (Some 1.0)
    (Series.crossover series ~a:"B" ~b:"A")

let test_series_ratio () =
  match Series.ratio_at series ~a:"A" ~b:"B" ~x:1.0 with
  | Some r ->
      if Float.abs (r -. (10.0 /. 12.0)) > 1e-9 then Alcotest.failf "ratio %f" r
  | None -> Alcotest.fail "ratio missing"

let test_catalog_complete () =
  (* Table 3, Fig 3, Figs 4-24, the robustness fault sweep, and the
     ablation study: 25 artifacts, unique ids, all findable. *)
  Alcotest.(check int) "25 artifacts" 25 (List.length Catalog.all);
  let ids = List.map (fun (i : Catalog.item) -> i.Catalog.id) Catalog.all in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      match Catalog.find id with
      | Some _ -> ()
      | None -> Alcotest.failf "catalog missing %s" id)
    ([ "table3"; "fig3" ] @ List.init 21 (fun i -> Printf.sprintf "fig%d" (i + 4)))

let test_params_profiles () =
  let q = Params.get Params.Quick and f = Params.get Params.Full in
  Alcotest.(check bool) "full has more days" true (f.Params.days > q.Params.days);
  Alcotest.(check bool) "full trace is full-size" true
    (f.Params.dieselnet.Rapid_trace.Dieselnet.day_seconds
    > q.Params.dieselnet.Rapid_trace.Dieselnet.day_seconds);
  (* Table 4 constants in both. *)
  Alcotest.(check int) "20 synthetic nodes" 20 q.Params.syn_nodes;
  Alcotest.(check int) "1KB packets" 1024 q.Params.syn_packet_bytes;
  Alcotest.(check (float 1e-9)) "20s deadline" 20.0 q.Params.syn_deadline

let test_syn_pair_rate () =
  let p = Params.get Params.Quick in
  (* load L per 50s per destination over (n-1) sources: per-pair/hour =
     L/(n-1) * 72. *)
  let r = Params.syn_pair_rate_per_hour p 19.0 in
  if Float.abs (r -. 72.0) > 1e-9 then Alcotest.failf "pair rate %f" r

let test_trace_point_cached () =
  let params =
    { (Params.get Params.Quick) with Params.days = 1; trace_loads = [ 1.0 ] }
  in
  let t0 = Unix.gettimeofday () in
  let p1 =
    Runners.run_trace_point ~params ~protocol:Runners.spray_wait ~load:1.0 ()
  in
  let first = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let p2 =
    Runners.run_trace_point ~params ~protocol:Runners.spray_wait ~load:1.0 ()
  in
  let second = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "same day count" (List.length p1) (List.length p2);
  Alcotest.(check bool) "cache hit faster or instant" true
    (second <= first || second < 0.01);
  (* Physically the same result object. *)
  Alcotest.(check bool) "identical" true (p1 == p2)

let test_pair_ttest_self_is_null () =
  (* A protocol against itself must show zero difference, p = 1. *)
  let params =
    { (Params.get Params.Quick) with Params.days = 1 }
  in
  match
    Pair_ttest.compare_protocols ~params ~a:Runners.spray_wait
      ~b:Runners.spray_wait ~load:4.0
  with
  | None -> Alcotest.fail "expected paired observations"
  | Some r ->
      Alcotest.(check (float 1e-9)) "no mean difference" 0.0
        r.Pair_ttest.t.Rapid_prelude.Stats.mean_diff;
      Alcotest.(check (float 1e-6)) "p = 1" 1.0
        r.Pair_ttest.t.Rapid_prelude.Stats.p_value

let test_pair_ttest_renders () =
  let s = Pair_ttest.render ~a_label:"A" ~b_label:"B" ~load:4.0 None in
  if not (Astring.String.is_infix ~affix:"not enough" s) then
    Alcotest.fail "render of None"

let test_fig13_slice_solved_exactly () =
  (* Regression for the bounded-variable solver rewrite: the load-2.0
     day-1 fig13 slice used to blow the row guard (x <= 1 rows) and fall
     back to the contention-free bound; it must now close to proven
     optimality. The golden average delay was computed by the pre-rewrite
     dense solver run without guards; avg_delay_all is an affine function
     of the ILP objective, so this pins the optimum despite alternate
     optimal routings. *)
  let params = Params.get Params.Quick in
  let trace = Fig_optimal.day_slice ~params ~day:1 ~frac:0.15 in
  let workload = Runners.trace_workload ~params ~trace ~load:2.0 ~day:1 in
  let v = Rapid_routing.Optimal.evaluate ~trace ~workload () in
  (match v.Rapid_routing.Optimal.how with
  | Rapid_routing.Optimal.Ilp_exact -> ()
  | Rapid_routing.Optimal.Ilp_incumbent -> Alcotest.fail "got Ilp_incumbent"
  | Rapid_routing.Optimal.Bound -> Alcotest.fail "fell back to Bound");
  Alcotest.(check (float 1e-6)) "golden objective" 1217.808623065
    v.Rapid_routing.Optimal.avg_delay_all

let test_deployment_table3_shape () =
  let params =
    { (Params.get Params.Quick) with Params.days = 1 }
  in
  let t = Deployment.table3 params in
  Alcotest.(check bool) "buses positive" true (t.Deployment.avg_buses_scheduled > 0.0);
  Alcotest.(check bool) "delivery in (0,1]" true
    (t.Deployment.delivery_rate > 0.0 && t.Deployment.delivery_rate <= 1.0);
  let rendered = Deployment.render_table3 t in
  if not (Astring.String.is_infix ~affix:"TABLE 3" rendered) then
    Alcotest.fail "table3 render"

let () =
  Alcotest.run "experiments"
    [
      ( "series",
        [
          Alcotest.test_case "render" `Quick test_series_render;
          Alcotest.test_case "crossover" `Quick test_series_crossover;
          Alcotest.test_case "ratio" `Quick test_series_ratio;
        ] );
      ( "catalog",
        [ Alcotest.test_case "complete" `Quick test_catalog_complete ] );
      ( "params",
        [
          Alcotest.test_case "profiles" `Quick test_params_profiles;
          Alcotest.test_case "pair rate" `Quick test_syn_pair_rate;
        ] );
      ( "runners",
        [ Alcotest.test_case "trace point cached" `Quick test_trace_point_cached ] );
      ( "pair_ttest",
        [
          Alcotest.test_case "self comparison is null" `Quick
            test_pair_ttest_self_is_null;
          Alcotest.test_case "renders" `Quick test_pair_ttest_renders;
        ] );
      ( "optimal",
        [
          Alcotest.test_case "fig13 slice solved exactly" `Slow
            test_fig13_slice_solved_exactly;
        ] );
      ( "deployment",
        [ Alcotest.test_case "table3 shape" `Slow test_deployment_table3_shape ] );
    ]
