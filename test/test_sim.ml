(* Tests for Rapid_sim: packets, buffers, the engine's feasibility
   guarantees (bandwidth and storage), delivery accounting, metadata
   capping, ack stores, and the per-contact send-queue planner. *)

open Rapid_trace
open Rapid_sim

let check_close ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" what expected actual

let spec ~src ~dst ?(size = 10) ?(created = 0.0) ?deadline () =
  { Workload.src; dst; size; created; deadline }

let packet ~id ~src ~dst ?(size = 10) ?(created = 0.0) ?deadline () =
  Packet.of_spec ~id (spec ~src ~dst ~size ~created ?deadline ())

(* ------------------------------------------------------------------ *)
(* Packet *)

let test_packet_age_deadline () =
  let p = packet ~id:0 ~src:0 ~dst:1 ~created:10.0 ~deadline:30.0 () in
  check_close "age" 15.0 (Packet.age p ~now:25.0);
  (match Packet.remaining_lifetime p ~now:25.0 with
  | Some r -> check_close "remaining" 5.0 r
  | None -> Alcotest.fail "deadline lost");
  Alcotest.(check bool) "not missed" false (Packet.missed_deadline p ~now:25.0);
  Alcotest.(check bool) "missed" true (Packet.missed_deadline p ~now:31.0)

let test_packet_validation () =
  (match packet ~id:0 ~src:1 ~dst:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "src=dst accepted");
  match packet ~id:0 ~src:0 ~dst:1 ~size:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero size accepted"

(* ------------------------------------------------------------------ *)
(* Buffer *)

let entry ?(received = 0.0) ?(hops = 0) p = { Buffer.packet = p; received; hops }

let test_buffer_capacity () =
  let b = Buffer.create ~capacity:(Some 25) in
  Buffer.add b (entry (packet ~id:0 ~src:0 ~dst:1 ~size:10 ()));
  Buffer.add b (entry (packet ~id:1 ~src:0 ~dst:1 ~size:10 ()));
  Alcotest.(check int) "used" 20 (Buffer.used b);
  Alcotest.(check bool) "no room for 10" false (Buffer.would_fit b 10);
  Alcotest.(check bool) "room for 5" true (Buffer.would_fit b 5);
  (match Buffer.add b (entry (packet ~id:2 ~src:0 ~dst:1 ~size:10 ())) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "over-capacity add accepted");
  ignore (Buffer.remove b 0);
  Alcotest.(check int) "used after remove" 10 (Buffer.used b);
  Alcotest.(check bool) "now fits" true (Buffer.would_fit b 10)

let test_buffer_duplicate () =
  let b = Buffer.create ~capacity:None in
  let p = packet ~id:5 ~src:0 ~dst:1 () in
  Buffer.add b (entry p);
  match Buffer.add b (entry p) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate accepted"

let test_buffer_entries_sorted () =
  let b = Buffer.create ~capacity:None in
  List.iter
    (fun id -> Buffer.add b (entry (packet ~id ~src:0 ~dst:1 ())))
    [ 5; 1; 3 ];
  let ids =
    List.map (fun (e : Buffer.entry) -> e.packet.Packet.id) (Buffer.entries b)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5 ] ids;
  Alcotest.(check int) "count" 3 (Buffer.count b)

let test_buffer_dst_bytes () =
  (* The incremental per-destination byte totals must track every
     mutation path (add, remove, clear) — RAPID's O(1) queue-position
     estimate for fresh packets reads them instead of scanning. The
     random walk cross-checks against a from-scratch fold after each
     step. *)
  let b = Buffer.create ~capacity:None in
  let rng = Rapid_prelude.Rng.create 11 in
  let next_id = ref 0 in
  let check_all () =
    for dst = 0 to 3 do
      let want =
        Buffer.fold_unordered b ~init:0 ~f:(fun acc (e : Buffer.entry) ->
            if e.packet.Packet.dst = dst then acc + e.packet.Packet.size
            else acc)
      in
      Alcotest.(check int)
        (Printf.sprintf "dst %d bytes" dst)
        want (Buffer.dst_bytes b dst)
    done
  in
  for _ = 1 to 200 do
    (match Rapid_prelude.Rng.int rng 5 with
    | 0 | 1 | 2 ->
        let id = !next_id in
        incr next_id;
        let dst = 1 + Rapid_prelude.Rng.int rng 3 in
        let size = 1 + Rapid_prelude.Rng.int rng 50 in
        Buffer.add b (entry (packet ~id ~src:0 ~dst ~size ()))
    | 3 ->
        if !next_id > 0 then
          ignore (Buffer.remove b (Rapid_prelude.Rng.int rng !next_id))
    | _ -> if Rapid_prelude.Rng.int rng 10 = 0 then ignore (Buffer.clear b));
    check_all ()
  done;
  ignore (Buffer.clear b);
  check_all ()

(* ------------------------------------------------------------------ *)
(* Ack store *)

let mk_env ?(num_nodes = 4) ?(capacity = None) () =
  Env.create ~num_nodes ~duration:100.0 ~buffer_capacity:capacity ~seed:1

let test_ack_store () =
  let env = mk_env () in
  let acks = Protocol.Ack_store.create ~num_nodes:4 in
  Protocol.Ack_store.learn acks ~node:0 ~packet_id:7;
  Alcotest.(check bool) "knows" true (Protocol.Ack_store.knows acks ~node:0 ~packet_id:7);
  Alcotest.(check bool) "peer unaware" false
    (Protocol.Ack_store.knows acks ~node:1 ~packet_id:7);
  let fresh = Protocol.Ack_store.exchange acks ~a:0 ~b:1 in
  Alcotest.(check int) "one new entry" 1 fresh;
  Alcotest.(check bool) "peer now knows" true
    (Protocol.Ack_store.knows acks ~node:1 ~packet_id:7);
  let fresh2 = Protocol.Ack_store.exchange acks ~a:0 ~b:1 in
  Alcotest.(check int) "idempotent" 0 fresh2;
  (* Purge removes buffered delivered copies, notifying both the caller's
     [on_purge] and the env hook (the engine points the latter at
     Metrics.record_ack_purge). *)
  let p = packet ~id:7 ~src:2 ~dst:3 () in
  Buffer.add env.Env.buffers.(1) (entry p);
  let purged = ref [] in
  let hooked = ref [] in
  env.Env.on_ack_purge <-
    (fun ~now ~node p -> hooked := (now, node, p.Packet.id) :: !hooked);
  Protocol.Ack_store.purge acks env ~now:42.0 ~node:1 ~on_purge:(fun p ->
      purged := p :: !purged);
  Alcotest.(check int) "purged one" 1 (List.length !purged);
  Alcotest.(check bool) "buffer cleared" false (Buffer.mem env.Env.buffers.(1) 7);
  Alcotest.(check (list (triple (float 0.0) int int)))
    "hook saw the purge" [ (42.0, 1, 7) ] !hooked

(* ------------------------------------------------------------------ *)
(* Buffer counters (epoch / removals) and clear *)

let test_buffer_epoch_and_clear () =
  let b = Buffer.create ~capacity:None in
  let e0 = Buffer.epoch b and r0 = Buffer.removals b in
  Buffer.add b (entry (packet ~id:0 ~src:0 ~dst:1 ()));
  Buffer.add b (entry (packet ~id:1 ~src:0 ~dst:1 ()));
  Alcotest.(check bool) "adds bump epoch" true (Buffer.epoch b > e0);
  Alcotest.(check int) "adds do not bump removals" r0 (Buffer.removals b);
  let snap1 = Buffer.entries b in
  let snap2 = Buffer.entries b in
  Alcotest.(check bool) "snapshot cached between calls" true (snap1 == snap2);
  ignore (Buffer.remove b 0);
  Alcotest.(check int) "remove bumps removals" (r0 + 1) (Buffer.removals b);
  Alcotest.(check bool) "snapshot rebuilt after mutation" true
    (Buffer.entries b != snap1);
  Buffer.add b (entry (packet ~id:2 ~src:0 ~dst:1 ()));
  let lost = Buffer.clear b in
  Alcotest.(check (list int)) "clear returns the stored packets" [ 1; 2 ]
    (List.sort Int.compare (List.map (fun (p : Packet.t) -> p.Packet.id) lost));
  Alcotest.(check int) "empty after clear" 0 (Buffer.count b);
  Alcotest.(check int) "no bytes after clear" 0 (Buffer.used b);
  Alcotest.(check int) "clear is one removal event" (r0 + 2) (Buffer.removals b)

(* ------------------------------------------------------------------ *)
(* Send queue *)

let plan_packets ?check_peer env ~sender ~receiver packets =
  let q = Send_queue.create () in
  Send_queue.begin_contact q;
  Send_queue.begin_plan ?check_peer q env ~sender ~receiver;
  List.iter (Send_queue.push q) packets;
  Send_queue.finish_plan q;
  q

let test_send_queue_serves_in_order () =
  let env = mk_env () in
  let p1 = packet ~id:1 ~src:0 ~dst:3 () in
  let p2 = packet ~id:2 ~src:0 ~dst:3 () in
  Buffer.add env.Env.buffers.(0) (entry p1);
  Buffer.add env.Env.buffers.(0) (entry p2);
  let q = plan_packets env ~sender:0 ~receiver:1 [ p2; p1 ] in
  (match Send_queue.next q env ~sender:0 ~receiver:1 ~budget:100 with
  | Some p -> Alcotest.(check int) "first" 2 p.Packet.id
  | None -> Alcotest.fail "empty");
  (* p1 dropped from the buffer mid-contact: must be skipped. *)
  ignore (Buffer.remove env.Env.buffers.(0) 1);
  Alcotest.(check bool) "exhausted" true
    (Send_queue.next q env ~sender:0 ~receiver:1 ~budget:100 = None)

let test_send_queue_budget_filter () =
  let env = mk_env () in
  let big = packet ~id:1 ~src:0 ~dst:3 ~size:50 () in
  let small = packet ~id:2 ~src:0 ~dst:3 ~size:5 () in
  Buffer.add env.Env.buffers.(0) (entry big);
  Buffer.add env.Env.buffers.(0) (entry small);
  let q = plan_packets env ~sender:0 ~receiver:1 [ big; small ] in
  match Send_queue.next q env ~sender:0 ~receiver:1 ~budget:10 with
  | Some p -> Alcotest.(check int) "small served" 2 p.Packet.id
  | None -> Alcotest.fail "small should fit"

let test_send_queue_candidates_skip_duplicates_at_peer () =
  (* The peer-has-it filter runs at plan time (protocols plan over
     [candidates]), not per pop. *)
  let env = mk_env () in
  let p = packet ~id:1 ~src:0 ~dst:3 () in
  Buffer.add env.Env.buffers.(0) (entry p);
  Buffer.add env.Env.buffers.(1) (entry p);
  Alcotest.(check int) "duplicate filtered" 0
    (List.length (Send_queue.candidates env ~sender:0 ~receiver:1))

let test_send_queue_delivery_keeps_tail () =
  (* The common case: the engine retires the just-served packet (delivery
     or single-copy forward). The tail must survive untouched — the O(1)
     revalidation path, not a replan. *)
  let env = mk_env () in
  let p1 = packet ~id:1 ~src:0 ~dst:3 () in
  let p2 = packet ~id:2 ~src:0 ~dst:3 () in
  Buffer.add env.Env.buffers.(0) (entry p1);
  Buffer.add env.Env.buffers.(0) (entry p2);
  let q = plan_packets env ~sender:0 ~receiver:1 [ p1; p2 ] in
  (match Send_queue.next q env ~sender:0 ~receiver:1 ~budget:100 with
  | Some p -> Alcotest.(check int) "p1 first" 1 p.Packet.id
  | None -> Alcotest.fail "empty");
  ignore (Buffer.remove env.Env.buffers.(0) 1);
  match Send_queue.next q env ~sender:0 ~receiver:1 ~budget:100 with
  | Some p -> Alcotest.(check int) "tail intact" 2 p.Packet.id
  | None -> Alcotest.fail "tail lost after serving p1"

let test_send_queue_eviction_forces_replan () =
  (* Mid-contact invalidation regression: an eviction of an UNSERVED
     planned packet (storage pressure, ack purge) must force a tail
     re-validation — the evicted packet may not be offered, and packets
     the receiver has since gained are dropped too. *)
  let env = mk_env () in
  let p1 = packet ~id:1 ~src:0 ~dst:3 () in
  let p2 = packet ~id:2 ~src:0 ~dst:3 () in
  let p3 = packet ~id:3 ~src:0 ~dst:3 () in
  let p4 = packet ~id:4 ~src:0 ~dst:3 () in
  List.iter (fun p -> Buffer.add env.Env.buffers.(0) (entry p)) [ p1; p2; p3; p4 ];
  let q = plan_packets env ~sender:0 ~receiver:1 [ p1; p2; p3; p4 ] in
  (match Send_queue.next q env ~sender:0 ~receiver:1 ~budget:100 with
  | Some p -> Alcotest.(check int) "p1 first" 1 p.Packet.id
  | None -> Alcotest.fail "empty");
  (* The served p1 leaves (delivery) AND p2 is evicted: two removals, so
     the fast path cannot apply and the tail is re-filtered. *)
  ignore (Buffer.remove env.Env.buffers.(0) 1);
  ignore (Buffer.remove env.Env.buffers.(0) 2);
  (* Meanwhile the receiver gained p3 from elsewhere. *)
  Buffer.add env.Env.buffers.(1) (entry p3);
  match Send_queue.next q env ~sender:0 ~receiver:1 ~budget:100 with
  | Some p -> Alcotest.(check int) "p2 and p3 skipped" 4 p.Packet.id
  | None -> Alcotest.fail "p4 should survive the replan"

let test_send_queue_no_peer_check_revalidates_pops () =
  (* check_peer:false (Random without summary vectors): after a removal,
     an evicted packet that reappears at the sender (duplicate push back)
     must still be offered — eager tail filtering would lose it. *)
  let env = mk_env () in
  let p1 = packet ~id:1 ~src:0 ~dst:3 () in
  let p2 = packet ~id:2 ~src:0 ~dst:3 () in
  Buffer.add env.Env.buffers.(0) (entry p1);
  Buffer.add env.Env.buffers.(0) (entry p2);
  let q = plan_packets ~check_peer:false env ~sender:0 ~receiver:1 [ p1; p2 ] in
  (* p2 evicted before its turn... *)
  ignore (Buffer.remove env.Env.buffers.(0) 2);
  (match Send_queue.next q env ~sender:0 ~receiver:1 ~budget:100 with
  | Some p -> Alcotest.(check int) "p1 served" 1 p.Packet.id
  | None -> Alcotest.fail "p1 buffered and planned");
  (* ...and pushed back: the plan must still offer it. *)
  Buffer.add env.Env.buffers.(0) (entry p2);
  match Send_queue.next q env ~sender:0 ~receiver:1 ~budget:100 with
  | Some p -> Alcotest.(check int) "restored p2 offered" 2 p.Packet.id
  | None -> Alcotest.fail "restored packet lost"

(* ------------------------------------------------------------------ *)
(* Property: the indexed buffer is observably equivalent to the seed's
   Hashtbl implementation under arbitrary add/remove/clear sequences. *)

module Buffer_model = struct
  type t = {
    capacity : int option;
    mutable used : int;
    table : (int, Buffer.entry) Hashtbl.t;
  }

  let create ~capacity = { capacity; used = 0; table = Hashtbl.create 16 }
  let mem t id = Hashtbl.mem t.table id

  let would_fit t size =
    match t.capacity with None -> true | Some c -> t.used + size <= c

  let add t (e : Buffer.entry) =
    Hashtbl.replace t.table e.packet.Packet.id e;
    t.used <- t.used + e.packet.Packet.size

  let remove t id =
    match Hashtbl.find_opt t.table id with
    | None -> None
    | Some e ->
        Hashtbl.remove t.table id;
        t.used <- t.used - e.packet.Packet.size;
        Some e

  let entries t =
    Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
    |> List.sort (fun (a : Buffer.entry) (b : Buffer.entry) ->
           Int.compare a.packet.Packet.id b.packet.Packet.id)

  let clear t =
    let ps = List.map (fun (e : Buffer.entry) -> e.packet) (entries t) in
    Hashtbl.reset t.table;
    t.used <- 0;
    ps
end

let prop_buffer_matches_model =
  QCheck.Test.make ~name:"indexed buffer matches Hashtbl model" ~count:200
    QCheck.(list (pair (int_range 0 20) (int_range 0 9)))
    (fun ops ->
      let capacity = Some 120 in
      let buf = Buffer.create ~capacity in
      let model = Buffer_model.create ~capacity in
      let ids = 16 in
      let agree () =
        Buffer.count buf = List.length (Buffer_model.entries model)
        && Buffer.used buf = model.Buffer_model.used
        && List.for_all
             (fun id -> Buffer.mem buf id = Buffer_model.mem model id)
             (List.init ids Fun.id)
        && List.map
             (fun (e : Buffer.entry) -> e.packet.Packet.id)
             (Buffer.entries buf)
           = List.map
               (fun (e : Buffer.entry) -> e.packet.Packet.id)
               (Buffer_model.entries model)
      in
      List.for_all
        (fun (raw_id, op) ->
          let id = raw_id mod ids in
          (match op with
          | 0 | 1 | 2 | 3 ->
              let size = 10 + (op * 7) in
              let e = entry (packet ~id ~src:0 ~dst:1 ~size ()) in
              let fits =
                (not (Buffer.mem buf id)) && Buffer.would_fit buf size
              in
              let model_fits =
                (not (Buffer_model.mem model id))
                && Buffer_model.would_fit model size
              in
              assert (fits = model_fits);
              if fits then begin
                Buffer.add buf e;
                Buffer_model.add model e
              end
          | 4 | 5 | 6 | 7 ->
              let a = Buffer.remove buf id and b = Buffer_model.remove model id in
              assert (Option.is_some a = Option.is_some b)
          | _ ->
              let a =
                List.sort Int.compare
                  (List.map (fun (p : Packet.t) -> p.Packet.id) (Buffer.clear buf))
              in
              let b =
                List.sort Int.compare
                  (List.map
                     (fun (p : Packet.t) -> p.Packet.id)
                     (Buffer_model.clear model))
              in
              assert (a = b));
          agree ())
        ops)

(* ------------------------------------------------------------------ *)
(* Engine with simple protocols *)

let flood_trace =
  (* 0 -1-> 1 -2-> 2: relay chain. *)
  Trace.create ~num_nodes:3 ~duration:10.0
    [
      Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:100;
      Contact.make ~time:2.0 ~a:1 ~b:2 ~bytes:100;
    ]

let test_engine_relay_delivery () =
  let workload = [ spec ~src:0 ~dst:2 ~size:10 ~created:0.0 () ] in
  let report =
    (Engine.run
      ~protocol:(Rapid_routing.Epidemic.make ())
      ~trace:flood_trace ~workload ()).Engine.report
  in
  Alcotest.(check int) "delivered" 1 report.Metrics.delivered;
  check_close "delay" 2.0 report.Metrics.avg_delay;
  Alcotest.(check int) "two transfers" 2 report.Metrics.transfers

let test_engine_direct_protocol_no_relay () =
  let workload = [ spec ~src:0 ~dst:2 ~size:10 ~created:0.0 () ] in
  let report =
    (Engine.run
      ~protocol:(Rapid_routing.Direct.make ())
      ~trace:flood_trace ~workload ()).Engine.report
  in
  Alcotest.(check int) "not delivered" 0 report.Metrics.delivered;
  check_close "avg delay all counts horizon" 10.0 report.Metrics.avg_delay_all

let test_engine_bandwidth_respected () =
  (* Opportunity of 25 bytes, packets of 10: at most 2 cross. *)
  let trace =
    Trace.create ~num_nodes:2 ~duration:10.0
      [ Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:25 ]
  in
  let workload =
    List.init 5 (fun i ->
        spec ~src:0 ~dst:1 ~size:10 ~created:(0.1 *. float_of_int i) ())
  in
  let report =
    (Engine.run ~protocol:(Rapid_routing.Epidemic.make ()) ~trace ~workload ()).Engine.report
  in
  Alcotest.(check int) "two delivered" 2 report.Metrics.delivered;
  Alcotest.(check int) "data bytes" 20 report.Metrics.data_bytes;
  if report.Metrics.data_bytes + report.Metrics.metadata_bytes > 25 then
    Alcotest.fail "opportunity size exceeded"

let test_engine_storage_respected () =
  (* Relay buffer of 15 bytes can hold one 10-byte packet. *)
  let trace =
    Trace.create ~num_nodes:3 ~duration:10.0
      [
        Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:1000;
        Contact.make ~time:2.0 ~a:1 ~b:2 ~bytes:1000;
      ]
  in
  let workload =
    List.init 4 (fun i ->
        spec ~src:0 ~dst:2 ~size:10 ~created:(0.1 *. float_of_int i) ())
  in
  let options = { Engine.default_options with buffer_bytes = Some 15 } in
  let { Engine.report; env } =
    Engine.run ~options ~protocol:(Rapid_routing.Epidemic.make ())
      ~trace ~workload ()
  in
  (* Source buffer also capped: only one packet survives creation. *)
  Array.iter
    (fun b ->
      if Buffer.used b > 15 then Alcotest.fail "buffer capacity exceeded")
    env.Env.buffers;
  if report.Metrics.delivered > 1 then
    Alcotest.failf "impossible deliveries: %d" report.Metrics.delivered

let test_engine_conservation () =
  (* created = delivered + still buffered somewhere + dropped(evicted). *)
  let trace =
    Trace.create ~num_nodes:3 ~duration:10.0
      [
        Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:50;
        Contact.make ~time:2.0 ~a:1 ~b:2 ~bytes:50;
      ]
  in
  let workload =
    List.init 6 (fun i ->
        spec ~src:0 ~dst:2 ~size:10 ~created:(0.05 *. float_of_int i) ())
  in
  let { Engine.report; env } =
    Engine.run ~protocol:(Rapid_routing.Epidemic.make ()) ~trace
      ~workload ()
  in
  let module S = Set.Make (Int) in
  let buffered =
    Array.fold_left
      (fun acc b ->
        List.fold_left
          (fun acc (e : Buffer.entry) -> S.add e.packet.Packet.id acc)
          acc (Buffer.entries b))
      S.empty env.Env.buffers
  in
  let delivered = Hashtbl.length env.Env.delivered in
  (* With no storage cap nothing is lost: every created packet is delivered
     or still buffered at its source at least. *)
  Alcotest.(check int) "created" 6 report.Metrics.created;
  Alcotest.(check int) "nothing vanished" 6
    (S.cardinal (S.union buffered (Hashtbl.fold (fun k _ s -> S.add k s) env.Env.delivered S.empty)));
  Alcotest.(check int) "report matches env" delivered report.Metrics.delivered

let test_engine_deadline_accounting () =
  let trace =
    Trace.create ~num_nodes:2 ~duration:10.0
      [ Contact.make ~time:5.0 ~a:0 ~b:1 ~bytes:100 ]
  in
  let workload =
    [
      spec ~src:0 ~dst:1 ~size:10 ~created:0.0 ~deadline:6.0 ();
      (* delivered at 5, deadline 6: hit *)
      spec ~src:0 ~dst:1 ~size:10 ~created:0.0 ~deadline:3.0 ();
      (* delivered at 5, deadline 3: miss *)
    ]
  in
  let report =
    (Engine.run ~protocol:(Rapid_routing.Epidemic.make ()) ~trace ~workload ()).Engine.report
  in
  Alcotest.(check int) "delivered both" 2 report.Metrics.delivered;
  Alcotest.(check int) "one within deadline" 1 report.Metrics.within_deadline;
  check_close "rate" 0.5 report.Metrics.within_deadline_rate

let test_engine_meta_cap () =
  (* MaxProp always emits vector metadata; capping must bound it. *)
  let trace =
    Trace.create ~num_nodes:2 ~duration:10.0
      [ Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:1000 ]
  in
  let workload = [ spec ~src:0 ~dst:1 ~size:10 () ] in
  let capped =
    (Engine.run
      ~options:{ Engine.default_options with meta_cap_frac = Some 0.01 }
      ~protocol:(Rapid_routing.Maxprop.make ())
      ~trace ~workload ()).Engine.report
  in
  if capped.Metrics.metadata_bytes > 10 then
    Alcotest.failf "metadata above cap: %d" capped.Metrics.metadata_bytes;
  let free =
    (Engine.run ~protocol:(Rapid_routing.Maxprop.make ()) ~trace ~workload ()).Engine.report
  in
  if free.Metrics.metadata_bytes <= capped.Metrics.metadata_bytes then
    Alcotest.fail "uncapped should exceed capped metadata"

let test_engine_duplicate_delivery_counted_once () =
  (* Two carriers deliver the same packet; metrics count one delivery. *)
  let trace =
    Trace.create ~num_nodes:4 ~duration:10.0
      [
        Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:100;
        (* 0 and 1 both hold the packet; both meet 3 later. *)
        Contact.make ~time:2.0 ~a:0 ~b:3 ~bytes:100;
        Contact.make ~time:3.0 ~a:1 ~b:3 ~bytes:100;
      ]
  in
  let workload = [ spec ~src:0 ~dst:3 ~size:10 () ] in
  (* Epidemic without acks: node 1 will push the stale copy again at t=3,
     but Env.has_packet treats a delivered packet as present at its
     destination, so it is not re-sent. *)
  let report =
    (Engine.run ~protocol:(Rapid_routing.Epidemic.make ()) ~trace ~workload ()).Engine.report
  in
  Alcotest.(check int) "one delivery" 1 report.Metrics.delivered;
  check_close "delay is first arrival" 2.0 report.Metrics.avg_delay

let test_engine_duplicate_push_wastes_bandwidth () =
  (* Without summary vectors, Random may push a packet the peer already
     has: the engine must charge the bytes and discard the copy. Node 0
     and 1 both hold the packet; they meet; dst 3 is absent, so any
     replication attempt between them is a duplicate. *)
  let trace =
    Trace.create ~num_nodes:4 ~duration:10.0
      [
        Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:10;
        (* 0 replicates to 1 (Random has no better idea) *)
        Contact.make ~time:2.0 ~a:0 ~b:1 ~bytes:10;
        (* now both hold it: one duplicate push, 10 wasted bytes *)
      ]
  in
  let workload = [ spec ~src:0 ~dst:3 ~size:10 () ] in
  let report =
    (Engine.run
      ~protocol:(Rapid_routing.Random_protocol.make ())
      ~trace ~workload ()).Engine.report
  in
  Alcotest.(check int) "two transfers (one wasted)" 2 report.Metrics.transfers;
  Alcotest.(check int) "bytes charged for both" 20 report.Metrics.data_bytes;
  (* With summary vectors the duplicate is skipped. *)
  let smart =
    (Engine.run
      ~protocol:(Rapid_routing.Random_protocol.make ~summary_vector:true ())
      ~trace ~workload ()).Engine.report
  in
  Alcotest.(check int) "sv: single transfer" 1 smart.Metrics.transfers

let test_engine_determinism () =
  let days = Dieselnet.days ~seed:2 ~n:1 () in
  let trace = List.hd days in
  let rng = Rapid_prelude.Rng.create 3 in
  let workload =
    Workload.generate rng ~trace ~pkts_per_hour_per_dest:1.0 ~size:1024 ()
  in
  let run () =
    (Engine.run
      ~options:{ Engine.default_options with seed = 42 }
      ~protocol:(Rapid_routing.Random_protocol.make ~with_acks:true ())
      ~trace ~workload ()).Engine.report
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check int) "same deliveries" r1.Metrics.delivered r2.Metrics.delivered;
  check_close "same delay" r1.Metrics.avg_delay_all r2.Metrics.avg_delay_all;
  Alcotest.(check int) "same bytes" r1.Metrics.data_bytes r2.Metrics.data_bytes

let test_engine_empty_workload () =
  let trace =
    Trace.create ~num_nodes:2 ~duration:10.0
      [ Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:100 ]
  in
  let report =
    (Engine.run ~protocol:(Rapid_routing.Epidemic.make ()) ~trace ~workload:[] ()).Engine.report
  in
  Alcotest.(check int) "nothing created" 0 report.Metrics.created;
  Alcotest.(check int) "nothing moved" 0 report.Metrics.transfers;
  Alcotest.(check int) "contact observed" 1 report.Metrics.num_contacts

let test_engine_zero_byte_contact () =
  (* A zero-size opportunity carries nothing but still counts as a meeting
     (protocols learn from it). *)
  let trace =
    Trace.create ~num_nodes:2 ~duration:10.0
      [ Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:0 ]
  in
  let workload = [ spec ~src:0 ~dst:1 ~size:10 () ] in
  let report =
    (Engine.run ~protocol:(Rapid_routing.Epidemic.make ()) ~trace ~workload ()).Engine.report
  in
  Alcotest.(check int) "no transfer" 0 report.Metrics.transfers;
  Alcotest.(check int) "no delivery" 0 report.Metrics.delivered

let test_engine_packet_bigger_than_buffer () =
  (* A packet that can never fit its source's buffer is dropped at
     creation. *)
  let trace =
    Trace.create ~num_nodes:2 ~duration:10.0
      [ Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:100 ]
  in
  let workload = [ spec ~src:0 ~dst:1 ~size:50 () ] in
  let report =
    (Engine.run
      ~options:{ Engine.default_options with buffer_bytes = Some 20 }
      ~protocol:(Rapid_routing.Epidemic.make ())
      ~trace ~workload ()).Engine.report
  in
  Alcotest.(check int) "dropped at creation" 1 report.Metrics.drops;
  Alcotest.(check int) "never delivered" 0 report.Metrics.delivered

(* ------------------------------------------------------------------ *)
(* Eviction paths: a minimal protocol whose drop_candidate we control. *)

let stub_protocol ?drop () : Protocol.packed =
  (module struct
    type t = Env.t

    let name = "stub"
    let create env = env
    let on_created _ ~now:_ _ = ()
    let on_contact _ (_ : Protocol.contact_info) = 0
    let next_packet _ ~now:_ ~sender:_ ~receiver:_ ~budget:_ = None
    let on_transfer _ ~now:_ ~sender:_ ~receiver:_ _ ~delivered:_ = ()

    let drop_candidate env ~now:_ ~node ~incoming =
      match drop with None -> None | Some f -> f env ~node ~incoming

    let on_dropped _ ~now:_ ~node:_ _ = ()
    let on_reboot _ ~now:_ ~node:_ ~lost:_ = ()
  end)

let stub_trace =
  Trace.create ~num_nodes:2 ~duration:10.0
    [ Contact.make ~time:5.0 ~a:0 ~b:1 ~bytes:0 ]

(* Two creations into a 15-byte buffer: the second needs an eviction. *)
let stub_workload =
  [
    spec ~src:0 ~dst:1 ~size:10 ~created:0.0 ();
    spec ~src:0 ~dst:1 ~size:10 ~created:0.1 ();
  ]

let stub_options = { Engine.default_options with buffer_bytes = Some 15 }

let test_eviction_refusal_none () =
  (* drop_candidate = None refuses the incoming packet: it is dropped and
     counted, the incumbent survives. *)
  let { Engine.report; env } =
    Engine.run ~options:stub_options ~protocol:(stub_protocol ())
      ~trace:stub_trace ~workload:stub_workload ()
  in
  Alcotest.(check int) "created" 2 report.Metrics.created;
  Alcotest.(check int) "one drop" 1 report.Metrics.drops;
  Alcotest.(check bool) "incumbent kept" true (Buffer.mem env.Env.buffers.(0) 0);
  Alcotest.(check bool) "newcomer refused" false (Buffer.mem env.Env.buffers.(0) 1)

let test_eviction_self_candidate_refuses () =
  (* Returning the incoming packet itself is the protocol's way of saying
     "the newcomer loses": same outcome as None, not an eviction loop. *)
  let drop _env ~node:_ ~incoming = Some incoming in
  let { Engine.report; env } =
    Engine.run ~options:stub_options ~protocol:(stub_protocol ~drop ())
      ~trace:stub_trace ~workload:stub_workload ()
  in
  Alcotest.(check int) "one drop" 1 report.Metrics.drops;
  Alcotest.(check bool) "incumbent kept" true (Buffer.mem env.Env.buffers.(0) 0);
  Alcotest.(check bool) "newcomer refused" false (Buffer.mem env.Env.buffers.(0) 1)

let test_eviction_replaces_incumbent () =
  let drop env ~node ~incoming:_ =
    match Env.buffered_entries env node with
    | [] -> None
    | e :: _ -> Some e.Buffer.packet
  in
  let { Engine.report; env } =
    Engine.run ~options:stub_options ~protocol:(stub_protocol ~drop ())
      ~trace:stub_trace ~workload:stub_workload ()
  in
  Alcotest.(check int) "eviction counted" 1 report.Metrics.drops;
  Alcotest.(check bool) "incumbent evicted" false (Buffer.mem env.Env.buffers.(0) 0);
  Alcotest.(check bool) "newcomer stored" true (Buffer.mem env.Env.buffers.(0) 1)

let test_eviction_unbuffered_victim_rejected () =
  (* Naming a victim that is not in the buffer is a protocol bug the
     engine must fail loudly on, not a silent no-op. *)
  let drop _env ~node:_ ~incoming:_ = Some (packet ~id:99 ~src:0 ~dst:1 ()) in
  match
    (Engine.run ~options:stub_options ~protocol:(stub_protocol ~drop ())
      ~trace:stub_trace ~workload:stub_workload ()).Engine.report
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unbuffered drop candidate accepted"

let test_oversized_incoming_skips_evictions () =
  (* A packet larger than the whole buffer must be refused up front: the
     engine may not consult drop_candidate and drain incumbents only to
     refuse anyway. Regression for the early-bail in make_room. *)
  let drop_calls = ref 0 in
  let drop env ~node ~incoming:_ =
    incr drop_calls;
    match Env.buffered_entries env node with
    | [] -> None
    | e :: _ -> Some e.Buffer.packet
  in
  let workload =
    [
      spec ~src:0 ~dst:1 ~size:10 ~created:0.0 ();
      spec ~src:0 ~dst:1 ~size:20 ~created:0.1 ();
      (* 20 > capacity 15: can never fit *)
    ]
  in
  let { Engine.report; env } =
    Engine.run ~options:stub_options ~protocol:(stub_protocol ~drop ())
      ~trace:stub_trace ~workload ()
  in
  Alcotest.(check int) "drop_candidate never consulted" 0 !drop_calls;
  Alcotest.(check int) "only the refused creation counted" 1 report.Metrics.drops;
  Alcotest.(check bool) "incumbent kept" true (Buffer.mem env.Env.buffers.(0) 0);
  Alcotest.(check bool) "oversized newcomer refused" false
    (Buffer.mem env.Env.buffers.(0) 1)

(* ------------------------------------------------------------------ *)
(* The on_transfer contract: fires only for deliveries and accepted
   stores — never for duplicate pushes or storage refusals. Protocols
   (Spray's ticket halving, MaxProp's path bookkeeping) rely on this. *)

let contract_stub calls : Protocol.packed =
  (module struct
    type t = { env : Env.t; offered : (int * int, unit) Hashtbl.t }

    let name = "contract-stub"
    let create env = { env; offered = Hashtbl.create 16 }
    let on_created _ ~now:_ _ = ()

    let on_contact t (_ : Protocol.contact_info) =
      Hashtbl.reset t.offered;
      0

    (* Offer every buffered packet once per contact, duplicates at the
       peer included — the engine decides their fate. *)
    let next_packet t ~now:_ ~sender ~receiver:_ ~budget =
      List.find_map
        (fun (e : Buffer.entry) ->
          let p = e.Buffer.packet in
          if
            p.Packet.size <= budget
            && not (Hashtbl.mem t.offered (sender, p.Packet.id))
          then begin
            Hashtbl.replace t.offered (sender, p.Packet.id) ();
            Some p
          end
          else None)
        (Env.buffered_entries t.env sender)

    let on_transfer _ ~now:_ ~sender ~receiver (p : Packet.t) ~delivered =
      calls := (sender, receiver, p.Packet.id, delivered) :: !calls

    let drop_candidate _ ~now:_ ~node:_ ~incoming:_ = None
    let on_dropped _ ~now:_ ~node:_ _ = ()
    let on_reboot _ ~now:_ ~node:_ ~lost:_ = ()
  end)

let test_on_transfer_skips_duplicate_push () =
  (* 0 copies to 1; at the second meeting both directions push the copy
     the peer already has. Bytes are charged, but on_transfer must not
     fire. The final meeting delivers. *)
  let trace =
    Trace.create ~num_nodes:3 ~duration:10.0
      ~active:[ 0; 1; 2 ]
      [
        Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:100;
        Contact.make ~time:2.0 ~a:0 ~b:1 ~bytes:100;
        Contact.make ~time:3.0 ~a:0 ~b:2 ~bytes:100;
      ]
  in
  let workload = [ spec ~src:0 ~dst:2 ~size:10 () ] in
  let calls = ref [] in
  let report =
    (Engine.run ~protocol:(contract_stub calls) ~trace ~workload ()).Engine.report
  in
  (* t=1 store + the fresh copy pushed straight back (duplicate), t=2 two
     more duplicate pushes, t=3 delivery. *)
  Alcotest.(check int) "five transfers charged" 5 report.Metrics.transfers;
  Alcotest.(check int) "all bytes counted" 50 report.Metrics.data_bytes;
  Alcotest.(check int) "delivered" 1 report.Metrics.delivered;
  Alcotest.(check (list (pair (pair int int) (pair int bool))))
    "on_transfer saw only the store and the delivery"
    [ ((0, 1), (0, false)); ((0, 2), (0, true)) ]
    (List.rev_map (fun (s, r, id, d) -> ((s, r), (id, d))) !calls)

let test_on_transfer_skips_storage_refusal () =
  (* Both peers' buffers are full and drop_candidate refuses: offers cross
     in both directions, get refused, and on_transfer never fires — nor do
     the refusals consume bandwidth or count as drops. *)
  let trace =
    Trace.create ~num_nodes:4 ~duration:10.0
      ~active:[ 0; 1; 2; 3 ]
      [ Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:100 ]
  in
  let workload =
    [
      spec ~src:0 ~dst:3 ~size:10 ~created:0.0 ();
      spec ~src:1 ~dst:3 ~size:10 ~created:0.1 ();
    ]
  in
  let calls = ref [] in
  let { Engine.report; env } =
    Engine.run
      ~options:{ Engine.default_options with buffer_bytes = Some 15 }
      ~protocol:(contract_stub calls) ~trace ~workload ()
  in
  Alcotest.(check int) "no transfers" 0 report.Metrics.transfers;
  Alcotest.(check int) "no bytes" 0 report.Metrics.data_bytes;
  Alcotest.(check int) "no drops" 0 report.Metrics.drops;
  Alcotest.(check (list (pair (pair int int) (pair int bool))))
    "on_transfer silent" []
    (List.rev_map (fun (s, r, id, d) -> ((s, r), (id, d))) !calls);
  Alcotest.(check bool) "0 keeps its packet" true (Buffer.mem env.Env.buffers.(0) 0);
  Alcotest.(check bool) "1 keeps its packet" true (Buffer.mem env.Env.buffers.(1) 1)

let test_engine_rejects_double_offer () =
  (* The duplicate-offer guard: a protocol that re-offers the same
     (sender, packet) within one contact must be failed loudly, not left
     to spin the budget down on duplicate pushes. The guard table is
     run-lifetime scratch cleared per contact, so this also pins the
     clearing — a reuse bug that leaked offers across contacts would
     break the legal re-offer in [test_on_transfer_skips_duplicate_push],
     while one that stopped clearing state WITHIN a contact breaks here. *)
  let evil : Protocol.packed =
    (module struct
      type t = Env.t

      let name = "evil-stub"
      let create env = env
      let on_created _ ~now:_ _ = ()
      let on_contact _ (_ : Protocol.contact_info) = 0

      (* Always re-offer the first buffered packet, ignoring history. *)
      let next_packet t ~now:_ ~sender ~receiver:_ ~budget =
        List.find_map
          (fun (e : Buffer.entry) ->
            if e.Buffer.packet.Packet.size <= budget then Some e.Buffer.packet
            else None)
          (Env.buffered_entries t sender)

      let on_transfer _ ~now:_ ~sender:_ ~receiver:_ _ ~delivered:_ = ()
      let drop_candidate _ ~now:_ ~node:_ ~incoming:_ = None
      let on_dropped _ ~now:_ ~node:_ _ = ()
      let on_reboot _ ~now:_ ~node:_ ~lost:_ = ()
    end)
  in
  let trace =
    Trace.create ~num_nodes:3 ~duration:10.0
      ~active:[ 0; 1; 2 ]
      [ Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:100 ]
  in
  (* dst is node 2 (absent from the contact): the first offer relays the
     copy to node 1 and the sender keeps its own, so the second offer is
     the same packet from the same sender. *)
  let workload = [ spec ~src:0 ~dst:2 ~size:10 () ] in
  Alcotest.check_raises "double offer rejected"
    (Invalid_argument "protocol evil-stub: packet 0 offered twice")
    (fun () -> ignore (Engine.run ~protocol:evil ~trace ~workload ()))

let test_engine_max_delay_nan_when_undelivered () =
  (* No deliveries: max_delay must be nan (unknown), not a misleading
     0.0 that sorts below every real run. *)
  let workload = [ spec ~src:0 ~dst:2 ~size:10 ~created:0.0 () ] in
  let report =
    (Engine.run
      ~protocol:(Rapid_routing.Direct.make ())
      ~trace:flood_trace ~workload ()).Engine.report
  in
  Alcotest.(check int) "none delivered" 0 report.Metrics.delivered;
  Alcotest.(check bool) "max_delay is nan" true
    (Float.is_nan report.Metrics.max_delay)

let test_engine_ack_purge_accounting () =
  (* Ack purges are counted through Metrics via the env hook (the only
     path), and the tracer sees exactly the same events. *)
  let trace =
    Trace.create ~num_nodes:3 ~duration:10.0
      [
        Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:100;
        (* 0 replicates to 1 *)
        Contact.make ~time:2.0 ~a:0 ~b:2 ~bytes:100;
        (* 0 delivers to dst 2; 0 and 2 learn the ack *)
        Contact.make ~time:3.0 ~a:0 ~b:1 ~bytes:100;
        (* acks reach 1: its stale copy is purged *)
      ]
  in
  let workload = [ spec ~src:0 ~dst:2 ~size:10 () ] in
  let run tracer =
    (Engine.run ?tracer
      ~protocol:(Rapid_routing.Random_protocol.make ~with_acks:true ())
      ~trace ~workload ()).Engine.report
  in
  let module Collector = Rapid_obs.Tracer.Collector in
  let collector = Collector.create () in
  let report = run (Some (Collector.tracer collector)) in
  Alcotest.(check int) "delivered" 1 report.Metrics.delivered;
  Alcotest.(check int) "purge counted in metrics" 1 report.Metrics.ack_purges;
  let count label =
    Option.value ~default:0 (List.assoc_opt label (Collector.counts collector))
  in
  Alcotest.(check int) "ack_purge events" report.Metrics.ack_purges
    (count "ack_purge");
  Alcotest.(check int) "delivery events" report.Metrics.delivered
    (count "delivery");
  Alcotest.(check int) "contact events" report.Metrics.num_contacts
    (count "contact");
  Alcotest.(check int) "transfer events" report.Metrics.transfers
    (count "transfer");
  (* Tracing must not perturb the run itself. *)
  let plain = run None in
  Alcotest.(check int) "same deliveries" plain.Metrics.delivered
    report.Metrics.delivered;
  Alcotest.(check int) "same purges" plain.Metrics.ack_purges
    report.Metrics.ack_purges;
  Alcotest.(check int) "same bytes" plain.Metrics.data_bytes
    report.Metrics.data_bytes

(* ------------------------------------------------------------------ *)
(* Property: feasibility holds for every protocol on random small runs. *)

let protocols () =
  [
    Rapid_routing.Epidemic.make ();
    Rapid_routing.Random_protocol.make ();
    Rapid_routing.Random_protocol.make ~with_acks:true ();
    Rapid_routing.Spray_wait.make ();
    Rapid_routing.Prophet.make ();
    Rapid_routing.Maxprop.make ();
    Rapid_routing.Direct.make ();
  ]

let prop_feasibility =
  QCheck.Test.make ~name:"schedules are always feasible" ~count:30
    QCheck.(pair (int_range 0 10_000) (int_range 0 6))
    (fun (seed, proto_idx) ->
      let rng = Rapid_prelude.Rng.create seed in
      let trace =
        Rapid_mobility.Mobility.exponential rng ~num_nodes:6 ~mean_inter_meeting:30.0
          ~duration:300.0 ~opportunity_bytes:50
      in
      if Trace.num_contacts trace = 0 then true
      else begin
        let workload =
          Workload.generate rng ~trace ~pkts_per_hour_per_dest:120.0 ~size:10
            ~lifetime:60.0 ()
        in
        let protocol = List.nth (protocols ()) proto_idx in
        let { Engine.report; env } =
          Engine.run
            ~options:
              {
                Engine.buffer_bytes = Some 40;
                meta_cap_frac = None;
                seed;
                faults = Rapid_faults.Faults.none;
              }
            ~protocol ~trace ~workload ()
        in
        (* Storage. *)
        Array.for_all (fun b -> Buffer.used b <= 40) env.Env.buffers
        (* Aggregate bandwidth. *)
        && report.Metrics.data_bytes + report.Metrics.metadata_bytes
           <= Trace.total_capacity_bytes trace
        && report.Metrics.delivered <= report.Metrics.created
      end)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_feasibility; prop_buffer_matches_model ]

let () =
  Alcotest.run "sim"
    [
      ( "packet",
        [
          Alcotest.test_case "age and deadline" `Quick test_packet_age_deadline;
          Alcotest.test_case "validation" `Quick test_packet_validation;
        ] );
      ( "buffer",
        [
          Alcotest.test_case "capacity" `Quick test_buffer_capacity;
          Alcotest.test_case "duplicate" `Quick test_buffer_duplicate;
          Alcotest.test_case "entries sorted" `Quick test_buffer_entries_sorted;
          Alcotest.test_case "dst bytes tracked" `Quick test_buffer_dst_bytes;
        ] );
      ("acks", [ Alcotest.test_case "ack store" `Quick test_ack_store ]);
      ( "send queue",
        [
          Alcotest.test_case "buffer epoch and clear" `Quick
            test_buffer_epoch_and_clear;
          Alcotest.test_case "serves in order" `Quick
            test_send_queue_serves_in_order;
          Alcotest.test_case "budget filter" `Quick test_send_queue_budget_filter;
          Alcotest.test_case "candidates skip duplicates" `Quick
            test_send_queue_candidates_skip_duplicates_at_peer;
          Alcotest.test_case "delivery keeps tail" `Quick
            test_send_queue_delivery_keeps_tail;
          Alcotest.test_case "eviction forces replan" `Quick
            test_send_queue_eviction_forces_replan;
          Alcotest.test_case "no peer check revalidates pops" `Quick
            test_send_queue_no_peer_check_revalidates_pops;
        ] );
      ( "engine",
        [
          Alcotest.test_case "relay delivery" `Quick test_engine_relay_delivery;
          Alcotest.test_case "direct no relay" `Quick
            test_engine_direct_protocol_no_relay;
          Alcotest.test_case "bandwidth respected" `Quick
            test_engine_bandwidth_respected;
          Alcotest.test_case "storage respected" `Quick test_engine_storage_respected;
          Alcotest.test_case "conservation" `Quick test_engine_conservation;
          Alcotest.test_case "deadline accounting" `Quick
            test_engine_deadline_accounting;
          Alcotest.test_case "metadata cap" `Quick test_engine_meta_cap;
          Alcotest.test_case "duplicate delivery once" `Quick
            test_engine_duplicate_delivery_counted_once;
          Alcotest.test_case "duplicate push wastes bandwidth" `Quick
            test_engine_duplicate_push_wastes_bandwidth;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
          Alcotest.test_case "empty workload" `Quick test_engine_empty_workload;
          Alcotest.test_case "zero byte contact" `Quick test_engine_zero_byte_contact;
          Alcotest.test_case "packet bigger than buffer" `Quick
            test_engine_packet_bigger_than_buffer;
          Alcotest.test_case "max delay nan when undelivered" `Quick
            test_engine_max_delay_nan_when_undelivered;
          Alcotest.test_case "rejects double offer" `Quick
            test_engine_rejects_double_offer;
          Alcotest.test_case "ack purge accounting" `Quick
            test_engine_ack_purge_accounting;
        ] );
      ( "eviction",
        [
          Alcotest.test_case "refusal via None" `Quick test_eviction_refusal_none;
          Alcotest.test_case "self candidate refuses" `Quick
            test_eviction_self_candidate_refuses;
          Alcotest.test_case "replaces incumbent" `Quick
            test_eviction_replaces_incumbent;
          Alcotest.test_case "unbuffered victim rejected" `Quick
            test_eviction_unbuffered_victim_rejected;
          Alcotest.test_case "oversized incoming skips evictions" `Quick
            test_oversized_incoming_skips_evictions;
        ] );
      ( "on_transfer contract",
        [
          Alcotest.test_case "skips duplicate push" `Quick
            test_on_transfer_skips_duplicate_push;
          Alcotest.test_case "skips storage refusal" `Quick
            test_on_transfer_skips_storage_refusal;
        ] );
      ("properties", qcheck_cases);
    ]
