(* Tests for the Rapid_prelude substrate: PRNG, special functions,
   distributions (samplers and the discretized algebra), statistics, the
   priority queue, and moving averages. *)

open Rapid_prelude

let check_close ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g (eps %.2g)" what expected
      actual eps

let check_rel ?(tol = 0.02) what expected actual =
  let denom = max 1e-12 (Float.abs expected) in
  if Float.abs (expected -. actual) /. denom > tol then
    Alcotest.failf "%s: expected ~%.6g, got %.6g (rel tol %.2g)" what expected
      actual tol

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check int) "different streams" 0 !same

let test_rng_float_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of range: %f" x
  done

let test_rng_int_range () =
  let rng = Rng.create 9 in
  let seen = Array.make 10 false in
  for _ = 1 to 10_000 do
    let k = Rng.int rng 10 in
    if k < 0 || k >= 10 then Alcotest.failf "int out of range: %d" k;
    seen.(k) <- true
  done;
  Array.iteri
    (fun i b -> if not b then Alcotest.failf "value %d never drawn" i)
    seen

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  (* The two streams should not coincide. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 parent = Rng.bits64 child then incr same
  done;
  Alcotest.(check int) "split independent" 0 !same

let test_rng_shuffle_permutes () =
  let rng = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_pick_k () =
  let rng = Rng.create 11 in
  let a = Array.init 20 Fun.id in
  let picked = Rng.pick_k rng a 8 in
  Alcotest.(check int) "k elements" 8 (Array.length picked);
  let module S = Set.Make (Int) in
  let s = Array.fold_left (fun s x -> S.add x s) S.empty picked in
  Alcotest.(check int) "distinct" 8 (S.cardinal s)

(* ------------------------------------------------------------------ *)
(* Special functions *)

let test_log_gamma_factorials () =
  (* Γ(n) = (n-1)! *)
  let fact = [ (1, 1.0); (2, 1.0); (3, 2.0); (4, 6.0); (5, 24.0); (6, 120.0) ] in
  List.iter
    (fun (n, f) ->
      check_close ~eps:1e-10
        (Printf.sprintf "lgamma %d" n)
        (log f)
        (Special.log_gamma (float_of_int n)))
    fact

let test_log_gamma_half () =
  (* Γ(1/2) = sqrt(pi). *)
  check_close ~eps:1e-10 "lgamma 0.5" (log (sqrt Float.pi))
    (Special.log_gamma 0.5)

let test_incomplete_beta_uniform () =
  (* I_x(1,1) = x. *)
  List.iter
    (fun x ->
      check_close ~eps:1e-10 "I_x(1,1)" x (Special.incomplete_beta ~a:1.0 ~b:1.0 ~x))
    [ 0.0; 0.1; 0.25; 0.5; 0.9; 1.0 ]

let test_incomplete_beta_symmetry () =
  (* I_x(a,b) = 1 - I_{1-x}(b,a). *)
  let cases = [ (2.0, 3.0, 0.3); (0.5, 0.5, 0.7); (5.0, 1.5, 0.42) ] in
  List.iter
    (fun (a, b, x) ->
      check_close ~eps:1e-10 "symmetry"
        (Special.incomplete_beta ~a ~b ~x)
        (1.0 -. Special.incomplete_beta ~a:b ~b:a ~x:(1.0 -. x)))
    cases

let test_student_t_cdf_known () =
  (* t=0 is the median for any df. *)
  check_close ~eps:1e-12 "t cdf at 0" 0.5 (Special.student_t_cdf ~df:5.0 0.0);
  (* df=1 is Cauchy: F(1) = 3/4. *)
  check_close ~eps:1e-9 "cauchy at 1" 0.75 (Special.student_t_cdf ~df:1.0 1.0);
  (* Large df approaches the normal. *)
  check_close ~eps:1e-3 "t -> normal" (Special.normal_cdf 1.96)
    (Special.student_t_cdf ~df:10000.0 1.96)

let test_student_t_quantile_roundtrip () =
  List.iter
    (fun df ->
      List.iter
        (fun p ->
          let q = Special.student_t_quantile ~df p in
          check_close ~eps:1e-7
            (Printf.sprintf "quantile roundtrip df=%g p=%g" df p)
            p
            (Special.student_t_cdf ~df q))
        [ 0.05; 0.5; 0.9; 0.975 ])
    [ 1.0; 4.0; 30.0 ]

let test_erf_known () =
  check_close ~eps:1e-10 "erf 0" 0.0 (Special.erf 0.0);
  check_close ~eps:1e-7 "erf 1" 0.8427007929497149 (Special.erf 1.0);
  check_close ~eps:1e-7 "erf -1" (-0.8427007929497149) (Special.erf (-1.0))

(* ------------------------------------------------------------------ *)
(* Dist samplers *)

let moments sampler n =
  let w = Stats.Welford.create () in
  for _ = 1 to n do
    Stats.Welford.add w (sampler ())
  done;
  (Stats.Welford.mean w, Stats.Welford.variance w)

let test_exponential_moments () =
  let rng = Rng.create 100 in
  let mean, var = moments (fun () -> Dist.exponential rng ~mean:3.0) 200_000 in
  check_rel ~tol:0.03 "exp mean" 3.0 mean;
  check_rel ~tol:0.05 "exp var" 9.0 var

let test_normal_moments () =
  let rng = Rng.create 101 in
  let mean, var = moments (fun () -> Dist.normal rng ~mu:2.0 ~sigma:1.5) 200_000 in
  check_close ~eps:0.05 "normal mean" 2.0 mean;
  check_rel ~tol:0.05 "normal var" 2.25 var

let test_gamma_moments () =
  let rng = Rng.create 102 in
  let shape = 4.0 and scale = 2.5 in
  let mean, var =
    moments (fun () -> Dist.gamma rng ~shape ~scale) 200_000
  in
  check_rel ~tol:0.03 "gamma mean" (shape *. scale) mean;
  check_rel ~tol:0.06 "gamma var" (shape *. scale *. scale) var

let test_gamma_small_shape () =
  let rng = Rng.create 103 in
  let mean, _ = moments (fun () -> Dist.gamma rng ~shape:0.5 ~scale:2.0) 200_000 in
  check_rel ~tol:0.05 "gamma mean, shape<1" 1.0 mean

let test_pareto_tail () =
  let rng = Rng.create 104 in
  (* alpha=3, x_min=1: mean = alpha*x_min/(alpha-1) = 1.5. *)
  let mean, _ = moments (fun () -> Dist.pareto rng ~alpha:3.0 ~x_min:1.0) 300_000 in
  check_rel ~tol:0.05 "pareto mean" 1.5 mean;
  for _ = 1 to 1000 do
    if Dist.pareto rng ~alpha:3.0 ~x_min:1.0 < 1.0 then
      Alcotest.fail "pareto below x_min"
  done

let test_poisson_process_rate () =
  let rng = Rng.create 105 in
  let counts = ref 0 in
  let runs = 2000 in
  for _ = 1 to runs do
    let evts = Dist.poisson_process rng ~rate:0.5 ~horizon:10.0 in
    counts := !counts + List.length evts;
    (* Sorted and in range. *)
    let rec sorted = function
      | a :: (b :: _ as rest) -> a <= b && sorted rest
      | _ -> true
    in
    if not (sorted evts) then Alcotest.fail "unsorted poisson events";
    List.iter
      (fun t -> if t < 0.0 || t >= 10.0 then Alcotest.fail "event out of horizon")
      evts
  done;
  check_rel ~tol:0.05 "poisson count" 5.0
    (float_of_int !counts /. float_of_int runs)

let test_poisson_zero_rate () =
  let rng = Rng.create 106 in
  Alcotest.(check (list (float 0.0)))
    "no events" []
    (Dist.poisson_process rng ~rate:0.0 ~horizon:10.0)

let test_weighted_index () =
  let rng = Rng.create 107 in
  let w = [| 1.0; 0.0; 3.0 |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 40_000 do
    let i = Dist.weighted_index rng w in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight never drawn" 0 counts.(1);
  check_rel ~tol:0.08 "weight ratio" 3.0
    (float_of_int counts.(2) /. float_of_int counts.(0))

(* ------------------------------------------------------------------ *)
(* Dist.Discrete algebra *)

let test_discrete_exponential_mean () =
  let d = Dist.Discrete.of_exponential ~dt:0.01 ~cells:4000 ~mean:2.0 in
  check_rel ~tol:0.02 "discrete exp mean" 2.0 (Dist.Discrete.mean d);
  check_rel ~tol:0.02 "discrete exp cdf" (Dist.exponential_cdf ~mean:2.0 1.0)
    (Dist.Discrete.cdf d 1.0)

let test_discrete_convolve_mean_adds () =
  let a = Dist.Discrete.of_exponential ~dt:0.01 ~cells:6000 ~mean:1.0 in
  let b = Dist.Discrete.of_exponential ~dt:0.01 ~cells:6000 ~mean:2.0 in
  let c = Dist.Discrete.convolve a b in
  check_rel ~tol:0.03 "conv mean" 3.0 (Dist.Discrete.mean c)

let test_discrete_erlang () =
  (* Sum of k exponentials has mean k * mean. *)
  let d = Dist.Discrete.of_gamma_exponential_sum ~dt:0.01 ~cells:6000 ~mean:1.0 ~k:3 in
  check_rel ~tol:0.03 "erlang mean" 3.0 (Dist.Discrete.mean d)

let test_discrete_min_exponentials () =
  (* min of exp(mean 1) and exp(mean 1) is exp(mean 1/2). *)
  let a = Dist.Discrete.of_exponential ~dt:0.005 ~cells:4000 ~mean:1.0 in
  let b = Dist.Discrete.of_exponential ~dt:0.005 ~cells:4000 ~mean:1.0 in
  let m = Dist.Discrete.minimum a b in
  check_rel ~tol:0.03 "min mean" 0.5 (Dist.Discrete.mean m)

let test_discrete_min_list () =
  let mk () = Dist.Discrete.of_exponential ~dt:0.005 ~cells:4000 ~mean:3.0 in
  let m = Dist.Discrete.minimum_list [ mk (); mk (); mk () ] in
  check_rel ~tol:0.03 "min3 mean" 1.0 (Dist.Discrete.mean m)

let test_discrete_point () =
  let p = Dist.Discrete.point ~dt:0.1 ~cells:100 2.0 in
  check_rel ~tol:0.05 "point mean" 2.0 (Dist.Discrete.mean p);
  check_close ~eps:1e-9 "point defect" 0.0 (Dist.Discrete.defect p)

let test_discrete_defect () =
  (* Horizon far smaller than the mean: most mass escapes. *)
  let d = Dist.Discrete.of_exponential ~dt:0.1 ~cells:10 ~mean:100.0 in
  if Dist.Discrete.defect d < 0.9 then
    Alcotest.failf "expected large defect, got %f" (Dist.Discrete.defect d)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_welford_known () =
  let w = Stats.Welford.create () in
  List.iter (Stats.Welford.add w) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_close ~eps:1e-12 "mean" 5.0 (Stats.Welford.mean w);
  check_close ~eps:1e-12 "variance" (32.0 /. 7.0) (Stats.Welford.variance w)

let test_welford_merge () =
  let a = Stats.Welford.create () and b = Stats.Welford.create () in
  let all = Stats.Welford.create () in
  let rng = Rng.create 1 in
  for i = 1 to 1000 do
    let x = Rng.float rng in
    Stats.Welford.add all x;
    if i mod 2 = 0 then Stats.Welford.add a x else Stats.Welford.add b x
  done;
  let m = Stats.Welford.merge a b in
  check_close ~eps:1e-9 "merged mean" (Stats.Welford.mean all)
    (Stats.Welford.mean m);
  check_close ~eps:1e-9 "merged var" (Stats.Welford.variance all)
    (Stats.Welford.variance m)

let test_summary_ci () =
  (* For n=4, mean=5, std=2: ci95 = t_{.975,3} * 2/2 = 3.182446. *)
  let s = Stats.summarize [ 3.0; 4.0; 6.0; 7.0 ] in
  check_close ~eps:1e-12 "mean" 5.0 s.mean;
  check_rel ~tol:1e-4 "ci95"
    (Special.student_t_quantile ~df:3.0 0.975 *. s.std /. 2.0)
    s.ci95

let test_paired_t_test_significant () =
  let a = [| 10.0; 12.0; 9.0; 11.0; 13.0; 10.5; 12.5; 9.5 |] in
  let b = Array.map (fun x -> x -. 2.0) a in
  let r = Stats.paired_t_test a b in
  check_close ~eps:1e-9 "mean diff" 2.0 r.mean_diff;
  if r.p_value > 1e-6 then Alcotest.failf "expected tiny p, got %g" r.p_value

let test_paired_t_test_null () =
  let rng = Rng.create 55 in
  let a = Array.init 50 (fun _ -> Dist.normal rng ~mu:0.0 ~sigma:1.0) in
  let noise = Array.init 50 (fun _ -> Dist.normal rng ~mu:0.0 ~sigma:1.0) in
  let b = Array.mapi (fun i x -> x +. (0.0 *. float_of_int i) +. noise.(i)) a in
  let r = Stats.paired_t_test a b in
  if r.p_value < 0.001 then
    Alcotest.failf "null hypothesis rejected too strongly: p=%g" r.p_value

let test_jain_index () =
  check_close ~eps:1e-12 "equal" 1.0 (Stats.jain_index [| 3.0; 3.0; 3.0 |]);
  (* One user hogs everything among n: index = 1/n. *)
  check_close ~eps:1e-12 "max unfair" 0.25
    (Stats.jain_index [| 1.0; 0.0; 0.0; 0.0 |])

let test_cdf_points () =
  let pts = Stats.cdf_points [| 3.0; 1.0; 2.0 |] in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "cdf"
    [ (1.0, 1.0 /. 3.0); (2.0, 2.0 /. 3.0); (3.0, 1.0) ]
    pts

let test_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_close ~eps:1e-12 "median" 25.0 (Stats.percentile xs 0.5);
  check_close ~eps:1e-12 "min" 10.0 (Stats.percentile xs 0.0);
  check_close ~eps:1e-12 "max" 40.0 (Stats.percentile xs 1.0)

(* ------------------------------------------------------------------ *)
(* Pqueue *)

let test_pqueue_ordering () =
  let q = Pqueue.create () in
  let rng = Rng.create 77 in
  let n = 1000 in
  for i = 0 to n - 1 do
    Pqueue.push q (Rng.float rng) i
  done;
  let prev = ref neg_infinity in
  let popped = ref 0 in
  let rec drain () =
    match Pqueue.pop q with
    | None -> ()
    | Some (p, _) ->
        if p < !prev then Alcotest.fail "heap order violated";
        prev := p;
        incr popped;
        drain ()
  in
  drain ();
  Alcotest.(check int) "all popped" n !popped

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q 1.0 v) [ "a"; "b"; "c" ];
  let next () =
    match Pqueue.pop q with Some (_, v) -> v | None -> Alcotest.fail "empty"
  in
  Alcotest.(check string) "fifo a" "a" (next ());
  Alcotest.(check string) "fifo b" "b" (next ());
  Alcotest.(check string) "fifo c" "c" (next ())

let test_pqueue_peek_clear () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Pqueue.push q 2.0 "x";
  Pqueue.push q 1.0 "y";
  (match Pqueue.peek q with
  | Some (p, v) ->
      check_close ~eps:0.0 "peek prio" 1.0 p;
      Alcotest.(check string) "peek value" "y" v
  | None -> Alcotest.fail "peek on non-empty");
  Alcotest.(check int) "length" 2 (Pqueue.length q);
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q)

(* ------------------------------------------------------------------ *)
(* Moving averages *)

let test_cumulative_average () =
  let c = Moving_average.Cumulative.create () in
  Alcotest.(check (option (float 0.0))) "empty" None
    (Moving_average.Cumulative.value c);
  List.iter (Moving_average.Cumulative.add c) [ 1.0; 2.0; 3.0; 4.0 ];
  check_close ~eps:1e-12 "avg" 2.5
    (Moving_average.Cumulative.value_or c ~default:nan);
  Alcotest.(check int) "count" 4 (Moving_average.Cumulative.count c)

let test_ewma () =
  let e = Moving_average.Ewma.create ~alpha:0.5 in
  Moving_average.Ewma.add e 10.0;
  check_close ~eps:1e-12 "first" 10.0 (Moving_average.Ewma.value_or e ~default:nan);
  Moving_average.Ewma.add e 20.0;
  check_close ~eps:1e-12 "second" 15.0 (Moving_average.Ewma.value_or e ~default:nan)

(* ------------------------------------------------------------------ *)
(* Property tests *)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue drains sorted" ~count:200
    QCheck.(list (pair (float_bound_exclusive 1000.0) small_int))
    (fun entries ->
      let q = Pqueue.create () in
      List.iter (fun (p, v) -> Pqueue.push q p v) entries;
      let rec drain prev =
        match Pqueue.pop q with
        | None -> true
        | Some (p, _) -> p >= prev && drain p
      in
      drain neg_infinity)

let prop_jain_bounds =
  QCheck.Test.make ~name:"jain index in (0,1]" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_bound_exclusive 100.0))
    (fun xs ->
      let xs = Array.of_list (List.map (fun x -> x +. 0.001) xs) in
      let j = Stats.jain_index xs in
      j > 0.0 && j <= 1.0 +. 1e-9)

let prop_summarize_min_max =
  QCheck.Test.make ~name:"summary min<=mean<=max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-50.0) 50.0))
    (fun xs ->
      let s = Stats.summarize xs in
      s.min <= s.mean +. 1e-9 && s.mean <= s.max +. 1e-9)

let prop_discrete_min_smaller =
  QCheck.Test.make ~name:"min of dists has smaller mean" ~count:50
    QCheck.(pair (float_range 0.5 5.0) (float_range 0.5 5.0))
    (fun (m1, m2) ->
      let a = Dist.Discrete.of_exponential ~dt:0.02 ~cells:2000 ~mean:m1 in
      let b = Dist.Discrete.of_exponential ~dt:0.02 ~cells:2000 ~mean:m2 in
      let m = Dist.Discrete.minimum a b in
      Dist.Discrete.mean m <= min (Dist.Discrete.mean a) (Dist.Discrete.mean b) +. 0.05)

let prop_exponential_positive =
  QCheck.Test.make ~name:"exponential samples positive" ~count:1000
    QCheck.(float_range 0.1 100.0)
    (fun mean ->
      let rng = Rng.create (int_of_float (mean *. 1000.0)) in
      Dist.exponential rng ~mean > 0.0)

(* ------------------------------------------------------------------ *)
(* Dense flat matrices *)

let test_dense_mat_roundtrip () =
  let m = Dense.Mat.create ~init:nan 3 in
  Alcotest.(check int) "dim" 3 (Dense.Mat.dim m);
  Alcotest.(check bool) "init" true (Float.is_nan (Dense.Mat.get m 2 1));
  Dense.Mat.set m 0 2 1.5;
  Dense.Mat.set m 2 0 (-2.0);
  check_close "cell (0,2)" 1.5 (Dense.Mat.get m 0 2);
  check_close "cell (2,0)" (-2.0) (Dense.Mat.get m 2 0);
  (* Row-major backing store: (i,j) lives at i*dim + j. *)
  check_close "flat layout" 1.5 (Dense.Mat.data m).(2);
  Dense.Int_mat.(
    let im = create ~init:7 2 in
    set im 1 0 42;
    Alcotest.(check int) "int cell" 42 (get im 1 0);
    Alcotest.(check int) "int init" 7 (get im 0 1))

let test_dense_cumulative_grid () =
  (* Cell means must match Moving_average.Cumulative exactly — the grid
     is its flat drop-in replacement in the inference hot path. *)
  let g = Dense.Cumulative_grid.create 3 in
  let c = Moving_average.Cumulative.create () in
  Alcotest.(check (option (float 0.0))) "empty" None
    (Dense.Cumulative_grid.value g 0 1);
  List.iter
    (fun x ->
      Dense.Cumulative_grid.add g 0 1 x;
      Moving_average.Cumulative.add c x)
    [ 10.0; 0.3; 7.7; 1e-3 ];
  Alcotest.(check int) "count" (Moving_average.Cumulative.count c)
    (Dense.Cumulative_grid.count g 0 1);
  (match
     (Dense.Cumulative_grid.value g 0 1, Moving_average.Cumulative.value c)
   with
  | Some a, Some b ->
      if a <> b then Alcotest.failf "mean mismatch: %.17g vs %.17g" a b
  | _ -> Alcotest.fail "missing mean");
  Alcotest.(check int) "other cell untouched" 0
    (Dense.Cumulative_grid.count g 1 0);
  check_close "default" 9.0
    (Dense.Cumulative_grid.value_or g 2 2 ~default:9.0)

let test_dense_scratch_reuse () =
  let s = Dense.Scratch.create () in
  let a1, b1 = Dense.Scratch.rows s 4 in
  Alcotest.(check bool) "distinct buffers" false (a1 == b1);
  Alcotest.(check bool) "long enough" true
    (Array.length a1 >= 4 && Array.length b1 >= 4);
  let a2, _ = Dense.Scratch.rows s 3 in
  Alcotest.(check bool) "same buffer reused" true (a1 == a2);
  let a3, b3 = Dense.Scratch.rows s 32 in
  Alcotest.(check bool) "grown" true
    (Array.length a3 >= 32 && Array.length b3 >= 32)

let prop_sortbuf_matches_list_sort =
  QCheck.Test.make ~name:"sortbuf sorts like List.sort" ~count:200
    QCheck.(list (float_range (-100.0) 100.0))
    (fun values ->
      (* The index component makes the order total (ties broken on a
         unique key), so the unstable heap sort must agree with List.sort
         exactly — the property the send_delta rewrite depends on. *)
      let items = List.mapi (fun i v -> (i, v)) values in
      let cmp (i, x) (j, y) =
        match Float.compare x y with 0 -> Int.compare i j | n -> n
      in
      let buf = Sortbuf.create () in
      (* Two rounds through the same buffer: clear must fully reset. *)
      List.iter (fun x -> Sortbuf.push buf x) items;
      Sortbuf.sort buf ~cmp;
      Sortbuf.clear buf;
      List.iter (fun x -> Sortbuf.push buf x) items;
      Sortbuf.sort buf ~cmp;
      let out = ref [] in
      Sortbuf.iteri buf (fun _ x -> out := x :: !out);
      List.rev !out = List.sort cmp items
      && Sortbuf.length buf = List.length items)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_pqueue_sorted; prop_jain_bounds; prop_summarize_min_max;
      prop_discrete_min_smaller; prop_exponential_positive;
      prop_sortbuf_matches_list_sort ]

let () =
  Alcotest.run "prelude"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "pick_k distinct" `Quick test_rng_pick_k;
        ] );
      ( "special",
        [
          Alcotest.test_case "lgamma factorials" `Quick test_log_gamma_factorials;
          Alcotest.test_case "lgamma half" `Quick test_log_gamma_half;
          Alcotest.test_case "incomplete beta uniform" `Quick
            test_incomplete_beta_uniform;
          Alcotest.test_case "incomplete beta symmetry" `Quick
            test_incomplete_beta_symmetry;
          Alcotest.test_case "student t cdf" `Quick test_student_t_cdf_known;
          Alcotest.test_case "student t quantile roundtrip" `Quick
            test_student_t_quantile_roundtrip;
          Alcotest.test_case "erf" `Quick test_erf_known;
        ] );
      ( "dist",
        [
          Alcotest.test_case "exponential moments" `Slow test_exponential_moments;
          Alcotest.test_case "normal moments" `Slow test_normal_moments;
          Alcotest.test_case "gamma moments" `Slow test_gamma_moments;
          Alcotest.test_case "gamma small shape" `Slow test_gamma_small_shape;
          Alcotest.test_case "pareto tail" `Slow test_pareto_tail;
          Alcotest.test_case "poisson process rate" `Slow test_poisson_process_rate;
          Alcotest.test_case "poisson zero rate" `Quick test_poisson_zero_rate;
          Alcotest.test_case "weighted index" `Quick test_weighted_index;
        ] );
      ( "dist.discrete",
        [
          Alcotest.test_case "exponential mean" `Quick test_discrete_exponential_mean;
          Alcotest.test_case "convolution adds means" `Quick
            test_discrete_convolve_mean_adds;
          Alcotest.test_case "erlang" `Quick test_discrete_erlang;
          Alcotest.test_case "min of exponentials" `Quick
            test_discrete_min_exponentials;
          Alcotest.test_case "min list" `Quick test_discrete_min_list;
          Alcotest.test_case "point mass" `Quick test_discrete_point;
          Alcotest.test_case "defect tracking" `Quick test_discrete_defect;
        ] );
      ( "stats",
        [
          Alcotest.test_case "welford known" `Quick test_welford_known;
          Alcotest.test_case "welford merge" `Quick test_welford_merge;
          Alcotest.test_case "summary ci" `Quick test_summary_ci;
          Alcotest.test_case "paired t significant" `Quick
            test_paired_t_test_significant;
          Alcotest.test_case "paired t null" `Quick test_paired_t_test_null;
          Alcotest.test_case "jain index" `Quick test_jain_index;
          Alcotest.test_case "cdf points" `Quick test_cdf_points;
          Alcotest.test_case "percentile" `Quick test_percentile;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "ordering" `Quick test_pqueue_ordering;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "peek and clear" `Quick test_pqueue_peek_clear;
        ] );
      ( "moving_average",
        [
          Alcotest.test_case "cumulative" `Quick test_cumulative_average;
          Alcotest.test_case "ewma" `Quick test_ewma;
        ] );
      ( "dense",
        [
          Alcotest.test_case "mat roundtrip" `Quick test_dense_mat_roundtrip;
          Alcotest.test_case "cumulative grid" `Quick test_dense_cumulative_grid;
          Alcotest.test_case "scratch reuse" `Quick test_dense_scratch_reuse;
        ] );
      ("properties", qcheck_cases);
    ]
