(* Tests for Rapid_routing: protocol-specific behaviours (spray tokens,
   prophet predictability gating, maxprop priorities, ack purging) and the
   Optimal evaluator against brute force. *)

open Rapid_trace
open Rapid_sim
open Rapid_routing

let check_close ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" what expected actual

let spec ~src ~dst ?(size = 10) ?(created = 0.0) ?deadline () =
  { Workload.src; dst; size; created; deadline }

(* ------------------------------------------------------------------ *)
(* Spray and Wait *)

let test_spray_wait_limits_copies () =
  (* Star: source 0 meets relays 1..8 in sequence; dst 9 never appears.
     Binary spraying with L=4: the source gives 2 tokens to the first
     relay and 1 to the second, then holds a single token and waits — so
     exactly 2 transfers and 3 physical copies. *)
  let contacts =
    List.init 8 (fun i ->
        Contact.make ~time:(float_of_int (i + 1)) ~a:0 ~b:(i + 1) ~bytes:100)
  in
  let trace = Trace.create ~num_nodes:10 ~duration:20.0 contacts in
  let workload = [ spec ~src:0 ~dst:9 () ] in
  let { Engine.report; env } =
    Engine.run ~protocol:(Spray_wait.make ~l:4 ()) ~trace ~workload ()
  in
  let holders =
    Array.fold_left
      (fun acc b -> if Buffer.mem b 0 then acc + 1 else acc)
      0 env.Env.buffers
  in
  Alcotest.(check int) "copies limited by L" 2 report.Metrics.transfers;
  Alcotest.(check int) "holders = 3 (src + 2)" 3 holders

let test_spray_wait_single_copy_waits () =
  (* L=1: pure direct delivery; relay never gets the packet. *)
  let trace =
    Trace.create ~num_nodes:3 ~duration:10.0
      [
        Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:100;
        Contact.make ~time:2.0 ~a:1 ~b:2 ~bytes:100;
      ]
  in
  let workload = [ spec ~src:0 ~dst:2 () ] in
  let report =
    (Engine.run ~protocol:(Spray_wait.make ~l:1 ()) ~trace ~workload ()).Engine.report
  in
  Alcotest.(check int) "no relay, no delivery" 0 report.Metrics.delivered

let test_spray_wait_direct_delivery_always () =
  let trace =
    Trace.create ~num_nodes:2 ~duration:10.0
      [ Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:100 ]
  in
  let workload = [ spec ~src:0 ~dst:1 () ] in
  let report =
    (Engine.run ~protocol:(Spray_wait.make ~l:1 ()) ~trace ~workload ()).Engine.report
  in
  Alcotest.(check int) "direct delivered" 1 report.Metrics.delivered

(* ------------------------------------------------------------------ *)
(* PROPHET *)

let test_prophet_requires_predictability () =
  (* Node 1 has never met dst 2 when it first meets 0, so no replication;
     after 1 meets 2 (raising P(1,2)), a later meeting with 0 replicates. *)
  let trace =
    Trace.create ~num_nodes:3 ~duration:100.0
      [
        Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:100;
        (* no transfer expected: P(1,2)=0 = P(0,2) *)
        Contact.make ~time:2.0 ~a:1 ~b:2 ~bytes:0;
        (* 1 meets dst (zero-byte contact still updates predictability) *)
        Contact.make ~time:3.0 ~a:0 ~b:1 ~bytes:100;
        (* now P(1,2) > P(0,2): replicate *)
        Contact.make ~time:4.0 ~a:1 ~b:2 ~bytes:100;
      ]
  in
  let workload = [ spec ~src:0 ~dst:2 () ] in
  let report = (Engine.run ~protocol:(Prophet.make ()) ~trace ~workload ()).Engine.report in
  Alcotest.(check int) "delivered via predictable relay" 1 report.Metrics.delivered;
  check_close "delay" 4.0 report.Metrics.avg_delay

let test_prophet_aging () =
  (* Verify that gamma-aging decays predictability: same scenario but with a
     huge gap before the second 0-1 meeting; P(1,2) decays to ~0 and the
     relay is no better than the source, so no replication happens. *)
  let trace =
    Trace.create ~num_nodes:3 ~duration:1e7
      [
        Contact.make ~time:1.0 ~a:1 ~b:2 ~bytes:0;
        Contact.make ~time:9e6 ~a:0 ~b:1 ~bytes:100;
      ]
  in
  let workload = [ spec ~src:0 ~dst:2 () ] in
  let report =
    (Engine.run ~protocol:(Prophet.make ~time_unit:30.0 ()) ~trace ~workload ()).Engine.report
  in
  Alcotest.(check int) "no transfer after decay" 0 report.Metrics.transfers

let test_prophet_encounter_update_symmetric () =
  (* The transitivity pass must read predictability snapshots taken at the
     start of the encounter: with in-place updates the (a, b) loop could
     feed its own freshly-raised entries back into the (b, a) half, making
     the result depend on argument order. Swapping a and b must be a
     no-op. *)
  let n = 5 in
  let mk () =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then 0.0
            else float_of_int (((i * 7) + (j * 3)) mod 10) /. 12.5))
  in
  let check ~p_init ~beta a b =
    let p1 = mk () and p2 = mk () in
    Prophet.encounter_update ~p_init ~beta p1 a b;
    Prophet.encounter_update ~p_init ~beta p2 b a;
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        check_close
          (Printf.sprintf "beta=%g p.(%d).(%d)" beta i j)
          p1.(i).(j) p2.(i).(j)
      done
    done
  in
  check ~p_init:0.75 ~beta:0.25 1 3;
  (* beta > 1 is out of PROPHET's range but maximally exposes the
     in-place feedback: with live rows the two argument orders disagree
     here, with snapshots they cannot. *)
  check ~p_init:0.9 ~beta:1.25 1 3;
  check ~p_init:0.9 ~beta:1.25 0 4

(* ------------------------------------------------------------------ *)
(* MaxProp *)

let test_maxprop_acks_purge () =
  (* After delivery, the ack must reach the other carrier and purge its
     stale copy. *)
  let trace =
    Trace.create ~num_nodes:4 ~duration:20.0
      [
        Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:1000;
        (* replicate to 1 *)
        Contact.make ~time:2.0 ~a:0 ~b:3 ~bytes:1000;
        (* source delivers to dst 3 *)
        Contact.make ~time:3.0 ~a:0 ~b:1 ~bytes:1000;
        (* ack flows 0 -> 1; 1 purges *)
      ]
  in
  let workload = [ spec ~src:0 ~dst:3 () ] in
  let { Engine.report; env } =
    Engine.run ~protocol:(Maxprop.make ()) ~trace ~workload ()
  in
  Alcotest.(check int) "delivered" 1 report.Metrics.delivered;
  Alcotest.(check bool) "stale copy purged" false (Buffer.mem env.Env.buffers.(1) 0);
  Alcotest.(check bool) "ack purge recorded" true (report.Metrics.ack_purges >= 1)

let test_maxprop_delivers_chain () =
  let trace =
    Trace.create ~num_nodes:4 ~duration:20.0
      [
        Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:1000;
        Contact.make ~time:2.0 ~a:1 ~b:2 ~bytes:1000;
        Contact.make ~time:3.0 ~a:2 ~b:3 ~bytes:1000;
      ]
  in
  let workload = [ spec ~src:0 ~dst:3 () ] in
  let report = (Engine.run ~protocol:(Maxprop.make ()) ~trace ~workload ()).Engine.report in
  Alcotest.(check int) "delivered over 3 hops" 1 report.Metrics.delivered

let test_maxprop_metadata_charged () =
  let trace =
    Trace.create ~num_nodes:3 ~duration:20.0
      [ Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:1000 ]
  in
  let report =
    (Engine.run ~protocol:(Maxprop.make ()) ~trace ~workload:[] ()).Engine.report
  in
  Alcotest.(check bool) "vectors cost bytes" true (report.Metrics.metadata_bytes > 0)

let test_maxprop_no_acks_without_delivery () =
  (* Acks exist only for delivered packets: a replication-only run must
     never purge, even across repeated meetings of the carriers. *)
  let trace =
    Trace.create ~num_nodes:3 ~duration:20.0
      ~active:[ 0; 1; 2 ]
      [
        Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:1000;
        Contact.make ~time:2.0 ~a:0 ~b:1 ~bytes:1000;
      ]
  in
  let workload = [ spec ~src:0 ~dst:2 () ] in
  let { Engine.report; env } =
    Engine.run ~protocol:(Maxprop.make ()) ~trace ~workload ()
  in
  Alcotest.(check int) "nothing delivered" 0 report.Metrics.delivered;
  Alcotest.(check int) "no ack purges" 0 report.Metrics.ack_purges;
  Alcotest.(check bool) "source keeps copy" true (Buffer.mem env.Env.buffers.(0) 0);
  Alcotest.(check bool) "relay keeps copy" true (Buffer.mem env.Env.buffers.(1) 0)

(* ------------------------------------------------------------------ *)
(* Spray tickets across duplicate meetings *)

let test_spray_wait_duplicate_meeting_keeps_tokens () =
  (* Ticket halving happens only when a copy is actually accepted. Meeting
     the same relay twice must not burn tokens: after the duplicate
     meeting the source still holds 2 tokens and sprays the next relay. *)
  let trace =
    Trace.create ~num_nodes:10 ~duration:20.0
      [
        Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:100;
        (* L=4: give 2, keep 2 *)
        Contact.make ~time:2.0 ~a:0 ~b:1 ~bytes:100;
        (* relay already holds it: no transfer, no halving *)
        Contact.make ~time:3.0 ~a:0 ~b:2 ~bytes:100;
        (* still 2 tokens: give 1, keep 1 *)
        Contact.make ~time:4.0 ~a:0 ~b:3 ~bytes:100;
        (* 1 token left: wait phase, no spray *)
      ]
  in
  let workload = [ spec ~src:0 ~dst:9 () ] in
  let { Engine.report; env } =
    Engine.run ~protocol:(Spray_wait.make ~l:4 ()) ~trace ~workload ()
  in
  Alcotest.(check int) "two sprays" 2 report.Metrics.transfers;
  Alcotest.(check bool) "second relay got a copy" true
    (Buffer.mem env.Env.buffers.(2) 0);
  Alcotest.(check bool) "wait phase holds" false (Buffer.mem env.Env.buffers.(3) 0)

(* ------------------------------------------------------------------ *)
(* Random with acks vs without *)

let test_random_acks_reduce_waste () =
  (* Under storage pressure, purging delivered copies frees buffer space;
     opportunities are large enough that ack bytes are a minor cost. *)
  let rng = Rapid_prelude.Rng.create 5 in
  let trace =
    Rapid_mobility.Mobility.exponential rng ~num_nodes:8 ~mean_inter_meeting:20.0
      ~duration:600.0 ~opportunity_bytes:400
  in
  let workload =
    Workload.generate rng ~trace ~pkts_per_hour_per_dest:240.0 ~size:10 ()
  in
  let run protocol =
    (Engine.run
      ~options:{ Engine.default_options with buffer_bytes = Some 100; seed = 1 }
      ~protocol ~trace ~workload ()).Engine.report
  in
  let plain = run (Random_protocol.make ()) in
  let acked = run (Random_protocol.make ~with_acks:true ()) in
  Alcotest.(check bool) "acks purge something" true (acked.Metrics.ack_purges > 0);
  Alcotest.(check bool) "acks never hurt delivery badly" true
    (acked.Metrics.delivered * 10 >= plain.Metrics.delivered * 9)

(* ------------------------------------------------------------------ *)
(* Oracle forwarding *)

let test_oracle_forwards_single_copy () =
  (* Chain 0-1-2-3; the oracle must forward along it, keeping one copy. *)
  let trace =
    Trace.create ~num_nodes:4 ~duration:20.0
      [
        Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:100;
        Contact.make ~time:2.0 ~a:1 ~b:2 ~bytes:100;
        Contact.make ~time:3.0 ~a:2 ~b:3 ~bytes:100;
      ]
  in
  let workload = [ spec ~src:0 ~dst:3 () ] in
  let { Engine.report; env } =
    Engine.run
      ~protocol:(Oracle_forwarding.make ~trace ())
      ~trace ~workload ()
  in
  Alcotest.(check int) "delivered" 1 report.Metrics.delivered;
  check_close "delay" 3.0 report.Metrics.avg_delay;
  (* Single copy: no node still holds it after delivery. *)
  Array.iter
    (fun b -> if Buffer.mem b 0 then Alcotest.fail "stray copy left behind")
    env.Env.buffers

let test_oracle_refuses_dead_end () =
  (* Node 1 never reaches dst 3 later; the oracle must not forward to it. *)
  let trace =
    Trace.create ~num_nodes:4 ~duration:20.0
      [
        Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:100;
        (* dead end: 1 meets nobody afterwards *)
        Contact.make ~time:5.0 ~a:0 ~b:3 ~bytes:100;
        (* source delivers directly later *)
      ]
  in
  let workload = [ spec ~src:0 ~dst:3 () ] in
  let report =
    (Engine.run ~protocol:(Oracle_forwarding.make ~trace ()) ~trace ~workload ()).Engine.report
  in
  Alcotest.(check int) "delivered directly" 1 report.Metrics.delivered;
  check_close "kept for the direct contact" 5.0 report.Metrics.avg_delay;
  Alcotest.(check int) "exactly one transfer" 1 report.Metrics.transfers

let test_oracle_no_future_no_forward () =
  (* No path to the destination at all: the packet never moves. *)
  let trace =
    Trace.create ~num_nodes:3 ~duration:10.0
      [ Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:100 ]
  in
  let workload = [ spec ~src:0 ~dst:2 () ] in
  let report =
    (Engine.run ~protocol:(Oracle_forwarding.make ~trace ()) ~trace ~workload ()).Engine.report
  in
  Alcotest.(check int) "no transfers" 0 report.Metrics.transfers

(* ------------------------------------------------------------------ *)
(* Optimal *)

let test_contention_free_simple () =
  let trace =
    Trace.create ~num_nodes:3 ~duration:10.0
      [
        Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:10;
        Contact.make ~time:2.0 ~a:1 ~b:2 ~bytes:10;
      ]
  in
  let workload = [ spec ~src:0 ~dst:2 ~size:10 () ] in
  let v = Optimal.contention_free ~trace ~workload in
  Alcotest.(check int) "delivered" 1 v.Optimal.delivered;
  check_close "delay" 2.0 v.Optimal.avg_delay_all

let test_contention_free_size_limit () =
  (* Packet bigger than any opportunity cannot move. *)
  let trace =
    Trace.create ~num_nodes:2 ~duration:10.0
      [ Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:5 ]
  in
  let workload = [ spec ~src:0 ~dst:1 ~size:10 () ] in
  let v = Optimal.contention_free ~trace ~workload in
  Alcotest.(check int) "undeliverable" 0 v.Optimal.delivered;
  check_close "penalty" 10.0 v.Optimal.avg_delay_all

let test_ilp_contention () =
  (* One unit opportunity, two unit packets to the same dst: only one can
     cross; the ILP must pick exactly one and charge the other the horizon. *)
  let trace =
    Trace.create ~num_nodes:2 ~duration:10.0
      [ Contact.make ~time:2.0 ~a:0 ~b:1 ~bytes:1 ]
  in
  let workload =
    [ spec ~src:0 ~dst:1 ~size:1 (); spec ~src:0 ~dst:1 ~size:1 () ]
  in
  let v = Optimal.evaluate ~trace ~workload () in
  Alcotest.(check int) "one delivered" 1 v.Optimal.delivered;
  (* delays: delivered 2.0, undelivered 10.0 => avg 6.0 *)
  check_close "avg" 6.0 v.Optimal.avg_delay_all;
  (match v.Optimal.how with
  | Optimal.Ilp_exact -> ()
  | Optimal.Ilp_incumbent | Optimal.Bound -> Alcotest.fail "expected exact ILP")

let test_ilp_prefers_two_late_over_one_early () =
  (* Min total delay: delivering both packets late (t=5, delays 5+5=10) beats
     one early (t=1, delay 1) + one undelivered (10): 10 < 11. *)
  let trace =
    Trace.create ~num_nodes:3 ~duration:10.0
      [
        Contact.make ~time:1.0 ~a:0 ~b:2 ~bytes:1;
        Contact.make ~time:5.0 ~a:0 ~b:2 ~bytes:1;
        Contact.make ~time:5.5 ~a:0 ~b:2 ~bytes:1;
      ]
  in
  let workload =
    [ spec ~src:0 ~dst:2 ~size:1 (); spec ~src:0 ~dst:2 ~size:1 () ]
  in
  let v = Optimal.evaluate ~trace ~workload () in
  Alcotest.(check int) "both delivered" 2 v.Optimal.delivered

let test_ilp_multi_hop_with_contention () =
  (* Two packets, relay chain with a shared bottleneck link of size 1. *)
  let trace =
    Trace.create ~num_nodes:4 ~duration:20.0
      [
        Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:2;
        Contact.make ~time:2.0 ~a:1 ~b:3 ~bytes:1;
        (* bottleneck *)
        Contact.make ~time:5.0 ~a:0 ~b:3 ~bytes:1;
        (* direct fallback for the other *)
      ]
  in
  let workload =
    [ spec ~src:0 ~dst:3 ~size:1 (); spec ~src:0 ~dst:3 ~size:1 () ]
  in
  let v = Optimal.evaluate ~trace ~workload () in
  Alcotest.(check int) "both delivered" 2 v.Optimal.delivered;
  (* One at t=2 via relay, one at t=5 direct: avg 3.5. *)
  check_close "avg delay" 3.5 v.Optimal.avg_delay_all

let test_ilp_fallback_on_big_instance () =
  let rng = Rapid_prelude.Rng.create 1 in
  let trace =
    Rapid_mobility.Mobility.exponential rng ~num_nodes:10 ~mean_inter_meeting:5.0
      ~duration:500.0 ~opportunity_bytes:10
  in
  let workload =
    Workload.generate rng ~trace ~pkts_per_hour_per_dest:200.0 ~size:1 ()
  in
  let v = Optimal.evaluate ~max_vars:50 ~trace ~workload () in
  match v.Optimal.how with
  | Optimal.Bound -> ()
  | Optimal.Ilp_exact | Optimal.Ilp_incumbent ->
      Alcotest.fail "expected fallback to the bound"

let test_optimal_lower_bounds_protocols () =
  (* Optimal (even the bound) must not be worse than a protocol run. *)
  let rng = Rapid_prelude.Rng.create 9 in
  let trace =
    Rapid_mobility.Mobility.exponential rng ~num_nodes:6 ~mean_inter_meeting:40.0
      ~duration:600.0 ~opportunity_bytes:5000
  in
  let workload =
    Workload.generate rng ~trace ~pkts_per_hour_per_dest:30.0 ~size:10 ()
  in
  if workload <> [] then begin
    let bound = Optimal.contention_free ~trace ~workload in
    let epidemic =
      (Engine.run ~protocol:(Epidemic.make ()) ~trace ~workload ()).Engine.report
    in
    if bound.Optimal.avg_delay_all > epidemic.Metrics.avg_delay_all +. 1e-6 then
      Alcotest.failf "bound %.2f worse than epidemic %.2f"
        bound.Optimal.avg_delay_all epidemic.Metrics.avg_delay_all
  end

(* ------------------------------------------------------------------ *)
(* Property: ILP delivery count equals brute force on tiny instances. *)

let prop_ilp_matches_brute_deliveries =
  QCheck.Test.make ~name:"optimal ILP = brute force deliveries" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rapid_prelude.Rng.create seed in
      let num_nodes = 4 in
      let n_contacts = 2 + Rapid_prelude.Rng.int rng 4 in
      let contacts =
        List.init n_contacts (fun i ->
            let a = Rapid_prelude.Rng.int rng num_nodes in
            let rec pick () =
              let b = Rapid_prelude.Rng.int rng num_nodes in
              if b = a then pick () else b
            in
            Contact.make ~time:(float_of_int (i + 1)) ~a ~b:(pick ()) ~bytes:1)
      in
      let trace =
        Trace.create ~num_nodes ~duration:(float_of_int (n_contacts + 2)) contacts
      in
      let n_packets = 1 + Rapid_prelude.Rng.int rng 3 in
      let workload =
        List.init n_packets (fun _ ->
            let src = Rapid_prelude.Rng.int rng num_nodes in
            let rec pick () =
              let dst = Rapid_prelude.Rng.int rng num_nodes in
              if dst = src then pick () else dst
            in
            spec ~src ~dst:(pick ()) ~size:1 ())
      in
      let brute = Rapid_hardness.Edp_reduction.max_deliveries_brute trace workload in
      match
        Optimal.evaluate ~objective:Optimal.Max_deliveries ~max_bb_nodes:2000
          ~trace ~workload ()
      with
      | v -> v.Optimal.delivered = brute)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_ilp_matches_brute_deliveries ]

let () =
  Alcotest.run "routing"
    [
      ( "spray_wait",
        [
          Alcotest.test_case "copies limited" `Quick test_spray_wait_limits_copies;
          Alcotest.test_case "single copy waits" `Quick
            test_spray_wait_single_copy_waits;
          Alcotest.test_case "direct always" `Quick
            test_spray_wait_direct_delivery_always;
          Alcotest.test_case "duplicate meeting keeps tokens" `Quick
            test_spray_wait_duplicate_meeting_keeps_tokens;
        ] );
      ( "prophet",
        [
          Alcotest.test_case "predictability gate" `Quick
            test_prophet_requires_predictability;
          Alcotest.test_case "aging" `Quick test_prophet_aging;
          Alcotest.test_case "encounter update symmetric" `Quick
            test_prophet_encounter_update_symmetric;
        ] );
      ( "maxprop",
        [
          Alcotest.test_case "acks purge" `Quick test_maxprop_acks_purge;
          Alcotest.test_case "chain delivery" `Quick test_maxprop_delivers_chain;
          Alcotest.test_case "metadata charged" `Quick test_maxprop_metadata_charged;
          Alcotest.test_case "no acks without delivery" `Quick
            test_maxprop_no_acks_without_delivery;
        ] );
      ( "random",
        [ Alcotest.test_case "acks reduce waste" `Slow test_random_acks_reduce_waste ] );
      ( "oracle",
        [
          Alcotest.test_case "single copy chain" `Quick
            test_oracle_forwards_single_copy;
          Alcotest.test_case "refuses dead end" `Quick test_oracle_refuses_dead_end;
          Alcotest.test_case "no path no forward" `Quick
            test_oracle_no_future_no_forward;
        ] );
      ( "optimal",
        [
          Alcotest.test_case "contention free" `Quick test_contention_free_simple;
          Alcotest.test_case "size limit" `Quick test_contention_free_size_limit;
          Alcotest.test_case "ilp contention" `Quick test_ilp_contention;
          Alcotest.test_case "two late beat one early" `Quick
            test_ilp_prefers_two_late_over_one_early;
          Alcotest.test_case "multi-hop contention" `Quick
            test_ilp_multi_hop_with_contention;
          Alcotest.test_case "fallback on big instance" `Quick
            test_ilp_fallback_on_big_instance;
          Alcotest.test_case "bound below protocols" `Quick
            test_optimal_lower_bounds_protocols;
        ] );
      ("properties", qcheck_cases);
    ]
