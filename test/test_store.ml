(* Tests for Rapid_store and its Runners integration: digest stability
   (field order, process restarts), atomic-write crash artifacts,
   corrupted-cell degradation, gc size bounds, and warm-vs-cold point
   byte-equality through the runners under a parallel pool. *)

open Rapid_experiments
module Store = Rapid_store.Store
module Json = Rapid_obs.Json
module Metrics = Rapid_sim.Metrics

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* Fresh store directories under the test cwd (dune's sandbox). *)
let fresh_dir =
  let n = ref 0 in
  fun name ->
    incr n;
    let d = Printf.sprintf "_store_test_%d_%s_%d" (Unix.getpid ()) name !n in
    rm_rf d;
    d

let with_dir name f =
  let d = fresh_dir name in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let key_a =
  Json.Obj
    [
      ("kind", Json.String "test");
      ("load", Json.Float 2.5);
      ("nested", Json.Obj [ ("x", Json.Int 1); ("y", Json.Null) ]);
      ("tags", Json.List [ Json.String "a"; Json.Bool true ]);
    ]

(* Same document, every object permuted. *)
let key_a_permuted =
  Json.Obj
    [
      ("tags", Json.List [ Json.String "a"; Json.Bool true ]);
      ("nested", Json.Obj [ ("y", Json.Null); ("x", Json.Int 1) ]);
      ("load", Json.Float 2.5);
      ("kind", Json.String "test");
    ]

let test_digest_stability () =
  Alcotest.(check string)
    "field order is immaterial"
    (Store.digest_of_key key_a)
    (Store.digest_of_key key_a_permuted);
  Alcotest.(check bool)
    "different value, different digest" false
    (Store.digest_of_key key_a
    = Store.digest_of_key
        (Json.Obj [ ("kind", Json.String "test"); ("load", Json.Float 2.0) ]));
  (* Pinned digest: a fresh process (and any future version of the
     canonicalizer) must address existing cells identically, or every
     on-disk store silently goes cold. *)
  Alcotest.(check string) "stable across processes"
    "6505adacabe74a3ddc3dcae1c4d9e4b2"
    (Store.digest_of_key key_a)

let cell_path dir key =
  let digest = Store.digest_of_key key in
  Filename.concat (Filename.concat dir (String.sub digest 0 2)) (digest ^ ".json")

let payload = Json.Obj [ ("v", Json.List [ Json.Int 1; Json.Int 2 ]) ]

let test_find_store_roundtrip () =
  with_dir "roundtrip" @@ fun dir ->
  let s = Store.open_dir dir in
  Alcotest.(check bool) "miss before store" true (Store.find s ~key:key_a = None);
  Store.store s ~key:key_a payload;
  (match Store.find s ~key:key_a_permuted with
  | Some p ->
      Alcotest.(check string) "payload round-trips (permuted key)"
        (Json.to_string payload) (Json.to_string p)
  | None -> Alcotest.fail "expected hit");
  (* A second handle on the same directory sees the same cell. *)
  let s2 = Store.open_dir dir in
  Alcotest.(check bool) "second handle hits" true
    (Store.find s2 ~key:key_a <> None)

let test_atomic_crash_leftover () =
  with_dir "crash" @@ fun dir ->
  let s = Store.open_dir dir in
  Store.store s ~key:key_a payload;
  (* Simulate a writer that died mid-write: a truncated temp file in the
     cell's own shard directory. *)
  let tmp = Filename.concat (Filename.dirname (cell_path dir key_a)) "dead.17.3.tmp" in
  let oc = open_out tmp in
  output_string oc "{\"schema\":\"rapid-store/1\",\"dig";
  close_out oc;
  (match Store.find s ~key:key_a with
  | Some _ -> ()
  | None -> Alcotest.fail "tmp leftover must not shadow the real cell");
  let st = Store.stats s in
  Alcotest.(check int) "one complete cell" 1 st.Store.cells;
  Alcotest.(check int) "one crash leftover" 1 st.Store.tmp_files;
  (* gc under a generous bound only sweeps the leftover. *)
  let removed, _ = Store.gc s ~max_bytes:max_int in
  Alcotest.(check int) "no cells evicted" 0 removed;
  let st = Store.stats s in
  Alcotest.(check int) "leftover swept" 0 st.Store.tmp_files;
  Alcotest.(check int) "cell survives" 1 st.Store.cells;
  Alcotest.(check int) "clear removes the cell" 1 (Store.clear s);
  Alcotest.(check int) "store empty" 0 (Store.stats s).Store.cells

let test_corrupt_cell_recomputed () =
  with_dir "corrupt" @@ fun dir ->
  let s = Store.open_dir dir in
  Store.store s ~key:key_a payload;
  (* Flip the cell to garbage behind the store's back. *)
  let oc = open_out (cell_path dir key_a) in
  output_string oc "garbage, not json";
  close_out oc;
  let c0 = Store.corrupt_cells () and m0 = Store.misses () in
  Alcotest.(check bool) "corrupt cell reads as a miss" true
    (Store.find s ~key:key_a = None);
  Alcotest.(check int) "corrupt counted" 1 (Store.corrupt_cells () - c0);
  Alcotest.(check int) "also a miss" 1 (Store.misses () - m0);
  (* The recompute path overwrites the bad cell and service resumes. *)
  Store.store s ~key:key_a payload;
  let h0 = Store.hits () in
  Alcotest.(check bool) "rewritten cell hits" true
    (Store.find s ~key:key_a <> None);
  Alcotest.(check int) "hit counted" 1 (Store.hits () - h0)

let test_checksum_mismatch_is_corrupt () =
  with_dir "checksum" @@ fun dir ->
  let s = Store.open_dir dir in
  Store.store s ~key:key_a payload;
  (* Valid JSON, valid shape, wrong checksum: a bit-flipped payload. *)
  let path = cell_path dir key_a in
  let doc = Json.of_file path in
  let tampered =
    match doc with
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (function
               | "payload", _ -> ("payload", Json.Obj [ ("v", Json.Int 666) ])
               | f -> f)
             fields)
    | _ -> Alcotest.fail "cell is not an object"
  in
  Json.to_file path tampered;
  let c0 = Store.corrupt_cells () in
  Alcotest.(check bool) "tampered payload rejected" true
    (Store.find s ~key:key_a = None);
  Alcotest.(check int) "counted corrupt" 1 (Store.corrupt_cells () - c0)

let test_gc_size_bound () =
  with_dir "gc" @@ fun dir ->
  let s = Store.open_dir dir in
  let big = Json.String (String.make 2048 'x') in
  for i = 0 to 7 do
    Store.store s ~key:(Json.Obj [ ("i", Json.Int i) ]) big
  done;
  let st = Store.stats s in
  Alcotest.(check int) "eight cells" 8 st.Store.cells;
  let bound = st.Store.bytes / 2 in
  let removed, freed = Store.gc s ~max_bytes:bound in
  let st' = Store.stats s in
  Alcotest.(check bool) "under the bound" true (st'.Store.bytes <= bound);
  Alcotest.(check int) "accounting: cells" (8 - st'.Store.cells) removed;
  Alcotest.(check int) "accounting: bytes" (st.Store.bytes - st'.Store.bytes)
    freed;
  Alcotest.(check bool) "did not clear everything" true (st'.Store.cells > 0)

let small_params =
  { (Params.get Params.Quick) with Params.days = 2; trace_loads = [ 1.0 ] }

let point_bytes pt =
  Json.to_string (Json.List (List.map Metrics.report_to_json pt))

let test_reset_drops_store_handle () =
  with_dir "reset" @@ fun dir ->
  Runners.set_cache_dir (Some dir);
  Alcotest.(check bool) "handle installed" true (Runners.cache_store () <> None);
  Runners.reset_point_cache ();
  Alcotest.(check bool) "reset drops the handle" true
    (Runners.cache_store () = None)

let test_warm_equals_cold_parallel () =
  with_dir "warm" @@ fun dir ->
  let finally () =
    Rapid_par.Pool.set_jobs 1;
    Runners.reset_point_cache ()
  in
  Fun.protect ~finally @@ fun () ->
  Rapid_par.Pool.set_jobs 4;
  Runners.reset_point_cache ();
  Runners.set_cache_dir (Some dir);
  let w0 = Store.writes () in
  let cold =
    Runners.run_trace_point ~params:small_params ~protocol:Runners.spray_wait
      ~load:1.0 ()
  in
  Alcotest.(check int) "cold run wrote its cell" 1 (Store.writes () - w0);
  (* Drop both cache layers, re-attach the same directory: the "restart". *)
  Runners.reset_point_cache ();
  Runners.set_cache_dir (Some dir);
  let h0 = Store.hits () in
  let warm =
    Runners.run_trace_point ~params:small_params ~protocol:Runners.spray_wait
      ~load:1.0 ()
  in
  Alcotest.(check int) "warm run hit" 1 (Store.hits () - h0);
  Alcotest.(check string) "warm point byte-identical to cold"
    (point_bytes cold) (point_bytes warm)

let test_report_json_roundtrip () =
  Runners.reset_point_cache ();
  let pt =
    Runners.run_trace_point ~params:small_params ~protocol:Runners.random
      ~load:1.0 ()
  in
  List.iter
    (fun r ->
      let j = Metrics.report_to_json r in
      let j' = Metrics.report_to_json (Metrics.report_of_json j) in
      Alcotest.(check string) "report JSON round-trips exactly"
        (Json.to_string j) (Json.to_string j'))
    pt

let () =
  Alcotest.run "store"
    [
      ( "digest",
        [ Alcotest.test_case "stability" `Quick test_digest_stability ] );
      ( "cells",
        [
          Alcotest.test_case "find/store roundtrip" `Quick
            test_find_store_roundtrip;
          Alcotest.test_case "crash leftover ignored" `Quick
            test_atomic_crash_leftover;
          Alcotest.test_case "corrupt cell recomputed" `Quick
            test_corrupt_cell_recomputed;
          Alcotest.test_case "checksum mismatch" `Quick
            test_checksum_mismatch_is_corrupt;
          Alcotest.test_case "gc size bound" `Quick test_gc_size_bound;
        ] );
      ( "runners",
        [
          Alcotest.test_case "reset drops handle" `Quick
            test_reset_drops_store_handle;
          Alcotest.test_case "warm equals cold (jobs=4)" `Slow
            test_warm_equals_cold_parallel;
          Alcotest.test_case "report json roundtrip" `Slow
            test_report_json_roundtrip;
        ] );
    ]
