(* Tests for Rapid_trace (contacts, traces, workloads, serialization, the
   synthetic DieselNet generator) and Rapid_mobility. *)

open Rapid_prelude
open Rapid_trace
open Rapid_mobility

let check_close ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" what expected actual

let check_rel ?(tol = 0.05) what expected actual =
  let denom = max 1e-12 (Float.abs expected) in
  if Float.abs (expected -. actual) /. denom > tol then
    Alcotest.failf "%s: expected ~%.6g, got %.6g" what expected actual

(* ------------------------------------------------------------------ *)
(* Contact *)

let test_contact_validation () =
  (match Contact.make ~time:(-1.0) ~a:0 ~b:1 ~bytes:10 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative time accepted");
  (match Contact.make ~time:1.0 ~a:3 ~b:3 ~bytes:10 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "self-meeting accepted");
  let c = Contact.make ~time:5.0 ~a:1 ~b:2 ~bytes:100 in
  Alcotest.(check int) "peer of 1" 2 (Contact.peer_of c 1);
  Alcotest.(check int) "peer of 2" 1 (Contact.peer_of c 2);
  Alcotest.(check bool) "involves" true (Contact.involves c 1);
  Alcotest.(check bool) "not involves" false (Contact.involves c 0)

(* ------------------------------------------------------------------ *)
(* Trace *)

let mk_trace () =
  Trace.create ~num_nodes:4 ~duration:100.0
    [
      Contact.make ~time:30.0 ~a:1 ~b:2 ~bytes:500;
      Contact.make ~time:10.0 ~a:0 ~b:1 ~bytes:1000;
      Contact.make ~time:50.0 ~a:0 ~b:1 ~bytes:200;
    ]

let test_trace_sorted () =
  let t = mk_trace () in
  Alcotest.(check int) "contacts" 3 (Trace.num_contacts t);
  let times = Array.map (fun (c : Contact.t) -> c.Contact.time) t.contacts in
  Alcotest.(check (array (float 0.0))) "sorted" [| 10.0; 30.0; 50.0 |] times

let test_trace_active_default () =
  let t = mk_trace () in
  Alcotest.(check (array int)) "active = appearing nodes" [| 0; 1; 2 |] t.active

let test_trace_capacity () =
  let t = mk_trace () in
  Alcotest.(check int) "capacity" 1700 (Trace.total_capacity_bytes t)

let test_trace_contacts_between () =
  let t = mk_trace () in
  Alcotest.(check int) "0-1 contacts" 2 (List.length (Trace.contacts_between t 0 1));
  Alcotest.(check int) "1-2 contacts" 1 (List.length (Trace.contacts_between t 1 2));
  Alcotest.(check int) "0-3 contacts" 0 (List.length (Trace.contacts_between t 0 3))

let test_trace_validation () =
  (match
     Trace.create ~num_nodes:2 ~duration:10.0
       [ Contact.make ~time:20.0 ~a:0 ~b:1 ~bytes:1 ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "contact after horizon accepted");
  match
    Trace.create ~num_nodes:2 ~duration:10.0
      [ Contact.make ~time:1.0 ~a:0 ~b:5 ~bytes:1 ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range node accepted"

let test_trace_restrict_capacity () =
  let t = mk_trace () in
  let halved = Trace.restrict_capacity t ~f:(fun c -> c.Contact.bytes / 2) in
  Alcotest.(check int) "halved" 850 (Trace.total_capacity_bytes halved)

let test_trace_drop_contacts () =
  let t = mk_trace () in
  let dropped = Trace.drop_contacts t ~keep:(fun c -> c.Contact.time < 40.0) in
  Alcotest.(check int) "kept" 2 (Trace.num_contacts dropped)

(* ------------------------------------------------------------------ *)
(* Workload *)

let test_workload_rate () =
  let rng = Rng.create 1 in
  (* 3 active nodes => 6 ordered pairs; rate 6/h over 2 hours => 72 expected. *)
  let trace =
    Trace.create ~num_nodes:3 ~duration:7200.0
      ~active:[ 0; 1; 2 ]
      [ Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:1 ]
  in
  let total = ref 0 in
  for _ = 1 to 50 do
    let specs =
      Workload.generate rng ~trace ~pkts_per_hour_per_dest:6.0 ~size:1024 ()
    in
    total := !total + List.length specs
  done;
  check_rel ~tol:0.06 "expected packets" 72.0 (float_of_int !total /. 50.0)

let test_workload_sorted_and_valid () =
  let rng = Rng.create 2 in
  let trace =
    Trace.create ~num_nodes:5 ~duration:3600.0
      ~active:[ 0; 2; 4 ]
      [ Contact.make ~time:1.0 ~a:0 ~b:2 ~bytes:1 ]
  in
  let specs =
    Workload.generate rng ~trace ~pkts_per_hour_per_dest:20.0 ~size:512
      ~lifetime:100.0 ()
  in
  let rec check_sorted = function
    | (a : Workload.spec) :: (b :: _ as rest) ->
        if a.created > b.created then Alcotest.fail "not sorted";
        check_sorted rest
    | _ -> ()
  in
  check_sorted specs;
  List.iter
    (fun (s : Workload.spec) ->
      if s.src = s.dst then Alcotest.fail "src = dst";
      if not (List.mem s.src [ 0; 2; 4 ]) then Alcotest.fail "inactive src";
      if not (List.mem s.dst [ 0; 2; 4 ]) then Alcotest.fail "inactive dst";
      match s.deadline with
      | Some d -> check_close ~eps:1e-9 "deadline" (s.created +. 100.0) d
      | None -> Alcotest.fail "missing deadline")
    specs

let test_workload_parallel_batch () =
  let rng = Rng.create 3 in
  let trace =
    Trace.create ~num_nodes:6 ~duration:1000.0
      ~active:[ 0; 1; 2; 3 ]
      [ Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:1 ]
  in
  let batch = Workload.parallel_batch rng ~trace ~n:30 ~at:5.0 ~size:100 () in
  Alcotest.(check int) "count" 30 (List.length batch);
  List.iter
    (fun (s : Workload.spec) ->
      check_close ~eps:0.0 "same creation" 5.0 s.created;
      if s.src = s.dst then Alcotest.fail "src = dst")
    batch

let test_count_pairs () =
  let trace =
    Trace.create ~num_nodes:10 ~duration:10.0 ~active:[ 1; 2; 3; 4 ]
      [ Contact.make ~time:1.0 ~a:1 ~b:2 ~bytes:1 ]
  in
  Alcotest.(check int) "ordered pairs" 12 (Workload.count_pairs trace)

(* ------------------------------------------------------------------ *)
(* Trace_io *)

let test_io_roundtrip () =
  let t = mk_trace () in
  let t' = Trace_io.of_string (Trace_io.to_string t) in
  Alcotest.(check int) "nodes" t.num_nodes t'.num_nodes;
  check_close ~eps:1e-6 "duration" t.duration t'.duration;
  Alcotest.(check int) "contacts" (Trace.num_contacts t) (Trace.num_contacts t');
  Alcotest.(check (array int)) "active" t.active t'.active;
  Array.iteri
    (fun i (c : Contact.t) ->
      let c' = t'.contacts.(i) in
      check_close ~eps:1e-6 "time" c.time c'.Contact.time;
      Alcotest.(check int) "a" c.a c'.Contact.a;
      Alcotest.(check int) "b" c.b c'.Contact.b;
      Alcotest.(check int) "bytes" c.bytes c'.Contact.bytes)
    t.contacts

let test_io_file_roundtrip () =
  let t = mk_trace () in
  let path = Filename.temp_file "rapid_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save path t;
      let t' = Trace_io.load path in
      Alcotest.(check int) "contacts" (Trace.num_contacts t) (Trace.num_contacts t'))

let test_io_rejects_garbage () =
  (match Trace_io.of_string "nonsense" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "garbage accepted");
  (match Trace_io.of_string "rapid-trace 1\nduration 5.0\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "missing nodes accepted");
  match Trace_io.of_string "rapid-trace 1\nnodes 2\nduration 5\ncontact x 0 1 5\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "bad contact accepted"

let test_io_comments_and_blanks () =
  let s =
    "# a comment\nrapid-trace 1\n\nnodes 3\nduration 50\nactive 0 1\n\
     contact 1.5 0 1 100\n# trailing\n"
  in
  let t = Trace_io.of_string s in
  Alcotest.(check int) "nodes" 3 t.num_nodes;
  Alcotest.(check int) "contacts" 1 (Trace.num_contacts t);
  Alcotest.(check (array int)) "active" [| 0; 1 |] t.active

(* ------------------------------------------------------------------ *)
(* One_import *)

let one_sample =
  "# ONE connectivity report\n\
   10.0 CONN n1 n2 up\n\
   25.0 CONN n1 n2 down\n\
   30.0 CONN n3 n1 up\n\
   31.0 CONN n2 n3 up\n\
   40.0 CONN n3 n1 down\n"

let test_one_import_basic () =
  let trace, names = One_import.of_string ~bandwidth_bytes_per_sec:1000 one_sample in
  Alcotest.(check int) "three hosts" 3 trace.num_nodes;
  Alcotest.(check int) "three contacts" 3 (Trace.num_contacts trace);
  Alcotest.(check (list (pair string int)))
    "names in first-appearance order"
    [ ("n1", 0); ("n2", 1); ("n3", 2) ]
    names;
  (* First interval: 15 s * 1000 B/s. *)
  let c = trace.contacts.(0) in
  check_close ~eps:1e-9 "time" 10.0 c.Contact.time;
  Alcotest.(check int) "bytes" 15_000 c.Contact.bytes

let test_one_import_dangling_closed () =
  (* n2-n3 never goes down: closed at the last event (t=40), 9 s long. *)
  let trace, _ = One_import.of_string ~bandwidth_bytes_per_sec:100 one_sample in
  let n2n3 = Trace.contacts_between trace 1 2 in
  match n2n3 with
  | [ c ] -> Alcotest.(check int) "truncated size" 900 c.Contact.bytes
  | _ -> Alcotest.failf "expected one n2-n3 contact, got %d" (List.length n2n3)

let test_one_import_rejects_malformed () =
  List.iter
    (fun s ->
      match One_import.of_string s with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "accepted %S" s)
    [
      "abc CONN n1 n2 up\n";
      "5 CONN n1 n1 up\n";
      "5 CONN n1 n2 sideways\n";
      "5 CONN n1 n2 down\n" (* down without up *);
      "5 CONN n1 n2 up\n4 CONN n1 n3 up\n" (* out of order *);
      "5 CONN n1 n2 up\n6 CONN n1 n2 up\n" (* double up *);
    ]

let test_one_import_runs_through_engine () =
  let trace, _ = One_import.of_string one_sample in
  let rng = Rng.create 1 in
  let workload =
    Workload.generate rng ~trace ~pkts_per_hour_per_dest:3600.0 ~size:100 ()
  in
  let report =
    (Rapid_sim.Engine.run
      ~protocol:(Rapid_routing.Epidemic.make ())
      ~trace ~workload ()).Rapid_sim.Engine.report
  in
  Alcotest.(check bool) "some packets created" true
    (report.Rapid_sim.Metrics.created > 0)

(* ------------------------------------------------------------------ *)
(* Dieselnet *)

let test_dieselnet_deterministic () =
  let d1 = Dieselnet.day ~seed:7 ~day:3 () in
  let d2 = Dieselnet.day ~seed:7 ~day:3 () in
  Alcotest.(check int) "same contacts" (Trace.num_contacts d1) (Trace.num_contacts d2);
  Alcotest.(check (array int)) "same schedule" d1.active d2.active;
  let d3 = Dieselnet.day ~seed:7 ~day:4 () in
  if
    Trace.num_contacts d1 = Trace.num_contacts d3
    && d1.active = d3.active
  then Alcotest.fail "different days should differ"

let test_dieselnet_calibration () =
  (* Averaged over many days, meetings and capacity should match the
     deployment's aggregates (Table 3). *)
  let days = Dieselnet.days ~seed:11 ~n:40 () in
  let meetings =
    Stats.mean (List.map (fun d -> float_of_int (Trace.num_contacts d)) days)
  in
  let mb =
    Stats.mean
      (List.map (fun d -> float_of_int (Trace.total_capacity_bytes d) /. 1e6) days)
  in
  check_rel ~tol:0.25 "meetings/day ~147.5" 147.5 meetings;
  check_rel ~tol:0.35 "MB/day ~261" 261.4 mb

let test_dieselnet_scheduled_subset () =
  let d = Dieselnet.day ~seed:1 ~day:0 () in
  let n = Array.length d.active in
  if n < 10 || n > 30 then Alcotest.failf "odd schedule size %d" n;
  Alcotest.(check int) "fleet size" 40 d.num_nodes

let test_dieselnet_some_pairs_never_meet () =
  (* Route structure must leave some active pairs without direct contact,
     exercising transitive meeting estimation. *)
  let d = Dieselnet.days ~seed:3 ~n:5 () |> List.hd in
  let active = d.active in
  let never = ref 0 and total = ref 0 in
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          if a < b then begin
            incr total;
            if Trace.contacts_between d a b = [] then incr never
          end)
        active)
    active;
  if !never = 0 then Alcotest.fail "every pair met: no transitivity exercised";
  if !never = !total then Alcotest.fail "no pair ever met"

let test_route_distance_circular () =
  (* Routes loop through town: 0 and num_routes-1 are adjacent. The old
     linear |a - b| put them at distance 7 in an 8-route system, i.e.
     affinity zero, silently disconnecting every wrap-around pair. *)
  let d = Dieselnet.route_distance ~num_routes:8 in
  Alcotest.(check int) "wrap-around adjacency" 1 (d 0 7);
  Alcotest.(check int) "same route" 0 (d 3 3);
  Alcotest.(check int) "antipodal" 4 (d 0 4);
  Alcotest.(check int) "near pair" 2 (d 6 0);
  Alcotest.(check int) "symmetric" (d 2 7) (d 7 2);
  (* Circular distance can never exceed half the loop. *)
  for a = 0 to 7 do
    for b = 0 to 7 do
      if d a b > 4 then Alcotest.failf "distance %d-%d exceeds half loop" a b
    done
  done

let test_dieselnet_wraparound_pairs_meet () =
  (* Fails under the old linear route distance: buses on routes 0 and 7
     would never contact each other even though the routes are adjacent
     on the ground. *)
  let params = Dieselnet.default_params in
  let routes = Dieselnet.route_assignment ~params ~seed:3 in
  let wrap_meetings = ref 0 and checked_days = 10 in
  List.iter
    (fun (t : Trace.t) ->
      Array.iter
        (fun (c : Contact.t) ->
          let ra = routes.(c.Contact.a) and rb = routes.(c.Contact.b) in
          let linear = abs (ra - rb) in
          let circular =
            Dieselnet.route_distance ~num_routes:params.Dieselnet.num_routes ra rb
          in
          (* Every contacting pair must have positive affinity under the
             circular metric... *)
          if Dieselnet.route_affinity circular <= 0.0 then
            Alcotest.failf "contact between affinity-zero routes %d,%d" ra rb;
          (* ...and some contacts must span the wrap-around seam, where
             the linear metric says the pair should never meet. *)
          if linear >= 4 && circular <= 3 then incr wrap_meetings)
        t.Trace.contacts)
    (Dieselnet.days ~seed:3 ~n:checked_days ());
  if !wrap_meetings = 0 then
    Alcotest.fail "no wrap-around pair ever met: route space is not circular"

let test_deployment_noise () =
  let rng = Rng.create 4 in
  let d = Dieselnet.day ~seed:5 ~day:0 () in
  let noisy = Dieselnet.with_deployment_noise rng d in
  if Trace.num_contacts noisy > Trace.num_contacts d then
    Alcotest.fail "noise added contacts";
  if Trace.total_capacity_bytes noisy >= Trace.total_capacity_bytes d then
    Alcotest.fail "noise did not reduce capacity"

(* ------------------------------------------------------------------ *)
(* Mobility *)

let test_exponential_mobility_rate () =
  let rng = Rng.create 6 in
  (* 5 nodes, 10 pairs, mean 50s over 5000s => ~100 meetings/pair... total
     = 10 pairs * 100 = 1000. *)
  let t =
    Mobility.exponential rng ~num_nodes:5 ~mean_inter_meeting:50.0
      ~duration:5000.0 ~opportunity_bytes:100
  in
  check_rel ~tol:0.12 "meeting count" 1000.0 (float_of_int (Trace.num_contacts t))

let test_powerlaw_total_matches_exponential () =
  let rng = Rng.create 7 in
  let rates =
    Mobility.pair_rates_powerlaw rng ~num_nodes:10 ~mean_inter_meeting:30.0 ()
  in
  let total = ref 0.0 in
  for a = 0 to 9 do
    for b = a + 1 to 9 do
      total := !total +. rates.(a).(b)
    done
  done;
  (* 45 pairs at rate 1/30 each. *)
  check_close ~eps:1e-6 "normalized total" (45.0 /. 30.0) !total

let test_powerlaw_skew () =
  let rng = Rng.create 8 in
  let rates =
    Mobility.pair_rates_powerlaw rng ~num_nodes:10 ~mean_inter_meeting:30.0 ()
  in
  let flat = ref [] in
  for a = 0 to 9 do
    for b = a + 1 to 9 do
      flat := rates.(a).(b) :: !flat
    done
  done;
  let arr = Array.of_list !flat in
  Array.sort compare arr;
  let lo = arr.(0) and hi = arr.(Array.length arr - 1) in
  if hi /. lo < 10.0 then
    Alcotest.failf "rates not skewed enough: %g..%g" lo hi

let test_powerlaw_trace_runs () =
  let rng = Rng.create 9 in
  let t =
    Mobility.powerlaw rng ~num_nodes:20 ~mean_inter_meeting:45.0 ~duration:900.0
      ~opportunity_bytes:102400 ()
  in
  Alcotest.(check int) "all nodes" 20 t.num_nodes;
  if Trace.num_contacts t = 0 then Alcotest.fail "no meetings generated"

let test_community_boost () =
  let rng = Rng.create 10 in
  let t =
    Mobility.community rng ~num_nodes:12 ~num_communities:3
      ~mean_inter_meeting:20.0 ~duration:4000.0 ~opportunity_bytes:100 ()
  in
  if Trace.num_contacts t = 0 then Alcotest.fail "no meetings generated"

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_io_roundtrip =
  QCheck.Test.make ~name:"trace io roundtrip" ~count:50
    QCheck.(small_list (triple (int_bound 5) (int_bound 5) (int_bound 10_000)))
    (fun raw ->
      let contacts =
        List.filter_map
          (fun (a, b, bytes) ->
            if a = b then None
            else Some (Contact.make ~time:(float_of_int bytes /. 100.0) ~a ~b ~bytes))
          raw
      in
      let t = Trace.create ~num_nodes:6 ~duration:200.0 contacts in
      let t' = Trace_io.of_string (Trace_io.to_string t) in
      Trace.num_contacts t = Trace.num_contacts t'
      && Trace.total_capacity_bytes t = Trace.total_capacity_bytes t')

let prop_workload_within_horizon =
  QCheck.Test.make ~name:"workload creations within horizon" ~count:50
    QCheck.(pair (int_range 0 1000) (float_range 1.0 20.0))
    (fun (seed, rate) ->
      let rng = Rng.create seed in
      let trace =
        Trace.create ~num_nodes:4 ~duration:1800.0 ~active:[ 0; 1; 2 ]
          [ Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:1 ]
      in
      let specs =
        Workload.generate rng ~trace ~pkts_per_hour_per_dest:rate ~size:10 ()
      in
      List.for_all
        (fun (s : Workload.spec) -> s.created >= 0.0 && s.created < 1800.0)
        specs)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_io_roundtrip; prop_workload_within_horizon ]

let () =
  Alcotest.run "trace"
    [
      ("contact", [ Alcotest.test_case "validation" `Quick test_contact_validation ]);
      ( "trace",
        [
          Alcotest.test_case "sorted" `Quick test_trace_sorted;
          Alcotest.test_case "active default" `Quick test_trace_active_default;
          Alcotest.test_case "capacity" `Quick test_trace_capacity;
          Alcotest.test_case "contacts between" `Quick test_trace_contacts_between;
          Alcotest.test_case "validation" `Quick test_trace_validation;
          Alcotest.test_case "restrict capacity" `Quick test_trace_restrict_capacity;
          Alcotest.test_case "drop contacts" `Quick test_trace_drop_contacts;
        ] );
      ( "workload",
        [
          Alcotest.test_case "rate" `Slow test_workload_rate;
          Alcotest.test_case "sorted and valid" `Quick test_workload_sorted_and_valid;
          Alcotest.test_case "parallel batch" `Quick test_workload_parallel_batch;
          Alcotest.test_case "count pairs" `Quick test_count_pairs;
        ] );
      ( "trace_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_io_rejects_garbage;
          Alcotest.test_case "comments and blanks" `Quick test_io_comments_and_blanks;
        ] );
      ( "one_import",
        [
          Alcotest.test_case "basic" `Quick test_one_import_basic;
          Alcotest.test_case "dangling closed" `Quick test_one_import_dangling_closed;
          Alcotest.test_case "rejects malformed" `Quick
            test_one_import_rejects_malformed;
          Alcotest.test_case "runs through engine" `Quick
            test_one_import_runs_through_engine;
        ] );
      ( "dieselnet",
        [
          Alcotest.test_case "deterministic" `Quick test_dieselnet_deterministic;
          Alcotest.test_case "calibration" `Slow test_dieselnet_calibration;
          Alcotest.test_case "scheduled subset" `Quick test_dieselnet_scheduled_subset;
          Alcotest.test_case "pairs never meet" `Quick
            test_dieselnet_some_pairs_never_meet;
          Alcotest.test_case "route distance circular" `Quick
            test_route_distance_circular;
          Alcotest.test_case "wrap-around pairs meet" `Quick
            test_dieselnet_wraparound_pairs_meet;
          Alcotest.test_case "deployment noise" `Quick test_deployment_noise;
        ] );
      ( "mobility",
        [
          Alcotest.test_case "exponential rate" `Slow test_exponential_mobility_rate;
          Alcotest.test_case "powerlaw normalization" `Quick
            test_powerlaw_total_matches_exponential;
          Alcotest.test_case "powerlaw skew" `Quick test_powerlaw_skew;
          Alcotest.test_case "powerlaw trace" `Quick test_powerlaw_trace_runs;
          Alcotest.test_case "community" `Quick test_community_boost;
        ] );
      ("properties", qcheck_cases);
    ]
