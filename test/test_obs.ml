(* Tests for Rapid_obs: the JSON writer, counter/timer registries, and
   tracer sinks. *)

module Json = Rapid_obs.Json
module Counter = Rapid_obs.Counter
module Timer = Rapid_obs.Timer
module Tracer = Rapid_obs.Tracer

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_scalars () =
  Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
  Alcotest.(check string) "true" "true" (Json.to_string (Json.Bool true));
  Alcotest.(check string) "false" "false" (Json.to_string (Json.Bool false));
  Alcotest.(check string) "int" "42" (Json.to_string (Json.Int 42));
  Alcotest.(check string) "negative int" "-7" (Json.to_string (Json.Int (-7)));
  Alcotest.(check string) "float" "1.5" (Json.to_string (Json.Float 1.5));
  Alcotest.(check string) "integral float keeps point" "3.0"
    (Json.to_string (Json.Float 3.0))

let test_json_non_finite_is_null () =
  (* JSON has no nan/inf; the metrics layer relies on them serializing as
     null (e.g. max_delay over zero deliveries). *)
  List.iter
    (fun f ->
      Alcotest.(check string) "non-finite" "null" (Json.to_string (Json.Float f)))
    [ nan; infinity; neg_infinity ]

let test_json_string_escaping () =
  Alcotest.(check string) "plain" {|"abc"|} (Json.to_string (Json.String "abc"));
  Alcotest.(check string) "quote and backslash" {|"a\"b\\c"|}
    (Json.to_string (Json.String {|a"b\c|}));
  Alcotest.(check string) "newline tab cr" {|"a\nb\tc\r"|}
    (Json.to_string (Json.String "a\nb\tc\r"));
  Alcotest.(check string) "control char" {|"\u0001"|}
    (Json.to_string (Json.String "\001"))

let test_json_nesting () =
  let doc =
    Json.Obj
      [
        ("xs", Json.List [ Json.Int 1; Json.Int 2 ]);
        ("empty", Json.Obj []);
        ("s", Json.String "v");
      ]
  in
  Alcotest.(check string) "compact"
    {|{"xs":[1,2],"empty":{},"s":"v"}|}
    (Json.to_string doc);
  (* Pretty form must contain the same atoms, just indented. *)
  let pretty = Json.to_string_pretty doc in
  Alcotest.(check bool) "pretty mentions key" true
    (Astring.String.is_infix ~affix:{|"xs": [|} pretty)

let test_json_to_file () =
  let path = Filename.temp_file "rapid_obs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Json.to_file path (Json.Obj [ ("k", Json.Int 1) ]);
      let ic = open_in path in
      let len = in_channel_length ic in
      let content = really_input_string ic len in
      close_in ic;
      Alcotest.(check bool) "trailing newline" true
        (String.length content > 0 && content.[String.length content - 1] = '\n'))

(* ------------------------------------------------------------------ *)
(* Json reader *)

let test_json_parse_scalars () =
  Alcotest.(check bool) "null" true (Json.of_string "null" = Json.Null);
  Alcotest.(check bool) "true" true (Json.of_string "true" = Json.Bool true);
  Alcotest.(check bool) "false" true (Json.of_string " false " = Json.Bool false);
  Alcotest.(check bool) "int" true (Json.of_string "42" = Json.Int 42);
  Alcotest.(check bool) "negative" true (Json.of_string "-7" = Json.Int (-7));
  (* A decimal point or exponent makes it a Float, otherwise an Int. *)
  Alcotest.(check bool) "float" true (Json.of_string "1.5" = Json.Float 1.5);
  Alcotest.(check bool) "exponent" true (Json.of_string "2e3" = Json.Float 2000.0);
  Alcotest.(check bool) "string" true (Json.of_string {|"hi"|} = Json.String "hi")

let test_json_parse_roundtrip () =
  (* Everything the writer emits must read back structurally equal —
     check_bench.exe depends on this for BENCH.json. *)
  let doc =
    Json.Obj
      [
        ("schema", Json.String "rapid-bench/1");
        ("xs", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null; Json.Bool true ]);
        ("nested", Json.Obj [ ("s", Json.String "a\"b\\c\n\t") ]);
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
      ]
  in
  Alcotest.(check bool) "compact roundtrip" true
    (Json.of_string (Json.to_string doc) = doc);
  Alcotest.(check bool) "pretty roundtrip" true
    (Json.of_string (Json.to_string_pretty doc) = doc)

let test_json_parse_escapes () =
  Alcotest.(check bool) "named escapes" true
    (Json.of_string {|"a\nb\tc\r\/\"\\"|} = Json.String "a\nb\tc\r/\"\\");
  (* \u escapes decode to UTF-8 bytes. *)
  Alcotest.(check bool) "ascii \\u" true
    (Json.of_string {|"A"|} = Json.String "A");
  Alcotest.(check bool) "two-byte \\u" true
    (Json.of_string {|"é"|} = Json.String "\xc3\xa9")

let test_json_parse_errors () =
  let fails s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected Parse_error on %S" s
  in
  fails "";
  fails "{";
  fails "[1,]";
  fails {|{"a":1,}|};
  fails {|{"a" 1}|};
  fails "nul";
  fails {|"unterminated|};
  (* Trailing garbage after a complete value is rejected too. *)
  fails "1 2";
  fails "{} x"

let test_json_of_file () =
  let path = Filename.temp_file "rapid_obs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let doc = Json.Obj [ ("k", Json.List [ Json.Int 1; Json.Int 2 ]) ] in
      Json.to_file path doc;
      Alcotest.(check bool) "file roundtrip" true (Json.of_file path = doc))

let test_json_member () =
  let doc = Json.Obj [ ("a", Json.Int 1); ("b", Json.Null) ] in
  Alcotest.(check bool) "present" true (Json.member "a" doc = Some (Json.Int 1));
  Alcotest.(check bool) "null member is found" true
    (Json.member "b" doc = Some Json.Null);
  Alcotest.(check bool) "absent" true (Json.member "c" doc = None);
  Alcotest.(check bool) "non-object" true (Json.member "a" (Json.Int 1) = None)

(* ------------------------------------------------------------------ *)
(* Counter *)

let test_counter_registry () =
  let c = Counter.create "test.obs.counter" in
  Counter.reset c;
  Alcotest.(check int) "starts at zero" 0 (Counter.value c);
  Counter.incr c;
  Counter.add c 4;
  Alcotest.(check int) "accumulates" 5 (Counter.value c);
  (* Same name resolves to the same cell (module-level creates are
     idempotent across functor instantiations). *)
  let c' = Counter.create "test.obs.counter" in
  Counter.incr c';
  Alcotest.(check int) "shared cell" 6 (Counter.value c);
  Alcotest.(check (option int)) "snapshot sees it" (Some 6)
    (List.assoc_opt "test.obs.counter" (Counter.snapshot ()));
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.value c)

let test_counter_snapshot_sorted () =
  ignore (Counter.create "test.obs.b");
  ignore (Counter.create "test.obs.a");
  let names = List.map fst (Counter.snapshot ()) in
  Alcotest.(check (list string)) "sorted" (List.sort compare names) names

(* ------------------------------------------------------------------ *)
(* Timer *)

let test_timer () =
  let t = Timer.create "test.obs.timer" in
  let n0 = Timer.count t in
  let x = Timer.time t (fun () -> 41 + 1) in
  Alcotest.(check int) "returns result" 42 x;
  Alcotest.(check int) "activation counted" (n0 + 1) (Timer.count t);
  let before = Timer.total_s t in
  Timer.add_s t 1.5;
  if Timer.total_s t < before +. 1.5 then Alcotest.fail "add_s lost time";
  Alcotest.(check int) "add_s counted" (n0 + 2) (Timer.count t);
  (* Exceptions still get timed. *)
  (match Timer.time t (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  Alcotest.(check int) "raise counted" (n0 + 3) (Timer.count t)

(* ------------------------------------------------------------------ *)
(* Tracer *)

let ev_contact = Tracer.Contact { time = 1.0; a = 0; b = 1; bytes = 10 }
let ev_delivery = Tracer.Delivery { time = 2.0; packet = 3; delay = 1.5 }
let ev_drop = Tracer.Drop { time = 3.0; node = 1; packet = 4 }

let test_tracer_null () =
  Alcotest.(check bool) "null disabled" false (Tracer.enabled Tracer.null);
  (* Emitting into the null tracer is a no-op, not an error. *)
  Tracer.emit Tracer.null ev_contact

let test_tracer_collector () =
  let c = Tracer.Collector.create ~keep_events:2 () in
  let tr = Tracer.Collector.tracer c in
  Alcotest.(check bool) "enabled" true (Tracer.enabled tr);
  List.iter (Tracer.emit tr) [ ev_contact; ev_delivery; ev_drop; ev_drop ];
  Alcotest.(check int) "total counts beyond cap" 4 (Tracer.Collector.total c);
  Alcotest.(check int) "event log capped" 2
    (List.length (Tracer.Collector.events c));
  Alcotest.(check (list (pair string int)))
    "per-label counts"
    [ ("contact", 1); ("delivery", 1); ("drop", 2) ]
    (Tracer.Collector.counts c)

let test_tracer_event_labels () =
  Alcotest.(check string) "contact" "contact" (Tracer.event_label ev_contact);
  Alcotest.(check string) "delivery" "delivery" (Tracer.event_label ev_delivery);
  Alcotest.(check string) "ack_purge" "ack_purge"
    (Tracer.event_label (Tracer.Ack_purge { time = 0.0; node = 0; packet = 0 }))

let test_tracer_jsonl () =
  let path = Filename.temp_file "rapid_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let tr = Tracer.Jsonl.tracer oc in
      Tracer.emit tr ev_contact;
      Tracer.emit tr ev_delivery;
      close_out oc;
      let ic = open_in path in
      let l1 = input_line ic in
      let l2 = input_line ic in
      let eof = match input_line ic with exception End_of_file -> true | _ -> false in
      close_in ic;
      Alcotest.(check bool) "one object per line" true eof;
      Alcotest.(check bool) "labelled" true
        (Astring.String.is_prefix ~affix:{|{"event":"contact"|} l1);
      Alcotest.(check bool) "second labelled" true
        (Astring.String.is_prefix ~affix:{|{"event":"delivery"|} l2))

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "non-finite is null" `Quick
            test_json_non_finite_is_null;
          Alcotest.test_case "string escaping" `Quick test_json_string_escaping;
          Alcotest.test_case "nesting" `Quick test_json_nesting;
          Alcotest.test_case "to_file" `Quick test_json_to_file;
          Alcotest.test_case "parse scalars" `Quick test_json_parse_scalars;
          Alcotest.test_case "parse roundtrip" `Quick test_json_parse_roundtrip;
          Alcotest.test_case "parse escapes" `Quick test_json_parse_escapes;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "of_file" `Quick test_json_of_file;
          Alcotest.test_case "member" `Quick test_json_member;
        ] );
      ( "counter",
        [
          Alcotest.test_case "registry" `Quick test_counter_registry;
          Alcotest.test_case "snapshot sorted" `Quick test_counter_snapshot_sorted;
        ] );
      ("timer", [ Alcotest.test_case "accumulation" `Quick test_timer ]);
      ( "tracer",
        [
          Alcotest.test_case "null" `Quick test_tracer_null;
          Alcotest.test_case "collector" `Quick test_tracer_collector;
          Alcotest.test_case "event labels" `Quick test_tracer_event_labels;
          Alcotest.test_case "jsonl" `Quick test_tracer_jsonl;
        ] );
    ]
