(* Tests for Rapid_faults and the engine's fault plumbing: spec parsing,
   plan determinism, fault-rate-0 transparency, reboot semantics, the
   per-contact budget invariants under every protocol with faults on, and
   byte-identity of faulted points across --jobs settings. *)

open Rapid_trace
open Rapid_sim
module Faults = Rapid_faults.Faults
module Pool = Rapid_par.Pool
module Tracer = Rapid_obs.Tracer
open Rapid_experiments

(* ------------------------------------------------------------------ *)
(* Spec parsing *)

let test_parse () =
  (match Faults.parse "" with
  | Ok c -> Alcotest.(check bool) "empty is none" true (Faults.is_none c)
  | Error e -> Alcotest.fail e);
  (match Faults.parse "reboots=2,truncate=0.1,metaloss=0.25,noshow=0.05,seed=9" with
  | Ok c ->
      Alcotest.(check (float 0.0)) "reboots" 2.0 c.Faults.reboots_per_node;
      Alcotest.(check (float 0.0)) "truncate" 0.1 c.Faults.truncate_prob;
      Alcotest.(check (float 0.0)) "metaloss" 0.25 c.Faults.meta_drop_prob;
      Alcotest.(check (float 0.0)) "noshow" 0.05 c.Faults.contact_drop_prob;
      Alcotest.(check int) "seed" 9 c.Faults.seed;
      Alcotest.(check bool) "not none" false (Faults.is_none c)
  | Error e -> Alcotest.fail e);
  (match Faults.parse "seed=7" with
  | Ok c ->
      Alcotest.(check bool) "zero rates are none whatever the seed" true
        (Faults.is_none c)
  | Error e -> Alcotest.fail e);
  (match Faults.parse "bogus=1" with
  | Ok _ -> Alcotest.fail "unknown key accepted"
  | Error _ -> ());
  (match Faults.parse "truncate=1.5" with
  | Ok _ -> Alcotest.fail "probability > 1 accepted"
  | Error _ -> ());
  match Faults.parse "reboots=2,truncate=0.1,metaloss=0.25,noshow=0.05,seed=9" with
  | Ok c -> (
      (* spec_string round-trips. *)
      match Faults.parse (Faults.spec_string c) with
      | Ok c' -> Alcotest.(check bool) "round trip" true (c = c')
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Plan determinism *)

let small_trace ~seed =
  let rng = Rapid_prelude.Rng.create seed in
  Rapid_mobility.Mobility.exponential rng ~num_nodes:6 ~mean_inter_meeting:30.0
    ~duration:300.0 ~opportunity_bytes:50

let severe =
  {
    Faults.seed = 11;
    reboots_per_node = 2.0;
    truncate_prob = 0.3;
    meta_drop_prob = 0.3;
    contact_drop_prob = 0.2;
  }

let test_plan_deterministic () =
  let trace = small_trace ~seed:3 in
  let p1 = Faults.plan severe ~run_seed:5 ~trace in
  let p2 = Faults.plan severe ~run_seed:5 ~trace in
  Alcotest.(check bool) "same reboot schedule" true
    (Faults.reboots p1 = Faults.reboots p2);
  let n = Trace.num_contacts trace in
  for i = 0 to n - 1 do
    Alcotest.(check bool) "same skip" (Faults.contact_skipped p1 i)
      (Faults.contact_skipped p2 i);
    Alcotest.(check int) "same capacity"
      (Faults.contact_capacity p1 i ~bytes:1000)
      (Faults.contact_capacity p2 i ~bytes:1000);
    Alcotest.(check bool) "same meta fate" (Faults.contact_meta_ok p1 i)
      (Faults.contact_meta_ok p2 i)
  done;
  (* A different run seed draws a different realization. *)
  let p3 = Faults.plan severe ~run_seed:6 ~trace in
  Alcotest.(check bool) "run seed matters" false
    (Faults.reboots p1 = Faults.reboots p3);
  (* The schedule is sorted by time. *)
  let r = Faults.reboots p1 in
  Alcotest.(check bool) "some reboots drawn" true (Array.length r > 0);
  Array.iteri
    (fun i (t, _) ->
      if i > 0 then
        Alcotest.(check bool) "sorted" true (fst r.(i - 1) <= t))
    r

let test_null_plan () =
  let trace = small_trace ~seed:3 in
  let p = Faults.plan { Faults.none with seed = 99 } ~run_seed:5 ~trace in
  Alcotest.(check bool) "inactive" false (Faults.active p);
  Alcotest.(check int) "no reboots" 0 (Array.length (Faults.reboots p));
  Alcotest.(check bool) "no skips" false (Faults.contact_skipped p 0);
  Alcotest.(check int) "full capacity" 77 (Faults.contact_capacity p 0 ~bytes:77);
  Alcotest.(check bool) "meta ok" true (Faults.contact_meta_ok p 0)

(* ------------------------------------------------------------------ *)
(* Fault-rate 0 is the plain engine; nonzero severity is not *)

let small_workload ~trace ~seed =
  let rng = Rapid_prelude.Rng.create (seed + 1000) in
  Workload.generate rng ~trace ~pkts_per_hour_per_dest:120.0 ~size:10
    ~lifetime:60.0 ()

let run_with ~faults ~protocol ~trace ~workload =
  (Engine.run
     ~options:
       {
         Engine.buffer_bytes = Some 40;
         meta_cap_frac = None;
         seed = 2;
         faults;
       }
     ~protocol ~trace ~workload ())
    .Engine.report

let test_zero_rate_transparent () =
  let trace = small_trace ~seed:4 in
  let workload = small_workload ~trace ~seed:4 in
  let clean =
    run_with ~faults:Faults.none
      ~protocol:(Rapid_routing.Epidemic.make ())
      ~trace ~workload
  in
  let zero =
    run_with
      ~faults:{ Faults.none with seed = 12345 }
      ~protocol:(Rapid_routing.Epidemic.make ())
      ~trace ~workload
  in
  Alcotest.(check bool) "zero-rate run identical" true (compare clean zero = 0);
  let faulted =
    run_with ~faults:severe
      ~protocol:(Rapid_routing.Epidemic.make ())
      ~trace ~workload
  in
  Alcotest.(check bool) "severe faults change the outcome" true
    (compare clean faulted <> 0)

(* ------------------------------------------------------------------ *)
(* Reboots wipe the buffer before the protocol hears about it *)

type reboot_call = { r_now : float; r_node : int; r_lost : int; r_left : int }

let recording_protocol calls : Protocol.packed =
  (module struct
    type t = Env.t

    let name = "recorder"
    let create env = env
    let on_created _ ~now:_ _ = ()
    let on_contact _ (_ : Protocol.contact_info) = 0
    let next_packet _ ~now:_ ~sender:_ ~receiver:_ ~budget:_ = None
    let on_transfer _ ~now:_ ~sender:_ ~receiver:_ _ ~delivered:_ = ()
    let drop_candidate _ ~now:_ ~node:_ ~incoming:_ = None
    let on_dropped _ ~now:_ ~node:_ _ = ()

    let on_reboot env ~now ~node ~lost =
      calls :=
        {
          r_now = now;
          r_node = node;
          r_lost = List.length lost;
          r_left = Buffer.used env.Env.buffers.(node);
        }
        :: !calls
  end)

let test_reboot_wipes_buffer () =
  let trace =
    Trace.create ~num_nodes:4 ~duration:200.0
      ~active:[ 0; 1; 2; 3 ]
      [ Contact.make ~time:199.0 ~a:0 ~b:1 ~bytes:0 ]
  in
  (* One packet per node, parked forever (the recorder never forwards). *)
  let workload =
    List.init 4 (fun src ->
        {
          Workload.src;
          dst = (src + 1) mod 4;
          size = 10;
          created = 0.5;
          deadline = None;
        })
  in
  let faults = { Faults.none with seed = 11; reboots_per_node = 3.0 } in
  let calls = ref [] in
  let collector = Tracer.Collector.create () in
  let result =
    Engine.run
      ~options:{ Engine.default_options with faults }
      ~tracer:(Tracer.Collector.tracer collector)
      ~protocol:(recording_protocol calls) ~trace ~workload ()
  in
  let calls = List.rev !calls in
  let plan = Faults.plan faults ~run_seed:Engine.default_options.Engine.seed ~trace in
  Alcotest.(check int) "every scheduled reboot fired"
    (Array.length (Faults.reboots plan))
    (List.length calls);
  Alcotest.(check bool) "reboots happened" true (List.length calls > 0);
  List.iter
    (fun c ->
      Alcotest.(check int) "buffer empty when the protocol hears" 0 c.r_left)
    calls;
  (* The hook sees exactly the schedule, in order. *)
  List.iteri
    (fun i c ->
      let t, node = (Faults.reboots plan).(i) in
      Alcotest.(check (float 0.0)) "time" t c.r_now;
      Alcotest.(check int) "node" node c.r_node)
    calls;
  (* Each node's first reboot loses the packet it was holding; losses are
     never storage drops. *)
  let total_lost = List.fold_left (fun acc c -> acc + c.r_lost) 0 calls in
  Alcotest.(check bool) "some copies lost" true (total_lost > 0);
  Alcotest.(check int) "no drops recorded" 0 result.Engine.report.Metrics.drops;
  (* Tracer saw one reboot event per firing. *)
  let reboot_events =
    match List.assoc_opt "reboot" (Tracer.Collector.counts collector) with
    | Some n -> n
    | None -> 0
  in
  Alcotest.(check int) "reboot events" (List.length calls) reboot_events

(* ------------------------------------------------------------------ *)
(* Budget invariants under faults, for every protocol *)

let protocols () =
  [
    Rapid_routing.Epidemic.make ();
    Rapid_routing.Direct.make ();
    Rapid_routing.Random_protocol.make ();
    Rapid_routing.Random_protocol.make ~with_acks:true ~summary_vector:true ();
    Rapid_routing.Spray_wait.make ~l:4 ();
    Rapid_routing.Prophet.make ();
    Rapid_routing.Maxprop.make ();
    Rapid_core.Rapid.make_default Rapid_core.Metric.Average_delay;
  ]

let severity_of = function
  | 0 -> Faults.none
  | 1 -> { Faults.none with seed = 5; meta_drop_prob = 0.5 }
  | 2 ->
      { Faults.none with seed = 5; truncate_prob = 0.5; contact_drop_prob = 0.3 }
  | _ -> { severe with reboots_per_node = 1.0 }

(* Replay the event stream: within each contact, metadata plus transfer
   bytes must fit the effective (possibly truncated) capacity; nothing
   moves during a suppressed contact; global byte totals must agree with
   the report. The engine additionally raises on over-budget or repeated
   offers, so merely completing the run checks the per-offer rules. *)
let prop_faulted_budget_invariants =
  QCheck.Test.make ~name:"faulted contacts respect effective budgets" ~count:40
    QCheck.(pair (int_range 0 10_000) (pair (int_range 0 7) (int_range 0 3)))
    (fun (seed, (proto_idx, sev_idx)) ->
      let trace = small_trace ~seed in
      if Trace.num_contacts trace = 0 then true
      else begin
        let workload = small_workload ~trace ~seed in
        let collector = Tracer.Collector.create ~keep_events:200_000 () in
        let report =
          (Engine.run
             ~options:
               {
                 Engine.buffer_bytes = Some 40;
                 meta_cap_frac = None;
                 seed;
                 faults = severity_of sev_idx;
               }
             ~tracer:(Tracer.Collector.tracer collector)
             ~protocol:(List.nth (protocols ()) proto_idx)
             ~trace ~workload ())
            .Engine.report
        in
        let in_contact = ref false in
        let cap = ref 0 in
        let spent = ref 0 in
        let ok = ref true in
        let total_data = ref 0 in
        let total_meta = ref 0 in
        let close_group () = if !spent > !cap then ok := false in
        List.iter
          (fun ev ->
            match ev with
            | Tracer.Contact { bytes; _ } ->
                close_group ();
                in_contact := true;
                cap := bytes;
                spent := 0
            | Tracer.Contact_suppressed _ ->
                close_group ();
                in_contact := false;
                cap := 0;
                spent := 0
            | Tracer.Contact_truncated { effective; bytes; _ } ->
                if not !in_contact then ok := false;
                if effective > bytes then ok := false;
                cap := effective
            | Tracer.Metadata { bytes; _ } ->
                if not !in_contact then ok := false;
                spent := !spent + bytes;
                total_meta := !total_meta + bytes
            | Tracer.Transfer { bytes; _ } ->
                if not !in_contact then ok := false;
                spent := !spent + bytes;
                total_data := !total_data + bytes
            | Tracer.Metadata_dropped _ | Tracer.Reboot _ | Tracer.Delivery _
            | Tracer.Drop _ | Tracer.Ack_purge _ | Tracer.Store_hit _
            | Tracer.Store_miss _ | Tracer.Store_write _ | Tracer.Store_corrupt _
              ->
                ())
          (Tracer.Collector.events collector);
        close_group ();
        !ok
        && report.Metrics.data_bytes = !total_data
        && report.Metrics.metadata_bytes = !total_meta
        && report.Metrics.delivered <= report.Metrics.created
      end)

(* ------------------------------------------------------------------ *)
(* Faulted points are byte-identical across --jobs settings *)

let quick2 =
  let q = Params.get Params.Quick in
  {
    q with
    Params.days = 2;
    dieselnet =
      {
        q.Params.dieselnet with
        Rapid_trace.Dieselnet.fleet_size = 20;
        mean_scheduled = 6;
        day_seconds = 3600.0;
        meetings_per_day = 40.0;
      };
  }

let with_global_jobs jobs f =
  Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_jobs 1) f

let faulted_points () =
  Runners.reset_point_cache ();
  List.map
    (fun proto ->
      ( proto.Runners.label,
        Runners.run_trace_point ~params:quick2 ~protocol:proto ~load:6.0
          ~spec:{ Runners.default_spec with Runners.faults = severe }
          () ))
    (Runners.comparison_set Rapid_core.Metric.Average_delay)

let test_faulted_jobs_determinism () =
  let seq = faulted_points () in
  let par = with_global_jobs 4 faulted_points in
  List.iter2
    (fun (label, a) (label', b) ->
      Alcotest.(check string) "same protocol order" label label';
      Alcotest.(check bool)
        (label ^ ": faulted jobs=4 = jobs=1")
        true
        (compare a b = 0))
    seq par

let test_point_cache_keys_faults () =
  (* A faulted point must not alias the clean one in the cache... *)
  Runners.reset_point_cache ();
  let proto = Runners.spray_wait in
  let clean = Runners.run_trace_point ~params:quick2 ~protocol:proto ~load:6.0 () in
  let faulted =
    Runners.run_trace_point ~params:quick2 ~protocol:proto ~load:6.0
      ~spec:{ Runners.default_spec with Runners.faults = severe }
      ()
  in
  Alcotest.(check bool) "distinct cells" true (compare clean faulted <> 0);
  (* ...while an all-zero-rate config aliases it exactly. *)
  let zero =
    Runners.run_trace_point ~params:quick2 ~protocol:proto ~load:6.0
      ~spec:
        {
          Runners.default_spec with
          Runners.faults = { Faults.none with seed = 31 };
        }
      ()
  in
  Alcotest.(check bool) "zero-rate aliases clean" true (compare clean zero = 0)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_faulted_budget_invariants ]

let () =
  Alcotest.run "faults"
    [
      ("spec", [ Alcotest.test_case "parse" `Quick test_parse ]);
      ( "plan",
        [
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "null plan" `Quick test_null_plan;
        ] );
      ( "engine",
        [
          Alcotest.test_case "zero-rate transparent" `Quick
            test_zero_rate_transparent;
          Alcotest.test_case "reboot wipes buffer" `Quick
            test_reboot_wipes_buffer;
        ] );
      ("invariants", qcheck_cases);
      ( "parallel",
        [
          Alcotest.test_case "faulted points across jobs" `Quick
            test_faulted_jobs_determinism;
          Alcotest.test_case "cache keyed by faults" `Quick
            test_point_cache_keys_faults;
        ] );
    ]
