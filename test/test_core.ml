(* Tests for Rapid_core: meeting matrix, Estimate-Delay, replica database,
   and the RAPID protocol end to end (all three metrics, channel variants,
   ack behaviour, storage policy, and "beats Random under contention"). *)

open Rapid_trace
open Rapid_sim
open Rapid_core

let check_close ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" what expected actual

let spec ~src ~dst ?(size = 10) ?(created = 0.0) ?deadline () =
  { Workload.src; dst; size; created; deadline }

let packet ~id ~src ~dst ?(size = 10) ?(created = 0.0) ?deadline () =
  Packet.of_spec ~id (spec ~src ~dst ~size ~created ?deadline ())

(* ------------------------------------------------------------------ *)
(* Meeting matrix *)

let test_matrix_direct_average () =
  let m = Meeting_matrix.create ~num_nodes:4 in
  Meeting_matrix.observe m ~now:10.0 ~a:0 ~b:1;
  Meeting_matrix.observe m ~now:30.0 ~a:1 ~b:0;
  (* First gap = 10 (from start), second = 20: average 15. *)
  (match Meeting_matrix.direct_mean m 0 1 with
  | Some v -> check_close "avg gap" 15.0 v
  | None -> Alcotest.fail "no mean");
  Alcotest.(check (option (float 0.0))) "unmet pair" None
    (Meeting_matrix.direct_mean m 2 3)

let test_matrix_symmetry () =
  let m = Meeting_matrix.create ~num_nodes:3 in
  Meeting_matrix.observe m ~now:5.0 ~a:2 ~b:0;
  Alcotest.(check (option (float 1e-9)))
    "symmetric"
    (Meeting_matrix.direct_mean m 0 2)
    (Meeting_matrix.direct_mean m 2 0)

let test_matrix_transitive () =
  let m = Meeting_matrix.create ~num_nodes:4 in
  (* 0-1 mean 10, 1-2 mean 20; 0 never meets 2 directly. *)
  Meeting_matrix.observe m ~now:10.0 ~a:0 ~b:1;
  Meeting_matrix.observe m ~now:20.0 ~a:1 ~b:2;
  check_close "2-hop estimate" 30.0 (Meeting_matrix.expected_meeting_time m 0 2);
  Alcotest.(check bool) "unreachable is infinite" true
    (Meeting_matrix.expected_meeting_time m 0 3 = infinity)

let test_matrix_three_hops () =
  let m = Meeting_matrix.create ~num_nodes:5 in
  Meeting_matrix.observe m ~now:10.0 ~a:0 ~b:1;
  Meeting_matrix.observe m ~now:10.0 ~a:1 ~b:2;
  Meeting_matrix.observe m ~now:10.0 ~a:2 ~b:3;
  (* Chain 0-1-2-3 needs 3 hops: reachable at h=3, not at h=2. *)
  Alcotest.(check bool) "h=2 unreachable" true
    (Meeting_matrix.expected_meeting_time ~h:2 m 0 3 = infinity);
  check_close "h=3 estimate" 30.0
    (Meeting_matrix.expected_meeting_time ~h:3 m 0 3);
  (* 4 is disconnected even at h=3. *)
  Alcotest.(check bool) "h=3 disconnected" true
    (Meeting_matrix.expected_meeting_time ~h:3 m 0 4 = infinity)

let test_matrix_transitive_vs_direct () =
  let m = Meeting_matrix.create ~num_nodes:3 in
  Meeting_matrix.observe m ~now:100.0 ~a:0 ~b:2;
  Meeting_matrix.observe m ~now:10.0 ~a:0 ~b:1;
  Meeting_matrix.observe m ~now:20.0 ~a:1 ~b:2;
  (* Direct 0-2 mean 100 vs via-1 10+20=30: transitive wins. *)
  check_close "min path" 30.0 (Meeting_matrix.expected_meeting_time m 0 2)

let row_builds_counter = Rapid_obs.Counter.create "meeting_matrix.row_builds"

let test_matrix_same_instant_keeps_cache () =
  (* Regression: a same-instant repeat meeting adds no gap observation, so
     no mean changes and the memoized rows must survive — the old code
     dropped the whole closure cache on every observe. *)
  let m = Meeting_matrix.create ~num_nodes:4 in
  Meeting_matrix.observe m ~now:10.0 ~a:0 ~b:1;
  Meeting_matrix.observe m ~now:20.0 ~a:1 ~b:2;
  let before = Meeting_matrix.expected_meeting_time m 0 2 in
  let builds0 = Rapid_obs.Counter.value row_builds_counter in
  Meeting_matrix.observe m ~now:20.0 ~a:1 ~b:2;
  let after = Meeting_matrix.expected_meeting_time m 0 2 in
  Alcotest.(check int) "no row rebuilt" builds0
    (Rapid_obs.Counter.value row_builds_counter);
  check_close "estimate unchanged" before after;
  (* A later (informative) meeting does invalidate. *)
  Meeting_matrix.observe m ~now:30.0 ~a:1 ~b:2;
  ignore (Meeting_matrix.expected_meeting_time m 0 2);
  Alcotest.(check int) "informative gap rebuilds" (builds0 + 1)
    (Rapid_obs.Counter.value row_builds_counter)

(* The seed implementation's full O(h·n³) closure, kept as the reference
   the lazy per-source rows must reproduce bit for bit. *)
let reference_closure m ~n ~h =
  let d1 =
    Array.init n (fun a ->
        Array.init n (fun b ->
            if a = b then 0.0
            else
              match Meeting_matrix.direct_mean m a b with
              | Some v -> v
              | None -> infinity))
  in
  let extend prev =
    Array.init n (fun a ->
        Array.init n (fun b ->
            if a = b then 0.0
            else begin
              let best = ref prev.(a).(b) in
              for y = 0 to n - 1 do
                if y <> a && y <> b then begin
                  let via = d1.(a).(y) +. prev.(y).(b) in
                  if via < !best then best := via
                end
              done;
              !best
            end))
  in
  let rec go acc k = if k >= h then acc else go (extend acc) (k + 1) in
  go d1 1

let prop_lazy_rows_equal_full_closure =
  QCheck.Test.make ~name:"lazy rows = full closure (h=1..3)" ~count:60
    QCheck.(pair (int_range 4 10) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rapid_prelude.Rng.create seed in
      let m = Meeting_matrix.create ~num_nodes:n in
      (* Random sparse meeting history: ~half the pairs never meet (their
         cells stay at infinity), some pairs meet twice so the mean is a
         true average, and means span three orders of magnitude. *)
      for a = 0 to n - 1 do
        for b = a + 1 to n - 1 do
          if Rapid_prelude.Rng.float rng < 0.5 then begin
            let t0 = 1.0 +. (999.0 *. Rapid_prelude.Rng.float rng) in
            Meeting_matrix.observe m ~now:t0 ~a ~b;
            if Rapid_prelude.Rng.float rng < 0.3 then
              Meeting_matrix.observe m
                ~now:(t0 +. 1.0 +. (99.0 *. Rapid_prelude.Rng.float rng))
                ~a ~b
          end
        done
      done;
      List.for_all
        (fun h ->
          let closure = reference_closure m ~n ~h in
          let ok = ref true in
          for a = 0 to n - 1 do
            for b = 0 to n - 1 do
              let want = closure.(a).(b) in
              let got = Meeting_matrix.expected_meeting_time ~h m a b in
              (* Bit-exact, including infinity for unreachable pairs. *)
              if got <> want then ok := false
            done
          done;
          !ok)
        [ 1; 2; 3 ])

let test_matrix_global_mean () =
  let m = Meeting_matrix.create ~num_nodes:3 in
  Alcotest.(check (option (float 0.0))) "empty" None (Meeting_matrix.global_mean m);
  Meeting_matrix.observe m ~now:10.0 ~a:0 ~b:1;
  Meeting_matrix.observe m ~now:30.0 ~a:1 ~b:2;
  match Meeting_matrix.global_mean m with
  | Some v -> check_close "mean of 10 and 30" 20.0 v
  | None -> Alcotest.fail "expected mean"

(* ------------------------------------------------------------------ *)
(* Estimate-Delay *)

let entry ?(received = 0.0) ?(hops = 0) p = { Buffer.packet = p; received; hops }

let test_n_meetings_position () =
  let dst = 9 in
  let mk id created = packet ~id ~src:0 ~dst ~size:100 ~created () in
  let entries = [ entry (mk 1 0.0); entry (mk 2 10.0); entry (mk 3 20.0) ] in
  (* Oldest (head of queue) with B=100: 1 meeting. *)
  Alcotest.(check int) "head" 1
    (Estimate_delay.n_meetings ~entries ~packet:(mk 1 0.0) ~avg_transfer_bytes:100.0);
  (* Last in queue: 300 bytes ahead incl. itself => 3 meetings. *)
  Alcotest.(check int) "tail" 3
    (Estimate_delay.n_meetings ~entries ~packet:(mk 3 20.0) ~avg_transfer_bytes:100.0);
  (* Bigger opportunities help. *)
  Alcotest.(check int) "large B" 1
    (Estimate_delay.n_meetings ~entries ~packet:(mk 3 20.0) ~avg_transfer_bytes:1000.0)

let test_n_meetings_ignores_other_destinations () =
  let mk id dst created = packet ~id ~src:0 ~dst ~size:100 ~created () in
  let entries = [ entry (mk 1 5 0.0); entry (mk 2 9 10.0) ] in
  Alcotest.(check int) "other-dest packets skipped" 1
    (Estimate_delay.n_meetings ~entries ~packet:(mk 2 9 10.0)
       ~avg_transfer_bytes:100.0)

let test_n_meetings_would_be_position () =
  (* Packet not yet buffered: position it would take. *)
  let mk id created = packet ~id ~src:0 ~dst:9 ~size:100 ~created () in
  let entries = [ entry (mk 1 0.0) ] in
  let newcomer = mk 99 50.0 in
  Alcotest.(check int) "behind existing" 2
    (Estimate_delay.n_meetings ~entries ~packet:newcomer ~avg_transfer_bytes:100.0)

let test_rates_and_delay () =
  (* Eq. 8/9: two holders, E=100 n=1 and E=200 n=2 => R = 1/100 + 1/400. *)
  let r =
    Estimate_delay.rate_of_holder ~meeting_time:100.0 ~n_meet:1
    +. Estimate_delay.rate_of_holder ~meeting_time:200.0 ~n_meet:2
  in
  check_close "rate" (0.01 +. 0.0025) r;
  check_close "A(i)" (1.0 /. 0.0125) (Estimate_delay.expected_delay ~rate:r);
  check_close "P within" (1.0 -. exp (-0.0125 *. 50.0))
    (Estimate_delay.delivery_prob_within ~rate:r ~horizon:50.0);
  check_close "dead horizon" 0.0
    (Estimate_delay.delivery_prob_within ~rate:r ~horizon:(-1.0));
  Alcotest.(check bool) "infinite meeting = zero rate" true
    (Estimate_delay.rate_of_holder ~meeting_time:infinity ~n_meet:1 = 0.0);
  Alcotest.(check bool) "zero rate = infinite delay" true
    (Estimate_delay.expected_delay ~rate:0.0 = infinity)

let test_more_replicas_less_delay () =
  let rate k = float_of_int k *. Estimate_delay.rate_of_holder ~meeting_time:100.0 ~n_meet:1 in
  let d k = Estimate_delay.expected_delay ~rate:(rate k) in
  Alcotest.(check bool) "monotone" true (d 1 > d 2 && d 2 > d 4);
  check_close "uniform k replicas" (100.0 /. 4.0) (d 4)

(* ------------------------------------------------------------------ *)
(* Replica db *)

let test_replica_db_basics () =
  let db = Replica_db.create () in
  let p = packet ~id:1 ~src:0 ~dst:2 () in
  Replica_db.set_holder db ~packet:p ~holder_id:0 ~n_meet:1 ~now:1.0;
  Replica_db.set_holder db ~packet:p ~holder_id:3 ~n_meet:2 ~now:2.0;
  Alcotest.(check int) "two holders" 2 (List.length (Replica_db.holders db ~packet_id:1));
  Alcotest.(check int) "size" 2 (Replica_db.size db);
  Replica_db.remove_holder db ~packet_id:1 ~holder_id:0;
  Alcotest.(check int) "one left" 1 (List.length (Replica_db.holders db ~packet_id:1));
  Replica_db.remove_packet db ~packet_id:1;
  Alcotest.(check int) "gone" 0 (List.length (Replica_db.holders db ~packet_id:1))

let test_replica_db_merge_freshness () =
  let db = Replica_db.create () in
  let p = packet ~id:1 ~src:0 ~dst:2 () in
  Replica_db.set_holder db ~packet:p ~holder_id:0 ~n_meet:5 ~now:10.0;
  (* Stale gossip rejected. *)
  let stale = { Replica_db.n_meet = 1; updated_at = 5.0 } in
  Alcotest.(check bool) "stale rejected" false
    (Replica_db.merge db ~packet:p ~holder_id:0 ~holder:stale);
  (* Fresh gossip applied. *)
  let fresh = { Replica_db.n_meet = 2; updated_at = 20.0 } in
  Alcotest.(check bool) "fresh applied" true
    (Replica_db.merge db ~packet:p ~holder_id:0 ~holder:fresh);
  match Replica_db.holders db ~packet_id:1 with
  | [ (0, h) ] -> Alcotest.(check int) "n_meet updated" 2 h.Replica_db.n_meet
  | _ -> Alcotest.fail "unexpected holders"

let test_replica_db_log_truncation () =
  (* The update log is bounded: after far more updates than the cap, the
     db still works and recent entries remain visible. *)
  let db = Replica_db.create () in
  let p = packet ~id:1 ~src:0 ~dst:2 () in
  for i = 1 to 40_000 do
    Replica_db.set_holder db ~packet:p ~holder_id:(i mod 7) ~n_meet:1
      ~now:(float_of_int i)
  done;
  (* Entries newer than t=39_990: holders updated in the last 10 steps. *)
  let recent = Replica_db.entries_since db 39_990.0 in
  Alcotest.(check bool) "recent entries visible" true (List.length recent > 0);
  List.iter
    (fun (e : Replica_db.entry) ->
      if e.Replica_db.holder.Replica_db.updated_at <= 39_990.0 then
        Alcotest.fail "stale entry leaked")
    recent;
  (* All 7 holders still stored (the records table is not truncated). *)
  Alcotest.(check int) "holders intact" 7
    (List.length (Replica_db.holders db ~packet_id:1))

let test_replica_db_entries_since () =
  let db = Replica_db.create () in
  let p = packet ~id:1 ~src:0 ~dst:2 () in
  let q = packet ~id:2 ~src:0 ~dst:3 () in
  Replica_db.set_holder db ~packet:p ~holder_id:0 ~n_meet:1 ~now:1.0;
  Replica_db.set_holder db ~packet:q ~holder_id:0 ~n_meet:1 ~now:5.0;
  Alcotest.(check int) "all" 2 (List.length (Replica_db.entries_since db 0.0));
  Alcotest.(check int) "recent only" 1 (List.length (Replica_db.entries_since db 2.0));
  Alcotest.(check int) "none" 0 (List.length (Replica_db.entries_since db 5.0))

let test_replica_db_versions () =
  let db = Replica_db.create () in
  let p = packet ~id:3 ~src:0 ~dst:1 () in
  Alcotest.(check int) "unknown packet reads 0" 0
    (Replica_db.version db ~packet_id:3);
  Replica_db.set_holder db ~packet:p ~holder_id:0 ~n_meet:1 ~now:1.0;
  let v1 = Replica_db.version db ~packet_id:3 in
  Alcotest.(check bool) "stored state implies version >= 1" true (v1 >= 1);
  let applied =
    Replica_db.merge db ~packet:p ~holder_id:0
      ~holder:{ Replica_db.n_meet = 9; updated_at = 0.5 }
  in
  Alcotest.(check bool) "stale merge rejected" false applied;
  Alcotest.(check int) "rejected merge keeps version" v1
    (Replica_db.version db ~packet_id:3);
  let applied =
    Replica_db.merge db ~packet:p ~holder_id:4
      ~holder:{ Replica_db.n_meet = 2; updated_at = 2.0 }
  in
  Alcotest.(check bool) "fresh merge applied" true applied;
  let v2 = Replica_db.version db ~packet_id:3 in
  Alcotest.(check bool) "applied merge bumps" true (v2 > v1);
  Replica_db.remove_holder db ~packet_id:3 ~holder_id:7;
  Alcotest.(check int) "absent removal keeps version" v2
    (Replica_db.version db ~packet_id:3);
  Replica_db.remove_holder db ~packet_id:3 ~holder_id:4;
  let v3 = Replica_db.version db ~packet_id:3 in
  Alcotest.(check bool) "present removal bumps" true (v3 > v2);
  Replica_db.remove_packet db ~packet_id:3;
  let v4 = Replica_db.version db ~packet_id:3 in
  Alcotest.(check bool) "forgetting bumps" true (v4 > v3);
  Replica_db.remove_packet db ~packet_id:3;
  Alcotest.(check int) "forgetting the unknown keeps version" v4
    (Replica_db.version db ~packet_id:3);
  (* The sequence survives the forget: a packet re-learned from gossip
     can never coincide with a stamp taken before it was forgotten. *)
  Replica_db.set_holder db ~packet:p ~holder_id:2 ~n_meet:1 ~now:3.0;
  Alcotest.(check bool) "re-learning continues the sequence" true
    (Replica_db.version db ~packet_id:3 > v4)

let test_matrix_row_version_content_stamped () =
  let m = Meeting_matrix.create ~num_nodes:6 in
  (* Connected pair (0,1); pair (4,5) in its own component. *)
  Meeting_matrix.observe m ~now:100.0 ~a:0 ~b:1;
  Meeting_matrix.observe m ~now:300.0 ~a:0 ~b:1;
  let v1 = Meeting_matrix.row_version m 1 in
  Alcotest.(check int) "stable across queries" v1
    (Meeting_matrix.row_version m 1);
  (* A mean change in the disconnected component forces a rebuild of
     row 1 (the shared epoch moved) but cannot move any of its cells:
     the content version must not bump, so believed-rate stamps built on
     it survive. *)
  Meeting_matrix.observe m ~now:50.0 ~a:4 ~b:5;
  Meeting_matrix.observe m ~now:150.0 ~a:4 ~b:5;
  Alcotest.(check int) "value-identical rebuild keeps version" v1
    (Meeting_matrix.row_version m 1);
  (* Moving the (0,1) mean moves row 1's cells: the version bumps. *)
  Meeting_matrix.observe m ~now:1300.0 ~a:0 ~b:1;
  Alcotest.(check bool) "moved row bumps version" true
    (Meeting_matrix.row_version m 1 > v1)

(* ------------------------------------------------------------------ *)
(* RAPID end-to-end *)

let rapid ?(metric = Metric.Average_delay) ?channel ?use_acks () =
  let params = Rapid.default_params metric in
  let params =
    match channel with Some c -> { params with Rapid.channel = c } | None -> params
  in
  let params =
    match use_acks with Some a -> { params with Rapid.use_acks = a } | None -> params
  in
  Rapid.make params

let test_rapid_direct_delivery () =
  let trace =
    Trace.create ~num_nodes:2 ~duration:10.0
      [ Contact.make ~time:3.0 ~a:0 ~b:1 ~bytes:1000 ]
  in
  let workload = [ spec ~src:0 ~dst:1 () ] in
  let report = (Engine.run ~protocol:(rapid ()) ~trace ~workload ()).Engine.report in
  Alcotest.(check int) "delivered" 1 report.Metrics.delivered;
  check_close "delay" 3.0 report.Metrics.avg_delay

let test_rapid_replicates_after_learning () =
  (* Repeating pattern: 0 meets 1, then 1 meets 2. After the first cycle
     the matrix knows 1 meets 2, so the second packet is replicated via 1
     and delivered. *)
  let cycle t = [
    Contact.make ~time:t ~a:0 ~b:1 ~bytes:1000;
    Contact.make ~time:(t +. 5.0) ~a:1 ~b:2 ~bytes:1000;
  ]
  in
  let trace =
    Trace.create ~num_nodes:3 ~duration:100.0
      (cycle 10.0 @ cycle 30.0 @ cycle 50.0)
  in
  let workload = [ spec ~src:0 ~dst:2 ~created:20.0 () ] in
  let report = (Engine.run ~protocol:(rapid ()) ~trace ~workload ()).Engine.report in
  Alcotest.(check int) "delivered via relay" 1 report.Metrics.delivered

let test_rapid_cold_start_direct_only () =
  (* With an empty matrix RAPID must not replicate blindly. *)
  let trace =
    Trace.create ~num_nodes:3 ~duration:10.0
      [ Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:1000 ]
  in
  let workload = [ spec ~src:0 ~dst:2 () ] in
  let report = (Engine.run ~protocol:(rapid ()) ~trace ~workload ()).Engine.report in
  Alcotest.(check int) "no blind replication" 0 report.Metrics.transfers

let test_rapid_acks_purge_replicas () =
  let cycle t = [
    Contact.make ~time:t ~a:0 ~b:1 ~bytes:1000;
    Contact.make ~time:(t +. 2.0) ~a:1 ~b:2 ~bytes:1000;
    Contact.make ~time:(t +. 4.0) ~a:0 ~b:2 ~bytes:1000;
  ]
  in
  let trace =
    Trace.create ~num_nodes:3 ~duration:100.0
      (List.concat_map cycle [ 10.0; 20.0; 30.0; 40.0 ])
  in
  let workload = [ spec ~src:0 ~dst:2 ~created:15.0 () ] in
  let { Engine.report; env } =
    Engine.run ~protocol:(rapid ()) ~trace ~workload ()
  in
  Alcotest.(check int) "delivered" 1 report.Metrics.delivered;
  (* After delivery + subsequent contacts, no stale copies remain. *)
  Array.iteri
    (fun node b ->
      if node <> 2 && Buffer.mem b 0 then
        Alcotest.failf "stale copy at node %d" node)
    env.Env.buffers

let test_rapid_deadline_skips_dead_packets () =
  (* A packet whose deadline passed must not be replicated (utility 0). *)
  let cycle t = [
    Contact.make ~time:t ~a:0 ~b:1 ~bytes:1000;
    Contact.make ~time:(t +. 5.0) ~a:1 ~b:2 ~bytes:1000;
  ]
  in
  let trace =
    Trace.create ~num_nodes:3 ~duration:200.0
      (List.concat_map cycle [ 10.0; 30.0; 50.0; 70.0 ])
  in
  (* Deadline at t=35: already dead at the t=50 meeting; alive at t=30. *)
  let workload =
    [ spec ~src:0 ~dst:2 ~created:45.0 ~deadline:46.0 () ]
  in
  let report =
    (Engine.run ~protocol:(rapid ~metric:Metric.Missed_deadlines ()) ~trace
      ~workload ()).Engine.report
  in
  Alcotest.(check int) "dead packet not replicated" 0 report.Metrics.transfers

let test_rapid_metric3_prioritizes_old () =
  (* Under max-delay, when bandwidth admits one packet the older one goes:
     a 1200-byte bottleneck contact fits one 1000-byte packet after
     metadata, and only what crossed it can be delivered at t=55. *)
  let cycle t = [
    Contact.make ~time:t ~a:0 ~b:1 ~bytes:100_000;
    Contact.make ~time:(t +. 5.0) ~a:1 ~b:2 ~bytes:100_000;
  ]
  in
  let trace =
    Trace.create ~num_nodes:3 ~duration:300.0
      (List.concat_map cycle [ 10.0; 30.0 ]
      @ [
          Contact.make ~time:50.0 ~a:0 ~b:1 ~bytes:1200;
          Contact.make ~time:55.0 ~a:1 ~b:2 ~bytes:100_000;
        ])
  in
  let workload =
    [
      spec ~src:0 ~dst:2 ~size:1000 ~created:40.0 ();
      spec ~src:0 ~dst:2 ~size:1000 ~created:45.0 ();
    ]
  in
  let { Engine.report; env } =
    Engine.run
      ~protocol:(rapid ~metric:Metric.Maximum_delay ())
      ~trace ~workload ()
  in
  Alcotest.(check int) "exactly one delivered" 1 report.Metrics.delivered;
  Alcotest.(check bool) "the older one" true (Env.is_delivered env 0);
  Alcotest.(check bool) "not the younger" false (Env.is_delivered env 1)

let test_rapid_storage_own_creation_pressure () =
  (* Node 0's buffer only fits 2 packets and all are its own: a foreign
     arrival could never evict them, but a fresh own creation replaces the
     lowest-utility own packet (otherwise a full source deadlocks). *)
  let trace =
    Trace.create ~num_nodes:2 ~duration:10.0
      [ Contact.make ~time:9.0 ~a:0 ~b:1 ~bytes:5 ]
  in
  let workload =
    List.init 3 (fun i -> spec ~src:0 ~dst:1 ~size:10 ~created:(float_of_int i) ())
  in
  let { Engine.report; env } =
    Engine.run
      ~options:{ Engine.default_options with buffer_bytes = Some 20 }
      ~protocol:(rapid ()) ~trace ~workload ()
  in
  Alcotest.(check int) "one own packet displaced" 1 report.Metrics.drops;
  Alcotest.(check int) "buffer holds two" 2 (Buffer.count env.Env.buffers.(0));
  Alcotest.(check bool) "newest kept" true (Buffer.mem env.Env.buffers.(0) 2)

let test_rapid_evicts_foreign_before_own () =
  (* Node 1 buffers its own (never-deliverable) packet plus a foreign
     replica; when a second foreign replica arrives and the buffer is
     full, the foreign one is evicted, never node 1's own packet. *)
  let trace =
    Trace.create ~num_nodes:10 ~duration:100.0
      [
        Contact.make ~time:5.0 ~a:1 ~b:3 ~bytes:0;
        (* teach the matrix that 1 meets 3; no bytes move *)
        Contact.make ~time:10.0 ~a:0 ~b:1 ~bytes:1200;
        (* foreign replica to 1: buffer now full *)
        Contact.make ~time:20.0 ~a:2 ~b:1 ~bytes:1200;
        (* second foreign replica: something must go *)
      ]
  in
  let workload =
    [
      spec ~src:1 ~dst:9 ~size:1000 ~created:0.0 ();
      (* 1's own packet; dst 9 never appears *)
      spec ~src:0 ~dst:3 ~size:1000 ~created:1.0 ();
      spec ~src:2 ~dst:3 ~size:1000 ~created:2.0 ();
    ]
  in
  let { Engine.report; env } =
    Engine.run
      ~options:{ Engine.default_options with buffer_bytes = Some 2000 }
      ~protocol:(rapid ()) ~trace ~workload ()
  in
  Alcotest.(check bool) "own source packet kept" true (Buffer.mem env.Env.buffers.(1) 0);
  Alcotest.(check int) "a foreign replica was evicted" 1 report.Metrics.drops

let test_rapid_global_channel_instant_purge () =
  (* With the instant global channel, a delivered packet's stale replica is
     purged at the next contact even though no ack has propagated. *)
  let trace =
    Trace.create ~num_nodes:4 ~duration:100.0
      [
        Contact.make ~time:5.0 ~a:1 ~b:2 ~bytes:1000;
        (* teach matrix *)
        Contact.make ~time:10.0 ~a:0 ~b:1 ~bytes:1000;
        (* replicate to 1 *)
        Contact.make ~time:20.0 ~a:0 ~b:2 ~bytes:1000;
        (* source delivers *)
        Contact.make ~time:30.0 ~a:1 ~b:3 ~bytes:1000;
        (* instant ack: purge at 1 *)
      ]
  in
  let workload = [ spec ~src:0 ~dst:2 ~created:6.0 () ] in
  let { Engine.report; env } =
    Engine.run
      ~protocol:(rapid ~channel:Control_channel.Instant_global ())
      ~trace ~workload ()
  in
  Alcotest.(check bool) "stale replica purged" false (Buffer.mem env.Env.buffers.(1) 0);
  (* The instant purge must flow through the same accounting hook as
     in-band ack purges and land in the run's report. *)
  Alcotest.(check int) "purge counted in report" 1 report.Metrics.ack_purges

let test_rapid_meta_watermark_no_resend () =
  (* Regression: when a budget cut leaves replica entries unsent, the next
     exchange with that peer must ship only the unsent ones, not rewind the
     watermark and re-ship what already crossed.

     Setup: acks off, table entries free, 1 byte per replica entry. Node 0
     holds two own packets for an unreachable destination, so nothing ever
     moves as data and every metadata byte is a replica entry. First
     contact has a 1-entry metadata budget (1% of 100 bytes): entry A1
     ships, A2 and db(1)'s A1 echo are deferred. The second contact has
     room for everything: A2 and the echo ship, 2 bytes. Total 3. The old
     watermark rewind re-shipped A1 as well, spending 4. *)
  let collector = Rapid_obs.Tracer.Collector.create ~keep_events:16 () in
  let params =
    {
      (Rapid.default_params Metric.Average_delay) with
      Rapid.use_acks = false;
      table_entry_bytes = 0;
      packet_entry_bytes = 1;
      tracer = Rapid_obs.Tracer.Collector.tracer collector;
    }
  in
  let trace =
    Trace.create ~num_nodes:4 ~duration:10.0
      [
        Contact.make ~time:1.0 ~a:0 ~b:1 ~bytes:100;
        Contact.make ~time:2.0 ~a:0 ~b:1 ~bytes:10_000;
      ]
  in
  let workload =
    [
      spec ~src:0 ~dst:3 ~size:10 ~created:0.5 ();
      spec ~src:0 ~dst:3 ~size:10 ~created:0.5 ();
    ]
  in
  let report =
    (Engine.run
      ~options:{ Engine.default_options with meta_cap_frac = Some 0.01 }
      ~protocol:(Rapid.make params) ~trace ~workload ()).Engine.report
  in
  Alcotest.(check int) "nothing moved as data" 0 report.Metrics.transfers;
  Alcotest.(check int) "each entry shipped exactly once" 3
    report.Metrics.metadata_bytes;
  (* Cross-check through the protocol-level tracer: per-kind breakdown. *)
  let entry_bytes =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Rapid_obs.Tracer.Metadata { bytes; kind = "entries"; _ } ->
            acc + bytes
        | _ -> acc)
      0
      (Rapid_obs.Tracer.Collector.events collector)
  in
  Alcotest.(check int) "tracer agrees on entry bytes" 3 entry_bytes;
  Alcotest.(check (option int)) "two contacts traced, two kinds each"
    (Some 4)
    (List.assoc_opt "metadata" (Rapid_obs.Tracer.Collector.counts collector))

let test_rapid_drop_candidate_own_replacement () =
  (* §3.4 unit check on the eviction policy itself: with only own packets
     buffered, a foreign arrival gets no victim, while a fresh own
     creation may displace an own packet. *)
  let module P = (val rapid () : Protocol.S) in
  let env =
    Env.create ~num_nodes:4 ~duration:100.0 ~buffer_capacity:(Some 20) ~seed:1
  in
  let st = P.create env in
  let own0 = packet ~id:0 ~src:0 ~dst:3 ~size:10 ~created:0.0 () in
  let own1 = packet ~id:1 ~src:0 ~dst:3 ~size:10 ~created:1.0 () in
  List.iter
    (fun p ->
      Buffer.add env.Env.buffers.(0)
        { Buffer.packet = p; received = p.Packet.created; hops = 0 };
      P.on_created st ~now:p.Packet.created p)
    [ own0; own1 ];
  (* Foreign replica arriving at the full source: protected own packets
     yield no candidate. *)
  let foreign = packet ~id:2 ~src:1 ~dst:3 ~size:10 ~created:2.0 () in
  (match P.drop_candidate st ~now:2.0 ~node:0 ~incoming:foreign with
  | None -> ()
  | Some v -> Alcotest.failf "own packet %d offered to a foreign arrival" v.Packet.id);
  (* A new own creation may displace an own packet (else a full source
     deadlocks forever). *)
  let own2 = packet ~id:3 ~src:0 ~dst:3 ~size:10 ~created:3.0 () in
  match P.drop_candidate st ~now:3.0 ~node:0 ~incoming:own2 with
  | Some v -> Alcotest.(check int) "victim is an own packet" 0 v.Packet.src
  | None -> Alcotest.fail "full source refused its own new packet"

let contention_scenario ~seed =
  let rng = Rapid_prelude.Rng.create seed in
  let trace =
    Rapid_mobility.Mobility.powerlaw rng ~num_nodes:12 ~mean_inter_meeting:60.0
      ~duration:1200.0 ~opportunity_bytes:3000 ()
  in
  let workload =
    Workload.generate rng ~trace ~pkts_per_hour_per_dest:40.0 ~size:1000
      ~lifetime:300.0 ()
  in
  (trace, workload)

let avg_over seeds f =
  Rapid_prelude.Stats.mean (List.map f seeds)

let test_rapid_beats_random_avg_delay () =
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let run proto seed =
    let trace, workload = contention_scenario ~seed in
    let r =
      (Engine.run
        ~options:{ Engine.default_options with buffer_bytes = Some 20_000; seed }
        ~protocol:proto ~trace ~workload ()).Engine.report
    in
    r.Metrics.avg_delay_all
  in
  let rapid_delay = avg_over seeds (run (rapid ())) in
  let random_delay =
    avg_over seeds (run (Rapid_routing.Random_protocol.make ()))
  in
  if rapid_delay >= random_delay then
    Alcotest.failf "RAPID (%.1fs) should beat Random (%.1fs)" rapid_delay
      random_delay

let test_rapid_deterministic () =
  let trace, workload = contention_scenario ~seed:7 in
  let run () =
    (Engine.run
      ~options:{ Engine.default_options with seed = 11 }
      ~protocol:(rapid ()) ~trace ~workload ()).Engine.report
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same deliveries" a.Metrics.delivered b.Metrics.delivered;
  check_close "same delay" a.Metrics.avg_delay_all b.Metrics.avg_delay_all;
  Alcotest.(check int) "same metadata" a.Metrics.metadata_bytes b.Metrics.metadata_bytes

let test_rapid_metadata_cap_respected () =
  let trace, workload = contention_scenario ~seed:3 in
  let run frac =
    (Engine.run
      ~options:{ Engine.default_options with meta_cap_frac = frac; seed = 1 }
      ~protocol:(rapid ()) ~trace ~workload ()).Engine.report
  in
  let capped = run (Some 0.02) in
  let free = run None in
  if
    float_of_int capped.Metrics.metadata_bytes
    > 0.02 *. float_of_int capped.Metrics.capacity_bytes +. 1.0
  then Alcotest.fail "metadata exceeded the cap";
  Alcotest.(check bool) "uncapped uses more metadata" true
    (free.Metrics.metadata_bytes >= capped.Metrics.metadata_bytes)

let test_rapid_global_no_metadata_cost () =
  let trace, workload = contention_scenario ~seed:4 in
  let r =
    (Engine.run
      ~protocol:(rapid ~channel:Control_channel.Instant_global ())
      ~trace ~workload ()).Engine.report
  in
  Alcotest.(check int) "oracle channel is free" 0 r.Metrics.metadata_bytes

let test_rapid_local_sends_less_metadata () =
  let trace, workload = contention_scenario ~seed:5 in
  let run channel =
    ((Engine.run ~protocol:(rapid ~channel ()) ~trace ~workload ()).Engine.report)
      .Metrics.metadata_bytes
  in
  let in_band = run Control_channel.In_band in
  let local = run Control_channel.Local_only in
  Alcotest.(check bool) "local <= in-band metadata" true (local <= in_band)

(* Golden fixed-seed runs. The ten report fields below were captured from
   the pre-rewrite engine (full O(h·n³) closure rebuilt on every observe)
   and must stay bit-identical: the lazy-row/dense-matrix hot path is a
   pure perf change, not a behavioural one. Floats printed with %.17g
   round-trip exactly, so [check_close ~eps:0.0] is an equality check. *)
let exponential_scenario ~seed =
  let rng = Rapid_prelude.Rng.create seed in
  let trace =
    Rapid_mobility.Mobility.exponential rng ~num_nodes:10
      ~mean_inter_meeting:50.0 ~duration:1500.0 ~opportunity_bytes:4000
  in
  let workload =
    Workload.generate rng ~trace ~pkts_per_hour_per_dest:30.0 ~size:800
      ~lifetime:250.0 ()
  in
  (trace, workload)

let check_golden name (r : Metrics.report)
    ~(delivered : int) ~(transfers : int) ~(drops : int) ~(ack_purges : int)
    ~(data : int) ~(meta : int) ~(within : int) ~(avg_delay : float)
    ~(avg_delay_all : float) ~(max_delay : float) =
  let ck what = Alcotest.(check int) (name ^ " " ^ what) in
  ck "delivered" delivered r.Metrics.delivered;
  ck "transfers" transfers r.Metrics.transfers;
  ck "drops" drops r.Metrics.drops;
  ck "ack purges" ack_purges r.Metrics.ack_purges;
  ck "data bytes" data r.Metrics.data_bytes;
  ck "metadata bytes" meta r.Metrics.metadata_bytes;
  ck "within deadline" within r.Metrics.within_deadline;
  check_close ~eps:0.0 (name ^ " avg delay") avg_delay r.Metrics.avg_delay;
  check_close ~eps:0.0 (name ^ " avg delay all") avg_delay_all
    r.Metrics.avg_delay_all;
  check_close ~eps:0.0 (name ^ " max delay") max_delay r.Metrics.max_delay

let test_rapid_golden_reports () =
  let t1, w1 = contention_scenario ~seed:7 in
  let r1 =
    (Engine.run
      ~options:
        { Engine.default_options with buffer_bytes = Some 20_000; seed = 11 }
      ~protocol:(Rapid.make_default Metric.Average_delay) ~trace:t1
      ~workload:w1 ()).Engine.report
  in
  check_golden "powerlaw/avg" r1 ~delivered:1214 ~transfers:2615 ~drops:1406
    ~ack_purges:323 ~data:2615000 ~meta:310164 ~within:1086
    ~avg_delay:122.67328088408885 ~avg_delay_all:212.16894533953294
    ~max_delay:1022.8141160740481;
  let t2, w2 = exponential_scenario ~seed:5 in
  let r2 =
    (Engine.run
      ~options:
        { Engine.default_options with buffer_bytes = Some 16_000; seed = 3 }
      ~protocol:(Rapid.make_default Metric.Missed_deadlines) ~trace:t2
      ~workload:w2 ()).Engine.report
  in
  check_golden "exponential/deadline" r2 ~delivered:1133 ~transfers:4815
    ~drops:0 ~ack_purges:3637 ~data:3852000 ~meta:401480 ~within:1133
    ~avg_delay:22.640752200477063 ~avg_delay_all:22.504559343422542
    ~max_delay:105.25903834844821;
  let t3, w3 = contention_scenario ~seed:9 in
  let r3 =
    (Engine.run
      ~options:
        { Engine.default_options with buffer_bytes = Some 12_000; seed = 2 }
      ~protocol:(Rapid.make_default Metric.Maximum_delay) ~trace:t3
      ~workload:w3 ()).Engine.report
  in
  check_golden "powerlaw/max" r3 ~delivered:1057 ~transfers:2494 ~drops:1708
    ~ack_purges:279 ~data:2494000 ~meta:294816 ~within:1051
    ~avg_delay:80.632460869601246 ~avg_delay_all:244.37462959613663
    ~max_delay:384.35386238667138

let test_rapid_reboot_drops_positional_index () =
  (* A reboot clears a node's buffer without touching its (node, dst)
     cell versions — the one mutation path where the incremental
     position index must be dropped outright rather than synced. Were a
     stale cell served, the protocol's own index assertions would trip
     (test builds keep asserts on) or the runs would diverge. *)
  let trace, workload = contention_scenario ~seed:21 in
  let run () =
    (Engine.run
      ~options:
        {
          Engine.default_options with
          buffer_bytes = Some 20_000;
          seed = 21;
          faults =
            { Rapid_faults.Faults.none with seed = 5; reboots_per_node = 3.0 };
        }
      ~protocol:(rapid ()) ~trace ~workload ())
      .Engine.report
  in
  let r1 = run () in
  let r2 = run () in
  Alcotest.(check bool) "deterministic across identical faulted runs" true
    (r1 = r2);
  Alcotest.(check bool) "simulation progressed" true (r1.Metrics.delivered > 0)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_rapid_meta_cap_respected =
  QCheck.Test.make ~name:"rapid respects any metadata cap" ~count:10
    QCheck.(pair (int_range 0 1000) (float_range 0.0 0.3))
    (fun (seed, cap) ->
      let trace, workload = contention_scenario ~seed in
      let r =
        (Engine.run
          ~options:
            { Engine.buffer_bytes = Some 20_000; meta_cap_frac = Some cap;
              seed; faults = Rapid_faults.Faults.none }
          ~protocol:(rapid ()) ~trace ~workload ()).Engine.report
      in
      float_of_int r.Metrics.metadata_bytes
      <= (cap *. float_of_int r.Metrics.capacity_bytes) +. 1.0)

let prop_nmeet_monotone_in_position =
  QCheck.Test.make ~name:"deeper buffer position needs more meetings" ~count:100
    QCheck.(pair (int_range 1 20) (float_range 50.0 500.0))
    (fun (depth, b) ->
      let dst = 9 in
      let mk id created = packet ~id ~src:0 ~dst ~size:100 ~created () in
      let entries =
        List.init depth (fun i -> entry (mk i (float_of_int i)))
      in
      let n_at i =
        Estimate_delay.n_meetings ~entries
          ~packet:(mk i (float_of_int i))
          ~avg_transfer_bytes:b
      in
      let rec monotone i = i >= depth || (n_at (i - 1) <= n_at i && monotone (i + 1)) in
      monotone 1)

let prop_more_holders_never_slower =
  QCheck.Test.make ~name:"adding a holder never increases A(i)" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 8) (pair (float_range 10.0 1000.0) (int_range 1 5)))
    (fun holders ->
      let rate hs =
        List.fold_left
          (fun acc (e, n) ->
            acc +. Estimate_delay.rate_of_holder ~meeting_time:e ~n_meet:n)
          0.0 hs
      in
      match holders with
      | [] -> true
      | _ :: rest ->
          Estimate_delay.expected_delay ~rate:(rate holders)
          <= Estimate_delay.expected_delay ~rate:(rate rest))

let prop_rate_cache_stamps_sound =
  (* The believed-rate cache contract (DESIGN §3a): a value stamped with
     (Replica_db per-packet version, Meeting_matrix row content version)
     may be served as long as both stamps still match — under ANY
     interleaving of holder-set writes and meeting observations. The
     oracle is the always-refolded Eq. 9 sum; equality is exact float
     equality, because the contract is bit-identity, not approximation.
     A mutation path that forgets to bump its stamp shows up here as a
     stale hit diverging from the oracle. *)
  QCheck.Test.make
    ~name:"rate cache stamped hits = always-refold (interleavings)"
    ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rapid_prelude.Rng.create seed in
      let n = 8 in
      let dst = n - 1 in
      let m = Meeting_matrix.create ~num_nodes:n in
      let db = Replica_db.create () in
      let rc = Rate_cache.create ~num_nodes:1 in
      let p = packet ~id:5 ~src:0 ~dst ~size:100 () in
      let clock = ref 0.0 in
      let tick () =
        clock := !clock +. 1.0 +. (Rapid_prelude.Rng.float rng *. 10.0);
        !clock
      in
      let fold_rate () =
        let row = Meeting_matrix.row ~h:3 m dst in
        Replica_db.fold_holders db ~packet_id:5 ~init:0.0
          ~f:(fun acc holder_id (h : Replica_db.holder) ->
            let mt = if holder_id = dst then 0.0 else row.(holder_id) in
            acc
            +. Estimate_delay.rate_of_holder ~meeting_time:mt
                 ~n_meet:h.Replica_db.n_meet)
      in
      let ok = ref true in
      for _ = 1 to 120 do
        (match Rapid_prelude.Rng.int rng 6 with
        | 0 | 1 ->
            let a = Rapid_prelude.Rng.int rng n in
            let b = (a + 1 + Rapid_prelude.Rng.int rng (n - 1)) mod n in
            if a <> b then Meeting_matrix.observe m ~now:(tick ()) ~a ~b
        | 2 ->
            Replica_db.set_holder db ~packet:p
              ~holder_id:(Rapid_prelude.Rng.int rng n)
              ~n_meet:(1 + Rapid_prelude.Rng.int rng 5)
              ~now:(tick ())
        | 3 ->
            (* Gossip with a random (possibly stale) origin timestamp:
               rejected merges must leave the stamp untouched. *)
            ignore
              (Replica_db.merge db ~packet:p
                 ~holder_id:(Rapid_prelude.Rng.int rng n)
                 ~holder:
                   {
                     Replica_db.n_meet = 1 + Rapid_prelude.Rng.int rng 5;
                     updated_at = Rapid_prelude.Rng.float rng *. !clock;
                   })
        | 4 ->
            Replica_db.remove_holder db ~packet_id:5
              ~holder_id:(Rapid_prelude.Rng.int rng n)
        | _ ->
            if Rapid_prelude.Rng.int rng 4 = 0 then
              Replica_db.remove_packet db ~packet_id:5);
        if Replica_db.holder_count db ~packet_id:5 > 0 then begin
          let pkt_ver = Replica_db.version db ~packet_id:5 in
          let row_ver = Meeting_matrix.row_version ~h:3 m dst in
          let served =
            let c =
              Rate_cache.find rc ~observer:0 ~packet_id:5 ~pkt_ver ~row_ver
            in
            if Float.is_nan c then begin
              let r = fold_rate () in
              Rate_cache.store rc ~observer:0 ~packet_id:5 ~pkt_ver ~row_ver
                ~rate:r;
              r
            end
            else c
          in
          if not (Float.equal served (fold_rate ())) then ok := false
        end
      done;
      !ok)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_nmeet_monotone_in_position; prop_more_holders_never_slower;
      prop_rapid_meta_cap_respected; prop_lazy_rows_equal_full_closure;
      prop_rate_cache_stamps_sound ]

let () =
  Alcotest.run "core"
    [
      ( "meeting_matrix",
        [
          Alcotest.test_case "direct average" `Quick test_matrix_direct_average;
          Alcotest.test_case "symmetry" `Quick test_matrix_symmetry;
          Alcotest.test_case "transitive" `Quick test_matrix_transitive;
          Alcotest.test_case "three hops" `Quick test_matrix_three_hops;
          Alcotest.test_case "transitive vs direct" `Quick
            test_matrix_transitive_vs_direct;
          Alcotest.test_case "global mean" `Quick test_matrix_global_mean;
          Alcotest.test_case "same-instant keeps cache" `Quick
            test_matrix_same_instant_keeps_cache;
          Alcotest.test_case "row version content-stamped" `Quick
            test_matrix_row_version_content_stamped;
        ] );
      ( "estimate_delay",
        [
          Alcotest.test_case "queue position" `Quick test_n_meetings_position;
          Alcotest.test_case "other destinations" `Quick
            test_n_meetings_ignores_other_destinations;
          Alcotest.test_case "would-be position" `Quick
            test_n_meetings_would_be_position;
          Alcotest.test_case "rates and delay" `Quick test_rates_and_delay;
          Alcotest.test_case "replicas reduce delay" `Quick
            test_more_replicas_less_delay;
        ] );
      ( "replica_db",
        [
          Alcotest.test_case "basics" `Quick test_replica_db_basics;
          Alcotest.test_case "merge freshness" `Quick test_replica_db_merge_freshness;
          Alcotest.test_case "entries since" `Quick test_replica_db_entries_since;
          Alcotest.test_case "log truncation" `Quick test_replica_db_log_truncation;
          Alcotest.test_case "versions" `Quick test_replica_db_versions;
        ] );
      ( "rapid",
        [
          Alcotest.test_case "direct delivery" `Quick test_rapid_direct_delivery;
          Alcotest.test_case "replicates after learning" `Quick
            test_rapid_replicates_after_learning;
          Alcotest.test_case "cold start" `Quick test_rapid_cold_start_direct_only;
          Alcotest.test_case "acks purge replicas" `Quick
            test_rapid_acks_purge_replicas;
          Alcotest.test_case "deadline skips dead" `Quick
            test_rapid_deadline_skips_dead_packets;
          Alcotest.test_case "metric3 prioritizes old" `Quick
            test_rapid_metric3_prioritizes_old;
          Alcotest.test_case "own creation pressure" `Quick
            test_rapid_storage_own_creation_pressure;
          Alcotest.test_case "evicts foreign before own" `Quick
            test_rapid_evicts_foreign_before_own;
          Alcotest.test_case "global channel purge" `Quick
            test_rapid_global_channel_instant_purge;
          Alcotest.test_case "beats random" `Slow test_rapid_beats_random_avg_delay;
          Alcotest.test_case "deterministic" `Quick test_rapid_deterministic;
          Alcotest.test_case "metadata cap" `Quick test_rapid_metadata_cap_respected;
          Alcotest.test_case "global channel free" `Quick
            test_rapid_global_no_metadata_cost;
          Alcotest.test_case "local channel lighter" `Quick
            test_rapid_local_sends_less_metadata;
          Alcotest.test_case "meta watermark no resend" `Quick
            test_rapid_meta_watermark_no_resend;
          Alcotest.test_case "reboot drops positional index" `Quick
            test_rapid_reboot_drops_positional_index;
          Alcotest.test_case "drop candidate own replacement" `Quick
            test_rapid_drop_candidate_own_replacement;
          Alcotest.test_case "golden fixed-seed reports" `Slow
            test_rapid_golden_reports;
        ] );
      ("properties", qcheck_cases);
    ]
